// Multi-GPU planning walkthrough (§6.2/§6.4(i)): one CPU profile answers
// the questions a cluster operator asks before reserving hardware —
//
//   1. does the job fit one card at all (single-device replay entries)?
//   2. if not (or not comfortably), which DP x TP x PP decomposition of an
//      N-GPU budget makes it fit, and at what per-rank peak?
//   3. what do the best candidates cost once their per-rank sequences are
//      replayed through the real allocator tower (phase-2 refinement) —
//      and does any verdict flip versus the analytic arithmetic?
//   4. how do ZeRO stages change the data-parallel memory bill?
//
// The whole two-phase search — every decomposition of the budget plus the
// top-K per-rank replays, judged against every candidate card — runs
// exactly ONE profile through the shared ProfileSession; the report's
// stage counters prove it.
//
//   ./distributed_plan [model] [batch] [max_gpus]
#include <cstdio>
#include <cstdlib>

#include "core/distributed_planner.h"
#include "core/estimation_service.h"
#include "core/xmem_estimator.h"
#include "models/zoo.h"
#include "util/bytes.h"

int main(int argc, char** argv) {
  using namespace xmem;
  core::PlanRequest request;
  request.job.model_name = argc > 1 ? argv[1] : "gpt2";
  request.job.batch_size = argc > 2 ? std::atoi(argv[2]) : 8;
  request.job.optimizer = fw::OptimizerKind::kAdamW;
  request.max_gpus = argc > 3 ? std::atoi(argv[3]) : 8;
  request.devices = {gpu::rtx3060(), gpu::rtx4060(), gpu::a100_40gb()};
  request.zero = core::ZeroStage::kOptimizer;
  request.max_candidates = 8;
  request.refine_top_k = 3;

  if (!models::is_known_model(request.job.model_name)) {
    std::fprintf(stderr, "unknown model '%s'\n",
                 request.job.model_name.c_str());
    return 1;
  }

  std::printf("Plan search: %s, budget %d GPUs, ZeRO-%d, %d micro-batches\n\n",
              request.job.label().c_str(), request.max_gpus,
              static_cast<int>(request.zero), request.micro_batches);

  core::EstimationService service;
  const core::PlanReport report = service.plan(request);

  std::printf("single-device analytic peak: %s\n",
              util::format_bytes(report.single_device_peak).c_str());
  for (const core::EstimateEntry& entry : report.single_device_entries) {
    std::printf("  %-20s replay peak %-10s -> %s\n", entry.device.c_str(),
                util::format_bytes(entry.estimated_peak).c_str(),
                entry.oom_predicted ? "DOES NOT FIT" : "fits");
  }

  std::printf("\nranked decompositions (best first):\n");
  std::printf("%4s %4s %4s %5s %14s %8s  %s\n", "dp", "tp", "pp", "gpus",
              "per-rank peak", "savings", "fits");
  for (const core::PlanCandidate& candidate : report.candidates) {
    std::string verdicts;
    for (std::size_t d = 0; d < report.devices.size(); ++d) {
      verdicts += candidate.device_fits[d] ? 'Y' : 'n';
    }
    std::printf("%4d %4d %4d %5d %14s %7d%%  %s\n",
                candidate.plan.data_parallel, candidate.plan.tensor_parallel,
                candidate.plan.pipeline_stages, candidate.plan.gpus,
                util::format_bytes(candidate.plan.per_rank_peak).c_str(),
                candidate.savings_pct, verdicts.c_str());
  }

  std::printf("\nphase-2 refinement (top %d candidates, allocator '%s'):\n",
              request.refine_top_k, request.allocator.c_str());
  for (const core::PlanCandidate& candidate : report.candidates) {
    if (!candidate.replayed) continue;
    std::printf("  d%d t%d p%d: analytic %-10s replayed %-10s (%+d%%)%s\n",
                candidate.plan.data_parallel, candidate.plan.tensor_parallel,
                candidate.plan.pipeline_stages,
                util::format_bytes(candidate.plan.per_rank_peak).c_str(),
                util::format_bytes(candidate.replayed_per_rank_peak).c_str(),
                candidate.analytic_vs_replayed_pct,
                candidate.verdict_changed ? "  << verdict changed" : "");
  }

  // The analytic slices the hybrid model composes, for context: what pure
  // DP costs per ZeRO stage at the full budget.
  const core::ProfileSession::Lookup lookup = service.session().get(
      [&] {
        core::XMemEstimator key_builder;
        return key_builder.profile_key(request.job);
      }());
  const auto profiles =
      core::per_component_profile(lookup.artifacts->analysis.timeline);
  core::DistributedPlanner planner;
  std::printf("\npure data parallelism at d=%d:\n", request.max_gpus);
  for (int zero = 0; zero <= 3; ++zero) {
    core::DataParallelOptions dp;
    dp.ranks = request.max_gpus;
    dp.zero = core::zero_stage_from_int(zero);
    const core::DataParallelPlan plan =
        planner.plan_data_parallel(profiles, dp);
    std::printf("  ZeRO-%d: per-rank %-10s (params %s, grads %s, optim %s)\n",
                zero, util::format_bytes(plan.per_rank_peak).c_str(),
                util::format_bytes(plan.param_bytes).c_str(),
                util::format_bytes(plan.gradient_bytes).c_str(),
                util::format_bytes(plan.optimizer_bytes).c_str());
  }

  std::printf("\nprofiles run for the whole search: %zu (profile-once)\n",
              report.profiles_run);
  return 0;
}
