// Quickstart: estimate the peak GPU memory of a training job with xMem,
// then (because this repo ships the full simulated GPU substrate) verify
// the estimate against a ground-truth run — the round-trip a user of the
// real system would do against a real card.
//
//   ./quickstart [model] [batch] [optimizer]
//   ./quickstart gpt2 20 AdamW
#include <cstdio>
#include <string>

#include "core/estimation_service.h"
#include "gpu/ground_truth.h"
#include "models/zoo.h"
#include "util/bytes.h"

int main(int argc, char** argv) {
  using namespace xmem;

  core::TrainJob job;
  job.model_name = argc > 1 ? argv[1] : "gpt2";
  job.batch_size = argc > 2 ? std::atoi(argv[2]) : 20;
  job.optimizer = argc > 3 ? fw::optimizer_from_string(argv[3])
                           : fw::OptimizerKind::kAdamW;
  const gpu::DeviceModel device = gpu::rtx3060();

  if (!models::is_known_model(job.model_name)) {
    std::fprintf(stderr, "unknown model '%s'\n", job.model_name.c_str());
    std::fprintf(stderr, "known models:\n");
    for (const auto& name : models::all_model_names()) {
      std::fprintf(stderr, "  %s\n", name.c_str());
    }
    return 1;
  }

  std::printf("job    : %s\n", job.label().c_str());
  std::printf("device : %s (%s, job budget %s)\n", device.name.c_str(),
              util::format_bytes(device.capacity).c_str(),
              util::format_bytes(device.job_budget()).c_str());

  // --- a priori estimate: CPU-only, no GPU touched -----------------------
  core::EstimationService service;
  const core::EstimateEntry estimate = service.estimate("xMem", job, device);
  std::printf("\nxMem estimate      : %s (%.1f ms CPU time: profile %.1f + "
              "analyze %.1f + simulate %.1f)\n",
              util::format_bytes(estimate.estimated_peak).c_str(),
              estimate.timings.total_seconds * 1e3,
              estimate.timings.profile_seconds * 1e3,
              estimate.timings.analyze_seconds * 1e3,
              estimate.timings.simulate_seconds * 1e3);
  std::printf("OOM predicted      : %s\n",
              estimate.oom_predicted ? "yes" : "no");

  // --- verification run on the simulated GPU -----------------------------
  const fw::ModelDescriptor model =
      models::build_model(job.model_name, job.batch_size);
  gpu::GroundTruthRunner runner;
  gpu::GroundTruthOptions options;
  options.placement = job.placement;
  options.seed = 7;
  const gpu::GroundTruthResult truth =
      runner.run(model, job.optimizer, device, options);

  if (truth.oom) {
    std::printf("ground truth       : OOM (job does not fit this device)\n");
    std::printf("prediction was     : %s\n",
                estimate.oom_predicted ? "correct" : "WRONG");
    return 0;
  }
  std::printf("ground truth peak  : %s (NVML-sampled)\n",
              util::format_bytes(truth.peak_job_bytes).c_str());
  const double err =
      100.0 *
      std::abs(static_cast<double>(estimate.estimated_peak -
                                   truth.peak_job_bytes)) /
      static_cast<double>(truth.peak_job_bytes);
  std::printf("relative error     : %.2f%%\n", err);
  std::printf("headroom if capped : %s\n",
              util::format_bytes(device.job_budget() -
                                 estimate.estimated_peak)
                  .c_str());
  return 0;
}
