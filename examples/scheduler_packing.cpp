// Scheduler-integration example: the downstream use case the paper's
// introduction motivates. A queue of training jobs arrives at a small GPU
// cluster; the scheduler admits a job onto a GPU only if the predicted
// memory fits the GPU's remaining budget. We compare three admission
// policies:
//
//   whole-GPU   — one job per GPU (no sharing; today's conservative default)
//   xMem        — admit while sum of xMem estimates fits
//   DNNMem      — admit while sum of DNNMem estimates fits
//
// and verify each packing against ground truth: a co-located set is
// feasible iff the sum of the jobs' true peaks fits the budget. The paper's
// MCP metric is exactly the headroom this example turns into throughput.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/estimation_service.h"
#include "gpu/ground_truth.h"
#include "models/zoo.h"
#include "util/bytes.h"

namespace {

using namespace xmem;

struct JobArrival {
  core::TrainJob job;
  std::int64_t true_peak = 0;  // measured after the fact
  bool oom_alone = false;
};

struct PackingResult {
  int admitted = 0;
  int oom_events = 0;  // a GPU whose co-located set exceeded its budget
  std::int64_t wasted_bytes = 0;
};

PackingResult pack(const std::vector<JobArrival>& arrivals,
                   const std::vector<std::int64_t>& predictions,
                   const std::vector<gpu::DeviceModel>& cluster) {
  PackingResult result;
  std::vector<std::int64_t> used(cluster.size(), 0);
  std::vector<std::int64_t> true_used(cluster.size(), 0);
  for (std::size_t j = 0; j < arrivals.size(); ++j) {
    // First fit.
    for (std::size_t g = 0; g < cluster.size(); ++g) {
      if (used[g] + predictions[j] <= cluster[g].job_budget()) {
        used[g] += predictions[j];
        true_used[g] += arrivals[j].true_peak;
        ++result.admitted;
        break;
      }
    }
  }
  for (std::size_t g = 0; g < cluster.size(); ++g) {
    if (true_used[g] > cluster[g].job_budget()) ++result.oom_events;
    result.wasted_bytes +=
        std::max<std::int64_t>(0, cluster[g].job_budget() - true_used[g]);
  }
  return result;
}

}  // namespace

int main() {
  // A mixed queue of eight real workloads.
  struct QueueEntry {
    const char* model;
    int batch;
    fw::OptimizerKind optimizer;
  };
  const QueueEntry queue[] = {
      {"distilgpt2", 10, fw::OptimizerKind::kAdamW},
      {"ResNet101", 300, fw::OptimizerKind::kAdam},
      {"T5-small", 5, fw::OptimizerKind::kAdam},
      {"MobileNetV2", 400, fw::OptimizerKind::kAdam},
      {"ConvNeXtBase", 300, fw::OptimizerKind::kAdamW},
      {"MnasNet", 500, fw::OptimizerKind::kRmsprop},
  };
  const std::vector<gpu::DeviceModel> cluster = {gpu::rtx3060(),
                                                 gpu::rtx4060()};

  std::printf("Scheduler packing example: 6 jobs -> {3060, 4060}\n\n");

  std::vector<JobArrival> arrivals;
  // One service answers every policy's questions: each job is profiled
  // once, then both estimators (and any future what-if) reuse the session.
  core::EstimationService service;
  std::vector<std::int64_t> xmem_pred, dnnmem_pred, whole_gpu_pred;

  gpu::GroundTruthRunner runner;
  for (const QueueEntry& entry : queue) {
    JobArrival arrival;
    arrival.job.model_name = entry.model;
    arrival.job.batch_size = entry.batch;
    arrival.job.optimizer = entry.optimizer;
    arrival.job.seed = 1234;

    const fw::ModelDescriptor model =
        models::build_model(entry.model, entry.batch);
    gpu::GroundTruthOptions options;
    options.seed = 1234;
    const auto truth = runner.run(model, entry.optimizer, cluster[0], options);
    arrival.true_peak = truth.peak_job_bytes;
    arrival.oom_alone = truth.oom;

    core::EstimateRequest request;
    request.job = arrival.job;
    request.devices = {cluster[0]};
    request.estimators = {"xMem", "DNNMem"};
    const core::EstimateReport report = service.sweep(request);
    const std::int64_t xmem_peak = report.entries[0].estimated_peak;
    const std::int64_t dnnmem_peak = report.entries[1].estimated_peak;
    xmem_pred.push_back(xmem_peak);
    dnnmem_pred.push_back(dnnmem_peak);
    whole_gpu_pred.push_back(cluster[0].job_budget());  // claim whole card

    std::printf("  %-14s b%-4d %-9s true peak %-11s xMem %-11s DNNMem %s\n",
                entry.model, entry.batch, to_string(entry.optimizer),
                util::format_bytes(arrival.true_peak).c_str(),
                util::format_bytes(xmem_peak).c_str(),
                util::format_bytes(dnnmem_peak).c_str());
    arrivals.push_back(arrival);
  }

  std::printf("\n%-12s %10s %12s %16s\n", "policy", "admitted", "OOM GPUs",
              "wasted memory");
  struct Policy {
    const char* name;
    const std::vector<std::int64_t>* predictions;
  };
  for (const Policy& policy :
       {Policy{"whole-GPU", &whole_gpu_pred}, Policy{"xMem", &xmem_pred},
        Policy{"DNNMem", &dnnmem_pred}}) {
    const PackingResult result = pack(arrivals, *policy.predictions, cluster);
    std::printf("%-12s %10d %12d %16s\n", policy.name, result.admitted,
                result.oom_events,
                util::format_bytes(result.wasted_bytes).c_str());
  }
  std::printf("\nAccurate estimates admit more jobs with zero OOM events; "
              "underestimates (DNNMem on stateful optimizers) overpack and "
              "crash co-located jobs.\n");
  return 0;
}
