// Scheduler-integration example: the downstream use case the paper's
// introduction motivates, now on the sched::FleetPlanner subsystem. A
// queue of training jobs arrives at a small GPU fleet; `xmem fleet` packs
// it under three admission policies:
//
//   whole-GPU   — one job per GPU (no sharing; today's conservative default)
//   xMem        — first-fit while the sum of xMem estimates fits
//   DNNMem      — first-fit while the sum of DNNMem estimates fits
//
// and audits every packing against ground truth: a co-located set is
// feasible iff the sum of the jobs' true peaks fits the GPU's budget. The
// paper's MCP metric is exactly the headroom this example turns into
// throughput; an underestimating estimator overpacks and crashes
// co-located jobs instead.
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/estimation_service.h"
#include "gpu/ground_truth.h"
#include "models/zoo.h"
#include "sched/fleet_planner.h"
#include "util/bytes.h"

namespace {

using namespace xmem;

/// True peak of one job on one device model, memoized: the audit asks per
/// placement, but only |queue| x |device models| distinct runs exist.
class TruthOracle {
 public:
  std::int64_t peak(const core::TrainJob& job, const gpu::DeviceModel& device) {
    const std::string key = job.label() + "|" + device.name;
    const auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    const fw::ModelDescriptor model =
        models::build_model(job.model_name, job.batch_size);
    gpu::GroundTruthOptions options;
    options.placement = job.placement;
    options.seed = job.seed;
    const auto truth = runner_.run(model, job.optimizer, device, options);
    // An OOM-alone job "uses" the whole budget for audit purposes.
    const std::int64_t peak =
        truth.oom ? device.job_budget() : truth.peak_job_bytes;
    return cache_.emplace(key, peak).first->second;
  }

 private:
  gpu::GroundTruthRunner runner_;
  std::map<std::string, std::int64_t> cache_;
};

struct Audit {
  int oom_gpus = 0;
  std::int64_t wasted_bytes = 0;  ///< budget minus true usage, admitted GPUs
};

/// Replay the report's placements with TRUE peaks: which GPUs would really
/// have blown up, and how much memory the policy left idle?
Audit audit_against_truth(const sched::FleetRequest& request,
                          const sched::FleetReport& report,
                          TruthOracle& oracle) {
  std::map<std::pair<std::size_t, int>, std::int64_t> true_used;
  for (const sched::JobVerdict& verdict : report.verdicts) {
    if (verdict.verdict != sched::Verdict::kAdmit) continue;
    const core::TrainJob* job = nullptr;
    for (const sched::FleetJob& fleet_job : request.jobs) {
      if (fleet_job.id == verdict.id) job = &fleet_job.job;
    }
    for (const sched::Placement& placement : verdict.placements) {
      // Multi-rank splits shard the job; charge the per-rank prediction's
      // share of the true single-device peak.
      const std::int64_t true_peak =
          oracle.peak(*job, request.pools[placement.pool].device);
      true_used[{placement.pool, placement.index}] +=
          verdict.gpus > 1 ? true_peak / verdict.gpus : true_peak;
    }
  }
  Audit audit;
  for (const sched::GpuState& gpu : report.gpus) {
    const auto it = true_used.find({gpu.pool, gpu.index});
    const std::int64_t used = it == true_used.end() ? 0 : it->second;
    if (used > gpu.budget_bytes) {
      audit.oom_gpus += 1;
    } else {
      audit.wasted_bytes += gpu.budget_bytes - used;
    }
  }
  return audit;
}

}  // namespace

int main() {
  // A mixed queue of six real workloads onto a two-GPU fleet.
  struct QueueEntry {
    const char* model;
    int batch;
    fw::OptimizerKind optimizer;
  };
  const QueueEntry entries[] = {
      {"distilgpt2", 10, fw::OptimizerKind::kAdamW},
      {"ResNet101", 300, fw::OptimizerKind::kAdam},
      {"T5-small", 5, fw::OptimizerKind::kAdam},
      {"MobileNetV2", 400, fw::OptimizerKind::kAdam},
      {"ConvNeXtBase", 300, fw::OptimizerKind::kAdamW},
      {"MnasNet", 500, fw::OptimizerKind::kRmsprop},
  };

  sched::FleetRequest request;
  int index = 0;
  for (const QueueEntry& entry : entries) {
    sched::FleetJob fleet_job;
    fleet_job.id = "job-" + std::to_string(index++);
    fleet_job.job.model_name = entry.model;
    fleet_job.job.batch_size = entry.batch;
    fleet_job.job.optimizer = entry.optimizer;
    fleet_job.job.seed = 1234;
    request.jobs.push_back(fleet_job);
  }
  request.pools = {{gpu::rtx3060(), 1}, {gpu::rtx4060(), 1}};
  request.max_gpus_per_job = 1;

  std::printf("Fleet packing example: 6 jobs -> {1x 3060, 1x 4060}\n\n");

  // One service answers every policy's questions: each distinct job is
  // profiled once, then every estimator and every pack reuses the session.
  core::EstimationService service;
  TruthOracle oracle;

  struct PolicyRun {
    const char* display;
    const char* policy;
    const char* estimator;
  };
  const PolicyRun runs[] = {
      {"whole-GPU", "whole-gpu", "xMem"},
      {"xMem", "first-fit", "xMem"},
      {"DNNMem", "first-fit", "DNNMem"},
  };

  std::vector<sched::FleetReport> reports;
  for (const PolicyRun& run : runs) {
    sched::FleetRequest variant = request;
    variant.policy = run.policy;
    variant.estimator = run.estimator;
    reports.push_back(service.fleet(variant));
  }

  // Per-job view: both estimators' predictions vs the truth on the 3060.
  std::printf("  %-14s %-6s %-9s %-12s %-12s %s\n", "job", "batch",
              "optimizer", "xMem", "DNNMem", "true peak (3060)");
  for (std::size_t j = 0; j < request.jobs.size(); ++j) {
    const core::TrainJob& job = request.jobs[j].job;
    // reports[1] packed with xMem estimates, reports[2] with DNNMem.
    std::printf("  %-14s %-6d %-9s %-12s %-12s %s\n", job.model_name.c_str(),
                job.batch_size, to_string(job.optimizer),
                util::format_bytes(reports[1].verdicts[j].predicted_peak)
                    .c_str(),
                util::format_bytes(reports[2].verdicts[j].predicted_peak)
                    .c_str(),
                util::format_bytes(oracle.peak(job, gpu::rtx3060())).c_str());
  }

  std::printf("\n%-12s %10s %10s %12s %16s %12s\n", "policy", "admitted",
              "deferred", "OOM GPUs", "wasted memory", "utilization");
  for (std::size_t r = 0; r < reports.size(); ++r) {
    const sched::FleetReport& report = reports[r];
    const Audit audit = audit_against_truth(request, report, oracle);
    std::printf("%-12s %10d %10d %12d %16s %11d%%\n", runs[r].display,
                report.stats.admitted, report.stats.deferred, audit.oom_gpus,
                util::format_bytes(audit.wasted_bytes).c_str(),
                report.stats.utilization_pct);
  }
  std::printf(
      "\nAccurate estimates admit more jobs with zero OOM events; the\n"
      "whole-GPU baseline is safe but idles most of each card, and\n"
      "underestimates (DNNMem on stateful optimizers) overpack and crash\n"
      "co-located jobs. Same packs, as JSON: `xmem fleet REQUEST.json`\n"
      "(docs/SCHEDULER.md).\n");
  return 0;
}
