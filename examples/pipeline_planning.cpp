// Distributed-planning example (§6.2): a model that does not fit one GPU is
// profiled on CPU (abundant RAM — the core argument for CPU-side analysis),
// the Analyzer produces per-layer memory data, and the DistributedPlanner
// splits the layer sequence into pipeline stages whose peaks fit the target
// card, modelling 1F1B in-flight micro-batch activations. Also reports the
// DDP gradient-bucket overhead of adding data parallelism per stage.
//
//   ./pipeline_planning [model] [batch] [stages] [micro_batches]
#include <cstdio>
#include <cstdlib>

#include "core/analyzer.h"
#include "core/distributed_planner.h"
#include "core/profile_runner.h"
#include "gpu/device_model.h"
#include "models/zoo.h"
#include "util/bytes.h"

int main(int argc, char** argv) {
  using namespace xmem;
  const std::string model_name = argc > 1 ? argv[1] : "pythia-1b";
  const int batch = argc > 2 ? std::atoi(argv[2]) : 4;
  core::DistributedOptions options;
  options.pipeline_stages = argc > 3 ? std::atoi(argv[3]) : 4;
  options.micro_batches = argc > 4 ? std::atoi(argv[4]) : 4;

  if (!models::is_known_model(model_name)) {
    std::fprintf(stderr, "unknown model '%s'\n", model_name.c_str());
    return 1;
  }
  const gpu::DeviceModel device = gpu::rtx3060();

  std::printf("Pipeline planning: %s, batch %d -> %d stages, %d "
              "micro-batches (target: %s)\n\n",
              model_name.c_str(), batch, options.pipeline_stages,
              options.micro_batches, device.name.c_str());

  // CPU-side profile (this is the whole point: the model may not fit any
  // single GPU, but the profiling host has RAM to spare).
  const fw::ModelDescriptor model = models::build_model(model_name, batch);
  const trace::Trace trace =
      core::profile_on_cpu(model, fw::OptimizerKind::kAdamW);
  const auto analysis = core::Analyzer().analyze(trace);

  const auto profiles = core::per_component_profile(analysis.timeline);
  std::printf("per-layer profile: %zu components, e.g.:\n", profiles.size());
  for (std::size_t i = 0; i < profiles.size() && i < 4; ++i) {
    std::printf("  %-34s params %-10s act %-10s transient %s\n",
                profiles[i].component.c_str(),
                util::format_bytes(profiles[i].param_bytes).c_str(),
                util::format_bytes(profiles[i].activation_bytes).c_str(),
                util::format_bytes(profiles[i].transient_peak).c_str());
  }

  core::DistributedPlanner planner;
  const core::PipelinePlan plan =
      planner.plan_pipeline(analysis.timeline, options);

  std::printf("\nsingle-device footprint: %s (%s on a %s)\n",
              util::format_bytes(plan.single_device_peak).c_str(),
              plan.single_device_peak > device.job_budget() ? "DOES NOT FIT"
                                                            : "fits",
              device.name.c_str());
  std::printf("\n%-6s %-22s %14s %14s %14s\n", "stage", "components",
              "persistent", "activations", "est. peak");
  for (std::size_t s = 0; s < plan.stages.size(); ++s) {
    const core::PipelineStage& stage = plan.stages[s];
    char range[32];
    std::snprintf(range, sizeof(range), "[%zu .. %zu]", stage.first_component,
                  stage.last_component);
    std::printf("%-6zu %-22s %14s %14s %14s%s\n", s, range,
                util::format_bytes(stage.persistent_bytes).c_str(),
                util::format_bytes(stage.activation_bytes).c_str(),
                util::format_bytes(stage.estimated_peak).c_str(),
                stage.estimated_peak > device.job_budget() ? "  [too big]"
                                                           : "");
  }
  std::printf("\nmax stage peak %s -> pipeline %s on %d x %s\n",
              util::format_bytes(plan.max_stage_peak).c_str(),
              plan.max_stage_peak > device.job_budget() ? "DOES NOT FIT"
                                                        : "fits",
              options.pipeline_stages, device.name.c_str());
  std::printf("adding data parallelism costs a further %s per rank "
              "(gradient-bucket staging)\n",
              util::format_bytes(planner.data_parallel_overhead(options))
                  .c_str());
  return 0;
}
