// What-if sweep: the profile-once/estimate-many workflow the service layer
// exists for. One training job is profiled on CPU a single time; the
// EstimationService then answers every (device, allocator) combination a
// scheduler could ask about with cheap concurrent simulator replays. The
// stage counters in the report prove the profile ran exactly once.
//
//   ./what_if_sweep [model] [batch] [optimizer]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "alloc/backend_registry.h"
#include "core/estimation_service.h"
#include "models/zoo.h"
#include "util/bytes.h"

int main(int argc, char** argv) {
  using namespace xmem;

  core::EstimateRequest request;
  request.job.model_name = argc > 1 ? argv[1] : "gpt2";
  request.job.batch_size = argc > 2 ? std::atoi(argv[2]) : 16;
  request.job.optimizer = argc > 3 ? fw::optimizer_from_string(argv[3])
                                   : fw::OptimizerKind::kAdamW;
  if (!models::is_known_model(request.job.model_name)) {
    std::fprintf(stderr, "unknown model '%s'\n",
                 request.job.model_name.c_str());
    return 1;
  }
  request.devices = gpu::all_devices();
  request.allocators = alloc::backend_names();

  std::printf("What-if sweep: %s across %zu devices x %zu allocators\n\n",
              request.job.label().c_str(), request.devices.size(),
              request.allocators.size());

  core::EstimationService service;
  const core::EstimateReport report = service.sweep(request);

  std::printf("%-20s %-10s %14s %10s %12s\n", "device", "allocator",
              "est. peak", "verdict", "simulate(ms)");
  for (const core::EstimateEntry& entry : report.entries) {
    std::printf("%-20s %-10s %14s %10s %12.2f\n", entry.device.c_str(),
                entry.allocator.c_str(),
                util::format_bytes(entry.estimated_peak).c_str(),
                entry.oom_predicted ? "OOM" : "fits",
                entry.timings.simulate_seconds * 1e3);
  }

  std::printf("\nstage counters: %zu CPU profile(s), %zu session hits, %zu "
              "replays, wall %.1f ms\n",
              report.profiles_run, report.profile_cache_hits,
              report.replays_run, report.wall_seconds * 1e3);
  std::printf("The expensive stage ran %zu time(s) for %zu answers — the "
              "paper's one-profile/many-questions claim as an API.\n",
              report.profiles_run, report.entries.size());
  return report.profiles_run == 1 ? 0 : 1;
}
