// zero_grad placement analysis: the Figure-1 experiment as a user-facing
// tool. Given a model, it estimates (CPU-only, via xMem) how much GPU
// memory each zero_grad() placement needs, verifies both against the
// simulated GPU, and reports the cheaper loop structure — the kind of
// code-level guidance a practitioner gets from an accurate a-priori
// estimator.
//
//   ./zero_grad_analysis [model] [batch] [optimizer]
#include <cstdio>
#include <cstdlib>

#include "core/estimation_service.h"
#include "gpu/ground_truth.h"
#include "models/zoo.h"
#include "util/bytes.h"

int main(int argc, char** argv) {
  using namespace xmem;
  const std::string model_name = argc > 1 ? argv[1] : "Qwen3-0.6B";
  const int batch = argc > 2 ? std::atoi(argv[2]) : 2;
  const fw::OptimizerKind optimizer = argc > 3
                                          ? fw::optimizer_from_string(argv[3])
                                          : fw::OptimizerKind::kSgd;
  if (!models::is_known_model(model_name)) {
    std::fprintf(stderr, "unknown model '%s'\n", model_name.c_str());
    return 1;
  }
  const gpu::DeviceModel device = gpu::rtx3060();

  std::printf("zero_grad() placement analysis: %s, batch %d, %s on %s\n\n",
              model_name.c_str(), batch, to_string(optimizer),
              device.name.c_str());

  core::EstimationService service;
  gpu::GroundTruthRunner runner;
  const fw::ModelDescriptor model = models::build_model(model_name, batch);

  std::int64_t estimates[2] = {0, 0};
  const fw::ZeroGradPlacement placements[2] = {
      fw::ZeroGradPlacement::kPos0BeforeBackward,
      fw::ZeroGradPlacement::kPos1IterStart};
  const char* descriptions[2] = {
      "POS0: optimizer.zero_grad() just before loss.backward()",
      "POS1: optimizer.zero_grad() at the start of the iteration"};

  for (int p = 0; p < 2; ++p) {
    core::TrainJob job;
    job.model_name = model_name;
    job.batch_size = batch;
    job.optimizer = optimizer;
    job.placement = placements[p];
    job.seed = 99;
    const core::EstimateEntry estimate = service.estimate("xMem", job, device);
    estimates[p] = estimate.estimated_peak;

    gpu::GroundTruthOptions options;
    options.placement = placements[p];
    options.seed = 99;
    const auto truth = runner.run(model, optimizer, device, options);

    std::printf("%s\n", descriptions[p]);
    std::printf("  xMem estimate (CPU-only): %s%s\n",
                util::format_bytes(estimate.estimated_peak).c_str(),
                estimate.oom_predicted ? "  [would OOM]" : "");
    if (truth.oom) {
      std::printf("  verification run        : OOM\n\n");
    } else {
      std::printf("  verification run        : %s\n\n",
                  util::format_bytes(truth.peak_job_bytes).c_str());
    }
  }

  const std::int64_t saving = estimates[0] - estimates[1];
  if (saving > 0) {
    std::printf("Moving zero_grad() to the start of the iteration (POS1) "
                "frees an estimated %s of GPU memory for this job —\n"
                "the previous step's gradients no longer coexist with the "
                "forward activations.\n",
                util::format_bytes(saving).c_str());
  } else {
    std::printf("For this workload the placement makes little difference "
                "(%s); the loss-side activation spike dominates.\n",
                util::format_bytes(-saving).c_str());
  }
  return 0;
}
