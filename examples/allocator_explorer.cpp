// Allocator explorer: an interactive-style tour of the CUDACachingAllocator
// port (the Figure 2 background material). Feeds a scripted allocation
// sequence through the two-level tower and dumps the segment map after each
// step, showing round-up, 2 MiB / 20 MiB buffers, best-fit splitting,
// coalescing, caching, and reclaim-then-retry.
#include <cstdio>
#include <string>
#include <vector>

#include "alloc/caching_allocator.h"
#include "alloc/cuda_driver_sim.h"
#include "util/bytes.h"

namespace {

using namespace xmem;
using alloc::CachingAllocatorSim;
using alloc::SimulatedCudaDriver;
using util::format_bytes;
using util::kMiB;

void dump(const CachingAllocatorSim& allocator,
          const SimulatedCudaDriver& driver) {
  std::printf("    segments (reserved %s, tensors %s, driver %s):\n",
              format_bytes(allocator.stats().reserved_bytes).c_str(),
              format_bytes(allocator.stats().allocated_bytes).c_str(),
              format_bytes(driver.stats().used_bytes).c_str());
  for (const alloc::SegmentInfo& segment : allocator.snapshot()) {
    std::string layout;
    for (const alloc::BlockInfo& block : segment.blocks) {
      layout += block.allocated ? "[" : "(";
      layout += format_bytes(block.size);
      layout += block.allocated ? "]" : ")";
    }
    std::printf("      %s %-9s %s\n", segment.is_small_pool ? "small" : "large",
                format_bytes(segment.size).c_str(), layout.c_str());
  }
}

}  // namespace

int main() {
  std::printf("CUDACachingAllocator explorer — [x] = live block, (x) = "
              "cached free block\n\n");
  SimulatedCudaDriver driver(64 * kMiB);
  CachingAllocatorSim allocator(driver);

  std::printf("1. allocate 100 B -> rounded to 512 B inside a 2 MiB small "
              "buffer\n");
  const auto tiny = allocator.allocate(100);
  dump(allocator, driver);

  std::printf("\n2. allocate 3 MiB -> a 20 MiB large buffer is reserved and "
              "split\n");
  const auto medium = allocator.allocate(3 * kMiB);
  dump(allocator, driver);

  std::printf("\n3. allocate 5 MiB -> best-fit takes the 17 MiB remainder, "
              "no new segment\n");
  const auto second = allocator.allocate(5 * kMiB);
  dump(allocator, driver);

  std::printf("\n4. free the 3 MiB block -> cached inside its segment (not "
              "returned to the device)\n");
  allocator.free(medium.id);
  dump(allocator, driver);

  std::printf("\n5. allocate 2 MiB -> best-fit hands out the cached 3 MiB "
              "block whole: the 1 MiB remainder is at the large-pool split "
              "threshold, so it stays as internal fragmentation\n");
  const auto reuse = allocator.allocate(2 * kMiB);
  dump(allocator, driver);

  std::printf("\n6. free everything in the large segment -> neighbours "
              "coalesce back to one 20 MiB block\n");
  allocator.free(reuse.id);
  allocator.free(second.id);
  dump(allocator, driver);

  std::printf("\n7. allocate 36 MiB -> driver has only %s free; the cached "
              "20 MiB segment is reclaimed first (reclaim-then-retry), then "
              "the allocation succeeds\n",
              format_bytes(driver.free_bytes()).c_str());
  const auto big = allocator.allocate(36 * kMiB);
  dump(allocator, driver);
  std::printf("    cache reclaims: %lld, segments released: %lld\n",
              static_cast<long long>(allocator.stats().num_cache_reclaims),
              static_cast<long long>(allocator.stats().num_segments_released));

  std::printf("\n8. allocate 36 MiB more -> both levels fail even after "
              "reclamation: OOM\n");
  const auto oom = allocator.allocate(36 * kMiB);
  std::printf("    outcome: %s\n", oom.oom ? "OOM (as expected)" : "fit!?");

  std::printf("\n9. free all + empty_cache() -> device fully clean\n");
  allocator.free(tiny.id);
  allocator.free(big.id);
  allocator.empty_cache();
  dump(allocator, driver);
  return oom.oom ? 0 : 1;
}
