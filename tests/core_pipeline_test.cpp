// End-to-end xMem pipeline tests: estimates against ground truth across the
// zoo, OOM prediction consistency, the orchestrator ablation, determinism,
// and pipeline internals (filtering, address reuse on real traces).
#include <gtest/gtest.h>

#include "core/xmem_estimator.h"
#include "gpu/ground_truth.h"
#include "models/zoo.h"
#include "util/bytes.h"

namespace xmem::core {
namespace {

struct PipelineCase {
  const char* model;
  int batch;
  fw::OptimizerKind optimizer;
};

core::TrainJob make_job(const PipelineCase& c,
                        fw::ZeroGradPlacement placement =
                            fw::ZeroGradPlacement::kPos1IterStart) {
  TrainJob job;
  job.model_name = c.model;
  job.batch_size = c.batch;
  job.optimizer = c.optimizer;
  job.placement = placement;
  job.seed = 5;
  return job;
}

gpu::GroundTruthResult ground_truth(const TrainJob& job,
                                    const gpu::DeviceModel& device) {
  const fw::ModelDescriptor model =
      models::build_model(job.model_name, job.batch_size);
  gpu::GroundTruthRunner runner;
  gpu::GroundTruthOptions options;
  options.placement = job.placement;
  options.seed = job.seed;
  return runner.run(model, job.optimizer, device, options);
}

class PipelineAccuracy : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(PipelineAccuracy, EstimateWithinTolerance) {
  const TrainJob job = make_job(GetParam());
  const gpu::DeviceModel device = gpu::rtx3060();
  const gpu::GroundTruthResult truth = ground_truth(job, device);
  XMemEstimator estimator;
  const EstimateResult estimate = estimator.estimate(job, device);

  if (truth.oom) {
    EXPECT_TRUE(estimate.oom_predicted) << job.label();
    return;
  }
  const double error =
      std::abs(static_cast<double>(estimate.estimated_peak -
                                   truth.peak_job_bytes)) /
      static_cast<double>(truth.peak_job_bytes);
  EXPECT_LT(error, 0.15) << job.label() << ": estimate "
                         << util::format_bytes(estimate.estimated_peak)
                         << " vs truth "
                         << util::format_bytes(truth.peak_job_bytes);
  EXPECT_GT(estimate.runtime_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, PipelineAccuracy,
    ::testing::Values(
        PipelineCase{"VGG16", 300, fw::OptimizerKind::kSgd},
        PipelineCase{"ResNet101", 400, fw::OptimizerKind::kAdam},
        PipelineCase{"MobileNetV2", 500, fw::OptimizerKind::kRmsprop},
        PipelineCase{"MobileNetV3Small", 700, fw::OptimizerKind::kAdagrad},
        PipelineCase{"ConvNeXtTiny", 200, fw::OptimizerKind::kAdamW},
        PipelineCase{"ConvNeXtBase", 300, fw::OptimizerKind::kSgd},
        PipelineCase{"distilgpt2", 10, fw::OptimizerKind::kAdamW},
        PipelineCase{"gpt2", 10, fw::OptimizerKind::kSgd},
        PipelineCase{"T5-small", 10, fw::OptimizerKind::kAdafactor},
        PipelineCase{"opt-125m", 15, fw::OptimizerKind::kSgd},
        PipelineCase{"Qwen3-0.6B", 2, fw::OptimizerKind::kSgd},
        PipelineCase{"pythia-1b", 1, fw::OptimizerKind::kAdafactor}),
    [](const auto& param_info) {
      std::string name = std::string(param_info.param.model) + "_b" +
                         std::to_string(param_info.param.batch) + "_" +
                         to_string(param_info.param.optimizer);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(Pipeline, ErrorsAreSmallAndTwoSidedBounded) {
  // xMem's reliability comes from errors staying within a few percent in
  // either direction: small underestimates are absorbed by the allocator's
  // cache reclamation in the capped rerun, and small overestimates waste
  // little memory. Assert both tails are tight across a mixed sample.
  const std::vector<PipelineCase> cases = {
      {"VGG19", 400, fw::OptimizerKind::kSgd},
      {"ResNet152", 300, fw::OptimizerKind::kAdamW},
      {"MnasNet", 600, fw::OptimizerKind::kAdam},
      {"distilgpt2", 15, fw::OptimizerKind::kSgd},
      {"gpt2", 5, fw::OptimizerKind::kAdafactor},
      {"t5-base", 5, fw::OptimizerKind::kSgd},
  };
  XMemEstimator estimator;
  double worst_under = 0.0;
  double sum_abs = 0.0;
  for (const auto& c : cases) {
    const TrainJob job = make_job(c);
    const gpu::GroundTruthResult truth = ground_truth(job, gpu::rtx3060());
    ASSERT_FALSE(truth.oom) << job.label();
    const EstimateResult estimate = estimator.estimate(job, gpu::rtx3060());
    const double signed_error =
        static_cast<double>(estimate.estimated_peak - truth.peak_job_bytes) /
        static_cast<double>(truth.peak_job_bytes);
    worst_under = std::min(worst_under, signed_error);
    sum_abs += std::abs(signed_error);
  }
  EXPECT_GT(worst_under, -0.06)
      << "underestimates beyond reclamation reach would inflate PEF";
  EXPECT_LT(sum_abs / static_cast<double>(cases.size()), 0.05);
}

TEST(Pipeline, OomPredictionMatchesBudgetComparison) {
  XMemEstimator estimator;
  const TrainJob job = make_job({"pythia-1b", 8, fw::OptimizerKind::kAdam});
  const EstimateResult on_3060 = estimator.estimate(job, gpu::rtx3060());
  EXPECT_TRUE(on_3060.oom_predicted);
  EXPECT_GT(on_3060.estimated_peak, gpu::rtx3060().job_budget());
  // The same estimate against a 40 GB device flips the prediction.
  const EstimateResult on_a100 = estimator.estimate(job, gpu::a100_40gb());
  EXPECT_FALSE(on_a100.oom_predicted);
  EXPECT_NEAR(static_cast<double>(on_3060.estimated_peak),
              static_cast<double>(on_a100.estimated_peak),
              static_cast<double>(on_a100.estimated_peak) * 0.02);
}

TEST(Pipeline, DeterministicEstimates) {
  XMemEstimator estimator;
  const TrainJob job = make_job({"gpt2", 10, fw::OptimizerKind::kAdamW});
  const EstimateResult a = estimator.estimate(job, gpu::rtx3060());
  const EstimateResult b = estimator.estimate(job, gpu::rtx3060());
  EXPECT_EQ(a.estimated_peak, b.estimated_peak);
}

TEST(Pipeline, JsonRoundTripDoesNotChangeEstimate) {
  const TrainJob job = make_job({"distilgpt2", 8, fw::OptimizerKind::kAdam});
  XMemOptions with_json;
  with_json.json_round_trip = true;
  XMemOptions without_json;
  without_json.json_round_trip = false;
  const auto a = XMemEstimator(with_json).estimate(job, gpu::rtx3060());
  const auto b = XMemEstimator(without_json).estimate(job, gpu::rtx3060());
  EXPECT_EQ(a.estimated_peak, b.estimated_peak);
}

TEST(Pipeline, OrchestratorAblationUnderestimates) {
  // With POS0 placement the previous iteration's gradients overlap forward;
  // the raw CPU trace frees gradients early (deferred-GC timestamps land
  // after optimizer.step but the batch/grad retiming is what models the GPU
  // timeline). Disabling the Orchestrator must lower the estimate.
  const TrainJob job = make_job({"Qwen3-0.6B", 2, fw::OptimizerKind::kSgd},
                                fw::ZeroGradPlacement::kPos0BeforeBackward);
  XMemOptions on;
  XMemOptions off;
  off.orchestrate = false;
  const auto with_orch = XMemEstimator(on).estimate(job, gpu::rtx3060());
  const auto without_orch = XMemEstimator(off).estimate(job, gpu::rtx3060());
  EXPECT_NE(without_orch.estimated_peak, with_orch.estimated_peak);

  const gpu::GroundTruthResult truth = ground_truth(job, gpu::rtx3060());
  ASSERT_FALSE(truth.oom);
  const auto err = [&](const EstimateResult& e) {
    return std::abs(static_cast<double>(e.estimated_peak -
                                        truth.peak_job_bytes)) /
           static_cast<double>(truth.peak_job_bytes);
  };
  EXPECT_LT(err(with_orch), err(without_orch))
      << "the Orchestrator must improve accuracy on POS0 workloads";
}

TEST(Pipeline, ArtifactsExposeInternals) {
  const TrainJob job = make_job({"distilgpt2", 6, fw::OptimizerKind::kAdamW});
  XMemEstimator estimator;
  const auto artifacts = estimator.run_pipeline(job, /*record_series=*/true);

  // The profiler trace is non-trivial and CPU-backed.
  EXPECT_GT(artifacts.trace.events.size(), 500u);
  EXPECT_EQ(artifacts.trace.backend, "cpu");
  // The Analyzer filtered script noise and saw address reuse.
  EXPECT_GT(artifacts.analysis.stats.filtered_blocks, 0u);
  EXPECT_GT(artifacts.analysis.stats.address_reuses, 0u);
  EXPECT_GT(artifacts.analysis.stats.matched_pairs, 0u);
  // The Orchestrator applied its rules.
  EXPECT_GT(artifacts.orchestration.stats.gradients_retimed, 0u);
  EXPECT_GT(artifacts.orchestration.stats.batch_truncated, 0u);
  EXPECT_GT(artifacts.orchestration.stats.optimizer_states_pinned, 0u);
  // The Simulator produced curves.
  EXPECT_FALSE(artifacts.simulation.reserved_series.empty());
  EXPECT_GT(artifacts.simulation.peak_reserved, 0);
}

TEST(Pipeline, ThreeIterationsMatchFiveIterationGroundTruth) {
  // The paper profiles only 3 iterations; memory must have stabilized so
  // the estimate holds for longer runs.
  const TrainJob job = make_job({"MobileNetV2", 300, fw::OptimizerKind::kAdam});
  XMemEstimator estimator;
  const EstimateResult estimate = estimator.estimate(job, gpu::rtx3060());

  const fw::ModelDescriptor model = models::build_model(job.model_name, 300);
  gpu::GroundTruthRunner runner;
  gpu::GroundTruthOptions options;
  options.iterations = 8;  // much longer than the profiling window
  options.seed = job.seed;
  const auto truth = runner.run(model, job.optimizer, gpu::rtx3060(), options);
  ASSERT_FALSE(truth.oom);
  const double error =
      std::abs(static_cast<double>(estimate.estimated_peak -
                                   truth.peak_job_bytes)) /
      static_cast<double>(truth.peak_job_bytes);
  EXPECT_LT(error, 0.15);
}

}  // namespace
}  // namespace xmem::core
