// Whole-zoo trace properties: for every model in the zoo, a profiling run
// must produce a structurally sound trace (balanced spans, valid parents,
// coherent timestamps) that survives JSON round-tripping and analysis.
// These are the invariants the downstream pipeline relies on.
#include <gtest/gtest.h>

#include <cctype>
#include <unordered_map>
#include <unordered_set>

#include "core/analyzer.h"
#include "core/profile_runner.h"
#include "models/workload.h"
#include "models/zoo.h"

namespace xmem {
namespace {

int small_batch_for(const std::string& model_name) {
  const auto grid = models::batch_grid_for(model_name);
  return grid.front();
}

class ZooTraceProperty : public ::testing::TestWithParam<std::string> {
 protected:
  static trace::Trace make_trace(const std::string& model_name) {
    const fw::ModelDescriptor model =
        models::build_model(model_name, small_batch_for(model_name));
    core::ProfileOptions options;
    options.iterations = 2;  // keep the sweep quick
    return core::profile_on_cpu(model, fw::OptimizerKind::kAdamW, options);
  }
};

TEST_P(ZooTraceProperty, SpansAreWellFormed) {
  const trace::Trace t = make_trace(GetParam());
  std::unordered_map<std::int64_t, const trace::TraceEvent*> by_id;
  for (const auto& e : t.events) {
    if (e.kind != trace::EventKind::kCpuInstantEvent) {
      EXPECT_GE(e.dur, 0);
      EXPECT_EQ(by_id.count(e.id), 0u) << "duplicate event id";
      by_id[e.id] = &e;
    }
  }
  for (const auto& e : t.events) {
    if (e.kind == trace::EventKind::kCpuInstantEvent) continue;
    if (e.parent_id < 0) continue;
    auto parent = by_id.find(e.parent_id);
    ASSERT_NE(parent, by_id.end()) << "dangling parent id";
    // A child's span lies within its parent's span.
    EXPECT_GE(e.ts, parent->second->ts);
    EXPECT_LE(e.end_ts(), parent->second->end_ts());
  }
}

TEST_P(ZooTraceProperty, TimestampsAreMonotoneNonDecreasing) {
  const trace::Trace t = make_trace(GetParam());
  util::TimeUs last = 0;
  for (const auto& e : t.events) {
    EXPECT_GE(e.ts, last) << "events must be emitted in start order";
    last = e.ts;
  }
}

TEST_P(ZooTraceProperty, JsonRoundTripIsLossless) {
  const trace::Trace t = make_trace(GetParam());
  const trace::Trace parsed = trace::Trace::from_json_string(t.to_json_string());
  ASSERT_EQ(parsed.events.size(), t.events.size());
  for (std::size_t i = 0; i < t.events.size(); ++i) {
    EXPECT_EQ(parsed.events[i].kind, t.events[i].kind);
    EXPECT_EQ(parsed.events[i].ts, t.events[i].ts);
    EXPECT_EQ(parsed.events[i].bytes, t.events[i].bytes);
    EXPECT_EQ(parsed.events[i].addr, t.events[i].addr);
    EXPECT_EQ(parsed.events[i].seq, t.events[i].seq);
  }
}

TEST_P(ZooTraceProperty, AnalyzerProducesCoherentTimeline) {
  const trace::Trace t = make_trace(GetParam());
  const auto out = core::Analyzer().analyze(t);
  const auto& tl = out.timeline;
  ASSERT_EQ(tl.iterations.size(), 2u);
  EXPECT_FALSE(tl.blocks.empty());
  EXPECT_FALSE(tl.param_sizes.empty());
  // Lifecycles are sane: free after alloc, windows ordered.
  for (const auto& b : tl.blocks) {
    EXPECT_GT(b.size, 0);
    if (!b.persistent()) {
      EXPECT_GT(b.free_ts, b.alloc_ts);
    }
  }
  for (std::size_t i = 1; i < tl.iterations.size(); ++i) {
    EXPECT_LE(tl.iterations[i - 1].end, tl.iterations[i].start);
  }
  // Model-load blocks exist and are persistent (they become param_sizes).
  std::size_t model_load_blocks = 0;
  for (const auto& b : tl.blocks) {
    if (b.phase == core::Phase::kModelLoad) {
      ++model_load_blocks;
      EXPECT_TRUE(b.persistent());
    }
  }
  EXPECT_GT(model_load_blocks, 0u);
  // Script noise must have been filtered on every model.
  EXPECT_GT(out.stats.filtered_blocks, 0u);
}

TEST_P(ZooTraceProperty, BackwardMirrorsForwardSequenceNumbers) {
  const trace::Trace t = make_trace(GetParam());
  // Every backward op's sequence number matches exactly one forward op.
  std::unordered_set<std::int64_t> forward_seqs;
  for (const auto& e : t.events) {
    if (e.kind == trace::EventKind::kCpuOp && e.seq >= 0 &&
        e.name.find("_backward") == std::string::npos) {
      forward_seqs.insert(e.seq);
    }
  }
  std::size_t backward_ops = 0;
  for (const auto& e : t.events) {
    if (e.kind == trace::EventKind::kCpuOp &&
        e.name.find("_backward") != std::string::npos) {
      ++backward_ops;
      EXPECT_TRUE(forward_seqs.count(e.seq))
          << e.name << " has unmatched sequence number " << e.seq;
    }
  }
  EXPECT_GT(backward_ops, 0u);
}

INSTANTIATE_TEST_SUITE_P(Zoo, ZooTraceProperty,
                         ::testing::ValuesIn(models::all_model_names()),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace xmem
