// Failure-injection tests: corrupted traces, adversarial replay sequences,
// capacity edge cases, and mid-run OOM behaviour. The pipeline must either
// degrade gracefully (count + skip) or fail loudly (throw) — never corrupt
// state silently.
#include <gtest/gtest.h>

#include "core/analyzer.h"
#include "core/orchestrator.h"
#include "core/profile_runner.h"
#include "core/simulator.h"
#include "core/xmem_estimator.h"
#include "fw/executor.h"
#include "fw/memory_env.h"
#include "gpu/ground_truth.h"
#include "models/zoo.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace xmem {
namespace {

using util::kMiB;

// ---------- corrupted trace inputs ----------

trace::Trace healthy_trace() {
  const fw::ModelDescriptor model = models::build_model("MobileNetV2", 8);
  return core::profile_on_cpu(model, fw::OptimizerKind::kAdam);
}

TEST(FailureInjection, AnalyzerSurvivesDroppedFrees) {
  trace::Trace t = healthy_trace();
  // Drop every third deallocation event: blocks become "persistent".
  std::vector<trace::TraceEvent> kept;
  int dropped = 0, counter = 0;
  for (const auto& e : t.events) {
    if (e.kind == trace::EventKind::kCpuInstantEvent && e.bytes < 0 &&
        ++counter % 3 == 0) {
      ++dropped;
      continue;
    }
    kept.push_back(e);
  }
  t.events = std::move(kept);
  ASSERT_GT(dropped, 0);
  const auto out = core::Analyzer().analyze(t);
  // Dropped frees surface as persistent blocks, not crashes.
  EXPECT_GE(out.stats.persistent_blocks, static_cast<std::size_t>(dropped));
}

TEST(FailureInjection, AnalyzerSurvivesDuplicatedFrees) {
  trace::Trace t = healthy_trace();
  std::vector<trace::TraceEvent> doubled;
  for (const auto& e : t.events) {
    doubled.push_back(e);
    if (e.kind == trace::EventKind::kCpuInstantEvent && e.bytes < 0) {
      doubled.push_back(e);  // double free
    }
  }
  t.events = std::move(doubled);
  const auto out = core::Analyzer().analyze(t);
  EXPECT_GT(out.stats.unmatched_frees, 0u);
}

TEST(FailureInjection, AnalyzerSurvivesShuffledMemoryEvents) {
  trace::Trace t = healthy_trace();
  // Shuffle a window of memory events (profilers can emit out-of-order
  // timestamps across threads). The Analyzer must not crash and must still
  // produce a usable timeline.
  util::Rng rng(5);
  std::vector<std::size_t> mem_indices;
  for (std::size_t i = 0; i < t.events.size(); ++i) {
    if (t.events[i].kind == trace::EventKind::kCpuInstantEvent) {
      mem_indices.push_back(i);
    }
  }
  for (std::size_t k = 0; k + 1 < 50 && k + 1 < mem_indices.size(); k += 2) {
    std::swap(t.events[mem_indices[k]], t.events[mem_indices[k + 1]]);
  }
  const auto out = core::Analyzer().analyze(t);
  EXPECT_FALSE(out.timeline.blocks.empty());
}

TEST(FailureInjection, TruncatedJsonThrows) {
  const std::string json = healthy_trace().to_json_string();
  const std::string truncated = json.substr(0, json.size() / 2);
  EXPECT_THROW(trace::Trace::from_json_string(truncated),
               util::JsonParseError);
}

TEST(FailureInjection, EmptyTraceRejected) {
  trace::Trace empty;
  EXPECT_THROW(core::Analyzer().analyze(empty), std::runtime_error);
}

// ---------- adversarial replay sequences ----------

TEST(FailureInjection, SimulatorIgnoresFreeOfUnknownBlock) {
  core::OrchestratedSequence seq;
  seq.events.push_back(core::OrchestratedEvent{0, 42, 4 * kMiB, false});
  const auto result = core::MemorySimulator().replay(seq);
  EXPECT_FALSE(result.oom);
  EXPECT_EQ(result.peak_reserved, 0);
}

TEST(FailureInjection, SimulatorStopsCleanlyAtOom) {
  core::OrchestratedSequence seq;
  for (std::int64_t i = 0; i < 10; ++i) {
    seq.events.push_back(
        core::OrchestratedEvent{i, i + 1, 10 * kMiB, true});
  }
  core::SimulationOptions options;
  options.capacity = 35 * kMiB;
  const auto result = core::MemorySimulator().replay(seq, options);
  EXPECT_TRUE(result.oom);
  // Peak never exceeds capacity.
  EXPECT_LE(result.peak_reserved, options.capacity);
}

// ---------- capacity edge cases ----------

TEST(FailureInjection, GroundTruthWithMinusculeBudget) {
  const fw::ModelDescriptor model = models::build_model("MobileNetV2", 8);
  gpu::GroundTruthRunner runner;
  gpu::GroundTruthOptions options;
  options.budget_override = 1;  // clamped to one driver page
  const auto result = runner.run(model, fw::OptimizerKind::kSgd,
                                 gpu::rtx3060(), options);
  EXPECT_TRUE(result.oom);
  EXPECT_LE(result.peak_job_bytes, alloc::SimulatedCudaDriver::kPageSize);
}

TEST(FailureInjection, OomAbortsMidIterationWithConsistentState) {
  // A budget that admits the parameters but not the activations: the
  // executor must throw OomError exactly once and the allocator counters
  // must balance at the abort point.
  const fw::ModelDescriptor model = models::build_model("gpt2", 30);
  alloc::SimulatedCudaDriver driver(2 * util::kGiB);
  alloc::CachingAllocatorSim allocator(driver);
  util::SimClock clock;
  gpu::NvmlSampler sampler(clock, driver);
  gpu::GpuMemoryEnv env(allocator, sampler);
  fw::ExecOptions options;
  options.iterations = 3;
  fw::TrainingExecutor executor(model, fw::OptimizerKind::kAdam,
                                fw::Backend::kCuda, env, clock, nullptr,
                                options);
  EXPECT_THROW(executor.run(), fw::OomError);
  // Everything the allocator handed out is still tracked (no leak of
  // bookkeeping on the exception path).
  EXPECT_EQ(allocator.stats().num_allocs,
            allocator.stats().num_frees +
                static_cast<std::int64_t>(allocator.num_live_blocks()));
  // The device never exceeded its capacity.
  EXPECT_LE(driver.stats().peak_used_bytes, 2 * util::kGiB);
}

TEST(FailureInjection, EstimatorRejectsUnknownModel) {
  core::XMemEstimator estimator;
  core::TrainJob job;
  job.model_name = "NotAModel";
  job.batch_size = 4;
  EXPECT_THROW(estimator.estimate(job, gpu::rtx3060()),
               std::invalid_argument);
}

TEST(FailureInjection, OrchestratorHandlesEmptyTimeline) {
  core::MemoryTimeline timeline;
  timeline.iterations = {{0, 100}};
  const auto out = core::Orchestrator().orchestrate(timeline);
  EXPECT_TRUE(out.sequence.events.empty());
  const auto sim = core::MemorySimulator().replay(out.sequence);
  EXPECT_EQ(sim.peak_reserved, 0);
}

// ---------- estimation still works under trace degradation ----------

TEST(FailureInjection, EstimateDegradesGracefullyWithMissingAnnotations) {
  // Remove the zero_grad annotations: rule 4 loses its anchor and gradients
  // become persistent in the replay — a (conservative) overestimate, not a
  // crash.
  const fw::ModelDescriptor model = models::build_model("distilgpt2", 4);
  trace::Trace t = core::profile_on_cpu(model, fw::OptimizerKind::kAdamW);
  std::vector<trace::TraceEvent> kept;
  for (const auto& e : t.events) {
    if (e.kind == trace::EventKind::kUserAnnotation &&
        e.name.rfind("Optimizer.zero_grad", 0) == 0) {
      continue;
    }
    kept.push_back(e);
  }
  t.events = std::move(kept);

  const auto full = core::Analyzer().analyze(
      core::profile_on_cpu(model, fw::OptimizerKind::kAdamW));
  const auto degraded = core::Analyzer().analyze(t);
  const auto full_sim = core::MemorySimulator().replay(
      core::Orchestrator().orchestrate(full.timeline).sequence);
  const auto degraded_sim = core::MemorySimulator().replay(
      core::Orchestrator().orchestrate(degraded.timeline).sequence);
  EXPECT_GE(degraded_sim.peak_reserved, full_sim.peak_reserved);
}

}  // namespace
}  // namespace xmem
