// Protocol-fuzz suite for the `xmem serve` wire layer (server/protocol.h).
//
// The daemon's framing contract: for ANY byte stream a client puts on the
// wire, the server either answers an actionable error frame or closes the
// connection cleanly — it never crashes, never hangs, and never wedges the
// listener for other clients. The suite pins that three ways:
//
//   * targeted malformations — truncated headers and payloads, oversized
//     length prefixes, garbage JSON, non-object envelopes, unknown types,
//     unknown fields, zero-length frames — each with its exact expected
//     error code (protocol.h kErr* constants) or close behavior;
//   * a seeded random frame mutator (util::Rng, the alloc_parity_test
//     recipe): 10,000 mutations of a small corpus — bit flips, truncations,
//     header corruption, garbage injection, frame duplication — against ONE
//     server; every connection must resolve (reply frames or clean close)
//     before a receive timeout, and the server must still answer a clean
//     ping afterwards;
//   * the shrinker pattern from alloc_parity_test: when a mutated byte
//     string misbehaves, shrink_failing_bytes() reduces it to a minimal
//     reproducer before reporting, so a fuzz failure arrives debuggable.
//
// Requests in the corpus are cheap by construction (control-plane types and
// a fast-failing sweep), so the 10k campaign exercises admission + framing,
// not the estimation pipeline.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "server/client.h"
#include "server/server.h"
#include "util/json.h"
#include "util/rng.h"

namespace xmem {
namespace {

std::string socket_path_for(const std::string& name) {
  return "/tmp/xmem_" + name + "_" + std::to_string(::getpid()) + ".sock";
}

server::ServerConfig protocol_config(const std::string& name) {
  server::ServerConfig config;
  config.socket_path = socket_path_for(name);
  config.workers = 2;
  // Small enough that the oversized path is cheap to trip, large enough
  // for every legitimate frame in this suite.
  config.max_frame_bytes = 1 << 20;
  return config;
}

/// Drain one connection: read frames until the server closes. Returns the
/// terminal status (kClosed for a clean close) and appends every payload
/// received on the way.
server::FrameStatus drain_replies(server::Client& client,
                                  std::vector<std::string>* replies = nullptr) {
  std::string payload;
  while (true) {
    const server::FrameStatus status = client.read_reply(payload);
    if (status != server::FrameStatus::kOk) return status;
    if (replies != nullptr) replies->push_back(payload);
  }
}

/// True when the error envelope carries `code` (and parses at all).
bool has_error_code(const std::string& payload, const std::string& code) {
  try {
    const util::Json reply = util::Json::parse(payload);
    return reply.is_object() && reply.contains("error") &&
           reply.at("error").get_string_or("code", "") == code;
  } catch (const std::exception&) {
    return false;
  }
}

// --- shrinker (the alloc_parity_test pattern, on raw bytes) -----------------

/// Greedy chunk-removal shrinker: while any removal of a chunk (halving
/// sizes down to one byte) still fails the predicate, keep the smaller
/// string. Returns the minimal failing byte string, or "" if `bytes`
/// does not fail to begin with.
std::string shrink_failing_bytes(
    std::string bytes, const std::function<bool(const std::string&)>& fails) {
  if (!fails(bytes)) return std::string();
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t chunk = bytes.size() / 2; chunk >= 1; chunk /= 2) {
      for (std::size_t start = 0; start + chunk <= bytes.size();) {
        std::string candidate = bytes.substr(0, start) +
                                bytes.substr(start + chunk);
        if (fails(candidate)) {
          bytes = std::move(candidate);
          progress = true;
          // Retry the same offset: the next chunk slid into place.
        } else {
          start += chunk;
        }
      }
      if (chunk == 1) break;
    }
  }
  return bytes;
}

std::string hex_dump(const std::string& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  for (unsigned char c : bytes) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xF]);
    out.push_back(' ');
  }
  return out;
}

// --- targeted malformations -------------------------------------------------

TEST(ServerProtocol, TruncatedHeaderClosesCleanly) {
  server::Server daemon(protocol_config("trunc_header"));
  daemon.start();
  {
    server::Client client(daemon.config().socket_path, /*timeout_ms=*/15000);
    ASSERT_TRUE(client.send_bytes(std::string("\x00\x00", 2)));
    client.half_close();
    EXPECT_EQ(drain_replies(client), server::FrameStatus::kClosed);
  }
  EXPECT_EQ(daemon.stats().protocol_errors, 1u);
  // The listener survived: a fresh client gets real service.
  server::Client after(daemon.config().socket_path, /*timeout_ms=*/15000);
  EXPECT_NO_THROW(after.ping());
  daemon.stop();
}

TEST(ServerProtocol, TruncatedPayloadClosesCleanly) {
  server::Server daemon(protocol_config("trunc_payload"));
  daemon.start();
  server::Client client(daemon.config().socket_path, /*timeout_ms=*/15000);
  // Announce 100 bytes, deliver 3, hang up. The server must treat the EOF
  // as a truncation and close — not wait forever for the missing 97.
  const std::string frame = server::encode_frame(std::string(100, 'x'));
  ASSERT_TRUE(client.send_bytes(frame.substr(0, 4 + 3)));
  client.half_close();
  EXPECT_EQ(drain_replies(client), server::FrameStatus::kClosed);
  EXPECT_EQ(daemon.stats().protocol_errors, 1u);
  daemon.stop();
}

TEST(ServerProtocol, OversizedLengthPrefixGetsErrorFrameThenClose) {
  server::Server daemon(protocol_config("oversized"));
  daemon.start();
  server::Client client(daemon.config().socket_path, /*timeout_ms=*/15000);
  // 0xFFFFFFFF announced bytes: answer, do not allocate, do not wait.
  ASSERT_TRUE(client.send_bytes(std::string("\xFF\xFF\xFF\xFF", 4)));
  std::vector<std::string> replies;
  EXPECT_EQ(drain_replies(client, &replies), server::FrameStatus::kClosed);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_TRUE(has_error_code(replies[0], server::kErrFrameTooLarge))
      << replies[0];
  // The message names both the announced size and the limit.
  EXPECT_NE(replies[0].find("4294967295"), std::string::npos) << replies[0];
  EXPECT_EQ(daemon.stats().protocol_errors, 1u);
  daemon.stop();
}

TEST(ServerProtocol, GarbageJsonGetsParseErrorAndConnectionSurvives) {
  server::Server daemon(protocol_config("garbage"));
  daemon.start();
  server::Client client(daemon.config().socket_path, /*timeout_ms=*/15000);
  ASSERT_TRUE(client.send_frame("{\"type\": \"sweep\", oops"));
  std::string reply;
  ASSERT_EQ(client.read_reply(reply), server::FrameStatus::kOk);
  EXPECT_TRUE(has_error_code(reply, server::kErrParse)) << reply;
  // Framing is intact after a payload-level error: the SAME connection
  // still serves a valid request.
  EXPECT_NO_THROW(client.ping());
  EXPECT_EQ(daemon.stats().protocol_errors, 1u);
  daemon.stop();
}

TEST(ServerProtocol, NonObjectEnvelopeRejected) {
  server::Server daemon(protocol_config("nonobject"));
  daemon.start();
  server::Client client(daemon.config().socket_path, /*timeout_ms=*/15000);
  for (const char* payload : {"[1, 2, 3]", "42", "\"hello\"", "null"}) {
    ASSERT_TRUE(client.send_frame(payload));
    std::string reply;
    ASSERT_EQ(client.read_reply(reply), server::FrameStatus::kOk);
    EXPECT_TRUE(has_error_code(reply, server::kErrBadRequest)) << reply;
  }
  daemon.stop();
}

TEST(ServerProtocol, ZeroLengthFrameIsParseError) {
  server::Server daemon(protocol_config("zerolen"));
  daemon.start();
  server::Client client(daemon.config().socket_path, /*timeout_ms=*/15000);
  ASSERT_TRUE(client.send_frame(""));
  std::string reply;
  ASSERT_EQ(client.read_reply(reply), server::FrameStatus::kOk);
  EXPECT_TRUE(has_error_code(reply, server::kErrParse)) << reply;
  daemon.stop();
}

TEST(ServerProtocol, UnknownTypeNamesTheExpectedTypes) {
  server::Server daemon(protocol_config("unknown_type"));
  daemon.start();
  server::Client client(daemon.config().socket_path, /*timeout_ms=*/15000);
  ASSERT_TRUE(client.send_frame("{\"type\": \"teleport\", \"id\": 9}"));
  std::string reply;
  ASSERT_EQ(client.read_reply(reply), server::FrameStatus::kOk);
  EXPECT_TRUE(has_error_code(reply, server::kErrUnsupportedType)) << reply;
  const util::Json parsed = util::Json::parse(reply);
  // The id echoes back and the message lists what WOULD have worked.
  EXPECT_EQ(parsed.at("id").as_int(), 9);
  EXPECT_NE(reply.find("teleport"), std::string::npos) << reply;
  EXPECT_NE(reply.find("sweep|plan|fleet|stats|ping|shutdown"), std::string::npos)
      << reply;
  daemon.stop();
}

TEST(ServerProtocol, UnknownEnvelopeFieldsAreIgnored) {
  server::Server daemon(protocol_config("unknown_fields"));
  daemon.start();
  server::Client client(daemon.config().socket_path, /*timeout_ms=*/15000);
  ASSERT_TRUE(client.send_frame(
      "{\"type\": \"ping\", \"id\": 1, \"x-trace\": \"abc\", "
      "\"priority\": 99}"));
  std::string reply;
  ASSERT_EQ(client.read_reply(reply), server::FrameStatus::kOk);
  const util::Json parsed = util::Json::parse(reply);
  EXPECT_TRUE(parsed.at("ok").as_bool()) << reply;
  daemon.stop();
}

TEST(ServerProtocol, MissingRequestDocumentIsActionable) {
  server::Server daemon(protocol_config("no_request"));
  daemon.start();
  server::Client client(daemon.config().socket_path, /*timeout_ms=*/15000);
  ASSERT_TRUE(client.send_frame("{\"type\": \"sweep\", \"id\": 2}"));
  std::string reply;
  ASSERT_EQ(client.read_reply(reply), server::FrameStatus::kOk);
  EXPECT_TRUE(has_error_code(reply, server::kErrBadRequest)) << reply;
  EXPECT_NE(reply.find("request"), std::string::npos) << reply;
  daemon.stop();
}

// --- seeded frame mutator ---------------------------------------------------

/// Small corpus the mutator starts from. Everything here is cheap for the
/// server to answer: control-plane types, malformed documents, and one
/// sweep whose job fails validation long before any profiling.
std::vector<std::string> fuzz_corpus() {
  return {
      "{\"type\": \"ping\", \"id\": 1}",
      "{\"type\": \"stats\", \"id\": 2}",
      "{\"type\": \"sweep\", \"id\": 3, \"tenant\": \"fuzz\", \"request\": "
      "{\"job\": {\"model\": \"no-such-model\"}, \"devices\": [\"rtx3060\"]}}",
      "{\"type\": \"sweep\", \"id\": 4}",
      "{\"type\": \"warp\", \"id\": 5}",
      "{\"type\": \"sweep\", oops",
      "[]",
      "",
  };
}

/// One mutation of a correctly framed corpus payload: returns the raw
/// bytes to put on the wire.
std::string mutate_frame(util::Rng& rng, const std::string& payload) {
  std::string bytes = server::encode_frame(payload);
  switch (rng.next_below(5)) {
    case 0: {  // flip 1..8 random bytes anywhere (header or payload)
      const std::uint64_t flips = 1 + rng.next_below(8);
      for (std::uint64_t i = 0; i < flips && !bytes.empty(); ++i) {
        const auto pos = static_cast<std::size_t>(
            rng.next_below(bytes.size()));
        bytes[pos] = static_cast<char>(
            static_cast<unsigned char>(bytes[pos]) ^
            static_cast<unsigned char>(1 + rng.next_below(255)));
      }
      break;
    }
    case 1:  // truncate mid-header or mid-payload
      bytes.resize(static_cast<std::size_t>(rng.next_below(bytes.size())));
      break;
    case 2: {  // replace the header with four random bytes
      for (std::size_t i = 0; i < server::kFrameHeaderBytes; ++i) {
        bytes[i] = static_cast<char>(rng.next_below(256));
      }
      break;
    }
    case 3: {  // pure garbage, no framing at all
      const std::uint64_t size = rng.next_below(64);
      bytes.clear();
      for (std::uint64_t i = 0; i < size; ++i) {
        bytes.push_back(static_cast<char>(rng.next_below(256)));
      }
      break;
    }
    default: {  // two frames back to back, one byte corrupted
      bytes += bytes;
      const auto pos = static_cast<std::size_t>(rng.next_below(bytes.size()));
      bytes[pos] = static_cast<char>(
          static_cast<unsigned char>(bytes[pos]) ^ 0x20);
      break;
    }
  }
  return bytes;
}

/// Fire `bytes` at the server on a fresh connection and require the
/// connection to RESOLVE: any number of reply frames followed by a clean
/// close. Returns true on misbehavior (receive timeout / transport error —
/// i.e. the server hung or died mid-frame).
bool server_misbehaves(const std::string& socket_path,
                       const std::string& bytes) {
  try {
    server::Client client(socket_path, /*timeout_ms=*/15000);
    client.send_bytes(bytes);  // a send error just means an early close
    client.half_close();
    return drain_replies(client) == server::FrameStatus::kError;
  } catch (const server::TransportError&) {
    return true;  // connect refused: the listener is gone
  }
}

TEST(ServerProtocolFuzz, TenThousandMutatedFramesNoCrashNoHang) {
  server::Server daemon(protocol_config("fuzz"));
  daemon.start();
  const std::vector<std::string> corpus = fuzz_corpus();

  constexpr int kIterations = 10000;
  util::Rng rng(0xF0221);
  for (int i = 0; i < kIterations; ++i) {
    const std::string& base =
        corpus[static_cast<std::size_t>(rng.next_below(corpus.size()))];
    const std::string bytes = mutate_frame(rng, base);
    if (server_misbehaves(daemon.config().socket_path, bytes)) {
      // Debuggability: shrink before reporting, the parity-suite way.
      const std::string reproducer = shrink_failing_bytes(
          bytes, [&](const std::string& candidate) {
            return server_misbehaves(daemon.config().socket_path, candidate);
          });
      FAIL() << "iteration " << i << ": server hung or died on "
             << bytes.size() << " bytes; shrunk reproducer ("
             << reproducer.size() << " bytes): " << hex_dump(reproducer);
    }
  }

  // The server took the whole campaign and still answers like new.
  server::Client survivor(daemon.config().socket_path, /*timeout_ms=*/15000);
  EXPECT_NO_THROW(survivor.ping());
  const server::ServerStats stats = daemon.stats();
  EXPECT_GE(stats.connections_accepted,
            static_cast<std::uint64_t>(kIterations));
  EXPECT_GT(stats.protocol_errors, 0u);
  EXPECT_EQ(stats.active_connections, 1u);  // only the survivor remains
  daemon.stop();
}

// --- shrinker self-test (mirrors AllocatorParity.ShrinksFailingStream) ------

TEST(ServerProtocolFuzz, ShrinkerReducesToMinimalReproducer) {
  util::Rng rng(99);
  std::string bytes;
  for (int i = 0; i < 512; ++i) {
    bytes.push_back(static_cast<char>(rng.next_below(255)));  // never 0xFF
  }
  bytes[300] = static_cast<char>(0xFF);

  const auto contains_ff = [](const std::string& candidate) {
    return candidate.find(static_cast<char>(0xFF)) != std::string::npos;
  };
  const std::string reproducer = shrink_failing_bytes(bytes, contains_ff);
  ASSERT_EQ(reproducer.size(), 1u) << hex_dump(reproducer);
  EXPECT_EQ(static_cast<unsigned char>(reproducer[0]), 0xFF);
}

TEST(ServerProtocolFuzz, ShrinkerReturnsEmptyForPassingBytes) {
  const auto never_fails = [](const std::string&) { return false; };
  EXPECT_TRUE(shrink_failing_bytes("abcdef", never_fails).empty());
}

}  // namespace
}  // namespace xmem
