// Analyzer unit tests on hand-built traces: lifecycle reconstruction,
// address reuse, attribution, filtering, phase tagging.
#include <gtest/gtest.h>

#include "core/analyzer.h"

namespace xmem::core {
namespace {

using trace::EventKind;
using trace::Trace;
using trace::TraceEvent;

struct TraceBuilder {
  Trace trace;
  std::int64_t next_id = 0;

  std::int64_t span(EventKind kind, const std::string& name, util::TimeUs ts,
                    util::TimeUs dur, std::int64_t parent = -1,
                    std::int64_t seq = -1) {
    TraceEvent e;
    e.kind = kind;
    e.name = name;
    e.ts = ts;
    e.dur = dur;
    e.id = next_id++;
    e.parent_id = parent;
    e.seq = seq;
    trace.add(e);
    return e.id;
  }

  void alloc(std::uint64_t addr, std::int64_t bytes, util::TimeUs ts) {
    TraceEvent e;
    e.kind = EventKind::kCpuInstantEvent;
    e.name = "[memory]";
    e.addr = addr;
    e.bytes = bytes;
    e.ts = ts;
    e.id = next_id++;
    trace.add(e);
  }
  void free(std::uint64_t addr, std::int64_t bytes, util::TimeUs ts) {
    alloc(addr, -bytes, ts);
  }
};

/// A miniature but complete two-iteration trace exercising every rule:
///   Module.to [0,10)       -> param 0xA0 (1000 B), persistent
///   Step#0 [10,100):
///     dataloader [10,20)   -> batch 0xB1 (500 B), freed late at t=96
///     zero_grad [20,22)
///     module fwd [22,50)   -> script noise 0xAAAA (64 B) at t=23 (outside op)
///        op addmm [25,40)  -> activation 0xC0 (300 B) freed at 60
///     backward [50,70)
///        op addmm_backward [52,68) -> gradient 0xD0 (1000 B) freed late t=97
///     optimizer.step [70,90)
///        op zeros_like [72,80)     -> state 0xE0 (1000 B), persistent
///   Step#1 [100,200):
///     dataloader [100,108) -> batch 0xB2 (500 B), never freed (trace ends)
///     zero_grad [110,115)
TraceBuilder make_standard_trace() {
  TraceBuilder b;
  b.span(EventKind::kUserAnnotation, "Module.to", 0, 10);
  {
    const auto op = b.span(EventKind::kCpuOp, "aten::empty", 1, 8);
    (void)op;
    b.alloc(0xA0, 1000, 2);
  }
  b.span(EventKind::kUserAnnotation, "ProfilerStep#0", 10, 90);
  b.span(EventKind::kUserAnnotation, "dataloader.__next__", 10, 10);
  b.span(EventKind::kCpuOp, "aten::stack", 11, 3);
  b.alloc(0xB1, 500, 12);
  b.span(EventKind::kUserAnnotation, "Optimizer.zero_grad#SGD.zero_grad", 20, 2);
  const auto module_id =
      b.span(EventKind::kPythonFunction, "nn.Module: Linear_0", 22, 28);
  b.alloc(0xAAAA, 64, 23);  // script noise: outside any op window
  b.free(0xAAAA, 64, 24);
  b.span(EventKind::kCpuOp, "aten::addmm", 25, 15, module_id, 1);
  b.alloc(0xC0, 300, 30);
  b.span(EventKind::kUserAnnotation, "autograd::engine::execute", 50, 20);
  b.span(EventKind::kCpuOp, "aten::addmm_backward", 52, 16, -1, 1);
  b.alloc(0xD0, 1000, 55);
  b.free(0xC0, 300, 60);
  b.span(EventKind::kUserAnnotation, "Optimizer.step#SGD.step", 70, 20);
  b.span(EventKind::kCpuOp, "aten::zeros_like", 72, 8);
  b.alloc(0xE0, 1000, 75);
  b.free(0xB1, 500, 96);  // deferred GC
  b.free(0xD0, 1000, 97);  // deferred GC
  b.span(EventKind::kUserAnnotation, "ProfilerStep#1", 100, 100);
  b.span(EventKind::kUserAnnotation, "dataloader.__next__", 100, 8);
  b.span(EventKind::kCpuOp, "aten::stack", 101, 3);
  b.alloc(0xB2, 500, 102);
  b.span(EventKind::kUserAnnotation, "Optimizer.zero_grad#SGD.zero_grad", 110, 5);
  return b;
}

const MemoryBlock* find_block(const MemoryTimeline& tl, std::int64_t size,
                              util::TimeUs alloc_ts) {
  for (const auto& block : tl.blocks) {
    if (block.size == size && block.alloc_ts == alloc_ts) return &block;
  }
  return nullptr;
}

TEST(Analyzer, ReconstructsLifecyclesAndPhases) {
  const auto out = Analyzer().analyze(make_standard_trace().trace);
  const MemoryTimeline& tl = out.timeline;

  ASSERT_EQ(tl.iterations.size(), 2u);
  EXPECT_EQ(tl.zero_grads.size(), 2u);
  EXPECT_EQ(tl.optimizer_steps.size(), 1u);
  EXPECT_EQ(tl.dataloaders.size(), 2u);
  EXPECT_EQ(tl.backwards.size(), 1u);

  const MemoryBlock* param = find_block(tl, 1000, 2);
  ASSERT_NE(param, nullptr);
  EXPECT_EQ(param->phase, Phase::kModelLoad);
  EXPECT_TRUE(param->persistent());
  EXPECT_EQ(param->iteration, -1);

  const MemoryBlock* batch = find_block(tl, 500, 12);
  ASSERT_NE(batch, nullptr);
  EXPECT_EQ(batch->phase, Phase::kDataLoader);
  EXPECT_EQ(batch->free_ts, 96);
  EXPECT_EQ(batch->iteration, 0);

  const MemoryBlock* act = find_block(tl, 300, 30);
  ASSERT_NE(act, nullptr);
  EXPECT_EQ(act->phase, Phase::kForward);
  EXPECT_EQ(act->free_ts, 60);
  EXPECT_EQ(act->op_name, "aten::addmm");
  EXPECT_EQ(act->component, "nn.Module: Linear_0");
  EXPECT_EQ(act->seq, 1);

  const MemoryBlock* grad = find_block(tl, 1000, 55);
  ASSERT_NE(grad, nullptr);
  EXPECT_EQ(grad->phase, Phase::kBackward);
  EXPECT_EQ(grad->free_ts, 97);

  const MemoryBlock* state = find_block(tl, 1000, 75);
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->phase, Phase::kOptimizerStep);
  EXPECT_TRUE(state->persistent());

  // Script noise was dropped.
  EXPECT_EQ(find_block(tl, 64, 23), nullptr);
  EXPECT_EQ(out.stats.filtered_blocks, 1u);

  // Param sizes for the orchestrator.
  ASSERT_EQ(tl.param_sizes.size(), 1u);
  EXPECT_EQ(tl.param_sizes[0], 1000);
}

TEST(Analyzer, HandlesAddressReuse) {
  TraceBuilder b;
  b.span(EventKind::kUserAnnotation, "ProfilerStep#0", 0, 100);
  b.span(EventKind::kCpuOp, "aten::empty", 0, 100);
  b.alloc(0x10, 100, 10);
  b.free(0x10, 100, 20);
  b.alloc(0x10, 200, 30);  // same address, new block
  b.free(0x10, 200, 40);
  b.alloc(0x10, 300, 50);  // and again, this one persists
  const auto out = Analyzer().analyze(b.trace);
  ASSERT_EQ(out.timeline.blocks.size(), 3u);
  EXPECT_EQ(out.stats.address_reuses, 2u);
  EXPECT_EQ(out.stats.matched_pairs, 2u);
  EXPECT_EQ(out.stats.persistent_blocks, 1u);
  EXPECT_EQ(out.timeline.blocks[0].free_ts, 20);
  EXPECT_EQ(out.timeline.blocks[1].free_ts, 40);
  EXPECT_TRUE(out.timeline.blocks[2].persistent());
}

TEST(Analyzer, CountsUnmatchedFrees) {
  TraceBuilder b;
  b.span(EventKind::kUserAnnotation, "ProfilerStep#0", 0, 100);
  b.free(0x99, 100, 10);
  const auto out = Analyzer().analyze(b.trace);
  EXPECT_EQ(out.stats.unmatched_frees, 1u);
  EXPECT_TRUE(out.timeline.blocks.empty());
}

TEST(Analyzer, ThrowsWithoutIterationMarkers) {
  TraceBuilder b;
  b.span(EventKind::kCpuOp, "aten::empty", 0, 10);
  b.alloc(0x1, 100, 1);
  EXPECT_THROW(Analyzer().analyze(b.trace), std::runtime_error);
}

TEST(Analyzer, BlocksAreTimeOrdered) {
  const auto out = Analyzer().analyze(make_standard_trace().trace);
  for (std::size_t i = 1; i < out.timeline.blocks.size(); ++i) {
    EXPECT_LE(out.timeline.blocks[i - 1].alloc_ts,
              out.timeline.blocks[i].alloc_ts);
  }
}

TEST(Analyzer, SurvivesJsonRoundTrip) {
  const Trace original = make_standard_trace().trace;
  const Trace reparsed = Trace::from_json_string(original.to_json_string());
  const auto a = Analyzer().analyze(original);
  const auto b = Analyzer().analyze(reparsed);
  ASSERT_EQ(a.timeline.blocks.size(), b.timeline.blocks.size());
  for (std::size_t i = 0; i < a.timeline.blocks.size(); ++i) {
    EXPECT_EQ(a.timeline.blocks[i].size, b.timeline.blocks[i].size);
    EXPECT_EQ(a.timeline.blocks[i].alloc_ts, b.timeline.blocks[i].alloc_ts);
    EXPECT_EQ(a.timeline.blocks[i].free_ts, b.timeline.blocks[i].free_ts);
    EXPECT_EQ(a.timeline.blocks[i].phase, b.timeline.blocks[i].phase);
  }
}

}  // namespace
}  // namespace xmem::core
