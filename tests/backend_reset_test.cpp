// Reset-equivalence differential suite (label: parity).
//
// The backend_reset() contract (fw/backend.h) is what licenses the replay
// hot path to reuse one allocator tower across candidates instead of
// rebuilding it: a replay through a reset backend must be byte-identical to
// the same replay through a freshly constructed one — even when the reset
// instance previously replayed a completely different workload. This suite
// proves that differentially for every registry backend (default knobs and
// policy-variant knob sets), and on divergence hands the PR 2 shrinker the
// failing stream so the log shows a minimal reproducer, not a 10k-event
// haystack.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "alloc/backend_registry.h"
#include "alloc/cuda_driver_sim.h"
#include "alloc/event_stream.h"
#include "core/orchestrator.h"
#include "core/simulator.h"
#include "util/bytes.h"

namespace xmem::alloc {
namespace {

// Parity streams replay against an effectively unbounded device.
constexpr std::int64_t kHugeCapacity = std::int64_t{1} << 50;

std::vector<StreamEvent> stream_with_seed(std::uint64_t seed,
                                          std::size_t num_events) {
  EventStreamConfig config;
  config.seed = seed;
  config.num_events = num_events;
  return generate_event_stream(config);
}

/// Knob sets every backend is exercised under: always the defaults, plus
/// documented policy variants for the configurable backends.
std::vector<BackendKnobs> knob_variants(const std::string& name) {
  std::vector<BackendKnobs> variants = {BackendKnobs{}};
  if (name == "pytorch-expandable") {
    variants.push_back(BackendKnobs{{"max_split_size_bytes", 20 * util::kMiB}});
    variants.push_back(BackendKnobs{{"page_bytes", 8 * util::kMiB}});
  } else if (name == "cub-binned") {
    // CTranslate2's shipped configuration.
    variants.push_back(BackendKnobs{{"bin_growth", 4},
                                    {"min_bin", 3},
                                    {"max_bin", 12},
                                    {"max_cached_bytes", 200 * util::kMiB}});
    variants.push_back(BackendKnobs{{"max_cached_bytes", 0}});
  } else if (name == "stream-pool") {
    variants.push_back(
        BackendKnobs{{"release_threshold_bytes", 256 * util::kMiB}});
    variants.push_back(BackendKnobs{{"chunk_bytes", 4 * util::kMiB}});
  }
  return variants;
}

bool stats_equal(const fw::BackendStats& a, const fw::BackendStats& b) {
  return a.active_bytes == b.active_bytes &&
         a.peak_active_bytes == b.peak_active_bytes &&
         a.reserved_bytes == b.reserved_bytes &&
         a.peak_reserved_bytes == b.peak_reserved_bytes &&
         a.num_allocs == b.num_allocs && a.num_frees == b.num_frees &&
         a.num_segments == b.num_segments &&
         a.num_live_blocks == b.num_live_blocks;
}

std::string stats_diff(const fw::BackendStats& fresh,
                       const fw::BackendStats& reset) {
  std::string out;
  const auto field = [&](const char* name, std::int64_t a, std::int64_t b) {
    if (a != b) {
      out += std::string(name) + ": fresh=" + std::to_string(a) +
             " reset=" + std::to_string(b) + "\n";
    }
  };
  field("active_bytes", fresh.active_bytes, reset.active_bytes);
  field("peak_active_bytes", fresh.peak_active_bytes, reset.peak_active_bytes);
  field("reserved_bytes", fresh.reserved_bytes, reset.reserved_bytes);
  field("peak_reserved_bytes", fresh.peak_reserved_bytes,
        reset.peak_reserved_bytes);
  field("num_allocs", fresh.num_allocs, reset.num_allocs);
  field("num_frees", fresh.num_frees, reset.num_frees);
  field("num_segments", fresh.num_segments, reset.num_segments);
  field("num_live_blocks", fresh.num_live_blocks, reset.num_live_blocks);
  return out;
}

/// Replay `events` through a freshly constructed (driver, backend) tower.
ReplayReport fresh_replay(const std::string& name, const BackendKnobs& knobs,
                          const std::vector<StreamEvent>& events) {
  SimulatedCudaDriver driver(kHugeCapacity);
  const auto backend = make_backend(name, driver, knobs);
  return replay_with_invariants(*backend, events);
}

/// Replay `events` through a tower that first churned through `warmup` and
/// was then reset (backend + driver) — the hot-path configuration.
ReplayReport reset_replay(const std::string& name, const BackendKnobs& knobs,
                          const std::vector<StreamEvent>& warmup,
                          const std::vector<StreamEvent>& events) {
  SimulatedCudaDriver driver(kHugeCapacity);
  const auto backend = make_backend(name, driver, knobs);
  replay_with_invariants(*backend, warmup);
  backend->backend_reset();
  driver.reset();
  return replay_with_invariants(*backend, events);
}

// ---------------------------------------------------------------------------
// The tentpole guarantee: fresh-vs-reset replays are byte-identical for
// every registered backend, under every knob variant, with the reset
// instance pre-dirtied by a different workload. On divergence the shrinker
// reduces the stream and the test log carries the reproducer.
// ---------------------------------------------------------------------------
TEST(BackendReset, FreshVsResetReplayIsByteIdenticalOnEveryBackend) {
  const auto warmup = stream_with_seed(99, 4000);
  const auto events = stream_with_seed(7, 10000);
  for (const std::string& name : backend_names()) {
    for (const BackendKnobs& knobs : knob_variants(name)) {
      const ReplayReport fresh = fresh_replay(name, knobs, events);
      const ReplayReport reset = reset_replay(name, knobs, warmup, events);
      ASSERT_TRUE(fresh.ok) << name << ": " << fresh.violation;
      ASSERT_TRUE(reset.ok) << name << ": " << reset.violation;
      if (stats_equal(fresh.final_stats, reset.final_stats) &&
          fresh.peak_reserved == reset.peak_reserved &&
          fresh.peak_active == reset.peak_active) {
        continue;
      }
      // Divergence: shrink to a minimal reproducer before failing.
      const auto still_diverges =
          [&](const std::vector<StreamEvent>& candidate) {
            const ReplayReport f = fresh_replay(name, knobs, candidate);
            const ReplayReport r = reset_replay(name, knobs, warmup, candidate);
            return !stats_equal(f.final_stats, r.final_stats) ||
                   f.peak_reserved != r.peak_reserved ||
                   f.peak_active != r.peak_active;
          };
      const auto reproducer = shrink_failing_stream(events, still_diverges);
      FAIL() << "backend '" << name << "' (knobs: {"
             << knobs_fingerprint(knobs) << "}) diverges after reset:\n"
             << stats_diff(fresh_replay(name, knobs, reproducer).final_stats,
                           reset_replay(name, knobs, warmup, reproducer)
                               .final_stats)
             << dump_stream(reproducer);
    }
  }
}

// Reset must return every observable to its post-construction value: zeroed
// counters (peaks included), no live blocks, no device reservations, and
// restarted handle numbering.
TEST(BackendReset, ResetRestoresPostConstructionObservables) {
  const auto events = stream_with_seed(21, 2000);
  for (const std::string& name : backend_names()) {
    SimulatedCudaDriver driver(kHugeCapacity);
    const auto backend = make_backend(name, driver);
    const std::int64_t first_id = backend->backend_alloc(4096).id;
    replay_with_invariants(*backend, events);
    backend->backend_reset();
    driver.reset();

    const fw::BackendStats after = backend->backend_stats();
    EXPECT_TRUE(stats_equal(after, fw::BackendStats{}))
        << name << ":\n" << stats_diff(fw::BackendStats{}, after);
    EXPECT_EQ(driver.num_live_reservations(), 0u) << name;
    EXPECT_EQ(driver.stats().used_bytes, 0) << name;
    EXPECT_EQ(driver.stats().peak_used_bytes, 0) << name;
    EXPECT_EQ(driver.stats().num_mallocs, 0) << name;
    // Handle numbering restarts: the first post-reset allocation gets the
    // same handle a fresh backend hands out.
    EXPECT_EQ(backend->backend_alloc(4096).id, first_id) << name;
  }
}

// Reset invalidates every handle, live or not: freeing a pre-reset handle
// is a double-free-class programming error.
TEST(BackendReset, ResetInvalidatesLiveHandles) {
  for (const std::string& name : backend_names()) {
    SimulatedCudaDriver driver(kHugeCapacity);
    const auto backend = make_backend(name, driver);
    const fw::BackendAllocResult live = backend->backend_alloc(util::kMiB);
    ASSERT_FALSE(live.oom) << name;
    backend->backend_reset();
    EXPECT_THROW(backend->backend_free(live.id), std::logic_error) << name;
  }
}

// The driver's own reset is part of the tower contract: it must also
// restart the VA space so block addresses reproduce.
TEST(BackendReset, DriverResetRestartsAddressSpace) {
  SimulatedCudaDriver driver(kHugeCapacity);
  const auto first = driver.cuda_malloc(util::kMiB);
  ASSERT_TRUE(first.has_value());
  driver.cuda_malloc(8 * util::kMiB);
  driver.reset();
  EXPECT_EQ(driver.cuda_malloc(util::kMiB), first);
}

// ---------------------------------------------------------------------------
// The consumer side: MemorySimulator::replay with a reused ReplayScratch
// (reset-instead-of-rebuild) must produce byte-identical SimulationResults
// to scratchless (fresh-tower) replays — including across backend switches,
// which force a transparent rebuild of the held tower.
// ---------------------------------------------------------------------------

core::OrchestratedSequence to_sequence(const std::vector<StreamEvent>& events) {
  core::OrchestratedSequence sequence;
  sequence.events.reserve(events.size());
  for (const StreamEvent& event : events) {
    core::OrchestratedEvent out;
    out.ts = event.ts;
    out.block_id = event.block_id;
    out.bytes = event.bytes;
    out.is_alloc = event.is_alloc;
    sequence.events.push_back(out);
  }
  return sequence;
}

TEST(BackendReset, SimulatorScratchReuseMatchesFreshReplays) {
  const std::vector<core::OrchestratedSequence> sequences = {
      to_sequence(stream_with_seed(3, 3000)),
      to_sequence(stream_with_seed(4, 3000)),
      to_sequence(stream_with_seed(5, 3000)),
  };
  core::MemorySimulator simulator;
  core::ReplayScratch scratch;
  for (const std::string& name : backend_names()) {
    core::SimulationOptions options;
    options.backend = name;
    for (const core::OrchestratedSequence& sequence : sequences) {
      const core::SimulationResult fresh = simulator.replay(sequence, options);
      // One scratch across every (backend, sequence) pair: same-backend
      // iterations hit the reset path, the backend switch hits the rebuild
      // path — both must be invisible in the results.
      const core::SimulationResult reused =
          simulator.replay(sequence, options, &scratch);
      EXPECT_EQ(fresh.peak_reserved, reused.peak_reserved) << name;
      EXPECT_EQ(fresh.peak_device, reused.peak_device) << name;
      EXPECT_EQ(fresh.peak_allocated, reused.peak_allocated) << name;
      EXPECT_EQ(fresh.oom, reused.oom) << name;
      EXPECT_TRUE(stats_equal(fresh.backend_stats, reused.backend_stats))
          << name << ":\n"
          << stats_diff(fresh.backend_stats, reused.backend_stats);
    }
  }
}

// Knob-configured towers must not be conflated with default ones by the
// scratch key: alternating configs through one scratch still matches the
// fresh replays of each config.
TEST(BackendReset, ScratchKeySeparatesKnobConfigurations) {
  const core::OrchestratedSequence sequence =
      to_sequence(stream_with_seed(11, 3000));
  core::MemorySimulator simulator;
  core::ReplayScratch scratch;
  core::SimulationOptions defaults;
  defaults.backend = "cub-binned";
  core::SimulationOptions ctranslate2 = defaults;
  ctranslate2.backend_knobs = {{"bin_growth", 4},
                               {"min_bin", 3},
                               {"max_bin", 12},
                               {"max_cached_bytes", 200 * util::kMiB}};
  const auto fresh_default = simulator.replay(sequence, defaults);
  const auto fresh_tuned = simulator.replay(sequence, ctranslate2);
  // Different binning must be visible in the results (the configs differ)…
  EXPECT_NE(fresh_default.peak_reserved, fresh_tuned.peak_reserved);
  // …and alternating them through one scratch reproduces each exactly.
  for (int round = 0; round < 2; ++round) {
    const auto reused_default = simulator.replay(sequence, defaults, &scratch);
    const auto reused_tuned = simulator.replay(sequence, ctranslate2, &scratch);
    EXPECT_EQ(reused_default.peak_reserved, fresh_default.peak_reserved);
    EXPECT_EQ(reused_default.peak_device, fresh_default.peak_device);
    EXPECT_EQ(reused_tuned.peak_reserved, fresh_tuned.peak_reserved);
    EXPECT_EQ(reused_tuned.peak_device, fresh_tuned.peak_device);
  }
}

}  // namespace
}  // namespace xmem::alloc
