// Orchestrator unit tests: each of the five §3.3 rules in isolation, the
// ablation toggles, and the event-stream flattening.
#include <gtest/gtest.h>

#include "core/orchestrator.h"

namespace xmem::core {
namespace {

MemoryBlock make_block(std::int64_t id, std::int64_t size, util::TimeUs a,
                       util::TimeUs f, Phase phase, int iteration) {
  MemoryBlock b;
  b.id = id;
  b.size = size;
  b.alloc_ts = a;
  b.free_ts = f;
  b.phase = phase;
  b.iteration = iteration;
  return b;
}

/// Two iterations: [100,200) and [200,300); zero_grads at [110,115) and
/// [210,215); backward windows [150,180) and [250,280); one 1000-byte param.
MemoryTimeline make_timeline() {
  MemoryTimeline tl;
  tl.iterations = {{100, 200}, {200, 300}};
  tl.zero_grads = {{110, 115}, {210, 215}};
  tl.backwards = {{150, 180}, {250, 280}};
  tl.optimizer_steps = {{180, 195}, {280, 295}};
  tl.dataloaders = {{100, 108}, {200, 208}};
  tl.model_load = {0, 50};
  tl.trace_end = 300;
  tl.param_sizes = {1000};
  return tl;
}

const MemoryBlock& block_by_id(const OrchestratedSequence& seq,
                               std::int64_t id) {
  for (const auto& b : seq.blocks) {
    if (b.id == id) return b;
  }
  throw std::logic_error("block not found");
}

TEST(Orchestrator, Rule1PinsParameters) {
  MemoryTimeline tl = make_timeline();
  // A parameter block the CPU trace happened to free mid-way.
  tl.blocks.push_back(make_block(1, 1000, 10, 120, Phase::kModelLoad, -1));
  const auto out = Orchestrator().orchestrate(tl);
  EXPECT_TRUE(block_by_id(out.sequence, 1).persistent());
  EXPECT_EQ(out.stats.params_pinned, 1u);
}

TEST(Orchestrator, Rule2TruncatesBatchAtRebind) {
  MemoryTimeline tl = make_timeline();
  // Batch loaded in iteration 0 but freed (deferred GC) deep in iteration
  // 1: re-timed to the next dataloader.__next__ (the rebind point).
  tl.blocks.push_back(make_block(2, 500, 105, 260, Phase::kDataLoader, 0));
  // Last iteration's batch, never freed: truncated at the iteration marker.
  tl.blocks.push_back(make_block(3, 500, 205, -1, Phase::kDataLoader, 1));
  // Already-short lifecycle: untouched.
  tl.blocks.push_back(make_block(10, 500, 105, 150, Phase::kDataLoader, 0));
  const auto out = Orchestrator().orchestrate(tl);
  EXPECT_EQ(block_by_id(out.sequence, 2).free_ts, 207);
  EXPECT_EQ(block_by_id(out.sequence, 3).free_ts, 299);
  EXPECT_EQ(block_by_id(out.sequence, 10).free_ts, 150);
  EXPECT_EQ(out.stats.batch_truncated, 2u);
}

TEST(Orchestrator, Rule3KeepsActivationLifecycles) {
  MemoryTimeline tl = make_timeline();
  tl.blocks.push_back(make_block(4, 300, 120, 160, Phase::kForward, 0));
  const auto out = Orchestrator().orchestrate(tl);
  EXPECT_EQ(block_by_id(out.sequence, 4).free_ts, 160);
}

TEST(Orchestrator, Rule4RetimesGradientsToNextZeroGrad) {
  MemoryTimeline tl = make_timeline();
  // Param-sized gradient allocated in iteration 0's backward, freed late
  // (deferred GC at end of iteration 0).
  tl.blocks.push_back(make_block(5, 1000, 155, 195, Phase::kBackward, 0));
  const auto out = Orchestrator().orchestrate(tl);
  // Must be re-timed to the *next* zero_grad window end - 1 = 214.
  EXPECT_EQ(block_by_id(out.sequence, 5).free_ts, 214);
  EXPECT_EQ(out.stats.gradients_retimed, 1u);
}

TEST(Orchestrator, Rule4LastIterationGradientsPersist) {
  MemoryTimeline tl = make_timeline();
  // Gradient from the final backward: no zero_grad follows.
  tl.blocks.push_back(make_block(6, 1000, 255, 295, Phase::kBackward, 1));
  const auto out = Orchestrator().orchestrate(tl);
  EXPECT_TRUE(block_by_id(out.sequence, 6).persistent());
}

TEST(Orchestrator, Rule4IgnoresTransientChainBlocks) {
  MemoryTimeline tl = make_timeline();
  // Param-sized but freed *inside* the backward window: a gradient-chain
  // temporary, not a parameter gradient. Rule 3 applies.
  tl.blocks.push_back(make_block(7, 1000, 155, 170, Phase::kBackward, 0));
  const auto out = Orchestrator().orchestrate(tl);
  EXPECT_EQ(block_by_id(out.sequence, 7).free_ts, 170);
  EXPECT_EQ(out.stats.gradients_retimed, 0u);
}

TEST(Orchestrator, Rule4IgnoresNonParamSizes) {
  MemoryTimeline tl = make_timeline();
  tl.blocks.push_back(make_block(8, 777, 155, 195, Phase::kBackward, 0));
  const auto out = Orchestrator().orchestrate(tl);
  EXPECT_EQ(block_by_id(out.sequence, 8).free_ts, 195);
}

TEST(Orchestrator, Rule5CountsPersistentOptimizerState) {
  MemoryTimeline tl = make_timeline();
  tl.blocks.push_back(make_block(9, 1000, 185, -1, Phase::kOptimizerStep, 0));
  const auto out = Orchestrator().orchestrate(tl);
  EXPECT_TRUE(block_by_id(out.sequence, 9).persistent());
  EXPECT_EQ(out.stats.optimizer_states_pinned, 1u);
}

TEST(Orchestrator, AblationTogglesDisableRules) {
  MemoryTimeline tl = make_timeline();
  tl.blocks.push_back(make_block(1, 1000, 10, 120, Phase::kModelLoad, -1));
  tl.blocks.push_back(make_block(2, 500, 105, 260, Phase::kDataLoader, 0));
  tl.blocks.push_back(make_block(5, 1000, 155, 195, Phase::kBackward, 0));
  OrchestratorConfig off;
  off.rule_params = false;
  off.rule_batch = false;
  off.rule_gradients = false;
  off.rule_optimizer_state = false;
  const auto out = Orchestrator().orchestrate(tl, off);
  EXPECT_EQ(block_by_id(out.sequence, 1).free_ts, 120);
  EXPECT_EQ(block_by_id(out.sequence, 2).free_ts, 260);
  EXPECT_EQ(block_by_id(out.sequence, 5).free_ts, 195);
  EXPECT_EQ(out.stats.params_pinned, 0u);
  EXPECT_EQ(out.stats.batch_truncated, 0u);
  EXPECT_EQ(out.stats.gradients_retimed, 0u);
}

TEST(Orchestrator, EventStreamIsSortedFreesFirstOnTies) {
  MemoryTimeline tl = make_timeline();
  tl.blocks.push_back(make_block(1, 100, 120, 130, Phase::kForward, 0));
  tl.blocks.push_back(make_block(2, 100, 130, 140, Phase::kForward, 0));
  const auto out = Orchestrator().orchestrate(tl);
  ASSERT_EQ(out.sequence.events.size(), 4u);
  // At t=130: block 1's free precedes block 2's alloc.
  EXPECT_EQ(out.sequence.events[1].ts, 130);
  EXPECT_FALSE(out.sequence.events[1].is_alloc);
  EXPECT_EQ(out.sequence.events[1].block_id, 1);
  EXPECT_EQ(out.sequence.events[2].ts, 130);
  EXPECT_TRUE(out.sequence.events[2].is_alloc);
  EXPECT_EQ(out.sequence.events[2].block_id, 2);
}

TEST(Orchestrator, PersistentBlocksEmitNoFree) {
  MemoryTimeline tl = make_timeline();
  tl.blocks.push_back(make_block(1, 100, 10, -1, Phase::kModelLoad, -1));
  const auto out = Orchestrator().orchestrate(tl);
  ASSERT_EQ(out.sequence.events.size(), 1u);
  EXPECT_TRUE(out.sequence.events[0].is_alloc);
}

}  // namespace
}  // namespace xmem::core
