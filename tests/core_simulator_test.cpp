// Memory Simulator tests: two-level replay semantics, the paper's Figure 3
// sequence-sensitivity effect, capacity-bound OOM, and curve recording.
#include <gtest/gtest.h>

#include "core/simulator.h"
#include "util/bytes.h"

namespace xmem::core {
namespace {

using util::kMiB;

OrchestratedSequence make_sequence(
    const std::vector<std::tuple<std::int64_t, util::TimeUs, util::TimeUs>>&
        blocks) {
  OrchestratedSequence seq;
  std::int64_t id = 1;
  for (const auto& [size, alloc_ts, free_ts] : blocks) {
    MemoryBlock b;
    b.id = id++;
    b.size = size;
    b.alloc_ts = alloc_ts;
    b.free_ts = free_ts;
    seq.blocks.push_back(b);
  }
  for (const auto& b : seq.blocks) {
    seq.events.push_back(OrchestratedEvent{b.alloc_ts, b.id, b.size, true});
    if (!b.persistent()) {
      seq.events.push_back(OrchestratedEvent{b.free_ts, b.id, b.size, false});
    }
  }
  std::sort(seq.events.begin(), seq.events.end(),
            [](const OrchestratedEvent& a, const OrchestratedEvent& b) {
              if (a.ts != b.ts) return a.ts < b.ts;
              if (a.is_alloc != b.is_alloc) return !a.is_alloc;
              return a.block_id < b.block_id;
            });
  return seq;
}

TEST(Simulator, SingleBlockReservesSegment) {
  const auto seq = make_sequence({{5 * kMiB, 0, 10}});
  const SimulationResult r = MemorySimulator().replay(seq);
  EXPECT_FALSE(r.oom);
  EXPECT_EQ(r.peak_reserved, 20 * kMiB);  // large-pool 20 MiB buffer
  EXPECT_EQ(r.peak_allocated, 5 * kMiB);
}

TEST(Simulator, CachingReusesFreedBlocks) {
  // Two sequential 5 MiB tensors: the second reuses the cached first.
  const auto seq = make_sequence({{5 * kMiB, 0, 10}, {5 * kMiB, 20, 30}});
  const SimulationResult r = MemorySimulator().replay(seq);
  EXPECT_EQ(r.peak_reserved, 20 * kMiB);
  EXPECT_EQ(r.stats.num_segments_allocated, 1);
}

TEST(Simulator, SequenceTimingChangesPeak) {
  // The Figure 3 effect: identical tensors, different deallocation timing,
  // different segment peak. Block A (60 MiB) either dies before or after
  // blocks B and C (58 MiB each) are allocated.
  const auto early_free = make_sequence(
      {{60 * kMiB, 0, 10}, {58 * kMiB, 20, 100}, {58 * kMiB, 30, 100}});
  const auto late_free = make_sequence(
      {{60 * kMiB, 0, 50}, {58 * kMiB, 20, 100}, {58 * kMiB, 30, 100}});
  const SimulationResult early = MemorySimulator().replay(early_free);
  const SimulationResult late = MemorySimulator().replay(late_free);
  // Early free: B fits into A's released 60 MiB; C needs its own segment.
  EXPECT_LT(early.peak_reserved, late.peak_reserved);
  EXPECT_EQ(early.peak_reserved, 118 * kMiB);  // 60 + 58
  EXPECT_EQ(late.peak_reserved, 176 * kMiB);   // 60 + 58 + 58
}

TEST(Simulator, PersistentBlocksStayToTheEnd) {
  const auto seq = make_sequence({{12 * kMiB, 0, -1}, {12 * kMiB, 5, -1}});
  const SimulationResult r = MemorySimulator().replay(seq);
  EXPECT_EQ(r.stats.allocated_bytes, 24 * kMiB);
  EXPECT_EQ(r.peak_allocated, 24 * kMiB);
}

TEST(Simulator, CapacityBoundReplayReportsOom) {
  SimulationOptions options;
  options.capacity = 30 * kMiB;
  const auto seq = make_sequence({{12 * kMiB, 0, -1}, {12 * kMiB, 5, -1},
                                  {12 * kMiB, 10, -1}});
  const SimulationResult r = MemorySimulator().replay(seq, options);
  EXPECT_TRUE(r.oom);
}

TEST(Simulator, ReclamationAvoidsFalseOom) {
  SimulationOptions options;
  options.capacity = 24 * kMiB;
  // A 12 MiB tensor dies, leaving a cached 12 MiB segment; a later 14 MiB
  // tensor needs a new segment the device cannot host until the cached one
  // is reclaimed — the two-level chain a one-level simulator misses.
  const auto seq = make_sequence({{12 * kMiB, 0, 10}, {14 * kMiB, 20, -1}});
  const SimulationResult r = MemorySimulator().replay(seq, options);
  EXPECT_FALSE(r.oom);
  EXPECT_GE(r.stats.num_cache_reclaims, 1);
}

TEST(Simulator, UnboundedPeakIsUpperBoundOfBoundedRuns) {
  const auto seq = make_sequence(
      {{12 * kMiB, 0, 10}, {12 * kMiB, 20, -1}, {10 * kMiB, 30, -1}});
  const SimulationResult unbounded = MemorySimulator().replay(seq);
  SimulationOptions bounded_options;
  bounded_options.capacity = unbounded.peak_reserved;
  const SimulationResult bounded =
      MemorySimulator().replay(seq, bounded_options);
  EXPECT_FALSE(bounded.oom)
      << "provisioning the unbounded peak must always be safe";
}

TEST(Simulator, SeriesRecordsEveryEvent) {
  SimulationOptions options;
  options.record_series = true;
  const auto seq = make_sequence({{5 * kMiB, 0, 10}, {3 * kMiB, 5, 15}});
  const SimulationResult r = MemorySimulator().replay(seq, options);
  EXPECT_EQ(r.reserved_series.size(), 4u);  // 2 allocs + 2 frees
  EXPECT_EQ(r.allocated_series.back().second, 0);
  for (std::size_t i = 0; i < r.reserved_series.size(); ++i) {
    EXPECT_GE(r.reserved_series[i].second, r.allocated_series[i].second);
  }
}

TEST(Simulator, EmptySequence) {
  const SimulationResult r = MemorySimulator().replay(OrchestratedSequence{});
  EXPECT_EQ(r.peak_reserved, 0);
  EXPECT_FALSE(r.oom);
}

}  // namespace
}  // namespace xmem::core
