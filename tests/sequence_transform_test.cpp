// Rank-sequence transform layer property tests (ctest label: replay).
//
//   * stage slices concatenate back to the original sequence (pure PP is a
//     partition of the block set, byte-exact);
//   * sharded per-rank sequences conserve transient-allocated bytes across
//     ranks within the documented replication slack (every block lands in
//     [original/t, original] per TP rank, [original/d, original] per DP
//     rank for the phases its ZeRO stage shards);
//   * transforms are deterministic — two transformers, two scratches, one
//     event stream;
//   * collective-communication buffers (DDP buckets, TP all-reduce staging,
//     ZeRO-3 all-gather) are injected as ordinary resident events with
//     fresh block ids, and only for the dimensions that need them;
//   * a real profiled sequence slices into per-rank sequences the simulator
//     replays to nonzero fragmentation-aware peaks bounded by the
//     single-device replay.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <random>
#include <set>
#include <vector>

#include "core/profile_session.h"
#include "core/sequence_transform.h"
#include "core/simulator.h"

namespace xmem {
namespace {

using core::CollectiveBuffer;
using core::ComponentProfile;
using core::MemoryBlock;
using core::OrchestratedEvent;
using core::OrchestratedSequence;
using core::Phase;
using core::PipelineStage;
using core::RankScratch;
using core::RankTransformOptions;
using core::SequenceTransformer;
using core::ZeroStage;

MemoryBlock block(std::int64_t id, std::int64_t size, util::TimeUs alloc_ts,
                  util::TimeUs free_ts, const std::string& component,
                  Phase phase) {
  MemoryBlock b;
  b.id = id;
  b.size = size;
  b.alloc_ts = alloc_ts;
  b.free_ts = free_ts;
  b.component = component;
  b.phase = phase;
  return b;
}

/// A hand-built orchestrated sequence with every phase the transforms key
/// on: params, batch data (unattributed component), activations, a forward
/// workspace, gradients, and optimizer state.
OrchestratedSequence base_sequence() {
  OrchestratedSequence sequence;
  sequence.blocks = {
      block(1, 1000, 10, -1, "Embedding.0", Phase::kModelLoad),
      block(2, 2000, 11, -1, "Block.1", Phase::kModelLoad),
      block(3, 2000, 12, -1, "Block.2", Phase::kModelLoad),
      block(4, 64, 13, -1, "Norm.3", Phase::kModelLoad),
      block(5, 500, 20, 90, "loader.batch", Phase::kDataLoader),
      block(6, 800, 30, 80, "Block.1", Phase::kForward),
      block(7, 800, 35, 85, "Block.2", Phase::kForward),
      block(8, 100, 38, 86, "Norm.3", Phase::kForward),
      block(9, 400, 36, 37, "Block.2", Phase::kForward),
      block(10, 2000, 50, 95, "Block.2", Phase::kBackward),
      block(11, 2000, 55, 96, "Block.1", Phase::kBackward),
      block(12, 4000, 70, -1, "Block.1", Phase::kOptimizerStep),
      block(13, 4000, 72, -1, "Block.2", Phase::kOptimizerStep),
  };
  for (const MemoryBlock& b : sequence.blocks) {
    sequence.events.push_back(OrchestratedEvent{b.alloc_ts, b.id, b.size, true});
    if (!b.persistent()) {
      sequence.events.push_back(
          OrchestratedEvent{b.free_ts, b.id, b.size, false});
    }
  }
  return sequence;
}

/// The component order the planner would pack stages over (forward order;
/// the byte payload is irrelevant to the transform, only names and order).
std::vector<ComponentProfile> base_profiles() {
  return {
      ComponentProfile{"Embedding.0", 1000, 0, 0, 0},
      ComponentProfile{"Block.1", 2000, 4000, 800, 0},
      ComponentProfile{"Block.2", 2000, 4000, 800, 400},
      ComponentProfile{"Norm.3", 64, 0, 100, 0},
  };
}

PipelineStage chunk(std::size_t first, std::size_t last) {
  PipelineStage stage;
  stage.first_component = first;
  stage.last_component = last;
  return stage;
}

std::int64_t total_alloc_bytes(const OrchestratedSequence& sequence) {
  std::int64_t total = 0;
  for (const OrchestratedEvent& event : sequence.events) {
    if (event.is_alloc) total += event.bytes;
  }
  return total;
}

RankTransformOptions identity_options() {
  RankTransformOptions options;
  options.micro_batches = 1;
  options.inject_collectives = false;
  return options;
}

// ---------- pipeline slicing ----------

TEST(SequenceTransform, SlicesConcatenateBackToTheOriginalSequence) {
  const OrchestratedSequence base = base_sequence();
  const auto profiles = base_profiles();
  const SequenceTransformer transformer(base, profiles);
  const std::vector<PipelineStage> chunks = {chunk(0, 0), chunk(1, 1),
                                             chunk(2, 3)};

  std::map<std::int64_t, std::int64_t> bytes_by_id;
  std::size_t total_events = 0;
  for (std::size_t rank = 0; rank < 3; ++rank) {
    RankScratch scratch;
    const OrchestratedSequence& slice = transformer.rank_sequence(
        identity_options(), chunks, 3, rank, scratch);
    for (const MemoryBlock& b : slice.blocks) {
      EXPECT_TRUE(bytes_by_id.emplace(b.id, b.size).second)
          << "block " << b.id << " appears on two ranks";
    }
    total_events += slice.events.size();
  }
  ASSERT_EQ(bytes_by_id.size(), base.blocks.size());
  for (const MemoryBlock& b : base.blocks) {
    EXPECT_EQ(bytes_by_id.at(b.id), b.size) << "block " << b.id;
  }
  EXPECT_EQ(total_events, base.events.size());
}

TEST(SequenceTransform, UnattributedBlocksRideOnChunkZero) {
  const OrchestratedSequence base = base_sequence();
  const auto profiles = base_profiles();
  const SequenceTransformer transformer(base, profiles);
  const std::vector<PipelineStage> chunks = {chunk(0, 1), chunk(2, 3)};

  RankScratch scratch;
  const OrchestratedSequence& rank0 =
      transformer.rank_sequence(identity_options(), chunks, 2, 0, scratch);
  const auto has_block = [](const OrchestratedSequence& s, std::int64_t id) {
    return std::any_of(s.blocks.begin(), s.blocks.end(),
                       [id](const MemoryBlock& b) { return b.id == id; });
  };
  EXPECT_TRUE(has_block(rank0, 5));  // the dataloader batch block

  RankScratch scratch1;
  const OrchestratedSequence& rank1 =
      transformer.rank_sequence(identity_options(), chunks, 2, 1, scratch1);
  EXPECT_FALSE(has_block(rank1, 5));
}

// ---------- byte conservation under sharding ----------

TEST(SequenceTransform, TensorParallelConservesBytesWithinReplicationSlack) {
  const OrchestratedSequence base = base_sequence();
  const auto profiles = base_profiles();
  const SequenceTransformer transformer(base, profiles);

  RankTransformOptions options = identity_options();
  options.tensor_parallel = 4;
  options.tensor.activation_replication_pct = 25;

  RankScratch scratch;
  const OrchestratedSequence& sharded =
      transformer.rank_sequence(options, {}, 1, 0, scratch);
  ASSERT_EQ(sharded.blocks.size(), base.blocks.size());

  const std::int64_t original = total_alloc_bytes(base);
  const std::int64_t per_rank = total_alloc_bytes(sharded);
  // Documented slack: replicated components (Norm/Embedding), the
  // activation-replication share, batch data, and ceil rounding replicate;
  // nothing inflates a block beyond its original bytes and nothing shrinks
  // it below a full 1/t shard.
  EXPECT_LE(per_rank, original);
  EXPECT_GE(per_rank, (original + 3) / 4);

  std::map<std::int64_t, std::int64_t> bytes_by_id;
  for (const MemoryBlock& b : sharded.blocks) bytes_by_id[b.id] = b.size;
  EXPECT_EQ(bytes_by_id.at(1), 1000);  // Embedding.* replicates
  EXPECT_EQ(bytes_by_id.at(4), 64);    // Norm.* replicates
  EXPECT_EQ(bytes_by_id.at(2), 500);   // params ceil-divide
  EXPECT_EQ(bytes_by_id.at(12), 1000); // optimizer state ceil-divides
  EXPECT_EQ(bytes_by_id.at(11), 500);  // gradients ceil-divide
  EXPECT_EQ(bytes_by_id.at(5), 500);   // every TP rank sees the whole batch
  // Activations: 25% of 800 replicates, the rest divides: 200 + 150.
  EXPECT_EQ(bytes_by_id.at(6), 350);
}

TEST(SequenceTransform, DataParallelShardsThePhasesItsZeroStageCovers) {
  const OrchestratedSequence base = base_sequence();
  const auto profiles = base_profiles();
  const SequenceTransformer transformer(base, profiles);

  const auto bytes_of = [&](ZeroStage zero, std::int64_t id) {
    RankTransformOptions options = identity_options();
    options.data_parallel = 4;
    options.zero = zero;
    RankScratch scratch;
    const OrchestratedSequence& out =
        transformer.rank_sequence(options, {}, 1, 0, scratch);
    for (const MemoryBlock& b : out.blocks) {
      if (b.id == id) return b.size;
    }
    return std::int64_t{-1};
  };

  // Batch-sharded phases shard at every stage; persistent classes only
  // once their ZeRO stage covers them.
  EXPECT_EQ(bytes_of(ZeroStage::kNone, 6), 200);   // activations / d
  EXPECT_EQ(bytes_of(ZeroStage::kNone, 5), 125);   // batch / d
  EXPECT_EQ(bytes_of(ZeroStage::kNone, 12), 4000); // optimizer replicated
  EXPECT_EQ(bytes_of(ZeroStage::kNone, 11), 2000); // gradients replicated
  EXPECT_EQ(bytes_of(ZeroStage::kNone, 2), 2000);  // params replicated

  EXPECT_EQ(bytes_of(ZeroStage::kOptimizer, 12), 1000);
  EXPECT_EQ(bytes_of(ZeroStage::kOptimizer, 11), 2000);

  EXPECT_EQ(bytes_of(ZeroStage::kOptimizerGradient, 11), 500);
  EXPECT_EQ(bytes_of(ZeroStage::kOptimizerGradient, 2), 2000);

  EXPECT_EQ(bytes_of(ZeroStage::kFull, 2), 500);
  EXPECT_EQ(bytes_of(ZeroStage::kFull, 12), 1000);
}

TEST(SequenceTransform, MicroBatchScalingFollowsInFlightDepth) {
  const OrchestratedSequence base = base_sequence();
  const auto profiles = base_profiles();
  const SequenceTransformer transformer(base, profiles);
  const std::vector<PipelineStage> chunks = {chunk(0, 1), chunk(2, 3)};

  RankTransformOptions options = identity_options();
  options.micro_batches = 4;

  RankScratch scratch;
  const OrchestratedSequence& rank0 =
      transformer.rank_sequence(options, chunks, 2, 0, scratch);
  // Chunk 0 of 2 holds min(2, 4) = 2 in-flight micro-batches: 800 * 2/4.
  for (const MemoryBlock& b : rank0.blocks) {
    if (b.id == 6) {
      EXPECT_EQ(b.size, 400);
    }
    if (b.id == 2) {
      EXPECT_EQ(b.size, 2000);  // params don't micro-batch
    }
  }
  RankScratch scratch1;
  const OrchestratedSequence& rank1 =
      transformer.rank_sequence(options, chunks, 2, 1, scratch1);
  // Chunk 1 (the last stage) holds one in-flight copy: ceil(800 / 4).
  for (const MemoryBlock& b : rank1.blocks) {
    if (b.id == 7) {
      EXPECT_EQ(b.size, 200);
    }
    if (b.id == 8) {
      EXPECT_EQ(b.size, 25);
    }
  }
}

// ---------- determinism ----------

TEST(SequenceTransform, TransformsAreDeterministic) {
  const OrchestratedSequence base = base_sequence();
  const auto profiles = base_profiles();
  const std::vector<PipelineStage> chunks = {chunk(0, 1), chunk(2, 3)};

  RankTransformOptions options;
  options.data_parallel = 2;
  options.tensor_parallel = 2;
  options.micro_batches = 4;
  options.zero = ZeroStage::kOptimizer;

  const SequenceTransformer a(base, profiles);
  const SequenceTransformer b(base, profiles);
  for (std::size_t rank = 0; rank < 2; ++rank) {
    RankScratch scratch_a, scratch_b;
    const OrchestratedSequence& out_a =
        a.rank_sequence(options, chunks, 2, rank, scratch_a);
    const OrchestratedSequence& out_b =
        b.rank_sequence(options, chunks, 2, rank, scratch_b);
    ASSERT_EQ(out_a.events.size(), out_b.events.size());
    for (std::size_t i = 0; i < out_a.events.size(); ++i) {
      EXPECT_EQ(out_a.events[i].ts, out_b.events[i].ts);
      EXPECT_EQ(out_a.events[i].block_id, out_b.events[i].block_id);
      EXPECT_EQ(out_a.events[i].bytes, out_b.events[i].bytes);
      EXPECT_EQ(out_a.events[i].is_alloc, out_b.events[i].is_alloc);
    }
  }
}

TEST(SequenceTransform, ScratchReuseAcrossCandidatesIsCleanEachTime) {
  const OrchestratedSequence base = base_sequence();
  const auto profiles = base_profiles();
  const SequenceTransformer transformer(base, profiles);

  RankScratch reused;
  RankTransformOptions wide = identity_options();
  wide.tensor_parallel = 2;
  wide.inject_collectives = true;
  transformer.rank_sequence(wide, {}, 1, 0, reused);
  const std::size_t wide_events = reused.sequence.events.size();

  // A second, narrower candidate through the same scratch must not inherit
  // the first one's events or buffers.
  RankScratch fresh;
  const OrchestratedSequence& from_reused =
      transformer.rank_sequence(identity_options(), {}, 1, 0, reused);
  const OrchestratedSequence& from_fresh =
      transformer.rank_sequence(identity_options(), {}, 1, 0, fresh);
  EXPECT_LT(from_reused.events.size(), wide_events);
  ASSERT_EQ(from_reused.events.size(), from_fresh.events.size());
  for (std::size_t i = 0; i < from_fresh.events.size(); ++i) {
    EXPECT_EQ(from_reused.events[i].block_id, from_fresh.events[i].block_id);
    EXPECT_EQ(from_reused.events[i].bytes, from_fresh.events[i].bytes);
  }
  EXPECT_TRUE(reused.buffers.empty());
}

// ---------- collective-communication buffers ----------

TEST(SequenceTransform, CollectiveBuffersInjectedPerDimension) {
  const OrchestratedSequence base = base_sequence();
  const auto profiles = base_profiles();
  const SequenceTransformer transformer(base, profiles);

  const auto buffers_for = [&](RankTransformOptions options) {
    options.inject_collectives = true;
    RankScratch scratch;
    transformer.rank_sequence(options, {}, 1, 0, scratch);
    return scratch.buffers;
  };

  RankTransformOptions single = identity_options();
  EXPECT_TRUE(buffers_for(single).empty());

  RankTransformOptions dp = identity_options();
  dp.data_parallel = 2;
  dp.ddp_bucket_count = 3;
  dp.ddp_bucket_bytes = 1 << 20;
  const auto dp_buffers = buffers_for(dp);
  ASSERT_EQ(dp_buffers.size(), 3u);
  for (const CollectiveBuffer& buffer : dp_buffers) {
    EXPECT_EQ(buffer.kind, "ddp_bucket");
    EXPECT_EQ(buffer.bytes, 1 << 20);
    EXPECT_EQ(buffer.alloc_ts, 50);  // the first backward block
    EXPECT_GT(buffer.block_id, 13);  // fresh ids beyond the base sequence
  }

  RankTransformOptions tp = identity_options();
  tp.tensor_parallel = 2;
  const auto tp_buffers = buffers_for(tp);
  ASSERT_EQ(tp_buffers.size(), 1u);
  EXPECT_EQ(tp_buffers.front().kind, "tp_allreduce");
  // Largest sharded forward block: 25% of 800 replicated + 600/2.
  EXPECT_EQ(tp_buffers.front().bytes, 500);
  EXPECT_EQ(tp_buffers.front().alloc_ts, 30);

  RankTransformOptions zero3 = identity_options();
  zero3.data_parallel = 2;
  zero3.zero = ZeroStage::kFull;
  const auto zero3_buffers = buffers_for(zero3);
  ASSERT_EQ(zero3_buffers.size(), 3u);  // 2 default buckets + all-gather
  const auto gather = std::find_if(
      zero3_buffers.begin(), zero3_buffers.end(),
      [](const CollectiveBuffer& b) { return b.kind == "zero3_allgather"; });
  ASSERT_NE(gather, zero3_buffers.end());
  EXPECT_EQ(gather->bytes, 2000);  // the largest un-DP-sharded parameter
}

TEST(SequenceTransform, EventsStaySortedAndBalanced) {
  const OrchestratedSequence base = base_sequence();
  const auto profiles = base_profiles();
  const SequenceTransformer transformer(base, profiles);

  RankTransformOptions options;
  options.data_parallel = 2;
  options.tensor_parallel = 2;
  options.micro_batches = 4;
  RankScratch scratch;
  const OrchestratedSequence& out =
      transformer.rank_sequence(options, {}, 1, 0, scratch);

  std::size_t allocs = 0, frees = 0;
  for (std::size_t i = 1; i < out.events.size(); ++i) {
    const OrchestratedEvent& prev = out.events[i - 1];
    const OrchestratedEvent& next = out.events[i];
    EXPECT_LE(prev.ts, next.ts);
    if (prev.ts == next.ts) {
      // Frees sort before allocs so same-instant reuse cannot manufacture
      // phantom peaks — the Orchestrator's contract, preserved here.
      EXPECT_LE(static_cast<int>(!prev.is_alloc ? 0 : 1),
                static_cast<int>(!next.is_alloc ? 0 : 1));
    }
  }
  std::set<std::int64_t> alloc_ids;
  for (const OrchestratedEvent& event : out.events) {
    if (event.is_alloc) {
      ++allocs;
      EXPECT_TRUE(alloc_ids.insert(event.block_id).second);
    } else {
      ++frees;
      EXPECT_TRUE(alloc_ids.count(event.block_id) > 0);
    }
  }
  EXPECT_GT(allocs, frees);  // persistent blocks + injected buffers
}

// ---------- events-only hot path ----------

TEST(SequenceTransform, EventsOnlyModeMatchesMaterializedEvents) {
  const OrchestratedSequence base = base_sequence();
  const auto profiles = base_profiles();
  const SequenceTransformer transformer(base, profiles);

  RankTransformOptions options;
  options.data_parallel = 2;
  options.tensor_parallel = 2;
  options.micro_batches = 4;
  RankScratch with_blocks, events_only;
  options.materialize_blocks = true;
  const OrchestratedSequence& a =
      transformer.rank_sequence(options, {}, 1, 0, with_blocks);
  const std::size_t a_events = a.events.size();
  const std::size_t a_blocks = a.blocks.size();
  options.materialize_blocks = false;
  const OrchestratedSequence& b =
      transformer.rank_sequence(options, {}, 1, 0, events_only);
  EXPECT_GT(a_blocks, 0u);
  EXPECT_TRUE(b.blocks.empty());
  ASSERT_EQ(a_events, b.events.size());
  for (std::size_t i = 0; i < b.events.size(); ++i) {
    EXPECT_EQ(a.events[i].block_id, b.events[i].block_id);
    EXPECT_EQ(a.events[i].bytes, b.events[i].bytes);
  }
}

// ---------- sequence fingerprints ----------

TEST(SequenceFingerprint, EqualFingerprintsImplyEqualEventStreams) {
  // The dedup property the refine pass leans on, checked over seeded random
  // transforms: whenever two transformed sequences fingerprint alike, their
  // event vectors are byte-equal (and the planner's collision guard — the
  // full compare — would accept the shared verdict). The converse holds on
  // this corpus too: distinct event streams never collide here, so the
  // fingerprint actually discriminates instead of hashing everything alike.
  const OrchestratedSequence base = base_sequence();
  const auto profiles = base_profiles();
  const SequenceTransformer transformer(base, profiles);
  const std::vector<std::vector<PipelineStage>> partitions = {
      {chunk(0, 3)},
      {chunk(0, 1), chunk(2, 3)},
      {chunk(0, 0), chunk(1, 1), chunk(2, 3)},
  };

  std::mt19937 rng(20250807);
  std::map<std::uint64_t, std::vector<OrchestratedEvent>> by_fingerprint;
  std::set<std::uint64_t> fingerprints;
  std::size_t repeats = 0;
  for (int trial = 0; trial < 200; ++trial) {
    RankTransformOptions options;
    options.data_parallel = 1 << (rng() % 3);
    options.tensor_parallel = 1 << (rng() % 3);
    options.micro_batches = 1 + static_cast<int>(rng() % 4);
    options.zero = static_cast<ZeroStage>(rng() % 4);
    options.inject_collectives = (rng() % 2) == 0;
    const auto& chunks = partitions[rng() % partitions.size()];
    const std::size_t rank = rng() % chunks.size();

    RankScratch scratch;
    const OrchestratedSequence& out = transformer.rank_sequence(
        options, chunks, chunks.size(), rank, scratch);
    const std::uint64_t fingerprint = core::sequence_fingerprint(out);
    EXPECT_EQ(fingerprint, core::sequence_fingerprint(out))  // stable
        << "trial " << trial;
    const auto [it, fresh] = by_fingerprint.emplace(fingerprint, out.events);
    if (!fresh) {
      ++repeats;
      EXPECT_EQ(it->second, out.events)
          << "trial " << trial << ": fingerprint collision across distinct "
          << "event streams";
    }
    fingerprints.insert(fingerprint);
  }
  // The random corpus must actually exercise both branches.
  EXPECT_GT(repeats, 0u);
  EXPECT_GT(fingerprints.size(), 10u);
}

TEST(SequenceFingerprint, SensitiveToEveryEventField) {
  OrchestratedSequence sequence;
  sequence.events = {OrchestratedEvent{10, 1, 512, true},
                     OrchestratedEvent{20, 1, 512, false}};
  const std::uint64_t original = core::sequence_fingerprint(sequence);

  OrchestratedSequence mutated = sequence;
  mutated.events[0].ts = 11;
  EXPECT_NE(core::sequence_fingerprint(mutated), original);
  mutated = sequence;
  mutated.events[0].block_id = 2;
  EXPECT_NE(core::sequence_fingerprint(mutated), original);
  mutated = sequence;
  mutated.events[0].bytes = 513;
  EXPECT_NE(core::sequence_fingerprint(mutated), original);
  mutated = sequence;
  mutated.events[1].is_alloc = true;
  EXPECT_NE(core::sequence_fingerprint(mutated), original);
  mutated = sequence;
  mutated.events.pop_back();
  EXPECT_NE(core::sequence_fingerprint(mutated), original);
}

// ---------- real profiled sequence through the allocator tower ----------

TEST(SequenceTransform, RealProfileSlicesReplayToBoundedNonzeroPeaks) {
  core::ProfileKey key;
  key.model_name = "distilgpt2";
  key.batch_size = 2;
  key.optimizer = fw::OptimizerKind::kAdamW;
  key.profile_iterations = 2;
  key.json_round_trip = false;  // keep the fixture cheap; replay unaffected
  const core::ProfileArtifacts artifacts = core::run_profile_pipeline(key);
  const OrchestratedSequence& sequence = artifacts.orchestration.sequence;
  const std::vector<ComponentProfile> profiles =
      core::per_component_profile(artifacts.analysis.timeline);
  ASSERT_GT(profiles.size(), 3u);

  core::DistributedPlanner planner;
  core::HybridOptions hybrid;
  hybrid.pipeline_stages = 3;
  hybrid.micro_batches = 1;
  const core::HybridPlan plan = planner.plan_hybrid(profiles, hybrid);
  ASSERT_EQ(plan.stages.size(), 3u);

  const SequenceTransformer transformer(sequence, profiles);
  core::MemorySimulator simulator;
  const core::SimulationResult full = simulator.replay(sequence);

  RankTransformOptions options = identity_options();
  std::int64_t sliced_bytes = 0;
  core::ReplayScratch replay_scratch;
  for (std::size_t rank = 0; rank < 3; ++rank) {
    RankScratch scratch;
    const OrchestratedSequence& slice =
        transformer.rank_sequence(options, plan.stages, 3, rank, scratch);
    sliced_bytes += total_alloc_bytes(slice);
    const core::SimulationResult replay =
        simulator.replay(slice, {}, &replay_scratch);
    EXPECT_GT(replay.peak_device, 0);
    EXPECT_LE(replay.peak_device, full.peak_device) << "rank " << rank;
  }
  // Pure slicing (no sharding, no buffers) partitions the block set, so the
  // per-rank byte totals conserve exactly.
  EXPECT_EQ(sliced_bytes, total_alloc_bytes(sequence));
}

}  // namespace
}  // namespace xmem
