// Tests for the paper's future-work extensions implemented in this repo:
// the distributed planner (§6.2/§6.4(i)), the TF-style BFC simulator
// backend (§6.4(ii)), and mixed-precision variants (§6.3).
#include <gtest/gtest.h>

#include "alloc/tf_bfc_allocator.h"
#include "core/analyzer.h"
#include "core/distributed_planner.h"
#include "core/profile_runner.h"
#include "core/simulator.h"
#include "core/xmem_estimator.h"
#include "gpu/ground_truth.h"
#include "models/amp.h"
#include "models/zoo.h"
#include "util/bytes.h"

namespace xmem {
namespace {

using util::kMiB;

// ---------- TF-style BFC allocator ----------

TEST(TfBfc, RoundsTo256) {
  EXPECT_EQ(alloc::TfBfcAllocator::round_size(1), 256);
  EXPECT_EQ(alloc::TfBfcAllocator::round_size(256), 256);
  EXPECT_EQ(alloc::TfBfcAllocator::round_size(257), 512);
}

TEST(TfBfc, RegionsGrowByDoubling) {
  alloc::SimulatedCudaDriver driver(util::kGiB);
  alloc::TfBfcAllocator allocator(driver);
  // Exhaust the first 2 MiB region, then the 4 MiB one, ...
  std::int64_t last_regions = 0;
  std::vector<std::int64_t> region_sizes;
  for (int i = 0; i < 7; ++i) {
    allocator.allocate(1800 * 1024);  // ~1.76 MiB each
    if (allocator.stats().num_regions != last_regions) {
      region_sizes.push_back(allocator.stats().region_bytes);
      last_regions = allocator.stats().num_regions;
    }
  }
  ASSERT_GE(region_sizes.size(), 3u);
  // Cumulative region bytes follow 2, 2+4, 2+4+8 MiB...
  EXPECT_EQ(region_sizes[0], 2 * kMiB);
  EXPECT_EQ(region_sizes[1], 6 * kMiB);
  EXPECT_EQ(region_sizes[2], 14 * kMiB);
}

TEST(TfBfc, SplitsAndCoalesces) {
  alloc::SimulatedCudaDriver driver(util::kGiB);
  alloc::TfBfcAllocator allocator(driver);
  const auto a = allocator.allocate(512 * 1024);
  const auto b = allocator.allocate(512 * 1024);
  const auto c = allocator.allocate(512 * 1024);
  EXPECT_EQ(allocator.stats().num_regions, 1);
  allocator.free(a.id);
  allocator.free(c.id);
  allocator.free(b.id);
  // Everything coalesced: a 2 MiB request fits the region whole.
  const auto big = allocator.allocate(2 * kMiB);
  EXPECT_FALSE(big.oom);
  EXPECT_EQ(allocator.stats().num_regions, 1);
}

TEST(TfBfc, NoReclaimMeansOomUnderCap) {
  // Unlike the PyTorch port, freed regions are never returned: a workload
  // that fits under PyTorch's reclaim-then-retry can OOM here.
  alloc::SimulatedCudaDriver driver(24 * kMiB);
  alloc::TfBfcAllocator tf(driver);
  const auto a = tf.allocate(12 * kMiB);
  tf.free(a.id);
  // 14 MiB request: the free 12 MiB chunk is too small; region growth needs
  // 14 MiB from a driver that has only 24-14=10... (14 > 24-14): fails.
  const auto b = tf.allocate(14 * kMiB);
  EXPECT_TRUE(b.oom);
}

TEST(TfBfc, BasicInvariants) {
  alloc::SimulatedCudaDriver driver(util::kGiB);
  alloc::TfBfcAllocator allocator(driver);
  EXPECT_THROW(allocator.allocate(0), std::invalid_argument);
  EXPECT_THROW(allocator.free(99), std::logic_error);
  const auto a = allocator.allocate(1000);
  EXPECT_EQ(allocator.stats().allocated_bytes, 1024);
  allocator.free(a.id);
  EXPECT_EQ(allocator.stats().allocated_bytes, 0);
  EXPECT_EQ(allocator.num_live(), 0u);
}

TEST(TfBfc, SimulatorBackendProducesDifferentReservedShape) {
  // Same orchestrated sequence, two allocator models: the TF backend has no
  // 20 MiB buckets, so a single 5 MiB tensor reserves far less.
  core::OrchestratedSequence seq;
  core::MemoryBlock block;
  block.id = 1;
  block.size = 5 * kMiB;
  block.alloc_ts = 0;
  block.free_ts = 10;
  seq.blocks.push_back(block);
  seq.events.push_back(core::OrchestratedEvent{0, 1, 5 * kMiB, true});
  seq.events.push_back(core::OrchestratedEvent{10, 1, 5 * kMiB, false});

  core::SimulationOptions torch_options;
  core::SimulationOptions tf_options;
  tf_options.backend = "tf-bfc";
  const auto torch_result = core::MemorySimulator().replay(seq, torch_options);
  const auto tf_result = core::MemorySimulator().replay(seq, tf_options);
  EXPECT_EQ(torch_result.peak_reserved, 20 * kMiB);
  EXPECT_EQ(tf_result.peak_reserved, 6 * kMiB);  // 2 + 4 MiB regions
}

// ---------- mixed precision (§6.3) ----------

TEST(Amp, VariantHalvesActivationsKeepsMasterWeights) {
  const fw::ModelDescriptor fp32 = models::build_model("gpt2", 8);
  const fw::ModelDescriptor amp = models::make_amp_variant(fp32);
  EXPECT_EQ(amp.name, "gpt2-amp");
  EXPECT_EQ(amp.param_bytes(), fp32.param_bytes());  // fp32 master weights
  EXPECT_EQ(amp.extra_persistent_bytes, fp32.param_bytes() / 2);  // mirror
  EXPECT_DOUBLE_EQ(amp.grad_bytes_scale, 0.5);
  EXPECT_EQ(amp.saved_activation_bytes(fw::Backend::kCuda) * 2,
            fp32.saved_activation_bytes(fw::Backend::kCuda));
}

TEST(Amp, GroundTruthPeakShrinks) {
  const fw::ModelDescriptor fp32 = models::build_model("gpt2", 8);
  const fw::ModelDescriptor amp = models::make_amp_variant(fp32);
  gpu::GroundTruthRunner runner;
  gpu::GroundTruthOptions options;
  options.seed = 3;
  const auto full = runner.run(fp32, fw::OptimizerKind::kAdamW, gpu::rtx3060(),
                               options);
  const auto half = runner.run(amp, fw::OptimizerKind::kAdamW, gpu::rtx3060(),
                               options);
  ASSERT_FALSE(full.oom);
  ASSERT_FALSE(half.oom);
  EXPECT_LT(half.peak_job_bytes, full.peak_job_bytes);
  // Activations halve but fp32 params/states and the fp16 mirror remain:
  // the saving is meaningful yet well below 50%.
  EXPECT_GT(half.peak_job_bytes, full.peak_job_bytes * 4 / 10);
}

TEST(Amp, PipelineEstimatesAmpVariantAccurately) {
  // §6.3's claim: once profiling data exists, the analysis is unchanged.
  const fw::ModelDescriptor amp =
      models::make_amp_variant(models::build_model("distilgpt2", 8));
  const trace::Trace trace =
      core::profile_on_cpu(amp, fw::OptimizerKind::kAdamW);
  const auto analysis = core::Analyzer().analyze(trace);
  const auto orchestration = core::Orchestrator().orchestrate(analysis.timeline);
  const auto simulation = core::MemorySimulator().replay(orchestration.sequence);

  gpu::GroundTruthRunner runner;
  gpu::GroundTruthOptions options;
  options.seed = 1;
  const auto truth =
      runner.run(amp, fw::OptimizerKind::kAdamW, gpu::rtx3060(), options);
  ASSERT_FALSE(truth.oom);
  const double error =
      std::abs(static_cast<double>(simulation.peak_device -
                                   truth.peak_job_bytes)) /
      static_cast<double>(truth.peak_job_bytes);
  EXPECT_LT(error, 0.15);
}

// ---------- distributed planner (§6.2) ----------

class PlannerFixture : public ::testing::Test {
 protected:
  static const core::MemoryTimeline& timeline() {
    static const core::MemoryTimeline kTimeline = [] {
      const fw::ModelDescriptor model = models::build_model("gpt2", 4);
      const trace::Trace trace =
          core::profile_on_cpu(model, fw::OptimizerKind::kAdamW);
      return core::Analyzer().analyze(trace).timeline;
    }();
    return kTimeline;
  }
};

TEST_F(PlannerFixture, PerComponentProfileCoversParameters) {
  const auto profiles = core::per_component_profile(timeline());
  EXPECT_GT(profiles.size(), 20u);  // gpt2: 12 blocks x ~4 modules + head
  std::int64_t params = 0, optimizer = 0, activations = 0;
  for (const auto& p : profiles) {
    params += p.param_bytes;
    optimizer += p.optimizer_bytes;
    activations += p.activation_bytes;
  }
  const fw::ModelDescriptor model = models::build_model("gpt2", 4);
  EXPECT_EQ(params, model.param_bytes());
  // AdamW states: ~2x params, apportioned (rounding loses only slack).
  EXPECT_NEAR(static_cast<double>(optimizer),
              2.0 * static_cast<double>(model.param_bytes()),
              0.05 * static_cast<double>(model.param_bytes()));
  EXPECT_GT(activations, 0);
}

TEST_F(PlannerFixture, MoreStagesLowerTheMaxPeak) {
  core::DistributedPlanner planner;
  core::DistributedOptions two;
  two.pipeline_stages = 2;
  core::DistributedOptions four;
  four.pipeline_stages = 4;
  const auto plan2 = planner.plan_pipeline(timeline(), two);
  const auto plan4 = planner.plan_pipeline(timeline(), four);
  ASSERT_EQ(plan2.stages.size(), 2u);
  ASSERT_EQ(plan4.stages.size(), 4u);
  EXPECT_LT(plan2.max_stage_peak, plan2.single_device_peak);
  EXPECT_LE(plan4.max_stage_peak, plan2.max_stage_peak);
}

TEST_F(PlannerFixture, StagesAreContiguousAndComplete) {
  core::DistributedPlanner planner;
  core::DistributedOptions options;
  options.pipeline_stages = 3;
  const auto plan = planner.plan_pipeline(timeline(), options);
  const auto profiles = core::per_component_profile(timeline());
  ASSERT_EQ(plan.stages.size(), 3u);
  EXPECT_EQ(plan.stages.front().first_component, 0u);
  EXPECT_EQ(plan.stages.back().last_component, profiles.size() - 1);
  for (std::size_t s = 1; s < plan.stages.size(); ++s) {
    EXPECT_EQ(plan.stages[s].first_component,
              plan.stages[s - 1].last_component + 1);
  }
  for (const auto& stage : plan.stages) {
    EXPECT_LE(stage.estimated_peak, plan.max_stage_peak);
    EXPECT_GT(stage.persistent_bytes, 0);
  }
}

TEST_F(PlannerFixture, SingleStageMatchesSingleDevicePeakModel) {
  core::DistributedPlanner planner;
  core::DistributedOptions options;
  options.pipeline_stages = 1;
  options.micro_batches = 1;
  const auto plan = planner.plan_pipeline(timeline(), options);
  ASSERT_EQ(plan.stages.size(), 1u);
  EXPECT_EQ(plan.max_stage_peak, plan.single_device_peak);
}

TEST_F(PlannerFixture, DataParallelOverheadIsTwoBuckets) {
  core::DistributedPlanner planner;
  core::DistributedOptions options;
  EXPECT_EQ(planner.data_parallel_overhead(options),
            2 * options.ddp_bucket_bytes);
}

TEST(Planner, EmptyTimeline) {
  core::DistributedPlanner planner;
  const auto plan = planner.plan_pipeline(core::MemoryTimeline{}, {});
  EXPECT_TRUE(plan.stages.empty());
}

}  // namespace
}  // namespace xmem
