#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace xmem::util {
namespace {

TEST(Mean, BasicAndEmpty) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Variance, SampleVariance) {
  // Var of {2,4,4,4,5,5,7,9} with n-1 denominator: 32/7.
  EXPECT_NEAR(variance({2, 4, 4, 4, 5, 5, 7, 9}), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(variance({42.0}), 0.0);
}

TEST(Quantile, Type7Interpolation) {
  const std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 1.75);  // numpy default matches
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(median({5, 1, 3}), 3.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
}

TEST(Boxplot, MatchesHandComputation) {
  // 1..9 plus an outlier at 100.
  std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8, 9, 100};
  const BoxplotSummary s = boxplot_summary(xs);
  EXPECT_EQ(s.n, 10u);
  EXPECT_DOUBLE_EQ(s.median, 5.5);
  EXPECT_DOUBLE_EQ(s.q1, 3.25);
  EXPECT_DOUBLE_EQ(s.q3, 7.75);
  EXPECT_DOUBLE_EQ(s.minimum, 1.0);
  EXPECT_DOUBLE_EQ(s.maximum, 100.0);
  // Hi fence = 7.75 + 1.5*4.5 = 14.5 -> whisker at 9; 100 is an outlier.
  EXPECT_DOUBLE_EQ(s.whisker_high, 9.0);
  EXPECT_DOUBLE_EQ(s.whisker_low, 1.0);
  EXPECT_EQ(s.outliers, 1u);
}

TEST(Boxplot, EmptyInput) {
  const BoxplotSummary s = boxplot_summary({});
  EXPECT_EQ(s.n, 0u);
}

TEST(IncompleteBeta, KnownValues) {
  // I_x(1,1) = x (uniform CDF).
  EXPECT_NEAR(regularized_incomplete_beta(1, 1, 0.3), 0.3, 1e-10);
  // I_x(2,2) = 3x^2 - 2x^3.
  EXPECT_NEAR(regularized_incomplete_beta(2, 2, 0.5), 0.5, 1e-10);
  EXPECT_NEAR(regularized_incomplete_beta(2, 2, 0.25),
              3 * 0.0625 - 2 * 0.015625, 1e-10);
  EXPECT_DOUBLE_EQ(regularized_incomplete_beta(3, 4, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(regularized_incomplete_beta(3, 4, 1.0), 1.0);
}

TEST(FDistribution, SurvivalFunctionKnownValues) {
  // scipy.stats.f.sf(1.0, 1, 1) == 0.5.
  EXPECT_NEAR(f_distribution_sf(1.0, 1, 1), 0.5, 1e-9);
  // For d1=2: P(F>f) = (1 + f*d1/d2)^(-d2/2) = 1.8^-5 = 0.0529221...
  EXPECT_NEAR(f_distribution_sf(4.0, 2, 10), 0.0529221, 1e-6);
  EXPECT_DOUBLE_EQ(f_distribution_sf(0.0, 3, 7), 1.0);
}

TEST(Anova, IdenticalGroupsGiveFNearZero) {
  const std::vector<std::vector<double>> groups = {
      {1, 2, 3, 4, 5}, {1, 2, 3, 4, 5}, {1, 2, 3, 4, 5}};
  const AnovaResult r = one_way_anova(groups);
  EXPECT_NEAR(r.f_statistic, 0.0, 1e-12);
  EXPECT_GT(r.p_value, 0.99);
}

TEST(Anova, KnownTextbookExample) {
  // Three groups; F computed independently (scipy.stats.f_oneway):
  // F = 9.3, p ~= 0.00255 for these data.
  const std::vector<std::vector<double>> groups = {
      {6, 8, 4, 5, 3, 4}, {8, 12, 9, 11, 6, 8}, {13, 9, 11, 8, 7, 12}};
  const AnovaResult r = one_way_anova(groups);
  EXPECT_NEAR(r.f_statistic, 9.3, 0.05);
  EXPECT_NEAR(r.p_value, 0.00255, 5e-4);
  EXPECT_DOUBLE_EQ(r.df_between, 2.0);
  EXPECT_DOUBLE_EQ(r.df_within, 15.0);
}

TEST(Anova, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(one_way_anova({}).p_value, 1.0);
  EXPECT_DOUBLE_EQ(one_way_anova({{1, 2, 3}}).p_value, 1.0);
  // Zero within-group variance but different means: F -> infinity, p -> 0.
  const AnovaResult r = one_way_anova({{1, 1, 1}, {2, 2, 2}});
  EXPECT_TRUE(std::isinf(r.f_statistic));
  EXPECT_DOUBLE_EQ(r.p_value, 0.0);
}

TEST(Pearson, PerfectAndNone) {
  EXPECT_NEAR(pearson_correlation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(pearson_correlation({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(pearson_correlation({1, 1, 1}, {2, 4, 6}), 0.0);
  EXPECT_DOUBLE_EQ(pearson_correlation({1, 2}, {1}), 0.0);  // length mismatch
}

class QuantileMonotone : public ::testing::TestWithParam<double> {};

TEST_P(QuantileMonotone, QuantileIsMonotoneInQ) {
  const std::vector<double> xs = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5};
  const double q = GetParam();
  EXPECT_LE(quantile(xs, q), quantile(xs, std::min(1.0, q + 0.1)) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Grid, QuantileMonotone,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9));

}  // namespace
}  // namespace xmem::util
