// Trace file I/O, snapshot JSON export, and the OOM-crossover property:
// the batch size at which a model starts to OOM on a device is a shape
// result the estimator must reproduce, not just the per-config error.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "alloc/caching_allocator.h"
#include "core/analyzer.h"
#include "core/profile_runner.h"
#include "core/xmem_estimator.h"
#include "gpu/ground_truth.h"
#include "models/workload.h"
#include "models/zoo.h"
#include "util/bytes.h"
#include "util/json.h"

namespace xmem {
namespace {

// ---------- trace file I/O ----------

TEST(TraceIo, SaveLoadRoundTrip) {
  const fw::ModelDescriptor model = models::build_model("MobileNetV2", 8);
  const trace::Trace original =
      core::profile_on_cpu(model, fw::OptimizerKind::kAdam);
  const std::string path = ::testing::TempDir() + "/xmem_trace.json";
  original.save(path);
  const trace::Trace loaded = trace::Trace::load(path);
  ASSERT_EQ(loaded.events.size(), original.events.size());
  EXPECT_EQ(loaded.model_name, original.model_name);
  for (std::size_t i = 0; i < original.events.size(); i += 97) {
    EXPECT_EQ(loaded.events[i].ts, original.events[i].ts);
    EXPECT_EQ(loaded.events[i].bytes, original.events[i].bytes);
  }
  std::remove(path.c_str());
}

TEST(TraceIo, LoadedTraceAnalyzesIdentically) {
  const fw::ModelDescriptor model = models::build_model("distilgpt2", 4);
  const trace::Trace original =
      core::profile_on_cpu(model, fw::OptimizerKind::kAdamW);
  const std::string path = ::testing::TempDir() + "/xmem_trace2.json";
  original.save(path, /*indent=*/2);  // pretty form must parse too
  const trace::Trace loaded = trace::Trace::load(path);
  const auto a = core::Analyzer().analyze(original);
  const auto b = core::Analyzer().analyze(loaded);
  EXPECT_EQ(a.timeline.blocks.size(), b.timeline.blocks.size());
  EXPECT_EQ(a.stats.filtered_blocks, b.stats.filtered_blocks);
  std::remove(path.c_str());
}

TEST(TraceIo, ErrorsAreLoud) {
  trace::Trace t;
  EXPECT_THROW(t.save("/nonexistent-dir/trace.json"), std::runtime_error);
  EXPECT_THROW(trace::Trace::load("/nonexistent-dir/trace.json"),
               std::runtime_error);
}

// ---------- snapshot JSON ----------

TEST(SnapshotJson, RoundTripsAndBalances) {
  alloc::SimulatedCudaDriver driver(util::kGiB);
  alloc::CachingAllocatorSim allocator(driver);
  allocator.allocate(100);
  const auto b = allocator.allocate(5 * util::kMiB);
  allocator.allocate(12 * util::kMiB);
  allocator.free(b.id);

  const std::string json = alloc::snapshot_to_json(allocator.snapshot(), 2);
  const util::Json doc = util::Json::parse(json);
  ASSERT_TRUE(doc.is_array());
  std::int64_t total = 0, active = 0;
  for (std::size_t i = 0; i < doc.size(); ++i) {
    const util::Json& segment = doc[i];
    total += segment.at("total_size").as_int();
    active += segment.at("allocated_size").as_int();
    std::int64_t block_sum = 0;
    for (std::size_t j = 0; j < segment.at("blocks").size(); ++j) {
      block_sum += segment.at("blocks")[j].at("size").as_int();
    }
    EXPECT_EQ(block_sum, segment.at("total_size").as_int());
    EXPECT_TRUE(segment.at("segment_type").as_string() == "small" ||
                segment.at("segment_type").as_string() == "large");
  }
  EXPECT_EQ(total, allocator.stats().reserved_bytes);
  EXPECT_EQ(active, allocator.stats().allocated_bytes);
}

// ---------- OOM crossover ----------

class OomCrossover : public ::testing::TestWithParam<const char*> {};

TEST_P(OomCrossover, PredictedCrossoverMatchesActualWithinOneStep) {
  // Walk the model's Table-2 batch grid on the RTX 3060 with AdamW and find
  // the first batch size that OOMs, per ground truth and per xMem. The two
  // crossovers must agree within one grid step — "where crossovers fall" is
  // the deployable content of the estimate.
  const std::string model_name = GetParam();
  const gpu::DeviceModel device = gpu::rtx3060();
  const auto grid = models::batch_grid_for(model_name);

  int actual_crossover = -1, predicted_crossover = -1;
  gpu::GroundTruthRunner runner;
  core::XMemEstimator estimator;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const int batch = grid[i];
    const fw::ModelDescriptor model = models::build_model(model_name, batch);
    gpu::GroundTruthOptions options;
    options.seed = 31;
    const auto truth =
        runner.run(model, fw::OptimizerKind::kAdamW, device, options);
    if (truth.oom && actual_crossover < 0) {
      actual_crossover = static_cast<int>(i);
    }
    core::TrainJob job;
    job.model_name = model_name;
    job.batch_size = batch;
    job.optimizer = fw::OptimizerKind::kAdamW;
    job.seed = 31;
    const auto estimate = estimator.estimate(job, device);
    if (estimate.oom_predicted && predicted_crossover < 0) {
      predicted_crossover = static_cast<int>(i);
    }
    if (actual_crossover >= 0 && predicted_crossover >= 0) break;
  }
  ASSERT_GE(actual_crossover, 0)
      << model_name << " never OOMs on this grid; pick a bigger model";
  ASSERT_GE(predicted_crossover, 0)
      << model_name << ": xMem never predicts OOM on this grid";
  EXPECT_LE(std::abs(actual_crossover - predicted_crossover), 1)
      << model_name << ": actual crossover at grid index " << actual_crossover
      << ", predicted at " << predicted_crossover;
}

INSTANTIATE_TEST_SUITE_P(Models, OomCrossover,
                         ::testing::Values("distilgpt2", "gpt2", "t5-base",
                                           "Qwen3-0.6B"));

}  // namespace
}  // namespace xmem
