#include "util/bytes.h"

#include <gtest/gtest.h>

namespace xmem::util {
namespace {

TEST(RoundUp, ExactMultiplesAreUnchanged) {
  EXPECT_EQ(round_up(0, 512), 0);
  EXPECT_EQ(round_up(512, 512), 512);
  EXPECT_EQ(round_up(1024, 512), 1024);
  EXPECT_EQ(round_up(2 * kMiB, kMiB), 2 * kMiB);
}

TEST(RoundUp, RoundsUpToNextMultiple) {
  EXPECT_EQ(round_up(1, 512), 512);
  EXPECT_EQ(round_up(513, 512), 1024);
  EXPECT_EQ(round_up(kMiB + 1, kMiB), 2 * kMiB);
}

TEST(RoundUp, AlignmentOne) { EXPECT_EQ(round_up(12345, 1), 12345); }

class RoundUpSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(RoundUpSweep, ResultIsAlignedAndMinimal) {
  const std::int64_t alignment = GetParam();
  for (std::int64_t size = 1; size <= 4 * alignment; size += 7) {
    const std::int64_t rounded = round_up(size, alignment);
    EXPECT_TRUE(is_aligned(rounded, alignment));
    EXPECT_GE(rounded, size);
    EXPECT_LT(rounded - size, alignment);
  }
}

INSTANTIATE_TEST_SUITE_P(Alignments, RoundUpSweep,
                         ::testing::Values(2, 64, 512, 4096, 2 * kMiB));

TEST(FormatBytes, HumanReadable) {
  EXPECT_EQ(format_bytes(0), "0 B");
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(kKiB), "1.00 KiB");
  EXPECT_EQ(format_bytes(static_cast<std::int64_t>(1.5 * kMiB)), "1.50 MiB");
  EXPECT_EQ(format_bytes(12 * kGiB), "12.00 GiB");
}

TEST(FormatBytes, Negative) { EXPECT_EQ(format_bytes(-kMiB), "-1.00 MiB"); }

TEST(ParseBytes, UnitsAndCase) {
  EXPECT_EQ(parse_bytes("512"), 512);
  EXPECT_EQ(parse_bytes("1KiB"), kKiB);
  EXPECT_EQ(parse_bytes("2mb"), 2 * kMiB);
  EXPECT_EQ(parse_bytes("12GiB"), 12 * kGiB);
  EXPECT_EQ(parse_bytes("1.5 GiB"), static_cast<std::int64_t>(1.5 * kGiB));
}

TEST(ParseBytes, Invalid) {
  EXPECT_EQ(parse_bytes(""), -1);
  EXPECT_EQ(parse_bytes("abc"), -1);
  EXPECT_EQ(parse_bytes("12XB"), -1);
}

TEST(ParseBytes, RoundTripWithFormat) {
  for (const std::int64_t v : {kKiB, kMiB, kGiB, 7 * kGiB}) {
    EXPECT_EQ(parse_bytes(format_bytes(v)), v);
  }
}

}  // namespace
}  // namespace xmem::util
