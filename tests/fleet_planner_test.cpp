// FleetPlanner tests: the fleet packing contract (docs/SCHEDULER.md).
//
//   * packing invariants — every admitted placement fits its slot budget,
//     multi-rank jobs land on distinct GPUs, verdict counts add up;
//   * best-fit-decreasing admits at least as many jobs as first-fit on an
//     identical fleet (and whole-gpu admits at most as many as either);
//   * profile-once at fleet scale: a 200-job queue drawn from 5 archetypes
//     runs exactly 5 CPU profiles;
//   * serial and ThreadPool-fanned packs render byte-identical reports;
//   * apply(JobArrival/JobFinish) equals a fresh pack of the final queue —
//     both the one-slot fast path and the full-repack path;
//   * what-if deltas: admitted_delta/newly_admitted arithmetic vs two
//     independent packs;
//   * request JSON round-trips and malformed documents name the bad field.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/estimation_service.h"
#include "sched/fleet_planner.h"
#include "sched/packing_policy.h"
#include "util/json.h"

namespace xmem {
namespace {

core::TrainJob make_job(const std::string& model, int batch,
                        fw::OptimizerKind optimizer) {
  core::TrainJob job;
  job.model_name = model;
  job.batch_size = batch;
  job.optimizer = optimizer;
  job.seed = 7;
  return job;
}

sched::FleetJob fleet_job(const std::string& id, const core::TrainJob& job,
                          int priority = 0) {
  sched::FleetJob entry;
  entry.id = id;
  entry.job = job;
  entry.priority = priority;
  return entry;
}

/// A small mixed queue over a 3060-heavy fleet: big jobs contend, small
/// jobs slot into the gaps.
sched::FleetRequest small_request() {
  sched::FleetRequest request;
  request.jobs = {
      fleet_job("big-0", make_job("gpt2", 8, fw::OptimizerKind::kAdamW), 1),
      fleet_job("small-0",
                make_job("distilgpt2", 5, fw::OptimizerKind::kSgd)),
      fleet_job("big-1", make_job("gpt2", 8, fw::OptimizerKind::kAdamW)),
      fleet_job("small-1",
                make_job("distilgpt2", 5, fw::OptimizerKind::kSgd)),
  };
  request.pools = {{gpu::rtx3060(), 2}, {gpu::a100_40gb(), 1}};
  request.headroom.base.percent = 5;
  return request;
}

/// Sum of committed bytes per slot from the verdicts, to cross-check the
/// report's per-GPU states.
std::map<std::pair<std::size_t, int>, std::int64_t> committed_by_slot(
    const sched::FleetReport& report) {
  std::map<std::pair<std::size_t, int>, std::int64_t> committed;
  for (const sched::JobVerdict& verdict : report.verdicts) {
    for (const sched::Placement& placement : verdict.placements) {
      committed[{placement.pool, placement.index}] +=
          placement.committed_bytes;
    }
  }
  return committed;
}

// ---------- packing invariants ----------

TEST(FleetPack, PlacementsRespectBudgetsAndVerdictCountsAddUp) {
  core::EstimationService service;
  const sched::FleetReport report = service.fleet(small_request());

  ASSERT_EQ(report.verdicts.size(), 4u);
  int admitted = 0, deferred = 0, rejected = 0;
  for (const sched::JobVerdict& verdict : report.verdicts) {
    switch (verdict.verdict) {
      case sched::Verdict::kAdmit:
        admitted += 1;
        EXPECT_GT(verdict.gpus, 0) << verdict.id;
        EXPECT_EQ(verdict.placements.size(),
                  static_cast<std::size_t>(verdict.gpus));
        break;
      case sched::Verdict::kDefer:
        deferred += 1;
        EXPECT_FALSE(verdict.reason.empty());
        break;
      case sched::Verdict::kReject:
        rejected += 1;
        EXPECT_FALSE(verdict.reason.empty());
        break;
    }
  }
  EXPECT_EQ(admitted, report.stats.admitted);
  EXPECT_EQ(deferred, report.stats.deferred);
  EXPECT_EQ(rejected, report.stats.rejected);
  EXPECT_EQ(admitted + deferred + rejected, report.stats.jobs);

  // The per-GPU states agree with the placements, and nothing overflows.
  const auto committed = committed_by_slot(report);
  for (const sched::GpuState& gpu : report.gpus) {
    const auto it = committed.find({gpu.pool, gpu.index});
    const std::int64_t expect = it == committed.end() ? 0 : it->second;
    EXPECT_EQ(gpu.committed_bytes, expect)
        << "pool " << gpu.pool << " index " << gpu.index;
    EXPECT_LE(gpu.committed_bytes, gpu.budget_bytes);
    EXPECT_LE(gpu.predicted_bytes, gpu.committed_bytes);
  }
  EXPECT_EQ(report.stats.waste_bytes,
            report.stats.committed_bytes - report.stats.predicted_bytes);
  EXPECT_EQ(report.counters.pools_repacked, 2u);
}

TEST(FleetPack, MultiRankJobsLandOnDistinctGpus) {
  // Qwen3-0.6B at batch 8 overflows a single 3060 but splits across the
  // pool via the DistributedPlanner fallback.
  sched::FleetRequest request;
  request.jobs = {fleet_job(
      "huge", make_job("Qwen3-0.6B", 8, fw::OptimizerKind::kAdamW))};
  request.pools = {{gpu::rtx3060(), 4}};
  request.max_gpus_per_job = 4;

  core::EstimationService service;
  const sched::FleetReport report = service.fleet(request);
  ASSERT_EQ(report.verdicts.size(), 1u);
  const sched::JobVerdict& verdict = report.verdicts[0];
  ASSERT_EQ(verdict.verdict, sched::Verdict::kAdmit) << verdict.reason;
  ASSERT_GT(verdict.gpus, 1);
  EXPECT_FALSE(verdict.split.empty());
  EXPECT_EQ(report.counters.plans_run, 1u);

  std::set<std::pair<std::size_t, int>> distinct;
  for (const sched::Placement& placement : verdict.placements) {
    EXPECT_TRUE(distinct.insert({placement.pool, placement.index}).second)
        << "two ranks share one GPU";
  }
}

TEST(FleetPack, RejectNamesTheReasonWhenNothingFits) {
  sched::FleetRequest request;
  request.jobs = {fleet_job(
      "huge", make_job("Qwen3-0.6B", 8, fw::OptimizerKind::kAdamW))};
  request.pools = {{gpu::rtx3060(), 1}};  // no room to split
  request.max_gpus_per_job = 1;

  core::EstimationService service;
  const sched::FleetReport report = service.fleet(request);
  ASSERT_EQ(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts[0].verdict, sched::Verdict::kReject);
  EXPECT_NE(report.verdicts[0].reason.find("max_gpus_per_job"),
            std::string::npos);
  EXPECT_EQ(report.stats.rejected, 1);
}

TEST(FleetPack, PriorityOutranksQueuePosition) {
  // Two gpt2/b8 jobs contend for one 3060; the later, higher-priority job
  // must win the slot.
  sched::FleetRequest request;
  request.jobs = {
      fleet_job("first", make_job("gpt2", 8, fw::OptimizerKind::kAdamW), 0),
      fleet_job("vip", make_job("gpt2", 8, fw::OptimizerKind::kAdamW), 5),
  };
  request.pools = {{gpu::rtx3060(), 1}};
  request.max_gpus_per_job = 1;

  core::EstimationService service;
  const sched::FleetReport report = service.fleet(request);
  ASSERT_EQ(report.verdicts.size(), 2u);
  // Verdicts render in arrival order; the admission went to the VIP.
  EXPECT_EQ(report.verdicts[0].id, "first");
  EXPECT_EQ(report.verdicts[0].verdict, sched::Verdict::kDefer);
  EXPECT_EQ(report.verdicts[1].id, "vip");
  EXPECT_EQ(report.verdicts[1].verdict, sched::Verdict::kAdmit);
}

// ---------- policy comparisons ----------

TEST(FleetPolicies, BfdAdmitsAtLeastAsManyAsFirstFitAndWholeGpuTrails) {
  // The classic two-bin queue that punishes queue-order packing: smalls
  // arrive first and squat where the bigs need to go. First-fit stacks
  // both smalls on GPU 0 and strands one big; BFD places the bigs first
  // and fits all four (small ~4.4 GB, big ~7.2 GB demand, 11.96 GB budget).
  sched::FleetRequest request;
  for (int i = 0; i < 2; ++i) {
    request.jobs.push_back(fleet_job(
        "small-" + std::to_string(i),
        make_job("distilgpt2", 5, fw::OptimizerKind::kSgd)));
  }
  for (int i = 0; i < 2; ++i) {
    request.jobs.push_back(fleet_job(
        "big-" + std::to_string(i),
        make_job("distilgpt2", 10, fw::OptimizerKind::kSgd)));
  }
  request.pools = {{gpu::rtx3060(), 2}};
  request.headroom.base.percent = 5;
  request.max_gpus_per_job = 1;

  core::EstimationService service;
  std::map<std::string, sched::FleetStats> stats;
  for (const std::string& policy : sched::packing_policy_names()) {
    sched::FleetRequest variant = request;
    variant.policy = policy;
    stats[policy] = service.fleet(variant).stats;
  }

  EXPECT_GT(stats["best-fit-decreasing"].admitted,
            stats["first-fit"].admitted);
  EXPECT_LE(stats["whole-gpu"].admitted,
            stats["best-fit-decreasing"].admitted);
  // whole-gpu commits entire budgets: utilization (predicted/budget) is
  // strictly worse than BFD's whenever both admit anything.
  EXPECT_LT(stats["whole-gpu"].utilization_pct,
            stats["best-fit-decreasing"].utilization_pct);
  EXPECT_GT(stats["whole-gpu"].waste_bytes,
            stats["best-fit-decreasing"].waste_bytes);
}

// ---------- profile-once at fleet scale ----------

TEST(FleetScale, TwoHundredJobsFromFiveArchetypesProfileFiveTimes) {
  const std::vector<core::TrainJob> archetypes = {
      make_job("distilgpt2", 5, fw::OptimizerKind::kAdamW),
      make_job("distilgpt2", 10, fw::OptimizerKind::kSgd),
      make_job("gpt2", 5, fw::OptimizerKind::kAdamW),
      make_job("MobileNetV2", 200, fw::OptimizerKind::kSgd),
      make_job("T5-small", 5, fw::OptimizerKind::kAdamW),
  };
  sched::FleetRequest request;
  for (int i = 0; i < 200; ++i) {
    request.jobs.push_back(fleet_job("job-" + std::to_string(i),
                                     archetypes[i % archetypes.size()]));
  }
  request.pools = {{gpu::rtx3060(), 8}, {gpu::a100_40gb(), 4}};
  request.policy = "best-fit-decreasing";
  request.max_gpus_per_job = 1;

  core::EstimationService service;
  const sched::FleetReport report = service.fleet(request);
  EXPECT_EQ(report.stats.jobs, 200);
  EXPECT_EQ(report.stats.distinct_jobs, 5);
  EXPECT_EQ(report.counters.profiles_run, 5u);
  EXPECT_EQ(report.counters.estimates_reused, 195u);
  EXPECT_GT(report.stats.admitted, 0);
}

// ---------- determinism ----------

TEST(FleetDeterminism, SerialAndThreadedPacksRenderIdentically) {
  sched::FleetRequest request = small_request();
  request.policy = "best-fit-decreasing";

  core::ServiceOptions serial_options;
  serial_options.threads = 1;
  core::EstimationService serial_service(serial_options);
  sched::FleetPlannerOptions serial_planner;
  serial_planner.threads = 1;
  sched::FleetPlanner serial(serial_service, serial_planner);

  core::ServiceOptions threaded_options;
  threaded_options.threads = 4;
  core::EstimationService threaded_service(threaded_options);
  sched::FleetPlannerOptions threaded_planner;
  threaded_planner.threads = 4;
  sched::FleetPlanner threaded(threaded_service, threaded_planner);

  const std::string serial_text =
      serial.pack(request).to_json(/*include_timings=*/false).dump(2);
  const std::string threaded_text =
      threaded.pack(request).to_json(/*include_timings=*/false).dump(2);
  EXPECT_EQ(serial_text, threaded_text);
}

// ---------- incremental apply ----------

/// apply() must equal a fresh pack of the final queue, modulo counters
/// (which exist to prove the reuse) and timings.
std::string packing_fingerprint(const sched::FleetReport& report) {
  util::Json json = report.to_json(/*include_timings=*/false);
  util::Json fingerprint = util::Json::object();
  for (const char* key : {"policy", "pools", "verdicts", "gpus", "stats"}) {
    fingerprint[key] = json.at(key);
  }
  return fingerprint.dump(2);
}

TEST(FleetApply, TrailingArrivalEqualsFullRepack) {
  const sched::FleetRequest base = small_request();
  // Same archetype as "small-0": the arrival is served from the cache.
  const sched::FleetJob extra = fleet_job(
      "late", make_job("distilgpt2", 5, fw::OptimizerKind::kSgd), -1);

  core::EstimationService incremental_service;
  sched::FleetPlanner planner(incremental_service);
  planner.pack(base);
  const sched::FleetReport incremental = planner.apply(sched::JobArrival{extra});

  sched::FleetRequest full = base;
  full.jobs.push_back(extra);
  core::EstimationService fresh_service;
  const sched::FleetReport repacked = fresh_service.fleet(full);

  EXPECT_EQ(packing_fingerprint(incremental), packing_fingerprint(repacked));
  // first-fit is order-preserving and "late" sorts last: the fast path
  // placed one job into one pool instead of repacking both.
  EXPECT_EQ(incremental.counters.profiles_run, 0u);
  EXPECT_LE(incremental.counters.pools_repacked, 1u);
}

TEST(FleetApply, HighPriorityArrivalForcesRepackAndStillMatches) {
  const sched::FleetRequest base = small_request();
  const sched::FleetJob vip = fleet_job(
      "vip", make_job("gpt2", 8, fw::OptimizerKind::kAdamW), 99);

  core::EstimationService incremental_service;
  sched::FleetPlanner planner(incremental_service);
  planner.pack(base);
  const sched::FleetReport incremental = planner.apply(sched::JobArrival{vip});

  sched::FleetRequest full = base;
  full.jobs.push_back(vip);
  core::EstimationService fresh_service;
  const sched::FleetReport repacked = fresh_service.fleet(full);

  EXPECT_EQ(packing_fingerprint(incremental), packing_fingerprint(repacked));
  EXPECT_EQ(incremental.counters.profiles_run, 0u);  // archetype cached
  EXPECT_EQ(incremental.counters.pools_repacked, 2u);
}

TEST(FleetApply, FinishFreesTheSlotAndMatchesFreshPack) {
  const sched::FleetRequest base = small_request();

  core::EstimationService incremental_service;
  sched::FleetPlanner planner(incremental_service);
  planner.pack(base);
  const sched::FleetReport incremental =
      planner.apply(sched::JobFinish{"big-0"});

  sched::FleetRequest remaining = base;
  remaining.jobs.erase(remaining.jobs.begin());  // big-0 is first
  core::EstimationService fresh_service;
  const sched::FleetReport repacked = fresh_service.fleet(remaining);

  EXPECT_EQ(packing_fingerprint(incremental), packing_fingerprint(repacked));
  EXPECT_EQ(incremental.counters.profiles_run, 0u);
  EXPECT_EQ(incremental.counters.estimates_reused, 3u);
}

TEST(FleetApply, RejectsDuplicateAndUnknownIdsAndPackless) {
  core::EstimationService service;
  sched::FleetPlanner planner(service);
  const sched::FleetJob job =
      fleet_job("a", make_job("distilgpt2", 5, fw::OptimizerKind::kAdamW));
  EXPECT_THROW(planner.apply(sched::JobArrival{job}), std::logic_error);

  sched::FleetRequest request;
  request.jobs = {job};
  request.pools = {{gpu::rtx3060(), 1}};
  planner.pack(request);
  EXPECT_THROW(planner.apply(sched::JobArrival{job}), std::invalid_argument);
  EXPECT_THROW(planner.apply(sched::JobFinish{"ghost"}),
               std::invalid_argument);
}

// ---------- what-if ----------

TEST(FleetWhatIf, DeltaMatchesTwoIndependentPacks) {
  // One 3060 hosts one big job; the what-if adds an A100 pool.
  sched::FleetRequest request;
  request.jobs = {
      fleet_job("big-0", make_job("gpt2", 8, fw::OptimizerKind::kAdamW)),
      fleet_job("big-1", make_job("gpt2", 8, fw::OptimizerKind::kAdamW)),
  };
  request.pools = {{gpu::rtx3060(), 1}};
  request.max_gpus_per_job = 1;
  request.what_if = {{gpu::a100_40gb(), 1}};

  core::EstimationService service;
  const sched::FleetReport report = service.fleet(request);
  ASSERT_TRUE(report.what_if.has_value());
  const sched::WhatIfDelta& delta = *report.what_if;

  sched::FleetRequest expanded = request;
  expanded.what_if.clear();
  expanded.pools.push_back({gpu::a100_40gb(), 1});
  core::EstimationService fresh;
  const sched::FleetReport after = fresh.fleet(expanded);

  EXPECT_EQ(delta.admitted_delta,
            after.stats.admitted - report.stats.admitted);
  EXPECT_EQ(delta.deferred_delta,
            after.stats.deferred - report.stats.deferred);
  EXPECT_EQ(delta.utilization_pct_delta,
            after.stats.utilization_pct - report.stats.utilization_pct);
  EXPECT_EQ(delta.stats_after.to_json().dump(), after.stats.to_json().dump());
  ASSERT_EQ(delta.newly_admitted.size(), 1u);
  EXPECT_EQ(delta.newly_admitted[0], "big-1");
}

// ---------- JSON schema ----------

TEST(FleetRequestJson, RoundTripsThroughJson) {
  sched::FleetRequest request = small_request();
  request.policy = "best-fit-decreasing";
  request.headroom.per_device["GeForce RTX 3060"] = {std::int64_t{1} << 28, 2};
  request.what_if = {{gpu::a100_40gb(), 2}};
  const sched::FleetRequest parsed =
      sched::FleetRequest::from_json(request.to_json());
  EXPECT_EQ(parsed.to_json().dump(2), request.to_json().dump(2));
  EXPECT_EQ(parsed.jobs.size(), 4u);
  EXPECT_EQ(parsed.policy, "best-fit-decreasing");
  EXPECT_EQ(parsed.headroom.per_device.at("GeForce RTX 3060").percent, 2);
  EXPECT_EQ(parsed.what_if.size(), 1u);
}

TEST(FleetRequestJson, MalformedDocumentsNameTheBadField) {
  const auto parse_error = [](const char* text) -> std::string {
    try {
      sched::FleetRequest::from_json(util::Json::parse(text));
    } catch (const std::invalid_argument& error) {
      return error.what();
    }
    return "";
  };
  EXPECT_NE(parse_error(R"({"pools": [{"device": "rtx3060", "count": 1}]})")
                .find("\"jobs\""),
            std::string::npos);
  EXPECT_NE(
      parse_error(
          R"({"jobs": [{"job": {"model": "distilgpt2", "batch": 5}}]})")
          .find("\"pools\""),
      std::string::npos);
  EXPECT_NE(parse_error(R"({"jobs": [{"id": "a"}],
                            "pools": [{"device": "rtx3060", "count": 1}]})")
                .find("jobs[0]"),
            std::string::npos);
  EXPECT_NE(parse_error(R"({"jobs": [{"job": {"model": "distilgpt2",
                                              "batch": 5}}],
                            "pools": [{"device": "rtx3060", "count": 0}]})")
                .find("count"),
            std::string::npos);
}

TEST(FleetRequestJson, UnknownPolicyAndDuplicateIdsAreRejected) {
  core::EstimationService service;
  sched::FleetRequest request = small_request();
  request.policy = "mystery";
  EXPECT_THROW(service.fleet(request), std::invalid_argument);

  sched::FleetRequest duplicate = small_request();
  duplicate.jobs[1].id = duplicate.jobs[0].id;
  try {
    service.fleet(duplicate);
    FAIL() << "duplicate ids must be rejected";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("duplicate"), std::string::npos);
  }
}

TEST(FleetReportJson, TimingsAreOptionalAndVerdictsSerialize) {
  core::EstimationService service;
  const sched::FleetReport report = service.fleet(small_request());
  const util::Json with_timings = report.to_json(/*include_timings=*/true);
  const util::Json without = report.to_json(/*include_timings=*/false);
  EXPECT_TRUE(with_timings.contains("wall_seconds"));
  EXPECT_FALSE(without.contains("wall_seconds"));
  ASSERT_TRUE(without.contains("verdicts"));
  const util::Json& first = without.at("verdicts").as_array()[0];
  EXPECT_EQ(first.get_string_or("verdict", ""), "admit");
  EXPECT_TRUE(first.contains("predicted_peak_bytes"));
}

}  // namespace
}  // namespace xmem
