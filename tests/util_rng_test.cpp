#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace xmem::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(123), b(124);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v = rng.next_in_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, JitterWithinAmplitude) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double j = rng.jitter(0.06);
    EXPECT_GE(j, 0.94);
    EXPECT_LE(j, 1.06);
  }
}

TEST(Rng, JitterZeroAmplitudeIsOne) {
  Rng rng(13);
  EXPECT_DOUBLE_EQ(rng.jitter(0.0), 1.0);
}

TEST(Rng, MeanOfUniformIsNearHalf) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, GaussianMoments) {
  Rng rng(19);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.05);
}

TEST(DeriveSeed, StreamsAreIndependent) {
  EXPECT_NE(derive_seed(1, 0), derive_seed(1, 1));
  EXPECT_NE(derive_seed(1, 0), derive_seed(2, 0));
  EXPECT_EQ(derive_seed(5, 3), derive_seed(5, 3));
}

TEST(Rng, ReseedRestartsSequence) {
  Rng rng(21);
  const std::uint64_t first = rng.next_u64();
  rng.next_u64();
  rng.reseed(21);
  EXPECT_EQ(rng.next_u64(), first);
}

}  // namespace
}  // namespace xmem::util
