// Trace schema versioning (ROADMAP: trace-format versioning): the JSON form
// carries `traceMeta.xmem_schema_version`, round-trips it, keeps legacy
// unversioned files loadable, and refuses files from a newer writer at load
// time instead of misreading them event-by-event.
#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>

#include "trace/trace.h"

namespace xmem::trace {
namespace {

Trace make_sample_trace() {
  Trace t;
  t.model_name = "resnet50";
  t.optimizer_name = "SGD";
  t.batch_size = 16;
  t.iterations = 3;
  t.backend = "cpu";
  TraceEvent alloc;
  alloc.kind = EventKind::kCpuInstantEvent;
  alloc.name = "[memory]";
  alloc.id = 0;
  alloc.addr = 0x1000;
  alloc.bytes = 4096;
  alloc.total_allocated = 4096;
  alloc.ts = 10;
  t.add(alloc);
  return t;
}

TEST(TraceVersion, WriterStampsCurrentVersion) {
  const util::Json doc = make_sample_trace().to_json();
  EXPECT_EQ(doc.at("traceMeta").at("xmem_schema_version").as_int(),
            Trace::kSchemaVersion);
}

TEST(TraceVersion, RoundTripPreservesVersionAndMeta) {
  const Trace original = make_sample_trace();
  const Trace reloaded = Trace::from_json_string(original.to_json_string());
  EXPECT_EQ(reloaded.schema_version, Trace::kSchemaVersion);
  EXPECT_EQ(reloaded.model_name, original.model_name);
  EXPECT_EQ(reloaded.batch_size, original.batch_size);
  ASSERT_EQ(reloaded.events.size(), original.events.size());
  EXPECT_EQ(reloaded.events[0].bytes, original.events[0].bytes);
}

TEST(TraceVersion, FileRoundTripThroughSaveAndLoad) {
  const std::string path = testing::TempDir() + "xmem_trace_version.json";
  make_sample_trace().save(path);
  const Trace reloaded = Trace::load(path);
  EXPECT_EQ(reloaded.schema_version, Trace::kSchemaVersion);
  std::remove(path.c_str());
}

TEST(TraceVersion, LegacyFileWithoutFieldLoadsAsVersionZero) {
  util::Json doc = make_sample_trace().to_json();
  util::JsonObject meta = doc.at("traceMeta").as_object();
  meta.erase("xmem_schema_version");
  doc["traceMeta"] = util::Json(std::move(meta));
  const Trace reloaded = Trace::from_json(doc);
  EXPECT_EQ(reloaded.schema_version, 0);
  EXPECT_EQ(reloaded.model_name, "resnet50");
}

TEST(TraceVersion, BareEventsDocumentWithoutMetaIsAlsoLegacy) {
  const Trace reloaded =
      Trace::from_json_string(R"({"traceEvents": []})");
  EXPECT_EQ(reloaded.schema_version, 0);
  EXPECT_TRUE(reloaded.events.empty());
}

TEST(TraceVersion, NewerWriterIsRefusedAtLoadTime) {
  util::Json doc = make_sample_trace().to_json();
  doc["traceMeta"]["xmem_schema_version"] =
      util::Json(Trace::kSchemaVersion + 1);
  EXPECT_THROW(Trace::from_json(doc), std::runtime_error);
  doc["traceMeta"]["xmem_schema_version"] = util::Json(-1);
  EXPECT_THROW(Trace::from_json(doc), std::runtime_error);
}

}  // namespace
}  // namespace xmem::trace
