#include "util/json.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace xmem::util {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_EQ(Json::parse("42").as_int(), 42);
  EXPECT_EQ(Json::parse("-17").as_int(), -17);
  EXPECT_DOUBLE_EQ(Json::parse("3.25").as_double(), 3.25);
  EXPECT_DOUBLE_EQ(Json::parse("1e3").as_double(), 1000.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, IntegersPreservedExactly) {
  const std::int64_t big = 9007199254740993LL;  // not representable in double
  EXPECT_EQ(Json::parse(std::to_string(big)).as_int(), big);
}

TEST(JsonParse, NestedStructures) {
  const Json doc = Json::parse(R"({"a":[1,2,{"b":null}],"c":{"d":true}})");
  EXPECT_EQ(doc.at("a").size(), 3u);
  EXPECT_EQ(doc.at("a")[0].as_int(), 1);
  EXPECT_TRUE(doc.at("a")[2].at("b").is_null());
  EXPECT_TRUE(doc.at("c").at("d").as_bool());
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(Json::parse(R"("a\nb\t\"q\"\\")").as_string(), "a\nb\t\"q\"\\");
  EXPECT_EQ(Json::parse(R"("A")").as_string(), "A");
  EXPECT_EQ(Json::parse(R"("é")").as_string(), "\xC3\xA9");       // é
  EXPECT_EQ(Json::parse(R"("😀")").as_string(), "\xF0\x9F\x98\x80");
}

TEST(JsonParse, Whitespace) {
  EXPECT_EQ(Json::parse(" \n\t{ \"a\" : 1 } \r\n").at("a").as_int(), 1);
}

TEST(JsonParse, Errors) {
  EXPECT_THROW(Json::parse(""), JsonParseError);
  EXPECT_THROW(Json::parse("{"), JsonParseError);
  EXPECT_THROW(Json::parse("[1,]"), JsonParseError);
  EXPECT_THROW(Json::parse("{\"a\":}"), JsonParseError);
  EXPECT_THROW(Json::parse("tru"), JsonParseError);
  EXPECT_THROW(Json::parse("1 2"), JsonParseError);  // trailing garbage
  EXPECT_THROW(Json::parse("\"unterminated"), JsonParseError);
  EXPECT_THROW(Json::parse("{'a':1}"), JsonParseError);
  EXPECT_THROW(Json::parse("\"bad \\x escape\""), JsonParseError);
}

TEST(JsonDump, CompactRoundTrip) {
  const char* text = R"({"arr":[1,2.5,"s"],"b":false,"n":null})";
  const Json doc = Json::parse(text);
  EXPECT_EQ(doc.dump(), text);
}

TEST(JsonDump, EscapesControlCharacters) {
  Json v(std::string("a\x01" "b\n"));
  EXPECT_EQ(v.dump(), "\"a\\u0001b\\n\"");
  EXPECT_EQ(Json::parse(v.dump()).as_string(), "a\x01" "b\n");
}

TEST(JsonDump, DoublesReparseAsDoubles) {
  Json v(2.0);
  const Json reparsed = Json::parse(v.dump());
  EXPECT_TRUE(reparsed.is_double());
  EXPECT_DOUBLE_EQ(reparsed.as_double(), 2.0);
}

TEST(JsonDump, PrettyPrintIsReparsable) {
  const Json doc = Json::parse(R"({"a":[1,2],"b":{"c":"d"}})");
  const std::string pretty = doc.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(Json::parse(pretty), doc);
}

TEST(JsonObject, AccessHelpers) {
  Json obj = Json::object();
  obj["x"] = Json(5);
  obj["s"] = Json("v");
  EXPECT_TRUE(obj.contains("x"));
  EXPECT_FALSE(obj.contains("y"));
  EXPECT_EQ(obj.get_int_or("x", -1), 5);
  EXPECT_EQ(obj.get_int_or("y", -1), -1);
  EXPECT_EQ(obj.get_string_or("s", ""), "v");
  EXPECT_EQ(obj.get_string_or("x", "fallback"), "fallback");  // wrong type
  EXPECT_THROW(obj.at("missing"), std::out_of_range);
}

TEST(JsonArray, PushBackOnNullPromotes) {
  Json arr;
  arr.push_back(Json(1));
  arr.push_back(Json("two"));
  EXPECT_EQ(arr.size(), 2u);
  EXPECT_EQ(arr[1].as_string(), "two");
}

// Property: randomly generated documents survive dump -> parse unchanged.
Json random_json(Rng& rng, int depth) {
  const std::uint64_t kind = rng.next_below(depth > 2 ? 4 : 6);
  switch (kind) {
    case 0: return Json(nullptr);
    case 1: return Json(rng.next_bool(0.5));
    case 2: return Json(static_cast<std::int64_t>(rng.next_u64() >> 16));
    case 3: {
      std::string s;
      const auto len = rng.next_below(12);
      for (std::uint64_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>(32 + rng.next_below(90)));
      }
      return Json(std::move(s));
    }
    case 4: {
      Json arr = Json::array();
      const auto len = rng.next_below(5);
      for (std::uint64_t i = 0; i < len; ++i) {
        arr.push_back(random_json(rng, depth + 1));
      }
      return arr;
    }
    default: {
      Json obj = Json::object();
      const auto len = rng.next_below(5);
      for (std::uint64_t i = 0; i < len; ++i) {
        obj["k" + std::to_string(i)] = random_json(rng, depth + 1);
      }
      return obj;
    }
  }
}

class JsonRoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JsonRoundTripProperty, DumpParseIsIdentity) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const Json doc = random_json(rng, 0);
    EXPECT_EQ(Json::parse(doc.dump()), doc);
    EXPECT_EQ(Json::parse(doc.dump(2)), doc);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTripProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace xmem::util
