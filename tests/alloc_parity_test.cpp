// Randomized differential parity harness across allocator backends.
//
// One seeded event stream is replayed through every backend registered in
// alloc/backend_registry.h; the shared fw::AllocatorBackend contract
// (conservation, reserved >= active, monotone peaks, alloc/free/live-count
// consistency) must hold event-by-event on each of them, and their peak
// reserved memory must agree within documented divergence bounds. This is
// the suite that keeps allocator refactors from silently diverging from the
// paper's numbers (ROADMAP: allocator backend parity tests).
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "alloc/backend_registry.h"
#include "alloc/cub_allocator.h"
#include "alloc/event_stream.h"
#include "alloc/stream_pool_allocator.h"
#include "core/simulator.h"
#include "util/bytes.h"

namespace xmem::alloc {
namespace {

using util::kMiB;

constexpr std::int64_t kUnbounded = std::int64_t{1} << 50;

/// Replay one stream through one backend built fresh from the registry.
ReplayReport replay_backend(const std::string& name,
                            const std::vector<StreamEvent>& events) {
  SimulatedCudaDriver driver(kUnbounded);
  const auto backend = make_backend(name, driver);
  return replay_with_invariants(*backend, events);
}

// ---------- the event-stream generator itself ----------

TEST(EventStream, FixedSeedIsByteIdentical) {
  EventStreamConfig config;
  config.seed = 2024;
  config.num_events = 4000;
  const auto a = generate_event_stream(config);
  const auto b = generate_event_stream(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ts, b[i].ts);
    EXPECT_EQ(a[i].block_id, b[i].block_id);
    EXPECT_EQ(a[i].bytes, b[i].bytes);
    EXPECT_EQ(a[i].is_alloc, b[i].is_alloc);
    EXPECT_EQ(a[i].stream, b[i].stream);
  }
  EXPECT_EQ(stream_fingerprint(a), stream_fingerprint(b));
  config.seed = 2025;
  EXPECT_NE(stream_fingerprint(generate_event_stream(config)),
            stream_fingerprint(a));
}

TEST(EventStream, IsWellFormed) {
  EventStreamConfig config;
  config.seed = 7;
  config.num_events = 3000;
  config.num_streams = 4;
  const auto events = generate_event_stream(config);
  // Every free names a live block of its own stream; the drain empties all.
  std::unordered_map<std::int64_t, int> live_stream;
  std::int64_t last_ts = -1;
  for (const StreamEvent& e : events) {
    EXPECT_GT(e.ts, last_ts);
    last_ts = e.ts;
    EXPECT_GT(e.bytes, 0);
    if (e.is_alloc) {
      EXPECT_EQ(live_stream.count(e.block_id), 0u) << "duplicate block id";
      live_stream[e.block_id] = e.stream;
    } else {
      ASSERT_EQ(live_stream.count(e.block_id), 1u) << "free of dead block";
      EXPECT_EQ(live_stream[e.block_id], e.stream);
      live_stream.erase(e.block_id);
    }
  }
  EXPECT_TRUE(live_stream.empty()) << "drain_at_end left live blocks";
}

TEST(EventStream, DumpRendersHeaderAndEvents) {
  EventStreamConfig config;
  config.num_events = 10;
  const auto events = generate_event_stream(config);
  const std::string dump = dump_stream(events, 4);
  EXPECT_NE(dump.find("fingerprint"), std::string::npos);
  EXPECT_NE(dump.find("alloc"), std::string::npos);
  EXPECT_NE(dump.find("more events"), std::string::npos);
}

// ---------- differential parity across all registered backends ----------

TEST(AllocatorParity, TenThousandEventStreamHoldsInvariantsEverywhere) {
  EventStreamConfig config;  // defaults: 10k events, 2 streams
  config.seed = 42;
  const auto events = generate_event_stream(config);
  ASSERT_GE(events.size(), 10000u);

  std::map<std::string, ReplayReport> reports;
  for (const std::string& name : backend_names()) {
    const ReplayReport report = replay_backend(name, events);
    EXPECT_TRUE(report.ok) << name << " violated '" << report.violation
                           << "' at event " << report.event_index << "\n"
                           << dump_stream(events, 16);
    // The stream drains at the end: everything must come back.
    EXPECT_EQ(report.final_stats.active_bytes, 0) << name;
    EXPECT_EQ(report.final_stats.num_live_blocks, 0) << name;
    EXPECT_EQ(report.final_stats.num_allocs, report.final_stats.num_frees)
        << name;
    // No policy can reserve less than the exact live bytes at their peak.
    EXPECT_GE(report.peak_reserved, report.peak_live_bytes) << name;
    reports[name] = report;
  }

  // Pairwise divergence bound: the policies differ (20 MiB buckets vs
  // doubling regions vs bare best-fit) but on a realistic mixed stream
  // their reserved peaks stay within a small constant factor. A backend
  // escaping this band is how an accuracy regression first shows up.
  std::int64_t min_peak = std::numeric_limits<std::int64_t>::max();
  std::int64_t max_peak = 0;
  for (const auto& [name, report] : reports) {
    min_peak = std::min(min_peak, report.peak_reserved);
    max_peak = std::max(max_peak, report.peak_reserved);
  }
  ASSERT_GT(min_peak, 0);
  EXPECT_LE(static_cast<double>(max_peak) / static_cast<double>(min_peak),
            2.0)
      << "peak divergence across backends: min " << min_peak << ", max "
      << max_peak;
}

TEST(AllocatorParity, HoldsAcrossSeedsAndStreamMixes) {
  for (const std::uint64_t seed : {1ULL, 99ULL, 123456ULL}) {
    EventStreamConfig config;
    config.seed = seed;
    config.num_events = 2000;
    config.num_streams = static_cast<int>(1 + seed % 4);
    config.alloc_bias = 0.5 + 0.01 * static_cast<double>(seed % 10);
    const auto events = generate_event_stream(config);
    for (const std::string& name : backend_names()) {
      const ReplayReport report = replay_backend(name, events);
      EXPECT_TRUE(report.ok)
          << name << " seed " << seed << ": " << report.violation
          << " at event " << report.event_index;
      EXPECT_EQ(report.final_stats.active_bytes, 0) << name;
    }
  }
}

TEST(AllocatorParity, SimulatorReplayMatchesDirectBackendReplay) {
  // The same stream through MemorySimulator (selected by registry name)
  // must report exactly the peaks the direct interface replay saw.
  EventStreamConfig config;
  config.seed = 271828;
  config.num_events = 2000;
  const auto events = generate_event_stream(config);
  core::OrchestratedSequence sequence;
  for (const StreamEvent& e : events) {
    sequence.events.push_back(
        core::OrchestratedEvent{e.ts, e.block_id, e.bytes, e.is_alloc});
  }
  for (const std::string& name : backend_names()) {
    const ReplayReport direct = replay_backend(name, events);
    core::SimulationOptions options;
    options.backend = name;
    const core::SimulationResult sim =
        core::MemorySimulator().replay(sequence, options);
    EXPECT_FALSE(sim.oom) << name;
    EXPECT_EQ(sim.peak_reserved, direct.final_stats.peak_reserved_bytes)
        << name;
    EXPECT_EQ(sim.peak_allocated, direct.final_stats.peak_active_bytes)
        << name;
  }
}

// ---------- knob sweeps: documented monotonicity per backend ----------
//
// Each configurable backend documents how its knobs move the reserved /
// active peaks (docs/ALLOCATORS.md). These cases pin the *direction* of
// each knob on a fixed 10k-event stream, so a refactor that silently
// inverts a policy (e.g. a split cap that starts lowering fragmentation)
// fails loudly here rather than shifting estimation numbers downstream.

std::vector<StreamEvent> knob_sweep_stream() {
  EventStreamConfig config;
  config.seed = 777;
  config.num_events = 10000;
  config.num_streams = 2;
  return generate_event_stream(config);
}

/// Replay one stream through a registry backend built with explicit knobs.
ReplayReport replay_with_knobs(const std::string& name,
                               const BackendKnobs& knobs,
                               const std::vector<StreamEvent>& events) {
  SimulatedCudaDriver driver(kUnbounded);
  const auto backend = make_backend(name, driver, knobs);
  return replay_with_invariants(*backend, events);
}

TEST(KnobSweeps, ExpandableSplitCapNeverLowersPeakReserved) {
  // max_split_size_bytes only ever *forbids* splits that the unlimited
  // policy would have made, so any finite cap can fragment more — never
  // less — than cap 0 (unlimited, the upstream default).
  const auto events = knob_sweep_stream();
  const ReplayReport unlimited =
      replay_with_knobs("pytorch-expandable", {}, events);
  ASSERT_TRUE(unlimited.ok) << unlimited.violation;
  for (const std::int64_t cap : {64 * kMiB, 16 * kMiB, 4 * kMiB}) {
    const ReplayReport capped = replay_with_knobs(
        "pytorch-expandable", {{"max_split_size_bytes", cap}}, events);
    ASSERT_TRUE(capped.ok) << "cap " << cap << ": " << capped.violation;
    EXPECT_GE(capped.peak_reserved, unlimited.peak_reserved)
        << "split cap " << cap << " reserved less than unlimited splitting";
    // A free block over the cap is handed out whole (splitting it is
    // forbidden), so the caller is charged more, never less.
    EXPECT_GE(capped.final_stats.peak_active_bytes,
              unlimited.final_stats.peak_active_bytes);
  }
}

TEST(KnobSweeps, CubCacheBoundTradesDriverTrafficForReservedPeak) {
  // Caching holds freed blocks reserved, so the reserved peak with a cache
  // dominates the uncached run — and in exchange saves driver mallocs.
  const auto events = knob_sweep_stream();
  std::int64_t uncached_peak = 0;
  std::int64_t uncached_mallocs = 0;
  {
    SimulatedCudaDriver driver(kUnbounded);
    CubConfig config;
    config.max_cached_bytes = 0;  // caching disabled entirely
    CubBinnedAllocator backend(driver, config);
    const ReplayReport report = replay_with_invariants(backend, events);
    ASSERT_TRUE(report.ok) << report.violation;
    // With no cache every allocation is a fresh driver reservation.
    EXPECT_EQ(backend.num_driver_mallocs(), report.final_stats.num_allocs);
    EXPECT_EQ(backend.cached_bytes(), 0);
    uncached_peak = report.peak_reserved;
    uncached_mallocs = backend.num_driver_mallocs();
  }
  {
    SimulatedCudaDriver driver(kUnbounded);
    CubBinnedAllocator backend(driver, CubConfig{});  // 256 MiB cache
    const ReplayReport report = replay_with_invariants(backend, events);
    ASSERT_TRUE(report.ok) << report.violation;
    EXPECT_GE(report.peak_reserved, uncached_peak);
    EXPECT_LT(backend.num_driver_mallocs(), uncached_mallocs)
        << "a 256 MiB cache must absorb some driver traffic on 10k events";
    EXPECT_LE(backend.cached_bytes(), CubConfig{}.max_cached_bytes);
  }
}

TEST(KnobSweeps, CubFinerBinsChargeNoMoreThanCoarserBins) {
  // Every power of 4 is a power of 2, so pow-2 bins (growth=2) round every
  // request to at most what pow-4 bins (growth=4) charge — pointwise on
  // backend_round and therefore on the active peak of any shared stream.
  SimulatedCudaDriver driver(kUnbounded);
  const CubConfig pow2{/*bin_growth=*/2, /*min_bin=*/9, /*max_bin=*/25,
                       /*max_cached_bytes=*/0};
  const CubConfig pow4{/*bin_growth=*/4, /*min_bin=*/5, /*max_bin=*/13,
                       /*max_cached_bytes=*/0};
  CubBinnedAllocator fine(driver, pow2);
  CubBinnedAllocator coarse(driver, pow4);
  std::int64_t previous = 0;
  for (const std::int64_t bytes :
       {std::int64_t{1}, std::int64_t{512}, std::int64_t{513},
        std::int64_t{100000}, 3 * kMiB, 33 * kMiB, 65 * kMiB, 200 * kMiB}) {
    const std::int64_t rounded = fine.backend_round(bytes);
    EXPECT_GE(rounded, bytes);
    EXPECT_GE(rounded, previous) << "rounding must be monotone";
    EXPECT_LE(rounded, coarse.backend_round(bytes)) << bytes << " bytes";
    previous = rounded;
  }
  const auto events = knob_sweep_stream();
  SimulatedCudaDriver fine_driver(kUnbounded);
  SimulatedCudaDriver coarse_driver(kUnbounded);
  CubBinnedAllocator fine_replay(fine_driver, pow2);
  CubBinnedAllocator coarse_replay(coarse_driver, pow4);
  const ReplayReport fine_report = replay_with_invariants(fine_replay, events);
  const ReplayReport coarse_report =
      replay_with_invariants(coarse_replay, events);
  ASSERT_TRUE(fine_report.ok) << fine_report.violation;
  ASSERT_TRUE(coarse_report.ok) << coarse_report.violation;
  EXPECT_LE(fine_report.final_stats.peak_active_bytes,
            coarse_report.final_stats.peak_active_bytes);
}

TEST(KnobSweeps, StreamPoolReleaseThresholdBoundsRetainedIdleMemory) {
  // What release_threshold_bytes guarantees (and what it does not): the
  // peak reserved is NOT monotone in the threshold — eager release forces
  // re-growth with request-sized chunks that can overshoot what a retained
  // chunk would have served. The contract is about idle memory held once
  // the stream drains (every chunk wholly free), about whether threshold
  // trimming fires at all, and about the driver traffic the cache saves.
  const auto events = knob_sweep_stream();
  std::int64_t eager_mallocs = 0;
  for (const std::int64_t threshold :
       {std::int64_t{0}, 64 * kMiB, 512 * kMiB, kUnbounded}) {
    SimulatedCudaDriver driver(kUnbounded);
    StreamPoolConfig config;
    config.release_threshold_bytes = threshold;
    StreamPoolAllocator backend(driver, config);
    const ReplayReport report = replay_with_invariants(backend, events);
    ASSERT_TRUE(report.ok)
        << "threshold " << threshold << ": " << report.violation;
    // After the drain every chunk is wholly free, so trimming can always
    // get idle bytes under any finite bound.
    if (threshold != kUnbounded) {
      EXPECT_LE(report.final_stats.reserved_bytes, threshold)
          << "drained pool retained more idle memory than its threshold";
    }
    if (threshold == 0) {
      // CUDA's default: everything goes back at the first opportunity.
      EXPECT_EQ(report.final_stats.reserved_bytes, 0);
      EXPECT_GT(backend.num_threshold_releases(), 0)
          << "10k events with interleaved frees never freed a whole chunk";
      eager_mallocs = driver.stats().num_mallocs;
    }
    if (threshold == kUnbounded) {
      // Nothing is ever released: reserved only grows, so the final
      // footprint IS the peak, and an unbounded pool re-serves from cache
      // instead of going back to the driver.
      EXPECT_EQ(backend.num_threshold_releases(), 0);
      EXPECT_EQ(report.final_stats.reserved_bytes, report.peak_reserved);
      EXPECT_LT(driver.stats().num_mallocs, eager_mallocs)
          << "retaining chunks must cut driver traffic vs eager release";
    }
  }
}

// ---------- failure debuggability: shrinking to a reproducer ----------

/// A deliberately broken backend: the accounting bug every allocator
/// refactor is one typo away from — free forgets to return the bytes.
class LeakyCounterBackend final : public fw::AllocatorBackend {
 public:
  std::string_view backend_name() const override { return "leaky"; }
  fw::BackendAllocResult backend_alloc(std::int64_t bytes) override {
    const std::int64_t id = next_id_++;
    live_[id] = bytes;
    active_ += bytes;
    peak_active_ = std::max(peak_active_, active_);
    ++num_allocs_;
    return fw::BackendAllocResult{id, bytes, false};
  }
  void backend_free(std::int64_t id) override {
    if (live_.erase(id) == 0) throw std::logic_error("leaky: unknown id");
    ++num_frees_;
    // BUG: active_ is never decremented.
  }
  fw::BackendStats backend_stats() const override {
    fw::BackendStats s;
    s.active_bytes = active_;
    s.peak_active_bytes = peak_active_;
    s.reserved_bytes = active_;
    s.peak_reserved_bytes = peak_active_;
    s.num_allocs = num_allocs_;
    s.num_frees = num_frees_;
    s.num_segments = 0;
    s.num_live_blocks = static_cast<std::int64_t>(live_.size());
    return s;
  }
  std::int64_t backend_round(std::int64_t bytes) const override {
    return bytes;
  }
  void backend_reset() override {
    live_.clear();
    next_id_ = 1;
    active_ = 0;
    peak_active_ = 0;
    num_allocs_ = 0;
    num_frees_ = 0;
  }

 private:
  std::int64_t next_id_ = 1;
  std::int64_t active_ = 0;
  std::int64_t peak_active_ = 0;
  std::int64_t num_allocs_ = 0;
  std::int64_t num_frees_ = 0;
  std::unordered_map<std::int64_t, std::int64_t> live_;
};

TEST(AllocatorParity, ShrinksFailingStreamToSmallReproducer) {
  EventStreamConfig config;
  config.seed = 31337;
  config.num_events = 5000;
  const auto events = generate_event_stream(config);

  const auto still_fails = [](const std::vector<StreamEvent>& candidate) {
    LeakyCounterBackend backend;  // fresh instance per attempt
    return !replay_with_invariants(backend, candidate).ok;
  };
  ASSERT_TRUE(still_fails(events)) << "leaky backend must trip the harness";

  const auto reproducer = shrink_failing_stream(events, still_fails);
  ASSERT_FALSE(reproducer.empty());
  EXPECT_TRUE(still_fails(reproducer));
  // The conservation bug needs exactly one alloc + its free to surface.
  EXPECT_LE(reproducer.size(), 2u) << dump_stream(reproducer);
  // The dump a failing parity test attaches stays readable.
  EXPECT_NE(dump_stream(reproducer).find("fingerprint"), std::string::npos);
}

TEST(AllocatorParity, ShrinkReturnsEmptyForPassingStream) {
  EventStreamConfig config;
  config.num_events = 200;
  const auto events = generate_event_stream(config);
  const auto never_fails = [](const std::vector<StreamEvent>&) {
    return false;
  };
  EXPECT_TRUE(shrink_failing_stream(events, never_fails).empty());
}

}  // namespace
}  // namespace xmem::alloc
