// EstimationService tests: the profile-once/estimate-many contract.
//
//   * request/report JSON schema round-trips (the `xmem sweep` interface);
//   * a sweep over N devices x M allocators runs exactly ONE CPU profile
//     (stage counters prove it) and the concurrent path returns
//     byte-identical reports to the serial path;
//   * supports() gates execution in the service path: an unsupported job
//     yields a supported=false entry and compute() is never invoked;
//   * the ProfileSession LRU is bounded and deduplicates in-flight work;
//   * the result cache (the old EvalHarness estimate cache) serves repeats.
#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <sstream>

#include "alloc/backend_registry.h"
#include "core/estimation_service.h"
#include "core/estimator_registry.h"
#include "core/profile_session.h"
#include "core/xmem_estimator.h"
#include "util/json.h"

namespace xmem {
namespace {

core::TrainJob small_job() {
  core::TrainJob job;
  job.model_name = "distilgpt2";
  job.batch_size = 5;
  job.optimizer = fw::OptimizerKind::kAdamW;
  job.seed = 7;
  return job;
}

core::EstimateRequest sweep_request() {
  core::EstimateRequest request;
  request.job = small_job();
  request.devices = {gpu::rtx3060(), gpu::rtx4060(), gpu::a100_40gb()};
  request.allocators = {"pytorch", "tf-bfc"};
  request.estimators = {"xMem"};
  return request;
}

// ---------- request / report JSON schema ----------

TEST(EstimateRequestJson, RoundTripsThroughJson) {
  core::EstimateRequest request = sweep_request();
  const util::Json json = request.to_json();
  const core::EstimateRequest parsed = core::EstimateRequest::from_json(json);
  EXPECT_EQ(parsed.job.model_name, request.job.model_name);
  EXPECT_EQ(parsed.job.batch_size, request.job.batch_size);
  EXPECT_EQ(parsed.job.optimizer, request.job.optimizer);
  EXPECT_EQ(parsed.job.placement, request.job.placement);
  EXPECT_EQ(parsed.job.seed, request.job.seed);
  ASSERT_EQ(parsed.devices.size(), 3u);
  EXPECT_EQ(parsed.devices[2].name, "NVIDIA A100 40GB");
  EXPECT_EQ(parsed.allocators, request.allocators);
  EXPECT_EQ(parsed.estimators, request.estimators);
}

TEST(EstimateRequestJson, AcceptsAliasesAndCustomDevices) {
  const char* text = R"({
    "job": {"model": "distilgpt2", "batch": 5, "optimizer": "AdamW"},
    "devices": ["rtx3060",
                {"name": "H100-96GB", "capacity_bytes": 103079215104,
                 "m_init_bytes": 440401920, "m_fm_bytes": 692060160}],
    "allocators": ["pytorch"]
  })";
  const core::EstimateRequest request =
      core::EstimateRequest::from_json(util::Json::parse(text));
  ASSERT_EQ(request.devices.size(), 2u);
  EXPECT_EQ(request.devices[0].name, "GeForce RTX 3060");
  EXPECT_EQ(request.devices[1].name, "H100-96GB");
  EXPECT_EQ(request.devices[1].capacity, std::int64_t{103079215104});
  // Defaults apply where the document is silent.
  EXPECT_EQ(request.estimators, std::vector<std::string>{"xMem"});
  EXPECT_EQ(request.job.placement, fw::ZeroGradPlacement::kPos1IterStart);
}

TEST(EstimateRequestJson, PartialDeviceOverridesKeepReferenceGeometry) {
  // A what-if override of one field (extra framework headroom) must start
  // from the named card's real geometry, not silently discard the rest.
  const char* text = R"({
    "job": {"model": "distilgpt2", "batch": 5},
    "devices": [{"name": "rtx3060", "m_init_bytes": 1073741824}]
  })";
  const core::EstimateRequest request =
      core::EstimateRequest::from_json(util::Json::parse(text));
  ASSERT_EQ(request.devices.size(), 1u);
  EXPECT_EQ(request.devices[0].capacity, gpu::rtx3060().capacity);
  EXPECT_EQ(request.devices[0].m_init, std::int64_t{1} << 30);
  EXPECT_EQ(request.devices[0].m_fm, gpu::rtx3060().m_fm);

  // Unknown names need explicit capacity.
  EXPECT_THROW(core::EstimateRequest::from_json(util::Json::parse(R"({
    "job": {"model": "distilgpt2", "batch": 5},
    "devices": [{"name": "mystery-card", "m_init_bytes": 1}]
  })")),
               std::invalid_argument);
}

TEST(EstimateRequestJson, RejectsMalformedDocuments) {
  EXPECT_THROW(core::EstimateRequest::from_json(
                   util::Json::parse(R"({"devices": ["rtx3060"]})")),
               std::exception);  // missing job
  EXPECT_THROW(
      core::EstimateRequest::from_json(util::Json::parse(
          R"({"job": {"model": "distilgpt2", "batch": 5}})")),
      std::invalid_argument);  // missing devices
  EXPECT_THROW(
      core::EstimateRequest::from_json(util::Json::parse(
          R"({"job": {"model": "distilgpt2"}, "devices": ["rtx3060"]})")),
      std::invalid_argument);  // batch <= 0
  EXPECT_THROW(
      core::EstimateRequest::from_json(util::Json::parse(
          R"({"job": {"model": "m", "batch": 1}, "devices": ["warp9"]})")),
      std::invalid_argument);  // unknown device alias
}

std::string read_fixture(const std::string& name) {
  std::ifstream in(std::string(XMEM_FIXTURE_DIR) + "/" + name);
  EXPECT_TRUE(in) << "missing ci/fixtures/" << name;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(EstimateRequestJson, BadFixtureMalformedJsonFailsWithOffset) {
  // The CI negative-smoke fixtures are asserted here too, so the files and
  // the behavior they pin cannot drift apart. Truncated JSON must fail in
  // the parser with the offending offset, not limp into the service.
  const std::string text = read_fixture("bad_malformed.json");
  try {
    util::Json::parse(text);
    FAIL() << "parser accepted truncated JSON";
  } catch (const util::JsonParseError& error) {
    EXPECT_NE(std::string(error.what()).find("offset"), std::string::npos);
  }
}

TEST(EstimateRequestJson, BadFixtureMissingDevicesNamesTheField) {
  const std::string text = read_fixture("bad_missing_field.json");
  try {
    core::EstimateRequest::from_json(util::Json::parse(text));
    FAIL() << "request without devices was accepted";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("devices"), std::string::npos)
        << "error must name the missing field: " << error.what();
  }
}

TEST(EstimateRequestJson, BadFixtureUnknownEstimatorNamesTheEstimator) {
  // Unknown estimator names pass parsing (the registry is a service
  // concern) but the sweep rejects them, naming the offender.
  const std::string text = read_fixture("bad_unknown_estimator.json");
  const core::EstimateRequest request =
      core::EstimateRequest::from_json(util::Json::parse(text));
  core::EstimationService service;
  try {
    service.sweep(request);
    FAIL() << "sweep accepted an unknown estimator";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("warp-drive"), std::string::npos)
        << "error must name the unknown estimator: " << error.what();
  }
}

TEST(EstimateRequestJson, BadFixtureBackendConfigFailsWithActionableMessage) {
  // Malformed backend knobs parse fine (knob semantics are a backend
  // concern) but the sweep validates them up front by constructing a
  // throwaway backend, surfacing the backend's own diagnostic.
  const std::string text = read_fixture("bad_backend_config.json");
  const core::EstimateRequest request =
      core::EstimateRequest::from_json(util::Json::parse(text));
  core::EstimationService service;
  try {
    service.sweep(request);
    FAIL() << "sweep accepted min_bin > max_bin";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("malformed bin config"), std::string::npos) << what;
    EXPECT_NE(what.find("min_bin"), std::string::npos)
        << "error must name the offending knob: " << what;
  }
}

TEST(EstimationServiceSweep, AllocatorConfigKnobsSeparateResultCacheEntries) {
  // Two sweeps differing only in allocator_config must not alias in the
  // result cache: the tuned pass reuses the profile but re-replays, and
  // its estimates move with the knobs.
  core::EstimateRequest request = sweep_request();
  request.allocators = {"cub-binned"};
  core::EstimationService service;
  const core::EstimateReport defaults = service.sweep(request);
  EXPECT_EQ(defaults.profiles_run, 1u);

  request.allocator_config["cub-binned"] = {{"bin_growth", 4},
                                            {"min_bin", 3},
                                            {"max_bin", 12},
                                            {"max_cached_bytes", 200000000}};
  const core::EstimateReport tuned = service.sweep(request);
  EXPECT_EQ(tuned.profiles_run, 0u);  // same job: cached profile serves it
  EXPECT_EQ(tuned.result_cache_hits, 0u)
      << "knob fingerprint missing from the result-cache key";
  ASSERT_EQ(tuned.entries.size(), defaults.entries.size());
  bool any_differs = false;
  for (std::size_t i = 0; i < tuned.entries.size(); ++i) {
    any_differs |= tuned.entries[i].estimated_peak !=
                   defaults.entries[i].estimated_peak;
  }
  EXPECT_TRUE(any_differs) << "cub knobs did not reach the replay tower";

  // The exact tuned request repeated IS a result-cache hit.
  const core::EstimateReport repeat = service.sweep(request);
  EXPECT_EQ(repeat.result_cache_hits, repeat.entries.size());
  // And the knobs survive the JSON round-trip the CLI uses.
  const core::EstimateRequest parsed =
      core::EstimateRequest::from_json(request.to_json());
  EXPECT_EQ(parsed.allocator_config, request.allocator_config);
}

TEST(EstimationServiceSweep, RejectsUnknownNames) {
  core::EstimationService service;
  core::EstimateRequest request = sweep_request();
  request.job.model_name = "not-a-model";
  EXPECT_THROW(service.sweep(request), std::invalid_argument);

  request = sweep_request();
  request.allocators = {"not-an-allocator"};
  EXPECT_THROW(service.sweep(request), std::invalid_argument);

  request = sweep_request();
  request.estimators = {"not-an-estimator"};
  EXPECT_THROW(service.sweep(request), std::invalid_argument);
}

// ---------- profile-once / estimate-many ----------

TEST(EstimationServiceSweep, OneProfileManyReplays) {
  // The acceptance sweep: 1 job x 4 devices x 3 allocators. Exactly one
  // CPU profile; every other entry is a cheap replay against the session.
  core::EstimateRequest request = sweep_request();
  request.devices.push_back(gpu::DeviceModel{"Custom-24GB",
                                             std::int64_t{24} << 30,
                                             std::int64_t{300} << 20,
                                             std::int64_t{600} << 20});
  request.allocators = alloc::backend_names();
  ASSERT_GE(request.allocators.size(), 3u);

  core::EstimationService service;
  const core::EstimateReport report = service.sweep(request);

  const std::size_t n = request.devices.size() * request.allocators.size();
  ASSERT_EQ(report.entries.size(), n);
  EXPECT_EQ(report.profiles_run, 1u);
  EXPECT_EQ(report.profile_cache_hits, n - 1);
  EXPECT_EQ(report.replays_run, n);
  EXPECT_EQ(report.result_cache_hits, 0u);

  // Stage timings prove no re-profile: exactly one entry paid the profile.
  std::size_t cold_entries = 0;
  for (const core::EstimateEntry& entry : report.entries) {
    EXPECT_TRUE(entry.supported);
    EXPECT_GT(entry.estimated_peak, 0) << entry.device << "/" << entry.allocator;
    EXPECT_TRUE(entry.has_orchestrator_stats);
    if (!entry.timings.profile_cache_hit) {
      ++cold_entries;
      EXPECT_GT(entry.timings.profile_seconds, 0.0);
    } else {
      EXPECT_EQ(entry.timings.profile_seconds, 0.0);
      EXPECT_EQ(entry.timings.analyze_seconds, 0.0);
    }
  }
  EXPECT_EQ(cold_entries, 1u);

  // Same-device entries across allocators share the profile, so the OOM
  // verdict per device is consistent with each entry's budget.
  for (const core::EstimateEntry& entry : report.entries) {
    EXPECT_EQ(entry.oom_predicted,
              entry.estimated_peak > entry.device_job_budget);
  }
}

TEST(EstimationServiceSweep, ConcurrentSweepMatchesSerialByteForByte) {
  const core::EstimateRequest request = sweep_request();  // 3 devices x 2 alloc

  core::ServiceOptions serial_options;
  serial_options.threads = 1;
  core::EstimationService serial(serial_options);

  core::ServiceOptions concurrent_options;
  concurrent_options.threads = 4;
  core::EstimationService concurrent(concurrent_options);

  const core::EstimateReport serial_report = serial.sweep(request);
  const core::EstimateReport concurrent_report = concurrent.sweep(request);

  // Byte-identical deterministic payload (timings excluded: wall clocks
  // legitimately differ between runs).
  EXPECT_EQ(serial_report.to_json(/*include_timings=*/false).dump(2),
            concurrent_report.to_json(/*include_timings=*/false).dump(2));

  // Both paths hit the profile cache for all but one entry.
  EXPECT_EQ(serial_report.profiles_run, 1u);
  EXPECT_EQ(concurrent_report.profiles_run, 1u);
  EXPECT_EQ(concurrent_report.profile_cache_hits,
            serial_report.profile_cache_hits);
}

TEST(EstimationServiceSweep, ResultCacheServesRepeats) {
  core::EstimationService service;
  const core::TrainJob job = small_job();
  const core::EstimateEntry first =
      service.estimate("xMem", job, gpu::rtx3060());
  const core::EstimateEntry second =
      service.estimate("xMem", job, gpu::rtx3060());
  EXPECT_FALSE(first.timings.result_cache_hit);
  EXPECT_TRUE(second.timings.result_cache_hit);
  EXPECT_EQ(first.estimated_peak, second.estimated_peak);
  // Cached repeats keep the original runtime (the harness contract: the
  // estimate is computed once per configuration).
  EXPECT_EQ(first.timings.total_seconds, second.timings.total_seconds);
}

TEST(EstimationServiceSweep, ResultCacheDistinguishesDeviceGeometry) {
  // Two custom devices can share a name with different geometry; the
  // cached verdict of one must never be served for the other.
  core::EstimationService service;
  const core::TrainJob job = small_job();
  gpu::DeviceModel roomy = gpu::rtx3060();
  roomy.name = "what-if";
  roomy.capacity = std::int64_t{40} << 30;
  gpu::DeviceModel tight = roomy;
  tight.capacity = std::int64_t{4} << 30;

  const core::EstimateEntry first = service.estimate("xMem", job, roomy);
  const core::EstimateEntry second = service.estimate("xMem", job, tight);
  EXPECT_FALSE(first.oom_predicted);
  EXPECT_FALSE(second.timings.result_cache_hit);
  EXPECT_TRUE(second.oom_predicted);
  EXPECT_NE(first.device_job_budget, second.device_job_budget);
}

TEST(EstimationServiceSweep, AdapterAndServiceAgree) {
  // core::Estimator survives as a thin adapter: the same job through the
  // old interface and the service must give identical peaks.
  const core::TrainJob job = small_job();
  core::XMemEstimator estimator;
  const core::EstimateResult direct = estimator.estimate(job, gpu::rtx3060());

  core::EstimationService service;
  const core::EstimateEntry entry =
      service.estimate("xMem", job, gpu::rtx3060());
  EXPECT_EQ(direct.estimated_peak, entry.estimated_peak);
  EXPECT_EQ(direct.oom_predicted, entry.oom_predicted);
  EXPECT_GT(direct.runtime_seconds, 0.0);  // uniform wrapper fills it
}

// ---------- supports() gating ----------

std::atomic<int> g_mock_compute_calls{0};

class UnsupportedEverythingEstimator final : public core::Estimator {
 public:
  std::string name() const override { return "MockUnsupported"; }
  bool supports(const core::TrainJob&) const override { return false; }

 protected:
  core::EstimateResult compute(const core::TrainJob&,
                               const gpu::DeviceModel&) override {
    g_mock_compute_calls.fetch_add(1);
    core::EstimateResult bogus;
    bogus.estimated_peak = 1;  // would be a bogus peak if it ever leaked
    return bogus;
  }
};

TEST(SupportsGating, ComputeNeverRunsForUnsupportedJobs) {
  static bool registered = false;
  if (!registered) {
    core::register_estimator("MockUnsupported", "test-only", [] {
      return std::make_unique<UnsupportedEverythingEstimator>();
    });
    registered = true;
  }

  core::EstimationService service;
  core::EstimateRequest request = sweep_request();
  request.estimators = {"MockUnsupported"};
  const core::EstimateReport report = service.sweep(request);

  ASSERT_EQ(report.entries.size(), request.devices.size());
  for (const core::EstimateEntry& entry : report.entries) {
    EXPECT_FALSE(entry.supported);
    EXPECT_EQ(entry.estimated_peak, 0);
    EXPECT_FALSE(entry.oom_predicted);
  }
  EXPECT_EQ(g_mock_compute_calls.load(), 0);
}

TEST(SupportsGating, LLMemOnCnnYieldsUnsupportedReport) {
  // The regression the redesign guards: LLMem is CausalLM-only; a CNN job
  // must come back supported=false from the service, never a bogus peak.
  core::EstimationService service;
  core::TrainJob cnn_job;
  cnn_job.model_name = "MnasNet";
  cnn_job.batch_size = 200;
  cnn_job.optimizer = fw::OptimizerKind::kSgd;

  const core::EstimateEntry entry =
      service.estimate("LLMem", cnn_job, gpu::rtx3060());
  EXPECT_FALSE(entry.supported);
  EXPECT_EQ(entry.estimated_peak, 0);
  EXPECT_FALSE(entry.oom_predicted);

  const util::Json json = entry.to_json();
  EXPECT_FALSE(json.contains("estimated_peak_bytes"));
  EXPECT_FALSE(json.at("supported").as_bool());
}

TEST(SupportsGating, BaselinesWithoutAllocatorGetOneEntryPerDevice) {
  core::EstimationService service;
  core::EstimateRequest request = sweep_request();
  request.estimators = {"xMem", "DNNMem"};
  const core::EstimateReport report = service.sweep(request);
  // xMem: devices x allocators; DNNMem ignores the allocator dimension.
  ASSERT_EQ(report.entries.size(),
            request.devices.size() * request.allocators.size() +
                request.devices.size());
  for (std::size_t i = request.devices.size() * request.allocators.size();
       i < report.entries.size(); ++i) {
    EXPECT_EQ(report.entries[i].estimator, "DNNMem");
    EXPECT_TRUE(report.entries[i].allocator.empty());
    EXPECT_FALSE(report.entries[i].has_orchestrator_stats);
  }
}

// ---------- ProfileSession ----------

TEST(ProfileSessionCache, BoundedLruEvictsOldestKey) {
  core::ProfileSession session(/*capacity=*/2);

  auto key_for = [&](int batch) {
    core::TrainJob job = small_job();
    job.batch_size = batch;
    core::XMemEstimator key_builder;
    return key_builder.profile_key(job);
  };

  session.get(key_for(1));
  session.get(key_for(2));
  session.get(key_for(3));  // evicts batch=1
  EXPECT_EQ(session.size(), 2u);
  EXPECT_EQ(session.misses(), 3u);

  session.get(key_for(3));  // resident
  EXPECT_EQ(session.hits(), 1u);
  session.get(key_for(1));  // was evicted: must re-profile
  EXPECT_EQ(session.misses(), 4u);
}

TEST(ProfileSessionCache, SharedSessionAcrossEstimators) {
  auto session = std::make_shared<core::ProfileSession>();
  core::XMemEstimator first({}, session);
  core::XMemEstimator second({}, session);
  const core::TrainJob job = small_job();
  first.estimate(job, gpu::rtx3060());
  second.estimate(job, gpu::rtx4060());
  EXPECT_EQ(session->misses(), 1u);
  EXPECT_EQ(session->hits(), 1u);
}

TEST(ProfileSessionCache, FailuresAreNotCached) {
  core::ProfileSession session;
  core::ProfileKey key;
  key.model_name = "no-such-model";
  key.batch_size = 1;
  EXPECT_THROW(session.get(key), std::invalid_argument);
  EXPECT_EQ(session.size(), 0u);
  EXPECT_THROW(session.get(key), std::invalid_argument);  // retried, not stuck
}

// ---------- report JSON ----------

TEST(EstimateReportJson, SchemaFieldsPresent) {
  core::EstimationService service;
  core::EstimateRequest request = sweep_request();
  request.record_curve = true;
  const core::EstimateReport report = service.sweep(request);

  const util::Json json = report.to_json();
  EXPECT_EQ(json.at("schema_version").as_int(), 1);
  EXPECT_EQ(json.at("job").at("model").as_string(), "distilgpt2");
  EXPECT_EQ(json.at("entries").size(), report.entries.size());
  const util::Json& entry = json.at("entries")[0];
  EXPECT_TRUE(entry.contains("estimator"));
  EXPECT_TRUE(entry.contains("device"));
  EXPECT_TRUE(entry.contains("allocator"));
  EXPECT_TRUE(entry.contains("estimated_peak_bytes"));
  EXPECT_TRUE(entry.contains("oom_predicted"));
  EXPECT_TRUE(entry.contains("orchestrator_stats"));
  EXPECT_TRUE(entry.contains("timings"));
  EXPECT_TRUE(entry.contains("reserved_curve"));
  EXPECT_GT(entry.at("reserved_curve").size(), 0u);
  const util::Json& counters = json.at("stage_counters");
  EXPECT_EQ(counters.at("profiles_run").as_int(), 1);

  // Timing-free rendering (golden diffs) drops every wall-clock field.
  const util::Json stable = report.to_json(/*include_timings=*/false);
  EXPECT_FALSE(stable.contains("wall_seconds"));
  EXPECT_FALSE(stable.at("entries")[0].contains("timings"));
}

}  // namespace
}  // namespace xmem
