// DistributedPlanner tests: the §6.2 multi-GPU planner suite.
//
//   * contiguous-partition optimality on hand-computable component
//     sequences (brute force over every partition agrees with the solver);
//   * monotonicity — more stages never raises the max-stage peak on
//     divisible (uniform) inputs;
//   * DP/TP shard arithmetic (ZeRO stages, replicated components,
//     activation replication) checked against hand-computed bytes;
//   * hybrid composition is consistent with the pure DP/TP planners;
//   * the EstimationService plan search over a >= 8 GPU budget runs
//     exactly ONE CPU profile and is byte-identical serial vs threaded.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "alloc/backend_registry.h"
#include "core/distributed_planner.h"
#include "core/estimation_service.h"
#include "util/json.h"

namespace xmem {
namespace {

using core::ComponentProfile;
using core::Decomposition;
using core::DistributedOptions;
using core::DistributedPlanner;
using core::HybridOptions;
using core::PipelineSchedule;
using core::ZeroStage;

/// A component with the stage-model convention baked in: persistent bytes a
/// stage holds = params + gradients (mirror) + optimizer state.
ComponentProfile component(const std::string& name, std::int64_t params,
                           std::int64_t optimizer, std::int64_t activations,
                           std::int64_t transient) {
  return ComponentProfile{name, params, optimizer, activations, transient};
}

/// The planner's per-stage peak model, restated independently for the
/// brute-force checks: persistent + in-flight micro-batch activations +
/// the largest workspace.
std::int64_t model_peak(const std::vector<ComponentProfile>& profiles,
                        std::size_t first, std::size_t last, std::size_t index,
                        std::size_t num_stages, int micro_batches) {
  std::int64_t persistent = 0, activations = 0, transient = 0;
  for (std::size_t i = first; i <= last; ++i) {
    persistent += 2 * profiles[i].param_bytes + profiles[i].optimizer_bytes;
    activations += profiles[i].activation_bytes;
    transient = std::max(transient, profiles[i].transient_peak);
  }
  const int in_flight = std::min<int>(
      static_cast<int>(num_stages - index), micro_batches);
  return persistent + (activations / micro_batches) * in_flight + transient;
}

/// Minimum max-stage peak over every contiguous partition into at most
/// `num_stages` stages (exponential; test inputs are tiny).
std::int64_t brute_force_min_max(const std::vector<ComponentProfile>& profiles,
                                 std::size_t num_stages, int micro_batches) {
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  // A bitmask over the n-1 possible stage boundaries.
  const std::size_t n = profiles.size();
  for (std::size_t mask = 0; mask < (std::size_t{1} << (n - 1)); ++mask) {
    if (static_cast<std::size_t>(std::popcount(mask)) + 1 > num_stages) {
      continue;
    }
    std::int64_t worst = 0;
    std::size_t begin = 0, stage = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const bool boundary = i + 1 == n || ((mask >> i) & 1) != 0;
      if (!boundary) continue;
      worst = std::max(worst, model_peak(profiles, begin, i, stage, num_stages,
                                         micro_batches));
      begin = i + 1;
      ++stage;
    }
    best = std::min(best, worst);
  }
  return best;
}

std::vector<ComponentProfile> uneven_sequence() {
  return {
      component("Embedding.0", 400, 800, 600, 40),
      component("SelfAttention.1", 900, 1800, 1200, 80),
      component("MLP.2", 1600, 3200, 2000, 120),
      component("InputNorm.3", 8, 16, 300, 4),
      component("SelfAttention.4", 900, 1800, 1200, 80),
      component("MLP.5", 1600, 3200, 2000, 120),
      component("LMHead.6", 400, 800, 2400, 200),
  };
}

std::vector<ComponentProfile> uniform_sequence(std::size_t n) {
  std::vector<ComponentProfile> profiles;
  for (std::size_t i = 0; i < n; ++i) {
    profiles.push_back(
        component("Layer." + std::to_string(i), 1000, 2000, 1200, 64));
  }
  return profiles;
}

// ---------- pipeline partitioning ----------

TEST(PipelinePartition, MatchesBruteForceOptimumOnHandSequences) {
  DistributedPlanner planner;
  for (const int stages : {2, 3, 4}) {
    for (const int micro_batches : {1, 2, 4}) {
      DistributedOptions options;
      options.pipeline_stages = stages;
      options.micro_batches = micro_batches;
      const auto plan = planner.plan_pipeline(uneven_sequence(), options);
      EXPECT_EQ(plan.max_stage_peak,
                brute_force_min_max(uneven_sequence(),
                                    static_cast<std::size_t>(stages),
                                    micro_batches))
          << "stages=" << stages << " mb=" << micro_batches;
    }
  }
}

TEST(PipelinePartition, MoreStagesNeverRaiseMaxPeakOnDivisibleInputs) {
  DistributedPlanner planner;
  const auto profiles = uniform_sequence(12);
  std::int64_t previous = std::numeric_limits<std::int64_t>::max();
  for (int stages = 1; stages <= 6; ++stages) {
    DistributedOptions options;
    options.pipeline_stages = stages;
    options.micro_batches = 4;
    const auto plan = planner.plan_pipeline(profiles, options);
    EXPECT_LE(plan.max_stage_peak, previous) << "stages=" << stages;
    previous = plan.max_stage_peak;
  }
}

TEST(PipelinePartition, StagesAreContiguousCompleteAndBounded) {
  DistributedPlanner planner;
  DistributedOptions options;
  options.pipeline_stages = 3;
  const auto profiles = uneven_sequence();
  const auto plan = planner.plan_pipeline(profiles, options);
  ASSERT_EQ(plan.stages.size(), 3u);
  ASSERT_EQ(plan.rank_peaks.size(), 3u);
  EXPECT_EQ(plan.stages.front().first_component, 0u);
  EXPECT_EQ(plan.stages.back().last_component, profiles.size() - 1);
  for (std::size_t s = 1; s < plan.stages.size(); ++s) {
    EXPECT_EQ(plan.stages[s].first_component,
              plan.stages[s - 1].last_component + 1);
  }
  for (std::size_t s = 0; s < plan.stages.size(); ++s) {
    // 1F1B: one chunk per rank, so rank peaks are the stage peaks.
    EXPECT_EQ(plan.rank_peaks[s], plan.stages[s].estimated_peak);
    EXPECT_LE(plan.stages[s].estimated_peak, plan.max_stage_peak);
  }
}

TEST(PipelinePartition, SingleStageWithoutMicroBatchingIsTheSingleDevicePeak) {
  DistributedPlanner planner;
  DistributedOptions options;
  options.pipeline_stages = 1;
  options.micro_batches = 1;
  const auto plan = planner.plan_pipeline(uneven_sequence(), options);
  EXPECT_EQ(plan.max_stage_peak, plan.single_device_peak);
  EXPECT_EQ(plan.single_device_peak,
            planner.single_device_peak(uneven_sequence()));
}

TEST(PipelinePartition, InterleavedWithOneChunkPerRankMatchesOneFOneB) {
  DistributedPlanner planner;
  DistributedOptions flat;
  flat.pipeline_stages = 3;
  DistributedOptions interleaved = flat;
  interleaved.schedule = PipelineSchedule::kInterleaved;
  interleaved.virtual_stages = 1;
  const auto a = planner.plan_pipeline(uneven_sequence(), flat);
  const auto b = planner.plan_pipeline(uneven_sequence(), interleaved);
  ASSERT_EQ(a.stages.size(), b.stages.size());
  EXPECT_EQ(a.max_stage_peak, b.max_stage_peak);
  EXPECT_EQ(a.rank_peaks, b.rank_peaks);
}

TEST(PipelinePartition, InterleavedSplitsIntoVirtualStagesPerRank) {
  DistributedPlanner planner;
  DistributedOptions options;
  options.pipeline_stages = 2;
  options.schedule = PipelineSchedule::kInterleaved;
  options.virtual_stages = 3;
  const auto profiles = uniform_sequence(12);
  const auto plan = planner.plan_pipeline(profiles, options);
  ASSERT_EQ(plan.stages.size(), 6u);  // 2 ranks x 3 chunks
  ASSERT_EQ(plan.rank_peaks.size(), 2u);
  EXPECT_EQ(plan.stages.front().first_component, 0u);
  EXPECT_EQ(plan.stages.back().last_component, profiles.size() - 1);
  // Every rank holds v chunks whose resident bytes add up; the max rank
  // peak bounds every single chunk's peak from above.
  for (const auto& stage : plan.stages) {
    EXPECT_LE(stage.estimated_peak, plan.max_stage_peak);
  }
  const std::int64_t max_rank =
      *std::max_element(plan.rank_peaks.begin(), plan.rank_peaks.end());
  EXPECT_EQ(plan.max_stage_peak, max_rank);
}

// ---------- data-parallel arithmetic ----------

TEST(DataParallelPlan, ShardArithmeticPerZeroStage) {
  DistributedPlanner planner;
  const std::vector<ComponentProfile> profiles = {
      component("MLP.0", 100, 200, 400, 50),
      component("MLP.1", 300, 600, 800, 70),
  };
  core::DataParallelOptions options;
  options.ranks = 4;
  options.ddp_bucket_bytes = 1000;

  options.zero = ZeroStage::kNone;
  auto plan = planner.plan_data_parallel(profiles, options);
  EXPECT_EQ(plan.param_bytes, 400);
  EXPECT_EQ(plan.gradient_bytes, 400);
  EXPECT_EQ(plan.optimizer_bytes, 800);
  EXPECT_EQ(plan.activation_bytes, 100 + 200);  // per-component ceil(x/4)
  EXPECT_EQ(plan.transient_peak, 70);
  EXPECT_EQ(plan.bucket_overhead_bytes, 2000);
  EXPECT_EQ(plan.per_rank_peak, 400 + 400 + 800 + 300 + 70 + 2000);

  options.zero = ZeroStage::kOptimizer;  // ZeRO-1
  plan = planner.plan_data_parallel(profiles, options);
  EXPECT_EQ(plan.optimizer_bytes, 50 + 150);
  EXPECT_EQ(plan.gradient_bytes, 400);

  options.zero = ZeroStage::kOptimizerGradient;  // ZeRO-2
  plan = planner.plan_data_parallel(profiles, options);
  EXPECT_EQ(plan.optimizer_bytes, 200);
  EXPECT_EQ(plan.gradient_bytes, 25 + 75);
  EXPECT_EQ(plan.param_bytes, 400);

  options.zero = ZeroStage::kFull;  // ZeRO-3
  plan = planner.plan_data_parallel(profiles, options);
  EXPECT_EQ(plan.param_bytes, 100);
  EXPECT_EQ(plan.gradient_bytes, 100);
  EXPECT_EQ(plan.optimizer_bytes, 200);
  EXPECT_EQ(plan.per_rank_peak, 100 + 100 + 200 + 300 + 70 + 2000);
}

TEST(DataParallelPlan, OneRankIsTheSingleDevicePeakWithNoOverhead) {
  DistributedPlanner planner;
  core::DataParallelOptions options;
  options.ranks = 1;
  const auto plan = planner.plan_data_parallel(uneven_sequence(), options);
  EXPECT_EQ(plan.bucket_overhead_bytes, 0);
  EXPECT_EQ(plan.per_rank_peak, plan.single_device_peak);
}

// ---------- tensor-parallel arithmetic ----------

TEST(TensorParallelPlan, ShardsDivisibleComponentsAndReplicatesNorms) {
  DistributedPlanner planner;
  core::TensorParallelOptions options;
  options.ways = 4;
  options.activation_replication_pct = 20;

  const auto sharded = planner.shard_tensor_parallel(
      component("MLP.1", 1000, 2000, 1000, 100), options);
  EXPECT_EQ(sharded.param_bytes, 250);
  EXPECT_EQ(sharded.optimizer_bytes, 500);
  // 20% of activations replicate; the remaining 800 divide across 4 ranks.
  EXPECT_EQ(sharded.activation_bytes, 200 + 200);
  EXPECT_EQ(sharded.transient_peak, 25);

  const auto replicated = planner.shard_tensor_parallel(
      component("InputNorm.2", 64, 128, 500, 10), options);
  EXPECT_EQ(replicated.param_bytes, 64);
  EXPECT_EQ(replicated.optimizer_bytes, 128);
  EXPECT_EQ(replicated.activation_bytes, 500);
  EXPECT_EQ(replicated.transient_peak, 10);
}

TEST(TensorParallelPlan, PlanSumsShardsAndTracksReplicatedBytes) {
  DistributedPlanner planner;
  core::TensorParallelOptions options;
  options.ways = 2;
  options.activation_replication_pct = 0;
  const std::vector<ComponentProfile> profiles = {
      component("SelfAttention.0", 1000, 2000, 600, 40),
      component("InputNorm.1", 100, 200, 300, 8),
  };
  const auto plan = planner.plan_tensor_parallel(profiles, options);
  EXPECT_EQ(plan.ways, 2);
  EXPECT_EQ(plan.param_bytes, 500 + 100);
  EXPECT_EQ(plan.gradient_bytes, 500 + 100);
  EXPECT_EQ(plan.optimizer_bytes, 1000 + 200);
  EXPECT_EQ(plan.activation_bytes, 300 + 300);
  EXPECT_EQ(plan.transient_peak, 20);
  EXPECT_EQ(plan.replicated_param_bytes, 100);
  EXPECT_EQ(plan.per_rank_peak, 600 + 600 + 1200 + 600 + 20);
  EXPECT_LT(plan.per_rank_peak, plan.single_device_peak);
}

// ---------- hybrid composition ----------

TEST(HybridPlan, PureDataParallelSliceMatchesTheDataParallelPlanner) {
  DistributedPlanner planner;
  const auto profiles = uneven_sequence();
  for (const auto zero : {ZeroStage::kNone, ZeroStage::kOptimizer,
                          ZeroStage::kOptimizerGradient, ZeroStage::kFull}) {
    HybridOptions hybrid;
    hybrid.data_parallel = 4;
    hybrid.micro_batches = 1;
    hybrid.zero = zero;
    core::DataParallelOptions dp;
    dp.ranks = 4;
    dp.zero = zero;
    EXPECT_EQ(planner.plan_hybrid(profiles, hybrid).per_rank_peak,
              planner.plan_data_parallel(profiles, dp).per_rank_peak)
        << to_string(zero);
  }
}

TEST(HybridPlan, PureTensorParallelSliceMatchesTheTensorParallelPlanner) {
  DistributedPlanner planner;
  const auto profiles = uneven_sequence();
  HybridOptions hybrid;
  hybrid.tensor_parallel = 4;
  hybrid.micro_batches = 1;
  core::TensorParallelOptions tp = hybrid.tensor;
  tp.ways = 4;
  EXPECT_EQ(planner.plan_hybrid(profiles, hybrid).per_rank_peak,
            planner.plan_tensor_parallel(profiles, tp).per_rank_peak);
}

TEST(HybridPlan, GpuCountMultipliesAndBucketChargesOnlyDataParallel) {
  DistributedPlanner planner;
  const auto profiles = uneven_sequence();
  HybridOptions options;
  options.data_parallel = 2;
  options.tensor_parallel = 2;
  options.pipeline_stages = 2;
  options.ddp_bucket_bytes = 1 << 20;
  const auto plan = planner.plan_hybrid(profiles, options);
  EXPECT_EQ(plan.gpus, 8);
  ASSERT_EQ(plan.rank_peaks.size(), 2u);

  HybridOptions no_dp = options;
  no_dp.data_parallel = 1;
  const auto base = planner.plan_hybrid(profiles, no_dp);
  // d=2 shrinks (ceil-halves) activations before packing, so the worst
  // rank can cost at most the d=1 worst rank plus two in-flight buckets.
  EXPECT_LE(plan.per_rank_peak,
            base.per_rank_peak + 2 * options.ddp_bucket_bytes);
}

TEST(HybridPlan, EnumerationCoversEveryDecompositionOfTheBudget) {
  const auto all = DistributedPlanner::enumerate_decompositions(8, 64);
  EXPECT_EQ(all.size(), 38u);  // sum over n<=8 of ordered (d,t,p) triples
  for (const Decomposition& decomposition : all) {
    EXPECT_GE(decomposition.data_parallel, 1);
    EXPECT_GE(decomposition.tensor_parallel, 1);
    EXPECT_GE(decomposition.pipeline_stages, 1);
    EXPECT_LE(decomposition.gpus(), 8);
  }
  // The pipeline cap prunes deep-pipeline candidates only.
  const auto capped = DistributedPlanner::enumerate_decompositions(8, 2);
  for (const Decomposition& decomposition : capped) {
    EXPECT_LE(decomposition.pipeline_stages, 2);
  }
  EXPECT_LT(capped.size(), all.size());
}

// ---------- plan search through the EstimationService ----------

core::PlanRequest small_plan_request() {
  core::PlanRequest request;
  request.job.model_name = "distilgpt2";
  request.job.batch_size = 5;
  request.job.optimizer = fw::OptimizerKind::kAdamW;
  request.job.seed = 7;
  request.devices = {gpu::rtx3060(), gpu::rtx4060(), gpu::a100_40gb()};
  request.max_gpus = 8;
  return request;
}

TEST(PlanSearch, EightGpuBudgetRunsExactlyOneProfile) {
  core::EstimationService service;
  const core::PlanReport report = service.plan(small_plan_request());

  EXPECT_GE(report.candidates_evaluated, 8u);  // the acceptance bar
  EXPECT_EQ(report.candidates.size(), report.candidates_evaluated);
  EXPECT_EQ(report.profiles_run, 1u);
  EXPECT_EQ(report.replays_run, report.devices.size());
  ASSERT_EQ(report.single_device_entries.size(), 3u);
  EXPECT_GT(report.single_device_peak, 0);
  for (const auto& entry : report.single_device_entries) {
    EXPECT_TRUE(entry.supported);
    EXPECT_GT(entry.estimated_peak, 0);
  }
}

TEST(PlanSearch, SerialAndThreadedSearchesAreByteIdentical) {
  core::ServiceOptions serial_options;
  serial_options.threads = 1;
  core::EstimationService serial(serial_options);
  core::ServiceOptions threaded_options;
  threaded_options.threads = 4;
  core::EstimationService threaded(threaded_options);

  const core::PlanRequest request = small_plan_request();
  const core::PlanReport a = serial.plan(request);
  const core::PlanReport b = threaded.plan(request);
  EXPECT_EQ(a.to_json(/*include_timings=*/false).dump(2),
            b.to_json(/*include_timings=*/false).dump(2));
  EXPECT_EQ(a.profiles_run, 1u);
  EXPECT_EQ(b.profiles_run, 1u);
}

TEST(PlanSearch, CandidatesAreRankedBestFirst) {
  core::EstimationService service;
  const core::PlanReport report = service.plan(small_plan_request());
  ASSERT_GT(report.candidates.size(), 1u);
  for (std::size_t i = 1; i < report.candidates.size(); ++i) {
    const auto& prev = report.candidates[i - 1];
    const auto& next = report.candidates[i];
    EXPECT_GE(prev.fits_count, next.fits_count);
    if (prev.fits_count == next.fits_count) {
      EXPECT_LE(prev.plan.gpus, next.plan.gpus);
    }
  }
  for (const auto& candidate : report.candidates) {
    ASSERT_EQ(candidate.device_fits.size(), report.devices.size());
    for (std::size_t d = 0; d < report.devices.size(); ++d) {
      EXPECT_EQ(candidate.device_fits[d],
                candidate.plan.per_rank_peak <=
                    report.devices[d].job_budget());
    }
    EXPECT_EQ(candidate.splitting_helps,
              candidate.plan.per_rank_peak < report.single_device_peak);
  }
}

TEST(PlanSearch, MaxCandidatesCapsTheReportNotTheSearch) {
  core::EstimationService service;
  core::PlanRequest request = small_plan_request();
  request.max_candidates = 3;
  const core::PlanReport report = service.plan(request);
  EXPECT_EQ(report.candidates.size(), 3u);
  EXPECT_GT(report.candidates_evaluated, 3u);
}

TEST(PlanSearch, RejectsUnknownNames) {
  core::EstimationService service;
  core::PlanRequest request = small_plan_request();
  request.job.model_name = "not-a-model";
  EXPECT_THROW(service.plan(request), std::invalid_argument);

  request = small_plan_request();
  request.allocator = "not-an-allocator";
  EXPECT_THROW(service.plan(request), std::invalid_argument);

  request = small_plan_request();
  request.devices.clear();
  EXPECT_THROW(service.plan(request), std::invalid_argument);
}

// ---------- phase-2 refinement: replay through the allocator tower ----------

TEST(PlanRefine, TopKCandidatesReplayPerRankWithOneProfile) {
  core::EstimationService service;
  core::PlanRequest request = small_plan_request();
  request.refine_top_k = 3;
  const core::PlanReport report = service.plan(request);

  EXPECT_EQ(report.profiles_run, 1u);
  EXPECT_EQ(report.replayed_candidates, 3u);
  EXPECT_GE(report.rank_replays_run, 3u);
  ASSERT_GE(report.candidates.size(), 4u);
  for (std::size_t i = 0; i < report.candidates.size(); ++i) {
    const core::PlanCandidate& candidate = report.candidates[i];
    if (i < 3) {
      EXPECT_TRUE(candidate.replayed) << "candidate " << i;
      // One replayed peak per deployment rank (d*t*p), stage-major: the
      // symmetric-rank collapse replays once per stage but still reports
      // every rank.
      ASSERT_EQ(candidate.replayed_rank_peaks.size(),
                static_cast<std::size_t>(candidate.plan.gpus));
      EXPECT_GT(candidate.replayed_per_rank_peak, 0);
      for (const std::int64_t peak : candidate.replayed_rank_peaks) {
        EXPECT_GT(peak, 0);
        EXPECT_LE(peak, candidate.replayed_per_rank_peak);
      }
      ASSERT_EQ(candidate.replayed_device_fits.size(),
                report.devices.size());
    } else {
      EXPECT_FALSE(candidate.replayed) << "candidate " << i;
      EXPECT_TRUE(candidate.replayed_rank_peaks.empty());
    }
  }
}

TEST(PlanRefine, SerialAndThreadedRefinesAreByteIdentical) {
  core::ServiceOptions serial_options;
  serial_options.threads = 1;
  core::EstimationService serial(serial_options);
  core::ServiceOptions threaded_options;
  threaded_options.threads = 4;
  core::EstimationService threaded(threaded_options);

  core::PlanRequest request = small_plan_request();
  request.refine_top_k = 4;
  const core::PlanReport a = serial.plan(request);
  const core::PlanReport b = threaded.plan(request);
  EXPECT_EQ(a.to_json(/*include_timings=*/false).dump(2),
            b.to_json(/*include_timings=*/false).dump(2));
  EXPECT_EQ(a.replayed_candidates, 4u);
  EXPECT_EQ(a.profiles_run, 1u);
  EXPECT_EQ(b.profiles_run, 1u);
}

TEST(PlanRefine, ReplayedVerdictCanDifferFromTheAnalyticOne) {
  // Pass 1: learn the analytic and replayed peaks of the best candidate.
  // Replay prices round-up, caching, and the blocks the component model
  // never sees (batch data, script-side survivors), so the two differ.
  core::EstimationService service;
  core::PlanRequest request = small_plan_request();
  request.refine_top_k = 1;
  const core::PlanReport first = service.plan(request);
  ASSERT_FALSE(first.candidates.empty());
  const core::PlanCandidate& best = first.candidates.front();
  ASSERT_TRUE(best.replayed);
  ASSERT_NE(best.replayed_per_rank_peak, best.plan.per_rank_peak);

  // Pass 2: a device whose budget lies strictly between the two peaks must
  // flip that candidate's verdict — the fidelity gain of the replay phase.
  gpu::DeviceModel straddle;
  straddle.name = "straddle";
  straddle.capacity =
      (best.replayed_per_rank_peak + best.plan.per_rank_peak) / 2;
  core::PlanRequest crafted = small_plan_request();
  crafted.devices = {straddle};
  crafted.refine_top_k = 1000;  // refine every candidate
  core::EstimationService fresh;
  const core::PlanReport second = fresh.plan(crafted);
  EXPECT_EQ(second.replayed_candidates, second.candidates.size());

  bool found = false;
  for (const core::PlanCandidate& candidate : second.candidates) {
    if (candidate.plan.data_parallel != best.plan.data_parallel ||
        candidate.plan.tensor_parallel != best.plan.tensor_parallel ||
        candidate.plan.pipeline_stages != best.plan.pipeline_stages) {
      continue;
    }
    found = true;
    // Deterministic: the same profile yields the same peaks either pass.
    EXPECT_EQ(candidate.plan.per_rank_peak, best.plan.per_rank_peak);
    EXPECT_EQ(candidate.replayed_per_rank_peak, best.replayed_per_rank_peak);
    ASSERT_EQ(candidate.device_fits.size(), 1u);
    EXPECT_NE(candidate.device_fits[0], candidate.replayed_device_fits[0]);
    EXPECT_TRUE(candidate.verdict_changed);
  }
  EXPECT_TRUE(found);
}

TEST(PlanRefine, OverlapWindowReplayRanksADifferentWinner) {
  // Overlap-window mode re-ranks the refined prefix by the window-replayed
  // peaks instead of leaving the analytic order in place. Pass 1 learns
  // both peaks of a refined candidate whose analytic estimate undershoots
  // its window replay; pass 2 crafts a straddle device (the whatif-2g
  // idiom) whose budget lies strictly between them, so the analytic
  // ranking admits that candidate while the window replay rejects it —
  // the two modes must crown different winners.
  core::PlanRequest request = small_plan_request();
  request.refine_top_k = 3;
  request.comm_overlap = true;
  core::EstimationService probe;
  const core::PlanReport learned = probe.plan(request);
  EXPECT_EQ(learned.profiles_run, 1u);
  EXPECT_GT(learned.rerank_changed, 0u);

  const core::PlanCandidate* straddled = nullptr;
  for (const core::PlanCandidate& candidate : learned.candidates) {
    if (!candidate.replayed) continue;
    ASSERT_TRUE(candidate.window_mode);
    // The event-level dominance invariant, echoed at report level.
    EXPECT_LE(candidate.replayed_per_rank_peak,
              candidate.resident_per_rank_peak);
    if (straddled == nullptr &&
        candidate.plan.per_rank_peak < candidate.replayed_per_rank_peak) {
      straddled = &candidate;
    }
  }
  ASSERT_NE(straddled, nullptr)
      << "no refined candidate with analytic < window-replayed peak";

  gpu::DeviceModel straddle;
  straddle.name = "straddle";
  straddle.capacity =
      (straddled->plan.per_rank_peak + straddled->replayed_per_rank_peak) / 2;
  core::PlanRequest crafted = small_plan_request();
  crafted.devices = {straddle};
  crafted.refine_top_k = 3;

  core::EstimationService resident_service;
  const core::PlanReport resident = resident_service.plan(crafted);
  crafted.comm_overlap = true;
  core::ServiceOptions serial_options;
  serial_options.threads = 1;
  core::EstimationService serial(serial_options);
  const core::PlanReport window = serial.plan(crafted);

  EXPECT_EQ(resident.profiles_run, 1u);
  EXPECT_EQ(window.profiles_run, 1u);
  EXPECT_GT(window.rerank_changed, 0u);
  ASSERT_FALSE(resident.candidates.empty());
  ASSERT_FALSE(window.candidates.empty());
  const core::PlanCandidate& resident_winner = resident.candidates.front();
  const core::PlanCandidate& window_winner = window.candidates.front();
  EXPECT_FALSE(
      resident_winner.plan.data_parallel == window_winner.plan.data_parallel &&
      resident_winner.plan.tensor_parallel ==
          window_winner.plan.tensor_parallel &&
      resident_winner.plan.pipeline_stages ==
          window_winner.plan.pipeline_stages)
      << "window replay must crown a different winner on the straddle device";

  // Resident-mode reports stay byte-free of every window-mode key.
  const std::string resident_json =
      resident.to_json(/*include_timings=*/false).dump(2);
  EXPECT_EQ(resident_json.find("comm_overlap"), std::string::npos);
  EXPECT_EQ(resident_json.find("rerank_changed"), std::string::npos);
  EXPECT_EQ(resident_json.find("window_vs_resident_pct"), std::string::npos);

  // Determinism: a thread-pool-fanned window search byte-matches serial.
  core::ServiceOptions threaded_options;
  threaded_options.threads = 4;
  core::EstimationService threaded(threaded_options);
  EXPECT_EQ(window.to_json(/*include_timings=*/false).dump(2),
            threaded.plan(crafted).to_json(/*include_timings=*/false).dump(2));
}

TEST(PlanRefine, RefineCountersAppearInTheReportJson) {
  core::EstimationService service;
  core::PlanRequest request = small_plan_request();
  request.refine_top_k = 2;
  request.max_candidates = 4;
  const util::Json json =
      service.plan(request).to_json(/*include_timings=*/false);
  EXPECT_EQ(json.at("stage_counters").at("replayed_candidates").as_int(), 2);
  EXPECT_GE(json.at("stage_counters").at("rank_replays").as_int(), 2);
  const util::Json& refined = json.at("candidates")[0];
  ASSERT_TRUE(refined.at("replayed").as_bool());
  const util::Json& replay = refined.at("replay");
  for (const char* key : {"rank_peaks_bytes", "per_rank_peak_bytes",
                          "analytic_vs_replayed_pct", "fits",
                          "verdict_changed"}) {
    EXPECT_TRUE(replay.contains(key)) << key;
  }
  EXPECT_FALSE(json.at("candidates")[3].at("replayed").as_bool());
}

TEST(PlanRefine, NewBackendsRefineTheStraddleFixtureDeterministically) {
  // The CI whatif-2g straddle fixture, replayed through each of the three
  // policy-variant backends: one profile total, threaded refinement
  // byte-identical to serial, and the scratch-reuse replay path (second
  // plan() on the same thread resets the pooled tower instead of
  // rebuilding it) byte-identical to the rebuild path (first plan() after
  // the backend switch, which misses the scratch key).
  std::ifstream in(std::string(XMEM_FIXTURE_DIR) + "/plan_request.json");
  ASSERT_TRUE(in) << "missing ci/fixtures/plan_request.json";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  core::PlanRequest request =
      core::PlanRequest::from_json(util::Json::parse(buffer.str()));
  ASSERT_GT(request.refine_top_k, 0);

  core::ServiceOptions serial_options;
  serial_options.threads = 1;
  core::ServiceOptions threaded_options;
  threaded_options.threads = 4;

  for (const char* backend :
       {"pytorch-expandable", "cub-binned", "stream-pool"}) {
    request.allocator = backend;
    core::EstimationService serial(serial_options);
    core::EstimationService threaded(threaded_options);
    const core::PlanReport report = serial.plan(request);
    EXPECT_EQ(report.profiles_run, 1u) << backend;
    EXPECT_EQ(report.replayed_candidates,
              static_cast<std::size_t>(request.refine_top_k))
        << backend;
    const std::string stable =
        report.to_json(/*include_timings=*/false).dump(2);
    EXPECT_EQ(stable,
              threaded.plan(request).to_json(/*include_timings=*/false).dump(2))
        << backend << ": threaded refine diverged from serial";
    // Scratch reuse vs rebuild: the first plan() built each worker's tower
    // from scratch, the repeat resets and reuses it (the stage counters
    // legitimately differ — the repeat hits the profile/result caches —
    // but every rank replay re-runs, and every candidate byte matches).
    const core::PlanReport repeat = serial.plan(request);
    EXPECT_EQ(repeat.rank_replays_run, report.rank_replays_run) << backend;
    EXPECT_EQ(report.to_json(/*include_timings=*/false).at("candidates").dump(2),
              repeat.to_json(/*include_timings=*/false).at("candidates").dump(2))
        << backend << ": scratch-reuse replay diverged from rebuild";
  }
}

TEST(PlanRefine, BackendSwitchesStillRunExactlyOneProfile) {
  // The one-profile-per-job guarantee holds across the whole registry: a
  // fleet service asked to refine the same job under every new backend
  // profiles once and replays everything else from the cached profile.
  core::EstimationService service;
  core::PlanRequest request = small_plan_request();
  request.refine_top_k = 2;
  std::size_t profiles = 0;
  for (const char* backend :
       {"pytorch-expandable", "cub-binned", "stream-pool"}) {
    request.allocator = backend;
    const core::PlanReport report = service.plan(request);
    profiles += report.profiles_run;
    EXPECT_EQ(report.replayed_candidates, 2u) << backend;
  }
  EXPECT_EQ(profiles, 1u);
}

TEST(PlanRefine, AllocatorConfigKnobsReachTheReplayTower) {
  // allocator_config must change what phase 2 replays — CTranslate2's
  // coarser cub bins price the same ranks differently than the defaults —
  // and an unknown knob must fail up front, naming itself.
  core::EstimationService service;
  core::PlanRequest request = small_plan_request();
  request.refine_top_k = 2;
  request.allocator = "cub-binned";
  const core::PlanReport defaults = service.plan(request);
  request.allocator_config["cub-binned"] = {{"bin_growth", 4},
                                            {"min_bin", 3},
                                            {"max_bin", 12},
                                            {"max_cached_bytes", 200000000}};
  const core::PlanReport tuned = service.plan(request);
  // New knobs, same job: the cached profile serves the tuned pass.
  EXPECT_EQ(defaults.profiles_run, 1u);
  EXPECT_EQ(tuned.profiles_run, 0u);
  ASSERT_TRUE(defaults.candidates.front().replayed);
  ASSERT_TRUE(tuned.candidates.front().replayed);
  EXPECT_NE(tuned.candidates.front().replayed_per_rank_peak,
            defaults.candidates.front().replayed_per_rank_peak)
      << "cub knobs did not reach the replay tower";
  // Analytic phase 1 is allocator-free: its peaks must not move.
  EXPECT_EQ(tuned.candidates.front().plan.per_rank_peak,
            defaults.candidates.front().plan.per_rank_peak);

  request.allocator_config["cub-binned"] = {{"bin_grow", 4}};
  try {
    service.plan(request);
    FAIL() << "unknown knob accepted";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("bin_grow"), std::string::npos)
        << error.what();
  }
}

TEST(PlanRefine, DedupOnAndOffAreByteIdenticalAcrossTheRegistry) {
  // The provably-invisible contract of the symmetric-rank collapse: with
  // dedup_replays off the refine pass honestly replays every one of a
  // stage's d*t symmetric siblings; with it on, one replay per distinct
  // sequence serves them all. On the CI whatif-2g straddle fixture the
  // reports must stay byte-identical for every registry backend — and the
  // counters too, because they describe the deduplicated replay schedule,
  // not the execution.
  std::ifstream in(std::string(XMEM_FIXTURE_DIR) + "/plan_request.json");
  ASSERT_TRUE(in) << "missing ci/fixtures/plan_request.json";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  core::PlanRequest request =
      core::PlanRequest::from_json(util::Json::parse(buffer.str()));

  core::ServiceOptions serial_options;
  serial_options.threads = 1;
  core::ServiceOptions threaded_options;
  threaded_options.threads = 4;

  for (const std::string& backend : alloc::backend_names()) {
    request.allocator = backend;
    request.dedup_replays = true;
    core::EstimationService deduped(serial_options);
    const std::string on =
        deduped.plan(request).to_json(/*include_timings=*/false).dump(2);
    request.dedup_replays = false;
    core::EstimationService naive(serial_options);
    EXPECT_EQ(on,
              naive.plan(request).to_json(/*include_timings=*/false).dump(2))
        << backend << ": dedup-on report diverged from dedup-off";
    core::EstimationService threaded(threaded_options);
    EXPECT_EQ(on, threaded.plan(request)
                      .to_json(/*include_timings=*/false)
                      .dump(2))
        << backend << ": threaded dedup-off diverged from serial dedup-on";
  }
}

TEST(PlanRefine, RefineAllReplaysEveryRankedDecomposition) {
  core::EstimationService service;
  core::PlanRequest request = small_plan_request();
  request.refine_all = true;
  const core::PlanReport report = service.plan(request);
  EXPECT_EQ(report.profiles_run, 1u);
  EXPECT_EQ(report.replayed_candidates, report.candidates.size());
  for (const core::PlanCandidate& candidate : report.candidates) {
    EXPECT_TRUE(candidate.replayed);
  }
  // A >= 8 GPU budget always ranks pure-DP and hybrid candidates whose
  // symmetric ranks collapse, and distinct candidates that share stage
  // sequences cross-candidate.
  EXPECT_GT(report.replays_deduped, 0u);
  EXPECT_GT(report.rank_replays_run, 0u);
  const util::Json json = report.to_json(/*include_timings=*/false);
  EXPECT_EQ(json.at("stage_counters").at("rank_replays").as_int(),
            static_cast<std::int64_t>(report.rank_replays_run));
  EXPECT_EQ(json.at("stage_counters").at("replays_deduped").as_int(),
            static_cast<std::int64_t>(report.replays_deduped));
  EXPECT_TRUE(json.at("stage_counters").contains("replay_cache_hits"));
}

// ---------- DDP bucket knob ----------

TEST(DataParallelPlan, BucketCountIsConfigurableWithTwoAsDefault) {
  DistributedPlanner planner;
  const auto profiles = uneven_sequence();
  core::DataParallelOptions options;
  options.ranks = 2;
  options.ddp_bucket_bytes = 1000;
  EXPECT_EQ(planner.plan_data_parallel(profiles, options).bucket_overhead_bytes,
            2000);  // the old hard-coded behavior stays the default
  options.ddp_bucket_count = 5;
  EXPECT_EQ(planner.plan_data_parallel(profiles, options).bucket_overhead_bytes,
            5000);
  options.ddp_bucket_count = 0;
  EXPECT_EQ(planner.plan_data_parallel(profiles, options).bucket_overhead_bytes,
            0);

  DistributedOptions distributed;
  distributed.ddp_bucket_bytes = 1 << 20;
  EXPECT_EQ(planner.data_parallel_overhead(distributed), 2 << 20);
  distributed.ddp_bucket_count = 3;
  EXPECT_EQ(planner.data_parallel_overhead(distributed), 3 << 20);

  HybridOptions hybrid;
  hybrid.data_parallel = 2;
  hybrid.micro_batches = 1;
  hybrid.ddp_bucket_bytes = 1000;
  hybrid.ddp_bucket_count = 4;
  core::DataParallelOptions dp;
  dp.ranks = 2;
  dp.ddp_bucket_bytes = 1000;
  dp.ddp_bucket_count = 4;
  EXPECT_EQ(planner.plan_hybrid(profiles, hybrid).per_rank_peak,
            planner.plan_data_parallel(profiles, dp).per_rank_peak);
}

// ---------- plan request / report JSON ----------

TEST(PlanRequestJson, RoundTripsThroughJson) {
  core::PlanRequest request = small_plan_request();
  request.schedule = PipelineSchedule::kInterleaved;
  request.virtual_stages = 2;
  request.zero = ZeroStage::kOptimizerGradient;
  request.max_candidates = 5;
  request.refine_top_k = 7;
  request.ddp_bucket_count = 3;
  const core::PlanRequest parsed =
      core::PlanRequest::from_json(request.to_json());
  EXPECT_EQ(parsed.job.model_name, request.job.model_name);
  EXPECT_EQ(parsed.job.batch_size, request.job.batch_size);
  ASSERT_EQ(parsed.devices.size(), 3u);
  EXPECT_EQ(parsed.max_gpus, 8);
  EXPECT_EQ(parsed.schedule, PipelineSchedule::kInterleaved);
  EXPECT_EQ(parsed.virtual_stages, 2);
  EXPECT_EQ(parsed.zero, ZeroStage::kOptimizerGradient);
  EXPECT_EQ(parsed.max_candidates, 5u);
  EXPECT_EQ(parsed.refine_top_k, 7);
  EXPECT_EQ(parsed.ddp_bucket_count, 3);
  EXPECT_EQ(parsed.allocator, request.allocator);
}

TEST(PlanRequestJson, RejectsMalformedDocuments) {
  const auto parse = [](const char* text) {
    return core::PlanRequest::from_json(util::Json::parse(text));
  };
  EXPECT_THROW(parse(R"({"devices": ["rtx3060"]})"), std::exception);
  EXPECT_THROW(
      parse(R"({"job": {"model": "distilgpt2", "batch": 5}})"),
      std::invalid_argument);  // missing devices
  EXPECT_THROW(parse(R"({"job": {"model": "distilgpt2", "batch": 5},
                         "devices": ["rtx3060"], "max_gpus": 0})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"job": {"model": "distilgpt2", "batch": 5},
                         "devices": ["rtx3060"], "zero_stage": 4})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"job": {"model": "distilgpt2", "batch": 5},
                         "devices": ["rtx3060"], "schedule": "gpipe"})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"job": {"model": "distilgpt2", "batch": 5},
                         "devices": ["rtx3060"],
                         "activation_replication_pct": 120})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"job": {"model": "distilgpt2", "batch": 5},
                         "devices": ["rtx3060"], "max_candidates": -3})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"job": {"model": "distilgpt2", "batch": 5},
                         "devices": ["rtx3060"], "profile_iterations": 0})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"job": {"model": "distilgpt2", "batch": 5},
                         "devices": ["rtx3060"], "refine_top_k": -1})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"job": {"model": "distilgpt2", "batch": 5},
                         "devices": ["rtx3060"], "ddp_bucket_count": -1})"),
               std::invalid_argument);
  // The rejection must name the offending field (actionable message).
  try {
    parse(R"({"job": {"model": "distilgpt2", "batch": 5},
              "devices": ["rtx3060"], "refine_top_k": -1})");
    FAIL() << "negative refine_top_k accepted";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("refine_top_k"),
              std::string::npos);
  }
}

TEST(PlanRequestJson, RefineAllAndDedupRoundTrip) {
  core::PlanRequest request = small_plan_request();
  request.refine_all = true;
  request.dedup_replays = false;
  const util::Json json = request.to_json();
  EXPECT_EQ(json.at("refine_top_k").as_string(), "all");
  EXPECT_FALSE(json.at("dedup_replays").as_bool());
  const core::PlanRequest parsed = core::PlanRequest::from_json(json);
  EXPECT_TRUE(parsed.refine_all);
  EXPECT_FALSE(parsed.dedup_replays);

  // Defaults round-trip too: top-K mode emits the integer and leaves the
  // (true) dedup flag implicit.
  const util::Json plain = small_plan_request().to_json();
  EXPECT_TRUE(plain.at("refine_top_k").is_int());
  EXPECT_FALSE(plain.contains("dedup_replays"));
  EXPECT_TRUE(core::PlanRequest::from_json(plain).dedup_replays);

  // Only the string "all" is a valid non-integer value, and the rejection
  // must say so.
  try {
    core::PlanRequest::from_json(
        util::Json::parse(R"({"job": {"model": "distilgpt2", "batch": 5},
                              "devices": ["rtx3060"],
                              "refine_top_k": "everything"})"));
    FAIL() << "bogus refine_top_k string accepted";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("refine_top_k"), std::string::npos) << what;
    EXPECT_NE(what.find("\"all\""), std::string::npos) << what;
  }
  EXPECT_THROW(core::PlanRequest::from_json(util::Json::parse(
                   R"({"job": {"model": "distilgpt2", "batch": 5},
                       "devices": ["rtx3060"], "dedup_replays": 1})")),
               std::invalid_argument);
}

TEST(PlanRequestJson, BadRefineFixtureFailsNamingTheField) {
  std::ifstream in(std::string(XMEM_FIXTURE_DIR) + "/bad_refine.json");
  ASSERT_TRUE(in) << "missing ci/fixtures/bad_refine.json";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    core::PlanRequest::from_json(util::Json::parse(buffer.str()));
    FAIL() << "bad_refine.json parsed successfully";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("refine_top_k"),
              std::string::npos);
  }
}

TEST(PlanReportJson, SchemaFieldsPresentAndTimingFree) {
  core::EstimationService service;
  core::PlanRequest request = small_plan_request();
  request.max_candidates = 2;
  const core::PlanReport report = service.plan(request);

  const util::Json json = report.to_json();
  EXPECT_EQ(json.at("schema_version").as_int(), 1);
  EXPECT_EQ(json.at("job").at("model").as_string(), "distilgpt2");
  EXPECT_TRUE(json.at("single_device").contains("analytic_peak_bytes"));
  EXPECT_EQ(json.at("single_device").at("entries").size(), 3u);
  ASSERT_EQ(json.at("candidates").size(), 2u);
  const util::Json& candidate = json.at("candidates")[0];
  for (const char* key :
       {"data_parallel", "tensor_parallel", "pipeline_stages", "gpus",
        "per_rank_peak_bytes", "savings_pct", "splitting_helps",
        "rank_peaks_bytes", "stages", "fits"}) {
    EXPECT_TRUE(candidate.contains(key)) << key;
  }
  EXPECT_EQ(candidate.at("fits").size(), 3u);
  EXPECT_EQ(json.at("stage_counters").at("profiles_run").as_int(), 1);
  EXPECT_TRUE(json.contains("wall_seconds"));

  const util::Json stable = report.to_json(/*include_timings=*/false);
  EXPECT_FALSE(stable.contains("wall_seconds"));
  EXPECT_FALSE(
      stable.at("single_device").at("entries")[0].contains("timings"));
}

TEST(PlanRequestJson, CiFixtureParses) {
  // The CI plan-smoke fixture must stay parseable with >= 8 candidates'
  // worth of GPU budget — the acceptance sweep `xmem plan` runs in CI.
  std::ifstream in(std::string(XMEM_FIXTURE_DIR) + "/plan_request.json");
  ASSERT_TRUE(in) << "missing ci/fixtures/plan_request.json";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const core::PlanRequest request =
      core::PlanRequest::from_json(util::Json::parse(buffer.str()));
  EXPECT_GE(request.max_gpus, 8);
  EXPECT_FALSE(request.devices.empty());
  // The CI smoke must exercise phase-2 refinement (nonzero
  // replayed_candidates is grepped from the report).
  EXPECT_GT(request.refine_top_k, 0);
}

}  // namespace
}  // namespace xmem
