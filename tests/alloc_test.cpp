// Tests for the two-level allocator tower: SimulatedCudaDriver (device
// level) and CachingAllocatorSim (the CUDACachingAllocator port).
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "alloc/caching_allocator.h"
#include "alloc/cuda_driver_sim.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace xmem::alloc {
namespace {

using util::kGiB;
using util::kMiB;

// ---------- driver ----------

TEST(Driver, RoundsReservationsToPages) {
  SimulatedCudaDriver driver(kGiB);
  ASSERT_TRUE(driver.cuda_malloc(1).has_value());
  EXPECT_EQ(driver.stats().used_bytes, SimulatedCudaDriver::kPageSize);
  EXPECT_EQ(driver.stats().requested_bytes, 1);
}

TEST(Driver, OomWhenCapacityExceeded) {
  SimulatedCudaDriver driver(4 * kMiB);
  ASSERT_TRUE(driver.cuda_malloc(2 * kMiB).has_value());
  ASSERT_TRUE(driver.cuda_malloc(2 * kMiB).has_value());
  EXPECT_FALSE(driver.cuda_malloc(1).has_value());
  EXPECT_EQ(driver.stats().num_oom_failures, 1);
}

TEST(Driver, FreeMakesRoomAgain) {
  SimulatedCudaDriver driver(4 * kMiB);
  const auto a = driver.cuda_malloc(3 * kMiB);
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE(driver.cuda_malloc(2 * kMiB).has_value());
  driver.cuda_free(*a);
  EXPECT_TRUE(driver.cuda_malloc(2 * kMiB).has_value());
}

TEST(Driver, PeakTracksHighWaterMark) {
  SimulatedCudaDriver driver(kGiB);
  const auto a = driver.cuda_malloc(10 * kMiB);
  driver.cuda_free(*a);
  driver.cuda_malloc(2 * kMiB);
  EXPECT_EQ(driver.stats().peak_used_bytes, 10 * kMiB);
}

TEST(Driver, DistinctDisjointAddresses) {
  SimulatedCudaDriver driver(kGiB);
  const auto a = driver.cuda_malloc(5 * kMiB);
  const auto b = driver.cuda_malloc(5 * kMiB);
  ASSERT_TRUE(a && b);
  EXPECT_GE(*b, *a + static_cast<std::uint64_t>(5 * kMiB));
}

TEST(Driver, InvalidArguments) {
  EXPECT_THROW(SimulatedCudaDriver(0), std::invalid_argument);
  SimulatedCudaDriver driver(kGiB);
  EXPECT_THROW(driver.cuda_malloc(0), std::invalid_argument);
  EXPECT_THROW(driver.cuda_free(0xDEAD), std::logic_error);
}

// ---------- caching allocator: size policies ----------

TEST(CachingAllocator, RoundSizeMatchesPyTorch) {
  EXPECT_EQ(CachingAllocatorSim::round_size(1), 512);
  EXPECT_EQ(CachingAllocatorSim::round_size(512), 512);
  EXPECT_EQ(CachingAllocatorSim::round_size(513), 1024);
  EXPECT_EQ(CachingAllocatorSim::round_size(kMiB), kMiB);
}

TEST(CachingAllocator, AllocationSizeBuckets) {
  // <= 1 MiB -> 2 MiB small buffer; < 10 MiB -> 20 MiB large buffer;
  // >= 10 MiB -> rounded up to 2 MiB multiple.
  EXPECT_EQ(CachingAllocatorSim::allocation_size(512), 2 * kMiB);
  EXPECT_EQ(CachingAllocatorSim::allocation_size(kMiB), 2 * kMiB);
  EXPECT_EQ(CachingAllocatorSim::allocation_size(kMiB + 512), 20 * kMiB);
  EXPECT_EQ(CachingAllocatorSim::allocation_size(9 * kMiB), 20 * kMiB);
  EXPECT_EQ(CachingAllocatorSim::allocation_size(10 * kMiB), 10 * kMiB);
  EXPECT_EQ(CachingAllocatorSim::allocation_size(11 * kMiB), 12 * kMiB);
}

// ---------- caching allocator: behaviour ----------

TEST(CachingAllocator, SmallAllocationReservesSmallBuffer) {
  SimulatedCudaDriver driver(kGiB);
  CachingAllocatorSim allocator(driver);
  const AllocOutcome outcome = allocator.allocate(100);
  EXPECT_FALSE(outcome.oom);
  EXPECT_EQ(outcome.rounded_size, 512);
  EXPECT_EQ(allocator.stats().reserved_bytes, 2 * kMiB);
  EXPECT_EQ(allocator.stats().allocated_bytes, 512);
}

TEST(CachingAllocator, FreedBlockIsReusedNotReturned) {
  SimulatedCudaDriver driver(kGiB);
  CachingAllocatorSim allocator(driver);
  const AllocOutcome first = allocator.allocate(5 * kMiB);
  const std::uint64_t addr = allocator.block_addr(first.id);
  allocator.free(first.id);
  EXPECT_EQ(allocator.stats().reserved_bytes, 20 * kMiB);  // cached
  const AllocOutcome second = allocator.allocate(5 * kMiB);
  EXPECT_EQ(allocator.block_addr(second.id), addr);  // same block reused
  EXPECT_EQ(driver.stats().num_mallocs, 1);          // no new segment
}

TEST(CachingAllocator, SmallAndLargePoolsAreSeparate) {
  SimulatedCudaDriver driver(kGiB);
  CachingAllocatorSim allocator(driver);
  const AllocOutcome small = allocator.allocate(1000);
  allocator.free(small.id);
  // A cached 2 MiB small segment must not serve a large-pool request.
  allocator.allocate(1536 * 1024);
  EXPECT_EQ(allocator.stats().num_segments_allocated, 2);
}

TEST(CachingAllocator, SplitsLargeBlocks) {
  SimulatedCudaDriver driver(kGiB);
  CachingAllocatorSim allocator(driver);
  // 20 MiB segment serves a 2 MiB request; the remainder is usable by the
  // next large request without a new segment.
  allocator.allocate(2 * kMiB);
  EXPECT_EQ(allocator.stats().num_splits, 1);
  allocator.allocate(2 * kMiB);
  EXPECT_EQ(allocator.stats().num_segments_allocated, 1);
  EXPECT_EQ(allocator.stats().reserved_bytes, 20 * kMiB);
}

TEST(CachingAllocator, NoSplitWhenRemainderTooSmallInLargePool) {
  SimulatedCudaDriver driver(kGiB);
  CachingAllocatorSim allocator(driver);
  // 19.5 MiB from a 20 MiB buffer leaves 0.5 MiB <= kSmallSize: no split —
  // the whole segment is handed out (internal fragmentation).
  const AllocOutcome outcome = allocator.allocate(19 * kMiB + 512 * 1024);
  EXPECT_EQ(allocator.stats().num_splits, 0);
  EXPECT_EQ(allocator.block_size(outcome.id), 20 * kMiB);
}

TEST(CachingAllocator, CoalescesAdjacentFreeBlocks) {
  SimulatedCudaDriver driver(kGiB);
  CachingAllocatorSim allocator(driver);
  const AllocOutcome a = allocator.allocate(4 * kMiB);
  const AllocOutcome b = allocator.allocate(4 * kMiB);
  const AllocOutcome c = allocator.allocate(4 * kMiB);
  ASSERT_EQ(allocator.stats().num_segments_allocated, 1);  // one 20 MiB
  allocator.free(a.id);
  allocator.free(c.id);
  allocator.free(b.id);  // middle free merges with both neighbours
  EXPECT_GE(allocator.stats().num_coalesces, 2);
  // After full coalescing the segment must serve a 20 MiB-sized request.
  const AllocOutcome big = allocator.allocate(18 * kMiB);
  EXPECT_FALSE(big.oom);
  EXPECT_EQ(allocator.stats().num_segments_allocated, 1);
}

TEST(CachingAllocator, EmptyCacheReleasesOnlyWholeFreeSegments) {
  SimulatedCudaDriver driver(kGiB);
  CachingAllocatorSim allocator(driver);
  const AllocOutcome a = allocator.allocate(12 * kMiB);  // own segment
  const AllocOutcome b = allocator.allocate(2 * kMiB);   // in a 20 MiB segment
  allocator.free(a.id);
  allocator.empty_cache();
  EXPECT_EQ(allocator.stats().num_segments_released, 1);
  EXPECT_EQ(allocator.stats().reserved_bytes, 20 * kMiB);
  allocator.free(b.id);
  allocator.empty_cache();
  EXPECT_EQ(allocator.stats().reserved_bytes, 0);
  EXPECT_EQ(driver.stats().used_bytes, 0);
}

TEST(CachingAllocator, ReclaimsCacheBeforeOom) {
  SimulatedCudaDriver driver(22 * kMiB);
  CachingAllocatorSim allocator(driver);
  // Cache a 2 MiB small-pool segment (small segments cannot serve large
  // requests, so the next allocation must go to the driver).
  const AllocOutcome a = allocator.allocate(1024);
  allocator.free(a.id);
  // 21 MiB large request -> 22 MiB segment; the driver only has 20 MiB
  // free, so the allocator must release the cached small segment and retry
  // — the reclaim-then-retry chain DNNMem's model omits.
  const AllocOutcome b = allocator.allocate(21 * kMiB);
  EXPECT_FALSE(b.oom);
  EXPECT_EQ(allocator.stats().num_cache_reclaims, 1);
  EXPECT_EQ(allocator.stats().num_segments_released, 1);
}

TEST(CachingAllocator, OomOnlyWhenBothLevelsFail) {
  SimulatedCudaDriver driver(22 * kMiB);
  CachingAllocatorSim allocator(driver);
  const AllocOutcome a = allocator.allocate(18 * kMiB);
  EXPECT_FALSE(a.oom);
  const AllocOutcome b = allocator.allocate(18 * kMiB);  // no cache to free
  EXPECT_TRUE(b.oom);
  EXPECT_EQ(b.id, kInvalidBlock);
  // The failed allocation changed nothing.
  EXPECT_EQ(allocator.stats().allocated_bytes, allocator.block_size(a.id));
}

TEST(CachingAllocator, StatsPeaksAreMonotoneUpperBounds) {
  SimulatedCudaDriver driver(kGiB);
  CachingAllocatorSim allocator(driver);
  std::vector<BlockId> ids;
  for (int i = 0; i < 10; ++i) ids.push_back(allocator.allocate(3 * kMiB).id);
  const std::int64_t peak = allocator.stats().peak_allocated_bytes;
  for (BlockId id : ids) allocator.free(id);
  EXPECT_EQ(allocator.stats().allocated_bytes, 0);
  EXPECT_EQ(allocator.stats().peak_allocated_bytes, peak);
  EXPECT_GE(allocator.stats().peak_reserved_bytes,
            allocator.stats().peak_allocated_bytes);
}

TEST(CachingAllocator, SnapshotCoversAllReservedBytes) {
  SimulatedCudaDriver driver(kGiB);
  CachingAllocatorSim allocator(driver);
  allocator.allocate(100);
  const AllocOutcome b = allocator.allocate(5 * kMiB);
  allocator.allocate(15 * kMiB);
  allocator.free(b.id);
  std::int64_t total = 0;
  for (const SegmentInfo& segment : allocator.snapshot()) {
    std::int64_t in_segment = 0;
    for (const BlockInfo& block : segment.blocks) in_segment += block.size;
    EXPECT_EQ(in_segment, segment.size);
    total += segment.size;
  }
  EXPECT_EQ(total, allocator.stats().reserved_bytes);
}

TEST(CachingAllocator, FreeUnknownIdThrows) {
  SimulatedCudaDriver driver(kGiB);
  CachingAllocatorSim allocator(driver);
  EXPECT_THROW(allocator.free(999), std::logic_error);
  EXPECT_THROW(allocator.allocate(0), std::invalid_argument);
}

// ---------- property sweep: random workloads keep all invariants ----------

struct SweepParams {
  std::uint64_t seed;
  std::int64_t max_alloc;
};

class AllocatorPropertySweep : public ::testing::TestWithParam<SweepParams> {};

TEST_P(AllocatorPropertySweep, InvariantsHoldUnderRandomWorkload) {
  util::Rng rng(GetParam().seed);
  SimulatedCudaDriver driver(2 * kGiB);
  CachingAllocatorSim allocator(driver);
  std::vector<BlockId> live;
  std::int64_t live_rounded = 0;

  for (int step = 0; step < 2000; ++step) {
    const bool do_alloc = live.empty() || rng.next_bool(0.55);
    if (do_alloc) {
      const std::int64_t size =
          1 + static_cast<std::int64_t>(
                  rng.next_below(static_cast<std::uint64_t>(GetParam().max_alloc)));
      const AllocOutcome outcome = allocator.allocate(size);
      if (outcome.oom) continue;  // capacity pressure is fine
      live.push_back(outcome.id);
      live_rounded += outcome.rounded_size;
      EXPECT_EQ(outcome.rounded_size, allocator.block_size(outcome.id));
      EXPECT_GE(outcome.rounded_size, size);
    } else {
      const std::size_t pick = rng.next_below(live.size());
      live_rounded -= allocator.block_size(live[pick]);
      allocator.free(live[pick]);
      live[pick] = live.back();
      live.pop_back();
    }
    // Invariant: tensor accounting matches our shadow accounting. (The
    // allocator may hand out blocks bigger than the rounded request when
    // splitting is not worthwhile, so use >=.)
    EXPECT_GE(allocator.stats().allocated_bytes, live_rounded);
    // Invariant: reserved >= allocated, and the driver agrees on pages.
    EXPECT_GE(allocator.stats().reserved_bytes,
              allocator.stats().allocated_bytes);
    EXPECT_GE(driver.stats().used_bytes, allocator.stats().reserved_bytes);
    EXPECT_EQ(allocator.num_live_blocks(), live.size());
  }

  // Snapshot invariants: blocks tile each segment with no overlap.
  for (const SegmentInfo& segment : allocator.snapshot()) {
    std::uint64_t cursor = segment.addr;
    bool prev_free = false;
    for (const BlockInfo& block : segment.blocks) {
      EXPECT_EQ(block.addr, cursor);
      cursor += static_cast<std::uint64_t>(block.size);
      // Coalescing invariant: no two adjacent free blocks.
      if (!block.allocated) {
        EXPECT_FALSE(prev_free) << "adjacent free blocks not coalesced";
      }
      prev_free = !block.allocated;
    }
  }

  // Drain everything; all segments must be releasable and the driver clean.
  for (BlockId id : live) allocator.free(id);
  allocator.empty_cache();
  EXPECT_EQ(allocator.stats().reserved_bytes, 0);
  EXPECT_EQ(driver.stats().used_bytes, 0);
  EXPECT_EQ(allocator.stats().num_allocs, allocator.stats().num_frees);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, AllocatorPropertySweep,
    ::testing::Values(SweepParams{1, 4096},           // small pool only
                      SweepParams{2, 4 * kMiB},       // mixed pools
                      SweepParams{3, 64 * kMiB},      // large blocks
                      SweepParams{4, 512},            // tiny blocks
                      SweepParams{5, 16 * kMiB},      // capacity pressure
                      SweepParams{6, 2 * kMiB}));

TEST(CachingAllocator, DeterministicAcrossRuns) {
  auto run = [] {
    util::Rng rng(99);
    SimulatedCudaDriver driver(kGiB);
    CachingAllocatorSim allocator(driver);
    std::vector<BlockId> live;
    for (int i = 0; i < 500; ++i) {
      if (live.empty() || rng.next_bool(0.6)) {
        const AllocOutcome o =
            allocator.allocate(1 + static_cast<std::int64_t>(rng.next_below(8 * kMiB)));
        if (!o.oom) live.push_back(o.id);
      } else {
        const std::size_t pick = rng.next_below(live.size());
        allocator.free(live[pick]);
        live[pick] = live.back();
        live.pop_back();
      }
    }
    return allocator.stats().peak_reserved_bytes;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace xmem::alloc
