// Concurrency stress for the `xmem serve` daemon (server/server.h).
//
// The server's contract is that concurrency is INVISIBLE in the replies:
// admission, coalescing, and the reply cache may collapse duplicate work,
// but every client must receive exactly the bytes a cold serial execution
// of its request would have produced. The suite pins that contract:
//
//   * a serial pass on a fresh server records the reference reply for every
//     distinct request (sweeps, plans, and one malformed frame);
//   * 8 client threads then fire a deterministic mixed schedule of the same
//     traffic at a second fresh server; every reply must be byte-identical
//     to the serial reference;
//   * the stats endpoint must prove the profile-once economy survived the
//     stampede: profiles_run == distinct jobs, executed == distinct request
//     keys, and every duplicate shows up in coalesced_total;
//   * graceful shutdown drains in-flight work — clients blocked on a slow
//     request still get real replies;
//   * per-tenant hard quotas surface end-to-end as actionable
//     `quota_exceeded` error frames naming the tenant and the limit.
//
// Requests use DISJOINT jobs (distilgpt2 batches 1..6) so per-report stage
// counters are order-independent: each report runs exactly one profile no
// matter which request executed first.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/estimation_service.h"
#include "gpu/device_model.h"
#include "server/client.h"
#include "server/server.h"
#include "util/json.h"

namespace xmem {
namespace {

std::string socket_path_for(const std::string& name) {
  return "/tmp/xmem_" + name + "_" + std::to_string(::getpid()) + ".sock";
}

core::TrainJob job_for_batch(int batch) {
  core::TrainJob job;
  job.model_name = "distilgpt2";
  job.batch_size = batch;
  job.optimizer = fw::OptimizerKind::kAdamW;
  job.seed = 7;
  return job;
}

/// Envelope payload for a sweep of one job against one device. No "id"
/// field: replies then depend only on the request, so byte-identical
/// comparison across passes is direct.
std::string sweep_payload(int batch) {
  core::EstimateRequest request;
  request.job = job_for_batch(batch);
  request.devices = {gpu::device_by_name("rtx3060")};
  util::Json envelope = util::Json::object();
  envelope["type"] = util::Json("sweep");
  envelope["request"] = request.to_json();
  return envelope.dump();
}

/// Envelope payload for a small analytic-only plan search.
std::string plan_payload(int batch) {
  core::PlanRequest request;
  request.job = job_for_batch(batch);
  request.devices = {gpu::device_by_name("rtx3060")};
  request.max_gpus = 2;
  request.refine_top_k = 0;
  util::Json envelope = util::Json::object();
  envelope["type"] = util::Json("plan");
  envelope["request"] = request.to_json();
  return envelope.dump();
}

constexpr const char* kMalformedPayload = "{\"type\": \"sweep\", oops";

/// Send one already-serialized payload and return the reply payload.
std::string roundtrip(server::Client& client, const std::string& payload) {
  EXPECT_TRUE(client.send_frame(payload));
  std::string reply;
  const server::FrameStatus status = client.read_reply(reply);
  EXPECT_EQ(status, server::FrameStatus::kOk)
      << "no reply to: " << payload.substr(0, 80);
  return reply;
}

class ServerStressTest : public ::testing::Test {
 protected:
  /// The 6 distinct valid requests (disjoint jobs) + 1 malformed frame.
  std::vector<std::string> distinct_payloads() {
    std::vector<std::string> payloads;
    for (int batch = 1; batch <= 4; ++batch) {
      payloads.push_back(sweep_payload(batch));
    }
    for (int batch = 5; batch <= 6; ++batch) {
      payloads.push_back(plan_payload(batch));
    }
    return payloads;
  }
};

TEST_F(ServerStressTest, MixedConcurrentTrafficIsByteIdenticalToSerial) {
  const std::vector<std::string> valid = distinct_payloads();

  // --- serial reference pass ----------------------------------------------
  std::map<std::string, std::string> expected;
  {
    server::ServerConfig config;
    config.socket_path = socket_path_for("serial");
    config.workers = 2;
    server::Server serial_server(config);
    serial_server.start();
    server::Client client(config.socket_path, /*timeout_ms=*/120000);
    for (const std::string& payload : valid) {
      expected[payload] = roundtrip(client, payload);
    }
    expected[kMalformedPayload] = roundtrip(client, kMalformedPayload);
    serial_server.stop();
  }
  ASSERT_EQ(expected.size(), valid.size() + 1);
  for (const std::string& payload : valid) {
    ASSERT_NE(expected[payload].find("\"ok\":true"), std::string::npos);
  }
  ASSERT_NE(expected[kMalformedPayload].find("parse_error"),
            std::string::npos);

  // --- concurrent pass -----------------------------------------------------
  server::ServerConfig config;
  config.socket_path = socket_path_for("stress");
  config.workers = 4;
  config.max_queue = 256;
  server::Server stress_server(config);
  stress_server.start();

  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 14;
  std::atomic<int> mismatches{0};
  std::atomic<int> valid_sent{0};
  std::atomic<int> malformed_sent{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      server::Client client(config.socket_path, /*timeout_ms=*/120000);
      for (int i = 0; i < kRequestsPerThread; ++i) {
        // Deterministic schedule: every thread mixes sweeps, plans, and
        // malformed frames, with duplicates across threads by design.
        const std::size_t pick =
            static_cast<std::size_t>(t * 5 + i) % (valid.size() + 1);
        const std::string& payload =
            pick < valid.size() ? valid[pick] : kMalformedPayload;
        if (pick < valid.size()) {
          valid_sent.fetch_add(1);
        } else {
          malformed_sent.fetch_add(1);
        }
        const std::string reply = roundtrip(client, payload);
        if (reply != expected[payload]) {
          mismatches.fetch_add(1);
          ADD_FAILURE() << "reply diverged from serial execution for: "
                        << payload.substr(0, 80) << "\n got: " << reply;
        }
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  EXPECT_EQ(mismatches.load(), 0);

  // --- stats: the profile-once economy survived the stampede ---------------
  const server::ServerStats stats = stress_server.stats();
  EXPECT_EQ(stats.profiles_run, 6u);  // one CPU profile per distinct job
  EXPECT_EQ(stats.executed, 6u);      // one execution per distinct key
  EXPECT_EQ(stats.data_requests, static_cast<std::uint64_t>(valid_sent));
  // Every duplicate of an already-asked question was coalesced (in-flight
  // collapse or reply-cache hit — the split depends on timing; the sum
  // does not).
  EXPECT_EQ(stats.coalesced_total(),
            static_cast<std::uint64_t>(valid_sent) - 6u);
  EXPECT_EQ(stats.protocol_errors,
            static_cast<std::uint64_t>(malformed_sent));
  EXPECT_EQ(stats.busy_rejections, 0u);
  EXPECT_EQ(stats.request_errors, 0u);

  stress_server.stop();
  EXPECT_FALSE(stress_server.started());
}

TEST_F(ServerStressTest, GracefulShutdownDrainsInFlightClients) {
  server::ServerConfig config;
  config.socket_path = socket_path_for("drain");
  config.workers = 2;
  config.handler_delay_ms = 300;  // keep requests in flight while we stop
  server::Server daemon(config);
  daemon.start();

  std::atomic<int> ok_replies{0};
  std::vector<std::thread> clients;
  for (int batch = 1; batch <= 2; ++batch) {
    clients.emplace_back([&, batch] {
      server::Client client(config.socket_path, /*timeout_ms=*/120000);
      const std::string reply = roundtrip(client, sweep_payload(batch));
      if (reply.find("\"ok\":true") != std::string::npos) {
        ok_replies.fetch_add(1);
      }
    });
  }

  // Wait until both requests are admitted and executing, then stop the
  // server underneath them. stop() must drain: both clients still get
  // real reports, not resets or shutting_down errors.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (daemon.stats().executing + daemon.stats().queue_depth < 2) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "requests never reached the work queue";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  daemon.stop();

  for (std::thread& thread : clients) thread.join();
  EXPECT_EQ(ok_replies.load(), 2);
  EXPECT_EQ(daemon.stats().executed, 2u);
}

TEST_F(ServerStressTest, HardTenantQuotaSurfacesAsActionableErrorFrame) {
  server::ServerConfig config;
  config.socket_path = socket_path_for("quota");
  config.workers = 2;
  config.session_quota.max_resident_per_tenant = 1;
  config.session_quota.reject_over_quota = true;
  server::Server daemon(config);
  daemon.start();

  server::Client client(config.socket_path, /*timeout_ms=*/120000);
  core::EstimateRequest request;
  request.job = job_for_batch(1);
  request.devices = {gpu::device_by_name("rtx3060")};

  // First job fits alice's quota of one resident profile.
  EXPECT_NO_THROW(client.sweep(request.to_json(), "alice"));

  // Her second distinct job must be rejected with the tenant and the limit
  // in the message — the client can act on it.
  request.job = job_for_batch(2);
  try {
    client.sweep(request.to_json(), "alice");
    FAIL() << "expected quota_exceeded";
  } catch (const server::RequestError& error) {
    EXPECT_EQ(error.code(), server::kErrQuota);
    const std::string message = error.what();
    EXPECT_NE(message.find("alice"), std::string::npos) << message;
    EXPECT_NE(message.find('1'), std::string::npos) << message;
  }

  // Untenanted and other-tenant traffic is unaffected.
  EXPECT_NO_THROW(client.sweep(request.to_json()));
  EXPECT_NO_THROW(client.sweep(request.to_json(), "bob"));

  const server::ServerStats stats = daemon.stats();
  EXPECT_EQ(stats.quota_rejections, 1u);
  EXPECT_EQ(stats.tenants.at("alice"), 1u);

  daemon.stop();
}

}  // namespace
}  // namespace xmem
