// util::ThreadPool tests: the fan-out substrate under the estimation
// service's sweeps and the planner's hybrid search, previously exercised
// only indirectly through service_test.
//
//   * submitted tasks run and their futures yield results;
//   * a task's exception propagates through its future without harming
//     the pool or other tasks;
//   * the destructor drains the queue — every submitted task runs even
//     when the pool is torn down immediately after submission;
//   * many concurrent writers fill disjoint slots exactly once (the
//     invariant the sweep's slot-per-entry fan-out relies on).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace xmem {
namespace {

TEST(ThreadPool, RunsTasksAndReturnsResults) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, ClampsToAtLeastOneWorker) {
  util::ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, DefaultThreadsStayInTheReplayFanOutRange) {
  const std::size_t threads = util::ThreadPool::default_threads();
  EXPECT_GE(threads, 1u);
  EXPECT_LE(threads, 8u);
}

TEST(ThreadPool, TaskExceptionPropagatesThroughItsFuture) {
  util::ThreadPool pool(2);
  std::future<int> failing =
      pool.submit([]() -> int { throw std::runtime_error("boom"); });
  std::future<int> healthy = pool.submit([] { return 41; });

  EXPECT_THROW(
      {
        try {
          failing.get();
        } catch (const std::runtime_error& error) {
          EXPECT_STREQ(error.what(), "boom");
          throw;
        }
      },
      std::runtime_error);
  // The worker that unwound keeps serving: the pool is not poisoned.
  EXPECT_EQ(healthy.get(), 41);
  EXPECT_EQ(pool.submit([] { return 42; }).get(), 42);
}

TEST(ThreadPool, DestructorDrainsTheQueue) {
  std::atomic<int> executed{0};
  {
    util::ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&executed] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        executed.fetch_add(1);
      });
    }
    // Destruction must block until every queued task has run, not drop the
    // backlog on the floor.
  }
  EXPECT_EQ(executed.load(), 64);
}

TEST(ThreadPool, ManyWritersFillDisjointSlotsExactlyOnce) {
  constexpr std::size_t kSlots = 512;
  util::ThreadPool pool(8);
  std::vector<int> slots(kSlots, -1);
  std::vector<std::atomic<int>> writes(kSlots);
  for (auto& w : writes) w.store(0);

  std::vector<std::future<void>> futures;
  futures.reserve(kSlots);
  for (std::size_t i = 0; i < kSlots; ++i) {
    futures.push_back(pool.submit([&slots, &writes, i] {
      slots[i] = static_cast<int>(i);
      writes[i].fetch_add(1);
    }));
  }
  for (auto& future : futures) future.get();

  for (std::size_t i = 0; i < kSlots; ++i) {
    EXPECT_EQ(slots[i], static_cast<int>(i));
    EXPECT_EQ(writes[i].load(), 1);
  }
}

TEST(ThreadPool, StressSubmissionFromManyThreads) {
  // N producer threads race submissions into one pool; every task must run
  // exactly once (sum of 1..total).
  util::ThreadPool pool(4);
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 100;
  std::atomic<std::int64_t> sum{0};

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &sum, p] {
      std::vector<std::future<void>> futures;
      futures.reserve(kPerProducer);
      for (int i = 0; i < kPerProducer; ++i) {
        const std::int64_t value = p * kPerProducer + i + 1;
        futures.push_back(pool.submit([&sum, value] { sum.fetch_add(value); }));
      }
      for (auto& future : futures) future.get();
    });
  }
  for (std::thread& producer : producers) producer.join();

  const std::int64_t total = kProducers * kPerProducer;
  EXPECT_EQ(sum.load(), total * (total + 1) / 2);
}

}  // namespace
}  // namespace xmem
