#include "trace/trace.h"

#include <gtest/gtest.h>

namespace xmem::trace {
namespace {

TraceEvent make_span(EventKind kind, const std::string& name, std::int64_t id,
                     std::int64_t parent, util::TimeUs ts, util::TimeUs dur) {
  TraceEvent e;
  e.kind = kind;
  e.name = name;
  e.id = id;
  e.parent_id = parent;
  e.ts = ts;
  e.dur = dur;
  return e;
}

TraceEvent make_memory(std::int64_t id, std::uint64_t addr, std::int64_t bytes,
                       std::int64_t total, util::TimeUs ts) {
  TraceEvent e;
  e.kind = EventKind::kCpuInstantEvent;
  e.name = "[memory]";
  e.id = id;
  e.addr = addr;
  e.bytes = bytes;
  e.total_allocated = total;
  e.ts = ts;
  e.device_id = -1;
  return e;
}

Trace make_sample_trace() {
  Trace t;
  t.model_name = "gpt2";
  t.optimizer_name = "AdamW";
  t.batch_size = 8;
  t.iterations = 3;
  t.backend = "cpu";
  t.add(make_span(EventKind::kUserAnnotation, "ProfilerStep#0", 0, -1, 0, 100));
  t.add(make_span(EventKind::kPythonFunction, "nn.Module: Linear_0", 1, 0, 5, 40));
  TraceEvent op = make_span(EventKind::kCpuOp, "aten::addmm", 2, 1, 10, 20);
  op.seq = 7;
  t.add(op);
  t.add(make_memory(3, 0x1000, 4096, 4096, 12));
  t.add(make_memory(4, 0x1000, -4096, 0, 28));
  return t;
}

TEST(Trace, EventKindNames) {
  EXPECT_STREQ(to_string(EventKind::kPythonFunction), "python_function");
  EXPECT_STREQ(to_string(EventKind::kUserAnnotation), "user_annotation");
  EXPECT_STREQ(to_string(EventKind::kCpuOp), "cpu_op");
  EXPECT_STREQ(to_string(EventKind::kCpuInstantEvent), "cpu_instant_event");
}

TEST(Trace, AllocationPredicates) {
  const TraceEvent alloc = make_memory(0, 0x10, 512, 512, 0);
  const TraceEvent dealloc = make_memory(1, 0x10, -512, 0, 1);
  EXPECT_TRUE(alloc.is_allocation());
  EXPECT_FALSE(alloc.is_deallocation());
  EXPECT_TRUE(dealloc.is_deallocation());
  EXPECT_FALSE(dealloc.is_allocation());
}

TEST(Trace, JsonRoundTripPreservesEverything) {
  const Trace original = make_sample_trace();
  const Trace parsed = Trace::from_json_string(original.to_json_string());

  EXPECT_EQ(parsed.model_name, "gpt2");
  EXPECT_EQ(parsed.optimizer_name, "AdamW");
  EXPECT_EQ(parsed.batch_size, 8);
  EXPECT_EQ(parsed.iterations, 3);
  EXPECT_EQ(parsed.backend, "cpu");
  ASSERT_EQ(parsed.events.size(), original.events.size());
  for (std::size_t i = 0; i < parsed.events.size(); ++i) {
    const TraceEvent& a = original.events[i];
    const TraceEvent& b = parsed.events[i];
    EXPECT_EQ(a.kind, b.kind) << i;
    EXPECT_EQ(a.name, b.name) << i;
    EXPECT_EQ(a.ts, b.ts) << i;
    EXPECT_EQ(a.dur, b.dur) << i;
    EXPECT_EQ(a.addr, b.addr) << i;
    EXPECT_EQ(a.bytes, b.bytes) << i;
    EXPECT_EQ(a.total_allocated, b.total_allocated) << i;
  }
  // Sequence numbers and hierarchy survive.
  EXPECT_EQ(parsed.events[2].seq, 7);
  EXPECT_EQ(parsed.events[1].parent_id, 0);
}

TEST(Trace, JsonHasProfilerShape) {
  const util::Json doc = make_sample_trace().to_json();
  EXPECT_EQ(doc.at("schemaVersion").as_int(), 1);
  ASSERT_TRUE(doc.contains("traceEvents"));
  const util::Json& first = doc.at("traceEvents")[0];
  EXPECT_EQ(first.at("cat").as_string(), "user_annotation");
  EXPECT_EQ(first.at("ph").as_string(), "X");
  // Memory events are Chrome instant events with the PyTorch arg names.
  const util::Json& mem = doc.at("traceEvents")[3];
  EXPECT_EQ(mem.at("ph").as_string(), "i");
  EXPECT_EQ(mem.at("args").at("Bytes").as_int(), 4096);
  EXPECT_TRUE(mem.at("args").contains("Total Allocated"));
  EXPECT_TRUE(mem.at("args").contains("Addr"));
}

TEST(Trace, MalformedDocumentsThrow) {
  EXPECT_THROW(Trace::from_json_string("{}"), std::runtime_error);
  EXPECT_THROW(Trace::from_json_string("[1,2]"), std::runtime_error);
  EXPECT_THROW(Trace::from_json_string("not json"), util::JsonParseError);
  // Unknown category.
  EXPECT_THROW(
      Trace::from_json_string(
          R"({"traceEvents":[{"cat":"gpu_op","name":"x","ph":"X","ts":0}]})"),
      std::runtime_error);
}

TEST(Trace, LargeAddressesSurviveJson) {
  Trace t = make_sample_trace();
  t.events[3].addr = 0x7F12'3456'7890ULL;
  const Trace parsed = Trace::from_json_string(t.to_json_string());
  EXPECT_EQ(parsed.events[3].addr, 0x7F12'3456'7890ULL);
}

}  // namespace
}  // namespace xmem::trace
