// Overlap-window communication simulation fidelity suite (ctest label:
// replay).
//
// The rank-sequence transform's comm_overlap mode replaces resident
// collective staging buffers with schedule-tied windows (paired alloc/free
// events). This suite pins the contract from both sides:
//
//   * resident mode (the default) is byte-identical to the legacy formula —
//     `ddp_bucket_count` buckets at the first backward block, one TP
//     staging buffer sized like the largest forward block (replicated
//     components included, the deliberately coarse legacy rule), one ZeRO-3
//     all-gather arena sized by the largest TP-sharded parameter block;
//   * window-mode live collective bytes never exceed resident-mode at any
//     event index (the invariant the planner's re-ranking rests on);
//   * DDP bucket births/releases are monotone, each bucket is capped at
//     ddp_bucket_bytes, and at most ddp_bucket_count are live;
//   * every ZeRO-3 gather is exactly one alloc paired with exactly one
//     later free, windows are serialized (prefetch depth 1), and each is
//     bounded by the resident arena;
//   * TP staging in window mode is sized from the blocks that actually
//     all-reduce (replicated components no longer inflate it) — both
//     formulas pinned to exact bytes;
//   * a seeded fuzz drives random (d, t, chunks, zero, bucket) configs
//     through both modes and replays them via every registered allocator
//     backend: no crashes, and the tensor-level peak in window mode never
//     exceeds resident mode. Failures shrink to a minimal block list, the
//     same debugging contract as alloc_parity_test.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "alloc/backend_registry.h"
#include "core/sequence_transform.h"
#include "core/simulator.h"
#include "util/rng.h"

namespace xmem {
namespace {

using core::CollectiveBuffer;
using core::ComponentProfile;
using core::MemoryBlock;
using core::MemorySimulator;
using core::OrchestratedEvent;
using core::OrchestratedSequence;
using core::Phase;
using core::PipelineStage;
using core::RankScratch;
using core::RankTransformOptions;
using core::SequenceTransformer;
using core::SimulationOptions;
using core::ZeroStage;

MemoryBlock block(std::int64_t id, std::int64_t size, util::TimeUs alloc_ts,
                  util::TimeUs free_ts, const std::string& component,
                  Phase phase) {
  MemoryBlock b;
  b.id = id;
  b.size = size;
  b.alloc_ts = alloc_ts;
  b.free_ts = free_ts;
  b.component = component;
  b.phase = phase;
  return b;
}

OrchestratedSequence sequence_from_blocks(std::vector<MemoryBlock> blocks) {
  OrchestratedSequence sequence;
  sequence.blocks = std::move(blocks);
  for (const MemoryBlock& b : sequence.blocks) {
    sequence.events.push_back(
        OrchestratedEvent{b.alloc_ts, b.id, b.size, true});
    if (!b.persistent()) {
      sequence.events.push_back(
          OrchestratedEvent{b.free_ts, b.id, b.size, false});
    }
  }
  return sequence;
}

/// Hand-built training iteration with every phase the windows key on. The
/// largest forward block (1200 B) belongs to the replicated Norm component
/// on purpose: the legacy TP formula counts it, the window formula must
/// not.
OrchestratedSequence base_sequence() {
  return sequence_from_blocks({
      block(1, 1000, 10, -1, "Embedding.0", Phase::kModelLoad),
      block(2, 2000, 11, -1, "Block.1", Phase::kModelLoad),
      block(3, 2400, 12, -1, "Block.2", Phase::kModelLoad),
      block(4, 1600, 13, -1, "Block.3", Phase::kModelLoad),
      block(5, 64, 14, -1, "Norm.4", Phase::kModelLoad),
      block(6, 500, 20, 66, "loader.batch", Phase::kDataLoader),
      block(7, 800, 30, 58, "Block.1", Phase::kForward),
      block(8, 900, 33, 54, "Block.2", Phase::kForward),
      block(9, 400, 34, 35, "Block.2", Phase::kForward),  // op workspace
      block(10, 700, 36, 50, "Block.3", Phase::kForward),
      block(11, 1200, 38, 48, "Norm.4", Phase::kForward),
      block(12, 1500, 50, 60, "Block.3", Phase::kBackward),
      block(13, 1800, 54, 62, "Block.2", Phase::kBackward),
      block(14, 1700, 58, 64, "Block.1", Phase::kBackward),
      block(15, 4000, 70, -1, "Block.1", Phase::kOptimizerStep),
      block(16, 4400, 72, -1, "Block.2", Phase::kOptimizerStep),
      block(17, 3600, 74, -1, "Block.3", Phase::kOptimizerStep),
  });
}

std::vector<ComponentProfile> base_profiles() {
  return {
      ComponentProfile{"Embedding.0", 1000, 0, 0, 0},
      ComponentProfile{"Block.1", 2000, 4000, 800, 0},
      ComponentProfile{"Block.2", 2400, 4400, 900, 400},
      ComponentProfile{"Block.3", 1600, 3600, 700, 0},
      ComponentProfile{"Norm.4", 64, 0, 1200, 0},
  };
}

std::set<std::int64_t> collective_ids(const RankScratch& scratch) {
  std::set<std::int64_t> ids;
  for (const CollectiveBuffer& b : scratch.buffers) ids.insert(b.block_id);
  return ids;
}

/// Live collective bytes after all events at each timestamp have been
/// processed. Frees sort before allocs on equal timestamps, so within one
/// timestamp the live total only dips then rises: its intra-timestamp
/// maximum is max(previous end value, this end value), and comparing
/// end-of-timestamp values over the union of timestamps is a complete
/// dominance check for the step functions.
std::map<util::TimeUs, std::int64_t> live_collective_series(
    const OrchestratedSequence& sequence, const std::set<std::int64_t>& ids) {
  std::map<util::TimeUs, std::int64_t> series;
  std::int64_t live = 0;
  for (const OrchestratedEvent& event : sequence.events) {
    if (ids.count(event.block_id) != 0) {
      live += event.is_alloc ? event.bytes : -event.bytes;
    }
    series[event.ts] = live;
  }
  return series;
}

std::int64_t series_value_at(
    const std::map<util::TimeUs, std::int64_t>& series, util::TimeUs ts) {
  auto it = series.upper_bound(ts);
  if (it == series.begin()) return 0;
  return std::prev(it)->second;
}

/// "" when window-mode live collective bytes are bounded by resident-mode
/// at every event index; a description of the first violation otherwise.
std::string check_dominance(const OrchestratedSequence& window_sequence,
                            const RankScratch& window_scratch,
                            const OrchestratedSequence& resident_sequence,
                            const RankScratch& resident_scratch) {
  const auto window_series =
      live_collective_series(window_sequence, collective_ids(window_scratch));
  const auto resident_series = live_collective_series(
      resident_sequence, collective_ids(resident_scratch));
  std::set<util::TimeUs> timestamps;
  for (const auto& [ts, live] : window_series) timestamps.insert(ts);
  for (const auto& [ts, live] : resident_series) timestamps.insert(ts);
  for (const util::TimeUs ts : timestamps) {
    const std::int64_t window = series_value_at(window_series, ts);
    const std::int64_t resident = series_value_at(resident_series, ts);
    if (window > resident) {
      std::ostringstream message;
      message << "window live collective bytes " << window
              << " > resident " << resident << " at ts " << ts;
      return message.str();
    }
  }
  return "";
}

/// Max simultaneously-live buffers of one kind, walking the sorted events.
int max_live_of_kind(const OrchestratedSequence& sequence,
                     const RankScratch& scratch, const std::string& kind) {
  std::set<std::int64_t> ids;
  for (const CollectiveBuffer& b : scratch.buffers) {
    if (b.kind == kind) ids.insert(b.block_id);
  }
  int live = 0;
  int peak = 0;
  for (const OrchestratedEvent& event : sequence.events) {
    if (ids.count(event.block_id) == 0) continue;
    live += event.is_alloc ? 1 : -1;
    peak = std::max(peak, live);
  }
  return peak;
}

std::vector<CollectiveBuffer> buffers_of_kind(const RankScratch& scratch,
                                              const std::string& kind) {
  std::vector<CollectiveBuffer> out;
  for (const CollectiveBuffer& b : scratch.buffers) {
    if (b.kind == kind) out.push_back(b);
  }
  return out;
}

RankTransformOptions overlap_options(int d, int t, ZeroStage zero,
                                     std::int64_t bucket_bytes,
                                     int bucket_count) {
  RankTransformOptions options;
  options.data_parallel = d;
  options.tensor_parallel = t;
  options.zero = zero;
  options.ddp_bucket_bytes = bucket_bytes;
  options.ddp_bucket_count = bucket_count;
  options.comm_overlap = true;
  return options;
}

// ---------- resident mode: the legacy formula, pinned exactly ----------

TEST(CommOverlap, ResidentModeMatchesLegacyFormulaExactly) {
  const OrchestratedSequence base = base_sequence();
  const auto profiles = base_profiles();
  const SequenceTransformer transformer(base, profiles);

  RankTransformOptions options =
      overlap_options(2, 2, ZeroStage::kFull, 1 << 20, 2);
  options.comm_overlap = false;  // resident: the pre-window behavior
  RankScratch scratch;
  const OrchestratedSequence& out =
      transformer.rank_sequence(options, {}, 1, 0, scratch);

  ASSERT_EQ(scratch.buffers.size(), 4u);
  // Two DDP buckets at the first backward block, resident.
  EXPECT_EQ(scratch.buffers[0].kind, "ddp_bucket");
  EXPECT_EQ(scratch.buffers[0].bytes, 1 << 20);
  EXPECT_EQ(scratch.buffers[0].alloc_ts, 50);
  EXPECT_EQ(scratch.buffers[0].free_ts, -1);
  EXPECT_EQ(scratch.buffers[1].kind, "ddp_bucket");
  EXPECT_EQ(scratch.buffers[1].alloc_ts, 50);
  // ZeRO-3 arena: largest TP-sharded, un-DP-sharded parameter block —
  // Block.2's 2400 / t = 1200 — at the first event of the sequence.
  EXPECT_EQ(scratch.buffers[2].kind, "zero3_allgather");
  EXPECT_EQ(scratch.buffers[2].bytes, 1200);
  EXPECT_EQ(scratch.buffers[2].alloc_ts, 10);
  EXPECT_EQ(scratch.buffers[2].free_ts, -1);
  // Legacy TP staging: the largest post-shard forward block. Norm.4 is
  // replicated (never all-reduced) but its 1200 B block still wins after
  // the batch shard (1200 / d = 600) — the coarse rule resident mode keeps
  // for golden stability.
  EXPECT_EQ(scratch.buffers[3].kind, "tp_allreduce");
  EXPECT_EQ(scratch.buffers[3].bytes, 600);
  EXPECT_EQ(scratch.buffers[3].alloc_ts, 30);
  EXPECT_EQ(scratch.buffers[3].free_ts, -1);

  // Resident buffers never free: no free event names a collective id.
  const auto ids = collective_ids(scratch);
  for (const OrchestratedEvent& event : out.events) {
    if (!event.is_alloc) {
      EXPECT_EQ(ids.count(event.block_id), 0u);
    }
  }
}

// ---------- the dominance invariant ----------

TEST(CommOverlap, WindowLiveCollectiveBytesNeverExceedResident) {
  const OrchestratedSequence base = base_sequence();
  const auto profiles = base_profiles();
  const SequenceTransformer transformer(base, profiles);

  const std::vector<RankTransformOptions> configs = {
      overlap_options(4, 1, ZeroStage::kOptimizerGradient, 400, 2),
      overlap_options(2, 2, ZeroStage::kFull, 1024, 2),
      overlap_options(1, 2, ZeroStage::kNone, 1 << 20, 2),
      overlap_options(8, 4, ZeroStage::kFull, 256, 3),
      overlap_options(2, 1, ZeroStage::kOptimizer, 1 << 20, 1),
  };
  for (const RankTransformOptions& config : configs) {
    RankTransformOptions resident_config = config;
    resident_config.comm_overlap = false;
    RankScratch window_scratch, resident_scratch;
    const OrchestratedSequence& window =
        transformer.rank_sequence(config, {}, 1, 0, window_scratch);
    // Copy: the next rank_sequence call reuses the other scratch.
    const OrchestratedSequence window_copy = window;
    const OrchestratedSequence& resident =
        transformer.rank_sequence(resident_config, {}, 1, 0, resident_scratch);
    const std::string violation = check_dominance(
        window_copy, window_scratch, resident, resident_scratch);
    EXPECT_EQ(violation, "")
        << "d=" << config.data_parallel << " t=" << config.tensor_parallel
        << " zero=" << static_cast<int>(config.zero);
  }
}

// ---------- DDP bucket lifecycle ----------

TEST(CommOverlap, BucketBirthsAndReleasesAreMonotoneCappedAndBounded) {
  const OrchestratedSequence base = base_sequence();
  const auto profiles = base_profiles();
  const SequenceTransformer transformer(base, profiles);

  // d=4, zero stage 2: backward bytes shard to 375/450/425 at ts 50/54/58.
  // A 400 B bucket threshold fills at ts 54 and again at ts 58.
  RankScratch scratch;
  const OrchestratedSequence& out = transformer.rank_sequence(
      overlap_options(4, 1, ZeroStage::kOptimizerGradient, 400, 2), {}, 1, 0,
      scratch);

  const auto buckets = buffers_of_kind(scratch, "ddp_bucket");
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].alloc_ts, 54);
  EXPECT_EQ(buckets[1].alloc_ts, 58);
  // Both trail the depth, so both drain at the optimizer step (ts 70).
  EXPECT_EQ(buckets[0].free_ts, 70);
  EXPECT_EQ(buckets[1].free_ts, 70);
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    EXPECT_LE(buckets[i].bytes, 400) << "bucket " << i;
    EXPECT_GT(buckets[i].free_ts, buckets[i].alloc_ts) << "bucket " << i;
    if (i > 0) {
      EXPECT_GT(buckets[i].alloc_ts, buckets[i - 1].alloc_ts)
          << "births must be strictly increasing";
      EXPECT_GE(buckets[i].free_ts, buckets[i - 1].free_ts)
          << "releases must be monotone";
    }
  }
  EXPECT_LE(max_live_of_kind(out, scratch, "ddp_bucket"), 2);

  // Depth 1: the first bucket must drain when the second is born.
  RankScratch depth1;
  const OrchestratedSequence& out1 = transformer.rank_sequence(
      overlap_options(4, 1, ZeroStage::kOptimizerGradient, 400, 1), {}, 1, 0,
      depth1);
  const auto chain = buffers_of_kind(depth1, "ddp_bucket");
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain[0].free_ts, chain[1].alloc_ts);
  EXPECT_LE(max_live_of_kind(out1, depth1, "ddp_bucket"), 1);
}

// ---------- ZeRO-3 gather/release pairing ----------

TEST(CommOverlap, Zero3GathersArePairedSerializedAndBounded) {
  const OrchestratedSequence base = base_sequence();
  const auto profiles = base_profiles();
  const SequenceTransformer transformer(base, profiles);

  RankScratch scratch;
  const OrchestratedSequence& out = transformer.rank_sequence(
      overlap_options(2, 2, ZeroStage::kFull, 1 << 20, 2), {}, 1, 0, scratch);

  const auto gathers = buffers_of_kind(scratch, "zero3_allgather");
  // Four components run forward, three run backward (the re-gather);
  // Embedding.0 never executes a block, so it gathers nothing.
  ASSERT_EQ(gathers.size(), 7u);
  std::map<std::int64_t, std::pair<int, int>> event_counts;  // id -> {a, f}
  for (const CollectiveBuffer& g : gathers) event_counts[g.block_id] = {0, 0};
  for (const OrchestratedEvent& event : out.events) {
    const auto it = event_counts.find(event.block_id);
    if (it == event_counts.end()) continue;
    (event.is_alloc ? it->second.first : it->second.second) += 1;
  }
  for (std::size_t i = 0; i < gathers.size(); ++i) {
    const CollectiveBuffer& g = gathers[i];
    // Exactly one gather paired with exactly one later release.
    EXPECT_EQ(event_counts[g.block_id].first, 1) << "gather " << i;
    EXPECT_EQ(event_counts[g.block_id].second, 1) << "gather " << i;
    EXPECT_GT(g.free_ts, g.alloc_ts) << "gather " << i;
    // Bounded by the resident arena (Block.2: 2400 / t = 1200).
    EXPECT_LE(g.bytes, 1200) << "gather " << i;
    if (i > 0) {
      EXPECT_LE(gathers[i - 1].free_ts, g.alloc_ts)
          << "gathers must be serialized (prefetch depth 1)";
    }
  }
  EXPECT_LE(max_live_of_kind(out, scratch, "zero3_allgather"), 1);
}

// ---------- TP staging sizing (the fixed formula) ----------

TEST(CommOverlap, TpStagingIsSizedFromSynchronizedBlocksOnly) {
  const OrchestratedSequence base = base_sequence();
  const auto profiles = base_profiles();
  const SequenceTransformer transformer(base, profiles);

  RankTransformOptions window = overlap_options(1, 2, ZeroStage::kNone,
                                                1 << 20, 2);
  RankTransformOptions resident = window;
  resident.comm_overlap = false;

  RankScratch window_scratch, resident_scratch;
  transformer.rank_sequence(window, {}, 1, 0, window_scratch);
  transformer.rank_sequence(resident, {}, 1, 0, resident_scratch);

  const auto resident_tp = buffers_of_kind(resident_scratch, "tp_allreduce");
  const auto window_tp = buffers_of_kind(window_scratch, "tp_allreduce");
  ASSERT_EQ(resident_tp.size(), 1u);
  ASSERT_EQ(window_tp.size(), 1u);
  // Legacy: Norm.4's replicated 1200 B forward block wins even though a
  // replicated component never all-reduces.
  EXPECT_EQ(resident_tp[0].bytes, 1200);
  // Fixed: the largest block that actually synchronizes is Block.2's 900 B
  // forward at 25% activation replication: 225 + ceil(675 / 2) = 563.
  EXPECT_EQ(window_tp[0].bytes, 563);
  // And it lives only across the span the synchronized blocks cover:
  // first sync alloc (ts 30) to the last sync free (Block.1 at ts 58).
  EXPECT_EQ(window_tp[0].alloc_ts, 30);
  EXPECT_EQ(window_tp[0].free_ts, 58);

  // A persistent synchronized block pins the staging resident.
  OrchestratedSequence persistent_base = sequence_from_blocks({
      block(1, 2000, 10, -1, "Block.1", Phase::kModelLoad),
      block(2, 800, 30, -1, "Block.1", Phase::kForward),  // saved activation
  });
  const std::vector<ComponentProfile> one = {
      ComponentProfile{"Block.1", 2000, 4000, 800, 0}};
  const SequenceTransformer pinned(persistent_base, one);
  RankScratch pinned_scratch;
  pinned.rank_sequence(window, {}, 1, 0, pinned_scratch);
  const auto pinned_tp = buffers_of_kind(pinned_scratch, "tp_allreduce");
  ASSERT_EQ(pinned_tp.size(), 1u);
  EXPECT_EQ(pinned_tp[0].free_ts, -1);
}

// ---------- determinism ----------

TEST(CommOverlap, WindowModeIsDeterministic) {
  const OrchestratedSequence base = base_sequence();
  const auto profiles = base_profiles();
  const SequenceTransformer a(base, profiles);
  const SequenceTransformer b(base, profiles);

  const RankTransformOptions options =
      overlap_options(2, 2, ZeroStage::kFull, 1024, 2);
  RankScratch scratch_a, scratch_b;
  const OrchestratedSequence& out_a =
      a.rank_sequence(options, {}, 1, 0, scratch_a);
  const OrchestratedSequence& out_b =
      b.rank_sequence(options, {}, 1, 0, scratch_b);
  ASSERT_EQ(out_a.events.size(), out_b.events.size());
  for (std::size_t i = 0; i < out_a.events.size(); ++i) {
    EXPECT_EQ(out_a.events[i].ts, out_b.events[i].ts);
    EXPECT_EQ(out_a.events[i].block_id, out_b.events[i].block_id);
    EXPECT_EQ(out_a.events[i].bytes, out_b.events[i].bytes);
    EXPECT_EQ(out_a.events[i].is_alloc, out_b.events[i].is_alloc);
  }
  ASSERT_EQ(scratch_a.buffers.size(), scratch_b.buffers.size());
}

// ---------- seeded randomized fuzz across every backend ----------

struct FuzzConfig {
  int d = 1;
  int t = 1;
  ZeroStage zero = ZeroStage::kNone;
  std::int64_t bucket_bytes = 1024;
  int bucket_count = 2;
  std::vector<PipelineStage> chunks;  ///< empty = single stage
  std::size_t ranks = 1;
};

PipelineStage chunk(std::size_t first, std::size_t last) {
  PipelineStage stage;
  stage.first_component = first;
  stage.last_component = last;
  return stage;
}

/// Random model-shaped sequence: per-component persistent params, transient
/// forward/backward blocks (forward frees during backward), sometimes a
/// persistent saved activation, optimizer state, and an unattributed
/// dataloader block.
std::vector<MemoryBlock> random_model_blocks(
    util::Rng& rng, const std::vector<ComponentProfile>& profiles) {
  std::vector<MemoryBlock> blocks;
  std::int64_t id = 1;
  const auto size = [&rng] {
    return static_cast<std::int64_t>(64 + rng.next_below(4096));
  };
  util::TimeUs ts = 10;
  for (const ComponentProfile& profile : profiles) {
    blocks.push_back(
        block(id++, size(), ts++, -1, profile.component, Phase::kModelLoad));
  }
  if (rng.next_below(4) != 0) {
    blocks.push_back(
        block(id++, size(), 20, 460, "loader.batch", Phase::kDataLoader));
  }
  ts = 100;
  for (const ComponentProfile& profile : profiles) {
    const std::size_t count = 1 + rng.next_below(3);
    for (std::size_t j = 0; j < count; ++j) {
      const bool saved = rng.next_below(8) == 0;  // rare persistent forward
      const util::TimeUs alloc = ts + static_cast<util::TimeUs>(j);
      const util::TimeUs free =
          saved ? -1
                : alloc + 200 + static_cast<util::TimeUs>(rng.next_below(150));
      blocks.push_back(
          block(id++, size(), alloc, free, profile.component, Phase::kForward));
    }
    ts += 10;
  }
  ts = 300;
  for (auto it = profiles.rbegin(); it != profiles.rend(); ++it) {
    const std::size_t count = rng.next_below(3);  // 0: component skips bwd
    for (std::size_t j = 0; j < count; ++j) {
      const util::TimeUs alloc = ts + static_cast<util::TimeUs>(j);
      const util::TimeUs free =
          alloc + 10 + static_cast<util::TimeUs>(rng.next_below(150));
      blocks.push_back(
          block(id++, size(), alloc, free, it->component, Phase::kBackward));
    }
    ts += 10;
  }
  if (rng.next_below(4) != 0) {
    ts = 500;
    for (const ComponentProfile& profile : profiles) {
      blocks.push_back(block(id++, size(), ts++, -1, profile.component,
                             Phase::kOptimizerStep));
    }
  }
  return blocks;
}

std::vector<ComponentProfile> random_profiles(util::Rng& rng) {
  std::vector<ComponentProfile> profiles;
  profiles.push_back(ComponentProfile{"Embedding.0", 1000, 0, 0, 0});
  const std::size_t layers = 1 + rng.next_below(4);
  for (std::size_t i = 0; i < layers; ++i) {
    profiles.push_back(ComponentProfile{
        "Block." + std::to_string(i + 1), 2000, 4000, 800, 0});
  }
  profiles.push_back(ComponentProfile{
      "Norm." + std::to_string(layers + 1), 64, 0, 100, 0});
  return profiles;
}

FuzzConfig random_config(util::Rng& rng, std::size_t components) {
  FuzzConfig config;
  const int dims[] = {1, 2, 4, 8};
  config.d = dims[rng.next_below(4)];
  config.t = dims[rng.next_below(3)];
  config.zero = core::zero_stage_from_int(static_cast<int>(rng.next_below(4)));
  config.bucket_bytes = static_cast<std::int64_t>(256 + rng.next_below(4096));
  config.bucket_count = 1 + static_cast<int>(rng.next_below(3));
  if (components >= 2 && rng.next_below(2) == 0) {
    const std::size_t cut = 1 + rng.next_below(components - 1);
    config.chunks = {chunk(0, cut - 1), chunk(cut, components - 1)};
    config.ranks = 2;
  }
  return config;
}

/// "" when every invariant holds for every rank and backend; the first
/// violation otherwise. The fuzz predicate and the shrinker share this.
std::string check_fuzz_invariants(const std::vector<MemoryBlock>& blocks,
                                  const std::vector<ComponentProfile>& profiles,
                                  const FuzzConfig& config) {
  const OrchestratedSequence base = sequence_from_blocks(blocks);
  const SequenceTransformer transformer(base, profiles);
  RankTransformOptions window = overlap_options(
      config.d, config.t, config.zero, config.bucket_bytes,
      config.bucket_count);
  RankTransformOptions resident = window;
  resident.comm_overlap = false;

  for (std::size_t rank = 0; rank < config.ranks; ++rank) {
    RankScratch window_scratch, resident_scratch;
    const OrchestratedSequence window_out = transformer.rank_sequence(
        window, config.chunks, config.ranks, rank, window_scratch);
    const OrchestratedSequence resident_out = transformer.rank_sequence(
        resident, config.chunks, config.ranks, rank, resident_scratch);

    const std::string dominance = check_dominance(
        window_out, window_scratch, resident_out, resident_scratch);
    if (!dominance.empty()) {
      return "rank " + std::to_string(rank) + ": " + dominance;
    }
    for (const CollectiveBuffer& b : window_scratch.buffers) {
      if (b.kind == "ddp_bucket" && b.bytes > config.bucket_bytes) {
        return "bucket exceeds ddp_bucket_bytes";
      }
      if (b.free_ts >= 0 && b.free_ts <= b.alloc_ts) {
        return "window closes at or before it opens (" + b.kind + ")";
      }
    }
    if (max_live_of_kind(window_out, window_scratch, "ddp_bucket") >
        config.bucket_count) {
      return "more than ddp_bucket_count buckets live";
    }
    if (max_live_of_kind(window_out, window_scratch, "zero3_allgather") > 1) {
      return "overlapping ZeRO-3 gathers";
    }

    for (const std::string& backend : alloc::backend_names()) {
      SimulationOptions options;
      options.backend = backend;
      const MemorySimulator simulator;
      const auto window_result = simulator.replay(window_out, options);
      const auto resident_result = simulator.replay(resident_out, options);
      if (window_result.peak_allocated > resident_result.peak_allocated) {
        return "rank " + std::to_string(rank) + ", " + backend +
               ": window tensor-level peak " +
               std::to_string(window_result.peak_allocated) + " > resident " +
               std::to_string(resident_result.peak_allocated);
      }
    }
  }
  return "";
}

/// Greedy block-dropping shrinker: remove any block whose absence keeps the
/// failure alive, until a fixed point. Mirrors alloc_parity_test's
/// shrink-to-reproducer debugging contract.
std::vector<MemoryBlock> shrink_failing_blocks(
    std::vector<MemoryBlock> blocks,
    const std::vector<ComponentProfile>& profiles, const FuzzConfig& config) {
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      std::vector<MemoryBlock> candidate = blocks;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      if (!check_fuzz_invariants(candidate, profiles, config).empty()) {
        blocks = std::move(candidate);
        shrunk = true;
        break;
      }
    }
  }
  return blocks;
}

std::string dump_blocks(const std::vector<MemoryBlock>& blocks) {
  std::ostringstream out;
  for (const MemoryBlock& b : blocks) {
    out << "  block(" << b.id << ", " << b.size << ", " << b.alloc_ts << ", "
        << b.free_ts << ", \"" << b.component << "\", phase "
        << static_cast<int>(b.phase) << ")\n";
  }
  return out.str();
}

TEST(CommOverlapFuzz, RandomConfigsHoldInvariantsOnEveryBackend) {
  util::Rng rng(0xC0FFEE);
  for (int iteration = 0; iteration < 40; ++iteration) {
    const auto profiles = random_profiles(rng);
    const auto blocks = random_model_blocks(rng, profiles);
    const FuzzConfig config = random_config(rng, profiles.size());
    const std::string violation =
        check_fuzz_invariants(blocks, profiles, config);
    if (!violation.empty()) {
      const auto reproducer = shrink_failing_blocks(blocks, profiles, config);
      FAIL() << "iteration " << iteration << ": " << violation
             << "\nconfig: d=" << config.d << " t=" << config.t
             << " zero=" << static_cast<int>(config.zero)
             << " bucket_bytes=" << config.bucket_bytes
             << " bucket_count=" << config.bucket_count
             << " ranks=" << config.ranks << "\nshrunken reproducer ("
             << reproducer.size() << " blocks):\n"
             << dump_blocks(reproducer);
    }
  }
}

}  // namespace
}  // namespace xmem
