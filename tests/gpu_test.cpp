// Ground-truth runner and NVML sampler tests.
#include <gtest/gtest.h>

#include "gpu/ground_truth.h"
#include "models/zoo.h"
#include "util/bytes.h"

namespace xmem::gpu {
namespace {

using util::kGiB;
using util::kMiB;

TEST(DeviceModel, BudgetsAreSane) {
  for (const DeviceModel& device : {rtx3060(), rtx4060(), a100_40gb()}) {
    EXPECT_GT(device.job_budget(), 0) << device.name;
    EXPECT_LT(device.job_budget(), device.capacity) << device.name;
    EXPECT_EQ(device.job_budget() + device.m_init + device.m_fm,
              device.capacity)
        << device.name;
  }
  EXPECT_EQ(rtx3060().capacity, 12 * kGiB);
  EXPECT_EQ(rtx4060().capacity, 8 * kGiB);
  EXPECT_EQ(a100_40gb().capacity, 40 * kGiB);
}

TEST(NvmlSampler, SamplesAtIntervalBoundaries) {
  util::SimClock clock;
  alloc::SimulatedCudaDriver driver(kGiB);
  NvmlSampler sampler(clock, driver, /*interval=*/1000);
  driver.cuda_malloc(10 * kMiB);
  clock.advance(2500);
  sampler.poll();
  EXPECT_EQ(sampler.sample_count(), 3u);  // t = 0, 1000, 2000
  EXPECT_EQ(sampler.peak(), 10 * kMiB);
}

TEST(NvmlSampler, MissesSubIntervalSpikes) {
  util::SimClock clock;
  alloc::SimulatedCudaDriver driver(kGiB);
  NvmlSampler sampler(clock, driver, 1000);
  sampler.poll();  // t=0 baseline
  const auto spike = driver.cuda_malloc(100 * kMiB);
  clock.advance(200);  // spike lives 200us < 1ms
  sampler.poll();      // no boundary crossed
  driver.cuda_free(*spike);
  clock.advance(1000);
  sampler.poll();
  EXPECT_EQ(sampler.peak(), 0) << "sub-millisecond spike must be missed";
}

TEST(NvmlSampler, FinalSampleSeesTerminalPlateau) {
  util::SimClock clock;
  alloc::SimulatedCudaDriver driver(kGiB);
  NvmlSampler sampler(clock, driver, 1000);
  driver.cuda_malloc(4 * kMiB);
  clock.advance(10);  // run ends before the next boundary
  sampler.final_sample();
  EXPECT_EQ(sampler.peak(), 4 * kMiB);
}

GroundTruthResult run_job(const std::string& model_name, int batch,
                          fw::OptimizerKind opt, const DeviceModel& device,
                          std::uint64_t seed = 1,
                          std::int64_t budget_override = -1) {
  const fw::ModelDescriptor model = models::build_model(model_name, batch);
  GroundTruthRunner runner;
  GroundTruthOptions options;
  options.seed = seed;
  options.budget_override = budget_override;
  return runner.run(model, opt, device, options);
}

TEST(GroundTruth, SmallJobFitsAndReportsPeak) {
  const GroundTruthResult r =
      run_job("MobileNetV2", 64, fw::OptimizerKind::kSgd, rtx3060());
  EXPECT_FALSE(r.oom);
  EXPECT_GT(r.peak_job_bytes, 0);
  // NVML (1ms, page-granular) peak must be consistent with the exact peak.
  EXPECT_LE(r.peak_job_bytes,
            r.peak_reserved_exact + alloc::SimulatedCudaDriver::kPageSize *
                                        (1 + r.allocator_stats.num_segments_allocated));
  EXPECT_GE(r.peak_reserved_exact, r.peak_allocated_exact);
}

TEST(GroundTruth, HugeJobOoms) {
  const GroundTruthResult r =
      run_job("pythia-1b", 8, fw::OptimizerKind::kAdam, rtx3060());
  EXPECT_TRUE(r.oom);
}

TEST(GroundTruth, PeakGrowsWithBatch) {
  const auto small = run_job("gpt2", 5, fw::OptimizerKind::kSgd, rtx3060());
  const auto large = run_job("gpt2", 10, fw::OptimizerKind::kSgd, rtx3060());
  ASSERT_FALSE(small.oom);
  ASSERT_FALSE(large.oom);
  EXPECT_GT(large.peak_job_bytes, small.peak_job_bytes);
}

TEST(GroundTruth, StatefulOptimizerCostsMore) {
  // Use a flash-attention model at small batch: its transient footprint is
  // small, so the Adam states cannot hide inside cached segment slack (for
  // eager-attention models with a large CE spike they sometimes can — a
  // real caching-allocator effect).
  const auto sgd = run_job("Qwen3-0.6B", 1, fw::OptimizerKind::kSgd, rtx3060());
  const auto adam =
      run_job("Qwen3-0.6B", 1, fw::OptimizerKind::kAdam, rtx3060());
  ASSERT_FALSE(sgd.oom);
  ASSERT_FALSE(adam.oom);
  const auto model = models::build_model("Qwen3-0.6B", 1);
  // At least (nearly) the two state tensors; at most states + the fused
  // step's transient update buffer.
  const auto delta = adam.peak_job_bytes - sgd.peak_job_bytes;
  EXPECT_GE(delta, 2 * model.param_bytes() * 8 / 10);
  EXPECT_LE(delta, 3 * model.param_bytes());
}

TEST(GroundTruth, BudgetOverrideForcesOom) {
  const auto full = run_job("MobileNetV2", 64, fw::OptimizerKind::kSgd,
                            rtx3060());
  ASSERT_FALSE(full.oom);
  const auto capped = run_job("MobileNetV2", 64, fw::OptimizerKind::kSgd,
                              rtx3060(), 1, full.peak_job_bytes / 2);
  EXPECT_TRUE(capped.oom);
}

TEST(GroundTruth, BudgetAtPeakSucceeds) {
  // Running with exactly the observed reserved peak must fit: the caching
  // allocator's reclamation keeps the job within any budget >= true need.
  const auto full = run_job("distilgpt2", 4, fw::OptimizerKind::kSgd,
                            rtx3060(), 3);
  ASSERT_FALSE(full.oom);
  const auto capped = run_job("distilgpt2", 4, fw::OptimizerKind::kSgd,
                              rtx3060(), 3, full.peak_reserved_exact);
  EXPECT_FALSE(capped.oom);
}

TEST(GroundTruth, DeterministicForSameSeed) {
  const auto a = run_job("gpt2", 5, fw::OptimizerKind::kAdamW, rtx3060(), 11);
  const auto b = run_job("gpt2", 5, fw::OptimizerKind::kAdamW, rtx3060(), 11);
  EXPECT_EQ(a.peak_job_bytes, b.peak_job_bytes);
  EXPECT_EQ(a.peak_reserved_exact, b.peak_reserved_exact);
}

TEST(GroundTruth, SeedJitterPerturbsPeakSlightly) {
  const auto a = run_job("VGG16", 300, fw::OptimizerKind::kSgd, rtx3060(), 1);
  const auto b = run_job("VGG16", 300, fw::OptimizerKind::kSgd, rtx3060(), 2);
  ASSERT_FALSE(a.oom);
  ASSERT_FALSE(b.oom);
  const double rel =
      std::abs(static_cast<double>(a.peak_reserved_exact - b.peak_reserved_exact)) /
      static_cast<double>(a.peak_reserved_exact);
  EXPECT_LT(rel, 0.10) << "jitter should be small";
}

TEST(GroundTruth, Pos0PeaksHigherThanPos1) {
  // Figure 1: the placement effect shows when parameter gradients are large
  // relative to the loss-side activation spike — forward activations then
  // coexist with the previous iteration's gradients under POS0. Qwen3-0.6B
  // (2.4 GB of gradients, small batch) is such a workload.
  const fw::ModelDescriptor model = models::build_model("Qwen3-0.6B", 2);
  GroundTruthRunner runner;
  GroundTruthOptions pos0;
  pos0.placement = fw::ZeroGradPlacement::kPos0BeforeBackward;
  GroundTruthOptions pos1;
  pos1.placement = fw::ZeroGradPlacement::kPos1IterStart;
  const auto r0 = runner.run(model, fw::OptimizerKind::kSgd, rtx3060(), pos0);
  const auto r1 = runner.run(model, fw::OptimizerKind::kSgd, rtx3060(), pos1);
  ASSERT_FALSE(r0.oom);
  ASSERT_FALSE(r1.oom);
  EXPECT_GT(r0.peak_job_bytes, r1.peak_job_bytes + util::kGiB / 2);
}

TEST(GroundTruth, SeriesRecordingProducesCurves) {
  const fw::ModelDescriptor model = models::build_model("MobileNetV2", 32);
  GroundTruthRunner runner;
  GroundTruthOptions options;
  options.record_series = true;
  const auto r = runner.run(model, fw::OptimizerKind::kSgd, rtx3060(), options);
  ASSERT_FALSE(r.oom);
  EXPECT_GT(r.reserved_series.size(), 100u);
  EXPECT_EQ(r.reserved_series.size(), r.allocated_series.size());
  // Reserved >= allocated pointwise; timestamps non-decreasing.
  for (std::size_t i = 0; i < r.reserved_series.size(); ++i) {
    EXPECT_GE(r.reserved_series[i].second, r.allocated_series[i].second);
    if (i > 0) {
      EXPECT_GE(r.reserved_series[i].first, r.reserved_series[i - 1].first);
    }
  }
  EXPECT_FALSE(r.final_snapshot.empty());
}

}  // namespace
}  // namespace xmem::gpu
