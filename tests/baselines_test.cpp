// Baseline estimator tests: each reimplementation must show the failure
// modes the paper attributes to it, and behave sanely otherwise.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/basic_bfc.h"
#include "baselines/dnnmem.h"
#include "baselines/gbm.h"
#include "baselines/llmem.h"
#include "baselines/schedtune.h"
#include "gpu/ground_truth.h"
#include "models/zoo.h"
#include "util/bytes.h"

namespace xmem::baselines {
namespace {

using util::kMiB;

core::TrainJob make_job(const std::string& model, int batch,
                        fw::OptimizerKind opt) {
  core::TrainJob job;
  job.model_name = model;
  job.batch_size = batch;
  job.optimizer = opt;
  job.seed = 5;
  return job;
}

std::int64_t ground_truth_peak(const core::TrainJob& job,
                               const gpu::DeviceModel& device) {
  const fw::ModelDescriptor model =
      models::build_model(job.model_name, job.batch_size);
  gpu::GroundTruthRunner runner;
  gpu::GroundTruthOptions options;
  options.seed = job.seed;
  const auto result = runner.run(model, job.optimizer, device, options);
  EXPECT_FALSE(result.oom);
  return result.peak_job_bytes;
}

// ---------- BasicBfc ----------

TEST(BasicBfc, ReusesAndCoalesces) {
  BasicBfcAllocator bfc;
  const auto a = bfc.alloc(3 * kMiB);
  const auto b = bfc.alloc(3 * kMiB);
  // Two 4 MiB segments (2 MiB granularity, no 20 MiB buckets).
  EXPECT_EQ(bfc.reserved_bytes(), 8 * kMiB);
  bfc.free(a);
  bfc.free(b);
  // Freed space coalesces within each segment, but segments never merge:
  // a 5 MiB request needs a fresh 6 MiB segment.
  const auto c = bfc.alloc(5 * kMiB);
  EXPECT_EQ(bfc.reserved_bytes(), 14 * kMiB);
  // The two cached 4 MiB blocks still serve smaller requests.
  const auto d = bfc.alloc(4 * kMiB);
  EXPECT_EQ(bfc.reserved_bytes(), 14 * kMiB);
  bfc.free(c);
  bfc.free(d);
  EXPECT_EQ(bfc.allocated_bytes(), 0);
  EXPECT_EQ(bfc.num_live(), 0u);
}

TEST(BasicBfc, PeakTracking) {
  BasicBfcAllocator bfc;
  const auto a = bfc.alloc(10 * kMiB);
  bfc.free(a);
  bfc.alloc(1 * kMiB);
  EXPECT_EQ(bfc.peak_reserved_bytes(), 10 * kMiB);
  EXPECT_THROW(bfc.free(12345), std::logic_error);
  EXPECT_THROW(bfc.alloc(0), std::invalid_argument);
}

TEST(BasicBfc, ReservesLessThanCachingAllocator) {
  // No 20 MiB buckets: a 3 MiB tensor reserves 4 MiB here but 20 MiB in the
  // real allocator — one reason DNNMem under-reports segment memory.
  BasicBfcAllocator bfc;
  bfc.alloc(3 * kMiB);
  EXPECT_EQ(bfc.reserved_bytes(), 4 * kMiB);
}

// ---------- DNNMem ----------

TEST(DnnMem, ReasonableForSgd) {
  const auto job = make_job("gpt2", 10, fw::OptimizerKind::kSgd);
  const std::int64_t truth = ground_truth_peak(job, gpu::rtx3060());
  DnnMemEstimator dnnmem;
  const auto estimate = dnnmem.estimate(job, gpu::rtx3060());
  const double error =
      std::abs(static_cast<double>(estimate.estimated_peak - truth)) /
      static_cast<double>(truth);
  EXPECT_LT(error, 0.30) << "static analysis should be tolerable for SGD";
}

TEST(DnnMem, MissesOptimizerState) {
  // Adam vs SGD ground truths differ by ~2x params; DNNMem's estimates for
  // the two must be identical (the static graph has no optimizer).
  DnnMemEstimator dnnmem;
  const auto sgd =
      dnnmem.estimate(make_job("gpt2", 10, fw::OptimizerKind::kSgd),
                      gpu::rtx3060());
  const auto adam =
      dnnmem.estimate(make_job("gpt2", 10, fw::OptimizerKind::kAdam),
                      gpu::rtx3060());
  EXPECT_EQ(sgd.estimated_peak, adam.estimated_peak);

  const auto job = make_job("gpt2", 10, fw::OptimizerKind::kAdam);
  const std::int64_t truth = ground_truth_peak(job, gpu::rtx3060());
  EXPECT_LT(adam.estimated_peak, truth)
      << "DNNMem must underestimate Adam jobs";
  const fw::ModelDescriptor model = models::build_model("gpt2", 10);
  EXPECT_GT(truth - adam.estimated_peak, model.param_bytes())
      << "the gap should be at least the missing state bytes";
}

TEST(DnnMem, BlindToZeroGradPlacement) {
  DnnMemEstimator dnnmem;
  auto job = make_job("distilgpt2", 10, fw::OptimizerKind::kAdamW);
  job.placement = fw::ZeroGradPlacement::kPos0BeforeBackward;
  const auto pos0 = dnnmem.estimate(job, gpu::rtx3060());
  job.placement = fw::ZeroGradPlacement::kPos1IterStart;
  const auto pos1 = dnnmem.estimate(job, gpu::rtx3060());
  EXPECT_EQ(pos0.estimated_peak, pos1.estimated_peak);
}

TEST(DnnMem, SupportsCnns) {
  DnnMemEstimator dnnmem;
  const auto job = make_job("VGG16", 300, fw::OptimizerKind::kSgd);
  EXPECT_TRUE(dnnmem.supports(job));
  const auto estimate = dnnmem.estimate(job, gpu::rtx3060());
  EXPECT_GT(estimate.estimated_peak, 0);
}

// ---------- GBM ----------

TEST(Gbm, FitsStepFunction) {
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    rows.push_back({static_cast<double>(i)});
    y.push_back(i < 50 ? 1.0 : 5.0);
  }
  GbmRegressor gbm;
  gbm.fit(rows, y);
  EXPECT_NEAR(gbm.predict({10}), 1.0, 0.2);
  EXPECT_NEAR(gbm.predict({90}), 5.0, 0.2);
}

TEST(Gbm, FitsLinearInterpolation) {
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    const double x = i * 0.1;
    rows.push_back({x});
    y.push_back(3.0 * x + 1.0);
  }
  GbmRegressor gbm;
  gbm.fit(rows, y);
  EXPECT_NEAR(gbm.predict({5.0}), 16.0, 1.5);
}

TEST(Gbm, CannotExtrapolate) {
  // Trees predict constants outside the training support — the cold-start
  // failure SchedTune inherits.
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    rows.push_back({static_cast<double>(i)});
    y.push_back(2.0 * i);
  }
  GbmRegressor gbm;
  gbm.fit(rows, y);
  EXPECT_LT(gbm.predict({1000.0}), 250.0)
      << "prediction must saturate near the training maximum";
}

TEST(Gbm, PredictBeforeFitThrows) {
  GbmRegressor gbm;
  EXPECT_THROW(gbm.predict({1.0}), std::logic_error);
  EXPECT_THROW(gbm.fit({}, {}), std::invalid_argument);
}

TEST(Gbm, Deterministic) {
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 60; ++i) {
    rows.push_back({static_cast<double>(i % 10), static_cast<double>(i % 7)});
    y.push_back(static_cast<double>(i % 10) - 0.5 * (i % 7));
  }
  GbmRegressor a, b;
  a.fit(rows, y);
  b.fit(rows, y);
  EXPECT_DOUBLE_EQ(a.predict({3, 4}), b.predict({3, 4}));
}

// ---------- SchedTune ----------

class SchedTuneFixture : public ::testing::Test {
 protected:
  // Training runs ~250 historical ground-truth jobs; share one instance.
  static SchedTuneEstimator& instance() {
    static SchedTuneEstimator schedtune;
    return schedtune;
  }
};

TEST_F(SchedTuneFixture, TrainsOnHistoricalRuns) {
  EXPECT_GT(instance().history_size(), 100u);
}

TEST_F(SchedTuneFixture, InDistributionIsTolerable) {
  // gpt2 with a mid-range batch was in the history: error should be modest.
  const auto job = make_job("gpt2", 10, fw::OptimizerKind::kAdamW);
  const std::int64_t truth = ground_truth_peak(job, gpu::rtx3060());
  const auto estimate = instance().estimate(job, gpu::rtx3060());
  const double error =
      std::abs(static_cast<double>(estimate.estimated_peak - truth)) /
      static_cast<double>(truth);
  EXPECT_LT(error, 0.50);
}

TEST_F(SchedTuneFixture, ColdStartOnLargeUnseenModels) {
  // pythia-1b is ~8x larger than anything in the history; the tree model
  // cannot extrapolate and must grossly underestimate.
  const auto job = make_job("pythia-1b", 2, fw::OptimizerKind::kSgd);
  const std::int64_t truth = ground_truth_peak(job, gpu::rtx3060());
  const auto estimate = instance().estimate(job, gpu::rtx3060());
  EXPECT_LT(estimate.estimated_peak, truth / 2)
      << "cold-start underestimation expected";
}

TEST_F(SchedTuneFixture, FeatureVectorShape) {
  const auto features = SchedTuneEstimator::features(
      make_job("gpt2", 16, fw::OptimizerKind::kAdam), gpu::rtx3060());
  ASSERT_EQ(features.size(), 9u);
  EXPECT_NEAR(features[0], std::log10(124e6), 0.2);  // log params
  EXPECT_DOUBLE_EQ(features[2], 16.0);               // batch
  EXPECT_DOUBLE_EQ(features[3], 1.0);                // transformer flag
  EXPECT_DOUBLE_EQ(features[4], 2.0);                // adam state words
  EXPECT_DOUBLE_EQ(features[8], 12.0);               // device GiB
}

TEST_F(SchedTuneFixture, FastInference) {
  const auto job = make_job("ResNet101", 300, fw::OptimizerKind::kAdam);
  const auto estimate = instance().estimate(job, gpu::rtx3060());
  EXPECT_LT(estimate.runtime_seconds, 0.05)
      << "SchedTune inference must be the fastest estimator";
}

// ---------- LLMem ----------

TEST(LLMem, TransformerOnly) {
  LLMemEstimator llmem;
  EXPECT_TRUE(llmem.supports(make_job("gpt2", 8, fw::OptimizerKind::kAdamW)));
  EXPECT_FALSE(llmem.supports(make_job("VGG16", 8, fw::OptimizerKind::kSgd)));
  const auto cnn_result =
      llmem.estimate(make_job("VGG16", 8, fw::OptimizerKind::kSgd),
                     gpu::rtx3060());
  EXPECT_FALSE(cnn_result.supported);
}

TEST(LLMem, AssumesAdamWStateRegardlessOfOptimizer) {
  // LLMem hardcodes AdamW fine-tuning. At batch 1 the extrapolation term
  // vanishes, exposing the optimizer assumption directly: an SGD job is
  // overshot by the ~2x param_bytes of phantom state, while an AdamW job
  // (whose probe already contains the state) lands near the truth.
  LLMemEstimator llmem;
  const fw::ModelDescriptor model = models::build_model("gpt2", 1);
  const auto sgd_job = make_job("gpt2", 1, fw::OptimizerKind::kSgd);
  const auto sgd_est = llmem.estimate(sgd_job, gpu::rtx3060());
  const std::int64_t sgd_truth = ground_truth_peak(sgd_job, gpu::rtx3060());
  const std::int64_t overshoot = sgd_est.estimated_peak - sgd_truth;
  EXPECT_GT(overshoot, model.param_bytes() * 3 / 2);
  EXPECT_LT(overshoot, model.param_bytes() * 3);

  const auto adamw_job = make_job("gpt2", 1, fw::OptimizerKind::kAdamW);
  const auto adamw_est = llmem.estimate(adamw_job, gpu::rtx3060());
  const std::int64_t adamw_truth = ground_truth_peak(adamw_job, gpu::rtx3060());
  EXPECT_LT(std::abs(adamw_est.estimated_peak - adamw_truth),
            model.param_bytes());
}

TEST(LLMem, UnderestimatesLargeBatchGrowth) {
  // The 0.55 mixed-precision activation factor shrinks the per-sample
  // slope, so large-batch full-precision jobs are underestimated relative
  // to their true growth.
  LLMemEstimator llmem;
  const auto job_small = make_job("distilgpt2", 5, fw::OptimizerKind::kSgd);
  const auto job_large = make_job("distilgpt2", 15, fw::OptimizerKind::kSgd);
  const std::int64_t truth_small = ground_truth_peak(job_small, gpu::rtx3060());
  const std::int64_t truth_large = ground_truth_peak(job_large, gpu::rtx3060());
  const auto est_small = llmem.estimate(job_small, gpu::rtx3060());
  const auto est_large = llmem.estimate(job_large, gpu::rtx3060());
  const double growth_truth = static_cast<double>(truth_large - truth_small);
  const double growth_est = static_cast<double>(est_large.estimated_peak -
                                                est_small.estimated_peak);
  EXPECT_LT(growth_est, growth_truth * 0.75);
}

TEST(LLMem, RuntimeIncludesProbeCost) {
  LLMemEstimator llmem;
  const auto estimate = llmem.estimate(
      make_job("gpt2", 10, fw::OptimizerKind::kAdamW), gpu::rtx3060());
  EXPECT_GT(estimate.runtime_seconds, 0.0);
}

}  // namespace
}  // namespace xmem::baselines
