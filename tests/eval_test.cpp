// Evaluation harness tests: Eq. 1-8 semantics on synthetic records plus a
// miniature end-to-end harness run.
#include <gtest/gtest.h>

#include <cmath>

#include "eval/harness.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "util/bytes.h"

namespace xmem::eval {
namespace {

using util::kGiB;

RunRecord base_record(const std::string& model, const std::string& estimator) {
  RunRecord r;
  r.config.model = model;
  r.config.batch_size = 8;
  r.estimator = estimator;
  r.device_capacity = 12 * kGiB;
  r.supported = true;
  return r;
}

TEST(Metrics, RelativeError) {
  EXPECT_DOUBLE_EQ(relative_error(110, 100), 0.10);
  EXPECT_DOUBLE_EQ(relative_error(90, 100), 0.10);
  EXPECT_DOUBLE_EQ(relative_error(100, 100), 0.0);
  EXPECT_DOUBLE_EQ(relative_error(50, 0), 0.0);  // guarded
}

TEST(Metrics, FinalizeHappyPath) {
  // Fits, predicted to fit, round 2 passed: C1=C2=1, error from round 2,
  // m_save = capacity - estimate.
  RunRecord r = base_record("m", "xMem");
  r.estimate = 4 * kGiB;
  r.oom_predicted = false;
  r.oom_actual_1 = false;
  r.peak_1 = 4 * kGiB + 100 * 1024 * 1024;
  r.round2_run = true;
  r.oom_actual_2 = false;
  r.peak_2 = 4 * kGiB - 50 * 1024 * 1024;
  finalize_record(r);
  EXPECT_TRUE(r.c1);
  EXPECT_TRUE(r.c2);
  EXPECT_TRUE(r.has_error);
  EXPECT_DOUBLE_EQ(r.error, relative_error(r.estimate, r.peak_2));
  EXPECT_EQ(r.m_save, r.device_capacity - r.estimate);
}

TEST(Metrics, FinalizeRound2Oom) {
  // Fits, predicted to fit, but the capped rerun OOMed: C2=0, error falls
  // back to round 1, m_save = -capacity (Eq. 7 penalty).
  RunRecord r = base_record("m", "xMem");
  r.estimate = 3 * kGiB;
  r.oom_actual_1 = false;
  r.peak_1 = 4 * kGiB;
  r.round2_run = true;
  r.oom_actual_2 = true;
  finalize_record(r);
  EXPECT_TRUE(r.c1);
  EXPECT_FALSE(r.c2);
  EXPECT_DOUBLE_EQ(r.error, relative_error(3 * kGiB, 4 * kGiB));
  EXPECT_EQ(r.m_save, -r.device_capacity);
}

TEST(Metrics, FinalizeTrueOomPredicted) {
  // True OOM predicted correctly: C1=C2=1, no error sample, full capacity
  // conserved (the job was never scheduled).
  RunRecord r = base_record("m", "xMem");
  r.estimate = 20 * kGiB;
  r.oom_predicted = true;
  r.oom_actual_1 = true;
  finalize_record(r);
  EXPECT_TRUE(r.c1);
  EXPECT_TRUE(r.c2);
  EXPECT_FALSE(r.has_error);
  EXPECT_EQ(r.m_save, r.device_capacity);
}

TEST(Metrics, FinalizeWrongOomPrediction) {
  // Predicted OOM but the job fit: C1=0, penalty.
  RunRecord r = base_record("m", "xMem");
  r.estimate = 20 * kGiB;
  r.oom_predicted = true;
  r.oom_actual_1 = false;
  r.peak_1 = 2 * kGiB;
  finalize_record(r);
  EXPECT_FALSE(r.c1);
  EXPECT_FALSE(r.c2);
  EXPECT_EQ(r.m_save, -r.device_capacity);
  // Error is still defined (the job ran in round 1).
  EXPECT_TRUE(r.has_error);
}

TEST(Metrics, Aggregations) {
  std::vector<RunRecord> records;
  for (double e : {0.01, 0.02, 0.03}) {
    RunRecord r = base_record("A", "xMem");
    r.has_error = true;
    r.error = e;
    r.c2 = e < 0.025;  // two pass, one fails
    r.m_save = kGiB;
    r.is_cnn = true;
    records.push_back(r);
  }
  RunRecord other = base_record("A", "DNNMem");
  other.has_error = true;
  other.error = 0.5;
  other.is_cnn = true;
  records.push_back(other);

  EXPECT_DOUBLE_EQ(mre_for(records, "A", "xMem"), 0.02);
  EXPECT_NEAR(pef_for(records, "A", "xMem"), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(mre_for(records, "A", "DNNMem"), 0.5);
  EXPECT_TRUE(std::isnan(mre_for(records, "B", "xMem")));
  EXPECT_DOUBLE_EQ(mcp_bytes_for(records, "xMem", "CNN"),
                   static_cast<double>(kGiB));
  EXPECT_TRUE(std::isnan(mcp_bytes_for(records, "xMem", "Transformer")));
  EXPECT_EQ(models_in(records), (std::vector<std::string>{"A"}));
}

TEST(Metrics, UnsupportedRecordsAreExcluded) {
  std::vector<RunRecord> records;
  RunRecord r = base_record("cnn", "LLMem");
  r.supported = false;
  records.push_back(r);
  EXPECT_TRUE(std::isnan(pef_for(records, "cnn", "LLMem")));
  EXPECT_TRUE(std::isnan(mcp_bytes_for(records, "LLMem")));
  EXPECT_TRUE(errors_for(records, "cnn", "LLMem").empty());
}

// ---------- miniature end-to-end harness run ----------

class HarnessFixture : public ::testing::Test {
 protected:
  static const std::vector<RunRecord>& records() {
    static const std::vector<RunRecord> kRecords = [] {
      HarnessOptions options;
      options.repeats = 2;
      options.use_schedtune = false;  // keep the fixture fast
      options.use_llmem = true;
      EvalHarness harness(options);
      std::vector<RunRecord> out;
      std::vector<models::TrainConfig> grid;
      grid.push_back({"MobileNetV2", fw::OptimizerKind::kAdam, 200,
                      fw::ZeroGradPlacement::kPos1IterStart});
      grid.push_back({"distilgpt2", fw::OptimizerKind::kSgd, 10,
                      fw::ZeroGradPlacement::kPos1IterStart});
      grid.push_back({"pythia-1b", fw::OptimizerKind::kAdam, 8,
                      fw::ZeroGradPlacement::kPos1IterStart});  // true OOM
      harness.run_anova(grid, gpu::rtx3060(), out);
      return out;
    }();
    return kRecords;
  }
};

TEST_F(HarnessFixture, RecordCountMatchesGrid) {
  // 3 configs x 2 repeats x 3 estimators (xMem, DNNMem, LLMem).
  EXPECT_EQ(records().size(), 3u * 2u * 3u);
}

TEST_F(HarnessFixture, LLMemUnsupportedOnCnn) {
  for (const RunRecord& r : records()) {
    if (r.estimator == "LLMem" && r.config.model == "MobileNetV2") {
      EXPECT_FALSE(r.supported);
    }
  }
}

TEST_F(HarnessFixture, Round2OnlyWhenJustified) {
  for (const RunRecord& r : records()) {
    if (!r.supported) continue;
    if (r.round2_run) {
      EXPECT_FALSE(r.oom_actual_1);
      EXPECT_EQ(r.oom_predicted, r.oom_actual_1);
    }
    if (r.oom_actual_1) {
      EXPECT_FALSE(r.round2_run);
    }
  }
}

TEST_F(HarnessFixture, TrueOomIsDetectedAndPredictedByXmem) {
  bool saw_oom_config = false;
  for (const RunRecord& r : records()) {
    if (r.config.model == "pythia-1b" && r.estimator == "xMem") {
      saw_oom_config = true;
      EXPECT_TRUE(r.oom_actual_1);
      EXPECT_TRUE(r.oom_predicted);
      EXPECT_TRUE(r.c2);
      EXPECT_EQ(r.m_save, r.device_capacity);
    }
  }
  EXPECT_TRUE(saw_oom_config);
}

TEST_F(HarnessFixture, XmemBeatsDnnmemOnAdamConfig) {
  const double xmem = mre_for(records(), "MobileNetV2", "xMem");
  const double dnnmem = mre_for(records(), "MobileNetV2", "DNNMem");
  ASSERT_FALSE(std::isnan(xmem));
  ASSERT_FALSE(std::isnan(dnnmem));
  EXPECT_LT(xmem, dnnmem);
}

TEST_F(HarnessFixture, ReportsRenderWithoutCrashing) {
  const std::vector<std::string> estimators = {"xMem", "DNNMem", "LLMem"};
  EXPECT_NE(render_mre_boxplots(records(), estimators, "", "test").find("model"),
            std::string::npos);
  EXPECT_NE(render_quadrants(records(), estimators, "test").find("quadrant"),
            std::string::npos);
  EXPECT_NE(render_mcp_table(records(), estimators).find("Overall"),
            std::string::npos);
  EXPECT_NE(render_runtime_table(records(), estimators).find("xMem"),
            std::string::npos);
  EXPECT_NE(render_anova(records(), estimators).find("ANOVA"),
            std::string::npos);
  EXPECT_NE(render_headline(records(), estimators).find("estimator"),
            std::string::npos);
}

TEST(Harness, MonteCarloIsDeterministicPerSeed) {
  HarnessOptions options;
  options.repeats = 1;
  options.use_schedtune = false;
  options.use_llmem = false;
  options.use_dnnmem = false;
  options.seed = 123;

  auto run = [&options] {
    EvalHarness harness(options);
    std::vector<RunRecord> out;
    harness.run_monte_carlo({"MobileNetV2", "distilgpt2"},
                            {gpu::rtx3060(), gpu::rtx4060()}, 6, out);
    return out;
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].config.label(), b[i].config.label());
    EXPECT_EQ(a[i].estimate, b[i].estimate);
    EXPECT_EQ(a[i].peak_1, b[i].peak_1);
  }
}

}  // namespace
}  // namespace xmem::eval
