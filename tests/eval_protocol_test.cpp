// Deeper evaluation-protocol tests: the two-round validation semantics
// against hand-checkable scenarios, harness caching, ablation estimator
// wiring, Monte Carlo coverage, and whole-zoo estimate sanity at the
// smallest batch of every model.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <set>

#include "core/xmem_estimator.h"
#include "eval/harness.h"
#include "eval/metrics.h"
#include "gpu/ground_truth.h"
#include "models/zoo.h"
#include "util/bytes.h"

namespace xmem::eval {
namespace {

// ---------- harness wiring ----------

TEST(HarnessProtocol, AblationAddsSecondXmemEstimator) {
  HarnessOptions options;
  options.ablate_orchestrator = true;
  options.use_dnnmem = false;
  options.use_schedtune = false;
  options.use_llmem = false;
  EvalHarness harness(options);
  ASSERT_EQ(harness.estimator_names().size(), 2u);
  EXPECT_EQ(harness.estimator_names()[0], "xMem");
  EXPECT_EQ(harness.estimator_names()[1], "xMem-noOrch");
}

TEST(HarnessProtocol, EstimateIsCachedAcrossRepeats) {
  HarnessOptions options;
  options.repeats = 3;
  options.use_dnnmem = false;
  options.use_schedtune = false;
  options.use_llmem = false;
  EvalHarness harness(options);
  std::vector<models::TrainConfig> grid = {
      {"RegNetX400MF", fw::OptimizerKind::kAdam, 400,
       fw::ZeroGradPlacement::kPos1IterStart}};
  std::vector<RunRecord> records;
  harness.run_anova(grid, gpu::rtx3060(), records);
  ASSERT_EQ(records.size(), 3u);
  // Same deterministic estimate on every repeat; ground truth varies
  // (RegNet has many jittered conv workspaces relative to its peak).
  EXPECT_EQ(records[0].estimate, records[1].estimate);
  EXPECT_EQ(records[1].estimate, records[2].estimate);
  std::set<std::int64_t> peaks;
  for (const auto& r : records) peaks.insert(r.peak_1);
  EXPECT_GE(peaks.size(), 2u) << "repeats should see run-to-run jitter";
}

TEST(HarnessProtocol, MonteCarloCoversTheConfigurationSpace) {
  HarnessOptions options;
  options.use_dnnmem = false;
  options.use_schedtune = false;
  options.use_llmem = false;
  options.seed = 7;
  EvalHarness harness(options);
  std::vector<RunRecord> records;
  const std::vector<std::string> model_pool = {"MobileNetV2", "MnasNet",
                                               "distilgpt2", "T5-small"};
  harness.run_monte_carlo(model_pool, {gpu::rtx3060(), gpu::rtx4060()}, 40,
                          records);
  std::set<std::string> models_seen, devices_seen, placements_seen;
  for (const auto& r : records) {
    models_seen.insert(r.config.model);
    devices_seen.insert(r.device_name);
    placements_seen.insert(to_string(r.config.placement));
  }
  EXPECT_EQ(models_seen.size(), model_pool.size());
  EXPECT_EQ(devices_seen.size(), 2u);
  EXPECT_EQ(placements_seen.size(), 2u) << "POS0 and POS1 both sampled";
}

TEST(HarnessProtocol, RuntimeIsRecordedForEveryEstimator) {
  HarnessOptions options;
  options.repeats = 1;
  options.use_schedtune = false;
  EvalHarness harness(options);
  std::vector<models::TrainConfig> grid = {
      {"distilgpt2", fw::OptimizerKind::kSgd, 5,
       fw::ZeroGradPlacement::kPos1IterStart}};
  std::vector<RunRecord> records;
  harness.run_anova(grid, gpu::rtx3060(), records);
  for (const auto& r : records) {
    if (!r.supported) continue;
    EXPECT_GT(r.estimator_runtime, 0.0) << r.estimator;
  }
  // xMem (profiling + JSON + analysis) costs more than DNNMem (graph walk).
  EXPECT_GT(mean_runtime_for(records, "xMem"),
            mean_runtime_for(records, "DNNMem"));
}

// ---------- protocol semantics on a controlled boundary ----------

TEST(HarnessProtocol, OverestimatePassesRound2) {
  // An estimate safely above the real need must pass the capped rerun: the
  // direct "can the estimate be used as a safe limit" semantics.
  const fw::ModelDescriptor model = models::build_model("MobileNetV2", 300);
  gpu::GroundTruthRunner runner;
  gpu::GroundTruthOptions full;
  full.seed = 5;
  const auto round1 = runner.run(model, fw::OptimizerKind::kAdam,
                                 gpu::rtx3060(), full);
  ASSERT_FALSE(round1.oom);
  gpu::GroundTruthOptions capped = full;
  capped.seed = 6;
  capped.budget_override = round1.peak_job_bytes * 11 / 10;  // +10%
  const auto round2 = runner.run(model, fw::OptimizerKind::kAdam,
                                 gpu::rtx3060(), capped);
  EXPECT_FALSE(round2.oom);
}

TEST(HarnessProtocol, GrossUnderestimateFailsRound2) {
  const fw::ModelDescriptor model = models::build_model("MobileNetV2", 300);
  gpu::GroundTruthRunner runner;
  gpu::GroundTruthOptions full;
  full.seed = 5;
  const auto round1 = runner.run(model, fw::OptimizerKind::kAdam,
                                 gpu::rtx3060(), full);
  ASSERT_FALSE(round1.oom);
  gpu::GroundTruthOptions capped = full;
  capped.budget_override = round1.peak_job_bytes * 7 / 10;  // -30%
  const auto round2 = runner.run(model, fw::OptimizerKind::kAdam,
                                 gpu::rtx3060(), capped);
  EXPECT_TRUE(round2.oom);
}

TEST(HarnessProtocol, CapAtExactPeakSucceeds) {
  // A cap exactly at the observed NVML peak must admit the same run: the
  // estimate-as-safe-limit semantics behind PEF. (Whether a *slightly*
  // lower cap survives depends on how much cached, unsplit segment space
  // exists at the peak instant — the reclamation chain is exercised
  // deterministically in core_simulator_test and alloc_test.)
  const fw::ModelDescriptor model = models::build_model("gpt2", 10);
  gpu::GroundTruthRunner runner;
  gpu::GroundTruthOptions full;
  full.seed = 5;
  const auto round1 =
      runner.run(model, fw::OptimizerKind::kSgd, gpu::rtx3060(), full);
  ASSERT_FALSE(round1.oom);
  gpu::GroundTruthOptions capped = full;  // same seed: same demand sequence
  capped.budget_override = round1.peak_job_bytes;
  const auto round2 =
      runner.run(model, fw::OptimizerKind::kSgd, gpu::rtx3060(), capped);
  EXPECT_FALSE(round2.oom);
}

// ---------- whole-zoo estimate sanity (smallest batch, SGD) ----------

class ZooEstimate : public ::testing::TestWithParam<std::string> {};

TEST_P(ZooEstimate, SmallestBatchSgdWithinTolerance) {
  const std::string model_name = GetParam();
  const int batch = models::batch_grid_for(model_name).front();
  core::TrainJob job;
  job.model_name = model_name;
  job.batch_size = batch;
  job.optimizer = fw::OptimizerKind::kSgd;
  job.seed = 9;

  const gpu::DeviceModel device = gpu::a100_40gb();  // fits even pythia/Qwen
  const fw::ModelDescriptor model = models::build_model(model_name, batch);
  gpu::GroundTruthRunner runner;
  gpu::GroundTruthOptions options;
  options.seed = 9;
  const auto truth = runner.run(model, job.optimizer, device, options);
  ASSERT_FALSE(truth.oom) << model_name;

  core::XMemEstimator estimator;
  const auto estimate = estimator.estimate(job, device);
  const double error =
      std::abs(static_cast<double>(estimate.estimated_peak -
                                   truth.peak_job_bytes)) /
      static_cast<double>(truth.peak_job_bytes);
  // Per-config tails for eager-attention models at tiny batches reach
  // ~18% (one vocabulary-sized segment of fragmentation divergence against
  // a small peak) — consistent with the paper's whiskers; medians across
  // the grid are pinned far tighter by the fig07 bench.
  EXPECT_LT(error, 0.20) << model_name << ": "
                         << util::format_bytes(estimate.estimated_peak)
                         << " vs "
                         << util::format_bytes(truth.peak_job_bytes);
  // Params + gradients are a hard floor for any training job.
  EXPECT_GE(truth.peak_job_bytes, 2 * model.param_bytes());
}

INSTANTIATE_TEST_SUITE_P(
    Rq14Models, ZooEstimate,
    ::testing::ValuesIn([] {
      std::vector<std::string> names = models::cnn_model_names();
      for (const auto& n : models::transformer_model_names()) {
        names.push_back(n);
      }
      return names;
    }()),
    [](const auto& param_info) {
      std::string name = param_info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace xmem::eval
