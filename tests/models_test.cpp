// Model-zoo tests: parameter counts against published sizes, structural
// sanity, and workload-grid coverage (Table 2).
#include <gtest/gtest.h>

#include <map>

#include "models/workload.h"
#include "models/zoo.h"
#include "util/bytes.h"

namespace xmem::models {
namespace {

using fw::ModelDescriptor;
using fw::ModelFamily;

TEST(Zoo, TwentyFiveModels) {
  EXPECT_EQ(cnn_model_names().size(), 12u);
  EXPECT_EQ(transformer_model_names().size(), 10u);
  EXPECT_EQ(rq5_model_names().size(), 3u);
  EXPECT_EQ(all_model_names().size(), 25u);
  for (const auto& name : all_model_names()) {
    EXPECT_TRUE(is_known_model(name)) << name;
  }
  EXPECT_FALSE(is_known_model("AlexNet"));
  EXPECT_THROW(build_model("AlexNet", 8), std::invalid_argument);
  EXPECT_THROW(build_model("gpt2", 0), std::invalid_argument);
}

// Published parameter counts (millions). Transformers are input-independent
// so they should match closely; CNN counts are architecture-derived at the
// 32x32/100-class scale (VGG's flatten-dependent classifier shrinks, the
// rest match their torchvision sizes).
struct ParamExpectation {
  const char* name;
  double millions;
  double tolerance;  // relative
};

class ParamCount : public ::testing::TestWithParam<ParamExpectation> {};

TEST_P(ParamCount, MatchesPublishedSize) {
  const ParamExpectation expected = GetParam();
  const ModelDescriptor model = build_model(expected.name, 1);
  const double actual =
      static_cast<double>(model.param_count()) / 1e6;
  EXPECT_NEAR(actual, expected.millions, expected.millions * expected.tolerance)
      << expected.name << " has " << actual << "M parameters";
}

INSTANTIATE_TEST_SUITE_P(
    Transformers, ParamCount,
    ::testing::Values(ParamExpectation{"distilgpt2", 82, 0.10},
                      ParamExpectation{"gpt2", 124, 0.10},
                      ParamExpectation{"gpt-neo-125M", 125, 0.10},
                      ParamExpectation{"opt-125m", 125, 0.12},
                      ParamExpectation{"opt-350m", 331, 0.12},
                      ParamExpectation{"Cerebras-GPT-111M", 111, 0.10},
                      ParamExpectation{"pythia-1b", 1011, 0.10},
                      ParamExpectation{"Qwen3-0.6B", 600, 0.15},
                      ParamExpectation{"T5-small", 60, 0.25},
                      ParamExpectation{"t5-base", 223, 0.25}));

INSTANTIATE_TEST_SUITE_P(
    Rq5Models, ParamCount,
    ::testing::Values(ParamExpectation{"Llama-3.2-3B-Instruct", 3212, 0.12},
                      ParamExpectation{"DeepSeek-R1-Distill-Qwen-1.5B", 1540,
                                       0.15},
                      ParamExpectation{"Qwen3-4B", 4020, 0.12}));

INSTANTIATE_TEST_SUITE_P(
    Cnns, ParamCount,
    ::testing::Values(ParamExpectation{"ResNet101", 44.5, 0.12},
                      ParamExpectation{"ResNet152", 60.2, 0.12},
                      // Published sizes include a 1000-class ImageNet head; at this
                      // zoo's CIFAR head (100 classes) the expected counts
                      // shrink by the head delta (see EXPERIMENTS.md).
                      ParamExpectation{"MobileNetV2", 2.35, 0.10},
                      ParamExpectation{"MobileNetV3Large", 3.09, 0.10},
                      ParamExpectation{"MobileNetV3Small", 1.25, 0.10},
                      ParamExpectation{"MnasNet", 3.7, 0.15},
                      ParamExpectation{"ConvNeXtTiny", 28.6, 0.15},
                      ParamExpectation{"ConvNeXtBase", 88.6, 0.15},
                      ParamExpectation{"RegNetX400MF", 5.2, 0.35},
                      ParamExpectation{"RegNetY400MF", 5.9, 0.15}));

class EveryModel : public ::testing::TestWithParam<std::string> {};

TEST_P(EveryModel, BuildsWithSaneStructure) {
  const ModelDescriptor model = build_model(GetParam(), 4);
  EXPECT_EQ(model.name, GetParam());
  EXPECT_EQ(model.batch_size, 4);
  EXPECT_GT(model.modules.size(), 3u);
  EXPECT_GT(model.param_bytes(), 0);
  EXPECT_GT(model.input_bytes, 0);
  EXPECT_GT(model.target_bytes, 0);
  // Loss module must close the graph.
  EXPECT_EQ(model.modules.back().kind, "CrossEntropyLoss");
  // Every op has non-negative sizes and param-grad owners have params.
  for (const auto& module : model.modules) {
    for (const auto& op : module.ops) {
      EXPECT_GE(op.output_bytes, 0);
      EXPECT_GE(op.workspace_cpu, 0);
      EXPECT_GE(op.workspace_gpu, 0);
      if (op.allocates_param_grads) {
        EXPECT_FALSE(module.params.empty())
            << module.name << "/" << op.name;
      }
    }
  }
}

TEST_P(EveryModel, ActivationsScaleWithBatch) {
  const ModelDescriptor b4 = build_model(GetParam(), 4);
  const ModelDescriptor b8 = build_model(GetParam(), 8);
  // Parameters are batch-independent; saved activations roughly double.
  EXPECT_EQ(b4.param_bytes(), b8.param_bytes());
  const auto saved4 = b4.saved_activation_bytes(fw::Backend::kCuda);
  const auto saved8 = b8.saved_activation_bytes(fw::Backend::kCuda);
  EXPECT_GT(saved8, saved4 * 3 / 2);
  EXPECT_LE(saved8, saved4 * 3);
  EXPECT_EQ(b8.input_bytes, 2 * b4.input_bytes);
}

INSTANTIATE_TEST_SUITE_P(All, EveryModel,
                         ::testing::ValuesIn(all_model_names()),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(Zoo, FamiliesAreCorrect) {
  for (const auto& name : cnn_model_names()) {
    EXPECT_EQ(build_model(name, 1).family, ModelFamily::kCnn) << name;
  }
  for (const auto& name : transformer_model_names()) {
    EXPECT_EQ(build_model(name, 1).family, ModelFamily::kTransformer) << name;
  }
}

TEST(Zoo, AttentionImplementationFollowsTableYear) {
  // Pre-2022 models use eager attention (softmax probabilities saved);
  // 2022+ models use fused SDPA.
  auto has_sdpa = [](const ModelDescriptor& m) {
    for (const auto& module : m.modules) {
      for (const auto& op : module.ops) {
        if (op.name == "aten::scaled_dot_product_attention") return true;
      }
    }
    return false;
  };
  EXPECT_FALSE(has_sdpa(build_model("gpt2", 2)));
  EXPECT_FALSE(has_sdpa(build_model("T5-small", 2)));
  EXPECT_TRUE(has_sdpa(build_model("Qwen3-0.6B", 2)));
  EXPECT_TRUE(has_sdpa(build_model("pythia-1b", 2)));
  EXPECT_TRUE(has_sdpa(build_model("opt-125m", 2)));
}

TEST(Zoo, EagerAttentionSavesQuadraticProbabilities) {
  const ModelDescriptor model = build_model("gpt2", 2);
  bool found = false;
  const std::int64_t score_bytes = 2 * 12 * 512 * 512 * 4;  // B h S S f32
  for (const auto& module : model.modules) {
    for (const auto& op : module.ops) {
      if (op.name == "aten::_softmax" && op.output_bytes == score_bytes) {
        EXPECT_TRUE(op.output_saved);
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(Zoo, CnnSpatialDimsShrinkToOne) {
  // The classifier's pooled features must be channels x 1 x 1: the global
  // pool op's output equals batch * channels * 4 bytes.
  const ModelDescriptor model = build_model("ResNet101", 10);
  const fw::ModuleSpec* pool = nullptr;
  for (const auto& module : model.modules) {
    if (module.kind == "AdaptiveAvgPool2d") pool = &module;
  }
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->ops[0].output_bytes, 10 * 2048 * 4);  // ResNet C5 = 2048
}

// ---------- workload grids (Table 2) ----------

TEST(Workload, OptimizerSets) {
  EXPECT_EQ(cnn_optimizers().size(), 5u);
  EXPECT_EQ(transformer_optimizers().size(), 4u);
  EXPECT_EQ(optimizers_for("VGG16").size(), 5u);
  EXPECT_EQ(optimizers_for("gpt2").size(), 4u);
  // RQ5: only the optimizers that never OOM on the A100.
  EXPECT_EQ(optimizers_for("Qwen3-4B").size(), 2u);
  EXPECT_THROW(optimizers_for("nope"), std::invalid_argument);
}

TEST(Workload, BatchGrids) {
  EXPECT_EQ(batch_grid_for("VGG16"),
            (std::vector<int>{200, 300, 400, 500, 600, 700}));
  EXPECT_EQ(batch_grid_for("gpt2").front(), 5);
  EXPECT_EQ(batch_grid_for("gpt2").back(), 55);
  EXPECT_EQ(batch_grid_for("gpt2").size(), 11u);
  // High-parameter models use the small grid.
  EXPECT_EQ(batch_grid_for("Qwen3-0.6B"), (std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8}));
  EXPECT_EQ(batch_grid_for("pythia-1b").size(), 8u);
  EXPECT_EQ(batch_grid_for("Llama-3.2-3B-Instruct"), (std::vector<int>{1}));
}

TEST(Workload, AnovaGridSizeMatchesPaperScale) {
  // CNNs: 12 x 5 x 6 = 360; Transformers: 8 x 4 x 11 + 2 x 4 x 8 = 416.
  EXPECT_EQ(anova_grid(cnn_model_names()).size(), 360u);
  EXPECT_EQ(anova_grid(transformer_model_names()).size(), 416u);
  // x5 repeats = 3880 runs, matching the paper's "3903 runs" order.
  EXPECT_NEAR((360 + 416) * 5, 3903, 100);
}

TEST(Workload, ConfigLabelsAreUnique) {
  std::map<std::string, int> seen;
  for (const auto& config : anova_grid(all_model_names())) {
    seen[config.label()] += 1;
  }
  for (const auto& [label, count] : seen) EXPECT_EQ(count, 1) << label;
}

}  // namespace
}  // namespace xmem::models
