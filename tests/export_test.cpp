// CSV export and pairwise-comparison rendering.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "eval/export.h"
#include "util/bytes.h"

namespace xmem::eval {
namespace {

RunRecord sample_record(const std::string& model, const std::string& estimator,
                        double error) {
  RunRecord r;
  r.config.model = model;
  r.config.optimizer = fw::OptimizerKind::kAdamW;
  r.config.batch_size = 8;
  r.device_name = "GeForce RTX 3060";
  r.estimator = estimator;
  r.supported = true;
  r.estimate = 123456789;
  r.peak_1 = 120000000;
  r.has_error = true;
  r.error = error;
  r.c1 = true;
  r.c2 = true;
  r.m_save = 5 * util::kGiB;
  r.estimator_runtime = 0.0123;
  return r;
}

TEST(CsvExport, HeaderAndRowShape) {
  const std::string csv = to_csv({sample_record("gpt2", "xMem", 0.01)});
  std::istringstream lines(csv);
  std::string header, row, extra;
  ASSERT_TRUE(std::getline(lines, header));
  ASSERT_TRUE(std::getline(lines, row));
  EXPECT_FALSE(std::getline(lines, extra));
  // Same column count in header and row.
  const auto count_commas = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  EXPECT_EQ(count_commas(header), count_commas(row));
  EXPECT_NE(header.find("estimate_bytes"), std::string::npos);
  EXPECT_NE(row.find("gpt2,AdamW,8,POS1"), std::string::npos);
  EXPECT_NE(row.find("123456789"), std::string::npos);
}

TEST(CsvExport, QuotesAwkwardValues) {
  RunRecord r = sample_record("weird,model\"name", "xMem", 0.5);
  const std::string csv = to_csv({r});
  EXPECT_NE(csv.find("\"weird,model\"\"name\""), std::string::npos);
}

TEST(CsvExport, EmptyRecordsGiveHeaderOnly) {
  const std::string csv = to_csv({});
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 1);
}

TEST(CsvExport, WriteCsvRoundTrip) {
  const std::string path = ::testing::TempDir() + "/xmem_records.csv";
  write_csv({sample_record("gpt2", "xMem", 0.02),
             sample_record("VGG16", "DNNMem", 0.2)},
            path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(std::count(content.begin(), content.end(), '\n'), 3);
  std::remove(path.c_str());
  EXPECT_THROW(write_csv({}, "/nonexistent-dir/x.csv"), std::runtime_error);
}

TEST(PairwiseComparisons, SeparatedDistributionsAreSignificant) {
  std::vector<RunRecord> records;
  for (int i = 0; i < 30; ++i) {
    records.push_back(sample_record("m", "xMem", 0.01 + 0.001 * i));
    records.push_back(sample_record("m", "DNNMem", 0.20 + 0.002 * i));
  }
  const std::string report =
      render_pairwise_comparisons(records, {"xMem", "DNNMem"});
  EXPECT_NE(report.find("xMem"), std::string::npos);
  EXPECT_NE(report.find("vs"), std::string::npos);
  // p value should be tiny for such separated groups.
  EXPECT_NE(report.find("p = "), std::string::npos);
  EXPECT_EQ(report.find("p = 1 "), std::string::npos);
}

TEST(PairwiseComparisons, SkipsEmptyGroups) {
  std::vector<RunRecord> records = {sample_record("m", "xMem", 0.01)};
  const std::string report =
      render_pairwise_comparisons(records, {"xMem", "Ghost"});
  EXPECT_EQ(report.find("Ghost"), std::string::npos);
}

}  // namespace
}  // namespace xmem::eval
