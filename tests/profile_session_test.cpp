// ProfileSession tests: direct coverage of the profile-once cache, beyond
// what service_test exercises through the EstimationService.
//
//   * the LRU evicts at capacity and an evicted key re-profiles (misses —
//     i.e. profiles actually run — go up again);
//   * in-flight deduplication: N threads racing the same cold key run ONE
//     profile and all observe the same artifacts;
//   * distinct keys do not dedup against each other;
//   * cache keys distinguish every field that changes the orchestrated
//     sequence.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/profile_session.h"
#include "core/xmem_estimator.h"

namespace xmem {
namespace {

core::ProfileKey key_for_batch(int batch) {
  core::TrainJob job;
  job.model_name = "distilgpt2";
  job.batch_size = batch;
  job.optimizer = fw::OptimizerKind::kAdamW;
  job.seed = 7;
  core::XMemEstimator key_builder;
  return key_builder.profile_key(job);
}

TEST(ProfileSessionLru, EvictsAtCapacityAndReprofilesEvictedKeys) {
  core::ProfileSession session(/*capacity=*/2);

  session.get(key_for_batch(1));
  session.get(key_for_batch(2));
  EXPECT_EQ(session.size(), 2u);
  EXPECT_EQ(session.misses(), 2u);

  session.get(key_for_batch(3));  // evicts batch=1 (least recently used)
  EXPECT_EQ(session.size(), 2u);
  EXPECT_EQ(session.misses(), 3u);

  // Resident keys are hits and refresh recency.
  session.get(key_for_batch(2));
  EXPECT_EQ(session.hits(), 1u);

  // The evicted key is gone: asking again re-runs the profile.
  const auto relookup = session.get(key_for_batch(1));
  EXPECT_FALSE(relookup.cache_hit);
  EXPECT_EQ(session.misses(), 4u);
  // batch=2 was touched above, so batch=3 was the eviction victim now.
  session.get(key_for_batch(2));
  EXPECT_EQ(session.hits(), 2u);
}

TEST(ProfileSessionLru, RecencyNotInsertionOrderDecidesTheVictim) {
  core::ProfileSession session(/*capacity=*/2);
  session.get(key_for_batch(1));
  session.get(key_for_batch(2));
  session.get(key_for_batch(1));  // bump 1: now 2 is least recent
  session.get(key_for_batch(3));  // must evict 2, not 1
  EXPECT_EQ(session.misses(), 3u);
  session.get(key_for_batch(1));
  EXPECT_EQ(session.hits(), 2u);  // still resident
  session.get(key_for_batch(2));
  EXPECT_EQ(session.misses(), 4u);  // was evicted: re-profiled
}

TEST(ProfileSessionDedup, ConcurrentRequestsForOneKeyRunOneProfile) {
  core::ProfileSession session;
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const core::ProfileArtifacts>> artifacts(
      kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&session, &artifacts, i] {
      artifacts[static_cast<std::size_t>(i)] =
          session.get(key_for_batch(4)).artifacts;
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Exactly one CPU profile ran; whoever arrived mid-profile blocked on the
  // shared future instead of profiling again.
  EXPECT_EQ(session.misses(), 1u);
  EXPECT_EQ(session.hits() + session.misses(),
            static_cast<std::uint64_t>(kThreads));
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(artifacts[static_cast<std::size_t>(i)].get(),
              artifacts[0].get());
  }
  ASSERT_NE(artifacts[0], nullptr);
  EXPECT_FALSE(artifacts[0]->analysis.timeline.blocks.empty());
}

TEST(ProfileSessionDedup, DistinctKeysDoNotDedupAgainstEachOther) {
  core::ProfileSession session;
  constexpr int kKeys = 4;
  std::vector<std::thread> threads;
  threads.reserve(kKeys);
  for (int i = 0; i < kKeys; ++i) {
    threads.emplace_back(
        [&session, i] { session.get(key_for_batch(i + 1)); });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(session.misses(), static_cast<std::uint64_t>(kKeys));
  EXPECT_EQ(session.hits(), 0u);
  EXPECT_EQ(session.size(), static_cast<std::size_t>(kKeys));
}

TEST(ProfileSessionCacheKeys, DistinguishEveryPipelineInput) {
  // Two keys that differ in any sequence-changing field must never share a
  // cache slot.
  std::set<std::string> cache_strings;
  core::ProfileKey base = key_for_batch(2);
  cache_strings.insert(base.cache_string());

  core::ProfileKey variant = base;
  variant.batch_size = 3;
  cache_strings.insert(variant.cache_string());

  variant = base;
  variant.optimizer = fw::OptimizerKind::kSgd;
  cache_strings.insert(variant.cache_string());

  variant = base;
  variant.placement = fw::ZeroGradPlacement::kPos0BeforeBackward;
  cache_strings.insert(variant.cache_string());

  variant = base;
  variant.seed = 99;
  cache_strings.insert(variant.cache_string());

  variant = base;
  variant.profile_iterations = 5;
  cache_strings.insert(variant.cache_string());

  variant = base;
  variant.orchestrator_config.rule_gradients = false;
  cache_strings.insert(variant.cache_string());

  variant = base;
  variant.json_round_trip = false;
  cache_strings.insert(variant.cache_string());

  EXPECT_EQ(cache_strings.size(), 8u);
}

TEST(ProfileSessionLru, ZeroCapacityIsClampedToOne) {
  core::ProfileSession session(/*capacity=*/0);
  EXPECT_EQ(session.capacity(), 1u);
  session.get(key_for_batch(1));
  session.get(key_for_batch(2));
  EXPECT_EQ(session.size(), 1u);
  EXPECT_EQ(session.misses(), 2u);
}

TEST(ProfileSessionLru, HitsServeTheIdenticalArtifacts) {
  core::ProfileSession session;
  const auto first = session.get(key_for_batch(5));
  const auto second = session.get(key_for_batch(5));
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(first.artifacts.get(), second.artifacts.get());
}

}  // namespace
}  // namespace xmem
