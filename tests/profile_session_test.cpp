// ProfileSession tests: direct coverage of the profile-once cache, beyond
// what service_test exercises through the EstimationService.
//
//   * the LRU evicts at capacity and an evicted key re-profiles (misses —
//     i.e. profiles actually run — go up again);
//   * in-flight deduplication: N threads racing the same cold key run ONE
//     profile and all observe the same artifacts;
//   * distinct keys do not dedup against each other;
//   * cache keys distinguish every field that changes the orchestrated
//     sequence;
//   * per-tenant quotas (SessionQuota): a tenant saturating its share
//     self-evicts its own entries (soft) or is rejected with an actionable
//     QuotaExceededError (hard) — and can never evict another tenant's
//     entries through the quota path.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/profile_session.h"
#include "core/xmem_estimator.h"

namespace xmem {
namespace {

core::ProfileKey key_for_batch(int batch) {
  core::TrainJob job;
  job.model_name = "distilgpt2";
  job.batch_size = batch;
  job.optimizer = fw::OptimizerKind::kAdamW;
  job.seed = 7;
  core::XMemEstimator key_builder;
  return key_builder.profile_key(job);
}

TEST(ProfileSessionLru, EvictsAtCapacityAndReprofilesEvictedKeys) {
  core::ProfileSession session(/*capacity=*/2);

  session.get(key_for_batch(1));
  session.get(key_for_batch(2));
  EXPECT_EQ(session.size(), 2u);
  EXPECT_EQ(session.misses(), 2u);

  session.get(key_for_batch(3));  // evicts batch=1 (least recently used)
  EXPECT_EQ(session.size(), 2u);
  EXPECT_EQ(session.misses(), 3u);

  // Resident keys are hits and refresh recency.
  session.get(key_for_batch(2));
  EXPECT_EQ(session.hits(), 1u);

  // The evicted key is gone: asking again re-runs the profile.
  const auto relookup = session.get(key_for_batch(1));
  EXPECT_FALSE(relookup.cache_hit);
  EXPECT_EQ(session.misses(), 4u);
  // batch=2 was touched above, so batch=3 was the eviction victim now.
  session.get(key_for_batch(2));
  EXPECT_EQ(session.hits(), 2u);
}

TEST(ProfileSessionLru, RecencyNotInsertionOrderDecidesTheVictim) {
  core::ProfileSession session(/*capacity=*/2);
  session.get(key_for_batch(1));
  session.get(key_for_batch(2));
  session.get(key_for_batch(1));  // bump 1: now 2 is least recent
  session.get(key_for_batch(3));  // must evict 2, not 1
  EXPECT_EQ(session.misses(), 3u);
  session.get(key_for_batch(1));
  EXPECT_EQ(session.hits(), 2u);  // still resident
  session.get(key_for_batch(2));
  EXPECT_EQ(session.misses(), 4u);  // was evicted: re-profiled
}

TEST(ProfileSessionDedup, ConcurrentRequestsForOneKeyRunOneProfile) {
  core::ProfileSession session;
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const core::ProfileArtifacts>> artifacts(
      kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&session, &artifacts, i] {
      artifacts[static_cast<std::size_t>(i)] =
          session.get(key_for_batch(4)).artifacts;
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Exactly one CPU profile ran; whoever arrived mid-profile blocked on the
  // shared future instead of profiling again.
  EXPECT_EQ(session.misses(), 1u);
  EXPECT_EQ(session.hits() + session.misses(),
            static_cast<std::uint64_t>(kThreads));
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(artifacts[static_cast<std::size_t>(i)].get(),
              artifacts[0].get());
  }
  ASSERT_NE(artifacts[0], nullptr);
  EXPECT_FALSE(artifacts[0]->analysis.timeline.blocks.empty());
}

TEST(ProfileSessionDedup, DistinctKeysDoNotDedupAgainstEachOther) {
  core::ProfileSession session;
  constexpr int kKeys = 4;
  std::vector<std::thread> threads;
  threads.reserve(kKeys);
  for (int i = 0; i < kKeys; ++i) {
    threads.emplace_back(
        [&session, i] { session.get(key_for_batch(i + 1)); });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(session.misses(), static_cast<std::uint64_t>(kKeys));
  EXPECT_EQ(session.hits(), 0u);
  EXPECT_EQ(session.size(), static_cast<std::size_t>(kKeys));
}

TEST(ProfileSessionCacheKeys, DistinguishEveryPipelineInput) {
  // Two keys that differ in any sequence-changing field must never share a
  // cache slot.
  std::set<std::string> cache_strings;
  core::ProfileKey base = key_for_batch(2);
  cache_strings.insert(base.cache_string());

  core::ProfileKey variant = base;
  variant.batch_size = 3;
  cache_strings.insert(variant.cache_string());

  variant = base;
  variant.optimizer = fw::OptimizerKind::kSgd;
  cache_strings.insert(variant.cache_string());

  variant = base;
  variant.placement = fw::ZeroGradPlacement::kPos0BeforeBackward;
  cache_strings.insert(variant.cache_string());

  variant = base;
  variant.seed = 99;
  cache_strings.insert(variant.cache_string());

  variant = base;
  variant.profile_iterations = 5;
  cache_strings.insert(variant.cache_string());

  variant = base;
  variant.orchestrator_config.rule_gradients = false;
  cache_strings.insert(variant.cache_string());

  variant = base;
  variant.json_round_trip = false;
  cache_strings.insert(variant.cache_string());

  EXPECT_EQ(cache_strings.size(), 8u);
}

TEST(ProfileSessionLru, ZeroCapacityIsClampedToOne) {
  core::ProfileSession session(/*capacity=*/0);
  EXPECT_EQ(session.capacity(), 1u);
  session.get(key_for_batch(1));
  session.get(key_for_batch(2));
  EXPECT_EQ(session.size(), 1u);
  EXPECT_EQ(session.misses(), 2u);
}

TEST(ProfileSessionLru, HitsServeTheIdenticalArtifacts) {
  core::ProfileSession session;
  const auto first = session.get(key_for_batch(5));
  const auto second = session.get(key_for_batch(5));
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(first.artifacts.get(), second.artifacts.get());
}

TEST(ProfileSessionQuota, SoftQuotaEvictsTheTenantsOwnEntriesOnly) {
  core::SessionQuota quota;
  quota.max_resident_per_tenant = 2;
  core::ProfileSession session(/*capacity=*/8, quota);

  session.get(key_for_batch(1), "alice");
  session.get(key_for_batch(2), "alice");
  session.get(key_for_batch(3), "bob");
  EXPECT_EQ(session.tenant_resident("alice"), 2u);
  EXPECT_EQ(session.tenant_resident("bob"), 1u);

  // Alice is at her limit: her next cold key evicts HER least-recently-used
  // entry (batch 1), never Bob's — even though the global LRU has room.
  session.get(key_for_batch(4), "alice");
  EXPECT_EQ(session.tenant_resident("alice"), 2u);
  EXPECT_EQ(session.tenant_resident("bob"), 1u);
  EXPECT_EQ(session.quota_evictions(), 1u);
  EXPECT_EQ(session.size(), 3u);

  // Bob's entry survived Alice's saturation: re-asking is a hit.
  const std::uint64_t hits_before = session.hits();
  EXPECT_TRUE(session.get(key_for_batch(3), "bob").cache_hit);
  EXPECT_EQ(session.hits(), hits_before + 1);

  // Alice's evicted key is cold again; her resident keys are hits.
  EXPECT_TRUE(session.get(key_for_batch(2), "alice").cache_hit);
  EXPECT_FALSE(session.get(key_for_batch(1), "alice").cache_hit);
}

TEST(ProfileSessionQuota, HardQuotaRejectsNamingTenantAndLimit) {
  core::SessionQuota quota;
  quota.max_resident_per_tenant = 1;
  quota.reject_over_quota = true;
  core::ProfileSession session(/*capacity=*/8, quota);

  session.get(key_for_batch(1), "alice");
  try {
    session.get(key_for_batch(2), "alice");
    FAIL() << "expected QuotaExceededError";
  } catch (const core::QuotaExceededError& error) {
    EXPECT_EQ(error.tenant(), "alice");
    EXPECT_EQ(error.limit(), 1u);
    const std::string message = error.what();
    EXPECT_NE(message.find("alice"), std::string::npos) << message;
    EXPECT_NE(message.find('1'), std::string::npos) << message;
  }
  EXPECT_EQ(session.quota_rejections(), 1u);

  // The rejection left no residue: Alice's resident entry still serves
  // hits, and another tenant profiles the rejected key unimpeded.
  EXPECT_TRUE(session.get(key_for_batch(1), "alice").cache_hit);
  EXPECT_FALSE(session.get(key_for_batch(2), "bob").cache_hit);
  EXPECT_EQ(session.tenant_resident("alice"), 1u);
  EXPECT_EQ(session.tenant_resident("bob"), 1u);
}

TEST(ProfileSessionQuota, HitsOnAnotherTenantsEntryAreFreeAtTheLimit) {
  core::SessionQuota quota;
  quota.max_resident_per_tenant = 1;
  quota.reject_over_quota = true;
  core::ProfileSession session(/*capacity=*/8, quota);

  session.get(key_for_batch(1), "alice");
  session.get(key_for_batch(2), "bob");  // bob now at his limit
  // A hit costs no residency, so bob reading alice's entry must not throw.
  EXPECT_TRUE(session.get(key_for_batch(1), "bob").cache_hit);
  EXPECT_EQ(session.quota_rejections(), 0u);
  EXPECT_EQ(session.tenant_resident("bob"), 1u);
}

TEST(ProfileSessionQuota, UntenantedRequestsAreExempt) {
  core::SessionQuota quota;
  quota.max_resident_per_tenant = 1;
  quota.reject_over_quota = true;
  core::ProfileSession session(/*capacity=*/8, quota);

  // No tenant name: the quota never applies, hard mode or not.
  session.get(key_for_batch(1));
  session.get(key_for_batch(2));
  session.get(key_for_batch(3));
  EXPECT_EQ(session.quota_rejections(), 0u);
  EXPECT_EQ(session.quota_evictions(), 0u);
  EXPECT_EQ(session.size(), 3u);
  const auto by_tenant = session.resident_by_tenant();
  ASSERT_EQ(by_tenant.size(), 1u);
  EXPECT_EQ(by_tenant.at(""), 3u);
}

}  // namespace
}  // namespace xmem
