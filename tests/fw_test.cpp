// Tests for the framework substrate: optimizers, CPU heap model, profiler,
// and the training executor's memory behaviour on both backends.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "fw/cpu_alloc_sim.h"
#include "fw/executor.h"
#include "fw/memory_env.h"
#include "fw/optimizer.h"
#include "fw/profiler.h"
#include "models/zoo.h"
#include "util/bytes.h"

namespace xmem::fw {
namespace {

using trace::EventKind;

// ---------- optimizer state models ----------

TEST(Optimizer, StateShapes) {
  const TensorDesc weight({512, 256});
  EXPECT_TRUE(optimizer_state_for_param(OptimizerKind::kSgd, weight).empty());
  EXPECT_EQ(optimizer_state_for_param(OptimizerKind::kAdam, weight).size(), 2u);
  EXPECT_EQ(optimizer_state_for_param(OptimizerKind::kAdamW, weight).size(), 2u);
  EXPECT_EQ(optimizer_state_for_param(OptimizerKind::kRmsprop, weight).size(), 1u);
  EXPECT_EQ(optimizer_state_for_param(OptimizerKind::kAdagrad, weight).size(), 1u);
}

TEST(Optimizer, AdamStateBytesAreTwiceParam) {
  const TensorDesc weight({1000, 1000});
  EXPECT_EQ(total_optimizer_state_bytes(OptimizerKind::kAdam, {weight}),
            2 * weight.bytes());
}

TEST(Optimizer, AdafactorFactorsMatrices) {
  const TensorDesc matrix({4096, 1024});
  const auto states =
      optimizer_state_for_param(OptimizerKind::kAdafactor, matrix);
  ASSERT_EQ(states.size(), 2u);
  EXPECT_EQ(states[0].bytes() + states[1].bytes(), (4096 + 1024) * 4);
  // Far smaller than Adam's 2 * param.
  EXPECT_LT(total_optimizer_state_bytes(OptimizerKind::kAdafactor, {matrix}),
            matrix.bytes() / 100);
}

TEST(Optimizer, AdafactorFallsBackForVectors) {
  const TensorDesc bias({768});
  const auto states = optimizer_state_for_param(OptimizerKind::kAdafactor, bias);
  ASSERT_EQ(states.size(), 1u);
  EXPECT_EQ(states[0].bytes(), bias.bytes());
}

TEST(Optimizer, Statefulness) {
  EXPECT_FALSE(optimizer_is_stateful(OptimizerKind::kSgd));
  for (const auto kind : {OptimizerKind::kAdam, OptimizerKind::kAdamW,
                          OptimizerKind::kRmsprop, OptimizerKind::kAdagrad,
                          OptimizerKind::kAdafactor}) {
    EXPECT_TRUE(optimizer_is_stateful(kind));
  }
}

TEST(Optimizer, NamesRoundTrip) {
  for (const auto kind : {OptimizerKind::kSgd, OptimizerKind::kAdam,
                          OptimizerKind::kAdamW, OptimizerKind::kRmsprop,
                          OptimizerKind::kAdagrad, OptimizerKind::kAdafactor}) {
    EXPECT_EQ(optimizer_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW(optimizer_from_string("Lion"), std::invalid_argument);
}

// ---------- CPU heap model ----------

TEST(CpuAllocSim, ReusesAddressesOfExactSize) {
  CpuAllocSim heap;
  const std::uint64_t a = heap.alloc(4096);
  heap.free(a);
  EXPECT_EQ(heap.alloc(4096), a);   // exact-size LIFO reuse
  EXPECT_NE(heap.alloc(4096), a);   // already taken again
}

TEST(CpuAllocSim, NoReuseAcrossSizes) {
  CpuAllocSim heap;
  const std::uint64_t a = heap.alloc(4096);
  heap.free(a);
  EXPECT_NE(heap.alloc(8192), a);
}

TEST(CpuAllocSim, AccountingAndPeak) {
  CpuAllocSim heap;
  const std::uint64_t a = heap.alloc(1000);
  const std::uint64_t b = heap.alloc(2000);
  EXPECT_EQ(heap.total_allocated(), 3000);
  heap.free(a);
  EXPECT_EQ(heap.total_allocated(), 2000);
  EXPECT_EQ(heap.peak_allocated(), 3000);
  heap.free(b);
  EXPECT_EQ(heap.live_blocks(), 0u);
  EXPECT_THROW(heap.free(b), std::logic_error);
  EXPECT_THROW(heap.alloc(0), std::invalid_argument);
}

// ---------- profiler ----------

TEST(Profiler, SpanNestingAndDurations) {
  util::SimClock clock;
  trace::Trace trace;
  Profiler profiler(clock, trace);
  const auto outer = profiler.open_span(EventKind::kPythonFunction, "outer");
  clock.advance(10);
  const auto inner = profiler.open_span(EventKind::kCpuOp, "inner", 3);
  clock.advance(5);
  profiler.close_span(inner);
  clock.advance(2);
  profiler.close_span(outer);

  ASSERT_EQ(trace.events.size(), 2u);
  EXPECT_EQ(trace.events[0].name, "outer");
  EXPECT_EQ(trace.events[0].dur, 17);
  EXPECT_EQ(trace.events[1].parent_id, trace.events[0].id);
  EXPECT_EQ(trace.events[1].dur, 5);
  EXPECT_EQ(trace.events[1].seq, 3);
}

TEST(Profiler, OutOfOrderCloseThrows) {
  util::SimClock clock;
  trace::Trace trace;
  Profiler profiler(clock, trace);
  const auto outer = profiler.open_span(EventKind::kPythonFunction, "outer");
  profiler.open_span(EventKind::kCpuOp, "inner");
  EXPECT_THROW(profiler.close_span(outer), std::logic_error);
}

// ---------- executor ----------

trace::Trace profile(const std::string& model_name, int batch,
                     OptimizerKind opt, ZeroGradPlacement placement,
                     int iterations = 3) {
  const ModelDescriptor model = models::build_model(model_name, batch);
  trace::Trace trace;
  util::SimClock clock;
  Profiler profiler(clock, trace);
  CpuMemoryEnv env(profiler);
  ExecOptions options;
  options.iterations = iterations;
  options.placement = placement;
  TrainingExecutor executor(model, opt, Backend::kCpu, env, clock, &profiler,
                            options);
  executor.run();
  return trace;
}

TEST(Executor, TraceHasAllAnnotationKinds) {
  const trace::Trace t = profile("distilgpt2", 4, OptimizerKind::kAdamW,
                                 ZeroGradPlacement::kPos1IterStart);
  std::set<std::string> prefixes;
  for (const auto& e : t.events) {
    if (e.kind == EventKind::kUserAnnotation) {
      prefixes.insert(e.name.substr(0, e.name.find('#')));
    }
  }
  EXPECT_TRUE(prefixes.count("ProfilerStep"));
  EXPECT_TRUE(prefixes.count("Optimizer.zero_grad"));
  EXPECT_TRUE(prefixes.count("Optimizer.step"));
  EXPECT_TRUE(prefixes.count(trace::annotation::kDataLoaderNext));
  EXPECT_TRUE(prefixes.count(trace::annotation::kModelToDevice));
  EXPECT_TRUE(prefixes.count(trace::annotation::kBackward));
}

TEST(Executor, IterationCountMatches) {
  const trace::Trace t = profile("MobileNetV2", 32, OptimizerKind::kSgd,
                                 ZeroGradPlacement::kPos1IterStart, 4);
  int steps = 0;
  for (const auto& e : t.events) {
    if (e.kind == EventKind::kUserAnnotation &&
        e.name.rfind("ProfilerStep", 0) == 0) {
      ++steps;
    }
  }
  EXPECT_EQ(steps, 4);
}

TEST(Executor, MemoryEventsBalanceExceptPersistent) {
  const trace::Trace t = profile("gpt2", 2, OptimizerKind::kAdam,
                                 ZeroGradPlacement::kPos1IterStart);
  std::map<std::uint64_t, int> live;
  std::int64_t live_bytes = 0;
  for (const auto& e : t.events) {
    if (e.kind != EventKind::kCpuInstantEvent) continue;
    if (e.bytes > 0) {
      live[e.addr] += 1;
      live_bytes += e.bytes;
    } else {
      live[e.addr] -= 1;
      live_bytes += e.bytes;
    }
  }
  // What stays live: params + grads of last iteration + optimizer states +
  // final batch. All counts must be 0 or 1 (no double alloc at one address).
  const ModelDescriptor model = models::build_model("gpt2", 2);
  std::vector<TensorDesc> params;
  for (const auto& m : model.modules) {
    for (const auto& p : m.params) params.push_back(p);
  }
  const std::int64_t expected =
      model.param_bytes() +                                        // weights
      model.param_bytes() +                                        // last grads
      total_optimizer_state_bytes(OptimizerKind::kAdam, params) +  // states
      model.input_bytes + model.target_bytes;                      // last batch
  EXPECT_EQ(live_bytes, expected);
  for (const auto& [addr, count] : live) {
    EXPECT_GE(count, 0) << "address freed more often than allocated";
    EXPECT_LE(count, 1) << "address allocated twice without free";
  }
}

TEST(Executor, SgdAllocatesNoOptimizerState) {
  const trace::Trace sgd = profile("MobileNetV2", 16, OptimizerKind::kSgd,
                                   ZeroGradPlacement::kPos1IterStart);
  const trace::Trace adam = profile("MobileNetV2", 16, OptimizerKind::kAdam,
                                    ZeroGradPlacement::kPos1IterStart);
  auto final_total = [](const trace::Trace& t) {
    std::int64_t total = 0;
    for (const auto& e : t.events) {
      if (e.kind == EventKind::kCpuInstantEvent) total = e.total_allocated;
    }
    return total;
  };
  const ModelDescriptor model = models::build_model("MobileNetV2", 16);
  EXPECT_EQ(final_total(adam) - final_total(sgd), 2 * model.param_bytes());
}

TEST(Executor, ZeroGradPlacementChangesAnnotationOrder) {
  // The CPU heap defers gradient frees to end-of-iteration GC under both
  // placements (the divergence the Orchestrator corrects), so CPU footprints
  // match — but the zero_grad annotation must move: POS1 places it before
  // the forward modules, POS0 between forward and backward.
  auto zero_grad_precedes_forward = [](ZeroGradPlacement placement) {
    const trace::Trace t = profile("distilgpt2", 4, OptimizerKind::kAdamW,
                                   placement, 2);
    util::TimeUs zg = -1, fwd = -1, bwd = -1;
    for (const auto& e : t.events) {
      if (e.kind == EventKind::kUserAnnotation &&
          e.name.rfind("Optimizer.zero_grad", 0) == 0 && zg < 0) {
        zg = e.ts;
      }
      if (e.kind == EventKind::kPythonFunction &&
          e.name.rfind("nn.Module: distilgpt2", 0) == 0 && fwd < 0) {
        fwd = e.ts;
      }
      if (e.kind == EventKind::kUserAnnotation &&
          e.name == trace::annotation::kBackward && bwd < 0) {
        bwd = e.ts;
      }
    }
    EXPECT_GE(zg, 0);
    EXPECT_GE(fwd, 0);
    EXPECT_GE(bwd, 0);
    EXPECT_LT(zg, bwd) << "zero_grad always precedes backward";
    return zg < fwd;
  };
  EXPECT_TRUE(zero_grad_precedes_forward(ZeroGradPlacement::kPos1IterStart));
  EXPECT_FALSE(zero_grad_precedes_forward(ZeroGradPlacement::kPos0BeforeBackward));
}

TEST(Executor, ScriptNoiseOnlyOutsideOperators) {
  const trace::Trace t = profile("T5-small", 4, OptimizerKind::kSgd,
                                 ZeroGradPlacement::kPos1IterStart);
  // Collect op windows.
  struct W { util::TimeUs s, e; };
  std::vector<W> ops;
  for (const auto& e : t.events) {
    if (e.kind == EventKind::kCpuOp) ops.push_back({e.ts, e.end_ts()});
  }
  int inside = 0, outside = 0;
  for (const auto& e : t.events) {
    if (e.kind != EventKind::kCpuInstantEvent || e.bytes <= 0) continue;
    const bool in_op = std::any_of(ops.begin(), ops.end(), [&](const W& w) {
      return e.ts >= w.s && e.ts < w.e;
    });
    in_op ? ++inside : ++outside;
  }
  EXPECT_GT(inside, 0);
  EXPECT_GT(outside, 0) << "script noise should exist on the CPU backend";
}

TEST(Executor, NullProfilerRecordsNoSpans) {
  // Ground-truth runs pass a null profiler: the executor must not emit any
  // span events (the memory env may still record instant events).
  const ModelDescriptor model = models::build_model("MobileNetV2", 8);
  util::SimClock clock;
  trace::Trace sink;
  Profiler profiler(clock, sink);
  CpuMemoryEnv env(profiler);
  ExecOptions options;
  options.iterations = 2;
  TrainingExecutor executor(model, OptimizerKind::kSgd, Backend::kCpu, env,
                            clock, nullptr, options);
  executor.run();
  for (const auto& e : sink.events) {
    EXPECT_EQ(e.kind, EventKind::kCpuInstantEvent)
        << "span event leaked from a null-profiler run: " << e.name;
  }
}

TEST(Executor, DeterministicTraceForSameSeed) {
  const trace::Trace a = profile("gpt2", 4, OptimizerKind::kSgd,
                                 ZeroGradPlacement::kPos1IterStart);
  const trace::Trace b = profile("gpt2", 4, OptimizerKind::kSgd,
                                 ZeroGradPlacement::kPos1IterStart);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].ts, b.events[i].ts);
    EXPECT_EQ(a.events[i].bytes, b.events[i].bytes);
    EXPECT_EQ(a.events[i].addr, b.events[i].addr);
  }
}

}  // namespace
}  // namespace xmem::fw
