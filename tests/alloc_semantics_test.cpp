// Fine-grained semantics of the CUDACachingAllocator port — the behaviours
// that distinguish the real allocator from a naive BFC and that the paper's
// estimation accuracy rests on (Section 2.2 / 3.4) — plus the generic
// fw::AllocatorBackend view of it and the other registered backends.
#include <gtest/gtest.h>

#include <stdexcept>

#include "alloc/backend_registry.h"
#include "alloc/caching_allocator.h"
#include "alloc/cuda_driver_sim.h"
#include "util/bytes.h"

namespace xmem::alloc {
namespace {

using util::kMiB;

struct Fixture {
  SimulatedCudaDriver driver{8 * util::kGiB};
  CachingAllocatorSim allocator{driver};
};

TEST(AllocatorSemantics, BestFitPrefersSmallestSufficientBlock) {
  Fixture f;
  // Create cached blocks of 4 MiB and 12 MiB (in one 20 MiB segment:
  // alloc 4, alloc 12, alloc 4(tail), free first two -> cached 4 & 12
  // separated by the live tail? layout: [4][12][4]; free #1 & #2 -> (16)[4]
  // after coalescing. Use two segments instead to keep sizes distinct.)
  const AllocOutcome a = f.allocator.allocate(12 * kMiB);  // 12 MiB segment
  const std::uint64_t addr_a = f.allocator.block_addr(a.id);
  const AllocOutcome b = f.allocator.allocate(16 * kMiB);  // 16 MiB segment
  f.allocator.free(a.id);
  f.allocator.free(b.id);
  // A 10 MiB request must take the 12 MiB block, not the 16 MiB one.
  const AllocOutcome c = f.allocator.allocate(10 * kMiB);
  EXPECT_EQ(f.allocator.block_addr(c.id), addr_a);
  // The 16 MiB block must still be whole: a 15 MiB request fits w/o driver.
  const std::int64_t mallocs_before = f.driver.stats().num_mallocs;
  const AllocOutcome d = f.allocator.allocate(15 * kMiB);
  EXPECT_FALSE(d.oom);
  EXPECT_EQ(f.driver.stats().num_mallocs, mallocs_before);
}

TEST(AllocatorSemantics, TieBreakByLowestAddress) {
  Fixture f;
  // Two identical cached 12 MiB segments; best-fit ties break by address.
  const AllocOutcome a = f.allocator.allocate(12 * kMiB);
  const AllocOutcome b = f.allocator.allocate(12 * kMiB);
  const std::uint64_t low_addr = std::min(f.allocator.block_addr(a.id),
                                          f.allocator.block_addr(b.id));
  f.allocator.free(a.id);
  f.allocator.free(b.id);
  const AllocOutcome c = f.allocator.allocate(12 * kMiB);
  EXPECT_EQ(f.allocator.block_addr(c.id), low_addr);
}

TEST(AllocatorSemantics, SmallPoolSplitsDownTo512) {
  Fixture f;
  // 512 B request splits the 2 MiB small buffer; remainder stays usable.
  const AllocOutcome a = f.allocator.allocate(512);
  EXPECT_EQ(f.allocator.block_size(a.id), 512);
  EXPECT_EQ(f.allocator.stats().num_splits, 1);
  // 4095 more 512 B blocks fit in the same segment.
  for (int i = 0; i < 4095; ++i) {
    const AllocOutcome next = f.allocator.allocate(512);
    ASSERT_FALSE(next.oom);
  }
  EXPECT_EQ(f.allocator.stats().num_segments_allocated, 1);
  EXPECT_EQ(f.allocator.stats().reserved_bytes, 2 * kMiB);
  // One more overflows into a second small segment.
  f.allocator.allocate(512);
  EXPECT_EQ(f.allocator.stats().num_segments_allocated, 2);
}

TEST(AllocatorSemantics, LargePoolKeepsOneMiBTailUnsplit) {
  Fixture f;
  // 19 MiB request from a 20 MiB buffer: remainder is exactly 1 MiB, which
  // is NOT > kSmallSize, so the whole 20 MiB is handed out.
  const AllocOutcome a = f.allocator.allocate(19 * kMiB);
  EXPECT_EQ(f.allocator.block_size(a.id), 20 * kMiB);
  // 8 MiB from a 20 MiB buffer leaves 12 MiB > 1 MiB: split happens.
  Fixture g;
  const AllocOutcome b = g.allocator.allocate(8 * kMiB);
  EXPECT_EQ(g.allocator.block_size(b.id), 8 * kMiB);
  EXPECT_EQ(g.allocator.stats().num_splits, 1);
}

TEST(AllocatorSemantics, RequestedVsRoundedAccounting) {
  Fixture f;
  const AllocOutcome a = f.allocator.allocate(1000);  // rounds to 1024
  EXPECT_EQ(f.allocator.stats().requested_bytes, 1000);
  EXPECT_EQ(f.allocator.stats().allocated_bytes, 1024);
  f.allocator.free(a.id);
  EXPECT_EQ(f.allocator.stats().requested_bytes, 0);
  EXPECT_EQ(f.allocator.stats().allocated_bytes, 0);
}

TEST(AllocatorSemantics, SplitBlocksPreventSegmentRelease) {
  Fixture f;
  // Two blocks in one 20 MiB segment; freeing one leaves a split segment
  // that empty_cache() must NOT release.
  const AllocOutcome a = f.allocator.allocate(5 * kMiB);
  const AllocOutcome b = f.allocator.allocate(5 * kMiB);
  f.allocator.free(a.id);
  f.allocator.empty_cache();
  EXPECT_EQ(f.allocator.stats().num_segments_released, 0);
  EXPECT_EQ(f.allocator.stats().reserved_bytes, 20 * kMiB);
  // After the second free the fragments coalesce into one whole-segment
  // block, which is releasable.
  f.allocator.free(b.id);
  f.allocator.empty_cache();
  EXPECT_EQ(f.allocator.stats().num_segments_released, 1);
  EXPECT_EQ(f.allocator.stats().reserved_bytes, 0);
}

TEST(AllocatorSemantics, ReclaimIsLastResortNotFirst) {
  // Cached blocks are preferred over new segments, and new segments are
  // preferred over reclamation.
  SimulatedCudaDriver driver(64 * kMiB);
  CachingAllocatorSim allocator(driver);
  const AllocOutcome small = allocator.allocate(1024);
  allocator.free(small.id);  // cached 2 MiB small segment
  // A large allocation that fits the driver without reclaiming.
  allocator.allocate(30 * kMiB);
  EXPECT_EQ(allocator.stats().num_cache_reclaims, 0);
  EXPECT_EQ(allocator.stats().num_segments_released, 0);
}

TEST(AllocatorSemantics, FailedAllocationIsSideEffectFreeApartFromReclaim) {
  SimulatedCudaDriver driver(24 * kMiB);
  CachingAllocatorSim allocator(driver);
  const AllocOutcome a = allocator.allocate(20 * kMiB);
  const CachingAllocatorStats before = allocator.stats();
  const AllocOutcome failed = allocator.allocate(20 * kMiB);
  EXPECT_TRUE(failed.oom);
  EXPECT_EQ(allocator.stats().allocated_bytes, before.allocated_bytes);
  EXPECT_EQ(allocator.stats().reserved_bytes, before.reserved_bytes);
  EXPECT_EQ(allocator.stats().num_allocs, before.num_allocs);
  EXPECT_TRUE(allocator.is_live(a.id));
}

TEST(AllocatorSemantics, DriverPagesExceedSegmentBytes) {
  // NVML sees pages; the framework sees segment bytes. For a 3 MiB segment
  // request the driver reserves 4 MiB (2 MiB pages) — the gap naive
  // estimators miss.
  SimulatedCudaDriver driver(util::kGiB);
  CachingAllocatorSim allocator(driver);
  allocator.allocate(17 * kMiB);  // 18 MiB segment? no: <10MiB? 17MiB >= 10MiB
  // 17 MiB rounds to 18 MiB segment (2 MiB multiple), driver also 18 MiB.
  EXPECT_EQ(allocator.stats().reserved_bytes, 18 * kMiB);
  EXPECT_EQ(driver.stats().used_bytes, 18 * kMiB);
  // An odd-sized huge allocation shows the page gap.
  const std::int64_t odd = 21 * kMiB - 4096;
  allocator.allocate(odd);
  // Segment = round_up(odd to 512) rounded to 2 MiB multiple by allocator
  // policy; driver rounds the segment request to whole pages — both end at
  // 22 MiB here, keeping reserved == driver-used for huge blocks.
  EXPECT_EQ(driver.stats().used_bytes % SimulatedCudaDriver::kPageSize, 0);
  EXPECT_GE(driver.stats().used_bytes, allocator.stats().reserved_bytes);
}

// ---------- the generic fw::AllocatorBackend view ----------

TEST(BackendContract, RegistryExposesBuiltinsAndRejectsUnknown) {
  const auto names = backend_names();
  EXPECT_EQ(names.size(), 6u);
  for (const char* expected :
       {"basic-bfc", "cub-binned", "pytorch", "pytorch-expandable",
        "stream-pool", "tf-bfc"}) {
    EXPECT_TRUE(is_known_backend(expected)) << expected;
    EXPECT_FALSE(backend_description(expected).empty()) << expected;
  }
  EXPECT_FALSE(is_known_backend("jax"));
  SimulatedCudaDriver driver(util::kGiB);
  EXPECT_THROW(make_backend("jax", driver), std::invalid_argument);
  EXPECT_THROW(
      register_backend("pytorch", "duplicate",
                       [](SimulatedCudaDriver& d, const BackendKnobs&) {
                         return make_backend("pytorch", d);
                       }),
      std::invalid_argument);
}

TEST(BackendContract, FactoryNameMatchesBackendName) {
  SimulatedCudaDriver driver(util::kGiB);
  for (const auto& name : backend_names()) {
    EXPECT_EQ(make_backend(name, driver)->backend_name(), name);
  }
}

TEST(BackendContract, GenericStatsMatchConcretePyTorchCounters) {
  Fixture f;
  const auto a = f.allocator.backend_alloc(1000);
  EXPECT_FALSE(a.oom);
  EXPECT_EQ(a.charged_bytes, 1024);  // 512 B rounding through the interface
  EXPECT_EQ(f.allocator.backend_round(1000), 1024);
  const fw::BackendStats s = f.allocator.backend_stats();
  EXPECT_EQ(s.active_bytes, f.allocator.stats().allocated_bytes);
  EXPECT_EQ(s.reserved_bytes, f.allocator.stats().reserved_bytes);
  EXPECT_EQ(s.num_segments, 1);
  EXPECT_EQ(s.num_live_blocks, 1);
  f.allocator.backend_free(a.id);
  f.allocator.backend_trim();  // empty_cache() through the interface
  EXPECT_EQ(f.allocator.backend_stats().reserved_bytes, 0);
  EXPECT_EQ(f.allocator.backend_stats().num_segments, 0);
}

TEST(BackendContract, DoubleFreeThrowsOnEveryBackend) {
  for (const auto& name : backend_names()) {
    SimulatedCudaDriver driver(util::kGiB);
    const auto backend = make_backend(name, driver);
    const auto outcome = backend->backend_alloc(4096);
    ASSERT_FALSE(outcome.oom) << name;
    backend->backend_free(outcome.id);
    EXPECT_THROW(backend->backend_free(outcome.id), std::logic_error) << name;
  }
}

TEST(BackendContract, ReservedCoversActiveOnEveryBackend) {
  for (const auto& name : backend_names()) {
    SimulatedCudaDriver driver(util::kGiB);
    const auto backend = make_backend(name, driver);
    const auto a = backend->backend_alloc(3 * kMiB);
    const auto b = backend->backend_alloc(700);
    const fw::BackendStats s = backend->backend_stats();
    EXPECT_GE(a.charged_bytes, 3 * kMiB) << name;
    EXPECT_GE(b.charged_bytes, 700) << name;
    EXPECT_EQ(s.active_bytes, a.charged_bytes + b.charged_bytes) << name;
    EXPECT_GE(s.reserved_bytes, s.active_bytes) << name;
    EXPECT_EQ(s.num_allocs - s.num_frees, s.num_live_blocks) << name;
  }
}

}  // namespace
}  // namespace xmem::alloc
