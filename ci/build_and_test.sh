#!/usr/bin/env bash
# Tier-1 verification as one script: configure + build + ctest + bench
# golden diff, with warnings treated as errors. Exits non-zero on any
# failure.
#
# Usage: ci/build_and_test.sh [--update-goldens] [build-dir]
#   (default build-dir: build)
#
# The golden step runs the deterministic evaluation benches (table03/04 and
# every fig*/ablation program — all verified deterministic in --fast scope;
# none had to be skipped) and diffs their output against
# bench/goldens/*.txt, so estimator-accuracy regressions fail CI instead of
# surfacing in a paper comparison later. Wall-clock runtime numbers
# (table04's payload) are normalized to <runtime> before diffing — the
# goldens pin table/figure structure and estimator output, not timings.
# After an intentional accuracy change, regenerate with --update-goldens and
# commit the new goldens alongside the change.
#
# The sweep/plan smoke steps feed ci/fixtures/{sweep,plan}_request.json
# through `xmem sweep`/`xmem plan` with --no-timings and diff the JSON
# reports against ci/fixtures/{sweep,plan}_report.json (schema + payload
# pinned; wall-clock fields stripped), then assert the profile-once
# contract via each report's stage counters. The sweep fixture includes the
# knobbed cub-binned backend with an explicit allocator_config block, so
# the knob plumbing (request JSON -> registry factory -> replay tower) is
# golden-diffed end to end. The plan smoke is a refine
# smoke: the fixture enables refine_top_k, so the report must show exactly
# one CPU profile AND a nonzero replayed_candidates counter (the two-phase
# search ran, still off one profile), plus at least one verdict_changed
# replay (the fidelity gain over the analytic model). The negative smoke
# feeds every ci/fixtures/bad_*.json through `xmem sweep` — except the
# plan-shaped bad_refine.json, which goes through `xmem plan` — and
# requires a nonzero exit.
#
# The serve smoke (bottom of the file) boots the `xmem serve` daemon and
# proves the process boundary is invisible: `xmem request` replies diff
# byte-identical against the same offline goldens, twin requests coalesce,
# the bad_frame.bin raw fixture is rejected without killing the daemon, and
# both shutdown paths (SIGTERM, `xmem request --shutdown`) drain cleanly.
# bench_server (in the golden loop above) pins the load-generator counters;
# its requests/sec and latency numbers are normalized to <runtime>.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
UPDATE_GOLDENS=0
BUILD_DIR=""
for arg in "$@"; do
  case "${arg}" in
    --update-goldens) UPDATE_GOLDENS=1 ;;
    -*) echo "unknown flag: ${arg}" >&2; exit 1 ;;
    *) BUILD_DIR="${arg}" ;;
  esac
done
BUILD_DIR="${BUILD_DIR:-${REPO_ROOT}/build}"
GOLDEN_DIR="${REPO_ROOT}/bench/goldens"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -DXMEM_WERROR=ON
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

# --- bench goldens ---------------------------------------------------------

# Strip nondeterministic values: any 6-decimal float is a wall-clock
# reading (the %f runtimes of table04); everything else in the tables is a
# deterministic product of the seeded Monte Carlo runs.
normalize() {
  sed -E 's/[0-9]+\.[0-9]{6}/<runtime>/g'
}

GOLDEN_FAILED=0
for bench in table03_mcp table04_runtime \
             fig01_zero_grad_placement fig03_sequence_impact \
             fig06_simulator_validation fig07_mre_distributions \
             fig08_quadrant fig09_large_models fig_distributed_planner \
             ablation_orchestrator bench_server bench_fleet; do
  golden="${GOLDEN_DIR}/${bench}.txt"
  actual="$(mktemp)"
  "${BUILD_DIR}/bench/${bench}" --fast | normalize > "${actual}"
  if [[ "${UPDATE_GOLDENS}" == "1" ]]; then
    mkdir -p "${GOLDEN_DIR}"
    cp "${actual}" "${golden}"
    echo "updated ${golden}"
  elif [[ ! -f "${golden}" ]]; then
    echo "MISSING GOLDEN: ${golden} (run ci/build_and_test.sh --update-goldens)" >&2
    GOLDEN_FAILED=1
  elif ! diff -u "${golden}" "${actual}" > /dev/null; then
    echo "GOLDEN MISMATCH: ${bench} (estimator output changed)" >&2
    diff -u "${golden}" "${actual}" >&2 || true
    echo "If intentional, regenerate: ci/build_and_test.sh --update-goldens" >&2
    GOLDEN_FAILED=1
  else
    echo "golden ok: ${bench}"
  fi
  rm -f "${actual}"
done

# --- xmem sweep smoke ------------------------------------------------------

FIXTURE_DIR="${REPO_ROOT}/ci/fixtures"
sweep_golden="${FIXTURE_DIR}/sweep_report.json"
sweep_actual="$(mktemp)"
"${BUILD_DIR}/src/xmem_cli" sweep "${FIXTURE_DIR}/sweep_request.json" \
  --no-timings > "${sweep_actual}"
if ! grep -q '"profiles_run": 1,' "${sweep_actual}"; then
  echo "SWEEP SMOKE: expected exactly one CPU profile in stage_counters" >&2
  GOLDEN_FAILED=1
fi
if [[ "${UPDATE_GOLDENS}" == "1" ]]; then
  cp "${sweep_actual}" "${sweep_golden}"
  echo "updated ${sweep_golden}"
elif ! diff -u "${sweep_golden}" "${sweep_actual}" > /dev/null; then
  echo "SWEEP SMOKE MISMATCH: report schema or payload changed" >&2
  diff -u "${sweep_golden}" "${sweep_actual}" >&2 || true
  echo "If intentional, regenerate: ci/build_and_test.sh --update-goldens" >&2
  GOLDEN_FAILED=1
else
  echo "sweep smoke ok"
fi
rm -f "${sweep_actual}"

# --- xmem plan smoke -------------------------------------------------------

plan_golden="${FIXTURE_DIR}/plan_report.json"
plan_actual="$(mktemp)"
"${BUILD_DIR}/src/xmem_cli" plan "${FIXTURE_DIR}/plan_request.json" \
  --no-timings > "${plan_actual}"
if ! grep -q '"profiles_run": 1,' "${plan_actual}"; then
  echo "PLAN SMOKE: the whole plan search must run exactly one CPU profile" >&2
  GOLDEN_FAILED=1
fi
if ! grep -qE '"replayed_candidates": [1-9]' "${plan_actual}"; then
  echo "PLAN SMOKE: refine phase must replay a nonzero candidate count" >&2
  GOLDEN_FAILED=1
fi
if ! grep -q '"verdict_changed": true' "${plan_actual}"; then
  echo "PLAN SMOKE: expected a replayed verdict differing from the analytic one" >&2
  GOLDEN_FAILED=1
fi
if [[ "${UPDATE_GOLDENS}" == "1" ]]; then
  cp "${plan_actual}" "${plan_golden}"
  echo "updated ${plan_golden}"
elif ! diff -u "${plan_golden}" "${plan_actual}" > /dev/null; then
  echo "PLAN SMOKE MISMATCH: plan report schema or payload changed" >&2
  diff -u "${plan_golden}" "${plan_actual}" >&2 || true
  echo "If intentional, regenerate: ci/build_and_test.sh --update-goldens" >&2
  GOLDEN_FAILED=1
else
  echo "plan smoke ok"
fi
rm -f "${plan_actual}"

# --- xmem plan overlap-window smoke ----------------------------------------
# The same straddle fixture with comm_overlap on: collectives replay as
# schedule-tied windows and the refined prefix is re-ranked by the
# window-replayed peaks. The golden pins the re-ranked order plus the
# window-vs-resident columns; the greps pin that the re-ranking actually
# moved candidates and that the search still ran exactly one CPU profile.

overlap_golden="${FIXTURE_DIR}/plan_report_overlap.json"
overlap_actual="$(mktemp)"
"${BUILD_DIR}/src/xmem_cli" plan "${FIXTURE_DIR}/plan_request_overlap.json" \
  --no-timings > "${overlap_actual}"
if ! grep -q '"profiles_run": 1,' "${overlap_actual}"; then
  echo "OVERLAP SMOKE: the window-mode search must run exactly one CPU profile" >&2
  GOLDEN_FAILED=1
fi
if ! grep -qE '"rerank_changed": [1-9]' "${overlap_actual}"; then
  echo "OVERLAP SMOKE: window replay must re-rank at least one candidate" >&2
  GOLDEN_FAILED=1
fi
if ! grep -q '"comm_overlap": true' "${overlap_actual}"; then
  echo "OVERLAP SMOKE: report must echo the comm_overlap flag" >&2
  GOLDEN_FAILED=1
fi
if grep -q '"comm_overlap"' "${plan_golden}"; then
  echo "OVERLAP SMOKE: resident-mode golden must not carry window-mode keys" >&2
  GOLDEN_FAILED=1
fi
if [[ "${UPDATE_GOLDENS}" == "1" ]]; then
  cp "${overlap_actual}" "${overlap_golden}"
  echo "updated ${overlap_golden}"
elif ! diff -u "${overlap_golden}" "${overlap_actual}" > /dev/null; then
  echo "OVERLAP SMOKE MISMATCH: window-mode report schema or payload changed" >&2
  diff -u "${overlap_golden}" "${overlap_actual}" >&2 || true
  echo "If intentional, regenerate: ci/build_and_test.sh --update-goldens" >&2
  GOLDEN_FAILED=1
else
  echo "plan overlap smoke ok"
fi
rm -f "${overlap_actual}"

# --- xmem plan full-search smoke -------------------------------------------
# The overlap fixture again with --refine-all: every enumerated
# decomposition replays, which is only affordable because symmetric ranks
# collapse onto shared replays. Grep-only (the report payload is pinned by
# the top-K goldens above): still exactly one CPU profile, and a nonzero
# replays_deduped proving the collapse fired on the full search.

refine_all_actual="$(mktemp)"
refine_all_failed=0
"${BUILD_DIR}/src/xmem_cli" plan "${FIXTURE_DIR}/plan_request_overlap.json" \
  --refine-all --no-timings > "${refine_all_actual}"
if ! grep -q '"profiles_run": 1,' "${refine_all_actual}"; then
  echo "REFINE-ALL SMOKE: the full search must run exactly one CPU profile" >&2
  GOLDEN_FAILED=1
  refine_all_failed=1
fi
if ! grep -qE '"replays_deduped": [1-9]' "${refine_all_actual}"; then
  echo "REFINE-ALL SMOKE: symmetric-rank dedup must collapse some replays" >&2
  GOLDEN_FAILED=1
  refine_all_failed=1
fi
if [[ "${refine_all_failed}" == "0" ]]; then
  echo "plan refine-all smoke ok"
fi
rm -f "${refine_all_actual}"

# --- xmem fleet smoke ------------------------------------------------------
# Fleet packing end to end: 6 jobs from 2 archetypes onto one 3060 with a
# what-if pool. The golden pins verdicts/placements/stats/delta; the greps
# pin the profile-once contract at fleet scale (profiles_run equals the
# queue's 2 distinct archetypes, not its 6 jobs) and a nonzero what-if gain.

fleet_golden="${FIXTURE_DIR}/fleet_report.json"
fleet_actual="$(mktemp)"
"${BUILD_DIR}/src/xmem_cli" fleet "${FIXTURE_DIR}/fleet_request.json" \
  --no-timings > "${fleet_actual}"
if ! grep -q '"profiles_run": 2,' "${fleet_actual}"; then
  echo "FLEET SMOKE: expected profiles_run == 2 (one per distinct archetype)" >&2
  GOLDEN_FAILED=1
fi
if ! grep -q '"distinct_jobs": 2,' "${fleet_actual}"; then
  echo "FLEET SMOKE: expected distinct_jobs == 2 in the fleet stats" >&2
  GOLDEN_FAILED=1
fi
if ! grep -qE '"admitted_delta": [1-9]' "${fleet_actual}"; then
  echo "FLEET SMOKE: the what-if pools must admit extra jobs" >&2
  GOLDEN_FAILED=1
fi
if [[ "${UPDATE_GOLDENS}" == "1" ]]; then
  cp "${fleet_actual}" "${fleet_golden}"
  echo "updated ${fleet_golden}"
elif ! diff -u "${fleet_golden}" "${fleet_actual}" > /dev/null; then
  echo "FLEET SMOKE MISMATCH: fleet report schema or payload changed" >&2
  diff -u "${fleet_golden}" "${fleet_actual}" >&2 || true
  echo "If intentional, regenerate: ci/build_and_test.sh --update-goldens" >&2
  GOLDEN_FAILED=1
else
  echo "fleet smoke ok"
fi
rm -f "${fleet_actual}"

# --- negative smoke: malformed requests must exit nonzero ------------------

for bad in "${FIXTURE_DIR}"/bad_*.json; do
  # Plan-shaped fixtures (refine knobs) only fail through the plan parser;
  # fleet-shaped ones (jobs/pools) only through the fleet parser.
  subcommand=sweep
  case "$(basename "${bad}")" in
    bad_overlap*) subcommand=plan ;;
    bad_refine*) subcommand=plan ;;
    bad_fleet*) subcommand=fleet ;;
  esac
  if "${BUILD_DIR}/src/xmem_cli" "${subcommand}" "${bad}" > /dev/null 2>&1; then
    echo "NEGATIVE SMOKE: xmem ${subcommand} accepted $(basename "${bad}")" >&2
    GOLDEN_FAILED=1
  else
    echo "negative smoke ok: $(basename "${bad}")"
  fi
done

# --- xmem serve smoke ------------------------------------------------------
# The same request fixtures, through the daemon: start `xmem serve`, drive
# sweep_request.json via `xmem request`, and require the reply to be
# byte-identical to the offline golden (the server is a process boundary,
# not a different estimator). Then: two concurrent identical requests must
# show up as a nonzero coalesced count in `stats`, the bad_frame.bin raw
# fixture (oversized length prefix) must exit nonzero while the daemon
# survives it, and SIGTERM must drain gracefully (exit 0, socket unlinked).
# The plan fixture goes through a SECOND fresh daemon because its golden
# pins cold-cache stage counters and the two fixtures share a job.

XMEM="${BUILD_DIR}/src/xmem_cli"
SERVE_SOCK="$(mktemp -u /tmp/xmem_ci_serve_XXXXXX.sock)"

wait_for_socket() {
  for _ in $(seq 100); do
    [[ -S "$1" ]] && return 0
    sleep 0.1
  done
  echo "SERVE SMOKE: daemon never bound $1" >&2
  return 1
}

"${XMEM}" serve --socket "${SERVE_SOCK}" &
SERVE_PID=$!
wait_for_socket "${SERVE_SOCK}"

serve_actual="$(mktemp)"
"${XMEM}" request --socket "${SERVE_SOCK}" \
  --sweep "${FIXTURE_DIR}/sweep_request.json" --out "${serve_actual}"
if ! diff -u "${sweep_golden}" "${serve_actual}" > /dev/null; then
  echo "SERVE SMOKE MISMATCH: server sweep reply != offline golden" >&2
  diff -u "${sweep_golden}" "${serve_actual}" >&2 || true
  GOLDEN_FAILED=1
else
  echo "serve smoke ok: sweep reply byte-identical to offline golden"
fi
rm -f "${serve_actual}"

# Two concurrent identical requests: one executes, the twin coalesces
# (in-flight collapse or reply-cache hit — either increments `coalesced`).
"${XMEM}" request --socket "${SERVE_SOCK}" \
  --sweep "${FIXTURE_DIR}/sweep_request.json" > /dev/null &
FIRST_PID=$!
"${XMEM}" request --socket "${SERVE_SOCK}" \
  --sweep "${FIXTURE_DIR}/sweep_request.json" > /dev/null &
SECOND_PID=$!
wait "${FIRST_PID}" "${SECOND_PID}"
stats_out="$(mktemp)"
"${XMEM}" request --socket "${SERVE_SOCK}" --stats > "${stats_out}"
if ! grep -qE '"coalesced": [1-9]' "${stats_out}"; then
  echo "SERVE SMOKE: expected nonzero coalesced count after twin requests" >&2
  cat "${stats_out}" >&2
  GOLDEN_FAILED=1
else
  echo "serve smoke ok: concurrent identical requests coalesced"
fi
rm -f "${stats_out}"

# Negative: a raw byte blob with an oversized length prefix must exit
# nonzero — and the daemon must still answer afterwards.
if "${XMEM}" request --socket "${SERVE_SOCK}" \
     --raw "${FIXTURE_DIR}/bad_frame.bin" > /dev/null 2>&1; then
  echo "SERVE SMOKE: xmem request accepted bad_frame.bin" >&2
  GOLDEN_FAILED=1
else
  echo "serve smoke ok: bad_frame.bin rejected"
fi
if ! "${XMEM}" request --socket "${SERVE_SOCK}" --ping > /dev/null; then
  echo "SERVE SMOKE: daemon died after bad_frame.bin" >&2
  GOLDEN_FAILED=1
fi

# Kill-and-verify: SIGTERM drains gracefully — exit 0, socket unlinked.
kill -TERM "${SERVE_PID}"
if ! wait "${SERVE_PID}"; then
  echo "SERVE SMOKE: daemon exited nonzero on SIGTERM" >&2
  GOLDEN_FAILED=1
elif [[ -S "${SERVE_SOCK}" ]]; then
  echo "SERVE SMOKE: daemon left its socket file behind" >&2
  GOLDEN_FAILED=1
else
  echo "serve smoke ok: graceful SIGTERM shutdown"
fi

# Fresh daemon for the plan fixture (cold-cache counters), stopped via the
# shutdown request instead of a signal so both stop paths stay covered.
"${XMEM}" serve --socket "${SERVE_SOCK}" &
SERVE_PID=$!
wait_for_socket "${SERVE_SOCK}"
serve_plan_actual="$(mktemp)"
"${XMEM}" request --socket "${SERVE_SOCK}" \
  --plan "${FIXTURE_DIR}/plan_request.json" --out "${serve_plan_actual}"
if ! diff -u "${plan_golden}" "${serve_plan_actual}" > /dev/null; then
  echo "SERVE SMOKE MISMATCH: server plan reply != offline golden" >&2
  diff -u "${plan_golden}" "${serve_plan_actual}" >&2 || true
  GOLDEN_FAILED=1
else
  echo "serve smoke ok: plan reply byte-identical to offline golden"
fi
rm -f "${serve_plan_actual}"
"${XMEM}" request --socket "${SERVE_SOCK}" --shutdown > /dev/null
if ! wait "${SERVE_PID}"; then
  echo "SERVE SMOKE: daemon exited nonzero on shutdown request" >&2
  GOLDEN_FAILED=1
else
  echo "serve smoke ok: shutdown request drained the daemon"
fi

# Third fresh daemon for the fleet fixture: its golden pins cold-cache
# packing counters (profiles_run == distinct archetypes), which a warm
# profile session from the earlier fixtures would turn into cache hits.
"${XMEM}" serve --socket "${SERVE_SOCK}" &
SERVE_PID=$!
wait_for_socket "${SERVE_SOCK}"
serve_fleet_actual="$(mktemp)"
"${XMEM}" request --socket "${SERVE_SOCK}" \
  --fleet "${FIXTURE_DIR}/fleet_request.json" --out "${serve_fleet_actual}"
if ! diff -u "${fleet_golden}" "${serve_fleet_actual}" > /dev/null; then
  echo "SERVE SMOKE MISMATCH: server fleet reply != offline golden" >&2
  diff -u "${fleet_golden}" "${serve_fleet_actual}" >&2 || true
  GOLDEN_FAILED=1
else
  echo "serve smoke ok: fleet reply byte-identical to offline golden"
fi
rm -f "${serve_fleet_actual}"
"${XMEM}" request --socket "${SERVE_SOCK}" --shutdown > /dev/null
if ! wait "${SERVE_PID}"; then
  echo "SERVE SMOKE: fleet daemon exited nonzero on shutdown request" >&2
  GOLDEN_FAILED=1
else
  echo "serve smoke ok: fleet daemon drained on shutdown request"
fi

exit "${GOLDEN_FAILED}"
