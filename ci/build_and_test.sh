#!/usr/bin/env bash
# Tier-1 verification as one script: configure + build + ctest, with
# warnings treated as errors. Exits non-zero on any failure.
#
# Usage: ci/build_and_test.sh [build-dir]   (default: build)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -DXMEM_WERROR=ON
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"
