#!/usr/bin/env bash
# Tier-1 verification as one script: configure + build + ctest + bench
# golden diff, with warnings treated as errors. Exits non-zero on any
# failure.
#
# Usage: ci/build_and_test.sh [--update-goldens] [build-dir]
#   (default build-dir: build)
#
# The golden step runs the deterministic evaluation benches
# (bench/table03_mcp, bench/table04_runtime) in --fast scope and diffs their
# output against bench/goldens/*.txt, so estimator-accuracy regressions fail
# CI instead of surfacing in a paper comparison later. Wall-clock runtime
# numbers (table04's payload) are normalized to <runtime> before diffing —
# the golden pins the table structure and estimator set, not the timings.
# After an intentional accuracy change, regenerate with --update-goldens and
# commit the new goldens alongside the change.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
UPDATE_GOLDENS=0
BUILD_DIR=""
for arg in "$@"; do
  case "${arg}" in
    --update-goldens) UPDATE_GOLDENS=1 ;;
    -*) echo "unknown flag: ${arg}" >&2; exit 1 ;;
    *) BUILD_DIR="${arg}" ;;
  esac
done
BUILD_DIR="${BUILD_DIR:-${REPO_ROOT}/build}"
GOLDEN_DIR="${REPO_ROOT}/bench/goldens"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -DXMEM_WERROR=ON
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

# --- bench goldens ---------------------------------------------------------

# Strip nondeterministic values: any 6-decimal float is a wall-clock
# reading (the %f runtimes of table04); everything else in the tables is a
# deterministic product of the seeded Monte Carlo runs.
normalize() {
  sed -E 's/[0-9]+\.[0-9]{6}/<runtime>/g'
}

GOLDEN_FAILED=0
for bench in table03_mcp table04_runtime; do
  golden="${GOLDEN_DIR}/${bench}.txt"
  actual="$(mktemp)"
  "${BUILD_DIR}/bench/${bench}" --fast | normalize > "${actual}"
  if [[ "${UPDATE_GOLDENS}" == "1" ]]; then
    mkdir -p "${GOLDEN_DIR}"
    cp "${actual}" "${golden}"
    echo "updated ${golden}"
  elif [[ ! -f "${golden}" ]]; then
    echo "MISSING GOLDEN: ${golden} (run ci/build_and_test.sh --update-goldens)" >&2
    GOLDEN_FAILED=1
  elif ! diff -u "${golden}" "${actual}" > /dev/null; then
    echo "GOLDEN MISMATCH: ${bench} (estimator output changed)" >&2
    diff -u "${golden}" "${actual}" >&2 || true
    echo "If intentional, regenerate: ci/build_and_test.sh --update-goldens" >&2
    GOLDEN_FAILED=1
  else
    echo "golden ok: ${bench}"
  fi
  rm -f "${actual}"
done
exit "${GOLDEN_FAILED}"
