#include "eval/export.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "util/stats.h"

namespace xmem::eval {

namespace {

void append_field(std::string& out, const std::string& value) {
  const bool needs_quoting =
      value.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quoting) {
    out += value;
    return;
  }
  out.push_back('"');
  for (char c : value) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
}

}  // namespace

std::string to_csv(const std::vector<RunRecord>& records) {
  std::string out =
      "model,optimizer,batch,placement,device,estimator,repeat,supported,"
      "estimate_bytes,oom_predicted,oom_actual_1,peak_1_bytes,round2_run,"
      "oom_actual_2,peak_2_bytes,c1,c2,has_error,error,m_save_bytes,"
      "estimator_runtime_s\n";
  char buf[64];
  for (const RunRecord& r : records) {
    append_field(out, r.config.model);
    out.push_back(',');
    out += to_string(r.config.optimizer);
    out.push_back(',');
    out += std::to_string(r.config.batch_size);
    out.push_back(',');
    out += to_string(r.config.placement);
    out.push_back(',');
    append_field(out, r.device_name);
    out.push_back(',');
    append_field(out, r.estimator);
    out.push_back(',');
    out += std::to_string(r.repeat);
    out.push_back(',');
    out += r.supported ? "1" : "0";
    out.push_back(',');
    out += std::to_string(r.estimate);
    out.push_back(',');
    out += r.oom_predicted ? "1" : "0";
    out.push_back(',');
    out += r.oom_actual_1 ? "1" : "0";
    out.push_back(',');
    out += std::to_string(r.peak_1);
    out.push_back(',');
    out += r.round2_run ? "1" : "0";
    out.push_back(',');
    out += r.oom_actual_2 ? "1" : "0";
    out.push_back(',');
    out += std::to_string(r.peak_2);
    out.push_back(',');
    out += r.c1 ? "1" : "0";
    out.push_back(',');
    out += r.c2 ? "1" : "0";
    out.push_back(',');
    out += r.has_error ? "1" : "0";
    out.push_back(',');
    std::snprintf(buf, sizeof(buf), "%.6g", r.error);
    out += buf;
    out.push_back(',');
    out += std::to_string(r.m_save);
    out.push_back(',');
    std::snprintf(buf, sizeof(buf), "%.6g", r.estimator_runtime);
    out += buf;
    out.push_back('\n');
  }
  return out;
}

void write_csv(const std::vector<RunRecord>& records,
               const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("write_csv: cannot open " + path);
  }
  out << to_csv(records);
  if (!out) {
    throw std::runtime_error("write_csv: write failed for " + path);
  }
}

std::string render_pairwise_comparisons(
    const std::vector<RunRecord>& records,
    const std::vector<std::string>& estimators) {
  std::string out = "== Pairwise error comparisons (two-group ANOVA) ==\n";
  char line[256];
  for (std::size_t i = 0; i < estimators.size(); ++i) {
    for (std::size_t j = i + 1; j < estimators.size(); ++j) {
      const std::vector<double> a = errors_for_estimator(records, estimators[i]);
      const std::vector<double> b = errors_for_estimator(records, estimators[j]);
      if (a.empty() || b.empty()) continue;
      const util::AnovaResult result = util::one_way_anova({a, b});
      std::snprintf(line, sizeof(line),
                    "%-12s vs %-12s F(1,%4.0f) = %9.2f, p = %-10.3g "
                    "(medians %.2f%% / %.2f%%)\n",
                    estimators[i].c_str(), estimators[j].c_str(),
                    result.df_within, result.f_statistic, result.p_value,
                    util::median(a) * 100, util::median(b) * 100);
      out += line;
    }
  }
  return out;
}

}  // namespace xmem::eval
