// Evaluation metrics — a direct implementation of the paper's Eq. 1-8 and
// the record structure the two-round validation protocol (§4.1.4) fills in.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fw/types.h"
#include "models/workload.h"

namespace xmem::eval {

/// Everything observed for one (configuration j, device d, estimator e,
/// repeat n) tuple across the two validation rounds.
struct RunRecord {
  models::TrainConfig config;
  std::string device_name;
  std::string estimator;
  bool is_cnn = false;
  int repeat = 0;

  bool supported = true;          ///< estimator handles this job class
  std::int64_t estimate = 0;      ///< ^M_peak_jde
  bool oom_predicted = false;     ///< ^OOM_jde            (Eq. 1)
  double estimator_runtime = 0.0; ///< RQ4 runtime, seconds

  bool oom_actual_1 = false;      ///< OOM_jd1 (round 1, full device)
  std::int64_t peak_1 = 0;        ///< M^peak_jd1 (valid when !oom_actual_1)
  bool round2_run = false;
  bool oom_actual_2 = false;      ///< OOM_jde2 (round 2, capped at estimate)
  std::int64_t peak_2 = 0;

  bool c1 = false;                ///< C_jde1               (Eq. 4)
  bool c2 = false;                ///< C_jde2               (Eq. 5)
  bool has_error = false;         ///< error defined only when OOM_jd1 == 0
  double error = 0.0;             ///< error_jide           (Eq. 2 via Eq. 3)
  std::int64_t m_save = 0;        ///< M^save_jde           (Eq. 7)
  std::int64_t device_capacity = 0;  ///< M^max_d
};

/// Eq. 2: relative error of the estimate against a measured peak.
double relative_error(std::int64_t estimate, std::int64_t measured_peak);

/// Derived (Eq. 4, 5, 7) fields from the raw round outcomes; called by the
/// harness after both rounds, exposed for unit tests.
void finalize_record(RunRecord& record);

// ---- aggregations over a set of records ----

/// Errors (Eq. 3 selection already applied) for one (model, estimator).
std::vector<double> errors_for(const std::vector<RunRecord>& records,
                               const std::string& model,
                               const std::string& estimator);

/// All errors for an estimator, optionally restricted to one family.
std::vector<double> errors_for_estimator(const std::vector<RunRecord>& records,
                                         const std::string& estimator);

/// Eq. 6 with i=2: probability the two-round validation failed.
double pef_for(const std::vector<RunRecord>& records, const std::string& model,
               const std::string& estimator);

/// Median relative error for one (model, estimator); NaN when no samples.
double mre_for(const std::vector<RunRecord>& records, const std::string& model,
               const std::string& estimator);

/// Eq. 8: mean per-run memory conservation in bytes for an estimator over
/// records of the given family ("CNN", "Transformer", or "" for all).
double mcp_bytes_for(const std::vector<RunRecord>& records,
                     const std::string& estimator,
                     const std::string& family = "");

/// Mean estimator runtime in seconds (RQ4).
double mean_runtime_for(const std::vector<RunRecord>& records,
                        const std::string& estimator);

/// Distinct model names appearing in the records, in first-seen order.
std::vector<std::string> models_in(const std::vector<RunRecord>& records);

}  // namespace xmem::eval
