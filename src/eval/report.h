// Text rendering of the paper's tables and figures (benches print these).
#pragma once

#include <string>
#include <vector>

#include "eval/metrics.h"

namespace xmem::eval {

/// Fig. 7-style table: per-model MRE boxplot summaries (median / IQR /
/// whiskers / outlier count) for every estimator. `family` filters models
/// ("CNN" / "Transformer" / "" for all).
std::string render_mre_boxplots(const std::vector<RunRecord>& records,
                                const std::vector<std::string>& estimators,
                                const std::string& family,
                                const std::string& title);

/// Fig. 8-style table: per-model (PEF, MRE) points with their quadrant
/// classification at the paper's 20%/20% thresholds.
std::string render_quadrants(const std::vector<RunRecord>& records,
                             const std::vector<std::string>& estimators,
                             const std::string& title);

/// Table 3: average MCP in GB by architecture class.
std::string render_mcp_table(const std::vector<RunRecord>& records,
                             const std::vector<std::string>& estimators);

/// Table 4: average estimator runtime in seconds.
std::string render_runtime_table(const std::vector<RunRecord>& records,
                                 const std::vector<std::string>& estimators);

/// One-way ANOVA of the error distributions across estimators.
std::string render_anova(const std::vector<RunRecord>& records,
                         const std::vector<std::string>& estimators);

/// Aggregate summary line per estimator (overall MRE / PEF / MCP), the
/// numbers behind the abstract's "91% / 75% / 368%" claims.
std::string render_headline(const std::vector<RunRecord>& records,
                            const std::vector<std::string>& estimators);

}  // namespace xmem::eval
