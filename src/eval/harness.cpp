#include "eval/harness.h"

#include "gpu/ground_truth.h"
#include "models/zoo.h"
#include "util/rng.h"

namespace xmem::eval {

namespace {

std::uint64_t config_hash(const models::TrainConfig& config,
                          const std::string& device_name) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](const std::string& s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ULL;
    }
  };
  mix(config.label());
  mix(device_name);
  return h;
}

}  // namespace

EvalHarness::EvalHarness(HarnessOptions options) : options_(options) {
  core::ServiceOptions service_options;
  // The harness drives the protocol one record at a time; a pool would buy
  // nothing and the serial path keeps the estimate order deterministic.
  service_options.threads = 1;
  service_ = std::make_unique<core::EstimationService>(service_options);

  if (options_.use_xmem) names_.push_back("xMem");
  if (options_.ablate_orchestrator) names_.push_back("xMem-noOrch");
  if (options_.use_dnnmem) names_.push_back("DNNMem");
  if (options_.use_schedtune) names_.push_back("SchedTune");
  if (options_.use_llmem) names_.push_back("LLMem");
}

EvalHarness::~EvalHarness() = default;

core::EstimateResult EvalHarness::cached_estimate(
    const std::string& estimator_name, const models::TrainConfig& config,
    const gpu::DeviceModel& device) {
  core::TrainJob job;
  job.model_name = config.model;
  job.batch_size = config.batch_size;
  job.optimizer = config.optimizer;
  job.placement = config.placement;
  job.seed = config_hash(config, device.name);

  return service_->estimate(estimator_name, job, device).to_result();
}

void EvalHarness::run_one(const models::TrainConfig& config,
                          const gpu::DeviceModel& device, int repeat,
                          std::vector<RunRecord>& out) {
  const std::uint64_t base_seed =
      util::derive_seed(options_.seed, config_hash(config, device.name)) +
      static_cast<std::uint64_t>(repeat);

  const fw::ModelDescriptor model =
      models::build_model(config.model, config.batch_size);
  const bool is_cnn = model.family == fw::ModelFamily::kCnn;

  // Round 1: full device budget.
  gpu::GroundTruthRunner runner;
  gpu::GroundTruthOptions gt1;
  gt1.iterations = options_.gt_iterations;
  gt1.placement = config.placement;
  gt1.seed = util::derive_seed(base_seed, 1);
  const gpu::GroundTruthResult round1 =
      runner.run(model, config.optimizer, device, gt1);

  for (const std::string& estimator_name : names_) {
    RunRecord record;
    record.config = config;
    record.device_name = device.name;
    record.estimator = estimator_name;
    record.is_cnn = is_cnn;
    record.repeat = repeat;
    record.device_capacity = device.capacity;

    const core::EstimateResult estimate =
        cached_estimate(estimator_name, config, device);
    record.supported = estimate.supported;
    if (!record.supported) {
      out.push_back(std::move(record));
      continue;
    }
    record.estimate = estimate.estimated_peak;
    record.oom_predicted = estimate.oom_predicted;
    record.estimator_runtime = estimate.runtime_seconds;
    record.oom_actual_1 = round1.oom;
    record.peak_1 = round1.peak_job_bytes;

    // Round 2: only when the prediction matched and the job actually fits
    // (§4.1.4 "when C_jde1 = 1 and OOM_jd1 = 0"), capped at the estimate.
    const bool c1 = record.oom_predicted == record.oom_actual_1;
    if (c1 && !round1.oom) {
      gpu::GroundTruthOptions gt2 = gt1;
      gt2.seed = util::derive_seed(base_seed, 2);
      gt2.budget_override = record.estimate;
      const gpu::GroundTruthResult round2 =
          runner.run(model, config.optimizer, device, gt2);
      record.round2_run = true;
      record.oom_actual_2 = round2.oom;
      record.peak_2 = round2.peak_job_bytes;
    }
    finalize_record(record);
    out.push_back(std::move(record));
  }
}

std::size_t EvalHarness::run_anova(const std::vector<models::TrainConfig>& grid,
                                   const gpu::DeviceModel& device,
                                   std::vector<RunRecord>& out) {
  std::size_t runs = 0;
  for (const models::TrainConfig& config : grid) {
    for (int repeat = 0; repeat < options_.repeats; ++repeat) {
      run_one(config, device, repeat, out);
      ++runs;
    }
  }
  return runs;
}

std::size_t EvalHarness::run_monte_carlo(
    const std::vector<std::string>& model_names,
    const std::vector<gpu::DeviceModel>& devices, std::size_t n_runs,
    std::vector<RunRecord>& out) {
  util::Rng rng(util::derive_seed(options_.seed, 0x3C4A));
  for (std::size_t i = 0; i < n_runs; ++i) {
    models::TrainConfig config;
    config.model = model_names[rng.next_below(model_names.size())];
    const auto optimizers = models::optimizers_for(config.model);
    config.optimizer = optimizers[rng.next_below(optimizers.size())];
    const auto batches = models::batch_grid_for(config.model);
    config.batch_size = batches[rng.next_below(batches.size())];
    config.placement = rng.next_bool(0.5)
                           ? fw::ZeroGradPlacement::kPos0BeforeBackward
                           : fw::ZeroGradPlacement::kPos1IterStart;
    const gpu::DeviceModel& device = devices[rng.next_below(devices.size())];
    run_one(config, device, static_cast<int>(i), out);
  }
  return n_runs;
}

}  // namespace xmem::eval
