#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/stats.h"

namespace xmem::eval {

double relative_error(std::int64_t estimate, std::int64_t measured_peak) {
  if (measured_peak <= 0) return 0.0;
  return std::fabs(static_cast<double>(estimate - measured_peak)) /
         static_cast<double>(measured_peak);
}

void finalize_record(RunRecord& record) {
  if (!record.supported) return;
  // Eq. 4: did the OOM prediction match round 1?
  record.c1 = record.oom_predicted == record.oom_actual_1;
  // Eq. 5: prediction matched, and either the capped rerun survived or the
  // job was a true OOM (in which case there is nothing to rerun).
  record.c2 =
      record.c1 && (record.oom_actual_1 || (record.round2_run && !record.oom_actual_2));

  // Eq. 3: prefer the round-2 error when the capped rerun succeeded.
  if (!record.oom_actual_1) {
    record.has_error = true;
    if (record.round2_run && !record.oom_actual_2) {
      record.error = relative_error(record.estimate, record.peak_2);
    } else {
      record.error = relative_error(record.estimate, record.peak_1);
    }
  }

  // Eq. 7.
  if (record.c1 && record.round2_run && !record.oom_actual_2) {
    record.m_save = record.device_capacity - record.estimate;
  } else if (record.c1 && record.oom_actual_1) {
    record.m_save = record.device_capacity;
  } else {
    record.m_save = -record.device_capacity;
  }
}

namespace {

template <typename Predicate>
std::vector<double> collect_errors(const std::vector<RunRecord>& records,
                                   Predicate&& pred) {
  std::vector<double> errors;
  for (const RunRecord& r : records) {
    if (r.supported && r.has_error && pred(r)) errors.push_back(r.error);
  }
  return errors;
}

bool family_matches(const RunRecord& r, const std::string& family) {
  if (family.empty()) return true;
  if (family == "CNN") return r.is_cnn;
  if (family == "Transformer") return !r.is_cnn;
  return false;
}

}  // namespace

std::vector<double> errors_for(const std::vector<RunRecord>& records,
                               const std::string& model,
                               const std::string& estimator) {
  return collect_errors(records, [&](const RunRecord& r) {
    return r.config.model == model && r.estimator == estimator;
  });
}

std::vector<double> errors_for_estimator(const std::vector<RunRecord>& records,
                                         const std::string& estimator) {
  return collect_errors(records, [&](const RunRecord& r) {
    return r.estimator == estimator;
  });
}

double pef_for(const std::vector<RunRecord>& records, const std::string& model,
               const std::string& estimator) {
  std::size_t n = 0;
  std::size_t passed = 0;
  for (const RunRecord& r : records) {
    if (!r.supported || r.config.model != model || r.estimator != estimator) {
      continue;
    }
    ++n;
    if (r.c2) ++passed;
  }
  if (n == 0) return std::numeric_limits<double>::quiet_NaN();
  return static_cast<double>(n - passed) / static_cast<double>(n);
}

double mre_for(const std::vector<RunRecord>& records, const std::string& model,
               const std::string& estimator) {
  const std::vector<double> errors = errors_for(records, model, estimator);
  if (errors.empty()) return std::numeric_limits<double>::quiet_NaN();
  return util::median(errors);
}

double mcp_bytes_for(const std::vector<RunRecord>& records,
                     const std::string& estimator, const std::string& family) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const RunRecord& r : records) {
    if (!r.supported || r.estimator != estimator) continue;
    if (!family_matches(r, family)) continue;
    sum += static_cast<double>(r.m_save);
    ++n;
  }
  if (n == 0) return std::numeric_limits<double>::quiet_NaN();
  return sum / static_cast<double>(n);
}

double mean_runtime_for(const std::vector<RunRecord>& records,
                        const std::string& estimator) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const RunRecord& r : records) {
    if (!r.supported || r.estimator != estimator) continue;
    sum += r.estimator_runtime;
    ++n;
  }
  if (n == 0) return std::numeric_limits<double>::quiet_NaN();
  return sum / static_cast<double>(n);
}

std::vector<std::string> models_in(const std::vector<RunRecord>& records) {
  std::vector<std::string> names;
  for (const RunRecord& r : records) {
    if (std::find(names.begin(), names.end(), r.config.model) == names.end()) {
      names.push_back(r.config.model);
    }
  }
  return names;
}

}  // namespace xmem::eval
