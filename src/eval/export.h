// Result export for external analysis: the run records behind every figure
// can be dumped as CSV (one row per run, stable column order) so users can
// re-plot with pandas/R, and pairwise post-hoc comparisons complement the
// omnibus one-way ANOVA the evaluation reports.
#pragma once

#include <string>
#include <vector>

#include "eval/metrics.h"

namespace xmem::eval {

/// CSV header + one row per record. Fields are quoted only when needed
/// (labels contain no commas by construction, but quoting is handled
/// defensively). Columns:
///   model,optimizer,batch,placement,device,estimator,repeat,supported,
///   estimate_bytes,oom_predicted,oom_actual_1,peak_1_bytes,round2_run,
///   oom_actual_2,peak_2_bytes,c1,c2,has_error,error,m_save_bytes,
///   estimator_runtime_s
std::string to_csv(const std::vector<RunRecord>& records);

/// Write to_csv() to a file; throws std::runtime_error on I/O failure.
void write_csv(const std::vector<RunRecord>& records, const std::string& path);

/// Pairwise post-hoc comparison of estimator error distributions: for each
/// estimator pair, a two-group one-way ANOVA (equivalent to a pooled
/// t-test) with its F statistic and p value. Complements render_anova's
/// omnibus test by naming which pairs differ.
std::string render_pairwise_comparisons(
    const std::vector<RunRecord>& records,
    const std::vector<std::string>& estimators);

}  // namespace xmem::eval
