// Evaluation harness: the two-round validation protocol of §4.1.4 driven
// over the ANOVA grid and Monte Carlo sampling of §4.1.4(1)/(2).
//
// Round 1 runs the job with the full device; round 2 (only when the
// estimator's OOM prediction matched and the job really fit) reruns it with
// the allocator capped at the estimate — the "can the estimate be used
// directly as a safe limit" test behind PEF and MCP.
//
// Estimates are deterministic per (estimator, configuration, device), so
// they are served from the EstimationService's result cache across repeats
// (the harness's old private estimate cache collapsed into the service);
// the ground-truth runs are repeated with fresh seeds (cuDNN algorithm
// jitter), which is where the run-to-run variance the boxplots show comes
// from.
#pragma once

#include <string>
#include <vector>

#include "core/estimation_service.h"
#include "core/estimator_api.h"
#include "eval/metrics.h"
#include "gpu/device_model.h"

namespace xmem::eval {

struct HarnessOptions {
  std::uint64_t seed = 42;
  int repeats = 5;            ///< repeats per configuration (ANOVA)
  int gt_iterations = 5;      ///< iterations of each ground-truth run
  bool use_xmem = true;
  bool use_dnnmem = true;
  bool use_schedtune = true;
  bool use_llmem = true;
  /// Ablation: run xMem with the Orchestrator disabled (extra estimator
  /// "xMem-noOrch" alongside the real one).
  bool ablate_orchestrator = false;
};

class EvalHarness {
 public:
  explicit EvalHarness(HarnessOptions options = {});
  ~EvalHarness();

  /// ANOVA experiment: every configuration of the grid, `repeats` times, on
  /// one device. Appends to `out` and returns the number of runs performed.
  std::size_t run_anova(const std::vector<models::TrainConfig>& grid,
                        const gpu::DeviceModel& device,
                        std::vector<RunRecord>& out);

  /// Monte Carlo experiment: `n_runs` uniformly random draws over
  /// (model, optimizer, batch, zero_grad placement, device).
  std::size_t run_monte_carlo(const std::vector<std::string>& model_names,
                              const std::vector<gpu::DeviceModel>& devices,
                              std::size_t n_runs,
                              std::vector<RunRecord>& out);

  const std::vector<std::string>& estimator_names() const { return names_; }

 private:
  void run_one(const models::TrainConfig& config,
               const gpu::DeviceModel& device, int repeat,
               std::vector<RunRecord>& out);
  core::EstimateResult cached_estimate(const std::string& estimator_name,
                                       const models::TrainConfig& config,
                                       const gpu::DeviceModel& device);

  HarnessOptions options_;
  std::unique_ptr<core::EstimationService> service_;
  std::vector<std::string> names_;
};

}  // namespace xmem::eval
