// Evaluation harness: the two-round validation protocol of §4.1.4 driven
// over the ANOVA grid and Monte Carlo sampling of §4.1.4(1)/(2).
//
// Round 1 runs the job with the full device; round 2 (only when the
// estimator's OOM prediction matched and the job really fit) reruns it with
// the allocator capped at the estimate — the "can the estimate be used
// directly as a safe limit" test behind PEF and MCP.
//
// Estimates are deterministic per (estimator, configuration, device), so
// they are computed once and cached across repeats; the ground-truth runs
// are repeated with fresh seeds (cuDNN algorithm jitter), which is where
// the run-to-run variance the boxplots show comes from.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/estimator_api.h"
#include "eval/metrics.h"
#include "gpu/device_model.h"

namespace xmem::eval {

struct HarnessOptions {
  std::uint64_t seed = 42;
  int repeats = 5;            ///< repeats per configuration (ANOVA)
  int gt_iterations = 5;      ///< iterations of each ground-truth run
  bool use_xmem = true;
  bool use_dnnmem = true;
  bool use_schedtune = true;
  bool use_llmem = true;
  /// Ablation: run xMem with the Orchestrator disabled (extra estimator
  /// "xMem-noOrch" alongside the real one).
  bool ablate_orchestrator = false;
};

class EvalHarness {
 public:
  explicit EvalHarness(HarnessOptions options = {});
  ~EvalHarness();

  /// ANOVA experiment: every configuration of the grid, `repeats` times, on
  /// one device. Appends to `out` and returns the number of runs performed.
  std::size_t run_anova(const std::vector<models::TrainConfig>& grid,
                        const gpu::DeviceModel& device,
                        std::vector<RunRecord>& out);

  /// Monte Carlo experiment: `n_runs` uniformly random draws over
  /// (model, optimizer, batch, zero_grad placement, device).
  std::size_t run_monte_carlo(const std::vector<std::string>& model_names,
                              const std::vector<gpu::DeviceModel>& devices,
                              std::size_t n_runs,
                              std::vector<RunRecord>& out);

  const std::vector<std::string>& estimator_names() const { return names_; }

 private:
  struct CacheKey {
    std::string estimator;
    std::string config_label;
    std::string device;
    bool operator<(const CacheKey& other) const {
      if (estimator != other.estimator) return estimator < other.estimator;
      if (config_label != other.config_label) {
        return config_label < other.config_label;
      }
      return device < other.device;
    }
  };

  void run_one(const models::TrainConfig& config,
               const gpu::DeviceModel& device, int repeat,
               std::vector<RunRecord>& out);
  core::EstimateResult cached_estimate(core::Estimator& estimator,
                                       const models::TrainConfig& config,
                                       const gpu::DeviceModel& device);

  HarnessOptions options_;
  std::vector<std::unique_ptr<core::Estimator>> estimators_;
  std::vector<std::string> names_;
  std::map<CacheKey, core::EstimateResult> estimate_cache_;
};

}  // namespace xmem::eval
