#include "eval/report.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <limits>

#include "util/bytes.h"
#include "util/stats.h"

namespace xmem::eval {

namespace {

std::string fmt(const char* format, ...) {
  char buf[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return buf;
}

bool record_in_family(const RunRecord& r, const std::string& family) {
  if (family.empty()) return true;
  if (family == "CNN") return r.is_cnn;
  if (family == "Transformer") return !r.is_cnn;
  return false;
}

std::vector<RunRecord> filter_family(const std::vector<RunRecord>& records,
                                     const std::string& family) {
  std::vector<RunRecord> out;
  for (const RunRecord& r : records) {
    if (record_in_family(r, family)) out.push_back(r);
  }
  return out;
}

}  // namespace

std::string render_mre_boxplots(const std::vector<RunRecord>& records,
                                const std::vector<std::string>& estimators,
                                const std::string& family,
                                const std::string& title) {
  const std::vector<RunRecord> subset = filter_family(records, family);
  std::string out = "== " + title + " ==\n";
  out += fmt("%-32s %-12s %6s %8s %8s %8s %8s %8s %5s\n", "model", "estimator",
             "n", "median%", "q1%", "q3%", "wlo%", "whi%", "out");
  for (const std::string& model : models_in(subset)) {
    for (const std::string& estimator : estimators) {
      const std::vector<double> errors = errors_for(subset, model, estimator);
      if (errors.empty()) {
        out += fmt("%-32s %-12s %6s %8s\n", model.c_str(), estimator.c_str(),
                   "-", "N/A");
        continue;
      }
      const util::BoxplotSummary box = util::boxplot_summary(errors);
      out += fmt("%-32s %-12s %6zu %8.2f %8.2f %8.2f %8.2f %8.2f %5zu\n",
                 model.c_str(), estimator.c_str(), box.n, box.median * 100,
                 box.q1 * 100, box.q3 * 100, box.whisker_low * 100,
                 box.whisker_high * 100, box.outliers);
    }
  }
  return out;
}

std::string render_quadrants(const std::vector<RunRecord>& records,
                             const std::vector<std::string>& estimators,
                             const std::string& title) {
  constexpr double kThreshold = 0.20;  // the paper's 20% / 20% split
  std::string out = "== " + title + " ==\n";
  out += fmt("%-12s %-32s %8s %8s  %s\n", "estimator", "model", "PEF%", "MRE%",
             "quadrant");
  for (const std::string& estimator : estimators) {
    int optimal = 0, over = 0, under = 0, worst = 0, both_under_10 = 0;
    for (const std::string& model : models_in(records)) {
      const double pef = pef_for(records, model, estimator);
      const double mre = mre_for(records, model, estimator);
      if (std::isnan(pef) || std::isnan(mre)) continue;
      const char* quadrant;
      if (pef <= kThreshold && mre <= kThreshold) {
        quadrant = "Optimal";
        ++optimal;
      } else if (pef <= kThreshold) {
        quadrant = "Overestimation";
        ++over;
      } else if (mre <= kThreshold) {
        quadrant = "Underestimation";
        ++under;
      } else {
        quadrant = "Worst";
        ++worst;
      }
      if (pef < 0.10 && mre < 0.10) ++both_under_10;
      out += fmt("%-12s %-32s %8.1f %8.1f  %s\n", estimator.c_str(),
                 model.c_str(), pef * 100, mre * 100, quadrant);
    }
    out += fmt("%-12s summary: optimal=%d over=%d under=%d worst=%d "
               "(PEF&MRE<10%%: %d)\n",
               estimator.c_str(), optimal, over, under, worst, both_under_10);
  }
  return out;
}

std::string render_mcp_table(const std::vector<RunRecord>& records,
                             const std::vector<std::string>& estimators) {
  std::string out = "== Table 3: Average MCP (GB) ==\n";
  out += fmt("%-14s", "Model Arch");
  for (const std::string& e : estimators) out += fmt(" %12s", e.c_str());
  out += "\n";
  for (const std::string family : {"CNN", "Transformer", ""}) {
    out += fmt("%-14s", family.empty() ? "Overall" : family.c_str());
    for (const std::string& estimator : estimators) {
      const double mcp = mcp_bytes_for(records, estimator, family);
      if (std::isnan(mcp)) {
        out += fmt(" %12s", "N/A");
      } else {
        out += fmt(" %12.2f", mcp / static_cast<double>(util::kGiB));
      }
    }
    out += "\n";
  }
  return out;
}

std::string render_runtime_table(const std::vector<RunRecord>& records,
                                 const std::vector<std::string>& estimators) {
  std::string out = "== Table 4: Average estimator runtime (seconds) ==\n";
  for (const std::string& estimator : estimators) {
    const double runtime = mean_runtime_for(records, estimator);
    if (std::isnan(runtime)) {
      out += fmt("%-12s %12s\n", estimator.c_str(), "N/A");
    } else {
      out += fmt("%-12s %12.6f\n", estimator.c_str(), runtime);
    }
  }
  return out;
}

std::string render_anova(const std::vector<RunRecord>& records,
                         const std::vector<std::string>& estimators) {
  std::vector<std::vector<double>> groups;
  std::string labels;
  for (const std::string& estimator : estimators) {
    std::vector<double> errors = errors_for_estimator(records, estimator);
    if (errors.empty()) continue;
    groups.push_back(std::move(errors));
    labels += estimator + " ";
  }
  const util::AnovaResult anova = util::one_way_anova(groups);
  std::string out = "== One-way ANOVA across estimators (" + labels + ") ==\n";
  out += fmt("F(%.0f, %.0f) = %.2f, p = %.3g\n", anova.df_between,
             anova.df_within, anova.f_statistic, anova.p_value);
  return out;
}

std::string render_headline(const std::vector<RunRecord>& records,
                            const std::vector<std::string>& estimators) {
  std::string out = "== Headline aggregates ==\n";
  out += fmt("%-12s %10s %10s %12s %8s\n", "estimator", "MRE%", "PEF%",
             "MCP(GB)", "n");
  double best_baseline_mre = std::numeric_limits<double>::infinity();
  double xmem_mre = std::numeric_limits<double>::quiet_NaN();
  for (const std::string& estimator : estimators) {
    const std::vector<double> errors =
        errors_for_estimator(records, estimator);
    double mre = std::numeric_limits<double>::quiet_NaN();
    if (!errors.empty()) mre = util::median(errors);

    std::size_t n = 0, passed = 0;
    for (const RunRecord& r : records) {
      if (!r.supported || r.estimator != estimator) continue;
      ++n;
      if (r.c2) ++passed;
    }
    const double pef =
        n > 0 ? static_cast<double>(n - passed) / static_cast<double>(n)
              : std::numeric_limits<double>::quiet_NaN();
    const double mcp = mcp_bytes_for(records, estimator);
    out += fmt("%-12s %10.2f %10.2f %12.2f %8zu\n", estimator.c_str(),
               mre * 100, pef * 100, mcp / static_cast<double>(util::kGiB), n);
    if (estimator == "xMem") {
      xmem_mre = mre;
    } else if (!std::isnan(mre)) {
      best_baseline_mre = std::min(best_baseline_mre, mre);
    }
  }
  if (!std::isnan(xmem_mre) && std::isfinite(best_baseline_mre) &&
      best_baseline_mre > 0) {
    out += fmt("xMem reduces MRE vs best baseline by %.0f%%\n",
               (1.0 - xmem_mre / best_baseline_mre) * 100.0);
  }
  return out;
}

}  // namespace xmem::eval
