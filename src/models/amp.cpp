#include "models/amp.h"

namespace xmem::models {

fw::ModelDescriptor make_amp_variant(const fw::ModelDescriptor& model) {
  fw::ModelDescriptor amp = model;
  amp.name = model.name + "-amp";
  for (fw::ModuleSpec& module : amp.modules) {
    for (fw::OpSpec& op : module.ops) {
      op.output_bytes /= 2;
      op.saved_bytes_cpu /= 2;
      op.saved_bytes_gpu /= 2;
      op.workspace_cpu /= 2;
      op.workspace_gpu /= 2;
      op.bwd_workspace_cpu /= 2;
      op.bwd_workspace_gpu /= 2;
      op.grad_input_bytes /= 2;
      op.benchmark_trial_bytes_gpu /= 2;
    }
  }
  // fp16 parameter mirror, resident for the autocast kernels. Allocated at
  // model-load time by the executor (one block; the per-tensor split of the
  // mirror does not affect peaks at this granularity).
  amp.extra_persistent_bytes += model.param_bytes() / 2;
  // Gradients are fp16 under autocast (GradScaler handles the dynamic
  // range); the optimizer still keeps fp32 state for the master weights.
  amp.grad_bytes_scale = 0.5;
  return amp;
}

}  // namespace xmem::models
