// The model zoo: the 25 workloads of the paper's Table 2.
//
// Builders compute every tensor size from the published architecture
// hyper-parameters. CNNs run on 32x32 inputs with a 100-class head (the
// paper's CNN batch range of 200-700 on a 12 GB card is only feasible at
// CIFAR scale; see DESIGN.md); Transformers use sequence length 512 and
// their real vocabulary/width/depth, so their parameter counts match the
// published sizes within a few percent.
#pragma once

#include <string>
#include <vector>

#include "fw/model.h"

namespace xmem::models {

/// Build a model descriptor for the given batch size. Throws
/// std::invalid_argument for unknown names.
fw::ModelDescriptor build_model(const std::string& name, int batch_size);

bool is_known_model(const std::string& name);

/// The 12 CNNs of Table 2 (RQ1-RQ4).
std::vector<std::string> cnn_model_names();
/// The 10 Transformers of Table 2 (RQ1-RQ4).
std::vector<std::string> transformer_model_names();
/// The 3 large Transformers of RQ5 (marked * in Table 2).
std::vector<std::string> rq5_model_names();
/// All 25.
std::vector<std::string> all_model_names();

namespace detail {
fw::ModelDescriptor build_cnn(const std::string& name, int batch_size);
fw::ModelDescriptor build_transformer(const std::string& name, int batch_size);
bool is_cnn_name(const std::string& name);
bool is_transformer_name(const std::string& name);
}  // namespace detail

}  // namespace xmem::models
