// Workload space of the evaluation (Section 4.1.2, Table 2):
// which optimizers pair with which architecture family, and the batch-size
// grid per model. CNNs sweep 200-700 (step 100); Transformers sweep 5-55
// (step 5) except Qwen3-0.6B and pythia-1b which sweep 1-8 (step 1) due to
// their parameter counts. RQ5 models run at batch 1 with {SGD, Adafactor}.
#pragma once

#include <string>
#include <vector>

#include "fw/types.h"

namespace xmem::models {

/// {SGD, Adam, AdamW, RMSprop, Adagrad} for CNNs.
std::vector<fw::OptimizerKind> cnn_optimizers();
/// {SGD, Adafactor, Adam, AdamW} for Transformers.
std::vector<fw::OptimizerKind> transformer_optimizers();
/// Optimizer set for a specific model name.
std::vector<fw::OptimizerKind> optimizers_for(const std::string& model_name);

/// Batch-size grid for a specific model name (Table 2 ranges).
std::vector<int> batch_grid_for(const std::string& model_name);

/// One fully specified training configuration "j" of the paper.
struct TrainConfig {
  std::string model;
  fw::OptimizerKind optimizer = fw::OptimizerKind::kSgd;
  int batch_size = 0;
  fw::ZeroGradPlacement placement = fw::ZeroGradPlacement::kPos1IterStart;

  std::string label() const;
};

/// The full ANOVA grid for the given model list (all models x applicable
/// optimizers x batch grid, POS1 placement as the canonical loop).
std::vector<TrainConfig> anova_grid(const std::vector<std::string>& model_names);

}  // namespace xmem::models
