// Factory functions producing OpSpec memory recipes for the standard
// operator types the zoo needs. Every byte count is derived from the real
// shape math of the operator; backend workspace formulas encode the
// CPU-vs-CUDA divergence (oneDNN im2col tiles vs cuDNN implicit-GEMM
// workspaces, flash-attention chunk buffers, cuBLAS scratch) that the xMem
// Orchestrator/Simulator must survive.
#pragma once

#include <cstdint>

#include "fw/model.h"

namespace xmem::models {

/// Convolution: input (B, C_in, H, W) -> output (B, C_out, H_out, W_out).
/// `h`/`w` are updated in place to the output spatial dims.
fw::OpSpec conv_op(std::int64_t batch, std::int64_t c_in, std::int64_t& h,
                   std::int64_t& w, std::int64_t c_out, int kernel, int stride,
                   int padding, std::int64_t groups);

/// BatchNorm2d over (B, C, H, W); saves per-channel statistics.
fw::OpSpec batch_norm_op(std::int64_t batch, std::int64_t channels,
                         std::int64_t h, std::int64_t w);

/// MaxPool2d; updates h/w. Saves the argmax index map for backward.
fw::OpSpec max_pool_op(std::int64_t batch, std::int64_t channels,
                       std::int64_t& h, std::int64_t& w, int kernel,
                       int stride);

/// Global average pool to 1x1; updates h/w to 1.
fw::OpSpec global_avg_pool_op(std::int64_t batch, std::int64_t channels,
                              std::int64_t& h, std::int64_t& w);

/// Dense layer on `rows` row-vectors: (rows, in) x (in, out).
fw::OpSpec linear_op(std::int64_t rows, std::int64_t in_features,
                     std::int64_t out_features, bool save_output = true);

/// Token + position embedding lookup producing (B, S, H).
fw::OpSpec embedding_op(std::int64_t batch, std::int64_t seq,
                        std::int64_t hidden);

/// LayerNorm over `rows` rows of width `hidden`; saves mean/rstd.
fw::OpSpec layer_norm_op(std::int64_t rows, std::int64_t hidden);

/// GELU / SiLU style activation over `rows` x `width` (output saved: the
/// input is required for backward and we fold it into the saved output).
fw::OpSpec activation_op(std::int64_t rows, std::int64_t width,
                         const char* name = "aten::gelu");

/// Eager ("math") attention pipeline: three ops (scores bmm, softmax,
/// context bmm). Probabilities are saved for backward on both backends —
/// the memory-hungry pre-flash formulation used by pre-2022 models.
struct AttentionOps {
  fw::OpSpec scores;   ///< q @ k^T
  fw::OpSpec softmax;  ///< softmax(scores), probs saved
  fw::OpSpec context;  ///< probs @ v
};
AttentionOps eager_attention_ops(std::int64_t batch, std::int64_t heads,
                                 std::int64_t seq, std::int64_t head_dim);

/// Fused scaled-dot-product attention (flash). Saves only the logsumexp
/// row statistics; workspaces differ CPU vs CUDA (chunked CPU kernel vs
/// tiled SRAM kernel).
fw::OpSpec sdpa_flash_op(std::int64_t batch, std::int64_t heads,
                         std::int64_t seq, std::int64_t head_dim,
                         std::int64_t kv_heads);

/// log_softmax over (rows, classes); output saved (needed by NLL backward).
fw::OpSpec log_softmax_op(std::int64_t rows, std::int64_t classes);

/// NLL loss reduction to a scalar; backward materializes the full
/// (rows, classes) gradient w.r.t. the log-probabilities.
fw::OpSpec nll_loss_op(std::int64_t rows, std::int64_t classes);

}  // namespace xmem::models
