// Mixed-precision (AMP) variants — the §6.3 extension.
//
// torch.cuda.amp autocast semantics at the memory level:
//   * activations, saved-for-backward payloads, workspaces and gradient
//     buffers are fp16 (half the bytes);
//   * master parameters stay fp32, but a persistent fp16 parameter mirror
//     is resident for the autocast matmuls;
//   * optimizer state stays fp32 (it attaches to the master weights).
//
// The paper's point (§6.3) holds by construction: once the (AMP) trace is
// collected, the xMem analysis pipeline is unchanged — the same estimator
// runs on the variant descriptor.
#pragma once

#include "fw/model.h"

namespace xmem::models {

/// Derive the AMP variant of a descriptor. The result carries "-amp" in its
/// name and roughly halves the activation footprint while keeping fp32
/// master weights and optimizer state.
fw::ModelDescriptor make_amp_variant(const fw::ModelDescriptor& model);

}  // namespace xmem::models
