#include "models/op_factory.h"

#include <algorithm>

#include "fw/backend.h"
#include "util/bytes.h"

namespace xmem::models {

using fw::OpSpec;
using util::kMiB;

namespace {

constexpr std::int64_t kF32 = 4;

// Workspace caps and divergence ratios live in fw/backend.h (the
// consolidated CPU/CUDA divergence table).
constexpr std::int64_t kCpuWorkspaceCap = fw::backend::kCpuWorkspaceCap;
constexpr std::int64_t kGpuWorkspaceCap = fw::backend::kGpuWorkspaceCap;
constexpr std::int64_t kBenchmarkTrialCap = fw::backend::kBenchmarkTrialCap;

std::int64_t conv_out_dim(std::int64_t in, int kernel, int stride,
                          int padding) {
  return (in + 2 * padding - kernel) / stride + 1;
}

}  // namespace

OpSpec conv_op(std::int64_t batch, std::int64_t c_in, std::int64_t& h,
               std::int64_t& w, std::int64_t c_out, int kernel, int stride,
               int padding, std::int64_t groups) {
  const std::int64_t h_out = conv_out_dim(h, kernel, stride, padding);
  const std::int64_t w_out = conv_out_dim(w, kernel, stride, padding);
  OpSpec op;
  op.name = "aten::convolution";
  op.output_bytes = batch * c_out * h_out * w_out * kF32;
  op.output_saved = true;  // consumed by BN backward / conv_backward(input)
  op.allocates_param_grads = true;
  op.grad_input_bytes = batch * c_in * h * w * kF32;

  const std::int64_t k2cin = static_cast<std::int64_t>(kernel) * kernel *
                             (c_in / std::max<std::int64_t>(1, groups));
  // oneDNN lowers KxK convs through blocked im2col; the scratch is a tile of
  // the unfolded input, processed a few images at a time.
  const std::int64_t im2col_tile =
      k2cin * h_out * w_out * kF32 *
      std::min<std::int64_t>(batch, fw::backend::kCpuIm2colBatchTile);
  // cuDNN implicit-GEMM uses a much smaller tiled workspace.
  const std::int64_t cudnn_ws =
      k2cin * h_out * w_out * kF32 / fw::backend::kGpuConvWorkspaceDivisor +
      kMiB;
  if (kernel > 1) {
    op.workspace_cpu = std::min(im2col_tile, kCpuWorkspaceCap);
    op.workspace_gpu = std::min(cudnn_ws, kGpuWorkspaceCap);
    op.bwd_workspace_cpu =
        std::min(im2col_tile + im2col_tile / 2, kCpuWorkspaceCap);
    op.bwd_workspace_gpu = std::min(cudnn_ws * 2, kGpuWorkspaceCap);
    // Benchmark mode tries several algorithms, the hungriest of which (FFT /
    // Winograd tiles) want a few times the steady-state workspace.
    op.benchmark_trial_bytes_gpu =
        std::min(cudnn_ws * 3, kBenchmarkTrialCap);
  } else {
    // 1x1 convs are plain GEMMs: small packing buffers that scale with the
    // problem, capped well inside one pool class on both backends (sizes
    // that straddle the allocator's small/large boundary would flip pools
    // run-to-run under jitter).
    op.workspace_cpu = std::min<std::int64_t>(2 * kMiB, im2col_tile);
    op.workspace_gpu = std::min<std::int64_t>(kMiB / 2, im2col_tile);
    op.bwd_workspace_cpu = op.workspace_cpu;
    op.bwd_workspace_gpu = op.workspace_gpu;
  }
  op.gflops = 2.0 * static_cast<double>(batch) *
              static_cast<double>(k2cin) * static_cast<double>(c_out) *
              static_cast<double>(h_out * w_out) / 1e9;
  h = h_out;
  w = w_out;
  return op;
}

OpSpec batch_norm_op(std::int64_t batch, std::int64_t channels, std::int64_t h,
                     std::int64_t w) {
  OpSpec op;
  op.name = "aten::batch_norm";
  op.output_bytes = batch * channels * h * w * kF32;
  op.output_saved = true;  // the post-activation map feeds the next conv
  op.allocates_param_grads = true;
  // save_mean + save_invstd, per channel, on both backends.
  op.saved_bytes_cpu = 2 * channels * kF32;
  op.saved_bytes_gpu = 2 * channels * kF32;
  // Fusion divergence: the CPU backward materializes the normalized-input
  // temporary; the cuDNN kernel recomputes it in registers.
  op.bwd_workspace_cpu = std::min(op.output_bytes / 2, kCpuWorkspaceCap);
  op.bwd_workspace_gpu = std::min(op.output_bytes / 8, kGpuWorkspaceCap);
  op.grad_input_bytes = op.output_bytes;
  op.gflops = static_cast<double>(batch * channels * h * w) * 4.0 / 1e9;
  return op;
}

OpSpec max_pool_op(std::int64_t batch, std::int64_t channels, std::int64_t& h,
                   std::int64_t& w, int kernel, int stride) {
  const std::int64_t h_out = std::max<std::int64_t>(1, (h - kernel) / stride + 1);
  const std::int64_t w_out = std::max<std::int64_t>(1, (w - kernel) / stride + 1);
  OpSpec op;
  op.name = "aten::max_pool2d";
  op.output_bytes = batch * channels * h_out * w_out * kF32;
  op.output_saved = true;
  // argmax indices (i64) kept for the backward scatter.
  op.saved_bytes_cpu = batch * channels * h_out * w_out * 8;
  op.saved_bytes_gpu = op.saved_bytes_cpu;
  op.grad_input_bytes = batch * channels * h * w * kF32;
  op.gflops = static_cast<double>(batch * channels * h * w) / 1e9;
  h = h_out;
  w = w_out;
  return op;
}

OpSpec global_avg_pool_op(std::int64_t batch, std::int64_t channels,
                          std::int64_t& h, std::int64_t& w) {
  OpSpec op;
  op.name = "aten::adaptive_avg_pool2d";
  op.output_bytes = batch * channels * kF32;
  op.output_saved = true;
  op.grad_input_bytes = batch * channels * h * w * kF32;
  op.gflops = static_cast<double>(batch * channels * h * w) / 1e9;
  h = 1;
  w = 1;
  return op;
}

OpSpec linear_op(std::int64_t rows, std::int64_t in_features,
                 std::int64_t out_features, bool save_output) {
  OpSpec op;
  op.name = "aten::addmm";
  op.output_bytes = rows * out_features * kF32;
  op.output_saved = save_output;
  op.allocates_param_grads = true;
  op.grad_input_bytes = rows * in_features * kF32;
  // GEMM packing buffers (oneDNN) vs cuBLAS tile scratch.
  op.workspace_cpu = std::min<std::int64_t>(
      4 * kMiB + rows * in_features * kF32 / 16, 32 * kMiB);
  op.workspace_gpu = 4 * kMiB;
  op.bwd_workspace_cpu = op.workspace_cpu;
  op.bwd_workspace_gpu = op.workspace_gpu;
  op.gflops = 2.0 * static_cast<double>(rows) *
              static_cast<double>(in_features) *
              static_cast<double>(out_features) / 1e9;
  return op;
}

OpSpec embedding_op(std::int64_t batch, std::int64_t seq, std::int64_t hidden) {
  OpSpec op;
  op.name = "aten::embedding";
  op.output_bytes = batch * seq * hidden * kF32;
  op.output_saved = true;
  op.allocates_param_grads = true;
  op.grad_input_bytes = 0;  // integer ids carry no gradient
  op.gflops = static_cast<double>(batch * seq * hidden) / 1e9;
  return op;
}

OpSpec layer_norm_op(std::int64_t rows, std::int64_t hidden) {
  OpSpec op;
  op.name = "aten::layer_norm";
  op.output_bytes = rows * hidden * kF32;
  op.output_saved = true;
  op.allocates_param_grads = true;
  op.saved_bytes_cpu = 2 * rows * kF32;  // mean + rstd per row
  op.saved_bytes_gpu = 2 * rows * kF32;
  // CPU layer_norm_backward materializes the re-normalized input; the CUDA
  // kernel fuses the recomputation.
  op.bwd_workspace_cpu = rows * hidden * kF32 / 4;
  op.bwd_workspace_gpu = rows * hidden * kF32 / 16;
  op.grad_input_bytes = rows * hidden * kF32;
  op.gflops = static_cast<double>(rows * hidden) * 4.0 / 1e9;
  return op;
}

OpSpec activation_op(std::int64_t rows, std::int64_t width, const char* name) {
  OpSpec op;
  op.name = name;
  op.output_bytes = rows * width * kF32;
  op.output_saved = true;  // backward needs the pre- or post-activation
  // CPU GELU/SiLU materialize the inner erf/sigmoid as a real tensor; the
  // CUDA elementwise kernels are fused (no intermediate).
  op.workspace_cpu = rows * width * kF32 / 4;
  op.workspace_gpu = rows * width * kF32 / 16;
  op.bwd_workspace_cpu = rows * width * kF32 / 4;
  op.bwd_workspace_gpu = rows * width * kF32 / 16;
  op.grad_input_bytes = rows * width * kF32;
  op.gflops = static_cast<double>(rows * width) * 2.0 / 1e9;
  return op;
}

AttentionOps eager_attention_ops(std::int64_t batch, std::int64_t heads,
                                 std::int64_t seq, std::int64_t head_dim) {
  const std::int64_t score_bytes = batch * heads * seq * seq * kF32;
  const std::int64_t ctx_bytes = batch * heads * seq * head_dim * kF32;
  AttentionOps ops;

  ops.scores.name = "aten::bmm";
  ops.scores.output_bytes = score_bytes;
  ops.scores.output_saved = false;  // softmax keeps its own output instead
  ops.scores.grad_input_bytes = ctx_bytes;  // dQ (dK is symmetric, reuse)
  ops.scores.workspace_cpu = 2 * kMiB;
  ops.scores.workspace_gpu = 2 * kMiB;
  ops.scores.gflops = 2.0 * static_cast<double>(batch * heads) *
                      static_cast<double>(seq) * static_cast<double>(seq) *
                      static_cast<double>(head_dim) / 1e9;

  ops.softmax.name = "aten::_softmax";
  ops.softmax.output_bytes = score_bytes;
  ops.softmax.output_saved = true;  // probabilities are needed for backward
  // softmax_backward keeps a small per-thread row buffer on CPU; the CUDA
  // kernel fuses the reduction entirely.
  ops.softmax.bwd_workspace_cpu = 4 * kMiB;
  ops.softmax.bwd_workspace_gpu = kMiB;
  ops.softmax.grad_input_bytes = score_bytes;
  ops.softmax.gflops = static_cast<double>(batch * heads * seq * seq) * 3.0 / 1e9;

  ops.context.name = "aten::bmm";
  ops.context.output_bytes = ctx_bytes;
  ops.context.output_saved = true;
  ops.context.grad_input_bytes = score_bytes;  // dProbs
  ops.context.workspace_cpu = 2 * kMiB;
  ops.context.workspace_gpu = 2 * kMiB;
  ops.context.gflops = ops.scores.gflops;
  return ops;
}

OpSpec sdpa_flash_op(std::int64_t batch, std::int64_t heads, std::int64_t seq,
                     std::int64_t head_dim, std::int64_t kv_heads) {
  OpSpec op;
  op.name = "aten::scaled_dot_product_attention";
  op.output_bytes = batch * heads * seq * head_dim * kF32;
  op.output_saved = true;
  // Flash kernels save only O(S) row statistics (logsumexp), not the S^2
  // probability matrix.
  op.saved_bytes_cpu = batch * heads * seq * kF32;
  op.saved_bytes_gpu = batch * heads * seq * kF32;
  // CPU flash processes KV in chunks with a per-thread accumulation buffer;
  // the CUDA kernel tiles through SRAM and needs almost nothing.
  op.workspace_cpu =
      std::min<std::int64_t>(batch * heads * seq * 128 * kF32, 48 * kMiB);
  op.workspace_gpu = 2 * kMiB;
  op.bwd_workspace_cpu = op.workspace_cpu;
  op.bwd_workspace_gpu = 4 * kMiB;
  // dQ + dK + dV (KV possibly grouped).
  op.grad_input_bytes =
      batch * seq * head_dim * (heads + 2 * kv_heads) * kF32;
  op.gflops = 4.0 * static_cast<double>(batch * heads) *
              static_cast<double>(seq) * static_cast<double>(seq) *
              static_cast<double>(head_dim) / 1e9;
  return op;
}

OpSpec log_softmax_op(std::int64_t rows, std::int64_t classes) {
  OpSpec op;
  op.name = "aten::log_softmax";
  op.output_bytes = rows * classes * kF32;
  op.output_saved = true;  // NLL backward recomputes softmax from these
  // The CPU kernel materializes the shifted exponentials; CUDA keeps the
  // reduction in shared memory.
  op.workspace_cpu = rows * classes * kF32 / 16;
  op.workspace_gpu = rows * classes * kF32 / 64;
  // log_softmax_backward on CPU materializes exp(output) * grad_sum; its
  // temporary matches the forward one in size (same row-major sweep), which
  // matters: equal sizes reuse the cached forward temp instead of splitting
  // a cached logits-sized block and ratcheting reserved memory.
  op.bwd_workspace_cpu = rows * classes * kF32 / 16;
  op.bwd_workspace_gpu = rows * classes * kF32 / 64;
  op.grad_input_bytes = rows * classes * kF32;
  op.gflops = static_cast<double>(rows * classes) * 3.0 / 1e9;
  return op;
}

OpSpec nll_loss_op(std::int64_t rows, std::int64_t classes) {
  OpSpec op;
  op.name = "aten::nll_loss";
  op.output_bytes = kF32;  // scalar loss
  op.output_saved = false;
  op.grad_input_bytes = rows * classes * kF32;  // dLoss/dLogProbs
  op.gflops = static_cast<double>(rows) / 1e9;
  return op;
}

}  // namespace xmem::models
