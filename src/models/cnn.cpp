// CNN zoo builders (the 12 convolutional models of Table 2).
//
// Architectures follow the torchvision implementations; only the input
// resolution (32x32) and classifier width (100 classes) are CIFAR-scale.
// Parameter counts are therefore the published ones for every model whose
// parameters are input-independent (everything except the VGG classifier).
#include <stdexcept>
#include <utility>

#include "models/op_factory.h"
#include "models/zoo.h"

namespace xmem::models::detail {

namespace {

using fw::ModelDescriptor;
using fw::ModelFamily;
using fw::ModuleSpec;
using fw::OpSpec;
using fw::TensorDesc;

constexpr std::int64_t kImageSize = 32;
constexpr std::int64_t kClasses = 100;

/// Sequential CNN assembly: tracks the running (B, C, H, W) shape and
/// appends one ModuleSpec per layer-group.
class CnnNet {
 public:
  CnnNet(std::string name, int year, int batch)
      : batch_(batch), channels_(3), h_(kImageSize), w_(kImageSize) {
    model_.name = std::move(name);
    model_.family = ModelFamily::kCnn;
    model_.year = year;
    model_.batch_size = batch;
    model_.input_bytes = batch_ * 3 * kImageSize * kImageSize * 4;
    model_.target_bytes = batch_ * 8;  // i64 class labels
  }

  std::int64_t channels() const { return channels_; }
  std::int64_t spatial() const { return h_; }

  /// Conv2d(+bias) with no norm (VGG style); ReLU is inplace (no memory).
  void conv_relu(std::int64_t c_out, int kernel, int stride, int padding) {
    ModuleSpec m;
    m.name = next_name("Conv2d");
    m.kind = "Conv2d";
    m.params.push_back(TensorDesc({c_out, channels_, kernel, kernel}));
    m.params.push_back(TensorDesc({c_out}));
    m.ops.push_back(
        conv_op(batch_, channels_, h_, w_, c_out, kernel, stride, padding, 1));
    channels_ = c_out;
    model_.modules.push_back(std::move(m));
  }

  /// Conv2d (no bias) + BatchNorm2d (+ inplace activation).
  void conv_bn_act(std::int64_t c_out, int kernel, int stride, int padding,
                   std::int64_t groups = 1) {
    ModuleSpec m;
    m.name = next_name("ConvBNAct");
    m.kind = "ConvBNAct";
    m.params.push_back(
        TensorDesc({c_out, channels_ / groups, kernel, kernel}));
    m.params.push_back(TensorDesc({c_out}));  // bn weight
    m.params.push_back(TensorDesc({c_out}));  // bn bias
    m.ops.push_back(conv_op(batch_, channels_, h_, w_, c_out, kernel, stride,
                            padding, groups));
    m.ops.push_back(batch_norm_op(batch_, c_out, h_, w_));
    channels_ = c_out;
    model_.modules.push_back(std::move(m));
  }

  void max_pool(int kernel, int stride) {
    ModuleSpec m;
    m.name = next_name("MaxPool2d");
    m.kind = "MaxPool2d";
    m.ops.push_back(max_pool_op(batch_, channels_, h_, w_, kernel, stride));
    model_.modules.push_back(std::move(m));
  }

  /// Squeeze-and-Excitation block (MobileNetV3 / MnasNet / RegNetY).
  void se_block(std::int64_t reduced) {
    ModuleSpec m;
    m.name = next_name("SqueezeExcitation");
    m.kind = "SqueezeExcitation";
    m.params.push_back(TensorDesc({reduced, channels_, 1, 1}));
    m.params.push_back(TensorDesc({reduced}));
    m.params.push_back(TensorDesc({channels_, reduced, 1, 1}));
    m.params.push_back(TensorDesc({channels_}));
    std::int64_t one_h = h_, one_w = w_;
    m.ops.push_back(global_avg_pool_op(batch_, channels_, one_h, one_w));
    OpSpec fc1 = linear_op(batch_, channels_, reduced);
    OpSpec fc2 = linear_op(batch_, reduced, channels_);
    m.ops.push_back(std::move(fc1));
    m.ops.push_back(std::move(fc2));
    // Channel-wise rescale of the full feature map.
    m.ops.push_back(activation_op(batch_ * channels_, h_ * w_, "aten::mul"));
    model_.modules.push_back(std::move(m));
  }

  /// ConvNeXt block: 7x7 depthwise conv, LayerNorm, 4x MLP with GELU,
  /// layer-scale gamma.
  void convnext_block() {
    const std::int64_t c = channels_;
    ModuleSpec m;
    m.name = next_name("CNBlock");
    m.kind = "CNBlock";
    m.params.push_back(TensorDesc({c, 1, 7, 7}));  // depthwise
    m.params.push_back(TensorDesc({c}));           // dw bias
    m.params.push_back(TensorDesc({c}));           // ln weight
    m.params.push_back(TensorDesc({c}));           // ln bias
    m.params.push_back(TensorDesc({4 * c, c}));    // pw1
    m.params.push_back(TensorDesc({4 * c}));
    m.params.push_back(TensorDesc({c, 4 * c}));    // pw2
    m.params.push_back(TensorDesc({c}));
    m.params.push_back(TensorDesc({c}));           // layer scale gamma
    m.ops.push_back(conv_op(batch_, c, h_, w_, c, 7, 1, 3, c));
    const std::int64_t tokens = batch_ * h_ * w_;
    m.ops.push_back(layer_norm_op(tokens, c));
    m.ops.push_back(linear_op(tokens, c, 4 * c));
    m.ops.push_back(activation_op(tokens, 4 * c, "aten::gelu"));
    m.ops.push_back(linear_op(tokens, 4 * c, c));
    model_.modules.push_back(std::move(m));
  }

  /// ConvNeXt downsample: LayerNorm + 2x2/2 conv.
  void convnext_downsample(std::int64_t c_out) {
    ModuleSpec m;
    m.name = next_name("CNDownsample");
    m.kind = "CNDownsample";
    m.params.push_back(TensorDesc({channels_}));
    m.params.push_back(TensorDesc({channels_}));
    m.params.push_back(TensorDesc({c_out, channels_, 2, 2}));
    m.params.push_back(TensorDesc({c_out}));
    m.ops.push_back(layer_norm_op(batch_ * h_ * w_, channels_));
    m.ops.push_back(conv_op(batch_, channels_, h_, w_, c_out, 2, 2, 0, 1));
    channels_ = c_out;
    model_.modules.push_back(std::move(m));
  }

  /// Global pool + (optional hidden FC layers) + linear head + CE loss.
  void classifier(const std::vector<std::int64_t>& hidden_dims) {
    {
      ModuleSpec m;
      m.name = next_name("AdaptiveAvgPool2d");
      m.kind = "AdaptiveAvgPool2d";
      m.ops.push_back(global_avg_pool_op(batch_, channels_, h_, w_));
      model_.modules.push_back(std::move(m));
    }
    std::int64_t features = channels_;
    for (std::int64_t dim : hidden_dims) {
      ModuleSpec m;
      m.name = next_name("Linear");
      m.kind = "Linear";
      m.params.push_back(TensorDesc({dim, features}));
      m.params.push_back(TensorDesc({dim}));
      m.ops.push_back(linear_op(batch_, features, dim));
      features = dim;
      model_.modules.push_back(std::move(m));
    }
    {
      ModuleSpec head;
      head.name = next_name("Linear");
      head.kind = "Linear";
      head.params.push_back(TensorDesc({kClasses, features}));
      head.params.push_back(TensorDesc({kClasses}));
      OpSpec logits = linear_op(batch_, features, kClasses,
                                /*save_output=*/false);
      head.ops.push_back(std::move(logits));
      model_.modules.push_back(std::move(head));
    }
    {
      ModuleSpec loss;
      loss.name = next_name("CrossEntropyLoss");
      loss.kind = "CrossEntropyLoss";
      loss.ops.push_back(log_softmax_op(batch_, kClasses));
      loss.ops.push_back(nll_loss_op(batch_, kClasses));
      model_.modules.push_back(std::move(loss));
    }
  }

  ModelDescriptor take() { return std::move(model_); }

 private:
  std::string next_name(const char* kind) {
    return std::string(kind) + "_" + std::to_string(index_++);
  }

  ModelDescriptor model_;
  std::int64_t batch_;
  std::int64_t channels_;
  std::int64_t h_;
  std::int64_t w_;
  int index_ = 0;
};

ModelDescriptor build_vgg(const std::string& name, int batch, bool deep) {
  CnnNet net(name, 2014, batch);
  const std::vector<std::vector<std::int64_t>> stages =
      deep ? std::vector<std::vector<std::int64_t>>{{64, 64},
                                                    {128, 128},
                                                    {256, 256, 256, 256},
                                                    {512, 512, 512, 512},
                                                    {512, 512, 512, 512}}
           : std::vector<std::vector<std::int64_t>>{{64, 64},
                                                    {128, 128},
                                                    {256, 256, 256},
                                                    {512, 512, 512},
                                                    {512, 512, 512}};
  for (const auto& stage : stages) {
    for (std::int64_t width : stage) net.conv_relu(width, 3, 1, 1);
    net.max_pool(2, 2);
  }
  net.classifier({4096, 4096});
  return net.take();
}

void resnet_bottleneck(CnnNet& net, std::int64_t width, int stride,
                       bool downsample) {
  const std::int64_t out = width * 4;
  net.conv_bn_act(width, 1, 1, 0);
  net.conv_bn_act(width, 3, stride, 1);
  net.conv_bn_act(out, 1, 1, 0);
  if (downsample) {
    // Shortcut projection runs on the block input; approximating its input
    // channel count with the current width keeps the builder sequential and
    // costs <1% of parameters.
    net.conv_bn_act(out, 1, 1, 0);
  }
}

ModelDescriptor build_resnet(const std::string& name, int batch,
                             const std::vector<int>& depths) {
  CnnNet net(name, 2016, batch);
  net.conv_bn_act(64, 7, 2, 3);
  net.max_pool(3, 2);
  const std::vector<std::int64_t> widths = {64, 128, 256, 512};
  for (std::size_t stage = 0; stage < depths.size(); ++stage) {
    for (int block = 0; block < depths[stage]; ++block) {
      const int stride = (stage > 0 && block == 0) ? 2 : 1;
      resnet_bottleneck(net, widths[stage], stride, block == 0);
    }
  }
  net.classifier({});
  return net.take();
}

void inverted_residual(CnnNet& net, std::int64_t expand_ratio,
                       std::int64_t c_out, int kernel, int stride,
                       std::int64_t se_reduced = 0) {
  const std::int64_t c_in = net.channels();
  const std::int64_t expanded = c_in * expand_ratio;
  if (expand_ratio != 1) net.conv_bn_act(expanded, 1, 1, 0);
  net.conv_bn_act(expanded, kernel, stride, kernel / 2, expanded);
  if (se_reduced > 0) net.se_block(se_reduced);
  net.conv_bn_act(c_out, 1, 1, 0);  // linear projection (no activation)
}

ModelDescriptor build_mobilenet_v2(int batch) {
  CnnNet net("MobileNetV2", 2018, batch);
  net.conv_bn_act(32, 3, 2, 1);
  struct Stage { std::int64_t t, c; int n, s; };
  const Stage stages[] = {{1, 16, 1, 1},  {6, 24, 2, 2},  {6, 32, 3, 2},
                          {6, 64, 4, 2},  {6, 96, 3, 1},  {6, 160, 3, 2},
                          {6, 320, 1, 1}};
  for (const auto& st : stages) {
    for (int i = 0; i < st.n; ++i) {
      inverted_residual(net, st.t, st.c, 3, i == 0 ? st.s : 1);
    }
  }
  net.conv_bn_act(1280, 1, 1, 0);
  net.classifier({});
  return net.take();
}

ModelDescriptor build_mobilenet_v3(const std::string& name, int batch,
                                   bool large) {
  CnnNet net(name, 2019, batch);
  net.conv_bn_act(16, 3, 2, 1);
  struct Row { std::int64_t exp, out; int k, s; bool se; };
  if (large) {
    const Row rows[] = {
        {1, 16, 3, 1, false},  {4, 24, 3, 2, false},  {3, 24, 3, 1, false},
        {3, 40, 5, 2, true},   {3, 40, 5, 1, true},   {3, 40, 5, 1, true},
        {6, 80, 3, 2, false},  {2, 80, 3, 1, false},  {2, 80, 3, 1, false},
        {2, 80, 3, 1, false},  {6, 112, 3, 1, true},  {6, 112, 3, 1, true},
        {6, 160, 5, 2, true},  {6, 160, 5, 1, true},  {6, 160, 5, 1, true}};
    for (const auto& r : rows) {
      inverted_residual(net, r.exp, r.out, r.k, r.s,
                        r.se ? std::max<std::int64_t>(8, r.out / 4) : 0);
    }
    net.conv_bn_act(960, 1, 1, 0);
    net.classifier({1280});
  } else {
    const Row rows[] = {
        {1, 16, 3, 2, true},   {4, 24, 3, 2, false}, {4, 24, 3, 1, false},
        {4, 40, 5, 2, true},   {6, 40, 5, 1, true},  {6, 40, 5, 1, true},
        {3, 48, 5, 1, true},   {3, 48, 5, 1, true},  {6, 96, 5, 2, true},
        {6, 96, 5, 1, true},   {6, 96, 5, 1, true}};
    for (const auto& r : rows) {
      inverted_residual(net, r.exp, r.out, r.k, r.s,
                        r.se ? std::max<std::int64_t>(8, r.out / 4) : 0);
    }
    net.conv_bn_act(576, 1, 1, 0);
    net.classifier({1024});
  }
  return net.take();
}

ModelDescriptor build_mnasnet(int batch) {
  CnnNet net("MnasNet", 2019, batch);
  net.conv_bn_act(32, 3, 2, 1);
  net.conv_bn_act(32, 3, 1, 1, 32);  // separable stem, depthwise half
  net.conv_bn_act(16, 1, 1, 0);      // separable stem, pointwise half
  struct Row { std::int64_t t, c; int n, k, s; bool se; };
  const Row rows[] = {{3, 24, 3, 3, 2, false}, {3, 40, 3, 5, 2, true},
                      {6, 80, 3, 5, 2, false}, {6, 96, 2, 3, 1, true},
                      {6, 192, 4, 5, 2, true}, {6, 320, 1, 3, 1, false}};
  for (const auto& r : rows) {
    for (int i = 0; i < r.n; ++i) {
      inverted_residual(net, r.t, r.c, r.k, i == 0 ? r.s : 1,
                        r.se ? std::max<std::int64_t>(8, r.c / 4) : 0);
    }
  }
  net.conv_bn_act(1280, 1, 1, 0);
  net.classifier({});
  return net.take();
}

ModelDescriptor build_regnet(const std::string& name, int batch, bool with_se) {
  // RegNet(X|Y)-400MF: depths [1,2,7,12], widths [32,64,160,384], group 16.
  CnnNet net(name, 2020, batch);
  net.conv_bn_act(32, 3, 2, 1);
  const std::vector<int> depths = {1, 2, 7, 12};
  const std::vector<std::int64_t> widths = {32, 64, 160, 384};
  constexpr std::int64_t kGroupWidth = 16;
  for (std::size_t stage = 0; stage < depths.size(); ++stage) {
    for (int block = 0; block < depths[stage]; ++block) {
      const std::int64_t width = widths[stage];
      const int stride = block == 0 ? 2 : 1;
      net.conv_bn_act(width, 1, 1, 0);
      net.conv_bn_act(width, 3, stride, 1, width / kGroupWidth);
      if (with_se) net.se_block(std::max<std::int64_t>(8, width / 4));
      net.conv_bn_act(width, 1, 1, 0);
      if (block == 0) net.conv_bn_act(width, 1, 1, 0);  // projection shortcut
    }
  }
  net.classifier({});
  return net.take();
}

ModelDescriptor build_convnext(const std::string& name, int batch, bool base) {
  CnnNet net(name, 2022, batch);
  const std::vector<int> depths = base ? std::vector<int>{3, 3, 27, 3}
                                       : std::vector<int>{3, 3, 9, 3};
  const std::vector<std::int64_t> widths =
      base ? std::vector<std::int64_t>{128, 256, 512, 1024}
           : std::vector<std::int64_t>{96, 192, 384, 768};
  // Patchify stem: 4x4 conv stride 4 + LayerNorm.
  net.conv_bn_act(widths[0], 4, 4, 0);
  for (std::size_t stage = 0; stage < depths.size(); ++stage) {
    if (stage > 0) net.convnext_downsample(widths[stage]);
    for (int block = 0; block < depths[stage]; ++block) net.convnext_block();
  }
  net.classifier({});
  return net.take();
}

}  // namespace

bool is_cnn_name(const std::string& name) {
  for (const auto& known : cnn_model_names()) {
    if (known == name) return true;
  }
  return false;
}

ModelDescriptor build_cnn(const std::string& name, int batch_size) {
  if (name == "VGG16") return build_vgg(name, batch_size, false);
  if (name == "VGG19") return build_vgg(name, batch_size, true);
  if (name == "ResNet101") {
    return build_resnet(name, batch_size, {3, 4, 23, 3});
  }
  if (name == "ResNet152") {
    return build_resnet(name, batch_size, {3, 8, 36, 3});
  }
  if (name == "MobileNetV2") return build_mobilenet_v2(batch_size);
  if (name == "MobileNetV3Small") {
    return build_mobilenet_v3(name, batch_size, false);
  }
  if (name == "MobileNetV3Large") {
    return build_mobilenet_v3(name, batch_size, true);
  }
  if (name == "MnasNet") return build_mnasnet(batch_size);
  if (name == "RegNetX400MF") return build_regnet(name, batch_size, false);
  if (name == "RegNetY400MF") return build_regnet(name, batch_size, true);
  if (name == "ConvNeXtTiny") return build_convnext(name, batch_size, false);
  if (name == "ConvNeXtBase") return build_convnext(name, batch_size, true);
  throw std::invalid_argument("unknown CNN model: " + name);
}

}  // namespace xmem::models::detail
