#include "models/zoo.h"

#include <stdexcept>

namespace xmem::models {

std::vector<std::string> cnn_model_names() {
  return {"ConvNeXtBase",     "ConvNeXtTiny",     "MnasNet",
          "MobileNetV3Large", "MobileNetV3Small", "MobileNetV2",
          "RegNetX400MF",     "RegNetY400MF",     "ResNet101",
          "ResNet152",        "VGG16",            "VGG19"};
}

std::vector<std::string> transformer_model_names() {
  return {"Cerebras-GPT-111M", "Qwen3-0.6B", "T5-small", "distilgpt2",
          "gpt-neo-125M",      "gpt2",       "opt-125m", "opt-350m",
          "pythia-1b",         "t5-base"};
}

std::vector<std::string> rq5_model_names() {
  return {"DeepSeek-R1-Distill-Qwen-1.5B", "Llama-3.2-3B-Instruct",
          "Qwen3-4B"};
}

std::vector<std::string> all_model_names() {
  std::vector<std::string> names = cnn_model_names();
  for (auto& n : transformer_model_names()) names.push_back(n);
  for (auto& n : rq5_model_names()) names.push_back(n);
  return names;
}

bool is_known_model(const std::string& name) {
  return detail::is_cnn_name(name) || detail::is_transformer_name(name);
}

fw::ModelDescriptor build_model(const std::string& name, int batch_size) {
  if (batch_size <= 0) {
    throw std::invalid_argument("build_model: batch_size must be > 0");
  }
  if (detail::is_cnn_name(name)) return detail::build_cnn(name, batch_size);
  if (detail::is_transformer_name(name)) {
    return detail::build_transformer(name, batch_size);
  }
  throw std::invalid_argument("unknown model: " + name);
}

}  // namespace xmem::models
