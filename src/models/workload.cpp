#include "models/workload.h"

#include <stdexcept>

#include "models/zoo.h"

namespace xmem::models {

using fw::OptimizerKind;

std::vector<OptimizerKind> cnn_optimizers() {
  return {OptimizerKind::kSgd, OptimizerKind::kAdam, OptimizerKind::kAdamW,
          OptimizerKind::kRmsprop, OptimizerKind::kAdagrad};
}

std::vector<OptimizerKind> transformer_optimizers() {
  return {OptimizerKind::kSgd, OptimizerKind::kAdafactor, OptimizerKind::kAdam,
          OptimizerKind::kAdamW};
}

std::vector<OptimizerKind> optimizers_for(const std::string& model_name) {
  for (const auto& rq5 : rq5_model_names()) {
    if (rq5 == model_name) {
      // RQ5 runs only the optimizers that never OOM on the A100 (4.1.2).
      return {OptimizerKind::kSgd, OptimizerKind::kAdafactor};
    }
  }
  if (detail::is_cnn_name(model_name)) return cnn_optimizers();
  if (detail::is_transformer_name(model_name)) return transformer_optimizers();
  throw std::invalid_argument("optimizers_for: unknown model " + model_name);
}

std::vector<int> batch_grid_for(const std::string& model_name) {
  for (const auto& rq5 : rq5_model_names()) {
    if (rq5 == model_name) return {1};
  }
  if (detail::is_cnn_name(model_name)) {
    return {200, 300, 400, 500, 600, 700};
  }
  if (model_name == "Qwen3-0.6B" || model_name == "pythia-1b") {
    return {1, 2, 3, 4, 5, 6, 7, 8};
  }
  if (detail::is_transformer_name(model_name)) {
    return {5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 55};
  }
  throw std::invalid_argument("batch_grid_for: unknown model " + model_name);
}

std::string TrainConfig::label() const {
  return model + "/" + to_string(optimizer) + "/b" + std::to_string(batch_size) +
         "/" + to_string(placement);
}

std::vector<TrainConfig> anova_grid(
    const std::vector<std::string>& model_names) {
  std::vector<TrainConfig> grid;
  for (const auto& model : model_names) {
    for (const auto optimizer : optimizers_for(model)) {
      for (const int batch : batch_grid_for(model)) {
        grid.push_back(TrainConfig{model, optimizer, batch,
                                   fw::ZeroGradPlacement::kPos1IterStart});
      }
    }
  }
  return grid;
}

}  // namespace xmem::models
