// Transformer zoo builders (the 10 RQ1-RQ4 models + the 3 RQ5 models of
// Table 2). Hyper-parameters follow the published HuggingFace configs;
// parameter counts land within a few percent of the advertised sizes
// (verified by tests/models_test.cpp).
#include <stdexcept>
#include <utility>

#include "models/op_factory.h"
#include "models/zoo.h"

namespace xmem::models::detail {

namespace {

using fw::ModelDescriptor;
using fw::ModelFamily;
using fw::ModuleSpec;
using fw::OpSpec;
using fw::TensorDesc;

constexpr std::int64_t kSeqLen = 512;

struct TransformerCfg {
  const char* name;
  int year = 2020;
  std::int64_t layers = 12;
  std::int64_t hidden = 768;
  std::int64_t heads = 12;
  std::int64_t kv_heads = 0;   ///< 0 => MHA (kv_heads == heads)
  std::int64_t head_dim = 0;   ///< 0 => hidden / heads
  std::int64_t ffn = 3072;
  std::int64_t vocab = 50257;
  bool learned_pos = true;   ///< GPT-2 style wpe table
  bool tied_lm_head = true;  ///< lm_head shares the embedding matrix
  bool gated_mlp = false;    ///< SwiGLU (gate+up+down) MLP
  bool rms_norm = false;     ///< RMSNorm (1 param) vs LayerNorm (2 params)
  bool attn_bias = true;     ///< biases on attention/MLP projections
  std::int64_t encoder_layers = 0;  ///< >0 => encoder-decoder (T5)
};

/// Paper Table 2: the year column drives the attention implementation —
/// 2022+ models run fused flash/SDPA attention; older ones run the eager
/// (materialized-probabilities) pipeline.
bool uses_flash(const TransformerCfg& cfg) { return cfg.year >= 2022; }

class TransformerNet {
 public:
  TransformerNet(const TransformerCfg& cfg, int batch)
      : cfg_(cfg), batch_(batch), rows_(batch * kSeqLen) {
    model_.name = cfg.name;
    model_.family = ModelFamily::kTransformer;
    model_.year = cfg.year;
    model_.batch_size = batch;
    model_.seq_len = kSeqLen;
    model_.hidden_dim = cfg.hidden;
    model_.vocab_size = cfg.vocab;
    model_.input_bytes = rows_ * 8;   // i64 token ids
    model_.target_bytes = rows_ * 8;  // i64 labels
  }

  void embedding() {
    ModuleSpec m;
    m.name = next_name("Embedding");
    m.kind = "Embedding";
    m.params.push_back(TensorDesc({cfg_.vocab, cfg_.hidden}));
    if (cfg_.learned_pos) {
      m.params.push_back(TensorDesc({1024, cfg_.hidden}));  // wpe
    }
    m.ops.push_back(embedding_op(batch_, kSeqLen, cfg_.hidden));
    model_.modules.push_back(std::move(m));
  }

  void norm(const char* label) {
    ModuleSpec m;
    m.name = next_name(label);
    m.kind = cfg_.rms_norm ? "RMSNorm" : "LayerNorm";
    m.params.push_back(TensorDesc({cfg_.hidden}));
    if (!cfg_.rms_norm) m.params.push_back(TensorDesc({cfg_.hidden}));
    m.ops.push_back(layer_norm_op(rows_, cfg_.hidden));
    model_.modules.push_back(std::move(m));
  }

  void attention(const char* label) {
    const std::int64_t heads = cfg_.heads;
    const std::int64_t kv_heads = cfg_.kv_heads > 0 ? cfg_.kv_heads : heads;
    const std::int64_t head_dim =
        cfg_.head_dim > 0 ? cfg_.head_dim : cfg_.hidden / heads;
    const std::int64_t q_dim = heads * head_dim;
    const std::int64_t kv_dim = kv_heads * head_dim;

    ModuleSpec m;
    m.name = next_name(label);
    m.kind = "Attention";
    m.params.push_back(TensorDesc({q_dim + 2 * kv_dim, cfg_.hidden}));  // qkv
    if (cfg_.attn_bias) m.params.push_back(TensorDesc({q_dim + 2 * kv_dim}));
    m.params.push_back(TensorDesc({cfg_.hidden, q_dim}));  // out proj
    if (cfg_.attn_bias) m.params.push_back(TensorDesc({cfg_.hidden}));

    m.ops.push_back(linear_op(rows_, cfg_.hidden, q_dim + 2 * kv_dim));
    if (uses_flash(cfg_)) {
      m.ops.push_back(
          sdpa_flash_op(batch_, heads, kSeqLen, head_dim, kv_heads));
    } else {
      AttentionOps attn =
          eager_attention_ops(batch_, heads, kSeqLen, head_dim);
      m.ops.push_back(std::move(attn.scores));
      m.ops.push_back(std::move(attn.softmax));
      m.ops.push_back(std::move(attn.context));
    }
    m.ops.push_back(linear_op(rows_, q_dim, cfg_.hidden));
    model_.modules.push_back(std::move(m));
  }

  void mlp() {
    ModuleSpec m;
    m.name = next_name("MLP");
    m.kind = "MLP";
    if (cfg_.gated_mlp) {
      m.params.push_back(TensorDesc({cfg_.ffn, cfg_.hidden}));  // gate
      m.params.push_back(TensorDesc({cfg_.ffn, cfg_.hidden}));  // up
      m.params.push_back(TensorDesc({cfg_.hidden, cfg_.ffn}));  // down
      // Fused gate+up projection, SiLU-gate, down projection.
      m.ops.push_back(linear_op(rows_, cfg_.hidden, 2 * cfg_.ffn));
      m.ops.push_back(activation_op(rows_, cfg_.ffn, "aten::silu"));
      m.ops.push_back(linear_op(rows_, cfg_.ffn, cfg_.hidden));
    } else {
      m.params.push_back(TensorDesc({cfg_.ffn, cfg_.hidden}));
      if (cfg_.attn_bias) m.params.push_back(TensorDesc({cfg_.ffn}));
      m.params.push_back(TensorDesc({cfg_.hidden, cfg_.ffn}));
      if (cfg_.attn_bias) m.params.push_back(TensorDesc({cfg_.hidden}));
      m.ops.push_back(linear_op(rows_, cfg_.hidden, cfg_.ffn));
      m.ops.push_back(activation_op(rows_, cfg_.ffn, "aten::gelu"));
      m.ops.push_back(linear_op(rows_, cfg_.ffn, cfg_.hidden));
    }
    model_.modules.push_back(std::move(m));
  }

  void block(const char* attn_label = "SelfAttention") {
    norm("InputNorm");
    attention(attn_label);
    norm("PostAttnNorm");
    mlp();
  }

  void lm_head_and_loss() {
    norm("FinalNorm");
    {
      ModuleSpec head;
      head.name = next_name("LMHead");
      head.kind = "LMHead";
      if (!cfg_.tied_lm_head) {
        head.params.push_back(TensorDesc({cfg_.vocab, cfg_.hidden}));
      }
      // Logits die as soon as log_softmax has consumed them.
      OpSpec logits = linear_op(rows_, cfg_.hidden, cfg_.vocab,
                                /*save_output=*/false);
      if (cfg_.tied_lm_head) {
        // Tied weights: the matmul still back-propagates into the embedding.
        logits.allocates_param_grads = false;
      }
      head.ops.push_back(std::move(logits));
      model_.modules.push_back(std::move(head));
    }
    {
      ModuleSpec loss;
      loss.name = next_name("CrossEntropyLoss");
      loss.kind = "CrossEntropyLoss";
      loss.ops.push_back(log_softmax_op(rows_, cfg_.vocab));
      loss.ops.push_back(nll_loss_op(rows_, cfg_.vocab));
      model_.modules.push_back(std::move(loss));
    }
  }

  ModelDescriptor take() { return std::move(model_); }

 private:
  std::string next_name(const char* kind) {
    return std::string(kind) + "_" + std::to_string(index_++);
  }

  TransformerCfg cfg_;
  std::int64_t batch_;
  std::int64_t rows_;
  ModelDescriptor model_;
  int index_ = 0;
};

ModelDescriptor build_decoder_only(const TransformerCfg& cfg, int batch) {
  TransformerNet net(cfg, batch);
  net.embedding();
  for (std::int64_t layer = 0; layer < cfg.layers; ++layer) net.block();
  net.lm_head_and_loss();
  return net.take();
}

ModelDescriptor build_encoder_decoder(const TransformerCfg& cfg, int batch) {
  TransformerNet net(cfg, batch);
  net.embedding();
  for (std::int64_t layer = 0; layer < cfg.encoder_layers; ++layer) {
    net.block("EncoderSelfAttention");
  }
  for (std::int64_t layer = 0; layer < cfg.layers; ++layer) {
    net.norm("InputNorm");
    net.attention("DecoderSelfAttention");
    net.norm("CrossNorm");
    net.attention("CrossAttention");
    net.norm("PostAttnNorm");
    net.mlp();
  }
  net.lm_head_and_loss();
  return net.take();
}

TransformerCfg config_for(const std::string& name) {
  TransformerCfg cfg;
  if (name == "distilgpt2") {
    cfg = {.name = "distilgpt2", .year = 2019, .layers = 6};
    return cfg;
  }
  if (name == "gpt2") {
    cfg = {.name = "gpt2", .year = 2019, .layers = 12};
    return cfg;
  }
  if (name == "gpt-neo-125M") {
    cfg = {.name = "gpt-neo-125M", .year = 2022, .layers = 12};
    return cfg;
  }
  if (name == "opt-125m") {
    cfg = {.name = "opt-125m", .year = 2022, .layers = 12, .vocab = 50272};
    return cfg;
  }
  if (name == "opt-350m") {
    cfg = {.name = "opt-350m",
           .year = 2022,
           .layers = 24,
           .hidden = 1024,
           .heads = 16,
           .ffn = 4096,
           .vocab = 50272};
    return cfg;
  }
  if (name == "Cerebras-GPT-111M") {
    cfg = {.name = "Cerebras-GPT-111M", .year = 2023, .layers = 10};
    return cfg;
  }
  if (name == "pythia-1b") {
    cfg = {.name = "pythia-1b",
           .year = 2023,
           .layers = 16,
           .hidden = 2048,
           .heads = 8,
           .ffn = 8192,
           .vocab = 50304,
           .learned_pos = false,  // rotary
           .tied_lm_head = false};
    return cfg;
  }
  if (name == "Qwen3-0.6B") {
    cfg = {.name = "Qwen3-0.6B",
           .year = 2025,
           .layers = 28,
           .hidden = 1024,
           .heads = 16,
           .kv_heads = 8,
           .head_dim = 128,
           .ffn = 3072,
           .vocab = 151936,
           .learned_pos = false,
           .tied_lm_head = true,
           .gated_mlp = true,
           .rms_norm = true,
           .attn_bias = false};
    return cfg;
  }
  if (name == "T5-small") {
    cfg = {.name = "T5-small",
           .year = 2020,
           .layers = 6,
           .hidden = 512,
           .heads = 8,
           .ffn = 2048,
           .vocab = 32128,
           .learned_pos = false,
           .attn_bias = false,
           .encoder_layers = 6};
    return cfg;
  }
  if (name == "t5-base") {
    cfg = {.name = "t5-base",
           .year = 2020,
           .layers = 12,
           .hidden = 768,
           .heads = 12,
           .ffn = 3072,
           .vocab = 32128,
           .learned_pos = false,
           .attn_bias = false,
           .encoder_layers = 12};
    return cfg;
  }
  if (name == "Llama-3.2-3B-Instruct") {
    cfg = {.name = "Llama-3.2-3B-Instruct",
           .year = 2024,
           .layers = 28,
           .hidden = 3072,
           .heads = 24,
           .kv_heads = 8,
           .head_dim = 128,
           .ffn = 8192,
           .vocab = 128256,
           .learned_pos = false,
           .tied_lm_head = true,
           .gated_mlp = true,
           .rms_norm = true,
           .attn_bias = false};
    return cfg;
  }
  if (name == "DeepSeek-R1-Distill-Qwen-1.5B") {
    cfg = {.name = "DeepSeek-R1-Distill-Qwen-1.5B",
           .year = 2025,
           .layers = 28,
           .hidden = 1536,
           .heads = 12,
           .kv_heads = 2,
           .head_dim = 128,
           .ffn = 8960,
           .vocab = 151936,
           .learned_pos = false,
           .tied_lm_head = true,
           .gated_mlp = true,
           .rms_norm = true,
           .attn_bias = false};
    return cfg;
  }
  if (name == "Qwen3-4B") {
    cfg = {.name = "Qwen3-4B",
           .year = 2025,
           .layers = 36,
           .hidden = 2560,
           .heads = 32,
           .kv_heads = 8,
           .head_dim = 128,
           .ffn = 9728,
           .vocab = 151936,
           .learned_pos = false,
           .tied_lm_head = true,
           .gated_mlp = true,
           .rms_norm = true,
           .attn_bias = false};
    return cfg;
  }
  throw std::invalid_argument("unknown Transformer model: " + name);
}

}  // namespace

bool is_transformer_name(const std::string& name) {
  for (const auto& known : transformer_model_names()) {
    if (known == name) return true;
  }
  for (const auto& known : rq5_model_names()) {
    if (known == name) return true;
  }
  return false;
}

ModelDescriptor build_transformer(const std::string& name, int batch_size) {
  const TransformerCfg cfg = config_for(name);
  if (cfg.encoder_layers > 0) return build_encoder_decoder(cfg, batch_size);
  return build_decoder_only(cfg, batch_size);
}

}  // namespace xmem::models::detail
