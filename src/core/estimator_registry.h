// Name -> factory registry for estimators, mirroring
// alloc/backend_registry.h. The EstimationService and xmem_cli resolve
// estimator names ("xMem", "DNNMem", ...) through it; extensions register
// their own with register_estimator() and immediately work in sweeps, the
// eval harness, and the CLI.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/estimator_api.h"

namespace xmem::core {

using EstimatorFactory = std::function<std::unique_ptr<Estimator>()>;

/// Register a new estimator. Throws std::invalid_argument on duplicate or
/// empty names and null factories. `session_backed` marks profile-once
/// engines the EstimationService runs through the shared ProfileSession +
/// simulator-replay path (allocator fan-out, stage splits); `orchestrate`
/// selects the Orchestrator rule set for such engines.
void register_estimator(const std::string& name,
                        const std::string& description,
                        EstimatorFactory factory,
                        bool session_backed = false,
                        bool orchestrate = true);

bool is_known_estimator(const std::string& name);

/// Whether the service should dispatch this estimator through the
/// ProfileSession path (false for unknown names).
bool estimator_uses_session(const std::string& name);

/// Orchestrator rules on/off for session-backed engines (true otherwise).
bool estimator_orchestrates(const std::string& name);

/// Registered names, sorted.
std::vector<std::string> estimator_names();

std::string estimator_description(const std::string& name);

/// Construct an estimator by name; throws std::invalid_argument listing the
/// registered names when unknown.
std::unique_ptr<Estimator> make_estimator(const std::string& name);

}  // namespace xmem::core
