#include "core/profile_session.h"

#include <chrono>
#include <utility>

#include "core/profile_runner.h"
#include "models/zoo.h"

namespace xmem::core {

std::string ProfileKey::cache_string() const {
  std::string key = model_name;
  key += '/';
  key += to_string(optimizer);
  key += "/b";
  key += std::to_string(batch_size);
  key += '/';
  key += to_string(placement);
  key += "/s";
  key += std::to_string(seed);
  key += "/it";
  key += std::to_string(profile_iterations);
  key += "/rules";
  key += orchestrator_config.rule_params ? '1' : '0';
  key += orchestrator_config.rule_batch ? '1' : '0';
  key += orchestrator_config.rule_gradients ? '1' : '0';
  key += orchestrator_config.rule_optimizer_state ? '1' : '0';
  key += "/rt";
  key += json_round_trip ? '1' : '0';
  return key;
}

ProfileArtifacts run_profile_pipeline(const ProfileKey& key) {
  ProfileArtifacts artifacts;

  const auto profile_start = std::chrono::steady_clock::now();
  const fw::ModelDescriptor model =
      models::build_model(key.model_name, key.batch_size);

  ProfileOptions profile_options;
  profile_options.iterations = key.profile_iterations;
  profile_options.placement = key.placement;
  profile_options.seed = key.seed;
  artifacts.trace = profile_on_cpu(model, key.optimizer, profile_options);

  if (key.json_round_trip) {
    const std::string json = artifacts.trace.to_json_string();
    artifacts.trace = trace::Trace::from_json_string(json);
  }
  const auto analyze_start = std::chrono::steady_clock::now();

  Analyzer analyzer;
  artifacts.analysis = analyzer.analyze(artifacts.trace);

  Orchestrator orchestrator;
  artifacts.orchestration = orchestrator.orchestrate(
      artifacts.analysis.timeline, key.orchestrator_config);

  const auto end = std::chrono::steady_clock::now();
  artifacts.profile_seconds =
      std::chrono::duration<double>(analyze_start - profile_start).count();
  artifacts.analyze_seconds =
      std::chrono::duration<double>(end - analyze_start).count();
  return artifacts;
}

ProfileSession::ProfileSession(std::size_t capacity, SessionQuota quota)
    : capacity_(capacity == 0 ? 1 : capacity), quota_(quota) {}

std::size_t ProfileSession::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::size_t ProfileSession::tenant_resident(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tenant_counts_.find(tenant);
  return it == tenant_counts_.end() ? 0 : it->second;
}

std::map<std::string, std::size_t> ProfileSession::resident_by_tenant() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tenant_counts_;
}

void ProfileSession::erase_entry_locked(
    std::map<std::string, Entry>::iterator it) {
  const auto count_it = tenant_counts_.find(it->second.tenant);
  if (count_it != tenant_counts_.end()) {
    if (count_it->second <= 1) {
      tenant_counts_.erase(count_it);
    } else {
      --count_it->second;
    }
  }
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

ProfileSession::Lookup ProfileSession::get(const ProfileKey& key,
                                           const std::string& tenant) {
  const std::string cache_key = key.cache_string();
  std::shared_future<ArtifactsPtr> future;
  std::promise<ArtifactsPtr> promise;
  bool miss = false;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(cache_key);
    if (it != entries_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      future = it->second.future;
    } else {
      // Quota gate before the insert: the quota path only ever touches the
      // requesting tenant's own entries, so tenant A saturating its share
      // can never evict tenant B this way. The untenanted "" is exempt.
      const bool quota_applies = quota_.max_resident_per_tenant > 0 &&
                                 !tenant.empty();
      const auto tenant_count_it = tenant_counts_.find(tenant);
      if (quota_applies && tenant_count_it != tenant_counts_.end() &&
          tenant_count_it->second >= quota_.max_resident_per_tenant) {
        if (quota_.reject_over_quota) {
          quota_rejections_.fetch_add(1);
          throw QuotaExceededError(tenant, quota_.max_resident_per_tenant);
        }
        // Soft mode: make room with the tenant's own least-recently-used
        // entry (scan the global LRU from the cold end).
        for (auto victim = lru_.rbegin(); victim != lru_.rend(); ++victim) {
          auto victim_it = entries_.find(*victim);
          if (victim_it != entries_.end() &&
              victim_it->second.tenant == tenant) {
            erase_entry_locked(victim_it);
            quota_evictions_.fetch_add(1);
            break;
          }
        }
      }
      miss = true;
      future = promise.get_future().share();
      lru_.push_front(cache_key);
      entries_.emplace(cache_key, Entry{future, lru_.begin(), tenant});
      ++tenant_counts_[tenant];
      // Evict least-recently-used entries beyond capacity. Waiters holding
      // their shared_future copies are unaffected by eviction.
      while (entries_.size() > capacity_) {
        erase_entry_locked(entries_.find(lru_.back()));
      }
    }
  }

  if (!miss) {
    hits_.fetch_add(1);
    return Lookup{future.get(), /*cache_hit=*/true};
  }

  misses_.fetch_add(1);
  try {
    auto artifacts = std::make_shared<const ProfileArtifacts>(
        run_profile_pipeline(key));
    promise.set_value(artifacts);
    return Lookup{std::move(artifacts), /*cache_hit=*/false};
  } catch (...) {
    // Do not cache failures: unblock waiters with the exception, then drop
    // the entry so a later request can retry.
    promise.set_exception(std::current_exception());
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = entries_.find(cache_key);
      if (it != entries_.end()) erase_entry_locked(it);
    }
    throw;
  }
}

}  // namespace xmem::core
