// Distributed-training planner — the §6.2 / §6.4(i) extension the paper's
// architecture is "deliberately prepared" for.
//
// The Analyzer's per-layer attribution yields a component-level memory
// profile from a single-node CPU trace; this planner consumes it to answer
// the questions distributed deployment asks *before* any multi-GPU run:
//
//   * pipeline parallelism — split the layer sequence into contiguous
//     stages so the worst stage's peak memory is minimized, modelling the
//     1F1B schedule's in-flight micro-batch activations (plus an
//     interleaved-schedule variant with several virtual stages per rank);
//   * data parallelism — batch-sharded activations, replicated (or
//     ZeRO-1/2/3-sharded) persistent state, and the extra resident bytes
//     DDP's gradient-bucket staging adds per rank;
//   * tensor parallelism — per-component divisible/replicated byte split
//     with an activation-replication model (norms/embeddings stay whole on
//     every rank, matmul shards divide);
//   * hybrid DP×TP×PP — evaluate any (d, t, p) decomposition of a GPU
//     budget; the EstimationService's plan search enumerates and ranks
//     them against candidate devices from ONE cached CPU profile.
//
// Everything here is integer arithmetic over a component profile — cheap,
// deterministic, and thread-safe (the planner holds no state), which is
// what lets the hybrid search fan out on a thread pool and still produce
// byte-identical reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/analyzer.h"

namespace xmem::core {

/// Memory footprint of one model component (layer/module), extracted from
/// an analyzed single-node timeline.
struct ComponentProfile {
  std::string component;
  std::int64_t param_bytes = 0;       ///< Module.to persistent blocks
  std::int64_t optimizer_bytes = 0;   ///< persistent step-phase share
  std::int64_t activation_bytes = 0;  ///< saved activations per iteration
  std::int64_t transient_peak = 0;    ///< largest short-lived block

  std::int64_t persistent_bytes() const {
    return param_bytes + optimizer_bytes;
  }
};

/// Ceil integer division — the shard arithmetic every planner dimension
/// (and the rank-sequence transform layer) divides bytes with.
inline std::int64_t ceil_div(std::int64_t value, std::int64_t divisor) {
  return (value + divisor - 1) / divisor;
}

/// Extract per-component profiles (in forward order of first appearance).
/// Optimizer state is apportioned to components proportionally to their
/// parameter bytes (state tensors are parameter-shaped but their trace
/// attribution is the optimizer step, not the layer).
std::vector<ComponentProfile> per_component_profile(
    const MemoryTimeline& timeline);

/// ZeRO-style sharding of the persistent bytes across data-parallel ranks.
/// Each stage shards one more class of per-parameter state by 1/d:
/// kOptimizer = ZeRO-1 (optimizer states), kOptimizerGradient = ZeRO-2
/// (+ gradients), kFull = ZeRO-3 (+ the parameters themselves).
enum class ZeroStage : std::uint8_t {
  kNone = 0,
  kOptimizer = 1,
  kOptimizerGradient = 2,
  kFull = 3,
};
const char* to_string(ZeroStage stage);
/// Map the conventional 0..3 stage number; throws std::invalid_argument.
ZeroStage zero_stage_from_int(int stage);

/// Pipeline schedule. kOneFOneB: stage s of S holds min(S - s, m) in-flight
/// micro-batch activation copies. kInterleaved: each rank holds
/// `virtual_stages` interleaved model chunks; chunk k of rank r behaves
/// like virtual stage r + k*S of an (S * virtual_stages)-deep 1F1B
/// pipeline, and the rank's peak sums its chunks.
enum class PipelineSchedule : std::uint8_t { kOneFOneB, kInterleaved };
const char* to_string(PipelineSchedule schedule);
/// Parse "1f1b" / "interleaved"; throws std::invalid_argument.
PipelineSchedule pipeline_schedule_from_string(const std::string& name);

struct DistributedOptions {
  int pipeline_stages = 2;
  /// In-flight micro-batches of the 1F1B schedule. Stage s (0-based, of S)
  /// holds min(S - s, micro_batches) activation copies, each 1/micro_batches
  /// of the profiled batch.
  int micro_batches = 4;
  /// DDP gradient bucket size (PyTorch default 25 MiB).
  std::int64_t ddp_bucket_bytes = std::int64_t{25} * 1024 * 1024;
  /// In-flight DDP gradient buckets per rank (reduce + staging). 2 is the
  /// classic PyTorch overlap depth, previously hard-coded.
  int ddp_bucket_count = 2;
  PipelineSchedule schedule = PipelineSchedule::kOneFOneB;
  /// Model chunks per rank under kInterleaved (ignored for kOneFOneB).
  int virtual_stages = 1;
};

struct PipelineStage {
  std::size_t first_component = 0;  ///< inclusive index into the profile
  std::size_t last_component = 0;   ///< inclusive
  std::int64_t persistent_bytes = 0;
  std::int64_t activation_bytes = 0;  ///< per full batch
  std::int64_t transient_peak = 0;    ///< largest op workspace in the stage
  std::int64_t estimated_peak = 0;
};

struct PipelinePlan {
  /// Contiguous chunks in forward order: one per rank under kOneFOneB,
  /// `virtual_stages` per rank (round-robin: chunk c lives on rank
  /// c % pipeline_stages) under kInterleaved.
  std::vector<PipelineStage> stages;
  /// Peak per pipeline rank (size = pipeline_stages actually populated).
  std::vector<std::int64_t> rank_peaks;
  std::int64_t max_stage_peak = 0;  ///< max over rank_peaks
  /// Peak of the same job on one device (for the "does splitting help"
  /// comparison).
  std::int64_t single_device_peak = 0;
};

struct DataParallelOptions {
  int ranks = 2;
  ZeroStage zero = ZeroStage::kNone;
  /// DDP gradient bucket size (PyTorch default 25 MiB).
  std::int64_t ddp_bucket_bytes = std::int64_t{25} * 1024 * 1024;
  /// In-flight DDP gradient buckets per rank (previously hard-coded at 2).
  int ddp_bucket_count = 2;
};

/// Per-rank byte budget of a pure data-parallel deployment. All fields are
/// per rank, after ZeRO sharding; gradients mirror parameters.
struct DataParallelPlan {
  int ranks = 1;
  ZeroStage zero = ZeroStage::kNone;
  std::int64_t param_bytes = 0;
  std::int64_t gradient_bytes = 0;
  std::int64_t optimizer_bytes = 0;
  std::int64_t activation_bytes = 0;  ///< batch shard: ceil(total / ranks)
  std::int64_t transient_peak = 0;
  std::int64_t bucket_overhead_bytes = 0;  ///< count x bucket bytes, 0 if d==1
  std::int64_t per_rank_peak = 0;
  std::int64_t single_device_peak = 0;
};

struct TensorParallelOptions {
  int ways = 2;
  /// Percent of a sharded component's activation bytes replicated on every
  /// rank (residual stream, dropout masks) instead of divided.
  int activation_replication_pct = 25;
  /// Components whose name contains any of these substrings are fully
  /// replicated (Megatron keeps norms and embeddings whole per rank).
  std::vector<std::string> replicated_substrings = {"Norm", "Embedding"};
};

/// Per-rank byte budget of a pure tensor-parallel deployment.
struct TensorParallelPlan {
  int ways = 1;
  std::int64_t param_bytes = 0;  ///< per rank, incl. replicated components
  std::int64_t gradient_bytes = 0;
  std::int64_t optimizer_bytes = 0;
  std::int64_t activation_bytes = 0;
  std::int64_t transient_peak = 0;
  /// Parameter bytes that every rank keeps whole (norms, embeddings).
  std::int64_t replicated_param_bytes = 0;
  std::int64_t per_rank_peak = 0;
  std::int64_t single_device_peak = 0;
};

/// One point of the hybrid search space: d × t × p GPUs.
struct HybridOptions {
  int data_parallel = 1;
  int tensor_parallel = 1;
  int pipeline_stages = 1;
  int micro_batches = 4;
  PipelineSchedule schedule = PipelineSchedule::kOneFOneB;
  int virtual_stages = 1;
  ZeroStage zero = ZeroStage::kNone;
  std::int64_t ddp_bucket_bytes = std::int64_t{25} * 1024 * 1024;
  int ddp_bucket_count = 2;
  /// TP shard model; `ways` is ignored (taken from tensor_parallel).
  TensorParallelOptions tensor;
};

/// Per-rank memory of one (d, t, p) decomposition. The model composes the
/// three parallelism dimensions: TP shards each component, DP shards the
/// batch (activations) and optionally the persistent state (ZeRO), PP
/// partitions the sharded sequence into stages with in-flight micro-batch
/// accounting. `per_rank_peak` is the worst rank including DDP bucket
/// staging — the number a candidate device must fit.
struct HybridPlan {
  int data_parallel = 1;
  int tensor_parallel = 1;
  int pipeline_stages = 1;
  int gpus = 1;
  std::vector<PipelineStage> stages;  ///< contiguous (virtual) stage chunks
  std::vector<std::int64_t> rank_peaks;
  std::int64_t per_rank_peak = 0;
  std::int64_t single_device_peak = 0;
};

/// One (d, t, p) decomposition of a GPU budget.
struct Decomposition {
  int data_parallel = 1;
  int tensor_parallel = 1;
  int pipeline_stages = 1;
  int gpus() const { return data_parallel * tensor_parallel * pipeline_stages; }
};

class DistributedPlanner {
 public:
  /// Balance the component sequence into contiguous stages minimizing the
  /// maximum per-stage peak (binary search over the peak + greedy packing —
  /// optimal for contiguous partitioning of a nonnegative sequence).
  PipelinePlan plan_pipeline(const MemoryTimeline& timeline,
                             const DistributedOptions& options) const;
  PipelinePlan plan_pipeline(const std::vector<ComponentProfile>& profiles,
                             const DistributedOptions& options) const;

  /// Pure data parallelism: batch-sharded activations, ZeRO-sharded or
  /// replicated persistent state, two in-flight gradient buckets.
  DataParallelPlan plan_data_parallel(
      const std::vector<ComponentProfile>& profiles,
      const DataParallelOptions& options) const;

  /// Shard one component across `options.ways` tensor-parallel ranks.
  /// Replicated components (name matches `replicated_substrings`) are
  /// returned unchanged; divisible ones split params/optimizer/transients
  /// by ceil(x / ways) and activations by the replication model.
  ComponentProfile shard_tensor_parallel(
      const ComponentProfile& component,
      const TensorParallelOptions& options) const;

  /// Pure tensor parallelism over the whole component sequence.
  TensorParallelPlan plan_tensor_parallel(
      const std::vector<ComponentProfile>& profiles,
      const TensorParallelOptions& options) const;

  /// Evaluate one (d, t, p) decomposition. Deterministic integer
  /// arithmetic: safe to call concurrently from a sweep fan-out.
  HybridPlan plan_hybrid(const std::vector<ComponentProfile>& profiles,
                         const HybridOptions& options) const;

  /// Single-device reference peak of the component model (one stage, no
  /// micro-batching): params + gradients + optimizer + activations + the
  /// largest transient.
  std::int64_t single_device_peak(
      const std::vector<ComponentProfile>& profiles) const;

  /// All (d, t, p) with d*t*p <= max_gpus and p <= max_pipeline_stages, in
  /// deterministic order (total GPUs, then d, then t).
  static std::vector<Decomposition> enumerate_decompositions(
      int max_gpus, int max_pipeline_stages);

  /// Extra resident bytes per data-parallel rank: the configured number of
  /// in-flight gradient buckets (reduce + staging).
  std::int64_t data_parallel_overhead(const DistributedOptions& options) const {
    return options.ddp_bucket_count * options.ddp_bucket_bytes;
  }
};

}  // namespace xmem::core
