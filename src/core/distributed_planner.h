// Distributed-training planner — the §6.2 / §6.4(i) extension the paper's
// architecture is "deliberately prepared" for.
//
// The Analyzer's per-layer attribution yields a component-level memory
// profile from a single-node CPU trace; this planner consumes it to answer
// the questions distributed deployment asks *before* any multi-GPU run:
//
//   * pipeline parallelism — split the layer sequence into contiguous
//     stages so the worst stage's peak memory is minimized, modelling the
//     1F1B schedule's in-flight micro-batch activations;
//   * data parallelism — the extra resident bytes DDP's gradient-bucket
//     staging adds per rank.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/analyzer.h"

namespace xmem::core {

/// Memory footprint of one model component (layer/module), extracted from
/// an analyzed single-node timeline.
struct ComponentProfile {
  std::string component;
  std::int64_t param_bytes = 0;       ///< Module.to persistent blocks
  std::int64_t optimizer_bytes = 0;   ///< persistent step-phase share
  std::int64_t activation_bytes = 0;  ///< saved activations per iteration
  std::int64_t transient_peak = 0;    ///< largest short-lived block

  std::int64_t persistent_bytes() const {
    return param_bytes + optimizer_bytes;
  }
};

/// Extract per-component profiles (in forward order of first appearance).
/// Optimizer state is apportioned to components proportionally to their
/// parameter bytes (state tensors are parameter-shaped but their trace
/// attribution is the optimizer step, not the layer).
std::vector<ComponentProfile> per_component_profile(
    const MemoryTimeline& timeline);

struct DistributedOptions {
  int pipeline_stages = 2;
  /// In-flight micro-batches of the 1F1B schedule. Stage s (0-based, of S)
  /// holds min(S - s, micro_batches) activation copies, each 1/micro_batches
  /// of the profiled batch.
  int micro_batches = 4;
  /// DDP gradient bucket size (PyTorch default 25 MiB).
  std::int64_t ddp_bucket_bytes = std::int64_t{25} * 1024 * 1024;
};

struct PipelineStage {
  std::size_t first_component = 0;  ///< inclusive index into the profile
  std::size_t last_component = 0;   ///< inclusive
  std::int64_t persistent_bytes = 0;
  std::int64_t activation_bytes = 0;  ///< per full batch
  std::int64_t estimated_peak = 0;
};

struct PipelinePlan {
  std::vector<PipelineStage> stages;
  std::int64_t max_stage_peak = 0;
  /// Peak of the same job on one device (for the "does splitting help"
  /// comparison).
  std::int64_t single_device_peak = 0;
};

class DistributedPlanner {
 public:
  /// Balance the component sequence into contiguous stages minimizing the
  /// maximum per-stage peak (binary search over the peak + greedy packing —
  /// optimal for contiguous partitioning of a nonnegative sequence).
  PipelinePlan plan_pipeline(const MemoryTimeline& timeline,
                             const DistributedOptions& options) const;

  /// Extra resident bytes per data-parallel rank: two in-flight gradient
  /// buckets (reduce + staging).
  std::int64_t data_parallel_overhead(const DistributedOptions& options) const {
    return 2 * options.ddp_bucket_bytes;
  }
};

}  // namespace xmem::core
