#include "core/xmem_estimator.h"

#include <chrono>

#include "core/profile_runner.h"
#include "models/zoo.h"

namespace xmem::core {

XMemEstimator::PipelineArtifacts XMemEstimator::run_pipeline(
    const TrainJob& job, bool record_series) const {
  PipelineArtifacts artifacts;

  const fw::ModelDescriptor model =
      models::build_model(job.model_name, job.batch_size);

  ProfileOptions profile_options;
  profile_options.iterations = options_.profile_iterations;
  profile_options.placement = job.placement;
  profile_options.seed = job.seed;
  artifacts.trace = profile_on_cpu(model, job.optimizer, profile_options);

  if (options_.json_round_trip) {
    const std::string json = artifacts.trace.to_json_string();
    artifacts.trace = trace::Trace::from_json_string(json);
  }

  Analyzer analyzer;
  artifacts.analysis = analyzer.analyze(artifacts.trace);

  Orchestrator orchestrator;
  OrchestratorConfig config = options_.orchestrator_config;
  if (!options_.orchestrate) {
    config.rule_params = false;
    config.rule_batch = false;
    config.rule_gradients = false;
    config.rule_optimizer_state = false;
  }
  artifacts.orchestration =
      orchestrator.orchestrate(artifacts.analysis.timeline, config);

  MemorySimulator simulator;
  SimulationOptions sim_options;
  sim_options.backend = options_.allocator_backend;
  sim_options.record_series = record_series;
  artifacts.simulation =
      simulator.replay(artifacts.orchestration.sequence, sim_options);
  return artifacts;
}

EstimateResult XMemEstimator::estimate(const TrainJob& job,
                                       const gpu::DeviceModel& device) {
  const auto wall_start = std::chrono::steady_clock::now();
  const PipelineArtifacts artifacts =
      run_pipeline(job, /*record_series=*/false);
  const auto wall_end = std::chrono::steady_clock::now();

  EstimateResult result;
  // Predict what NVML will see: driver pages, not raw segment bytes.
  result.estimated_peak = artifacts.simulation.peak_device;
  result.oom_predicted = result.estimated_peak > device.job_budget();
  result.runtime_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  return result;
}

}  // namespace xmem::core
