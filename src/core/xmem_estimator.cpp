#include "core/xmem_estimator.h"

namespace xmem::core {

ProfileKey XMemEstimator::profile_key(const TrainJob& job) const {
  ProfileKey key;
  key.model_name = job.model_name;
  key.batch_size = job.batch_size;
  key.optimizer = job.optimizer;
  key.placement = job.placement;
  key.seed = job.seed;
  key.profile_iterations = options_.profile_iterations;
  key.json_round_trip = options_.json_round_trip;
  key.orchestrator_config = options_.orchestrator_config;
  if (!options_.orchestrate) {
    key.orchestrator_config.rule_params = false;
    key.orchestrator_config.rule_batch = false;
    key.orchestrator_config.rule_gradients = false;
    key.orchestrator_config.rule_optimizer_state = false;
  }
  return key;
}

XMemEstimator::PipelineArtifacts XMemEstimator::run_pipeline(
    const TrainJob& job, bool record_series) const {
  const ProfileSession::Lookup lookup = session_->get(profile_key(job));

  PipelineArtifacts artifacts;
  artifacts.trace = lookup.artifacts->trace;
  artifacts.analysis = lookup.artifacts->analysis;
  artifacts.orchestration = lookup.artifacts->orchestration;

  MemorySimulator simulator;
  SimulationOptions sim_options;
  sim_options.backend = options_.allocator_backend;
  sim_options.record_series = record_series;
  artifacts.simulation =
      simulator.replay(artifacts.orchestration.sequence, sim_options);
  return artifacts;
}

EstimateResult XMemEstimator::compute(const TrainJob& job,
                                      const gpu::DeviceModel& device) {
  const ProfileSession::Lookup lookup = session_->get(profile_key(job));

  MemorySimulator simulator;
  SimulationOptions sim_options;
  sim_options.backend = options_.allocator_backend;
  const SimulationResult simulation =
      simulator.replay(lookup.artifacts->orchestration.sequence, sim_options);

  EstimateResult result;
  // Predict what NVML will see: driver pages, not raw segment bytes.
  result.estimated_peak = simulation.peak_device;
  result.oom_predicted = result.estimated_peak > device.job_budget();
  return result;
}

}  // namespace xmem::core
