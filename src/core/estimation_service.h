// Service-layer estimation API: profile once, estimate many.
//
// The paper's headline claim (§3, Fig. 4) is that one cheap CPU profile can
// answer GPU-memory questions ahead of scheduling. Schedulers ask many
// what-if questions per job — "does it fit each card in the fleet, under
// each allocator policy?" — so the service accepts a structured
// EstimateRequest (job + candidate devices + allocator backends + report
// options) and answers all combinations in one sweep: the profile prefix is
// captured once in a ProfileSession and the cheap simulator replays fan out
// concurrently on a util::ThreadPool. A bounded LRU of finished entries
// (the old EvalHarness estimate cache, collapsed into the service) makes
// repeated questions free.
//
// Every estimator goes through the same supports() gate and the same
// steady-clock wrapper (core/estimator_api.h), so per-entry timings are
// comparable across backends (RQ4) and an unsupported job yields a
// supported=false entry, never a bogus peak.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "alloc/backend_registry.h"
#include "core/distributed_planner.h"
#include "core/estimator_api.h"
#include "core/orchestrator.h"
#include "core/profile_session.h"
#include "gpu/device_model.h"
#include "util/json.h"
#include "util/sim_clock.h"

namespace xmem::util {
class ThreadPool;
}

namespace xmem::sched {
struct FleetRequest;
struct FleetReport;
}  // namespace xmem::sched

namespace xmem::core {

/// Shared request-schema JSON helpers — the sweep, plan, and fleet request
/// documents all spell jobs, devices, and allocator knobs the same way.
/// All parsers throw std::invalid_argument on bad input.
TrainJob job_from_json(const util::Json& json);
util::Json job_to_json(const TrainJob& job);
gpu::DeviceModel device_from_json(const util::Json& json);
util::Json devices_to_json(const std::vector<gpu::DeviceModel>& devices);
std::map<std::string, alloc::BackendKnobs> allocator_config_from_json(
    const util::Json& json, const std::string& context);
util::Json allocator_config_to_json(
    const std::map<std::string, alloc::BackendKnobs>& config);
/// Fail fast on unknown backend names / knob names / out-of-range values,
/// surfacing the backend's own actionable message.
void validate_allocator_config(
    const std::map<std::string, alloc::BackendKnobs>& config,
    const std::string& context);

/// One structured what-if question: a job crossed with candidate devices,
/// allocator backends, and estimators. JSON round-trips through
/// from_json/to_json — the schema `xmem sweep` consumes (docs/API.md).
struct EstimateRequest {
  TrainJob job;
  std::vector<gpu::DeviceModel> devices;
  /// Allocator registry names the simulator replays against. Applies to
  /// session-backed estimators (xMem variants); baselines that do not
  /// replay an allocator get one entry per device. Empty = {default}.
  std::vector<std::string> allocators = {alloc::kDefaultBackendName};
  /// Estimator registry names. Empty = {"xMem"}.
  std::vector<std::string> estimators = {"xMem"};
  /// Per-backend policy knobs, keyed by registry name (JSON:
  /// `"allocator_config": {"cub-binned": {"max_bin": 20}}`). Only consulted
  /// for backends this request sweeps; every entry is validated up front so
  /// a malformed config fails the sweep with the backend's own message.
  std::map<std::string, alloc::BackendKnobs> allocator_config;
  int profile_iterations = 3;
  /// Record the reserved-bytes curve per entry (Fig. 6-style).
  bool record_curve = false;
  /// Tenant this request's profile-cache footprint is attributed to (JSON
  /// `"tenant"`; empty = untenanted, exempt from session quotas). The
  /// `xmem serve` daemon enforces per-tenant LRU quotas on it
  /// (docs/SERVER.md).
  std::string tenant;

  /// Parse a request document; device entries may be alias strings
  /// ("rtx3060") or full custom objects with capacity/m_init/m_fm bytes.
  /// Throws std::invalid_argument / util::JsonParseError on bad input.
  static EstimateRequest from_json(const util::Json& json);
  util::Json to_json() const;
};

/// Stage-level timing split for one entry (RQ4 / §6.1). On a profile cache
/// hit the profile/analyze stages cost nothing — that asymmetry is the
/// profile-once/estimate-many win, and the counters below prove it.
struct StageTimings {
  double profile_seconds = 0.0;   ///< CPU profile + JSON round trip (0 on hit)
  double analyze_seconds = 0.0;   ///< Analyzer + Orchestrator (0 on hit)
  double simulate_seconds = 0.0;  ///< simulator replay for this entry
  double total_seconds = 0.0;     ///< end-to-end wall time for this entry
  bool profile_cache_hit = false;
  bool result_cache_hit = false;
};

/// One (estimator, device, allocator) answer inside a report.
struct EstimateEntry {
  std::string estimator;
  std::string device;
  std::string allocator;  ///< empty for estimators that ignore the allocator
  bool supported = true;
  std::int64_t estimated_peak = 0;
  bool oom_predicted = false;
  std::int64_t device_job_budget = 0;
  StageTimings timings;
  /// Per-Orchestrator-rule stats; meaningful when has_orchestrator_stats.
  bool has_orchestrator_stats = false;
  OrchestratorStats orchestrator_stats;
  std::vector<std::pair<util::TimeUs, std::int64_t>> reserved_curve;

  /// Adapter back to the uniform eval-protocol result type (§4.1.1).
  EstimateResult to_result() const;
  /// `include_timings=false` omits every wall-clock field, leaving only the
  /// deterministic payload (golden diffs, determinism tests).
  util::Json to_json(bool include_timings = true) const;
};

/// The answer to an EstimateRequest. `profiles_run == 1` for any
/// single-job sweep that missed the cache once is the acceptance proof
/// that the expensive stage ran exactly once.
struct EstimateReport {
  TrainJob job;
  std::vector<EstimateEntry> entries;
  std::size_t profiles_run = 0;        ///< CPU profiles executed by this sweep
  std::size_t profile_cache_hits = 0;  ///< entries served from the session
  std::size_t replays_run = 0;         ///< simulator replays executed
  std::size_t result_cache_hits = 0;   ///< entries served fully from cache
  double wall_seconds = 0.0;

  util::Json to_json(bool include_timings = true) const;
};

/// A multi-GPU placement question: which (d, t, p) split of a GPU budget
/// makes this job fit the candidate devices? JSON round-trips through
/// from_json/to_json — the schema `xmem plan` consumes (docs/PLANNER.md).
struct PlanRequest {
  TrainJob job;
  /// Candidate cards every plan is judged against (OOM verdict per device).
  std::vector<gpu::DeviceModel> devices;
  /// GPU budget: every (d, t, p) with d*t*p <= max_gpus is evaluated.
  int max_gpus = 8;
  int micro_batches = 4;
  PipelineSchedule schedule = PipelineSchedule::kOneFOneB;
  int virtual_stages = 1;
  ZeroStage zero = ZeroStage::kNone;
  std::int64_t ddp_bucket_bytes = std::int64_t{25} * 1024 * 1024;
  /// In-flight DDP gradient buckets per rank (the old hard-coded 2).
  int ddp_bucket_count = 2;
  int activation_replication_pct = 25;
  /// Allocator the single-device replay entries — and the refine pass's
  /// per-rank replays — simulate against.
  std::string allocator = alloc::kDefaultBackendName;
  /// Policy knobs per backend, same schema and validation as
  /// EstimateRequest::allocator_config.
  std::map<std::string, alloc::BackendKnobs> allocator_config;
  int profile_iterations = 3;
  /// Keep only the best N candidates in the report (0 = all).
  std::size_t max_candidates = 0;
  /// Phase-2 refinement: re-simulate the top K ranked candidates per rank
  /// through the allocator tower (rank-sequence transform + simulator
  /// replay), yielding fragmentation-aware peaks and refined verdicts.
  /// 0 = analytic-only (the phase-1 ranking stands unrefined). Defaults to
  /// 4 since the reset-based replay path costs ~0.93 ms/candidate
  /// (docs/PLANNER.md); `xmem plan --no-refine` forces 0.
  int refine_top_k = 4;
  /// Full-search refinement: replay EVERY ranked decomposition, ignoring
  /// refine_top_k (JSON `"refine_top_k": "all"`, CLI `--refine-all`) —
  /// affordable because symmetric-rank collapse + replay memoization make
  /// each candidate pay only for its distinct sequences (docs/PLANNER.md).
  bool refine_all = false;
  /// Collapse symmetric ranks and memoize replay verdicts during
  /// refinement (on by default). Turning it off replays every one of a
  /// candidate's d*t*p deployment ranks individually — the naive baseline
  /// the dedup is measured against (BM_PlanRefineDedup) — and MUST produce
  /// a byte-identical report; tests pin that equivalence. JSON
  /// `"dedup_replays"`, emitted only when false.
  bool dedup_replays = true;
  /// Simulate collectives as schedule-tied overlap windows instead of
  /// resident staging buffers, and RE-RANK the refined candidates by their
  /// window-replayed peaks (`xmem plan --comm-overlap`). Each refined
  /// candidate is replayed twice per rank — resident and window mode — so
  /// the report can state `window_vs_resident_pct`; the ranking moves when
  /// the replayed order disagrees with the analytic one
  /// (`stage_counters.rerank_changed`). Off by default: reports stay
  /// byte-identical to the resident-mode behavior.
  bool comm_overlap = false;
  /// Same semantics as EstimateRequest::tenant.
  std::string tenant;

  /// Parse a plan document; throws std::invalid_argument /
  /// util::JsonParseError on bad input.
  static PlanRequest from_json(const util::Json& json);
  util::Json to_json() const;
};

/// One ranked (d, t, p) answer inside a PlanReport.
struct PlanCandidate {
  HybridPlan plan;
  /// 100 * (single_device_peak - per_rank_peak) / single_device_peak,
  /// integer-truncated (negative when the split's overheads dominate).
  int savings_pct = 0;
  bool splitting_helps = false;
  /// Parallel to PlanRequest::devices: per-device "fits" verdict.
  std::vector<bool> device_fits;
  std::size_t fits_count = 0;

  /// Phase-2 refinement (set only for the top-K candidates when
  /// `refine_top_k > 0`): per-rank sequences replayed through the real
  /// allocator tower, so round-up, caching, and fragmentation — absent from
  /// the analytic arithmetic above — are priced in. The peaks cover every
  /// one of the candidate's d*t*p deployment ranks in stage-major order
  /// (stage 0's d*t ranks, then stage 1's, ...); DP/TP siblings of a stage
  /// replay identical sequences — the transform has no DP/TP rank index —
  /// so symmetric-rank collapse reports them exactly without re-simulating.
  bool replayed = false;
  std::vector<std::int64_t> replayed_rank_peaks;
  std::int64_t replayed_per_rank_peak = 0;
  /// 100 * (replayed - analytic) / analytic, integer-truncated: how far the
  /// analytic model was from the allocator-aware answer.
  int analytic_vs_replayed_pct = 0;
  std::vector<bool> replayed_device_fits;
  std::size_t replayed_fits_count = 0;
  /// Any device verdict flipped between the analytic and replayed peaks —
  /// the fidelity gain the paper's §3.4 argument predicts.
  bool verdict_changed = false;

  /// Overlap-window refinement (PlanRequest::comm_overlap): the replayed_*
  /// fields above then hold the window-mode peaks (what the re-rank
  /// orders by), and the resident-mode baseline is kept alongside so the
  /// report can state what the schedule-tied windows saved.
  bool window_mode = false;
  std::vector<std::int64_t> resident_rank_peaks;
  std::int64_t resident_per_rank_peak = 0;
  /// 100 * (window - resident) / resident, integer-truncated (<= 0 when
  /// the overlap windows shrink the collective footprint — the expected
  /// direction, since every window is bounded by its resident buffer).
  int window_vs_resident_pct = 0;

  util::Json to_json(const std::vector<gpu::DeviceModel>& devices) const;
};

/// The answer to a PlanRequest: single-device baseline (analytic + one
/// simulator replay per candidate device) and the ranked decompositions.
/// The whole search runs exactly one CPU profile — `profiles_run == 1` on
/// a cold session, proven by the same stage counters as a sweep.
struct PlanReport {
  TrainJob job;
  std::vector<gpu::DeviceModel> devices;
  /// Component-model peak on one device (the "does splitting help" base).
  std::int64_t single_device_peak = 0;
  /// Replay-based single-device entries, one per candidate device.
  std::vector<EstimateEntry> single_device_entries;
  /// Ranked best-first: most devices fit, then fewest GPUs, lowest peak.
  std::vector<PlanCandidate> candidates;
  std::size_t candidates_evaluated = 0;  ///< before any max_candidates cap
  std::size_t replayed_candidates = 0;   ///< candidates refined per rank
  /// Refinement-cost counters, computed as a deterministic post-pass over
  /// the refined candidates' sequence fingerprints (candidate order, then
  /// resident-before-window, then stage order) — they describe the
  /// deduplicated replay schedule, so they are identical serial vs
  /// threaded and dedup-on vs dedup-off (docs/PLANNER.md):
  ///   rank_replays_run  — distinct sequences the refine pass must simulate
  ///   replays_deduped   — logical rank replays collapsed onto a sibling's
  ///                       verdict (symmetric DP/TP ranks + repeated stages)
  ///   replay_cache_hits — sequences served from the cross-candidate memo
  ///                       cache instead of a fresh simulation
  std::size_t rank_replays_run = 0;
  std::size_t replays_deduped = 0;
  std::size_t replay_cache_hits = 0;
  /// Overlap-window mode (request.comm_overlap): the refined prefix was
  /// re-ranked by window-replayed peaks; rerank_changed counts the refined
  /// candidates whose final position differs from their analytic one.
  bool comm_overlap = false;
  std::size_t rerank_changed = 0;
  std::size_t profiles_run = 0;
  std::size_t profile_cache_hits = 0;
  std::size_t replays_run = 0;
  std::size_t result_cache_hits = 0;
  double wall_seconds = 0.0;

  util::Json to_json(bool include_timings = true) const;
};

struct ServiceOptions {
  /// Worker threads for the sweep fan-out. 0 = hardware default (capped at
  /// 8); 1 = fully serial on the caller's thread (no pool) — byte-identical
  /// reports either way, which the service test asserts.
  std::size_t threads = 0;
  std::size_t profile_cache_capacity = ProfileSession::kDefaultCapacity;
  /// Per-tenant bound on the profile LRU (only used when this service owns
  /// its session — a shared `session` arrives with its own quota).
  SessionQuota session_quota;
  std::size_t result_cache_capacity = 256;
  /// Orchestrator configuration for the "xMem" engine ("xMem-noOrch"
  /// always runs with every rule off).
  OrchestratorConfig orchestrator_config;
  bool json_round_trip = true;
  /// Share a ProfileSession across services/estimators; null = own one.
  std::shared_ptr<ProfileSession> session;
};

class EstimationService {
 public:
  explicit EstimationService(ServiceOptions options = {});
  ~EstimationService();

  EstimationService(const EstimationService&) = delete;
  EstimationService& operator=(const EstimationService&) = delete;

  /// Answer every (estimator, device, allocator) combination of the
  /// request. Entry order is deterministic (request order) regardless of
  /// the thread count.
  EstimateReport sweep(const EstimateRequest& request);

  /// Answer a multi-GPU placement question with a two-phase search:
  /// phase 1 prunes every (d, t, p) decomposition of the GPU budget with
  /// cheap analytic arithmetic and ranks the survivors; phase 2 (when
  /// `refine_top_k > 0`) replays the top-K candidates' per-rank sequences
  /// through the allocator tower via the rank-sequence transform layer,
  /// yielding fragmentation-aware rank peaks and refined verdicts. The
  /// single-device entries, the whole grid, and every rank replay share
  /// ONE profile through the session (profiles_run == 1 cold); both phases
  /// fan out on the pool. Deterministic: serial and threaded searches
  /// produce byte-identical reports.
  PlanReport plan(const PlanRequest& request);

  /// Pack a job queue onto a GPU fleet (sched::FleetPlanner over this
  /// service — one profile per distinct job archetype, docs/SCHEDULER.md).
  /// Each call uses a fresh planner; hold a FleetPlanner directly for the
  /// incremental apply() loop. Defined in src/sched/service_fleet.cpp.
  sched::FleetReport fleet(const sched::FleetRequest& request);

  /// Single-question convenience: one estimator, one device, one allocator.
  /// Same caching, gating, and uniform timing as a sweep entry.
  EstimateEntry estimate(const std::string& estimator_name,
                         const TrainJob& job, const gpu::DeviceModel& device,
                         const std::string& allocator =
                             alloc::kDefaultBackendName,
                         int profile_iterations = 3,
                         bool record_curve = false);

  ProfileSession& session() { return *session_; }

 private:
  struct EntrySpec {
    std::string estimator;
    std::size_t device_index = 0;
    std::string allocator;
    bool session_backed = false;
  };
  struct SweepCounters;

  EstimateEntry run_entry(const EstimateRequest& request,
                          const EntrySpec& spec, SweepCounters& counters);
  /// Run task(0..count-1) on the pool (or inline when serial), waiting for
  /// every task before rethrowing the first failure — a worker still
  /// running must never observe shared state mid-unwind.
  void run_fanned(std::size_t count,
                  const std::function<void(std::size_t)>& task);
  ProfileKey profile_key_for(const TrainJob& job, bool orchestrate,
                             int profile_iterations) const;
  Estimator& estimator_instance(const std::string& name);

  bool result_cache_get(const std::string& key, EstimateEntry& out);
  void result_cache_put(const std::string& key, const EstimateEntry& entry);

  ServiceOptions options_;
  std::shared_ptr<ProfileSession> session_;
  std::unique_ptr<util::ThreadPool> pool_;  ///< null when threads == 1

  struct Impl;  ///< estimator instances + result LRU (mutex-guarded)
  std::unique_ptr<Impl> impl_;
};

}  // namespace xmem::core
