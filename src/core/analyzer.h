// xMem Analyzer (paper §3.2).
//
// Consumes a raw profiler trace and produces the structured, temporally
// ordered sequence of GPU-relevant memory blocks:
//   1. reconstructs block lifecycles by pairing allocation/deallocation
//      events on (address, time), correctly handling address reuse;
//   2. attributes each block to its originating operator through
//      hierarchical time-window containment;
//   3. filters out script-level temporaries that never touch an operator
//      (they would not exist on the GPU);
//   4. tags each block with its training-loop phase and iteration, which is
//      what the Orchestrator's rules key on.
//
// Note on rule (ii): the paper keeps blocks "allocated during the
// operator's window but persisting beyond the linked high-level component".
// We keep any block allocated inside an operator window (i.e. we apply the
// persistence test against the *operator*, not the component): dropping
// operator-allocated blocks that die inside their component would discard
// cross-op activation chains that do occupy GPU memory. The filtering
// intent — discard script-level (non-operator) temporaries — is unchanged.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.h"
#include "util/sim_clock.h"

namespace xmem::core {

enum class Phase : std::uint8_t {
  kModelLoad,
  kDataLoader,
  kForward,
  kBackward,
  kOptimizerStep,
  kOther,
};
const char* to_string(Phase phase);

struct MemoryBlock {
  std::int64_t id = 0;
  std::int64_t size = 0;
  util::TimeUs alloc_ts = 0;
  util::TimeUs free_ts = -1;  ///< -1: no dealloc observed (persistent)
  std::string op_name;        ///< attributed operator
  std::string component;      ///< operator's enclosing module/annotation
  Phase phase = Phase::kOther;
  int iteration = -1;  ///< ProfilerStep index containing the allocation
  std::int64_t seq = -1;

  bool persistent() const { return free_ts < 0; }
};

struct Window {
  util::TimeUs start = 0;
  util::TimeUs end = 0;
  bool contains(util::TimeUs t) const { return t >= start && t < end; }
};

/// The Analyzer's structured output — input to the Orchestrator.
struct MemoryTimeline {
  std::vector<MemoryBlock> blocks;  ///< ordered by alloc_ts, GPU-relevant only
  std::vector<Window> iterations;   ///< ProfilerStep windows, in order
  std::vector<Window> zero_grads;
  std::vector<Window> optimizer_steps;
  std::vector<Window> dataloaders;
  std::vector<Window> backwards;
  Window model_load;
  util::TimeUs trace_end = 0;
  /// Distinct sizes of the persistent model-load blocks; the Orchestrator's
  /// gradient/optimizer-state rules match candidate blocks against these.
  std::vector<std::int64_t> param_sizes;
};

struct AnalyzerStats {
  std::size_t memory_events = 0;
  std::size_t matched_pairs = 0;     ///< alloc+free lifecycles reconstructed
  std::size_t persistent_blocks = 0; ///< allocs with no matching free
  std::size_t filtered_blocks = 0;   ///< dropped: no operator context
  std::size_t unmatched_frees = 0;   ///< frees with no live allocation
  std::size_t address_reuses = 0;    ///< same address opened more than once
};

class Analyzer {
 public:
  struct Output {
    MemoryTimeline timeline;
    AnalyzerStats stats;
  };

  /// Analyze a parsed trace. Throws std::runtime_error on traces without
  /// iteration markers (nothing to estimate from).
  Output analyze(const trace::Trace& trace) const;
};

}  // namespace xmem::core
