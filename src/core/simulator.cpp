#include "core/simulator.h"

#include <algorithm>
#include <unordered_map>

namespace xmem::core {

namespace {

/// TF-backend replay: same event semantics, different allocator policies.
SimulationResult replay_tf(const OrchestratedSequence& sequence,
                           const SimulationOptions& options) {
  SimulationResult result;
  alloc::SimulatedCudaDriver driver(options.capacity);
  alloc::TfBfcAllocator allocator(driver);
  std::unordered_map<std::int64_t, std::int64_t> live;
  for (const OrchestratedEvent& event : sequence.events) {
    if (event.is_alloc) {
      const alloc::TfAllocOutcome outcome = allocator.allocate(event.bytes);
      if (outcome.oom) {
        result.oom = true;
        break;
      }
      live[event.block_id] = outcome.id;
    } else {
      auto it = live.find(event.block_id);
      if (it == live.end()) continue;
      allocator.free(it->second);
      live.erase(it);
    }
    result.peak_reserved =
        std::max(result.peak_reserved, allocator.stats().region_bytes);
    if (options.record_series) {
      result.reserved_series.emplace_back(event.ts,
                                          allocator.stats().region_bytes);
      result.allocated_series.emplace_back(event.ts,
                                           allocator.stats().allocated_bytes);
    }
  }
  result.peak_device = driver.stats().peak_used_bytes;
  result.peak_allocated = allocator.stats().peak_allocated_bytes;
  return result;
}

}  // namespace

SimulationResult MemorySimulator::replay(const OrchestratedSequence& sequence,
                                         const SimulationOptions& options) const {
  if (options.backend == AllocatorBackend::kTensorFlowBfc) {
    return replay_tf(sequence, options);
  }
  SimulationResult result;
  alloc::SimulatedCudaDriver driver(options.capacity);
  alloc::CachingAllocatorSim allocator(driver);
  std::unordered_map<std::int64_t, alloc::BlockId> live;
  live.reserve(sequence.blocks.size());

  for (const OrchestratedEvent& event : sequence.events) {
    if (event.is_alloc) {
      const alloc::AllocOutcome outcome = allocator.allocate(event.bytes);
      if (outcome.oom) {
        // Both levels failed even after reclaiming cached segments: the
        // simulated job dies here, exactly like the real one would.
        result.oom = true;
        break;
      }
      live[event.block_id] = outcome.id;
    } else {
      auto it = live.find(event.block_id);
      if (it == live.end()) continue;  // freed past an OOM cut-off
      allocator.free(it->second);
      live.erase(it);
    }
    if (options.record_series) {
      result.reserved_series.emplace_back(event.ts,
                                          allocator.stats().reserved_bytes);
      result.allocated_series.emplace_back(event.ts,
                                           allocator.stats().allocated_bytes);
    }
  }

  result.stats = allocator.stats();
  result.peak_reserved = allocator.stats().peak_reserved_bytes;
  result.peak_device = driver.stats().peak_used_bytes;
  result.peak_allocated = allocator.stats().peak_allocated_bytes;
  return result;
}

}  // namespace xmem::core
