#include "core/simulator.h"

#include <algorithm>
#include <unordered_map>

namespace xmem::core {

std::string replay_tower_key(const SimulationOptions& options) {
  std::string key = options.backend;
  key += '|';
  key += alloc::knobs_fingerprint(options.backend_knobs);
  key += '|';
  key += std::to_string(options.capacity);
  return key;
}

SimulationResult MemorySimulator::replay(const OrchestratedSequence& sequence,
                                         const SimulationOptions& options,
                                         ReplayScratch* scratch) const {
  SimulationResult result;
  ReplayScratch local;
  ReplayScratch& workspace = scratch != nullptr ? *scratch : local;
  // Reset-instead-of-rebuild: when the scratch already holds a tower for
  // this exact (backend, knobs, capacity), reset it back to its
  // post-construction state — byte-identical to a fresh build per the
  // backend_reset() contract, but without re-growing segment maps and block
  // pools. Anything else (first use, different config) builds fresh.
  std::string tower_key = replay_tower_key(options);
  if (workspace.backend != nullptr && workspace.tower_key == tower_key) {
    workspace.backend->backend_reset();
    workspace.driver->reset();
  } else {
    workspace.backend.reset();  // must die before the driver it borrows
    workspace.driver =
        std::make_unique<alloc::SimulatedCudaDriver>(options.capacity);
    workspace.backend = alloc::make_backend(options.backend, *workspace.driver,
                                            options.backend_knobs);
    workspace.tower_key = std::move(tower_key);
  }
  alloc::SimulatedCudaDriver& driver = *workspace.driver;
  fw::AllocatorBackend* const allocator = workspace.backend.get();
  // Transform-layer sequences may carry events only (no materialized
  // blocks); size the live map from whichever is populated.
  std::unordered_map<std::int64_t, std::int64_t>& live = workspace.live;
  live.clear();
  live.reserve(std::max(sequence.blocks.size(), sequence.events.size() / 2));

  for (const OrchestratedEvent& event : sequence.events) {
    if (event.is_alloc) {
      const fw::BackendAllocResult outcome =
          allocator->backend_alloc(event.bytes);
      if (outcome.oom) {
        // Every allocator level failed (for the PyTorch model: even after
        // reclaiming cached segments): the simulated job dies here, exactly
        // like the real one would.
        result.oom = true;
        break;
      }
      live[event.block_id] = outcome.id;
    } else {
      auto it = live.find(event.block_id);
      if (it == live.end()) continue;  // freed past an OOM cut-off
      allocator->backend_free(it->second);
      live.erase(it);
    }
    if (options.record_series) {
      const fw::BackendStats s = allocator->backend_stats();
      result.reserved_series.emplace_back(event.ts, s.reserved_bytes);
      result.allocated_series.emplace_back(event.ts, s.active_bytes);
    }
  }

  result.backend_stats = allocator->backend_stats();
  result.peak_reserved = result.backend_stats.peak_reserved_bytes;
  // Driverless backends (basic-bfc's unbounded arena) never touch the
  // device model; their reserved peak doubles as the device-level peak.
  result.peak_device = driver.stats().num_mallocs > 0
                           ? driver.stats().peak_used_bytes
                           : result.peak_reserved;
  result.peak_allocated = result.backend_stats.peak_active_bytes;
  if (const auto* caching =
          dynamic_cast<const alloc::CachingAllocatorSim*>(allocator)) {
    result.stats = caching->stats();
  }
  return result;
}

std::int64_t MemorySimulator::replay_peak_memoized(
    const OrchestratedSequence& sequence, const std::uint64_t fingerprint,
    const SimulationOptions& options, ReplayScratch& scratch,
    bool* cache_hit) const {
  const std::string tower_key = replay_tower_key(options);
  for (const ReplayScratch::CachedReplay& entry : scratch.results) {
    if (entry.fingerprint != fingerprint || entry.tower_key != tower_key) {
      continue;
    }
    // Collision guard: the fingerprint proposes, the event vector decides.
    if (entry.events != sequence.events) continue;
    if (cache_hit != nullptr) *cache_hit = true;
    return entry.peak_device;
  }
  if (cache_hit != nullptr) *cache_hit = false;
  const std::int64_t peak = replay(sequence, options, &scratch).peak_device;
  ReplayScratch::CachedReplay record;
  record.fingerprint = fingerprint;
  record.tower_key = tower_key;
  record.events = sequence.events;
  record.peak_device = peak;
  if (scratch.results.size() < ReplayScratch::kResultCacheCapacity) {
    scratch.results.push_back(std::move(record));
  } else {
    // FIFO replacement: refine loops touch each sequence in bursts, so the
    // oldest entry is the least likely to be asked for again.
    scratch.results[scratch.next_result_slot] = std::move(record);
    scratch.next_result_slot =
        (scratch.next_result_slot + 1) % ReplayScratch::kResultCacheCapacity;
  }
  return peak;
}

}  // namespace xmem::core
