// xMem Memory Orchestrator (paper §3.3).
//
// Refines the CPU-derived lifecycles in a MemoryTimeline so they reflect the
// lifecycles the same logical tensors would have on the target GPU:
//
//   1. Model parameters  — persistent for the whole job.
//   2. Batch data        — truncated to the iteration that loaded it.
//   3. Activations       — CPU lifecycles kept as-is (good approximations).
//   4. Gradients         — deallocation re-timed to the next
//                          optimizer.zero_grad() call.
//   5. Optimizer state   — step-phase blocks matching parameter sizes are
//                          pinned persistent (stateful optimizers allocate
//                          them in iteration 1).
//
// Each rule can be disabled individually for the ablation benches.
#pragma once

#include <cstdint>
#include <vector>

#include "core/analyzer.h"

namespace xmem::core {

struct OrchestratorConfig {
  bool rule_params = true;
  bool rule_batch = true;
  bool rule_gradients = true;
  bool rule_optimizer_state = true;
};

struct OrchestratedEvent {
  util::TimeUs ts = 0;
  std::int64_t block_id = 0;
  std::int64_t bytes = 0;  ///< block size
  bool is_alloc = false;

  friend bool operator==(const OrchestratedEvent& a,
                         const OrchestratedEvent& b) {
    return a.ts == b.ts && a.block_id == b.block_id && a.bytes == b.bytes &&
           a.is_alloc == b.is_alloc;
  }
  friend bool operator!=(const OrchestratedEvent& a,
                         const OrchestratedEvent& b) {
    return !(a == b);
  }
};

/// The one replay-stream ordering contract: time-ordered, frees before
/// allocs on ties (so same-instant reuse does not manufacture phantom
/// peaks), block id as the total-order tiebreak. Every producer of an
/// OrchestratedSequence (the Orchestrator, the rank-sequence transforms)
/// sorts with this comparator.
inline bool orchestrated_event_order(const OrchestratedEvent& a,
                                     const OrchestratedEvent& b) {
  if (a.ts != b.ts) return a.ts < b.ts;
  if (a.is_alloc != b.is_alloc) return !a.is_alloc;
  return a.block_id < b.block_id;
}

struct OrchestratedSequence {
  /// Blocks with adjusted lifecycles (free_ts == -1: never freed in replay).
  std::vector<MemoryBlock> blocks;
  /// Flattened alloc/free stream, time-ordered (frees first on ties so
  /// same-instant reuse does not manufacture phantom peaks).
  std::vector<OrchestratedEvent> events;
};

struct OrchestratorStats {
  std::size_t params_pinned = 0;
  std::size_t batch_truncated = 0;
  std::size_t gradients_retimed = 0;
  std::size_t optimizer_states_pinned = 0;
};

class Orchestrator {
 public:
  struct Output {
    OrchestratedSequence sequence;
    OrchestratorStats stats;
  };

  Output orchestrate(const MemoryTimeline& timeline,
                     const OrchestratorConfig& config = {}) const;
};

}  // namespace xmem::core
