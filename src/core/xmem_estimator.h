// The xMem estimator: the full pipeline of Figure 4.
//
//   CPU profile (3 iterations)  ->  JSON trace  ->  Analyzer
//       ->  Memory Orchestrator  ->  two-level Memory Simulator
//       ->  estimated peak (+ optional memory curve)
//
// The trace genuinely round-trips through JSON (serialize + parse) so the
// pipeline consumes exactly what a profiler file would contain.
#pragma once

#include <string>

#include "core/analyzer.h"
#include "core/estimator_api.h"
#include "core/orchestrator.h"
#include "core/simulator.h"
#include "trace/trace.h"

namespace xmem::core {

struct XMemOptions {
  int profile_iterations = 3;
  /// Registry name of the allocator the simulator replays against
  /// (alloc/backend_registry.h; §6.4 framework generalization).
  std::string allocator_backend = alloc::kDefaultBackendName;
  /// Disable to ablate §3.3 (raw CPU lifecycles straight into the
  /// simulator) — the "Orchestrator off" rows of the ablation bench.
  bool orchestrate = true;
  OrchestratorConfig orchestrator_config;
  /// Serialize + reparse the profiler output (the authentic file-based
  /// path). Disable only in microbenches that time the stages separately.
  bool json_round_trip = true;
};

class XMemEstimator final : public Estimator {
 public:
  explicit XMemEstimator(XMemOptions options = {}) : options_(options) {}

  std::string name() const override { return "xMem"; }

  EstimateResult estimate(const TrainJob& job,
                          const gpu::DeviceModel& device) override;

  /// Full pipeline with intermediate artifacts exposed (tests, Fig. 6
  /// curves, the allocator-explorer example).
  struct PipelineArtifacts {
    trace::Trace trace;
    Analyzer::Output analysis;
    Orchestrator::Output orchestration;
    SimulationResult simulation;
  };
  PipelineArtifacts run_pipeline(const TrainJob& job, bool record_series) const;

 private:
  XMemOptions options_;
};

}  // namespace xmem::core
