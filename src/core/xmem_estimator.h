// The xMem estimator: the full pipeline of Figure 4.
//
//   CPU profile (3 iterations)  ->  JSON trace  ->  Analyzer
//       ->  Memory Orchestrator  ->  two-level Memory Simulator
//       ->  estimated peak (+ optional memory curve)
//
// The trace genuinely round-trips through JSON (serialize + parse) so the
// pipeline consumes exactly what a profiler file would contain.
//
// Since the service-layer redesign this class is a thin adapter: the
// expensive prefix (profile -> analyze -> orchestrate) lives in a
// ProfileSession, shared with the EstimationService, and compute() is just
// a session lookup plus one simulator replay. Pass a shared session to let
// several estimators (or a service) reuse each other's profiles.
#pragma once

#include <memory>
#include <string>

#include "core/analyzer.h"
#include "core/estimator_api.h"
#include "core/orchestrator.h"
#include "core/profile_session.h"
#include "core/simulator.h"
#include "trace/trace.h"

namespace xmem::core {

struct XMemOptions {
  int profile_iterations = 3;
  /// Registry name of the allocator the simulator replays against
  /// (alloc/backend_registry.h; §6.4 framework generalization).
  std::string allocator_backend = alloc::kDefaultBackendName;
  /// Disable to ablate §3.3 (raw CPU lifecycles straight into the
  /// simulator) — the "Orchestrator off" rows of the ablation bench.
  bool orchestrate = true;
  OrchestratorConfig orchestrator_config;
  /// Serialize + reparse the profiler output (the authentic file-based
  /// path). Disable only in microbenches that time the stages separately.
  bool json_round_trip = true;
};

class XMemEstimator final : public Estimator {
 public:
  explicit XMemEstimator(XMemOptions options = {},
                         std::shared_ptr<ProfileSession> session = nullptr)
      : options_(options),
        session_(session ? std::move(session)
                         : std::make_shared<ProfileSession>()) {}

  std::string name() const override {
    return options_.orchestrate ? "xMem" : "xMem-noOrch";
  }

  /// The session cache key for this estimator's view of `job`.
  ProfileKey profile_key(const TrainJob& job) const;

  ProfileSession& session() const { return *session_; }

  /// Full pipeline with intermediate artifacts exposed (tests, Fig. 6
  /// curves, the allocator-explorer example). Served from the session
  /// cache when the profile prefix is already resident.
  struct PipelineArtifacts {
    trace::Trace trace;
    Analyzer::Output analysis;
    Orchestrator::Output orchestration;
    SimulationResult simulation;
  };
  PipelineArtifacts run_pipeline(const TrainJob& job, bool record_series) const;

 protected:
  EstimateResult compute(const TrainJob& job,
                         const gpu::DeviceModel& device) override;

 private:
  XMemOptions options_;
  std::shared_ptr<ProfileSession> session_;
};

}  // namespace xmem::core
