#include "core/estimation_service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <list>
#include <map>
#include <mutex>
#include <stdexcept>
#include <tuple>
#include <unordered_set>

#include "core/estimator_registry.h"
#include "core/sequence_transform.h"
#include "core/simulator.h"
#include "models/zoo.h"
#include "util/thread_pool.h"

namespace xmem::core {

// job/device JSON helpers are public (declared in estimation_service.h):
// the sweep, plan, and fleet request schemas all share them.
TrainJob job_from_json(const util::Json& json) {
  TrainJob job;
  job.model_name = json.get_string_or("model", "");
  job.batch_size = static_cast<int>(json.get_int_or("batch", 0));
  job.optimizer =
      fw::optimizer_from_string(json.get_string_or("optimizer", "SGD"));
  job.placement =
      fw::placement_from_string(json.get_string_or("placement", "POS1"));
  job.seed = static_cast<std::uint64_t>(json.get_int_or("seed", 1));
  if (job.model_name.empty()) {
    throw std::invalid_argument("request job: missing \"model\"");
  }
  if (job.batch_size <= 0) {
    throw std::invalid_argument("request job: \"batch\" must be > 0");
  }
  return job;
}

util::Json job_to_json(const TrainJob& job) {
  util::Json json = util::Json::object();
  json["model"] = util::Json(job.model_name);
  json["batch"] = util::Json(job.batch_size);
  json["optimizer"] = util::Json(to_string(job.optimizer));
  json["placement"] = util::Json(to_string(job.placement));
  json["seed"] = util::Json(static_cast<std::int64_t>(job.seed));
  return json;
}

gpu::DeviceModel device_from_json(const util::Json& json) {
  if (json.is_string()) return gpu::device_by_name(json.as_string());
  if (!json.is_object()) {
    throw std::invalid_argument(
        "request devices: entries must be alias strings or device objects");
  }
  const std::string name = json.get_string_or("name", "");
  if (name.empty()) {
    throw std::invalid_argument("request device object: missing \"name\"");
  }
  // Start from the named reference card when the name resolves (so partial
  // overrides — e.g. only m_init_bytes — are what-ifs against real
  // geometry), from a blank device otherwise.
  gpu::DeviceModel device;
  try {
    device = gpu::device_by_name(name);
  } catch (const std::invalid_argument&) {
    device.name = name;
  }
  device.capacity = json.get_int_or("capacity_bytes", device.capacity);
  device.m_init = json.get_int_or("m_init_bytes", device.m_init);
  device.m_fm = json.get_int_or("m_fm_bytes", device.m_fm);
  if (device.capacity <= 0) {
    throw std::invalid_argument(
        "request device object: unknown name '" + name +
        "' needs an explicit \"capacity_bytes\" > 0");
  }
  return device;
}

util::Json devices_to_json(const std::vector<gpu::DeviceModel>& devices) {
  util::Json device_array = util::Json::array();
  for (const gpu::DeviceModel& device : devices) {
    util::Json entry = util::Json::object();
    entry["name"] = util::Json(device.name);
    entry["capacity_bytes"] = util::Json(device.capacity);
    entry["m_init_bytes"] = util::Json(device.m_init);
    entry["m_fm_bytes"] = util::Json(device.m_fm);
    device_array.push_back(std::move(entry));
  }
  return device_array;
}

namespace {

util::Json timings_to_json(const StageTimings& timings) {
  util::Json json = util::Json::object();
  json["profile_seconds"] = util::Json(timings.profile_seconds);
  json["analyze_seconds"] = util::Json(timings.analyze_seconds);
  json["simulate_seconds"] = util::Json(timings.simulate_seconds);
  json["total_seconds"] = util::Json(timings.total_seconds);
  json["profile_cache_hit"] = util::Json(timings.profile_cache_hit);
  json["result_cache_hit"] = util::Json(timings.result_cache_hit);
  return json;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

std::map<std::string, alloc::BackendKnobs> allocator_config_from_json(
    const util::Json& json, const std::string& context) {
  if (!json.is_object()) {
    throw std::invalid_argument(context +
                                ": \"allocator_config\" must be an object "
                                "mapping backend name -> knob object");
  }
  std::map<std::string, alloc::BackendKnobs> config;
  for (const auto& [name, knobs] : json.as_object()) {
    config[name] = alloc::parse_backend_knobs(
        knobs, context + ": allocator_config." + name);
  }
  return config;
}

util::Json allocator_config_to_json(
    const std::map<std::string, alloc::BackendKnobs>& config) {
  util::Json json = util::Json::object();
  for (const auto& [name, knobs] : config) {
    util::Json knob_object = util::Json::object();
    for (const auto& [knob, value] : knobs) {
      knob_object[knob] = util::Json(value);
    }
    json[name] = std::move(knob_object);
  }
  return json;
}

/// Fail a request up front when its allocator_config is malformed: unknown
/// backend names, and — by constructing a throwaway backend — unknown knob
/// names or out-of-range values, surfacing the backend's own actionable
/// message instead of a mid-sweep failure.
void validate_allocator_config(
    const std::map<std::string, alloc::BackendKnobs>& config,
    const std::string& context) {
  for (const auto& [name, knobs] : config) {
    if (!alloc::is_known_backend(name)) {
      throw std::invalid_argument(context +
                                  ": allocator_config names unknown backend '" +
                                  name + "'");
    }
    alloc::SimulatedCudaDriver probe(SimulationOptions::kUnboundedCapacity);
    alloc::make_backend(name, probe, knobs);
  }
}

namespace {

const alloc::BackendKnobs& knobs_for(
    const std::map<std::string, alloc::BackendKnobs>& config,
    const std::string& name) {
  static const alloc::BackendKnobs empty;
  const auto it = config.find(name);
  return it == config.end() ? empty : it->second;
}

}  // namespace

EstimateRequest EstimateRequest::from_json(const util::Json& json) {
  if (!json.is_object()) {
    throw std::invalid_argument("request: top level must be an object");
  }
  EstimateRequest request;
  request.job = job_from_json(json.at("job"));

  if (!json.contains("devices") || json.at("devices").size() == 0) {
    throw std::invalid_argument("request: \"devices\" must be a non-empty "
                                "array");
  }
  for (const util::Json& entry : json.at("devices").as_array()) {
    request.devices.push_back(device_from_json(entry));
  }

  if (json.contains("allocators")) {
    request.allocators.clear();
    for (const util::Json& entry : json.at("allocators").as_array()) {
      request.allocators.push_back(entry.as_string());
    }
  }
  if (json.contains("estimators")) {
    request.estimators.clear();
    for (const util::Json& entry : json.at("estimators").as_array()) {
      request.estimators.push_back(entry.as_string());
    }
  }
  if (json.contains("allocator_config")) {
    request.allocator_config =
        allocator_config_from_json(json.at("allocator_config"), "request");
  }
  request.profile_iterations =
      static_cast<int>(json.get_int_or("profile_iterations", 3));
  request.record_curve = json.contains("curve") && json.at("curve").as_bool();
  request.tenant = json.get_string_or("tenant", "");
  return request;
}

util::Json EstimateRequest::to_json() const {
  util::Json json = util::Json::object();
  json["job"] = job_to_json(job);
  json["devices"] = devices_to_json(devices);
  util::Json allocator_array = util::Json::array();
  for (const std::string& name : allocators) {
    allocator_array.push_back(util::Json(name));
  }
  json["allocators"] = std::move(allocator_array);
  util::Json estimator_array = util::Json::array();
  for (const std::string& name : estimators) {
    estimator_array.push_back(util::Json(name));
  }
  json["estimators"] = std::move(estimator_array);
  if (!allocator_config.empty()) {
    json["allocator_config"] = allocator_config_to_json(allocator_config);
  }
  json["profile_iterations"] = util::Json(profile_iterations);
  json["curve"] = util::Json(record_curve);
  if (!tenant.empty()) json["tenant"] = util::Json(tenant);
  return json;
}

EstimateResult EstimateEntry::to_result() const {
  EstimateResult result;
  result.supported = supported;
  result.estimated_peak = estimated_peak;
  result.oom_predicted = oom_predicted;
  result.runtime_seconds = timings.total_seconds;
  return result;
}

util::Json EstimateEntry::to_json(bool include_timings) const {
  util::Json json = util::Json::object();
  json["estimator"] = util::Json(estimator);
  json["device"] = util::Json(device);
  if (!allocator.empty()) json["allocator"] = util::Json(allocator);
  json["supported"] = util::Json(supported);
  if (supported) {
    json["estimated_peak_bytes"] = util::Json(estimated_peak);
    json["oom_predicted"] = util::Json(oom_predicted);
    json["device_job_budget_bytes"] = util::Json(device_job_budget);
  }
  if (has_orchestrator_stats) {
    util::Json stats = util::Json::object();
    stats["params_pinned"] =
        util::Json(static_cast<std::int64_t>(orchestrator_stats.params_pinned));
    stats["batch_truncated"] = util::Json(
        static_cast<std::int64_t>(orchestrator_stats.batch_truncated));
    stats["gradients_retimed"] = util::Json(
        static_cast<std::int64_t>(orchestrator_stats.gradients_retimed));
    stats["optimizer_states_pinned"] = util::Json(static_cast<std::int64_t>(
        orchestrator_stats.optimizer_states_pinned));
    json["orchestrator_stats"] = std::move(stats);
  }
  if (include_timings) json["timings"] = timings_to_json(timings);
  if (!reserved_curve.empty()) {
    util::Json curve = util::Json::array();
    for (const auto& [ts, bytes] : reserved_curve) {
      util::Json point = util::Json::array();
      point.push_back(util::Json(ts));
      point.push_back(util::Json(bytes));
      curve.push_back(std::move(point));
    }
    json["reserved_curve"] = std::move(curve);
  }
  return json;
}

util::Json EstimateReport::to_json(bool include_timings) const {
  util::Json json = util::Json::object();
  json["schema_version"] = util::Json(1);
  json["job"] = job_to_json(job);
  util::Json entry_array = util::Json::array();
  for (const EstimateEntry& entry : entries) {
    entry_array.push_back(entry.to_json(include_timings));
  }
  json["entries"] = std::move(entry_array);
  util::Json counters = util::Json::object();
  counters["profiles_run"] =
      util::Json(static_cast<std::int64_t>(profiles_run));
  counters["profile_cache_hits"] =
      util::Json(static_cast<std::int64_t>(profile_cache_hits));
  counters["replays_run"] = util::Json(static_cast<std::int64_t>(replays_run));
  counters["result_cache_hits"] =
      util::Json(static_cast<std::int64_t>(result_cache_hits));
  json["stage_counters"] = std::move(counters);
  if (include_timings) json["wall_seconds"] = util::Json(wall_seconds);
  return json;
}

PlanRequest PlanRequest::from_json(const util::Json& json) {
  if (!json.is_object()) {
    throw std::invalid_argument("plan request: top level must be an object");
  }
  PlanRequest request;
  request.job = job_from_json(json.at("job"));
  if (!json.contains("devices") || json.at("devices").size() == 0) {
    throw std::invalid_argument(
        "plan request: \"devices\" must be a non-empty array");
  }
  for (const util::Json& entry : json.at("devices").as_array()) {
    request.devices.push_back(device_from_json(entry));
  }
  request.max_gpus = static_cast<int>(json.get_int_or("max_gpus", 8));
  if (request.max_gpus < 1) {
    throw std::invalid_argument("plan request: \"max_gpus\" must be >= 1");
  }
  request.micro_batches =
      static_cast<int>(json.get_int_or("micro_batches", 4));
  if (request.micro_batches < 1) {
    throw std::invalid_argument(
        "plan request: \"micro_batches\" must be >= 1");
  }
  request.schedule =
      pipeline_schedule_from_string(json.get_string_or("schedule", "1f1b"));
  request.virtual_stages =
      static_cast<int>(json.get_int_or("virtual_stages", 1));
  if (request.virtual_stages < 1) {
    throw std::invalid_argument(
        "plan request: \"virtual_stages\" must be >= 1");
  }
  request.zero = zero_stage_from_int(
      static_cast<int>(json.get_int_or("zero_stage", 0)));
  request.ddp_bucket_bytes =
      json.get_int_or("ddp_bucket_bytes", request.ddp_bucket_bytes);
  if (request.ddp_bucket_bytes < 0) {
    throw std::invalid_argument(
        "plan request: \"ddp_bucket_bytes\" must be >= 0");
  }
  request.ddp_bucket_count = static_cast<int>(
      json.get_int_or("ddp_bucket_count", request.ddp_bucket_count));
  if (request.ddp_bucket_count < 0) {
    throw std::invalid_argument(
        "plan request: \"ddp_bucket_count\" must be >= 0");
  }
  request.activation_replication_pct = static_cast<int>(
      json.get_int_or("activation_replication_pct", 25));
  if (request.activation_replication_pct < 0 ||
      request.activation_replication_pct > 100) {
    throw std::invalid_argument(
        "plan request: \"activation_replication_pct\" must be 0..100");
  }
  request.allocator = json.get_string_or("allocator", request.allocator);
  if (json.contains("allocator_config")) {
    request.allocator_config = allocator_config_from_json(
        json.at("allocator_config"), "plan request");
  }
  request.profile_iterations =
      static_cast<int>(json.get_int_or("profile_iterations", 3));
  if (request.profile_iterations < 1) {
    throw std::invalid_argument(
        "plan request: \"profile_iterations\" must be >= 1");
  }
  const std::int64_t max_candidates = json.get_int_or("max_candidates", 0);
  if (max_candidates < 0) {
    throw std::invalid_argument(
        "plan request: \"max_candidates\" must be >= 0");
  }
  request.max_candidates = static_cast<std::size_t>(max_candidates);
  if (json.contains("refine_top_k") && json.at("refine_top_k").is_string()) {
    // Full-search mode spells itself as the string "all"; any other string
    // is a typo, not a count.
    if (json.at("refine_top_k").as_string() != "all") {
      throw std::invalid_argument(
          "plan request: \"refine_top_k\" must be an integer >= 0 or the "
          "string \"all\" (refine every ranked decomposition)");
    }
    request.refine_all = true;
  } else {
    request.refine_top_k = static_cast<int>(
        json.get_int_or("refine_top_k", request.refine_top_k));
    if (request.refine_top_k < 0) {
      throw std::invalid_argument(
          "plan request: \"refine_top_k\" must be >= 0");
    }
  }
  if (json.contains("dedup_replays")) {
    if (!json.at("dedup_replays").is_bool()) {
      throw std::invalid_argument(
          "plan request: \"dedup_replays\" must be a boolean (false replays "
          "every deployment rank individually instead of collapsing "
          "symmetric ranks; the report is byte-identical either way)");
    }
    request.dedup_replays = json.at("dedup_replays").as_bool();
  }
  if (json.contains("comm_overlap")) {
    if (!json.at("comm_overlap").is_bool()) {
      throw std::invalid_argument(
          "plan request: \"comm_overlap\" must be a boolean (true simulates "
          "collectives as schedule-tied overlap windows and re-ranks refined "
          "candidates by window-replayed peaks; omit it or pass false for "
          "resident staging buffers)");
    }
    request.comm_overlap = json.at("comm_overlap").as_bool();
  }
  request.tenant = json.get_string_or("tenant", "");
  return request;
}

util::Json PlanRequest::to_json() const {
  util::Json json = util::Json::object();
  json["job"] = job_to_json(job);
  json["devices"] = devices_to_json(devices);
  json["max_gpus"] = util::Json(max_gpus);
  json["micro_batches"] = util::Json(micro_batches);
  json["schedule"] = util::Json(to_string(schedule));
  json["virtual_stages"] = util::Json(virtual_stages);
  json["zero_stage"] = util::Json(static_cast<int>(zero));
  json["ddp_bucket_bytes"] = util::Json(ddp_bucket_bytes);
  json["ddp_bucket_count"] = util::Json(ddp_bucket_count);
  json["activation_replication_pct"] = util::Json(activation_replication_pct);
  json["allocator"] = util::Json(allocator);
  if (!allocator_config.empty()) {
    json["allocator_config"] = allocator_config_to_json(allocator_config);
  }
  json["profile_iterations"] = util::Json(profile_iterations);
  json["max_candidates"] =
      util::Json(static_cast<std::int64_t>(max_candidates));
  if (refine_all) {
    json["refine_top_k"] = util::Json(std::string("all"));
  } else {
    json["refine_top_k"] = util::Json(refine_top_k);
  }
  // Emitted only when off so default documents round-trip unchanged.
  if (!dedup_replays) json["dedup_replays"] = util::Json(false);
  // Emitted only when set so resident-mode documents round-trip unchanged.
  if (comm_overlap) json["comm_overlap"] = util::Json(true);
  if (!tenant.empty()) json["tenant"] = util::Json(tenant);
  return json;
}

util::Json PlanCandidate::to_json(
    const std::vector<gpu::DeviceModel>& devices) const {
  util::Json json = util::Json::object();
  json["data_parallel"] = util::Json(plan.data_parallel);
  json["tensor_parallel"] = util::Json(plan.tensor_parallel);
  json["pipeline_stages"] = util::Json(plan.pipeline_stages);
  json["gpus"] = util::Json(plan.gpus);
  json["per_rank_peak_bytes"] = util::Json(plan.per_rank_peak);
  json["savings_pct"] = util::Json(savings_pct);
  json["splitting_helps"] = util::Json(splitting_helps);
  util::Json ranks = util::Json::array();
  for (const std::int64_t peak : plan.rank_peaks) {
    ranks.push_back(util::Json(peak));
  }
  json["rank_peaks_bytes"] = std::move(ranks);
  util::Json stages = util::Json::array();
  for (const PipelineStage& stage : plan.stages) {
    util::Json entry = util::Json::object();
    entry["first_component"] =
        util::Json(static_cast<std::int64_t>(stage.first_component));
    entry["last_component"] =
        util::Json(static_cast<std::int64_t>(stage.last_component));
    entry["peak_bytes"] = util::Json(stage.estimated_peak);
    stages.push_back(std::move(entry));
  }
  json["stages"] = std::move(stages);
  util::Json verdicts = util::Json::array();
  for (std::size_t i = 0; i < devices.size() && i < device_fits.size(); ++i) {
    util::Json verdict = util::Json::object();
    verdict["device"] = util::Json(devices[i].name);
    verdict["fits"] = util::Json(static_cast<bool>(device_fits[i]));
    verdicts.push_back(std::move(verdict));
  }
  json["fits"] = std::move(verdicts);
  json["replayed"] = util::Json(replayed);
  if (replayed) {
    util::Json replay = util::Json::object();
    util::Json rank_array = util::Json::array();
    for (const std::int64_t peak : replayed_rank_peaks) {
      rank_array.push_back(util::Json(peak));
    }
    replay["rank_peaks_bytes"] = std::move(rank_array);
    replay["per_rank_peak_bytes"] = util::Json(replayed_per_rank_peak);
    replay["analytic_vs_replayed_pct"] = util::Json(analytic_vs_replayed_pct);
    util::Json replay_verdicts = util::Json::array();
    for (std::size_t i = 0;
         i < devices.size() && i < replayed_device_fits.size(); ++i) {
      util::Json verdict = util::Json::object();
      verdict["device"] = util::Json(devices[i].name);
      verdict["fits"] = util::Json(static_cast<bool>(replayed_device_fits[i]));
      replay_verdicts.push_back(std::move(verdict));
    }
    replay["fits"] = std::move(replay_verdicts);
    replay["verdict_changed"] = util::Json(verdict_changed);
    if (window_mode) {
      // Overlap-window refinement: the peaks above are window-mode; keep
      // the resident baseline next to them (these keys only appear under
      // comm_overlap, so resident-mode reports stay byte-identical).
      util::Json resident_array = util::Json::array();
      for (const std::int64_t peak : resident_rank_peaks) {
        resident_array.push_back(util::Json(peak));
      }
      replay["resident_rank_peaks_bytes"] = std::move(resident_array);
      replay["resident_per_rank_peak_bytes"] =
          util::Json(resident_per_rank_peak);
      replay["window_vs_resident_pct"] = util::Json(window_vs_resident_pct);
    }
    json["replay"] = std::move(replay);
  }
  return json;
}

util::Json PlanReport::to_json(bool include_timings) const {
  util::Json json = util::Json::object();
  json["schema_version"] = util::Json(1);
  // Emitted only when set, so resident-mode reports stay byte-identical.
  if (comm_overlap) json["comm_overlap"] = util::Json(true);
  json["job"] = job_to_json(job);
  util::Json single = util::Json::object();
  single["analytic_peak_bytes"] = util::Json(single_device_peak);
  util::Json entry_array = util::Json::array();
  for (const EstimateEntry& entry : single_device_entries) {
    entry_array.push_back(entry.to_json(include_timings));
  }
  single["entries"] = std::move(entry_array);
  json["single_device"] = std::move(single);
  util::Json candidate_array = util::Json::array();
  for (const PlanCandidate& candidate : candidates) {
    candidate_array.push_back(candidate.to_json(devices));
  }
  json["candidates"] = std::move(candidate_array);
  json["candidates_evaluated"] =
      util::Json(static_cast<std::int64_t>(candidates_evaluated));
  util::Json counters = util::Json::object();
  counters["profiles_run"] =
      util::Json(static_cast<std::int64_t>(profiles_run));
  counters["profile_cache_hits"] =
      util::Json(static_cast<std::int64_t>(profile_cache_hits));
  counters["replays_run"] = util::Json(static_cast<std::int64_t>(replays_run));
  counters["replayed_candidates"] =
      util::Json(static_cast<std::int64_t>(replayed_candidates));
  counters["rank_replays"] =
      util::Json(static_cast<std::int64_t>(rank_replays_run));
  counters["replays_deduped"] =
      util::Json(static_cast<std::int64_t>(replays_deduped));
  counters["replay_cache_hits"] =
      util::Json(static_cast<std::int64_t>(replay_cache_hits));
  if (comm_overlap) {
    // Only under comm_overlap, so resident-mode reports stay byte-identical.
    counters["rerank_changed"] =
        util::Json(static_cast<std::int64_t>(rerank_changed));
  }
  counters["result_cache_hits"] =
      util::Json(static_cast<std::int64_t>(result_cache_hits));
  json["stage_counters"] = std::move(counters);
  if (include_timings) json["wall_seconds"] = util::Json(wall_seconds);
  return json;
}

// ---------------------------------------------------------------------------

struct EstimationService::SweepCounters {
  std::atomic<std::size_t> profiles_run{0};
  std::atomic<std::size_t> profile_cache_hits{0};
  std::atomic<std::size_t> replays_run{0};
  std::atomic<std::size_t> replayed_candidates{0};
  std::atomic<std::size_t> result_cache_hits{0};
};

struct EstimationService::Impl {
  std::mutex estimators_mutex;
  std::map<std::string, std::unique_ptr<Estimator>> estimators;

  std::mutex results_mutex;
  std::list<std::string> results_lru;  ///< front = most recently used
  std::map<std::string,
           std::pair<EstimateEntry, std::list<std::string>::iterator>>
      results;
};

EstimationService::EstimationService(ServiceOptions options)
    : options_(options),
      session_(options.session
                   ? options.session
                   : std::make_shared<ProfileSession>(
                         options.profile_cache_capacity,
                         options.session_quota)),
      impl_(std::make_unique<Impl>()) {
  const std::size_t threads = options_.threads == 0
                                  ? util::ThreadPool::default_threads()
                                  : options_.threads;
  if (threads > 1) pool_ = std::make_unique<util::ThreadPool>(threads);
}

EstimationService::~EstimationService() = default;

ProfileKey EstimationService::profile_key_for(const TrainJob& job,
                                              bool orchestrate,
                                              int profile_iterations) const {
  ProfileKey key;
  key.model_name = job.model_name;
  key.batch_size = job.batch_size;
  key.optimizer = job.optimizer;
  key.placement = job.placement;
  key.seed = job.seed;
  key.profile_iterations = profile_iterations;
  key.json_round_trip = options_.json_round_trip;
  if (orchestrate) {
    key.orchestrator_config = options_.orchestrator_config;
  } else {
    key.orchestrator_config.rule_params = false;
    key.orchestrator_config.rule_batch = false;
    key.orchestrator_config.rule_gradients = false;
    key.orchestrator_config.rule_optimizer_state = false;
  }
  return key;
}

Estimator& EstimationService::estimator_instance(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->estimators_mutex);
  auto it = impl_->estimators.find(name);
  if (it == impl_->estimators.end()) {
    // Construction happens under the lock on purpose: SchedTune trains its
    // GBM at construction and must do so exactly once per service.
    it = impl_->estimators.emplace(name, make_estimator(name)).first;
  }
  return *it->second;
}

bool EstimationService::result_cache_get(const std::string& key,
                                         EstimateEntry& out) {
  std::lock_guard<std::mutex> lock(impl_->results_mutex);
  auto it = impl_->results.find(key);
  if (it == impl_->results.end()) return false;
  impl_->results_lru.splice(impl_->results_lru.begin(), impl_->results_lru,
                            it->second.second);
  out = it->second.first;
  return true;
}

void EstimationService::result_cache_put(const std::string& key,
                                         const EstimateEntry& entry) {
  std::lock_guard<std::mutex> lock(impl_->results_mutex);
  if (impl_->results.count(key) > 0) return;  // concurrent duplicate
  impl_->results_lru.push_front(key);
  impl_->results.emplace(key, std::make_pair(entry, impl_->results_lru.begin()));
  while (impl_->results.size() > options_.result_cache_capacity &&
         !impl_->results_lru.empty()) {
    impl_->results.erase(impl_->results_lru.back());
    impl_->results_lru.pop_back();
  }
}

void EstimationService::run_fanned(
    const std::size_t count, const std::function<void(std::size_t)>& task) {
  if (!pool_) {
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(pool_->submit([&task, i] { task(i); }));
  }
  std::exception_ptr first_error;
  for (std::future<void>& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

EstimateEntry EstimationService::run_entry(const EstimateRequest& request,
                                           const EntrySpec& spec,
                                           SweepCounters& counters) {
  const gpu::DeviceModel& device = request.devices[spec.device_index];
  std::string result_key = spec.estimator;
  result_key += '|';
  result_key += request.job.label();
  result_key += "|s";
  result_key += std::to_string(request.job.seed);
  result_key += "|it";
  result_key += std::to_string(request.profile_iterations);
  result_key += '|';
  result_key += device.name;
  // A name alone does not identify a device: custom what-if entries may
  // reuse a name with different geometry, and the verdict depends on it.
  result_key += '#';
  result_key += std::to_string(device.capacity);
  result_key += '/';
  result_key += std::to_string(device.m_init);
  result_key += '/';
  result_key += std::to_string(device.m_fm);
  result_key += '|';
  result_key += spec.allocator;
  const alloc::BackendKnobs& knobs =
      knobs_for(request.allocator_config, spec.allocator);
  if (!knobs.empty()) {
    // Same backend under different knobs is a different question.
    result_key += '{';
    result_key += alloc::knobs_fingerprint(knobs);
    result_key += '}';
  }
  result_key += request.record_curve ? "|curve" : "";

  EstimateEntry cached;
  if (result_cache_get(result_key, cached)) {
    counters.result_cache_hits.fetch_add(1);
    cached.timings.result_cache_hit = true;
    return cached;
  }

  const auto entry_start = std::chrono::steady_clock::now();
  EstimateEntry entry;
  entry.estimator = spec.estimator;
  entry.device = device.name;
  entry.allocator = spec.allocator;
  entry.device_job_budget = device.job_budget();

  if (spec.session_backed) {
    const ProfileSession::Lookup lookup = session_->get(
        profile_key_for(request.job, estimator_orchestrates(spec.estimator),
                        request.profile_iterations),
        request.tenant);
    if (lookup.cache_hit) {
      counters.profile_cache_hits.fetch_add(1);
    } else {
      counters.profiles_run.fetch_add(1);
    }

    const auto replay_start = std::chrono::steady_clock::now();
    MemorySimulator simulator;
    SimulationOptions sim_options;
    sim_options.backend = spec.allocator;
    sim_options.backend_knobs = knobs;
    sim_options.record_series = request.record_curve;
    // Worker-thread-lifetime scratch: consecutive entries on this thread
    // reset the allocator tower instead of rebuilding it (byte-identical
    // results per the backend_reset() contract, so the report stays
    // independent of how entries land on threads).
    thread_local ReplayScratch replay_scratch;
    const SimulationResult simulation = simulator.replay(
        lookup.artifacts->orchestration.sequence, sim_options,
        &replay_scratch);
    counters.replays_run.fetch_add(1);

    entry.estimated_peak = simulation.peak_device;
    entry.oom_predicted = entry.estimated_peak > device.job_budget();
    entry.has_orchestrator_stats = true;
    entry.orchestrator_stats = lookup.artifacts->orchestration.stats;
    if (request.record_curve) entry.reserved_curve = simulation.reserved_series;

    entry.timings.profile_cache_hit = lookup.cache_hit;
    if (!lookup.cache_hit) {
      entry.timings.profile_seconds = lookup.artifacts->profile_seconds;
      entry.timings.analyze_seconds = lookup.artifacts->analyze_seconds;
    }
    entry.timings.simulate_seconds = seconds_since(replay_start);
    entry.timings.total_seconds = seconds_since(entry_start);
  } else {
    Estimator& estimator = estimator_instance(spec.estimator);
    const EstimateResult result = estimator.estimate(request.job, device);
    entry.supported = result.supported;
    entry.estimated_peak = result.supported ? result.estimated_peak : 0;
    entry.oom_predicted = result.supported && result.oom_predicted;
    // The uniform wrapper clock (estimator_api.h), so lazy estimator
    // construction (SchedTune's one-time GBM training) is not charged to
    // the entry that happened to trigger it.
    entry.timings.total_seconds = result.runtime_seconds;
  }

  result_cache_put(result_key, entry);
  return entry;
}

EstimateReport EstimationService::sweep(const EstimateRequest& request) {
  const auto sweep_start = std::chrono::steady_clock::now();

  if (request.devices.empty()) {
    throw std::invalid_argument("sweep: request has no devices");
  }
  if (!models::is_known_model(request.job.model_name)) {
    throw std::invalid_argument("sweep: unknown model '" +
                                request.job.model_name + "'");
  }
  const std::vector<std::string> allocators =
      request.allocators.empty()
          ? std::vector<std::string>{alloc::kDefaultBackendName}
          : request.allocators;
  for (const std::string& allocator : allocators) {
    if (!alloc::is_known_backend(allocator)) {
      throw std::invalid_argument("sweep: unknown allocator '" + allocator +
                                  "'");
    }
  }
  validate_allocator_config(request.allocator_config, "sweep");
  const std::vector<std::string> estimators =
      request.estimators.empty() ? std::vector<std::string>{"xMem"}
                                 : request.estimators;

  // Fix the (deterministic) entry order up front; workers fill slots.
  std::vector<EntrySpec> specs;
  for (const std::string& estimator : estimators) {
    if (!is_known_estimator(estimator)) {
      throw std::invalid_argument("sweep: unknown estimator '" + estimator +
                                  "'");
    }
    const bool session_backed = estimator_uses_session(estimator);
    for (std::size_t d = 0; d < request.devices.size(); ++d) {
      if (session_backed) {
        for (const std::string& allocator : allocators) {
          specs.push_back(EntrySpec{estimator, d, allocator, true});
        }
      } else {
        specs.push_back(EntrySpec{estimator, d, std::string(), false});
      }
    }
  }

  EstimateRequest normalized = request;
  normalized.allocators = allocators;
  normalized.estimators = estimators;

  EstimateReport report;
  report.job = request.job;
  report.entries.resize(specs.size());
  SweepCounters counters;

  run_fanned(specs.size(), [this, &normalized, &specs, &report,
                            &counters](std::size_t i) {
    report.entries[i] = run_entry(normalized, specs[i], counters);
  });

  report.profiles_run = counters.profiles_run.load();
  report.profile_cache_hits = counters.profile_cache_hits.load();
  report.replays_run = counters.replays_run.load();
  report.result_cache_hits = counters.result_cache_hits.load();
  report.wall_seconds = seconds_since(sweep_start);
  return report;
}

PlanReport EstimationService::plan(const PlanRequest& request) {
  const auto plan_start = std::chrono::steady_clock::now();

  if (request.devices.empty()) {
    throw std::invalid_argument("plan: request has no devices");
  }
  if (!models::is_known_model(request.job.model_name)) {
    throw std::invalid_argument("plan: unknown model '" +
                                request.job.model_name + "'");
  }
  if (!alloc::is_known_backend(request.allocator)) {
    throw std::invalid_argument("plan: unknown allocator '" +
                                request.allocator + "'");
  }
  validate_allocator_config(request.allocator_config, "plan");

  PlanReport report;
  report.job = request.job;
  report.devices = request.devices;
  SweepCounters counters;

  // Single-device baseline: one simulator replay per candidate device, all
  // sharing the session's profile (the first one to arrive pays for it;
  // in-flight dedup keeps concurrent entries from profiling twice).
  EstimateRequest baseline;
  baseline.job = request.job;
  baseline.devices = request.devices;
  baseline.allocators = {request.allocator};
  baseline.estimators = {"xMem"};
  baseline.allocator_config = request.allocator_config;
  baseline.profile_iterations = request.profile_iterations;
  baseline.tenant = request.tenant;
  std::vector<EntrySpec> specs;
  for (std::size_t d = 0; d < request.devices.size(); ++d) {
    specs.push_back(EntrySpec{"xMem", d, request.allocator, true});
  }
  report.single_device_entries.resize(specs.size());

  run_fanned(specs.size(), [&](std::size_t i) {
    report.single_device_entries[i] = run_entry(baseline, specs[i], counters);
  });

  // The per-layer attribution the whole candidate grid shares: by now the
  // profile is resident (or in the degenerate all-results-cached case this
  // lookup is the one that runs it), so the search costs ONE profile total.
  const ProfileSession::Lookup lookup = session_->get(
      profile_key_for(request.job, estimator_orchestrates("xMem"),
                      request.profile_iterations),
      request.tenant);
  if (lookup.cache_hit) {
    counters.profile_cache_hits.fetch_add(1);
  } else {
    counters.profiles_run.fetch_add(1);
  }
  const std::vector<ComponentProfile> profiles =
      per_component_profile(lookup.artifacts->analysis.timeline);

  DistributedPlanner planner;
  report.single_device_peak = planner.single_device_peak(profiles);

  const std::vector<Decomposition> decompositions =
      DistributedPlanner::enumerate_decompositions(
          request.max_gpus, static_cast<int>(profiles.size()));
  report.candidates_evaluated = decompositions.size();
  report.candidates.resize(decompositions.size());

  run_fanned(decompositions.size(), [&](std::size_t i) {
    HybridOptions options;
    options.data_parallel = decompositions[i].data_parallel;
    options.tensor_parallel = decompositions[i].tensor_parallel;
    options.pipeline_stages = decompositions[i].pipeline_stages;
    options.micro_batches = request.micro_batches;
    options.schedule = request.schedule;
    options.virtual_stages = request.virtual_stages;
    options.zero = request.zero;
    options.ddp_bucket_bytes = request.ddp_bucket_bytes;
    options.ddp_bucket_count = request.ddp_bucket_count;
    options.tensor.activation_replication_pct =
        request.activation_replication_pct;
    PlanCandidate candidate;
    candidate.plan = planner.plan_hybrid(profiles, options);
    if (report.single_device_peak > 0) {
      candidate.savings_pct = static_cast<int>(
          100 * (report.single_device_peak - candidate.plan.per_rank_peak) /
          report.single_device_peak);
    }
    candidate.splitting_helps =
        candidate.plan.per_rank_peak < report.single_device_peak;
    candidate.device_fits.reserve(request.devices.size());
    for (const gpu::DeviceModel& device : request.devices) {
      const bool fits = candidate.plan.per_rank_peak <= device.job_budget();
      candidate.device_fits.push_back(fits);
      if (fits) ++candidate.fits_count;
    }
    report.candidates[i] = std::move(candidate);
  });

  // Rank best-first: fit the most candidate devices with the fewest GPUs
  // and the lowest per-rank peak; (d, t, p) breaks remaining ties so the
  // order is total and thread-count independent.
  std::sort(report.candidates.begin(), report.candidates.end(),
            [](const PlanCandidate& a, const PlanCandidate& b) {
              if (a.fits_count != b.fits_count)
                return a.fits_count > b.fits_count;
              if (a.plan.gpus != b.plan.gpus) return a.plan.gpus < b.plan.gpus;
              if (a.plan.per_rank_peak != b.plan.per_rank_peak)
                return a.plan.per_rank_peak < b.plan.per_rank_peak;
              if (a.plan.data_parallel != b.plan.data_parallel)
                return a.plan.data_parallel < b.plan.data_parallel;
              if (a.plan.tensor_parallel != b.plan.tensor_parallel)
                return a.plan.tensor_parallel < b.plan.tensor_parallel;
              return a.plan.pipeline_stages < b.plan.pipeline_stages;
            });
  if (request.max_candidates > 0 &&
      report.candidates.size() > request.max_candidates) {
    report.candidates.resize(request.max_candidates);
  }

  // Phase 2: replay the top-K survivors (or, under refine_all, every
  // ranked decomposition) through the allocator tower. The transformer
  // binds the ONE cached orchestrated sequence; each worker owns its
  // scratch, so the fan-out is deterministic and the buffers amortize
  // across a candidate's ranks.
  //
  // Symmetric-rank collapse: a candidate's replayed peaks cover all d*t*p
  // deployment ranks, but the transform has no DP/TP rank index — the d*t
  // siblings of a pipeline stage replay byte-identical sequences — so only
  // the p stage sequences are ever simulated and the stage verdict is
  // fanned across its siblings exactly. Cross-candidate memoization then
  // prices repeated sequences (fingerprint + full-compare guard in the
  // ReplayScratch result cache) at a lookup instead of a simulation.
  // request.dedup_replays = false replays every deployment rank one by one
  // — the naive baseline — and must yield a byte-identical report.
  //
  // Clamp before the size_t cast: a negative refine_top_k reaching here
  // through the C++ API (the JSON path rejects it) means "disabled", not
  // "refine everything" via wraparound.
  const std::size_t refine_count =
      request.refine_all
          ? report.candidates.size()
          : std::min<std::size_t>(
                static_cast<std::size_t>(std::max(request.refine_top_k, 0)),
                report.candidates.size());
  if (refine_count > 0) {
    const SequenceTransformer transformer(
        lookup.artifacts->orchestration.sequence, profiles);
    // Per-candidate stage fingerprints, slot-indexed so the fan-out records
    // them race-free; the counter post-pass below reads them in candidate
    // order on the calling thread.
    struct RefineTrace {
      std::vector<std::uint64_t> resident_fps;  ///< comm_overlap baseline
      std::vector<std::uint64_t> replay_fps;    ///< the ranking replays
      std::size_t symmetric = 1;                ///< d*t siblings per stage
    };
    std::vector<RefineTrace> traces(refine_count);
    run_fanned(refine_count, [&](std::size_t i) {
      PlanCandidate& candidate = report.candidates[i];
      RankTransformOptions transform;
      transform.data_parallel = candidate.plan.data_parallel;
      transform.tensor_parallel = candidate.plan.tensor_parallel;
      transform.micro_batches = request.micro_batches;
      transform.zero = request.zero;
      transform.ddp_bucket_bytes = request.ddp_bucket_bytes;
      transform.ddp_bucket_count = request.ddp_bucket_count;
      transform.tensor.activation_replication_pct =
          request.activation_replication_pct;
      transform.materialize_blocks = false;  // events are all the replay needs

      const std::size_t stages =
          std::max<std::size_t>(candidate.plan.rank_peaks.size(), 1);
      const std::size_t symmetric = static_cast<std::size_t>(
          std::max(1, candidate.plan.data_parallel) *
          std::max(1, candidate.plan.tensor_parallel));
      const std::size_t ranks = stages * symmetric;  // deployment ranks
      RefineTrace& trace = traces[i];
      trace.symmetric = symmetric;
      trace.replay_fps.resize(stages);
      MemorySimulator simulator;
      SimulationOptions sim_options;
      sim_options.backend = request.allocator;
      sim_options.backend_knobs =
          knobs_for(request.allocator_config, request.allocator);
      // Worker-thread-lifetime scratch: every candidate this thread picks
      // up reuses the transform buffers AND the allocator tower, which is
      // reset — not rebuilt — between replays. The backend_reset() contract
      // (fw/backend.h) makes each replay byte-identical to a fresh-tower
      // replay, and a memo-cache hit returns exactly what that replay
      // would, so the report stays deterministic regardless of how
      // candidates land on threads or what the cache happens to hold.
      thread_local RankScratch scratch;
      thread_local ReplayScratch replay_scratch;
      const auto stage_peak = [&](const OrchestratedSequence& sequence,
                                  std::uint64_t fingerprint) {
        if (request.dedup_replays) {
          return simulator.replay_peak_memoized(sequence, fingerprint,
                                                sim_options, replay_scratch);
        }
        // Naive baseline: simulate each of the stage's d*t symmetric
        // deployment ranks individually. Every pass replays the identical
        // sequence through a reset tower, so the last peak == the first.
        std::int64_t peak = 0;
        for (std::size_t sibling = 0; sibling < symmetric; ++sibling) {
          peak = simulator.replay(sequence, sim_options, &replay_scratch)
                     .peak_device;
        }
        return peak;
      };
      candidate.replayed_rank_peaks.assign(ranks, 0);
      // Overlap-window mode replays every stage twice — resident first for
      // the baseline, then with schedule-tied windows — so the report can
      // state what the windows saved (window_vs_resident_pct).
      if (request.comm_overlap) {
        candidate.resident_rank_peaks.assign(ranks, 0);
        trace.resident_fps.resize(stages);
      }
      for (std::size_t s = 0; s < stages; ++s) {
        if (request.comm_overlap) {
          transform.comm_overlap = false;
          const OrchestratedSequence& resident = transformer.rank_sequence(
              transform, candidate.plan.stages, stages, s, scratch);
          const std::uint64_t fingerprint = sequence_fingerprint(resident);
          trace.resident_fps[s] = fingerprint;
          const std::int64_t peak = stage_peak(resident, fingerprint);
          for (std::size_t sibling = 0; sibling < symmetric; ++sibling) {
            candidate.resident_rank_peaks[s * symmetric + sibling] = peak;
          }
          transform.comm_overlap = true;
        }
        const OrchestratedSequence& sequence = transformer.rank_sequence(
            transform, candidate.plan.stages, stages, s, scratch);
        const std::uint64_t fingerprint = sequence_fingerprint(sequence);
        trace.replay_fps[s] = fingerprint;
        const std::int64_t peak = stage_peak(sequence, fingerprint);
        for (std::size_t sibling = 0; sibling < symmetric; ++sibling) {
          candidate.replayed_rank_peaks[s * symmetric + sibling] = peak;
        }
      }
      candidate.replayed = true;
      candidate.replayed_per_rank_peak = *std::max_element(
          candidate.replayed_rank_peaks.begin(),
          candidate.replayed_rank_peaks.end());
      if (request.comm_overlap) {
        candidate.window_mode = true;
        candidate.resident_per_rank_peak = *std::max_element(
            candidate.resident_rank_peaks.begin(),
            candidate.resident_rank_peaks.end());
        if (candidate.resident_per_rank_peak > 0) {
          candidate.window_vs_resident_pct = static_cast<int>(
              100 *
              (candidate.replayed_per_rank_peak -
               candidate.resident_per_rank_peak) /
              candidate.resident_per_rank_peak);
        }
      }
      if (candidate.plan.per_rank_peak > 0) {
        candidate.analytic_vs_replayed_pct = static_cast<int>(
            100 *
            (candidate.replayed_per_rank_peak - candidate.plan.per_rank_peak) /
            candidate.plan.per_rank_peak);
      }
      candidate.replayed_device_fits.reserve(request.devices.size());
      for (const gpu::DeviceModel& device : request.devices) {
        const bool fits =
            candidate.replayed_per_rank_peak <= device.job_budget();
        candidate.replayed_device_fits.push_back(fits);
        if (fits) ++candidate.replayed_fits_count;
      }
      candidate.verdict_changed =
          candidate.replayed_device_fits != candidate.device_fits;
      counters.replayed_candidates.fetch_add(1);
    });

    // Refinement-cost counters: a deterministic post-pass over the recorded
    // fingerprints in (candidate, resident-before-window, stage) order —
    // the schedule the dedup machinery executes, independent of thread
    // interleaving and of whether dedup actually ran (dedup_replays =
    // false pays the naive cost but reports the same schedule). Each stage
    // stands for its d*t symmetric deployment ranks: the first sighting of
    // a fingerprint is one real replay (rank_replays) and m-1 collapsed
    // siblings; a repeat within the candidate collapses all m onto the
    // earlier verdict; a repeat across candidates/modes is a memo-cache
    // lookup (replay_cache_hits) plus m-1 collapsed siblings.
    {
      std::unordered_set<std::uint64_t> seen;
      std::unordered_set<std::uint64_t> candidate_seen;
      for (std::size_t i = 0; i < refine_count; ++i) {
        const RefineTrace& trace = traces[i];
        candidate_seen.clear();
        const auto account = [&](std::uint64_t fingerprint) {
          if (!candidate_seen.insert(fingerprint).second) {
            report.replays_deduped += trace.symmetric;
            return;
          }
          if (seen.insert(fingerprint).second) {
            ++report.rank_replays_run;
          } else {
            ++report.replay_cache_hits;
          }
          report.replays_deduped += trace.symmetric - 1;
        };
        for (const std::uint64_t fp : trace.resident_fps) account(fp);
        for (const std::uint64_t fp : trace.replay_fps) account(fp);
      }
    }

    // Overlap-window mode: the replayed peaks are the ranking, not an
    // annotation. Re-sort the refined prefix by the window-replayed
    // verdicts (same tie chain as phase 1, replayed fields substituted);
    // the unrefined tail keeps its analytic order behind it. Runs on the
    // calling thread after the fan-out barrier, so serial and threaded
    // searches stay byte-identical.
    if (request.comm_overlap) {
      const auto key_of = [](const PlanCandidate& c) {
        return std::make_tuple(c.plan.data_parallel, c.plan.tensor_parallel,
                               c.plan.pipeline_stages);
      };
      std::vector<std::tuple<int, int, int>> before;
      before.reserve(refine_count);
      for (std::size_t i = 0; i < refine_count; ++i) {
        before.push_back(key_of(report.candidates[i]));
      }
      std::sort(report.candidates.begin(),
                report.candidates.begin() +
                    static_cast<std::ptrdiff_t>(refine_count),
                [](const PlanCandidate& a, const PlanCandidate& b) {
                  if (a.replayed_fits_count != b.replayed_fits_count)
                    return a.replayed_fits_count > b.replayed_fits_count;
                  if (a.plan.gpus != b.plan.gpus)
                    return a.plan.gpus < b.plan.gpus;
                  if (a.replayed_per_rank_peak != b.replayed_per_rank_peak)
                    return a.replayed_per_rank_peak < b.replayed_per_rank_peak;
                  if (a.plan.data_parallel != b.plan.data_parallel)
                    return a.plan.data_parallel < b.plan.data_parallel;
                  if (a.plan.tensor_parallel != b.plan.tensor_parallel)
                    return a.plan.tensor_parallel < b.plan.tensor_parallel;
                  return a.plan.pipeline_stages < b.plan.pipeline_stages;
                });
      for (std::size_t i = 0; i < refine_count; ++i) {
        if (key_of(report.candidates[i]) != before[i]) ++report.rerank_changed;
      }
    }
  }
  report.comm_overlap = request.comm_overlap;

  report.replayed_candidates = counters.replayed_candidates.load();
  report.profiles_run = counters.profiles_run.load();
  report.profile_cache_hits = counters.profile_cache_hits.load();
  report.replays_run = counters.replays_run.load();
  report.result_cache_hits = counters.result_cache_hits.load();
  report.wall_seconds = seconds_since(plan_start);
  return report;
}

EstimateEntry EstimationService::estimate(const std::string& estimator_name,
                                          const TrainJob& job,
                                          const gpu::DeviceModel& device,
                                          const std::string& allocator,
                                          int profile_iterations,
                                          bool record_curve) {
  EstimateRequest request;
  request.job = job;
  request.devices = {device};
  request.allocators = {allocator};
  request.estimators = {estimator_name};
  request.profile_iterations = profile_iterations;
  request.record_curve = record_curve;

  if (!is_known_estimator(estimator_name)) {
    throw std::invalid_argument("estimate: unknown estimator '" +
                                estimator_name + "'");
  }
  const bool session_backed = estimator_uses_session(estimator_name);
  EntrySpec spec{estimator_name, 0, session_backed ? allocator : std::string(),
                 session_backed};
  SweepCounters counters;
  return run_entry(request, spec, counters);
}

}  // namespace xmem::core
