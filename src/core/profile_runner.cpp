#include "core/profile_runner.h"

#include "fw/executor.h"
#include "fw/memory_env.h"
#include "fw/profiler.h"
#include "util/sim_clock.h"

namespace xmem::core {

trace::Trace profile_on_cpu(const fw::ModelDescriptor& model,
                            fw::OptimizerKind optimizer,
                            const ProfileOptions& options) {
  trace::Trace trace;
  trace.model_name = model.name;
  trace.optimizer_name = to_string(optimizer);
  trace.batch_size = model.batch_size;
  trace.iterations = options.iterations;
  trace.backend = "cpu";

  util::SimClock clock;
  fw::Profiler profiler(clock, trace);
  fw::CpuMemoryEnv env(profiler);

  fw::ExecOptions exec_options;
  exec_options.iterations = options.iterations;
  exec_options.placement = options.placement;
  exec_options.seed = options.seed;

  fw::TrainingExecutor executor(model, optimizer, fw::Backend::kCpu, env,
                                clock, &profiler, exec_options);
  executor.run();
  return trace;
}

}  // namespace xmem::core
