// Common interface implemented by xMem and the three baselines, so the
// evaluation harness treats all estimators uniformly (§4.1.1).
#pragma once

#include <cstdint>
#include <string>

#include "fw/types.h"
#include "gpu/device_model.h"

namespace xmem::core {

/// One test configuration "j": model, optimizer, batch size, zero_grad
/// placement (§4.1.4). `seed` selects the run's jitter stream.
struct TrainJob {
  std::string model_name;
  int batch_size = 0;
  fw::OptimizerKind optimizer = fw::OptimizerKind::kSgd;
  fw::ZeroGradPlacement placement = fw::ZeroGradPlacement::kPos1IterStart;
  std::uint64_t seed = 1;

  std::string label() const {
    return model_name + "/" + to_string(optimizer) + "/b" +
           std::to_string(batch_size) + "/" + to_string(placement);
  }
};

struct EstimateResult {
  bool supported = true;  ///< false: estimator cannot handle this job class
  /// Predicted peak job memory (bytes, excluding M_init and M_fm).
  std::int64_t estimated_peak = 0;
  /// Eq. 1: whether the job is predicted not to fit the target device.
  bool oom_predicted = false;
  /// Wall-clock cost of producing this estimate (RQ4).
  double runtime_seconds = 0.0;
};

class Estimator {
 public:
  virtual ~Estimator() = default;
  virtual std::string name() const = 0;
  /// Whether this estimator supports the job at all (LLMem: CausalLM only).
  virtual bool supports(const TrainJob& job) const {
    (void)job;
    return true;
  }
  virtual EstimateResult estimate(const TrainJob& job,
                                  const gpu::DeviceModel& device) = 0;
};

}  // namespace xmem::core
