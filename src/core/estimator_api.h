// Common interface implemented by xMem and the three baselines, so the
// evaluation harness treats all estimators uniformly (§4.1.1).
//
// `estimate()` is a non-virtual template method: it gates on `supports()`
// and measures `runtime_seconds` with one steady-clock wrapper, so RQ4
// timings are comparable across backends and an unsupported job can never
// produce a bogus peak. Implementations override `compute()` and must not
// time themselves or re-check support. `compute()` must be re-entrant: the
// EstimationService (core/estimation_service.h) calls one instance from
// several threads during a sweep.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "fw/types.h"
#include "gpu/device_model.h"

namespace xmem::core {

/// One test configuration "j": model, optimizer, batch size, zero_grad
/// placement (§4.1.4). `seed` selects the run's jitter stream.
struct TrainJob {
  std::string model_name;
  int batch_size = 0;
  fw::OptimizerKind optimizer = fw::OptimizerKind::kSgd;
  fw::ZeroGradPlacement placement = fw::ZeroGradPlacement::kPos1IterStart;
  std::uint64_t seed = 1;

  std::string label() const {
    return model_name + "/" + to_string(optimizer) + "/b" +
           std::to_string(batch_size) + "/" + to_string(placement);
  }
};

struct EstimateResult {
  bool supported = true;  ///< false: estimator cannot handle this job class
  /// Predicted peak job memory (bytes, excluding M_init and M_fm).
  std::int64_t estimated_peak = 0;
  /// Eq. 1: whether the job is predicted not to fit the target device.
  bool oom_predicted = false;
  /// Wall-clock cost of producing this estimate (RQ4). Filled by the
  /// `estimate()` wrapper, never by `compute()` implementations.
  double runtime_seconds = 0.0;
};

class Estimator {
 public:
  virtual ~Estimator() = default;
  virtual std::string name() const = 0;
  /// Whether this estimator supports the job at all (LLMem: CausalLM only).
  virtual bool supports(const TrainJob& job) const {
    (void)job;
    return true;
  }

  /// Produce an estimate. Non-virtual on purpose: every estimator goes
  /// through the same supports() gate and the same clock.
  EstimateResult estimate(const TrainJob& job, const gpu::DeviceModel& device) {
    const auto wall_start = std::chrono::steady_clock::now();
    EstimateResult result;
    if (supports(job)) {
      result = compute(job, device);
    } else {
      result.supported = false;
    }
    result.runtime_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    return result;
  }

 protected:
  /// The estimator-specific work. Only called for supported jobs.
  virtual EstimateResult compute(const TrainJob& job,
                                 const gpu::DeviceModel& device) = 0;
};

}  // namespace xmem::core
