// Rank-sequence transform layer (paper §3.4 applied to §6.2 planning).
//
// The paper's accuracy claim rests on replaying the orchestrated event
// sequence through the real allocator tower — fragmentation, round-up, and
// caching are sequence-dependent, so analytic per-component sums (the
// DNNMem style) diverge from device truth. The DistributedPlanner's hybrid
// search, however, ranks (d, t, p) candidates by exactly that analytic
// arithmetic. This layer closes the gap: pure, composable transforms that
// take the single-device OrchestratedSequence plus one plan candidate and
// emit the event sequence ONE RANK of that deployment would replay, so the
// simulator (and any registry backend) can price the candidate with full
// allocator semantics and no new concepts.
//
// Transform semantics, applied per block in this order:
//   1. Tensor parallelism — components matching the replicated substrings
//      (Norm/Embedding, the Megatron convention) keep their bytes whole;
//      divisible components ceil-divide params/optimizer/gradients by t and
//      split forward bytes by the activation-replication model (the same
//      model as DistributedPlanner::shard_tensor_parallel, applied
//      per block instead of per component).
//   2. Data parallelism — forward/dataloader bytes shard with the batch
//      (ceil(x/d)); ZeRO shards the persistent classes: stage 1 divides
//      optimizer-step bytes, stage 2 adds backward (gradient) bytes,
//      stage 3 adds model-load (parameter) bytes.
//   3. Pipeline slicing — each block belongs to the contiguous stage chunk
//      that owns its component (unattributed blocks — batch data, script
//      temporaries — ride on chunk 0, where the input pipeline lives);
//      rank r of p owns chunks r, r+p, r+2p, … (interleaved schedule).
//      Forward bytes scale by in_flight/micro_batches where in_flight =
//      min(total_chunks - chunk, micro_batches), mirroring the 1F1B
//      in-flight accounting of the analytic stage model.
//   4. Collective-communication buffers — injected as ordinary
//      alloc events (free_ts = -1: resident through the peak window, the
//      same accounting the analytic model applies), so the simulator needs
//      no new concepts: `ddp_bucket_count` DDP gradient buckets from the
//      first backward block (d > 1), one all-reduce staging buffer sized
//      like the largest sharded forward block from the first forward block
//      (t > 1), and one parameter all-gather staging buffer sized like the
//      largest TP-sharded (but un-DP-sharded) parameter block (ZeRO-3,
//      d > 1). This generalizes the previously hard-coded "2 x 25 MiB DDP
//      buckets" constant.
//
// Everything is deterministic integer arithmetic over an immutable base
// sequence: a SequenceTransformer is built once per plan search and shared
// const across the thread-pool fan-out; each worker passes its own
// RankScratch, whose buffers are reused across candidates (the §6.1
// batching/caching pass — measured by BM_RankReplay in bench/).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/distributed_planner.h"
#include "core/orchestrator.h"

namespace xmem::core {

/// How one rank of a (d, t, p) candidate reshapes the base sequence.
/// Pipeline geometry arrives separately (the chunk partition + rank).
struct RankTransformOptions {
  int data_parallel = 1;
  int tensor_parallel = 1;
  /// 1F1B micro-batch count; forward bytes scale by in_flight/micro_batches.
  int micro_batches = 1;
  ZeroStage zero = ZeroStage::kNone;
  std::int64_t ddp_bucket_bytes = std::int64_t{25} * 1024 * 1024;
  /// In-flight DDP gradient buckets (reduce + staging). 2 is the classic
  /// PyTorch overlap depth the planner used to hard-code.
  int ddp_bucket_count = 2;
  /// Replicated-component + activation-replication model (`ways` ignored;
  /// taken from tensor_parallel).
  TensorParallelOptions tensor;
  /// Inject the collective-communication buffer events of step 4. Property
  /// tests disable this to check byte conservation of the pure transforms.
  bool inject_collectives = true;
  /// Also materialize the per-rank MemoryBlock vector (component names and
  /// all). The simulator only consumes events; the service disables this on
  /// the hot path so the transform stays string-copy free.
  bool materialize_blocks = true;
};

/// One injected collective-communication staging buffer (also recorded in
/// the scratch so tests and reports can see what was added).
struct CollectiveBuffer {
  std::string kind;  ///< "ddp_bucket" | "tp_allreduce" | "zero3_allgather"
  std::int64_t bytes = 0;
  util::TimeUs alloc_ts = 0;
  std::int64_t block_id = 0;
};

/// Reusable per-worker output storage. Vectors keep their capacity across
/// candidates, so a refine loop allocates O(1) after the first rank.
struct RankScratch {
  OrchestratedSequence sequence;
  std::vector<CollectiveBuffer> buffers;
  /// Transform-internal working sets, kept here so they reuse capacity too.
  std::vector<std::size_t> chunk_of;
  std::vector<char> replicated;
};

class SequenceTransformer {
 public:
  /// Bind the base single-device sequence and the component order of its
  /// per-component profile (forward order — the same vector the planner
  /// packed stages over). Both must outlive the transformer. Construction
  /// indexes every block's component once; transforms never rescan strings.
  SequenceTransformer(const OrchestratedSequence& base,
                      const std::vector<ComponentProfile>& profiles);

  /// Emit the sequence pipeline rank `rank` (0-based, of `pipeline_ranks`)
  /// replays under `options` and the contiguous chunk partition `chunks`
  /// (a candidate's `plan.stages`; empty = one chunk holding everything).
  /// Builds into `scratch` and returns `scratch.sequence`. Thread-safe:
  /// const on the transformer, all mutation confined to the scratch.
  const OrchestratedSequence& rank_sequence(
      const RankTransformOptions& options,
      const std::vector<PipelineStage>& chunks, std::size_t pipeline_ranks,
      std::size_t rank, RankScratch& scratch) const;

  std::size_t component_count() const { return component_names_.size(); }
  const OrchestratedSequence& base() const { return base_; }

 private:
  const OrchestratedSequence& base_;
  std::vector<std::string> component_names_;  ///< profile forward order
  /// Per base block: index into component_names_, or -1 (unattributed).
  std::vector<std::int32_t> block_component_;
  std::int64_t next_buffer_id_ = 0;  ///< first id free for injected buffers
};

}  // namespace xmem::core
