// Rank-sequence transform layer (paper §3.4 applied to §6.2 planning).
//
// The paper's accuracy claim rests on replaying the orchestrated event
// sequence through the real allocator tower — fragmentation, round-up, and
// caching are sequence-dependent, so analytic per-component sums (the
// DNNMem style) diverge from device truth. The DistributedPlanner's hybrid
// search, however, ranks (d, t, p) candidates by exactly that analytic
// arithmetic. This layer closes the gap: pure, composable transforms that
// take the single-device OrchestratedSequence plus one plan candidate and
// emit the event sequence ONE RANK of that deployment would replay, so the
// simulator (and any registry backend) can price the candidate with full
// allocator semantics and no new concepts.
//
// Transform semantics, applied per block in this order:
//   1. Tensor parallelism — components matching the replicated substrings
//      (Norm/Embedding, the Megatron convention) keep their bytes whole;
//      divisible components ceil-divide params/optimizer/gradients by t and
//      split forward bytes by the activation-replication model (the same
//      model as DistributedPlanner::shard_tensor_parallel, applied
//      per block instead of per component).
//   2. Data parallelism — forward/dataloader bytes shard with the batch
//      (ceil(x/d)); ZeRO shards the persistent classes: stage 1 divides
//      optimizer-step bytes, stage 2 adds backward (gradient) bytes,
//      stage 3 adds model-load (parameter) bytes.
//   3. Pipeline slicing — each block belongs to the contiguous stage chunk
//      that owns its component (unattributed blocks — batch data, script
//      temporaries — ride on chunk 0, where the input pipeline lives);
//      rank r of p owns chunks r, r+p, r+2p, … (interleaved schedule).
//      Forward bytes scale by in_flight/micro_batches where in_flight =
//      min(total_chunks - chunk, micro_batches), mirroring the 1F1B
//      in-flight accounting of the analytic stage model.
//   4. Collective-communication buffers — injected as ordinary alloc/free
//      events, so the simulator needs no new concepts. Two fidelity modes:
//
//      Resident (comm_overlap = false, the default — byte-identical to the
//      original behavior): every buffer is a resident alloc (free_ts = -1,
//      the same accounting the analytic model applies): `ddp_bucket_count`
//      DDP gradient buckets from the first backward block (d > 1), one
//      all-reduce staging buffer sized like the largest sharded forward
//      block from the first forward block (t > 1) — a deliberately coarse
//      formula that also counts replicated (never-synchronized) blocks,
//      kept for golden stability — and one parameter all-gather staging
//      buffer sized like the largest TP-sharded (but un-DP-sharded)
//      parameter block (ZeRO-3, d > 1). This generalizes the previously
//      hard-coded "2 x 25 MiB DDP buckets" constant.
//
//      Overlap windows (comm_overlap = true): buffers are schedule-tied,
//      with paired alloc/free events instead of resident allocs:
//        - DDP buckets partition the rank's backward (gradient) payload in
//          execution order; a bucket is born when its owning slice of
//          backward blocks completes (one bucket per distinct completion
//          timestamp, capped at `ddp_bucket_bytes`) and dies when its
//          all-reduce drains — modelled as the birth of the bucket
//          `ddp_bucket_count` positions later (the classic overlap depth),
//          with the trailing buckets released at the optimizer step. At
//          most `ddp_bucket_count` buckets are live at any event index,
//          never earlier than the resident mode's first-backward anchor.
//        - TP all-reduce staging is sized from the actual synchronized
//          blocks (the largest TP-sharded forward block; replicated
//          components never all-reduce, so they no longer inflate it) and
//          lives only across the span those blocks cover.
//        - ZeRO-3 parameter all-gathers are paired gather/release events
//          around each component's forward window and again around its
//          backward window (the re-gather), sized by the component's
//          largest TP-sharded (un-DP-sharded) parameter block. Windows are
//          serialized — a new gather releases the previous one (prefetch
//          depth 1) — so at most one gather is live at a time.
//      Every window-mode buffer is bounded by its resident counterpart in
//      both size and lifetime, so window-mode live collective bytes never
//      exceed resident-mode at any event index (asserted per event in
//      tests/comm_overlap_test.cpp).
//
// Everything is deterministic integer arithmetic over an immutable base
// sequence: a SequenceTransformer is built once per plan search and shared
// const across the thread-pool fan-out; each worker passes its own
// RankScratch, whose buffers are reused across candidates (the §6.1
// batching/caching pass — measured by BM_RankReplay in bench/).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/distributed_planner.h"
#include "core/orchestrator.h"

namespace xmem::core {

/// Canonical fingerprint of a transformed event sequence: FNV-1a 64 over
/// every event's (ts, block_id, bytes, is_alloc) in sequence order. Two
/// ranks with equal fingerprints replay identically (the simulator consumes
/// events only), so the planner's refine pass collapses symmetric ranks and
/// memoizes replay verdicts on it — always behind a full event-vector
/// compare, so a colliding pair degrades to a fresh replay, never a wrong
/// verdict (tests/sequence_transform_test.cpp pins the property).
std::uint64_t sequence_fingerprint(const OrchestratedSequence& sequence);

/// How one rank of a (d, t, p) candidate reshapes the base sequence.
/// Pipeline geometry arrives separately (the chunk partition + rank).
struct RankTransformOptions {
  int data_parallel = 1;
  int tensor_parallel = 1;
  /// 1F1B micro-batch count; forward bytes scale by in_flight/micro_batches.
  int micro_batches = 1;
  ZeroStage zero = ZeroStage::kNone;
  std::int64_t ddp_bucket_bytes = std::int64_t{25} * 1024 * 1024;
  /// In-flight DDP gradient buckets (reduce + staging). 2 is the classic
  /// PyTorch overlap depth the planner used to hard-code.
  int ddp_bucket_count = 2;
  /// Replicated-component + activation-replication model (`ways` ignored;
  /// taken from tensor_parallel).
  TensorParallelOptions tensor;
  /// Inject the collective-communication buffer events of step 4. Property
  /// tests disable this to check byte conservation of the pure transforms.
  bool inject_collectives = true;
  /// Emit collectives as schedule-tied overlap windows (paired alloc/free
  /// events) instead of resident buffers. Off by default: the resident
  /// path stays byte-identical to the pre-window behavior.
  bool comm_overlap = false;
  /// Also materialize the per-rank MemoryBlock vector (component names and
  /// all). The simulator only consumes events; the service disables this on
  /// the hot path so the transform stays string-copy free.
  bool materialize_blocks = true;
};

/// One injected collective-communication staging buffer (also recorded in
/// the scratch so tests and reports can see what was added).
struct CollectiveBuffer {
  std::string kind;  ///< "ddp_bucket" | "tp_allreduce" | "zero3_allgather"
  std::int64_t bytes = 0;
  util::TimeUs alloc_ts = 0;
  /// Release timestamp in overlap-window mode; -1 = resident (every
  /// resident-mode buffer, plus the rare window that never closes, e.g. TP
  /// staging spanning a persistent forward block).
  util::TimeUs free_ts = -1;
  std::int64_t block_id = 0;
};

/// Reusable per-worker output storage. Vectors keep their capacity across
/// candidates, so a refine loop allocates O(1) after the first rank.
struct RankScratch {
  OrchestratedSequence sequence;
  std::vector<CollectiveBuffer> buffers;
  /// Transform-internal working sets, kept here so they reuse capacity too.
  std::vector<std::size_t> chunk_of;
  std::vector<char> replicated;
  /// Overlap-window working sets (only touched when comm_overlap is set).
  /// grad_marks: per-timestamp backward payload, merged and bucketed into
  /// DDP windows. The per-component vectors anchor the ZeRO-3 gather
  /// windows; the trailing slot holds unattributed blocks.
  std::vector<std::pair<util::TimeUs, std::int64_t>> grad_marks;
  std::vector<std::pair<util::TimeUs, std::int64_t>> bucket_births;
  std::vector<std::int64_t> comp_param;
  std::vector<util::TimeUs> fwd_start, fwd_end, bwd_start, bwd_end;
  struct GatherWindow {
    util::TimeUs start = 0;
    util::TimeUs end = 0;
    std::int64_t bytes = 0;
  };
  std::vector<GatherWindow> gathers;
};

class SequenceTransformer {
 public:
  /// Bind the base single-device sequence and the component order of its
  /// per-component profile (forward order — the same vector the planner
  /// packed stages over). Both must outlive the transformer. Construction
  /// indexes every block's component once; transforms never rescan strings.
  SequenceTransformer(const OrchestratedSequence& base,
                      const std::vector<ComponentProfile>& profiles);

  /// Emit the sequence pipeline rank `rank` (0-based, of `pipeline_ranks`)
  /// replays under `options` and the contiguous chunk partition `chunks`
  /// (a candidate's `plan.stages`; empty = one chunk holding everything).
  /// Builds into `scratch` and returns `scratch.sequence`. Thread-safe:
  /// const on the transformer, all mutation confined to the scratch.
  const OrchestratedSequence& rank_sequence(
      const RankTransformOptions& options,
      const std::vector<PipelineStage>& chunks, std::size_t pipeline_ranks,
      std::size_t rank, RankScratch& scratch) const;

  std::size_t component_count() const { return component_names_.size(); }
  const OrchestratedSequence& base() const { return base_; }

 private:
  const OrchestratedSequence& base_;
  std::vector<std::string> component_names_;  ///< profile forward order
  /// Per base block: index into component_names_, or -1 (unattributed).
  std::vector<std::int32_t> block_component_;
  std::int64_t next_buffer_id_ = 0;  ///< first id free for injected buffers
};

}  // namespace xmem::core
