#include "core/sequence_transform.h"

#include <algorithm>
#include <map>

namespace xmem::core {

std::uint64_t sequence_fingerprint(const OrchestratedSequence& sequence) {
  std::uint64_t hash = 1469598103934665603ULL;  // FNV-1a 64 offset basis
  const auto mix = [&hash](std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (byte * 8)) & 0xffULL;
      hash *= 1099511628211ULL;  // FNV-1a 64 prime
    }
  };
  mix(static_cast<std::uint64_t>(sequence.events.size()));
  for (const OrchestratedEvent& event : sequence.events) {
    mix(static_cast<std::uint64_t>(event.ts));
    mix(static_cast<std::uint64_t>(event.block_id));
    mix(static_cast<std::uint64_t>(event.bytes));
    mix(event.is_alloc ? 1u : 0u);
  }
  return hash;
}

SequenceTransformer::SequenceTransformer(
    const OrchestratedSequence& base,
    const std::vector<ComponentProfile>& profiles)
    : base_(base) {
  component_names_.reserve(profiles.size());
  std::map<std::string, std::int32_t> index_of;
  for (const ComponentProfile& profile : profiles) {
    index_of.emplace(profile.component,
                     static_cast<std::int32_t>(component_names_.size()));
    component_names_.push_back(profile.component);
  }
  block_component_.reserve(base.blocks.size());
  for (const MemoryBlock& block : base.blocks) {
    const auto it = index_of.find(block.component);
    block_component_.push_back(it == index_of.end() ? -1 : it->second);
    next_buffer_id_ = std::max(next_buffer_id_, block.id + 1);
  }
}

const OrchestratedSequence& SequenceTransformer::rank_sequence(
    const RankTransformOptions& options,
    const std::vector<PipelineStage>& chunks, std::size_t pipeline_ranks,
    std::size_t rank, RankScratch& scratch) const {
  OrchestratedSequence& out = scratch.sequence;
  out.blocks.clear();
  out.events.clear();
  scratch.buffers.clear();
  out.events.reserve(base_.events.size());
  if (options.materialize_blocks) out.blocks.reserve(base_.blocks.size());

  const std::int64_t t = std::max(1, options.tensor_parallel);
  const std::int64_t d = std::max(1, options.data_parallel);
  const int micro_batches = std::max(1, options.micro_batches);

  // Component -> chunk map from the contiguous partition; everything in one
  // chunk when no partition was supplied.
  const std::size_t total_chunks = std::max<std::size_t>(chunks.size(), 1);
  const std::size_t ranks =
      std::min(std::max<std::size_t>(pipeline_ranks, 1), total_chunks);
  std::vector<std::size_t>& chunk_of = scratch.chunk_of;
  chunk_of.assign(component_names_.size(), 0);
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    for (std::size_t i = chunks[c].first_component;
         i <= chunks[c].last_component && i < chunk_of.size(); ++i) {
      chunk_of[i] = c;
    }
  }

  // Per-component TP replication flag, resolved once per call instead of
  // per block (the substring scan is the only string work in the loop).
  std::vector<char>& replicated = scratch.replicated;
  replicated.assign(component_names_.size(), 0);
  if (t > 1) {
    for (std::size_t i = 0; i < component_names_.size(); ++i) {
      for (const std::string& marker : options.tensor.replicated_substrings) {
        if (component_names_[i].find(marker) != std::string::npos) {
          replicated[i] = 1;
          break;
        }
      }
    }
  }
  const int replication_pct =
      std::clamp(options.tensor.activation_replication_pct, 0, 100);

  // Collective-buffer anchors, discovered while slicing.
  util::TimeUs first_ts = -1;
  util::TimeUs first_forward_ts = -1;
  util::TimeUs first_backward_ts = -1;
  std::int64_t max_forward_bytes = 0;   ///< post-shard (all-reduce payload)
  std::int64_t max_param_gather = 0;    ///< TP-sharded, un-DP-sharded params

  // Overlap-window anchors (window mode only). Per-component vectors carry
  // one trailing slot for unattributed blocks.
  const bool windows = options.inject_collectives && options.comm_overlap;
  const std::size_t comp_slots = component_names_.size() + 1;
  util::TimeUs optimizer_start_ts = -1;
  util::TimeUs first_sync_ts = -1;
  util::TimeUs last_sync_end = -1;
  bool sync_persistent = false;
  std::int64_t max_sync_bytes = 0;  ///< largest actually-synchronized block
  if (windows) {
    scratch.grad_marks.clear();
    scratch.comp_param.assign(comp_slots, 0);
    scratch.fwd_start.assign(comp_slots, -1);
    scratch.fwd_end.assign(comp_slots, -1);
    scratch.bwd_start.assign(comp_slots, -1);
    scratch.bwd_end.assign(comp_slots, -1);
  }

  for (std::size_t i = 0; i < base_.blocks.size(); ++i) {
    const MemoryBlock& block = base_.blocks[i];
    const std::int32_t component = block_component_[i];
    const std::size_t chunk = component < 0 ? 0 : chunk_of[component];
    if (chunk % ranks != rank) continue;

    // 1) Tensor parallelism.
    std::int64_t bytes = block.size;
    bool tp_synced = false;  ///< this block's output is all-reduced (t > 1)
    if (t > 1 && (component < 0 || !replicated[component])) {
      switch (block.phase) {
        case Phase::kForward: {
          const std::int64_t replicated_bytes = bytes * replication_pct / 100;
          bytes = replicated_bytes + ceil_div(bytes - replicated_bytes, t);
          tp_synced = true;
          break;
        }
        case Phase::kModelLoad:
        case Phase::kBackward:
        case Phase::kOptimizerStep:
          bytes = ceil_div(bytes, t);
          break;
        case Phase::kDataLoader:
        case Phase::kOther:
          break;  // every TP rank sees the whole batch
      }
    }
    if (block.phase == Phase::kModelLoad) {
      max_param_gather = std::max(max_param_gather, bytes);
      if (windows) {
        const std::size_t slot = component < 0
                                     ? component_names_.size()
                                     : static_cast<std::size_t>(component);
        scratch.comp_param[slot] = std::max(scratch.comp_param[slot], bytes);
      }
    }

    // 2) Data parallelism (batch shard + ZeRO state shard).
    if (d > 1) {
      switch (block.phase) {
        case Phase::kForward:
        case Phase::kDataLoader:
          bytes = ceil_div(bytes, d);
          break;
        case Phase::kModelLoad:
          if (options.zero >= ZeroStage::kFull) bytes = ceil_div(bytes, d);
          break;
        case Phase::kBackward:
          if (options.zero >= ZeroStage::kOptimizerGradient) {
            bytes = ceil_div(bytes, d);
          }
          break;
        case Phase::kOptimizerStep:
          if (options.zero >= ZeroStage::kOptimizer) bytes = ceil_div(bytes, d);
          break;
        case Phase::kOther:
          break;
      }
    }

    // 3) 1F1B in-flight scaling: this chunk holds min(chunks - c, m)
    // micro-batch activation copies of 1/m each.
    if (block.phase == Phase::kForward && micro_batches > 1) {
      const std::int64_t in_flight = std::min<std::int64_t>(
          static_cast<std::int64_t>(total_chunks - chunk), micro_batches);
      bytes = ceil_div(bytes * in_flight, micro_batches);
    }
    if (block.phase == Phase::kForward) {
      max_forward_bytes = std::max(max_forward_bytes, bytes);
    }

    if (first_ts < 0 || block.alloc_ts < first_ts) first_ts = block.alloc_ts;
    if (block.phase == Phase::kForward &&
        (first_forward_ts < 0 || block.alloc_ts < first_forward_ts)) {
      first_forward_ts = block.alloc_ts;
    }
    if (block.phase == Phase::kBackward &&
        (first_backward_ts < 0 || block.alloc_ts < first_backward_ts)) {
      first_backward_ts = block.alloc_ts;
    }
    if (windows) {
      // Window anchors use the block's final (post-shard, post-scaling)
      // bytes, so every window stays bounded by its resident counterpart.
      const std::size_t slot = component < 0
                                   ? component_names_.size()
                                   : static_cast<std::size_t>(component);
      const util::TimeUs end_ts =
          block.persistent() ? block.alloc_ts : block.free_ts;
      if (block.phase == Phase::kForward) {
        if (scratch.fwd_start[slot] < 0 ||
            block.alloc_ts < scratch.fwd_start[slot]) {
          scratch.fwd_start[slot] = block.alloc_ts;
        }
        scratch.fwd_end[slot] = std::max(scratch.fwd_end[slot], end_ts);
        if (tp_synced) {
          if (first_sync_ts < 0 || block.alloc_ts < first_sync_ts) {
            first_sync_ts = block.alloc_ts;
          }
          if (block.persistent()) sync_persistent = true;
          last_sync_end = std::max(last_sync_end, end_ts);
          max_sync_bytes = std::max(max_sync_bytes, bytes);
        }
      } else if (block.phase == Phase::kBackward) {
        if (scratch.bwd_start[slot] < 0 ||
            block.alloc_ts < scratch.bwd_start[slot]) {
          scratch.bwd_start[slot] = block.alloc_ts;
        }
        scratch.bwd_end[slot] = std::max(scratch.bwd_end[slot], end_ts);
        if (d > 1) scratch.grad_marks.emplace_back(block.alloc_ts, bytes);
      } else if (block.phase == Phase::kOptimizerStep) {
        if (optimizer_start_ts < 0 || block.alloc_ts < optimizer_start_ts) {
          optimizer_start_ts = block.alloc_ts;
        }
      }
    }

    out.events.push_back(
        OrchestratedEvent{block.alloc_ts, block.id, bytes, true});
    if (!block.persistent()) {
      out.events.push_back(
          OrchestratedEvent{block.free_ts, block.id, bytes, false});
    }
    if (options.materialize_blocks) {
      MemoryBlock sliced = block;
      sliced.size = bytes;
      out.blocks.push_back(std::move(sliced));
    }
  }

  // 4) Collective-communication buffers: resident events by default,
  // schedule-tied overlap windows (paired alloc/free) under comm_overlap.
  std::int64_t next_id = next_buffer_id_;
  const auto inject = [&](const char* kind, std::int64_t bytes,
                          util::TimeUs ts, util::TimeUs free_ts) {
    if (bytes <= 0) return;
    if (ts < 0) ts = first_ts < 0 ? 0 : first_ts;
    scratch.buffers.push_back(
        CollectiveBuffer{kind, bytes, ts, free_ts, next_id});
    out.events.push_back(OrchestratedEvent{ts, next_id, bytes, true});
    if (free_ts >= 0) {
      out.events.push_back(OrchestratedEvent{free_ts, next_id, bytes, false});
    }
    if (options.materialize_blocks) {
      MemoryBlock block;
      block.id = next_id;
      block.size = bytes;
      block.alloc_ts = ts;
      block.free_ts = free_ts;
      block.component = std::string("__collective:") + kind;
      block.phase = Phase::kOther;
      out.blocks.push_back(std::move(block));
    }
    ++next_id;
  };

  if (options.inject_collectives && !options.comm_overlap) {
    if (d > 1) {
      for (int b = 0; b < options.ddp_bucket_count; ++b) {
        inject("ddp_bucket", options.ddp_bucket_bytes, first_backward_ts, -1);
      }
      if (options.zero >= ZeroStage::kFull) {
        inject("zero3_allgather", max_param_gather, first_ts, -1);
      }
    }
    if (t > 1) {
      inject("tp_allreduce", max_forward_bytes, first_forward_ts, -1);
    }
  } else if (windows) {
    // DDP buckets: the rank's gradient payload, in completion order, cut
    // into buckets of at most ddp_bucket_bytes — one bucket per distinct
    // completion timestamp (an oversized gradient gets one capped bucket,
    // the PyTorch rule; the cap is what keeps every bucket bounded by its
    // resident counterpart). Bucket b drains when bucket b + depth is born
    // — its all-reduce must have completed to admit a new one — and the
    // trailing buckets drain at the optimizer step. Births are strictly
    // increasing and frees sort before allocs on timestamp ties, so at
    // most `depth` buckets are ever live.
    if (d > 1 && options.ddp_bucket_count > 0 &&
        options.ddp_bucket_bytes > 0 && !scratch.grad_marks.empty()) {
      auto& marks = scratch.grad_marks;
      std::sort(marks.begin(), marks.end());
      std::size_t merged = 0;
      for (std::size_t i = 0; i < marks.size(); ++i) {
        if (merged > 0 && marks[merged - 1].first == marks[i].first) {
          marks[merged - 1].second += marks[i].second;
        } else {
          marks[merged++] = marks[i];
        }
      }
      marks.resize(merged);
      auto& births = scratch.bucket_births;
      births.clear();
      std::int64_t accum = 0;
      for (const auto& [ts, payload] : marks) {
        accum += payload;
        if (accum >= options.ddp_bucket_bytes) {
          births.emplace_back(ts, options.ddp_bucket_bytes);
          accum = 0;
        }
      }
      if (accum > 0 &&
          (births.empty() || births.back().first != marks.back().first)) {
        // Tail payload below the threshold gets the final flush bucket
        // (when its timestamp already carries a bucket, the cap absorbed
        // it above).
        births.emplace_back(marks.back().first,
                            std::min(accum, options.ddp_bucket_bytes));
      }
      const std::size_t depth =
          static_cast<std::size_t>(options.ddp_bucket_count);
      for (std::size_t b = 0; b < births.size(); ++b) {
        const util::TimeUs birth = births[b].first;
        util::TimeUs death = -1;
        if (b + depth < births.size()) {
          death = births[b + depth].first;
        } else if (optimizer_start_ts >= 0) {
          death = std::max(optimizer_start_ts, birth + 1);
        }
        inject("ddp_bucket", births[b].second, birth, death);
      }
    }

    // ZeRO-3 parameter gathers: paired gather/release around each
    // component's forward window and again around its backward window,
    // sized by the component's largest TP-sharded (un-DP-sharded)
    // parameter block. Serialized — a new gather releases the previous
    // one (prefetch depth 1) — so at most one is live at any event index
    // and each is bounded by the resident mode's single max-sized buffer.
    if (d > 1 && options.zero >= ZeroStage::kFull) {
      auto& gathers = scratch.gathers;
      gathers.clear();
      for (std::size_t c = 0; c < comp_slots; ++c) {
        const std::int64_t bytes = scratch.comp_param[c];
        if (bytes <= 0) continue;
        if (scratch.fwd_start[c] >= 0) {
          gathers.push_back(
              {scratch.fwd_start[c],
               std::max(scratch.fwd_end[c], scratch.fwd_start[c] + 1),
               bytes});
        }
        if (scratch.bwd_start[c] >= 0) {
          gathers.push_back(
              {scratch.bwd_start[c],
               std::max(scratch.bwd_end[c], scratch.bwd_start[c] + 1),
               bytes});
        }
      }
      std::sort(gathers.begin(), gathers.end(),
                [](const RankScratch::GatherWindow& a,
                   const RankScratch::GatherWindow& b) {
                  if (a.start != b.start) return a.start < b.start;
                  if (a.end != b.end) return a.end < b.end;
                  return a.bytes < b.bytes;
                });
      std::size_t kept = 0;
      for (std::size_t i = 0; i < gathers.size(); ++i) {
        if (kept > 0 && gathers[kept - 1].start == gathers[i].start) {
          // Same gather instant: the depth-1 arena holds the larger tensor.
          gathers[kept - 1].bytes =
              std::max(gathers[kept - 1].bytes, gathers[i].bytes);
          gathers[kept - 1].end =
              std::max(gathers[kept - 1].end, gathers[i].end);
        } else {
          gathers[kept++] = gathers[i];
        }
      }
      gathers.resize(kept);
      for (std::size_t i = 0; i < gathers.size(); ++i) {
        util::TimeUs end = gathers[i].end;
        if (i + 1 < gathers.size()) end = std::min(end, gathers[i + 1].start);
        inject("zero3_allgather", gathers[i].bytes, gathers[i].start, end);
      }
    }

    // TP all-reduce staging: sized from the actual synchronized blocks and
    // alive only across the span they cover (resident when a synchronized
    // block never frees).
    if (t > 1 && max_sync_bytes > 0 && first_sync_ts >= 0) {
      const util::TimeUs end =
          sync_persistent ? -1 : std::max(last_sync_end, first_sync_ts + 1);
      inject("tp_allreduce", max_sync_bytes, first_sync_ts, end);
    }
  }

  std::sort(out.events.begin(), out.events.end(), orchestrated_event_order);
  return out;
}

}  // namespace xmem::core
