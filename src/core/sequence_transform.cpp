#include "core/sequence_transform.h"

#include <algorithm>
#include <map>

namespace xmem::core {

SequenceTransformer::SequenceTransformer(
    const OrchestratedSequence& base,
    const std::vector<ComponentProfile>& profiles)
    : base_(base) {
  component_names_.reserve(profiles.size());
  std::map<std::string, std::int32_t> index_of;
  for (const ComponentProfile& profile : profiles) {
    index_of.emplace(profile.component,
                     static_cast<std::int32_t>(component_names_.size()));
    component_names_.push_back(profile.component);
  }
  block_component_.reserve(base.blocks.size());
  for (const MemoryBlock& block : base.blocks) {
    const auto it = index_of.find(block.component);
    block_component_.push_back(it == index_of.end() ? -1 : it->second);
    next_buffer_id_ = std::max(next_buffer_id_, block.id + 1);
  }
}

const OrchestratedSequence& SequenceTransformer::rank_sequence(
    const RankTransformOptions& options,
    const std::vector<PipelineStage>& chunks, std::size_t pipeline_ranks,
    std::size_t rank, RankScratch& scratch) const {
  OrchestratedSequence& out = scratch.sequence;
  out.blocks.clear();
  out.events.clear();
  scratch.buffers.clear();
  out.events.reserve(base_.events.size());
  if (options.materialize_blocks) out.blocks.reserve(base_.blocks.size());

  const std::int64_t t = std::max(1, options.tensor_parallel);
  const std::int64_t d = std::max(1, options.data_parallel);
  const int micro_batches = std::max(1, options.micro_batches);

  // Component -> chunk map from the contiguous partition; everything in one
  // chunk when no partition was supplied.
  const std::size_t total_chunks = std::max<std::size_t>(chunks.size(), 1);
  const std::size_t ranks =
      std::min(std::max<std::size_t>(pipeline_ranks, 1), total_chunks);
  std::vector<std::size_t>& chunk_of = scratch.chunk_of;
  chunk_of.assign(component_names_.size(), 0);
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    for (std::size_t i = chunks[c].first_component;
         i <= chunks[c].last_component && i < chunk_of.size(); ++i) {
      chunk_of[i] = c;
    }
  }

  // Per-component TP replication flag, resolved once per call instead of
  // per block (the substring scan is the only string work in the loop).
  std::vector<char>& replicated = scratch.replicated;
  replicated.assign(component_names_.size(), 0);
  if (t > 1) {
    for (std::size_t i = 0; i < component_names_.size(); ++i) {
      for (const std::string& marker : options.tensor.replicated_substrings) {
        if (component_names_[i].find(marker) != std::string::npos) {
          replicated[i] = 1;
          break;
        }
      }
    }
  }
  const int replication_pct =
      std::clamp(options.tensor.activation_replication_pct, 0, 100);

  // Collective-buffer anchors, discovered while slicing.
  util::TimeUs first_ts = -1;
  util::TimeUs first_forward_ts = -1;
  util::TimeUs first_backward_ts = -1;
  std::int64_t max_forward_bytes = 0;   ///< post-shard (all-reduce payload)
  std::int64_t max_param_gather = 0;    ///< TP-sharded, un-DP-sharded params

  for (std::size_t i = 0; i < base_.blocks.size(); ++i) {
    const MemoryBlock& block = base_.blocks[i];
    const std::int32_t component = block_component_[i];
    const std::size_t chunk = component < 0 ? 0 : chunk_of[component];
    if (chunk % ranks != rank) continue;

    // 1) Tensor parallelism.
    std::int64_t bytes = block.size;
    if (t > 1 && (component < 0 || !replicated[component])) {
      switch (block.phase) {
        case Phase::kForward: {
          const std::int64_t replicated_bytes = bytes * replication_pct / 100;
          bytes = replicated_bytes + ceil_div(bytes - replicated_bytes, t);
          break;
        }
        case Phase::kModelLoad:
        case Phase::kBackward:
        case Phase::kOptimizerStep:
          bytes = ceil_div(bytes, t);
          break;
        case Phase::kDataLoader:
        case Phase::kOther:
          break;  // every TP rank sees the whole batch
      }
    }
    if (block.phase == Phase::kModelLoad) {
      max_param_gather = std::max(max_param_gather, bytes);
    }

    // 2) Data parallelism (batch shard + ZeRO state shard).
    if (d > 1) {
      switch (block.phase) {
        case Phase::kForward:
        case Phase::kDataLoader:
          bytes = ceil_div(bytes, d);
          break;
        case Phase::kModelLoad:
          if (options.zero >= ZeroStage::kFull) bytes = ceil_div(bytes, d);
          break;
        case Phase::kBackward:
          if (options.zero >= ZeroStage::kOptimizerGradient) {
            bytes = ceil_div(bytes, d);
          }
          break;
        case Phase::kOptimizerStep:
          if (options.zero >= ZeroStage::kOptimizer) bytes = ceil_div(bytes, d);
          break;
        case Phase::kOther:
          break;
      }
    }

    // 3) 1F1B in-flight scaling: this chunk holds min(chunks - c, m)
    // micro-batch activation copies of 1/m each.
    if (block.phase == Phase::kForward && micro_batches > 1) {
      const std::int64_t in_flight = std::min<std::int64_t>(
          static_cast<std::int64_t>(total_chunks - chunk), micro_batches);
      bytes = ceil_div(bytes * in_flight, micro_batches);
    }
    if (block.phase == Phase::kForward) {
      max_forward_bytes = std::max(max_forward_bytes, bytes);
    }

    if (first_ts < 0 || block.alloc_ts < first_ts) first_ts = block.alloc_ts;
    if (block.phase == Phase::kForward &&
        (first_forward_ts < 0 || block.alloc_ts < first_forward_ts)) {
      first_forward_ts = block.alloc_ts;
    }
    if (block.phase == Phase::kBackward &&
        (first_backward_ts < 0 || block.alloc_ts < first_backward_ts)) {
      first_backward_ts = block.alloc_ts;
    }

    out.events.push_back(
        OrchestratedEvent{block.alloc_ts, block.id, bytes, true});
    if (!block.persistent()) {
      out.events.push_back(
          OrchestratedEvent{block.free_ts, block.id, bytes, false});
    }
    if (options.materialize_blocks) {
      MemoryBlock sliced = block;
      sliced.size = bytes;
      out.blocks.push_back(std::move(sliced));
    }
  }

  // 4) Collective-communication buffers, as ordinary resident events.
  if (options.inject_collectives) {
    std::int64_t next_id = next_buffer_id_;
    const auto inject = [&](const char* kind, std::int64_t bytes,
                            util::TimeUs ts) {
      if (bytes <= 0) return;
      if (ts < 0) ts = first_ts < 0 ? 0 : first_ts;
      scratch.buffers.push_back(CollectiveBuffer{kind, bytes, ts, next_id});
      out.events.push_back(OrchestratedEvent{ts, next_id, bytes, true});
      if (options.materialize_blocks) {
        MemoryBlock block;
        block.id = next_id;
        block.size = bytes;
        block.alloc_ts = ts;
        block.free_ts = -1;
        block.component = std::string("__collective:") + kind;
        block.phase = Phase::kOther;
        out.blocks.push_back(std::move(block));
      }
      ++next_id;
    };
    if (d > 1) {
      for (int b = 0; b < options.ddp_bucket_count; ++b) {
        inject("ddp_bucket", options.ddp_bucket_bytes, first_backward_ts);
      }
      if (options.zero >= ZeroStage::kFull) {
        inject("zero3_allgather", max_param_gather, first_ts);
      }
    }
    if (t > 1) {
      inject("tp_allreduce", max_forward_bytes, first_forward_ts);
    }
  }

  std::sort(out.events.begin(), out.events.end(), orchestrated_event_order);
  return out;
}

}  // namespace xmem::core
