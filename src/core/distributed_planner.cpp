#include "core/distributed_planner.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace xmem::core {

namespace {

/// A block is "transient" when its lifetime is a sliver of its iteration —
/// operator workspaces and chain temporaries, not activations.
bool is_transient(const MemoryBlock& block, util::TimeUs iteration_span) {
  if (block.persistent()) return false;
  return (block.free_ts - block.alloc_ts) < iteration_span / 20;
}

}  // namespace

const char* to_string(ZeroStage stage) {
  switch (stage) {
    case ZeroStage::kNone: return "none";
    case ZeroStage::kOptimizer: return "zero1";
    case ZeroStage::kOptimizerGradient: return "zero2";
    case ZeroStage::kFull: return "zero3";
  }
  return "none";
}

ZeroStage zero_stage_from_int(int stage) {
  if (stage < 0 || stage > 3) {
    throw std::invalid_argument("zero_stage must be 0..3, got " +
                                std::to_string(stage));
  }
  return static_cast<ZeroStage>(stage);
}

const char* to_string(PipelineSchedule schedule) {
  switch (schedule) {
    case PipelineSchedule::kOneFOneB: return "1f1b";
    case PipelineSchedule::kInterleaved: return "interleaved";
  }
  return "1f1b";
}

PipelineSchedule pipeline_schedule_from_string(const std::string& name) {
  if (name == "1f1b" || name == "1F1B") return PipelineSchedule::kOneFOneB;
  if (name == "interleaved") return PipelineSchedule::kInterleaved;
  throw std::invalid_argument("unknown pipeline schedule '" + name +
                              "' (1f1b | interleaved)");
}

std::vector<ComponentProfile> per_component_profile(
    const MemoryTimeline& timeline) {
  std::vector<ComponentProfile> profiles;
  std::map<std::string, std::size_t> index_of;
  auto profile_for = [&](const std::string& component) -> ComponentProfile& {
    auto it = index_of.find(component);
    if (it == index_of.end()) {
      it = index_of.emplace(component, profiles.size()).first;
      profiles.push_back(ComponentProfile{component, 0, 0, 0, 0});
    }
    return profiles[it->second];
  };

  const util::TimeUs iteration_span =
      timeline.iterations.empty()
          ? 1
          : timeline.iterations.front().end - timeline.iterations.front().start;

  std::int64_t optimizer_total = 0;
  for (const MemoryBlock& block : timeline.blocks) {
    switch (block.phase) {
      case Phase::kModelLoad:
        profile_for(block.component).param_bytes += block.size;
        break;
      case Phase::kOptimizerStep:
        if (block.persistent()) optimizer_total += block.size;
        break;
      case Phase::kForward: {
        // Count each component's activations once (first iteration with
        // stabilized memory is iteration >= 1; iteration 0 matches it for
        // activations, so restrict to one iteration to avoid double count).
        if (block.iteration == 1 || timeline.iterations.size() == 1) {
          ComponentProfile& p = profile_for(block.component);
          if (is_transient(block, iteration_span)) {
            p.transient_peak = std::max(p.transient_peak, block.size);
          } else {
            p.activation_bytes += block.size;
          }
        }
        break;
      }
      default:
        break;
    }
  }

  // Apportion optimizer state by parameter share.
  std::int64_t param_total = 0;
  for (const ComponentProfile& p : profiles) param_total += p.param_bytes;
  if (param_total > 0 && optimizer_total > 0) {
    for (ComponentProfile& p : profiles) {
      p.optimizer_bytes =
          static_cast<std::int64_t>(static_cast<double>(optimizer_total) *
                                    static_cast<double>(p.param_bytes) /
                                    static_cast<double>(param_total));
    }
  }
  return profiles;
}

namespace {

/// Per-component byte weights the stage solver packs: everything resident
/// per stage (params + gradients + optimizer after any sharding), the
/// per-replica activation bytes, and the largest op workspace.
struct StageWeight {
  std::int64_t persistent = 0;
  std::int64_t activation = 0;
  std::int64_t transient = 0;
};

/// Gradients mirror parameters on each stage; no sharding applied.
std::vector<StageWeight> weights_from_profiles(
    const std::vector<ComponentProfile>& profiles) {
  std::vector<StageWeight> weights(profiles.size());
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    weights[i].persistent =
        profiles[i].persistent_bytes() + profiles[i].param_bytes;
    weights[i].activation = profiles[i].activation_bytes;
    weights[i].transient = profiles[i].transient_peak;
  }
  return weights;
}

std::int64_t span_peak(const std::vector<StageWeight>& weights,
                       std::size_t first, std::size_t last, std::size_t index,
                       std::size_t num_stages, int micro_batches) {
  std::int64_t persistent = 0;
  std::int64_t activations = 0;
  std::int64_t transient = 0;
  for (std::size_t i = first; i <= last; ++i) {
    persistent += weights[i].persistent;
    activations += weights[i].activation;
    transient = std::max(transient, weights[i].transient);
  }
  const int in_flight =
      std::min<int>(static_cast<int>(num_stages - index), micro_batches);
  const std::int64_t per_micro = activations / std::max(1, micro_batches);
  return persistent + per_micro * in_flight + transient;
}

/// Can the sequence be packed into `num_stages` contiguous stages with every
/// stage's peak <= `budget`? Fills `out` when it can. Greedy: extend the
/// current stage while it stays under budget. Because later stages hold
/// fewer in-flight micro-batches, we conservatively evaluate each stage with
/// its actual index.
bool try_pack(const std::vector<StageWeight>& weights, std::int64_t budget,
              std::size_t num_stages, int micro_batches,
              std::vector<PipelineStage>* out) {
  std::vector<PipelineStage> stages;
  std::size_t begin = 0;
  for (std::size_t s = 0; s < num_stages && begin < weights.size(); ++s) {
    std::size_t end = begin;
    // The last stage must absorb everything left.
    if (s + 1 == num_stages) {
      end = weights.size() - 1;
      if (span_peak(weights, begin, end, s, num_stages, micro_batches) >
          budget) {
        return false;
      }
    } else {
      while (end + 1 < weights.size() &&
             span_peak(weights, begin, end + 1, s, num_stages,
                       micro_batches) <= budget) {
        ++end;
      }
      if (span_peak(weights, begin, end, s, num_stages, micro_batches) >
          budget) {
        return false;  // a single component exceeds the budget
      }
    }
    PipelineStage stage;
    stage.first_component = begin;
    stage.last_component = end;
    stage.estimated_peak =
        span_peak(weights, begin, end, s, num_stages, micro_batches);
    for (std::size_t i = begin; i <= end; ++i) {
      stage.persistent_bytes += weights[i].persistent;
      stage.activation_bytes += weights[i].activation;
      stage.transient_peak = std::max(stage.transient_peak,
                                      weights[i].transient);
    }
    stages.push_back(stage);
    begin = end + 1;
  }
  if (begin < weights.size()) return false;
  if (out != nullptr) *out = std::move(stages);
  return true;
}

/// Minimize the maximum per-stage peak over contiguous partitions: binary
/// search the budget, then pack at the minimal feasible one.
std::vector<PipelineStage> pack_min_max(const std::vector<StageWeight>& weights,
                                        std::size_t num_stages,
                                        int micro_batches) {
  // Everything in stage 0 with the deepest in-flight count bounds any
  // partition's worst stage from above — and is itself feasible.
  std::int64_t low = 1;
  std::int64_t high = span_peak(weights, 0, weights.size() - 1, 0, num_stages,
                                micro_batches);
  while (low < high) {
    const std::int64_t mid = low + (high - low) / 2;
    if (try_pack(weights, mid, num_stages, micro_batches, nullptr)) {
      high = mid;
    } else {
      low = mid + 1;
    }
  }
  std::vector<PipelineStage> stages;
  try_pack(weights, low, num_stages, micro_batches, &stages);
  return stages;
}

/// Per-rank peaks of a packed (virtual-)stage sequence: rank r owns chunks
/// r, r + p, r + 2p, … — summing their resident bytes, sharing the largest
/// workspace (ops of co-located chunks never overlap in time).
std::vector<std::int64_t> rank_peaks_of(const std::vector<PipelineStage>& chunks,
                                        std::size_t pipeline_stages) {
  const std::size_t ranks =
      std::min(pipeline_stages, std::max<std::size_t>(chunks.size(), 1));
  std::vector<std::int64_t> resident(ranks, 0);
  std::vector<std::int64_t> transient(ranks, 0);
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    const std::size_t rank = c % ranks;
    resident[rank] +=
        chunks[c].estimated_peak - chunks[c].transient_peak;
    transient[rank] = std::max(transient[rank], chunks[c].transient_peak);
  }
  std::vector<std::int64_t> peaks(ranks, 0);
  for (std::size_t r = 0; r < ranks; ++r) {
    peaks[r] = resident[r] + transient[r];
  }
  return peaks;
}

}  // namespace

PipelinePlan DistributedPlanner::plan_pipeline(
    const MemoryTimeline& timeline, const DistributedOptions& options) const {
  return plan_pipeline(per_component_profile(timeline), options);
}

PipelinePlan DistributedPlanner::plan_pipeline(
    const std::vector<ComponentProfile>& profiles,
    const DistributedOptions& options) const {
  PipelinePlan plan;
  if (profiles.empty() || options.pipeline_stages < 1 ||
      options.micro_batches < 1 || options.virtual_stages < 1) {
    return plan;
  }
  const std::vector<StageWeight> weights = weights_from_profiles(profiles);
  plan.single_device_peak = span_peak(weights, 0, weights.size() - 1, 0, 1, 1);

  const auto ranks = static_cast<std::size_t>(options.pipeline_stages);
  const std::size_t chunks_per_rank =
      options.schedule == PipelineSchedule::kInterleaved
          ? static_cast<std::size_t>(options.virtual_stages)
          : 1;
  plan.stages = pack_min_max(weights, ranks * chunks_per_rank,
                             options.micro_batches);
  plan.rank_peaks = rank_peaks_of(plan.stages, ranks);
  for (const std::int64_t peak : plan.rank_peaks) {
    plan.max_stage_peak = std::max(plan.max_stage_peak, peak);
  }
  return plan;
}

DataParallelPlan DistributedPlanner::plan_data_parallel(
    const std::vector<ComponentProfile>& profiles,
    const DataParallelOptions& options) const {
  DataParallelPlan plan;
  plan.ranks = std::max(1, options.ranks);
  plan.zero = options.zero;
  const std::int64_t d = plan.ranks;
  for (const ComponentProfile& c : profiles) {
    plan.param_bytes +=
        options.zero >= ZeroStage::kFull ? ceil_div(c.param_bytes, d)
                                         : c.param_bytes;
    plan.gradient_bytes +=
        options.zero >= ZeroStage::kOptimizerGradient
            ? ceil_div(c.param_bytes, d)
            : c.param_bytes;
    plan.optimizer_bytes +=
        options.zero >= ZeroStage::kOptimizer
            ? ceil_div(c.optimizer_bytes, d)
            : c.optimizer_bytes;
    plan.activation_bytes += ceil_div(c.activation_bytes, d);
    plan.transient_peak = std::max(plan.transient_peak, c.transient_peak);
  }
  plan.bucket_overhead_bytes =
      d > 1 ? options.ddp_bucket_count * options.ddp_bucket_bytes : 0;
  plan.per_rank_peak = plan.param_bytes + plan.gradient_bytes +
                       plan.optimizer_bytes + plan.activation_bytes +
                       plan.transient_peak + plan.bucket_overhead_bytes;
  plan.single_device_peak = single_device_peak(profiles);
  return plan;
}

ComponentProfile DistributedPlanner::shard_tensor_parallel(
    const ComponentProfile& component,
    const TensorParallelOptions& options) const {
  const std::int64_t t = std::max(1, options.ways);
  if (t == 1) return component;
  for (const std::string& marker : options.replicated_substrings) {
    if (component.component.find(marker) != std::string::npos) {
      return component;  // norms/embeddings stay whole on every rank
    }
  }
  ComponentProfile sharded = component;
  sharded.param_bytes = ceil_div(component.param_bytes, t);
  sharded.optimizer_bytes = ceil_div(component.optimizer_bytes, t);
  const std::int64_t replicated =
      component.activation_bytes *
      std::clamp(options.activation_replication_pct, 0, 100) / 100;
  sharded.activation_bytes =
      replicated + ceil_div(component.activation_bytes - replicated, t);
  sharded.transient_peak = ceil_div(component.transient_peak, t);
  return sharded;
}

TensorParallelPlan DistributedPlanner::plan_tensor_parallel(
    const std::vector<ComponentProfile>& profiles,
    const TensorParallelOptions& options) const {
  TensorParallelPlan plan;
  plan.ways = std::max(1, options.ways);
  TensorParallelOptions ways_options = options;
  ways_options.ways = plan.ways;
  for (const ComponentProfile& c : profiles) {
    const ComponentProfile sharded = shard_tensor_parallel(c, ways_options);
    if (plan.ways > 1 && sharded.param_bytes == c.param_bytes) {
      plan.replicated_param_bytes += c.param_bytes;
    }
    plan.param_bytes += sharded.param_bytes;
    plan.gradient_bytes += sharded.param_bytes;
    plan.optimizer_bytes += sharded.optimizer_bytes;
    plan.activation_bytes += sharded.activation_bytes;
    plan.transient_peak = std::max(plan.transient_peak, sharded.transient_peak);
  }
  plan.per_rank_peak = plan.param_bytes + plan.gradient_bytes +
                       plan.optimizer_bytes + plan.activation_bytes +
                       plan.transient_peak;
  plan.single_device_peak = single_device_peak(profiles);
  return plan;
}

HybridPlan DistributedPlanner::plan_hybrid(
    const std::vector<ComponentProfile>& profiles,
    const HybridOptions& options) const {
  HybridPlan plan;
  plan.data_parallel = std::max(1, options.data_parallel);
  plan.tensor_parallel = std::max(1, options.tensor_parallel);
  plan.pipeline_stages = std::max(1, options.pipeline_stages);
  plan.gpus = plan.data_parallel * plan.tensor_parallel * plan.pipeline_stages;
  if (profiles.empty() || options.micro_batches < 1 ||
      options.virtual_stages < 1) {
    return plan;
  }
  plan.single_device_peak = single_device_peak(profiles);

  // 1) TP shards every component; 2) DP shards the batch (activations) and,
  // under ZeRO, the persistent state; 3) PP packs the resulting weights.
  TensorParallelOptions tensor = options.tensor;
  tensor.ways = plan.tensor_parallel;
  const std::int64_t d = plan.data_parallel;
  std::vector<StageWeight> weights(profiles.size());
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const ComponentProfile sharded =
        shard_tensor_parallel(profiles[i], tensor);
    const std::int64_t params =
        options.zero >= ZeroStage::kFull ? ceil_div(sharded.param_bytes, d)
                                         : sharded.param_bytes;
    const std::int64_t gradients =
        options.zero >= ZeroStage::kOptimizerGradient
            ? ceil_div(sharded.param_bytes, d)
            : sharded.param_bytes;
    const std::int64_t optimizer =
        options.zero >= ZeroStage::kOptimizer
            ? ceil_div(sharded.optimizer_bytes, d)
            : sharded.optimizer_bytes;
    weights[i].persistent = params + gradients + optimizer;
    weights[i].activation = ceil_div(sharded.activation_bytes, d);
    weights[i].transient = sharded.transient_peak;
  }

  const auto ranks = static_cast<std::size_t>(plan.pipeline_stages);
  const std::size_t chunks_per_rank =
      options.schedule == PipelineSchedule::kInterleaved
          ? static_cast<std::size_t>(options.virtual_stages)
          : 1;
  plan.stages =
      pack_min_max(weights, ranks * chunks_per_rank, options.micro_batches);
  plan.rank_peaks = rank_peaks_of(plan.stages, ranks);
  const std::int64_t bucket_overhead =
      d > 1 ? options.ddp_bucket_count * options.ddp_bucket_bytes : 0;
  for (std::int64_t& peak : plan.rank_peaks) {
    peak += bucket_overhead;
    plan.per_rank_peak = std::max(plan.per_rank_peak, peak);
  }
  return plan;
}

std::int64_t DistributedPlanner::single_device_peak(
    const std::vector<ComponentProfile>& profiles) const {
  if (profiles.empty()) return 0;
  const std::vector<StageWeight> weights = weights_from_profiles(profiles);
  return span_peak(weights, 0, weights.size() - 1, 0, 1, 1);
}

std::vector<Decomposition> DistributedPlanner::enumerate_decompositions(
    int max_gpus, int max_pipeline_stages) {
  std::vector<Decomposition> decompositions;
  for (int n = 1; n <= max_gpus; ++n) {
    for (int d = 1; d <= n; ++d) {
      if (n % d != 0) continue;
      const int td = n / d;
      for (int t = 1; t <= td; ++t) {
        if (td % t != 0) continue;
        const int p = td / t;
        if (p > std::max(1, max_pipeline_stages)) continue;
        decompositions.push_back(Decomposition{d, t, p});
      }
    }
  }
  return decompositions;
}

}  // namespace xmem::core
