#include "core/distributed_planner.h"

#include <algorithm>
#include <map>

namespace xmem::core {

namespace {

/// A block is "transient" when its lifetime is a sliver of its iteration —
/// operator workspaces and chain temporaries, not activations.
bool is_transient(const MemoryBlock& block, util::TimeUs iteration_span) {
  if (block.persistent()) return false;
  return (block.free_ts - block.alloc_ts) < iteration_span / 20;
}

}  // namespace

std::vector<ComponentProfile> per_component_profile(
    const MemoryTimeline& timeline) {
  std::vector<ComponentProfile> profiles;
  std::map<std::string, std::size_t> index_of;
  auto profile_for = [&](const std::string& component) -> ComponentProfile& {
    auto it = index_of.find(component);
    if (it == index_of.end()) {
      it = index_of.emplace(component, profiles.size()).first;
      profiles.push_back(ComponentProfile{component, 0, 0, 0, 0});
    }
    return profiles[it->second];
  };

  const util::TimeUs iteration_span =
      timeline.iterations.empty()
          ? 1
          : timeline.iterations.front().end - timeline.iterations.front().start;

  std::int64_t optimizer_total = 0;
  for (const MemoryBlock& block : timeline.blocks) {
    switch (block.phase) {
      case Phase::kModelLoad:
        profile_for(block.component).param_bytes += block.size;
        break;
      case Phase::kOptimizerStep:
        if (block.persistent()) optimizer_total += block.size;
        break;
      case Phase::kForward: {
        // Count each component's activations once (first iteration with
        // stabilized memory is iteration >= 1; iteration 0 matches it for
        // activations, so restrict to one iteration to avoid double count).
        if (block.iteration == 1 || timeline.iterations.size() == 1) {
          ComponentProfile& p = profile_for(block.component);
          if (is_transient(block, iteration_span)) {
            p.transient_peak = std::max(p.transient_peak, block.size);
          } else {
            p.activation_bytes += block.size;
          }
        }
        break;
      }
      default:
        break;
    }
  }

  // Apportion optimizer state by parameter share.
  std::int64_t param_total = 0;
  for (const ComponentProfile& p : profiles) param_total += p.param_bytes;
  if (param_total > 0 && optimizer_total > 0) {
    for (ComponentProfile& p : profiles) {
      p.optimizer_bytes =
          static_cast<std::int64_t>(static_cast<double>(optimizer_total) *
                                    static_cast<double>(p.param_bytes) /
                                    static_cast<double>(param_total));
    }
  }
  return profiles;
}

namespace {

std::int64_t stage_peak(const std::vector<ComponentProfile>& profiles,
                        std::size_t first, std::size_t last,
                        std::size_t stage_index, std::size_t num_stages,
                        const DistributedOptions& options) {
  std::int64_t persistent = 0;
  std::int64_t activations = 0;
  std::int64_t transient = 0;
  for (std::size_t i = first; i <= last; ++i) {
    persistent += profiles[i].persistent_bytes();
    // Gradients mirror parameters on each stage.
    persistent += profiles[i].param_bytes;
    activations += profiles[i].activation_bytes;
    transient = std::max(transient, profiles[i].transient_peak);
  }
  const int in_flight = std::min<int>(
      static_cast<int>(num_stages - stage_index), options.micro_batches);
  const std::int64_t per_micro =
      activations / std::max(1, options.micro_batches);
  return persistent + per_micro * in_flight + transient;
}

/// Can the sequence be packed into `num_stages` contiguous stages with every
/// stage's peak <= `budget`? Fills `out` when it can. Greedy: extend the
/// current stage while it stays under budget. Because later stages hold
/// fewer in-flight micro-batches, we conservatively evaluate each stage with
/// its actual index.
bool try_pack(const std::vector<ComponentProfile>& profiles,
              std::int64_t budget, const DistributedOptions& options,
              std::vector<PipelineStage>* out) {
  const auto num_stages = static_cast<std::size_t>(options.pipeline_stages);
  std::vector<PipelineStage> stages;
  std::size_t begin = 0;
  for (std::size_t s = 0; s < num_stages && begin < profiles.size(); ++s) {
    std::size_t end = begin;
    // The last stage must absorb everything left.
    if (s + 1 == num_stages) {
      end = profiles.size() - 1;
      if (stage_peak(profiles, begin, end, s, num_stages, options) > budget) {
        return false;
      }
    } else {
      while (end + 1 < profiles.size() &&
             stage_peak(profiles, begin, end + 1, s, num_stages, options) <=
                 budget) {
        ++end;
      }
      if (stage_peak(profiles, begin, end, s, num_stages, options) > budget) {
        return false;  // a single component exceeds the budget
      }
    }
    PipelineStage stage;
    stage.first_component = begin;
    stage.last_component = end;
    stage.estimated_peak =
        stage_peak(profiles, begin, end, s, num_stages, options);
    for (std::size_t i = begin; i <= end; ++i) {
      stage.persistent_bytes +=
          profiles[i].persistent_bytes() + profiles[i].param_bytes;
      stage.activation_bytes += profiles[i].activation_bytes;
    }
    stages.push_back(stage);
    begin = end + 1;
  }
  if (begin < profiles.size()) return false;
  if (out != nullptr) *out = std::move(stages);
  return true;
}

}  // namespace

PipelinePlan DistributedPlanner::plan_pipeline(
    const MemoryTimeline& timeline, const DistributedOptions& options) const {
  PipelinePlan plan;
  const std::vector<ComponentProfile> profiles =
      per_component_profile(timeline);
  if (profiles.empty() || options.pipeline_stages < 1) return plan;

  // Single-device reference: everything in one stage, no micro-batching.
  DistributedOptions single = options;
  single.pipeline_stages = 1;
  single.micro_batches = 1;
  plan.single_device_peak =
      stage_peak(profiles, 0, profiles.size() - 1, 0, 1, single);

  // Binary search the minimal feasible max-stage budget.
  std::int64_t low = 1;
  std::int64_t high = plan.single_device_peak * 2 + 1;
  while (low < high) {
    const std::int64_t mid = low + (high - low) / 2;
    if (try_pack(profiles, mid, options, nullptr)) {
      high = mid;
    } else {
      low = mid + 1;
    }
  }
  try_pack(profiles, low, options, &plan.stages);
  for (const PipelineStage& stage : plan.stages) {
    plan.max_stage_peak = std::max(plan.max_stage_peak, stage.estimated_peak);
  }
  return plan;
}

}  // namespace xmem::core
