// xMem Memory Simulator (paper §3.4).
//
// Replays an orchestrated memory-event sequence through the same two-level
// allocator tower the ground truth runs on (by default CachingAllocatorSim
// over SimulatedCudaDriver), reproducing round-up, segment sizing, BFC
// split/coalesce, caching, reclaim-then-retry, and the two-level OOM
// condition. The peak of the reserved-bytes series is the estimate.
//
// The framework allocator is selected by registry name (§6.4: the
// pluggable-architecture point — the BFC core generalizes, the policies
// around it must not be genericized away). Any backend registered in
// alloc/backend_registry.h can be replayed against.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "alloc/backend_registry.h"
#include "alloc/caching_allocator.h"
#include "alloc/cuda_driver_sim.h"
#include "core/orchestrator.h"

namespace xmem::core {

struct SimulationOptions {
  /// Device capacity for the replay. The default (effectively unbounded)
  /// yields the unconstrained peak used as the estimate; passing a real
  /// budget turns the replay into an OOM predictor with full reclamation
  /// semantics.
  std::int64_t capacity = kUnboundedCapacity;
  bool record_series = false;
  /// Registry name of the framework allocator to replay against.
  std::string backend = alloc::kDefaultBackendName;
  /// Policy knobs for the backend (empty = its documented defaults); see
  /// alloc/backend_registry.h for the per-backend knob tables.
  alloc::BackendKnobs backend_knobs;

  static constexpr std::int64_t kUnboundedCapacity = std::int64_t{1} << 50;
};

struct SimulationResult {
  std::int64_t peak_reserved = 0;   ///< segment-level peak
  /// Driver-page-granular peak — what NVML would report for this replay and
  /// therefore the quantity the estimate is compared against.
  std::int64_t peak_device = 0;
  std::int64_t peak_allocated = 0;  ///< tensor-level peak
  bool oom = false;  ///< both allocator levels failed (capacity-bound replays)
  /// Backend-agnostic counters from the replayed allocator.
  fw::BackendStats backend_stats;
  /// Full PyTorch-port counters; populated only for the "pytorch" backend
  /// (zero-initialized otherwise).
  alloc::CachingAllocatorStats stats;
  std::vector<std::pair<util::TimeUs, std::int64_t>> reserved_series;
  std::vector<std::pair<util::TimeUs, std::int64_t>> allocated_series;
};

/// Reusable replay state for hot loops that replay many sequences back to
/// back (the planner's per-rank refine pass):
///
///   * the live block->backend-id map keeps its bucket array across replays
///     instead of rehashing from empty every call;
///   * the driver + backend tower is kept and *reset* between replays
///     (backend_reset() / SimulatedCudaDriver::reset()) instead of being
///     rebuilt, so segment maps, block-node pools, and free-set storage
///     survive. The reset contract (fw/backend.h) makes a reset tower
///     byte-identical to a fresh one, which keeps replays
///     order-independent; tests/backend_reset_test.cpp enforces it per
///     backend.
///
/// The tower is only reused when the (backend, knobs, capacity) triple
/// matches the previous replay — a mismatch rebuilds it transparently.
///
/// The scratch also carries a bounded FIFO of finished replay verdicts
/// keyed on (sequence fingerprint, backend, knobs, capacity) — the
/// cross-candidate memoization of the planner's refine pass. Every lookup
/// is guarded by a full event-vector compare, so a fingerprint collision
/// costs one fresh replay instead of producing a wrong peak; and since a
/// hit returns exactly what the replay would have computed (the
/// backend_reset() contract makes replays order-independent), reports stay
/// byte-identical whether the cache hits or not.
struct ReplayScratch {
  std::unordered_map<std::int64_t, std::int64_t> live;
  std::unique_ptr<alloc::SimulatedCudaDriver> driver;
  std::unique_ptr<fw::AllocatorBackend> backend;
  std::string tower_key;  ///< backend|knobs|capacity of the held tower

  struct CachedReplay {
    std::uint64_t fingerprint = 0;
    std::string tower_key;
    std::vector<OrchestratedEvent> events;  ///< collision guard
    std::int64_t peak_device = 0;
  };
  /// FIFO ring of finished verdicts; 32 entries covers every stage of a
  /// refine-all search's in-flight candidates without holding more than a
  /// few MB of guard events per worker thread.
  static constexpr std::size_t kResultCacheCapacity = 32;
  std::vector<CachedReplay> results;
  std::size_t next_result_slot = 0;
};

/// Compose the (backend, knobs, capacity) scratch/tower cache key.
std::string replay_tower_key(const SimulationOptions& options);

class MemorySimulator {
 public:
  SimulationResult replay(const OrchestratedSequence& sequence,
                          const SimulationOptions& options = {},
                          ReplayScratch* scratch = nullptr) const;

  /// Memoized peak_device of `replay(sequence, options)`: hit the scratch's
  /// bounded result cache on (fingerprint, backend, knobs, capacity) —
  /// verified by full event compare — or replay and record. `cache_hit`
  /// (optional) reports which path ran; the returned peak is identical
  /// either way.
  std::int64_t replay_peak_memoized(const OrchestratedSequence& sequence,
                                    std::uint64_t fingerprint,
                                    const SimulationOptions& options,
                                    ReplayScratch& scratch,
                                    bool* cache_hit = nullptr) const;
};

}  // namespace xmem::core
