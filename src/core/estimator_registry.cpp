#include "core/estimator_registry.h"

#include <map>
#include <stdexcept>

#include "baselines/dnnmem.h"
#include "baselines/llmem.h"
#include "baselines/schedtune.h"
#include "core/xmem_estimator.h"

namespace xmem::core {

namespace {

struct Entry {
  std::string description;
  EstimatorFactory factory;
  bool session_backed = false;
  bool orchestrate = true;
};

std::map<std::string, Entry>& registry() {
  static std::map<std::string, Entry> entries = {
      {"xMem",
       {"full dynamic-analysis pipeline: CPU profile -> Analyzer -> "
        "Orchestrator -> two-level simulator replay (Figure 4)",
        [] { return std::make_unique<XMemEstimator>(); },
        /*session_backed=*/true, /*orchestrate=*/true}},
      {"xMem-noOrch",
       {"ablation: raw CPU lifecycles straight into the simulator "
        "(Orchestrator rules off, §3.3)",
        [] {
          XMemOptions options;
          options.orchestrate = false;
          return std::make_unique<XMemEstimator>(options);
        },
        /*session_backed=*/true, /*orchestrate=*/false}},
      {"DNNMem",
       {"static-analysis baseline: computation-graph walk through a basic "
        "BFC allocator (§5.1 reimplementation)",
        [] { return std::make_unique<baselines::DnnMemEstimator>(); }}},
      {"SchedTune",
       {"data-driven baseline: boosted trees over model/hardware features, "
        "trained on pre-2021 history (§5.2 reimplementation)",
        [] { return std::make_unique<baselines::SchedTuneEstimator>(); }}},
      {"LLMem",
       {"direct-GPU-measurement baseline: probe runs + linear "
        "extrapolation; CausalLM only (§5.3 reimplementation)",
        [] { return std::make_unique<baselines::LLMemEstimator>(); }}},
  };
  return entries;
}

}  // namespace

void register_estimator(const std::string& name,
                        const std::string& description,
                        EstimatorFactory factory, bool session_backed,
                        bool orchestrate) {
  if (name.empty()) {
    throw std::invalid_argument("register_estimator: empty name");
  }
  if (!factory) {
    throw std::invalid_argument("register_estimator: null factory for " +
                                name);
  }
  const auto [it, inserted] = registry().emplace(
      name, Entry{description, std::move(factory), session_backed,
                  orchestrate});
  if (!inserted) {
    throw std::invalid_argument("register_estimator: duplicate name " + name);
  }
}

bool is_known_estimator(const std::string& name) {
  return registry().count(name) > 0;
}

bool estimator_uses_session(const std::string& name) {
  const auto it = registry().find(name);
  return it != registry().end() && it->second.session_backed;
}

bool estimator_orchestrates(const std::string& name) {
  const auto it = registry().find(name);
  return it == registry().end() || it->second.orchestrate;
}

std::vector<std::string> estimator_names() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, entry] : registry()) names.push_back(name);
  return names;  // std::map keeps them sorted
}

std::string estimator_description(const std::string& name) {
  const auto it = registry().find(name);
  return it == registry().end() ? std::string() : it->second.description;
}

std::unique_ptr<Estimator> make_estimator(const std::string& name) {
  const auto it = registry().find(name);
  if (it == registry().end()) {
    std::string known;
    for (const auto& n : estimator_names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::invalid_argument("make_estimator: unknown estimator '" + name +
                                "' (registered: " + known + ")");
  }
  return it->second.factory();
}

}  // namespace xmem::core
