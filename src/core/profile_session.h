// ProfileSession: the profile-once half of the estimation service.
//
// The expensive prefix of the xMem pipeline (Figure 4) — CPU profile, JSON
// round trip, Analyzer, Orchestrator — depends only on the job
// configuration, never on the target device or the allocator backend the
// simulator replays against. A ProfileSession caches that prefix per
// ProfileKey behind a bounded LRU (keyed like the old EvalHarness cache),
// so a what-if sweep over N devices x M allocators costs one profile plus
// N*M cheap simulator replays.
//
// Thread-safe with in-flight deduplication: concurrent requests for the
// same key block on one shared profiling run instead of each profiling.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/analyzer.h"
#include "core/orchestrator.h"
#include "fw/types.h"
#include "trace/trace.h"

namespace xmem::core {

/// Everything that changes the orchestrated sequence. Two jobs with equal
/// keys share one cached profile.
struct ProfileKey {
  std::string model_name;
  int batch_size = 0;
  fw::OptimizerKind optimizer = fw::OptimizerKind::kSgd;
  fw::ZeroGradPlacement placement = fw::ZeroGradPlacement::kPos1IterStart;
  std::uint64_t seed = 1;
  int profile_iterations = 3;
  /// Orchestrator rule set actually applied (all-false = the §3.3 ablation).
  OrchestratorConfig orchestrator_config;
  /// Serialize + reparse the profiler output (the authentic file-based path).
  bool json_round_trip = true;

  /// Canonical cache-key string, e.g.
  /// "gpt2/AdamW/b8/POS1/s1/it3/rules1111/rt1".
  std::string cache_string() const;
};

/// The cached pipeline prefix plus how long each stage took to build it.
struct ProfileArtifacts {
  trace::Trace trace;
  Analyzer::Output analysis;
  Orchestrator::Output orchestration;
  double profile_seconds = 0.0;  ///< CPU execution + JSON round trip
  double analyze_seconds = 0.0;  ///< Analyzer + Orchestrator
};

class ProfileSession {
 public:
  static constexpr std::size_t kDefaultCapacity = 16;

  explicit ProfileSession(std::size_t capacity = kDefaultCapacity);

  struct Lookup {
    std::shared_ptr<const ProfileArtifacts> artifacts;
    /// True when this call reused a cached (or in-flight) profile rather
    /// than running one itself.
    bool cache_hit = false;
  };

  /// Return the artifacts for `key`, profiling on a miss. Throws (and does
  /// not cache) if the profile fails, e.g. unknown model name.
  Lookup get(const ProfileKey& key);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  std::uint64_t hits() const { return hits_.load(); }
  std::uint64_t misses() const { return misses_.load(); }

 private:
  using ArtifactsPtr = std::shared_ptr<const ProfileArtifacts>;

  struct Entry {
    std::shared_future<ArtifactsPtr> future;
    std::list<std::string>::iterator lru_it;
  };

  mutable std::mutex mutex_;
  std::list<std::string> lru_;  ///< front = most recently used
  std::map<std::string, Entry> entries_;
  std::size_t capacity_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

/// Run the pipeline prefix once, uncached (what a session miss executes).
ProfileArtifacts run_profile_pipeline(const ProfileKey& key);

}  // namespace xmem::core
