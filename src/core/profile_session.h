// ProfileSession: the profile-once half of the estimation service.
//
// The expensive prefix of the xMem pipeline (Figure 4) — CPU profile, JSON
// round trip, Analyzer, Orchestrator — depends only on the job
// configuration, never on the target device or the allocator backend the
// simulator replays against. A ProfileSession caches that prefix per
// ProfileKey behind a bounded LRU (keyed like the old EvalHarness cache),
// so a what-if sweep over N devices x M allocators costs one profile plus
// N*M cheap simulator replays.
//
// Thread-safe with in-flight deduplication: concurrent requests for the
// same key block on one shared profiling run instead of each profiling.
//
// Multi-tenant: every get() carries an (optional) tenant name, and a
// SessionQuota bounds how many resident cache entries one tenant may hold —
// either by evicting that tenant's own least-recently-used entry (soft
// mode, the server default) or by rejecting the request with a
// QuotaExceededError naming the tenant and the limit (hard mode). Either
// way a tenant saturating its share can never evict another tenant's
// entries through the quota path.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>

#include "core/analyzer.h"
#include "core/orchestrator.h"
#include "fw/types.h"
#include "trace/trace.h"

namespace xmem::core {

/// Everything that changes the orchestrated sequence. Two jobs with equal
/// keys share one cached profile.
struct ProfileKey {
  std::string model_name;
  int batch_size = 0;
  fw::OptimizerKind optimizer = fw::OptimizerKind::kSgd;
  fw::ZeroGradPlacement placement = fw::ZeroGradPlacement::kPos1IterStart;
  std::uint64_t seed = 1;
  int profile_iterations = 3;
  /// Orchestrator rule set actually applied (all-false = the §3.3 ablation).
  OrchestratorConfig orchestrator_config;
  /// Serialize + reparse the profiler output (the authentic file-based path).
  bool json_round_trip = true;

  /// Canonical cache-key string, e.g.
  /// "gpt2/AdamW/b8/POS1/s1/it3/rules1111/rt1".
  std::string cache_string() const;
};

/// The cached pipeline prefix plus how long each stage took to build it.
struct ProfileArtifacts {
  trace::Trace trace;
  Analyzer::Output analysis;
  Orchestrator::Output orchestration;
  double profile_seconds = 0.0;  ///< CPU execution + JSON round trip
  double analyze_seconds = 0.0;  ///< Analyzer + Orchestrator
};

/// Per-tenant bound on the profile LRU. `max_resident_per_tenant == 0`
/// disables the quota; the untenanted name ("") is always exempt.
struct SessionQuota {
  std::size_t max_resident_per_tenant = 0;
  /// false: a tenant at its limit evicts its own least-recently-used entry
  /// (bounded share, keeps serving). true: the request is rejected with a
  /// QuotaExceededError instead — the admission-control posture.
  bool reject_over_quota = false;
};

/// Thrown (hard-quota mode) when a tenant at its resident limit asks for a
/// profile that is not already cached. The message names the tenant and the
/// limit so a client can act on it.
class QuotaExceededError : public std::runtime_error {
 public:
  QuotaExceededError(const std::string& tenant, std::size_t limit)
      : std::runtime_error("tenant '" + tenant +
                           "' over profile quota: at most " +
                           std::to_string(limit) +
                           " resident profiles allowed"),
        tenant_(tenant),
        limit_(limit) {}
  const std::string& tenant() const { return tenant_; }
  std::size_t limit() const { return limit_; }

 private:
  std::string tenant_;
  std::size_t limit_;
};

class ProfileSession {
 public:
  static constexpr std::size_t kDefaultCapacity = 16;

  explicit ProfileSession(std::size_t capacity = kDefaultCapacity,
                          SessionQuota quota = {});

  struct Lookup {
    std::shared_ptr<const ProfileArtifacts> artifacts;
    /// True when this call reused a cached (or in-flight) profile rather
    /// than running one itself.
    bool cache_hit = false;
  };

  /// Return the artifacts for `key`, profiling on a miss. Throws (and does
  /// not cache) if the profile fails, e.g. unknown model name. `tenant`
  /// attributes a miss's cache entry for quota accounting; a hit is free
  /// regardless of who first profiled the key. Throws QuotaExceededError
  /// in hard-quota mode when `tenant` is at its resident limit and the key
  /// is cold.
  Lookup get(const ProfileKey& key, const std::string& tenant = std::string());

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  const SessionQuota& quota() const { return quota_; }
  std::uint64_t hits() const { return hits_.load(); }
  std::uint64_t misses() const { return misses_.load(); }
  /// Entries evicted because their OWN tenant hit its quota (soft mode).
  std::uint64_t quota_evictions() const { return quota_evictions_.load(); }
  /// Requests rejected with QuotaExceededError (hard mode).
  std::uint64_t quota_rejections() const { return quota_rejections_.load(); }
  /// Resident entry count currently attributed to `tenant`.
  std::size_t tenant_resident(const std::string& tenant) const;
  /// Snapshot of every tenant's resident entry count (tenants with zero
  /// resident entries are omitted; the untenanted "" is included if any).
  std::map<std::string, std::size_t> resident_by_tenant() const;

 private:
  using ArtifactsPtr = std::shared_ptr<const ProfileArtifacts>;

  struct Entry {
    std::shared_future<ArtifactsPtr> future;
    std::list<std::string>::iterator lru_it;
    std::string tenant;
  };

  /// Drop one cache entry (mutex held). Waiters holding shared_future
  /// copies are unaffected.
  void erase_entry_locked(std::map<std::string, Entry>::iterator it);

  mutable std::mutex mutex_;
  std::list<std::string> lru_;  ///< front = most recently used
  std::map<std::string, Entry> entries_;
  std::map<std::string, std::size_t> tenant_counts_;
  std::size_t capacity_;
  SessionQuota quota_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> quota_evictions_{0};
  std::atomic<std::uint64_t> quota_rejections_{0};
};

/// Run the pipeline prefix once, uncached (what a session miss executes).
ProfileArtifacts run_profile_pipeline(const ProfileKey& key);

}  // namespace xmem::core
