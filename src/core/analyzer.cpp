#include "core/analyzer.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <unordered_map>

namespace xmem::core {

const char* to_string(Phase phase) {
  switch (phase) {
    case Phase::kModelLoad: return "model_load";
    case Phase::kDataLoader: return "dataloader";
    case Phase::kForward: return "forward";
    case Phase::kBackward: return "backward";
    case Phase::kOptimizerStep: return "optimizer_step";
    case Phase::kOther: return "other";
  }
  return "?";
}

namespace {

using trace::EventKind;
using trace::TraceEvent;

bool name_starts_with(const std::string& name, const char* prefix) {
  return name.rfind(prefix, 0) == 0;
}

/// Sorted, non-overlapping interval list with containment lookup.
struct WindowIndex {
  std::vector<Window> windows;

  void add(util::TimeUs start, util::TimeUs end) {
    windows.push_back(Window{start, end});
  }
  void finalize() {
    std::sort(windows.begin(), windows.end(),
              [](const Window& a, const Window& b) { return a.start < b.start; });
  }
  /// Index of the window containing `t`, or -1. Assumes non-overlap (true
  /// for our window classes: ops are leaves; annotations of one class never
  /// overlap each other).
  int find(util::TimeUs t) const {
    auto it = std::upper_bound(
        windows.begin(), windows.end(), t,
        [](util::TimeUs value, const Window& w) { return value < w.start; });
    if (it == windows.begin()) return -1;
    --it;
    if (it->contains(t)) return static_cast<int>(it - windows.begin());
    return -1;
  }
};

struct OpWindow {
  util::TimeUs start = 0;
  util::TimeUs end = 0;
  std::string name;
  std::string component;
  std::int64_t seq = -1;
};

}  // namespace

Analyzer::Output Analyzer::analyze(const trace::Trace& trace) const {
  Output out;
  MemoryTimeline& tl = out.timeline;
  AnalyzerStats& stats = out.stats;

  // Pass 1: index span events. Build the id->event map for parent lookup
  // and classify annotation windows by name.
  std::unordered_map<std::int64_t, const TraceEvent*> by_id;
  for (const TraceEvent& e : trace.events) {
    if (e.kind != EventKind::kCpuInstantEvent) by_id[e.id] = &e;
  }

  WindowIndex iter_index, zg_index, step_index, dl_index, bw_index;
  WindowIndex op_index;
  std::vector<OpWindow> ops;
  Window model_load{0, 0};
  util::TimeUs trace_end = 0;

  for (const TraceEvent& e : trace.events) {
    trace_end = std::max(trace_end, e.end_ts());
    switch (e.kind) {
      case EventKind::kUserAnnotation: {
        if (name_starts_with(e.name, trace::annotation::kProfilerStep)) {
          iter_index.add(e.ts, e.end_ts());
        } else if (name_starts_with(e.name, trace::annotation::kZeroGrad)) {
          zg_index.add(e.ts, e.end_ts());
        } else if (name_starts_with(e.name, trace::annotation::kOptimizerStep)) {
          step_index.add(e.ts, e.end_ts());
        } else if (name_starts_with(e.name, trace::annotation::kDataLoaderNext)) {
          dl_index.add(e.ts, e.end_ts());
        } else if (name_starts_with(e.name, trace::annotation::kBackward)) {
          bw_index.add(e.ts, e.end_ts());
        } else if (name_starts_with(e.name, trace::annotation::kModelToDevice)) {
          model_load = Window{e.ts, e.end_ts()};
        }
        break;
      }
      case EventKind::kCpuOp: {
        OpWindow op;
        op.start = e.ts;
        op.end = e.end_ts();
        op.name = e.name;
        op.seq = e.seq;
        // The component is the nearest python_function / annotation parent.
        auto parent = by_id.find(e.parent_id);
        if (parent != by_id.end()) op.component = parent->second->name;
        op_index.add(op.start, op.end);
        ops.push_back(std::move(op));
        break;
      }
      default:
        break;
    }
  }
  iter_index.finalize();
  zg_index.finalize();
  step_index.finalize();
  dl_index.finalize();
  bw_index.finalize();
  // Op windows were appended in start order already (the profiler emits
  // spans at open time), but sort defensively and keep `ops` aligned.
  std::sort(ops.begin(), ops.end(),
            [](const OpWindow& a, const OpWindow& b) { return a.start < b.start; });
  op_index.windows.clear();
  for (const OpWindow& op : ops) op_index.add(op.start, op.end);
  // Already sorted: finalize() would be a no-op, but keep the invariant.
  op_index.finalize();

  if (iter_index.windows.empty()) {
    throw std::runtime_error(
        "Analyzer: trace has no ProfilerStep iteration markers");
  }

  // Pass 2: reconstruct block lifecycles from the memory event stream,
  // handling address reuse (an address can host many blocks over time).
  struct OpenBlock {
    std::int64_t size = 0;
    util::TimeUs alloc_ts = 0;
    bool seen_before = false;
  };
  std::unordered_map<std::uint64_t, OpenBlock> open;
  std::unordered_map<std::uint64_t, bool> address_seen;

  struct RawBlock {
    std::uint64_t addr = 0;
    std::int64_t size = 0;
    util::TimeUs alloc_ts = 0;
    util::TimeUs free_ts = -1;
  };
  std::vector<RawBlock> raw_blocks;

  for (const TraceEvent& e : trace.events) {
    if (e.kind != EventKind::kCpuInstantEvent) continue;
    ++stats.memory_events;
    if (e.bytes > 0) {
      if (address_seen[e.addr]) ++stats.address_reuses;
      address_seen[e.addr] = true;
      open[e.addr] = OpenBlock{e.bytes, e.ts, false};
    } else if (e.bytes < 0) {
      auto it = open.find(e.addr);
      if (it == open.end()) {
        ++stats.unmatched_frees;
        continue;
      }
      raw_blocks.push_back(
          RawBlock{e.addr, it->second.size, it->second.alloc_ts, e.ts});
      ++stats.matched_pairs;
      open.erase(it);
    }
  }
  for (const auto& [addr, ob] : open) {
    raw_blocks.push_back(RawBlock{addr, ob.size, ob.alloc_ts, -1});
    ++stats.persistent_blocks;
  }
  std::sort(raw_blocks.begin(), raw_blocks.end(),
            [](const RawBlock& a, const RawBlock& b) {
              if (a.alloc_ts != b.alloc_ts) return a.alloc_ts < b.alloc_ts;
              return a.addr < b.addr;
            });

  // Pass 3: operator attribution + phase/iteration tagging; filter blocks
  // with no operator context (script-level temporaries).
  std::int64_t next_id = 1;
  for (const RawBlock& rb : raw_blocks) {
    const int op_slot = op_index.find(rb.alloc_ts);
    if (op_slot < 0) {
      ++stats.filtered_blocks;
      continue;
    }
    MemoryBlock block;
    block.id = next_id++;
    block.size = rb.size;
    block.alloc_ts = rb.alloc_ts;
    block.free_ts = rb.free_ts;
    block.op_name = ops[static_cast<std::size_t>(op_slot)].name;
    block.component = ops[static_cast<std::size_t>(op_slot)].component;
    block.seq = ops[static_cast<std::size_t>(op_slot)].seq;
    block.iteration = iter_index.find(rb.alloc_ts);

    if (model_load.contains(rb.alloc_ts)) {
      block.phase = Phase::kModelLoad;
    } else if (dl_index.find(rb.alloc_ts) >= 0) {
      block.phase = Phase::kDataLoader;
    } else if (bw_index.find(rb.alloc_ts) >= 0) {
      block.phase = Phase::kBackward;
    } else if (step_index.find(rb.alloc_ts) >= 0) {
      block.phase = Phase::kOptimizerStep;
    } else if (block.iteration >= 0) {
      block.phase = Phase::kForward;
    } else {
      block.phase = Phase::kOther;
    }
    tl.blocks.push_back(std::move(block));
  }

  tl.iterations = iter_index.windows;
  tl.zero_grads = zg_index.windows;
  tl.optimizer_steps = step_index.windows;
  tl.dataloaders = dl_index.windows;
  tl.backwards = bw_index.windows;
  tl.model_load = model_load;
  tl.trace_end = trace_end;

  for (const MemoryBlock& b : tl.blocks) {
    if (b.phase == Phase::kModelLoad) tl.param_sizes.push_back(b.size);
  }
  std::sort(tl.param_sizes.begin(), tl.param_sizes.end());
  tl.param_sizes.erase(
      std::unique(tl.param_sizes.begin(), tl.param_sizes.end()),
      tl.param_sizes.end());
  return out;
}

}  // namespace xmem::core
