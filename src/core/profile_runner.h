// CPU profiling front-end: runs the first N iterations of a job on the CPU
// backend with the Profiler attached and returns the trace — the paper's
// "Profiling" stage feeding the xMem pipeline (Figure 4, step 1).
#pragma once

#include <cstdint>

#include "fw/model.h"
#include "fw/types.h"
#include "trace/trace.h"

namespace xmem::core {

struct ProfileOptions {
  int iterations = 3;  ///< the paper profiles the initial 3 iterations
  fw::ZeroGradPlacement placement = fw::ZeroGradPlacement::kPos1IterStart;
  std::uint64_t seed = 1;
};

/// Execute the job on the CPU backend and capture its profiler trace.
trace::Trace profile_on_cpu(const fw::ModelDescriptor& model,
                            fw::OptimizerKind optimizer,
                            const ProfileOptions& options = {});

}  // namespace xmem::core
