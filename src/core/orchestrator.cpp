#include "core/orchestrator.h"

#include <algorithm>

namespace xmem::core {

namespace {

/// End of the window (from a sorted list) containing `t`; -1 if none.
util::TimeUs window_end_containing(const std::vector<Window>& windows,
                                   util::TimeUs t) {
  for (const Window& w : windows) {
    if (w.contains(t)) return w.end;
    if (w.start > t) break;
  }
  return -1;
}

/// End of the first window starting strictly after `t`; -1 if none.
util::TimeUs next_window_end_after(const std::vector<Window>& windows,
                                   util::TimeUs t) {
  for (const Window& w : windows) {
    if (w.start > t) return w.end;
  }
  return -1;
}

bool size_matches_param(const std::vector<std::int64_t>& sorted_param_sizes,
                        std::int64_t size) {
  return std::binary_search(sorted_param_sizes.begin(),
                            sorted_param_sizes.end(), size);
}

}  // namespace

Orchestrator::Output Orchestrator::orchestrate(
    const MemoryTimeline& timeline, const OrchestratorConfig& config) const {
  Output out;
  out.sequence.blocks = timeline.blocks;

  for (MemoryBlock& block : out.sequence.blocks) {
    switch (block.phase) {
      case Phase::kModelLoad: {
        // Rule 1: parameters live for the whole job (model.to(device)).
        if (config.rule_params && !block.persistent()) {
          block.free_ts = -1;
          ++out.stats.params_pinned;
        }
        break;
      }
      case Phase::kDataLoader: {
        // Rule 2: batch data dies when the loop variables are rebound — the
        // paper's "direct deallocation event, e.g. the dataloader.__next__
        // annotation" — or, for the last iteration, at the iteration
        // boundary marker.
        if (!config.rule_batch) break;
        const util::TimeUs next_dl_end =
            next_window_end_after(timeline.dataloaders, block.alloc_ts);
        const util::TimeUs iter_end =
            window_end_containing(timeline.iterations, block.alloc_ts);
        const util::TimeUs cutoff = next_dl_end >= 0 ? next_dl_end : iter_end;
        if (cutoff < 0) break;
        if (block.persistent() || block.free_ts > cutoff) {
          block.free_ts = cutoff - 1;
          ++out.stats.batch_truncated;
        }
        break;
      }
      case Phase::kBackward: {
        // Rule 4: gradients (backward blocks whose size matches a model
        // parameter and which outlive their backward pass) are released by
        // the next optimizer.zero_grad(), not wherever the CPU heap
        // happened to reclaim them.
        if (!config.rule_gradients) break;
        if (!size_matches_param(timeline.param_sizes, block.size)) break;
        const util::TimeUs bw_end =
            window_end_containing(timeline.backwards, block.alloc_ts);
        const bool outlives_backward =
            block.persistent() || (bw_end >= 0 && block.free_ts > bw_end);
        if (!outlives_backward) break;  // transient chain block, rule 3
        const util::TimeUs zg_end =
            next_window_end_after(timeline.zero_grads, block.alloc_ts);
        const util::TimeUs old_free = block.free_ts;
        // No later zero_grad (final iteration): the gradient survives to
        // the end of the analyzed window.
        block.free_ts = zg_end >= 0 ? zg_end - 1 : -1;
        if (block.free_ts != old_free) ++out.stats.gradients_retimed;
        break;
      }
      case Phase::kOptimizerStep: {
        // Rule 5: persistent optimizer state from the first-iteration step
        // is pinned for the job lifetime. (Transient step workspaces were
        // freed inside the step window and stay untouched.)
        if (!config.rule_optimizer_state) break;
        if (block.persistent()) {
          ++out.stats.optimizer_states_pinned;
        }
        break;
      }
      case Phase::kForward:
      case Phase::kOther:
        // Rule 3: activation lifecycles from the CPU trace are kept.
        break;
    }
  }

  // Flatten into a replayable event stream.
  auto& events = out.sequence.events;
  events.reserve(out.sequence.blocks.size() * 2);
  for (const MemoryBlock& block : out.sequence.blocks) {
    events.push_back(
        OrchestratedEvent{block.alloc_ts, block.id, block.size, true});
    if (!block.persistent()) {
      events.push_back(
          OrchestratedEvent{block.free_ts, block.id, block.size, false});
    }
  }
  std::sort(events.begin(), events.end(), orchestrated_event_order);
  return out;
}

}  // namespace xmem::core
