#include "server/server.h"

#include "sched/fleet_planner.h"

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <future>
#include <list>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace xmem::server {

namespace {

/// What one executed data request produced. Shared (never mutated) between
/// the executor, every coalesced waiter, and the reply cache; each waiter
/// stamps its own envelope id around it, so coalescing is invisible in the
/// reply bytes apart from being faster.
struct Outcome {
  bool ok = true;
  std::string type;     ///< "sweep" | "plan" | "fleet"
  util::Json payload;   ///< the report (include_timings=false)
  std::string code;     ///< error code when !ok
  std::string message;  ///< error message when !ok
};
using OutcomePtr = std::shared_ptr<const Outcome>;

struct Job {
  std::string key;
  std::string type;  ///< "sweep" | "plan" | "fleet"
  core::EstimateRequest sweep;
  core::PlanRequest plan;
  sched::FleetRequest fleet;
  std::promise<OutcomePtr> promise;
};

void close_if_open(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// Wind down a connection WITHOUT discarding the replies already written.
/// A plain close(2) with unread input pending aborts the stream on Linux
/// (AF_UNIX included): the peer reads ECONNRESET and the error frame we
/// just sent may never arrive. So: half-close the write side (the peer
/// sees EOF after our last frame), then swallow the remaining input until
/// the peer's EOF — bounded, so a firehosing client cannot pin the thread.
/// The caller closes the fd afterwards; this runs with the fd still
/// registered in conn_fds, so stop() can SHUT_RD it to unblock the drain.
void drain_before_close(int fd) {
  ::shutdown(fd, SHUT_WR);
  constexpr std::size_t kMaxDrainBytes = std::size_t{4} * 1024 * 1024;
  char sink[4096];
  std::size_t drained = 0;
  while (drained < kMaxDrainBytes) {
    const ssize_t n = ::read(fd, sink, sizeof(sink));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    drained += static_cast<std::size_t>(n);
  }
}

}  // namespace

util::Json ServerStats::to_json() const {
  util::Json json = util::Json::object();
  json["frames_received"] = util::Json(static_cast<std::int64_t>(
      frames_received));
  json["requests_total"] = util::Json(static_cast<std::int64_t>(
      requests_total));
  json["data_requests"] = util::Json(static_cast<std::int64_t>(data_requests));
  json["executed"] = util::Json(static_cast<std::int64_t>(executed));
  json["coalesced"] = util::Json(static_cast<std::int64_t>(coalesced_total()));
  json["coalesced_inflight"] = util::Json(static_cast<std::int64_t>(
      coalesced_inflight));
  json["reply_cache_hits"] = util::Json(static_cast<std::int64_t>(
      reply_cache_hits));
  json["server_busy"] = util::Json(static_cast<std::int64_t>(busy_rejections));
  json["shutdown_rejections"] = util::Json(static_cast<std::int64_t>(
      shutdown_rejections));
  json["protocol_errors"] = util::Json(static_cast<std::int64_t>(
      protocol_errors));
  json["request_errors"] = util::Json(static_cast<std::int64_t>(
      request_errors));
  json["quota_rejections"] = util::Json(static_cast<std::int64_t>(
      quota_rejections));
  json["connections_accepted"] = util::Json(static_cast<std::int64_t>(
      connections_accepted));
  json["connections_rejected"] = util::Json(static_cast<std::int64_t>(
      connections_rejected));
  json["queue_depth"] = util::Json(static_cast<std::int64_t>(queue_depth));
  json["queue_capacity"] = util::Json(static_cast<std::int64_t>(
      queue_capacity));
  json["executing"] = util::Json(static_cast<std::int64_t>(executing));
  json["active_connections"] = util::Json(static_cast<std::int64_t>(
      active_connections));
  json["profiles_run"] = util::Json(static_cast<std::int64_t>(profiles_run));
  json["profile_cache_hits"] = util::Json(static_cast<std::int64_t>(
      profile_cache_hits));
  json["profile_entries"] = util::Json(static_cast<std::int64_t>(
      profile_entries));
  json["quota_evictions"] = util::Json(static_cast<std::int64_t>(
      quota_evictions));
  util::Json tenant_json = util::Json::object();
  for (const auto& [tenant, resident] : tenants) {
    tenant_json[tenant] = util::Json(static_cast<std::int64_t>(resident));
  }
  json["tenants"] = std::move(tenant_json);
  return json;
}

struct Server::Impl {
  explicit Impl(Server& server)
      : owner(server), service(make_options(server.config_)) {}

  static core::ServiceOptions make_options(const ServerConfig& config) {
    core::ServiceOptions options;
    options.threads = config.service_threads == 0 ? 1 : config.service_threads;
    options.profile_cache_capacity = config.profile_cache_capacity;
    options.session_quota = config.session_quota;
    return options;
  }

  const ServerConfig& config() const { return owner.config_; }

  Server& owner;
  core::EstimationService service;

  // --- sockets + lifecycle --------------------------------------------------
  int listen_fd = -1;
  int stop_pipe_rd = -1;  ///< one-way latch: written once, never drained
  int stop_pipe_wr = -1;
  std::thread accept_thread;
  std::mutex stop_mutex;
  bool stopped = false;

  // --- connections ----------------------------------------------------------
  mutable std::mutex conn_mutex;
  std::map<std::uint64_t, std::thread> conn_threads;
  std::vector<std::thread> finished_conn_threads;
  std::set<int> conn_fds;
  std::uint64_t next_conn_id = 0;

  // --- dispatch: queue + coalescing + reply cache ---------------------------
  mutable std::mutex dispatch_mutex;
  std::condition_variable queue_cv;
  std::deque<Job> queue;
  bool draining = false;  ///< set under dispatch_mutex during stop()
  std::map<std::string, std::shared_future<OutcomePtr>> inflight;
  std::list<std::string> reply_lru;  ///< front = most recently used
  std::map<std::string,
           std::pair<OutcomePtr, std::list<std::string>::iterator>>
      reply_cache;
  std::vector<std::thread> workers;

  // --- counters -------------------------------------------------------------
  std::atomic<std::uint64_t> frames_received{0};
  std::atomic<std::uint64_t> requests_total{0};
  std::atomic<std::uint64_t> data_requests{0};
  std::atomic<std::uint64_t> executed{0};
  std::atomic<std::uint64_t> coalesced_inflight{0};
  std::atomic<std::uint64_t> reply_cache_hits{0};
  std::atomic<std::uint64_t> busy_rejections{0};
  std::atomic<std::uint64_t> shutdown_rejections{0};
  std::atomic<std::uint64_t> protocol_errors{0};
  std::atomic<std::uint64_t> request_errors{0};
  std::atomic<std::uint64_t> quota_rejections{0};
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_rejected{0};
  std::atomic<std::size_t> executing{0};

  void accept_loop();
  void connection_loop(int fd, std::uint64_t id);
  std::string handle_payload(const std::string& payload,
                             bool& stop_after_reply);
  util::Json dispatch_data_request(const util::Json& envelope,
                                   const util::Json* id,
                                   const std::string& type);
  void worker_loop();
  OutcomePtr execute_job(Job& job);
  ServerStats snapshot();
};

Server::Server(ServerConfig config) : config_(std::move(config)) {
  if (config_.workers == 0) config_.workers = 1;
  impl_ = std::make_unique<Impl>(*this);
}

Server::~Server() {
  if (started_.load()) stop();
}

core::EstimationService& Server::service() { return impl_->service; }

void Server::start() {
  if (started_.load()) throw std::runtime_error("server already started");
  if (config_.socket_path.empty()) {
    throw std::runtime_error("server: socket_path is required");
  }

  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (config_.socket_path.size() >= sizeof(address.sun_path)) {
    throw std::runtime_error("server: socket path too long for AF_UNIX: " +
                             config_.socket_path);
  }
  std::memcpy(address.sun_path, config_.socket_path.c_str(),
              config_.socket_path.size() + 1);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    throw std::runtime_error("server: pipe() failed: " +
                             std::string(std::strerror(errno)));
  }
  impl_->stop_pipe_rd = pipe_fds[0];
  impl_->stop_pipe_wr = pipe_fds[1];

  impl_->listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (impl_->listen_fd < 0) {
    const std::string reason = std::strerror(errno);
    close_if_open(impl_->stop_pipe_rd);
    close_if_open(impl_->stop_pipe_wr);
    throw std::runtime_error("server: socket() failed: " + reason);
  }
  // The daemon owns its path: a leftover file from a crashed run would
  // otherwise make every restart fail with EADDRINUSE.
  ::unlink(config_.socket_path.c_str());
  if (::bind(impl_->listen_fd, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(impl_->listen_fd, 64) != 0) {
    const std::string reason = std::strerror(errno);
    close_if_open(impl_->listen_fd);
    close_if_open(impl_->stop_pipe_rd);
    close_if_open(impl_->stop_pipe_wr);
    throw std::runtime_error("server: cannot listen on " +
                             config_.socket_path + ": " + reason);
  }

  started_.store(true);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
  impl_->accept_thread = std::thread([this] { impl_->accept_loop(); });
}

void Server::run() {
  if (!started_.load()) start();
  // Block until the stop latch is written — by a signal handler through
  // request_stop(), a `shutdown` request, or another thread. The pipe is
  // polled, never read: level-triggered readability doubles as the latch
  // for the accept loop.
  pollfd wait_fd{impl_->stop_pipe_rd, POLLIN, 0};
  while (::poll(&wait_fd, 1, -1) < 0 && errno == EINTR) {
  }
  stop();
}

void Server::request_stop() {
  stop_flag_.store(true);
  if (impl_->stop_pipe_wr >= 0) {
    // Async-signal-safe: one write(2), nothing else. Repeated calls just
    // add bytes to a pipe nobody drains.
    const char byte = 's';
    [[maybe_unused]] const ssize_t n = ::write(impl_->stop_pipe_wr, &byte, 1);
  }
}

void Server::stop() {
  std::lock_guard<std::mutex> stop_lock(impl_->stop_mutex);
  if (impl_->stopped || !started_.load()) return;
  impl_->stopped = true;

  // 1. Latch + stop accepting. The accept loop polls the stop pipe and
  //    exits; no new connections arrive.
  request_stop();
  if (impl_->accept_thread.joinable()) impl_->accept_thread.join();
  close_if_open(impl_->listen_fd);
  ::unlink(config_.socket_path.c_str());

  // 2. Drain the data plane: workers finish every queued and executing
  //    request (their promises are fulfilled, so every waiting connection
  //    gets a real reply), then exit. New enqueues are refused with
  //    `shutting_down` from here on.
  {
    std::lock_guard<std::mutex> lock(impl_->dispatch_mutex);
    impl_->draining = true;
  }
  impl_->queue_cv.notify_all();
  for (std::thread& worker : impl_->workers) {
    if (worker.joinable()) worker.join();
  }
  impl_->workers.clear();

  // 3. Unblock connection readers (SHUT_RD: pending reply writes still
  //    flush) and join every connection thread.
  {
    std::lock_guard<std::mutex> lock(impl_->conn_mutex);
    for (const int fd : impl_->conn_fds) ::shutdown(fd, SHUT_RD);
  }
  while (true) {
    std::map<std::uint64_t, std::thread> active;
    std::vector<std::thread> finished;
    {
      std::lock_guard<std::mutex> lock(impl_->conn_mutex);
      active.swap(impl_->conn_threads);
      finished.swap(impl_->finished_conn_threads);
    }
    if (active.empty() && finished.empty()) break;
    for (auto& [id, thread] : active) {
      if (thread.joinable()) thread.join();
    }
    for (std::thread& thread : finished) {
      if (thread.joinable()) thread.join();
    }
  }

  close_if_open(impl_->stop_pipe_rd);
  close_if_open(impl_->stop_pipe_wr);
  started_.store(false);
}

ServerStats Server::stats() const { return impl_->snapshot(); }

ServerStats Server::Impl::snapshot() {
  ServerStats stats;
  stats.frames_received = frames_received.load();
  stats.requests_total = requests_total.load();
  stats.data_requests = data_requests.load();
  stats.executed = executed.load();
  stats.coalesced_inflight = coalesced_inflight.load();
  stats.reply_cache_hits = reply_cache_hits.load();
  stats.busy_rejections = busy_rejections.load();
  stats.shutdown_rejections = shutdown_rejections.load();
  stats.protocol_errors = protocol_errors.load();
  stats.request_errors = request_errors.load();
  stats.quota_rejections = quota_rejections.load();
  stats.connections_accepted = connections_accepted.load();
  stats.connections_rejected = connections_rejected.load();
  {
    std::lock_guard<std::mutex> lock(dispatch_mutex);
    stats.queue_depth = queue.size();
  }
  stats.queue_capacity = config().max_queue;
  stats.executing = executing.load();
  {
    std::lock_guard<std::mutex> lock(conn_mutex);
    stats.active_connections = conn_fds.size();
  }
  const core::ProfileSession& session = service.session();
  stats.profiles_run = session.misses();
  stats.profile_cache_hits = session.hits();
  stats.profile_entries = session.size();
  stats.quota_evictions = session.quota_evictions();
  stats.tenants = session.resident_by_tenant();
  return stats;
}

// ---------------------------------------------------------------------------
// accept + connection plumbing

void Server::Impl::accept_loop() {
  pollfd fds[2] = {{listen_fd, POLLIN, 0}, {stop_pipe_rd, POLLIN, 0}};
  while (true) {
    fds[0].revents = 0;
    fds[1].revents = 0;
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & POLLIN) != 0) break;  // stop latch written
    if ((fds[0].revents & POLLIN) == 0) continue;

    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket gone: stop() is tearing down
    }

    std::lock_guard<std::mutex> lock(conn_mutex);
    // Reap connection threads that already finished so a long-lived daemon
    // does not accumulate joinable corpses.
    for (std::thread& done : finished_conn_threads) {
      if (done.joinable()) done.join();
    }
    finished_conn_threads.clear();

    if (conn_fds.size() >= config().max_connections) {
      connections_rejected.fetch_add(1);
      write_frame(fd, make_error_envelope(
                          nullptr, kErrBusy,
                          "connection limit reached (" +
                              std::to_string(config().max_connections) +
                              " active); retry later")
                          .dump());
      ::close(fd);
      continue;
    }

    connections_accepted.fetch_add(1);
    const std::uint64_t id = next_conn_id++;
    conn_fds.insert(fd);
    conn_threads.emplace(
        id, std::thread([this, fd, id] { connection_loop(fd, id); }));
  }
}

void Server::Impl::connection_loop(int fd, std::uint64_t id) {
  std::string payload;
  while (true) {
    std::uint64_t announced = 0;
    const FrameStatus status =
        read_frame(fd, payload, config().max_frame_bytes, &announced);
    if (status == FrameStatus::kClosed) break;
    if (status == FrameStatus::kTruncated) {
      // EOF mid-frame: nothing to answer to; close quietly.
      protocol_errors.fetch_add(1);
      break;
    }
    if (status == FrameStatus::kOversized) {
      protocol_errors.fetch_add(1);
      write_frame(fd, make_error_envelope(
                          nullptr, kErrFrameTooLarge,
                          "frame announces " + std::to_string(announced) +
                              " bytes; limit is " +
                              std::to_string(config().max_frame_bytes))
                          .dump());
      break;  // the byte stream is no longer framed: close
    }
    if (status == FrameStatus::kError) break;

    frames_received.fetch_add(1);
    bool stop_after_reply = false;
    const std::string reply = handle_payload(payload, stop_after_reply);
    if (!write_frame(fd, reply)) break;
    if (stop_after_reply) owner.request_stop();
  }

  drain_before_close(fd);
  std::lock_guard<std::mutex> lock(conn_mutex);
  // Erase + close under the lock: once closed, the kernel may hand the same
  // fd NUMBER to the next accept, and a stale erase would then knock the
  // new connection out of conn_fds (stop() could never unblock it).
  conn_fds.erase(fd);
  ::close(fd);
  const auto it = conn_threads.find(id);
  if (it != conn_threads.end()) {
    // Move our own handle to the finished list; stop() or the next accept
    // joins it. (Moving a std::thread does not affect the running thread.)
    finished_conn_threads.push_back(std::move(it->second));
    conn_threads.erase(it);
  }
}

// ---------------------------------------------------------------------------
// request handling

std::string Server::Impl::handle_payload(const std::string& payload,
                                         bool& stop_after_reply) {
  util::Json envelope;
  try {
    envelope = util::Json::parse(payload);
  } catch (const std::exception& error) {
    protocol_errors.fetch_add(1);
    return make_error_envelope(nullptr, kErrParse,
                               std::string("payload is not valid JSON: ") +
                                   error.what())
        .dump();
  }
  if (!envelope.is_object()) {
    protocol_errors.fetch_add(1);
    return make_error_envelope(nullptr, kErrBadRequest,
                               "envelope must be a JSON object")
        .dump();
  }

  const util::Json* id = envelope.contains("id") ? &envelope.at("id") : nullptr;
  const std::string type = envelope.get_string_or("type", "");
  requests_total.fetch_add(1);

  if (type == "ping") {
    return make_ok_envelope(id, type).dump();
  }
  if (type == "stats") {
    util::Json reply = make_ok_envelope(id, type);
    reply["stats"] = snapshot().to_json();
    return reply.dump();
  }
  if (type == "shutdown") {
    stop_after_reply = true;
    util::Json reply = make_ok_envelope(id, type);
    reply["draining"] = util::Json(true);
    return reply.dump();
  }
  if (type == "sweep" || type == "plan" || type == "fleet") {
    return dispatch_data_request(envelope, id, type).dump();
  }
  request_errors.fetch_add(1);
  return make_error_envelope(
             id, kErrUnsupportedType,
             "unknown request type '" + type +
                 "'; expected sweep|plan|fleet|stats|ping|shutdown")
      .dump();
}

util::Json Server::Impl::dispatch_data_request(const util::Json& envelope,
                                               const util::Json* id,
                                               const std::string& type) {
  data_requests.fetch_add(1);

  // Parse + canonicalize on the connection thread, so malformed documents
  // are rejected immediately (with the service's own actionable message)
  // and never occupy a queue slot. Canonicalization (from_json -> to_json)
  // means cosmetically different but semantically identical requests share
  // one coalescing key.
  Job job;
  job.type = type;
  try {
    if (!envelope.contains("request")) {
      throw std::invalid_argument("envelope: missing \"request\" document");
    }
    const std::string tenant = envelope.get_string_or("tenant", "");
    std::string canonical;
    if (type == "plan") {
      job.plan = core::PlanRequest::from_json(envelope.at("request"));
      if (!tenant.empty()) job.plan.tenant = tenant;
      canonical = job.plan.to_json().dump();
    } else if (type == "fleet") {
      job.fleet = sched::FleetRequest::from_json(envelope.at("request"));
      if (!tenant.empty()) job.fleet.tenant = tenant;
      canonical = job.fleet.to_json().dump();
    } else {
      job.sweep = core::EstimateRequest::from_json(envelope.at("request"));
      if (!tenant.empty()) job.sweep.tenant = tenant;
      canonical = job.sweep.to_json().dump();
    }
    job.key = type + '|' + canonical;
  } catch (const std::exception& error) {
    request_errors.fetch_add(1);
    return make_error_envelope(id, kErrBadRequest, error.what());
  }

  std::shared_future<OutcomePtr> future;
  OutcomePtr ready;
  {
    std::unique_lock<std::mutex> lock(dispatch_mutex);
    const auto inflight_it = inflight.find(job.key);
    if (inflight_it != inflight.end()) {
      coalesced_inflight.fetch_add(1);
      future = inflight_it->second;
    } else if (const auto cache_it = reply_cache.find(job.key);
               cache_it != reply_cache.end()) {
      reply_cache_hits.fetch_add(1);
      reply_lru.splice(reply_lru.begin(), reply_lru, cache_it->second.second);
      ready = cache_it->second.first;
    } else if (draining) {
      shutdown_rejections.fetch_add(1);
      return make_error_envelope(
          id, kErrShuttingDown,
          "server is draining; not accepting new work");
    } else if (queue.size() >= config().max_queue) {
      busy_rejections.fetch_add(1);
      return make_error_envelope(
          id, kErrBusy,
          "work queue full (" + std::to_string(queue.size()) +
              " pending); retry later");
    } else {
      future = job.promise.get_future().share();
      inflight.emplace(job.key, future);
      queue.push_back(std::move(job));
      queue_cv.notify_one();
    }
  }

  const OutcomePtr outcome = ready ? ready : future.get();
  if (!outcome->ok) {
    return make_error_envelope(id, outcome->code, outcome->message);
  }
  util::Json reply = make_ok_envelope(id, outcome->type);
  reply["report"] = outcome->payload;
  return reply;
}

// ---------------------------------------------------------------------------
// workers

void Server::Impl::worker_loop() {
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(dispatch_mutex);
      queue_cv.wait(lock, [this] { return draining || !queue.empty(); });
      if (queue.empty()) {
        if (draining) return;
        continue;
      }
      job = std::move(queue.front());
      queue.pop_front();
      executing.fetch_add(1);
    }

    const OutcomePtr outcome = execute_job(job);

    {
      std::lock_guard<std::mutex> lock(dispatch_mutex);
      executing.fetch_sub(1);
      inflight.erase(job.key);
      // Cache successes only: errors are cheap to recompute and may be
      // transient (quota freed, a model registered later).
      if (outcome->ok && config().reply_cache_capacity > 0 &&
          reply_cache.find(job.key) == reply_cache.end()) {
        reply_lru.push_front(job.key);
        reply_cache.emplace(job.key,
                            std::make_pair(outcome, reply_lru.begin()));
        while (reply_cache.size() > config().reply_cache_capacity) {
          reply_cache.erase(reply_lru.back());
          reply_lru.pop_back();
        }
      }
    }
    job.promise.set_value(outcome);
  }
}

OutcomePtr Server::Impl::execute_job(Job& job) {
  if (config().handler_delay_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(config().handler_delay_ms));
  }
  auto outcome = std::make_shared<Outcome>();
  outcome->type = job.type;
  try {
    if (job.type == "plan") {
      outcome->payload =
          service.plan(job.plan).to_json(/*include_timings=*/false);
    } else if (job.type == "fleet") {
      outcome->payload =
          service.fleet(job.fleet).to_json(/*include_timings=*/false);
    } else {
      outcome->payload =
          service.sweep(job.sweep).to_json(/*include_timings=*/false);
    }
    executed.fetch_add(1);
  } catch (const core::QuotaExceededError& error) {
    quota_rejections.fetch_add(1);
    request_errors.fetch_add(1);
    outcome->ok = false;
    outcome->code = kErrQuota;
    outcome->message = error.what();
  } catch (const std::invalid_argument& error) {
    request_errors.fetch_add(1);
    outcome->ok = false;
    outcome->code = kErrBadRequest;
    outcome->message = error.what();
  } catch (const std::exception& error) {
    request_errors.fetch_add(1);
    outcome->ok = false;
    outcome->code = kErrInternal;
    outcome->message = error.what();
  }
  return outcome;
}

}  // namespace xmem::server
