#include "server/client.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

namespace xmem::server {

Client::Client(const std::string& socket_path, int timeout_ms) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(address.sun_path)) {
    throw TransportError("client: bad socket path: '" + socket_path + "'");
  }
  std::memcpy(address.sun_path, socket_path.c_str(), socket_path.size() + 1);

  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw TransportError(std::string("client: socket() failed: ") +
                         std::strerror(errno));
  }
  if (timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                sizeof(address)) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw TransportError("client: cannot connect to " + socket_path + ": " +
                         reason);
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

util::Json Client::call(const util::Json& envelope) {
  if (!write_frame(fd_, envelope.dump())) {
    throw TransportError("client: send failed: " +
                         std::string(std::strerror(errno)));
  }
  std::string payload;
  const FrameStatus status = read_frame(fd_, payload, max_frame_bytes_);
  if (status != FrameStatus::kOk) {
    throw TransportError(std::string("client: no reply (") +
                         to_string(status) + ")");
  }
  return util::Json::parse(payload);
}

util::Json Client::request_envelope(const std::string& type,
                                    const util::Json* request,
                                    const std::string& tenant) {
  util::Json envelope = util::Json::object();
  envelope["type"] = util::Json(type);
  envelope["id"] = util::Json(static_cast<std::int64_t>(next_id_++));
  if (!tenant.empty()) envelope["tenant"] = util::Json(tenant);
  if (request != nullptr) envelope["request"] = *request;
  return envelope;
}

util::Json Client::call_checked(const util::Json& envelope) {
  util::Json reply = call(envelope);
  if (!reply.is_object() || !reply.contains("ok")) {
    throw TransportError("client: malformed reply envelope: " + reply.dump());
  }
  if (!reply.at("ok").as_bool()) {
    std::string code = "internal_error";
    std::string message = "(no error document)";
    if (reply.contains("error") && reply.at("error").is_object()) {
      code = reply.at("error").get_string_or("code", code);
      message = reply.at("error").get_string_or("message", message);
    }
    throw RequestError(code, message);
  }
  return reply;
}

util::Json Client::sweep(const util::Json& request, const std::string& tenant) {
  return call_checked(request_envelope("sweep", &request, tenant))
      .at("report");
}

util::Json Client::plan(const util::Json& request, const std::string& tenant) {
  return call_checked(request_envelope("plan", &request, tenant)).at("report");
}

util::Json Client::fleet(const util::Json& request, const std::string& tenant) {
  return call_checked(request_envelope("fleet", &request, tenant)).at("report");
}

util::Json Client::stats() {
  return call_checked(request_envelope("stats", nullptr, std::string()))
      .at("stats");
}

void Client::ping() {
  call_checked(request_envelope("ping", nullptr, std::string()));
}

void Client::shutdown_server() {
  call_checked(request_envelope("shutdown", nullptr, std::string()));
}

bool Client::send_bytes(const std::string& bytes) {
  return write_all(fd_, bytes.data(), bytes.size());
}

bool Client::send_frame(std::string_view payload) {
  return write_frame(fd_, payload);
}

void Client::half_close() { ::shutdown(fd_, SHUT_WR); }

FrameStatus Client::read_reply(std::string& payload) {
  return read_frame(fd_, payload, max_frame_bytes_);
}

}  // namespace xmem::server
