#include "server/protocol.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

namespace xmem::server {

namespace {

/// Read exactly `size` bytes. Returns the byte count actually read: `size`
/// on success, less on EOF, and -1 on transport error.
std::ptrdiff_t read_exact(int fd, void* data, std::size_t size) {
  auto* out = static_cast<char*>(data);
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::read(fd, out + done, size - done);
    if (n == 0) break;  // EOF
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    done += static_cast<std::size_t>(n);
  }
  return static_cast<std::ptrdiff_t>(done);
}

}  // namespace

const char* to_string(FrameStatus status) {
  switch (status) {
    case FrameStatus::kOk: return "ok";
    case FrameStatus::kClosed: return "closed";
    case FrameStatus::kTruncated: return "truncated";
    case FrameStatus::kOversized: return "oversized";
    case FrameStatus::kError: return "error";
  }
  return "unknown";
}

std::string encode_frame(std::string_view payload) {
  const auto size = static_cast<std::uint32_t>(payload.size());
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  frame.push_back(static_cast<char>((size >> 24) & 0xFF));
  frame.push_back(static_cast<char>((size >> 16) & 0xFF));
  frame.push_back(static_cast<char>((size >> 8) & 0xFF));
  frame.push_back(static_cast<char>(size & 0xFF));
  frame.append(payload);
  return frame;
}

bool write_all(int fd, const void* data, std::size_t size) {
  const auto* in = static_cast<const char*>(data);
  std::size_t done = 0;
  while (done < size) {
    // MSG_NOSIGNAL: a peer that closed mid-reply must surface as EPIPE,
    // not kill the daemon with SIGPIPE.
    const ssize_t n = ::send(fd, in + done, size - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

bool write_frame(int fd, std::string_view payload) {
  const std::string frame = encode_frame(payload);
  return write_all(fd, frame.data(), frame.size());
}

FrameStatus read_frame(int fd, std::string& payload,
                       std::size_t max_frame_bytes,
                       std::uint64_t* announced_bytes) {
  payload.clear();
  unsigned char header[kFrameHeaderBytes];
  const std::ptrdiff_t header_read = read_exact(fd, header, sizeof(header));
  if (header_read < 0) return FrameStatus::kError;
  if (header_read == 0) return FrameStatus::kClosed;
  if (header_read < static_cast<std::ptrdiff_t>(sizeof(header))) {
    return FrameStatus::kTruncated;
  }

  const std::uint64_t size = (std::uint64_t{header[0]} << 24) |
                             (std::uint64_t{header[1]} << 16) |
                             (std::uint64_t{header[2]} << 8) |
                             std::uint64_t{header[3]};
  if (announced_bytes != nullptr) *announced_bytes = size;
  if (size > max_frame_bytes) return FrameStatus::kOversized;

  payload.resize(static_cast<std::size_t>(size));
  if (size == 0) return FrameStatus::kOk;
  const std::ptrdiff_t body_read = read_exact(fd, payload.data(),
                                              payload.size());
  if (body_read < 0) {
    payload.clear();
    return FrameStatus::kError;
  }
  if (body_read < static_cast<std::ptrdiff_t>(size)) {
    payload.clear();
    return FrameStatus::kTruncated;
  }
  return FrameStatus::kOk;
}

util::Json make_ok_envelope(const util::Json* id, const std::string& type) {
  util::Json envelope = util::Json::object();
  if (id != nullptr) envelope["id"] = *id;
  envelope["ok"] = util::Json(true);
  envelope["type"] = util::Json(type);
  return envelope;
}

util::Json make_error_envelope(const util::Json* id, const std::string& code,
                               const std::string& message) {
  util::Json envelope = util::Json::object();
  if (id != nullptr) envelope["id"] = *id;
  envelope["ok"] = util::Json(false);
  util::Json error = util::Json::object();
  error["code"] = util::Json(code);
  error["message"] = util::Json(message);
  envelope["error"] = std::move(error);
  return envelope;
}

}  // namespace xmem::server
