// Client side of the `xmem serve` wire protocol (server/protocol.h).
//
// Two layers:
//   * typed calls — sweep()/plan()/fleet()/stats()/ping()/shutdown_server()
//     frame an
//     envelope, send it, and unwrap the reply; an `ok: false` reply raises a
//     RequestError carrying the server's stable error code and message.
//   * raw access — send_bytes()/half_close()/read_reply() for tests that
//     must put arbitrary (malformed) bytes on the wire and observe exactly
//     how the server answers. The fuzz suite lives on this layer.
//
// A Client owns one connected socket; it is NOT thread-safe (one client per
// thread — they are cheap). Receive and send timeouts default to 30 s so a
// wedged server fails a test instead of hanging it.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

#include "server/protocol.h"
#include "util/json.h"

namespace xmem::server {

/// Socket-level failure: connect refused, timeout, server closed mid-frame.
class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The server answered with an `ok: false` envelope.
class RequestError : public std::runtime_error {
 public:
  RequestError(std::string code, const std::string& message)
      : std::runtime_error(code + ": " + message), code_(std::move(code)) {}
  /// Stable error code (protocol.h kErr* constants).
  const std::string& code() const { return code_; }

 private:
  std::string code_;
};

class Client {
 public:
  /// Connect to the daemon's Unix-domain socket. Throws TransportError if
  /// the connect fails. `timeout_ms` bounds every send and receive.
  explicit Client(const std::string& socket_path, int timeout_ms = 30000);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send `envelope` as one frame and return the parsed reply envelope
  /// (ok or error alike). Throws TransportError on socket/frame failure.
  util::Json call(const util::Json& envelope);

  /// Typed helpers: build the envelope, call(), unwrap. An `ok: false`
  /// reply raises RequestError{code, message}; the ok replies return the
  /// `report` / `stats` payload.
  util::Json sweep(const util::Json& request,
                   const std::string& tenant = std::string());
  util::Json plan(const util::Json& request,
                  const std::string& tenant = std::string());
  util::Json fleet(const util::Json& request,
                   const std::string& tenant = std::string());
  util::Json stats();
  void ping();
  /// Ask the daemon to drain and exit. Returns once the server acknowledged.
  void shutdown_server();

  // --- raw layer (protocol tests / fuzzing) ---------------------------------

  /// Put arbitrary bytes on the wire, unframed. False on transport error.
  bool send_bytes(const std::string& bytes);
  /// Send a correctly framed payload. False on transport error.
  bool send_frame(std::string_view payload);
  /// Half-close the write side (SHUT_WR): tells the server "no more input"
  /// while leaving the read side open for its remaining replies.
  void half_close();
  /// Read one reply frame; kClosed on server close. kError covers receive
  /// timeouts (EAGAIN) as well as hard socket errors.
  FrameStatus read_reply(std::string& payload);

  int fd() const { return fd_; }

 private:
  util::Json request_envelope(const std::string& type,
                              const util::Json* request,
                              const std::string& tenant);
  /// call() + raise RequestError on ok:false; returns the ok envelope.
  util::Json call_checked(const util::Json& envelope);

  int fd_ = -1;
  std::size_t max_frame_bytes_ = kDefaultMaxFrameBytes;
  std::uint64_t next_id_ = 1;
};

}  // namespace xmem::server
