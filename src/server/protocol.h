// Wire protocol for `xmem serve`: length-prefixed JSON frames over a local
// stream socket (docs/SERVER.md).
//
// A frame is a 4-byte big-endian unsigned payload length followed by that
// many bytes of UTF-8 JSON. The payload is an *envelope* object:
//
//   request:  {"type": "sweep"|"plan"|"stats"|"ping"|"shutdown",
//              "id": <any JSON, echoed back>, "tenant": "name",
//              "request": {...sweep/plan/fleet document...}}
//   reply:    {"id": ..., "ok": true,  "type": ..., "report"/"stats": {...}}
//   error:    {"id": ..., "ok": false, "error": {"code": "...",
//                                                "message": "..."}}
//
// The framing layer is deliberately dumb: it never inspects the payload, it
// bounds the length prefix (an oversized prefix is an attack or a bug, not
// a request), and it reports EOF precisely enough for the server to tell a
// clean close (between frames) from a truncated one (mid-frame). Every
// malformed input maps to an actionable error frame or a clean close —
// never a crash or a hang — which tests/server_protocol_test.cpp fuzzes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/json.h"

namespace xmem::server {

/// Length-prefix width. The prefix is big-endian (network order).
inline constexpr std::size_t kFrameHeaderBytes = 4;

/// Default ceiling on a single frame's payload (requests and reports are
/// a few KiB; 16 MiB leaves room for curve-laden reports).
inline constexpr std::size_t kDefaultMaxFrameBytes =
    std::size_t{16} * 1024 * 1024;

/// Outcome of reading one frame from a blocking socket.
enum class FrameStatus {
  kOk,         ///< payload filled
  kClosed,     ///< clean EOF on a frame boundary
  kTruncated,  ///< EOF mid-header or mid-payload
  kOversized,  ///< length prefix exceeds the configured maximum
  kError,      ///< transport error (errno-level, including timeouts)
};

const char* to_string(FrameStatus status);

/// Serialize `payload` as header + bytes.
std::string encode_frame(std::string_view payload);

/// Write the whole buffer, retrying short writes and EINTR. False on error.
bool write_all(int fd, const void* data, std::size_t size);

/// Frame `payload` and write it. False on transport error.
bool write_frame(int fd, std::string_view payload);

/// Blocking read of one frame into `payload` (cleared first). On
/// kOversized, `payload` is left empty and the oversized length is stored
/// in `announced_bytes` if non-null; the connection is no longer framed
/// and must be closed after an error frame.
FrameStatus read_frame(int fd, std::string& payload,
                       std::size_t max_frame_bytes = kDefaultMaxFrameBytes,
                       std::uint64_t* announced_bytes = nullptr);

// --- envelope helpers -------------------------------------------------------

/// Error codes a reply envelope can carry. Stable strings: clients branch
/// on them (docs/SERVER.md documents the full table).
inline constexpr const char* kErrParse = "parse_error";
inline constexpr const char* kErrBadRequest = "bad_request";
inline constexpr const char* kErrUnsupportedType = "unsupported_type";
inline constexpr const char* kErrBusy = "server_busy";
inline constexpr const char* kErrQuota = "quota_exceeded";
inline constexpr const char* kErrShuttingDown = "shutting_down";
inline constexpr const char* kErrFrameTooLarge = "frame_too_large";
inline constexpr const char* kErrInternal = "internal_error";

/// Reply skeletons. `id` may be null (no echo — e.g. the request never
/// parsed far enough to have one).
util::Json make_ok_envelope(const util::Json* id, const std::string& type);
util::Json make_error_envelope(const util::Json* id, const std::string& code,
                               const std::string& message);

}  // namespace xmem::server
