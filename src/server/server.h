// `xmem serve`: a long-running estimation daemon over core::EstimationService.
//
// The profile-once/estimate-many service (PR 3) answers what-if questions
// orders of magnitude cheaper than a cold pipeline run, but every CLI
// invocation so far rebuilt the caches from nothing. The server is the
// missing process boundary: one resident EstimationService, a Unix-domain
// stream socket speaking length-prefixed JSON frames (server/protocol.h),
// and the admission machinery a shared frontend needs —
//
//   * request coalescing: identical in-flight (type, tenant, canonical
//     request) work collapses onto one execution, the same way
//     ProfileSession already dedups in-flight profiles; completed replies
//     park in a bounded LRU so an identical later request is served the
//     byte-identical report without re-executing. Replies are therefore
//     deterministic: every client asking a given question gets the bytes a
//     cold serial execution would have produced.
//   * backpressure: the work queue is bounded. A request that would
//     overflow it is answered with an explicit `server_busy` error frame —
//     never queued unboundedly, never silently dropped.
//   * per-tenant quotas: the request's `tenant` field is charged for its
//     profile-LRU footprint (core::SessionQuota); in hard mode an
//     over-quota tenant gets an actionable `quota_exceeded` error.
//   * graceful shutdown: stop() stops accepting, drains every queued and
//     executing request (their clients get real replies), then closes
//     connections. request_stop() is async-signal-safe for SIGTERM.
//   * observability: a `stats` endpoint exposes cache hits, profiles run,
//     coalescing counters, queue depths, and per-tenant residency.
//
// Control-plane requests (ping/stats/shutdown) are answered inline on the
// connection thread so they work even when the work queue is saturated;
// data-plane requests (sweep/plan/fleet) go through admission + the worker pool.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "core/estimation_service.h"
#include "server/protocol.h"

namespace xmem::server {

struct ServerConfig {
  /// Filesystem path of the Unix-domain socket. A stale socket file at the
  /// path is unlinked before bind (the daemon owns its path).
  std::string socket_path;
  /// Worker threads executing sweep/plan/fleet requests.
  std::size_t workers = 4;
  /// Data-plane requests allowed to wait for a worker; one more may be
  /// executing per worker. Beyond this: `server_busy` error frames.
  std::size_t max_queue = 64;
  /// Concurrent client connections; excess connects are answered with a
  /// `server_busy` frame and closed.
  std::size_t max_connections = 64;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Completed replies kept for identical later requests (LRU entries).
  std::size_t reply_cache_capacity = 256;
  /// EstimationService knobs (threads inside ONE request's fan-out; the
  /// worker pool above already parallelizes across requests).
  std::size_t service_threads = 1;
  std::size_t profile_cache_capacity = core::ProfileSession::kDefaultCapacity;
  /// Per-tenant profile-LRU quota (0 = off; see core::SessionQuota).
  core::SessionQuota session_quota;
  /// Test/bench aid: artificial per-request execution delay, so admission
  /// and coalescing races can be pinned deterministically.
  int handler_delay_ms = 0;
};

/// Counter snapshot (the `stats` endpoint renders exactly this).
struct ServerStats {
  std::uint64_t frames_received = 0;    ///< well-framed payloads read
  std::uint64_t requests_total = 0;     ///< parsed envelopes, any type
  std::uint64_t data_requests = 0;      ///< sweep + plan arrivals
  std::uint64_t executed = 0;           ///< sweep/plan/fleet actually run
  std::uint64_t coalesced_inflight = 0; ///< collapsed onto an in-flight twin
  std::uint64_t reply_cache_hits = 0;   ///< served a completed twin's reply
  std::uint64_t busy_rejections = 0;    ///< server_busy error frames sent
  std::uint64_t shutdown_rejections = 0;///< arrived while draining
  std::uint64_t protocol_errors = 0;    ///< unparseable/oversized/truncated
  std::uint64_t request_errors = 0;     ///< well-framed but failed requests
  std::uint64_t quota_rejections = 0;   ///< hard-quota rejections
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_rejected = 0;
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  std::size_t executing = 0;
  std::size_t active_connections = 0;
  std::uint64_t profiles_run = 0;        ///< session misses == CPU profiles
  std::uint64_t profile_cache_hits = 0;  ///< session hits
  std::size_t profile_entries = 0;       ///< resident LRU entries
  std::uint64_t quota_evictions = 0;     ///< soft-quota self-evictions
  std::map<std::string, std::size_t> tenants;  ///< resident profiles/tenant

  /// In-flight + completed collapses: every duplicate of an already-asked
  /// question lands in exactly one of the two buckets.
  std::uint64_t coalesced_total() const {
    return coalesced_inflight + reply_cache_hits;
  }
  util::Json to_json() const;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();  ///< stops gracefully if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + spawn the accept loop and worker pool. Throws
  /// std::runtime_error on socket errors (path too long, bind failure).
  void start();

  /// start() (unless already started), then block until request_stop() (a
  /// signal, a `shutdown` request, or another thread), then stop(). The
  /// daemon entry point.
  void run();

  /// Async-signal-safe stop trigger: flips the stop latch and wakes run().
  /// Safe to call from a signal handler or any thread, multiple times.
  void request_stop();

  /// Graceful shutdown: stop accepting, drain queued + executing requests
  /// (every waiting client gets its reply), close connections, join all
  /// threads, unlink the socket. Idempotent; callable from any thread
  /// except a connection/worker thread (those use request_stop()).
  void stop();

  bool started() const { return started_.load(); }
  bool stop_requested() const { return stop_flag_.load(); }

  ServerStats stats() const;
  const ServerConfig& config() const { return config_; }
  core::EstimationService& service();

 private:
  struct Impl;

  ServerConfig config_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stop_flag_{false};
  std::unique_ptr<Impl> impl_;
};

}  // namespace xmem::server
