// Model description: modules, operators, and their memory recipes.
//
// A ModelDescriptor is built *for a specific batch size* — every byte count
// in it is concrete. The zoo builders (src/models) compute these from real
// architecture math (conv shape arithmetic, attention/MLP dimensions,
// vocabulary sizes), so parameter counts and activation footprints track the
// published models.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fw/types.h"

namespace xmem::fw {

/// One forward operator and the memory recipe for it and its backward twin.
/// Backend-dependent fields come in {cpu, gpu} pairs; the executor picks one
/// side, and the difference between the sides is exactly the CPU→GPU
/// divergence the paper's pipeline has to survive (footnote 3).
struct OpSpec {
  std::string name;  ///< aten-style kernel name, e.g. "aten::convolution"

  std::int64_t output_bytes = 0;  ///< forward output activation
  /// Output retained for backward ("saved tensor"). If false the output dies
  /// as soon as the next op has consumed it.
  bool output_saved = true;
  /// Extra saved-for-backward payload (softmax probabilities, BN statistics,
  /// dropout masks ...), per backend.
  std::int64_t saved_bytes_cpu = 0;
  std::int64_t saved_bytes_gpu = 0;
  /// Transient forward workspace (im2col tiles vs cuDNN workspaces ...),
  /// allocated at op start and freed at op end.
  std::int64_t workspace_cpu = 0;
  std::int64_t workspace_gpu = 0;
  /// Transient backward workspace.
  std::int64_t bwd_workspace_cpu = 0;
  std::int64_t bwd_workspace_gpu = 0;
  /// Gradient w.r.t. this op's *input*, allocated by the backward op; forms
  /// the moving gradient chain of backpropagation.
  std::int64_t grad_input_bytes = 0;
  /// True on the primary op of a parameter-owning module: its backward
  /// allocates the module's parameter gradients (conv_backward, addmm
  /// backward, ...).
  bool allocates_param_grads = false;
  /// Approximate work, used only by the duration model (timestamps).
  double gflops = 0.0;
  /// cuDNN benchmark-mode candidates: on GPU, iteration 1 probes algorithm
  /// choices with trial workspaces of this total size (freed immediately,
  /// but the caching allocator retains the grown segments). Zero for ops
  /// without algorithm search.
  std::int64_t benchmark_trial_bytes_gpu = 0;
};

/// A named module (layer): parameters plus the forward op sequence.
struct ModuleSpec {
  std::string name;  ///< hierarchical, e.g. "features.3.Conv2d"
  std::string kind;  ///< "Conv2d", "Linear", "Attention", ...
  std::vector<TensorDesc> params;
  std::vector<OpSpec> ops;

  std::int64_t param_bytes() const {
    std::int64_t total = 0;
    for (const auto& p : params) total += p.bytes();
    return total;
  }
};

struct ModelDescriptor {
  std::string name;
  ModelFamily family = ModelFamily::kCnn;
  int year = 2020;  ///< publication year; drives attention-impl selection
  int batch_size = 0;
  std::vector<ModuleSpec> modules;  ///< forward order; backward walks reversed

  std::int64_t input_bytes = 0;   ///< one batch of inputs (already × batch)
  std::int64_t target_bytes = 0;  ///< one batch of labels

  /// Extra persistent bytes allocated at model-load time (e.g. the fp16
  /// parameter mirror of a mixed-precision variant; see models/amp.h).
  std::int64_t extra_persistent_bytes = 0;
  /// Gradient bytes per parameter element relative to the parameter dtype
  /// (1.0 for fp32 training; 0.5 under autocast where grads are fp16).
  double grad_bytes_scale = 1.0;

  // Model-level scalar facts used by the data-driven baselines as features.
  std::int64_t seq_len = 0;      ///< transformers only
  std::int64_t hidden_dim = 0;   ///< transformers only
  std::int64_t vocab_size = 0;   ///< transformers only

  std::int64_t param_bytes() const {
    std::int64_t total = 0;
    for (const auto& m : modules) total += m.param_bytes();
    return total;
  }
  std::int64_t param_count() const { return param_bytes() / 4; }  // f32 zoo

  /// Total forward activation bytes retained for backward on the given
  /// backend (saved outputs + extra saved payloads).
  std::int64_t saved_activation_bytes(Backend backend) const;

  /// Largest single transient workspace on the given backend.
  std::int64_t max_workspace_bytes(Backend backend) const;
};

}  // namespace xmem::fw
