// Training-loop executor.
//
// Drives N iterations of the canonical PyTorch training loop (the paper's
// [34]) against a MemoryEnv, reproducing the allocation/deallocation
// structure of real training:
//
//   model.to(device)                       — persistent parameter blocks
//   for batch in loader:
//       [POS1] optimizer.zero_grad()       — old gradients die here ...
//       forward                            — activations, saved-for-backward,
//                                            transient workspaces
//       [POS0] optimizer.zero_grad()       — ... or here (Figure 1)
//       loss.backward()                    — gradient chain, parameter grads,
//                                            saved activations released
//       optimizer.step()                   — lazy state allocation (iter 1),
//                                            transient update buffers
//
// Backend divergences (the reason xMem's Orchestrator exists) are encoded
// here and in the OpSpec cpu/gpu fields:
//   * CPU frees gradients and stale batch blocks lazily (end of iteration,
//     Python-GC style); CUDA frees them at the exact semantic point.
//   * CUDA runs cuDNN benchmark-mode trial workspaces in iteration 1.
//   * Workspace/saved sizes differ per OpSpec cpu/gpu fields.
//   * CUDA transient sizes get per-run multiplicative jitter (algo choice
//     varies run to run); CPU profiling is more repeatable.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "fw/memory_env.h"
#include "fw/model.h"
#include "fw/optimizer.h"
#include "fw/profiler.h"
#include "fw/types.h"
#include "util/rng.h"
#include "util/sim_clock.h"

namespace xmem::fw {

struct ExecOptions {
  int iterations = 3;  ///< paper default for profiling; ground truth uses more
  ZeroGradPlacement placement = ZeroGradPlacement::kPos1IterStart;
  std::uint64_t seed = 1;  ///< per-run jitter stream
  /// Multiplicative jitter amplitude on CUDA transient workspaces (cuDNN /
  /// cuBLAS algorithm choice varies run to run). CPU runs use a tenth of it.
  double workspace_jitter = 0.06;
  double duration_jitter = 0.10;
  /// Model cuDNN benchmark-mode trial allocations in iteration 1 (CUDA).
  /// Off by default, matching torch.backends.cudnn.benchmark = False; the
  /// ablation benches enable it to study a GPU-only divergence xMem cannot
  /// observe from a CPU trace.
  bool cudnn_benchmark = false;
  /// Emit Python-script-level noise allocations on CPU (filtered out by a
  /// correct Analyzer; kept for realism and to exercise that filter).
  bool script_noise = true;
};

class TrainingExecutor {
 public:
  /// `profiler` may be null (ground-truth runs record no trace).
  TrainingExecutor(const ModelDescriptor& model, OptimizerKind optimizer,
                   Backend backend, MemoryEnv& env, util::SimClock& clock,
                   Profiler* profiler, ExecOptions options);

  /// Run the configured number of iterations. Throws OomError if the device
  /// cannot hold the job; leaves persistent state live (job killed, process
  /// memory snapshot intact), which is what the harness wants to observe.
  void run();

 private:
  struct SavedActivation {
    std::uint64_t handle = 0;
    std::int64_t bytes = 0;
  };
  struct OpRuntime {
    const ModuleSpec* module = nullptr;
    const OpSpec* op = nullptr;
    std::int64_t seq = -1;
    std::vector<SavedActivation> saved;  ///< blocks released by its backward
  };

  bool is_cuda() const { return backend_ == Backend::kCuda; }
  std::int64_t jittered(std::int64_t bytes, double amplitude);
  /// Workspace size for `op`: jittered once per (run, op) — cuDNN/cuBLAS
  /// pick an algorithm per shape per process, so the size is stable within
  /// a run but varies across runs.
  std::int64_t op_workspace(const OpSpec& op, std::int64_t bytes,
                            double amplitude);
  util::TimeUs op_duration(const OpSpec& op) const;
  void advance_op(const OpSpec& op, double fraction);

  void model_to_device();
  void run_iteration(int iteration);
  void load_batch(int iteration);
  void zero_grad(int iteration);
  void forward(int iteration);
  void backward(int iteration);
  void optimizer_step(int iteration);
  void end_of_iteration_gc();
  void emit_script_noise(std::int64_t approx_bytes);

  const ModelDescriptor& model_;
  OptimizerKind optimizer_;
  Backend backend_;
  MemoryEnv& env_;
  util::SimClock& clock_;
  Profiler* profiler_;
  ExecOptions options_;
  util::Rng rng_;

  // Persistent blocks.
  std::vector<std::uint64_t> param_handles_;
  std::vector<std::uint64_t> optimizer_state_handles_;
  bool optimizer_state_allocated_ = false;

  // Parameter gradients: one handle per (module, param), 0 when absent.
  struct GradSlot {
    std::size_t module_index = 0;
    TensorDesc param;
    std::uint64_t handle = 0;
  };
  std::vector<GradSlot> grad_slots_;
  // CPU lazy-free queue: handles whose free events are deferred to the end
  // of the current iteration (Python GC batching divergence).
  std::vector<std::uint64_t> deferred_frees_;

  // Current batch blocks; stale ones from the previous iteration.
  std::uint64_t batch_input_ = 0;
  std::uint64_t batch_target_ = 0;
  std::uint64_t stale_batch_input_ = 0;
  std::uint64_t stale_batch_target_ = 0;

  // Forward bookkeeping, rebuilt every iteration.
  std::vector<OpRuntime> tape_;
  std::uint64_t loss_live_ = 0;  ///< loss scalar block, consumed by backward
  std::int64_t next_seq_ = 0;

  // Stable ordinal per OpSpec for per-run workspace jitter.
  std::unordered_map<const OpSpec*, std::uint64_t> op_ordinals_;
};

}  // namespace xmem::fw
