#include "fw/executor.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <string>

#include "fw/backend.h"
#include "util/bytes.h"

namespace xmem::fw {

namespace {

// Strip "aten::" so "aten::convolution" -> "convolution".
std::string base_op_name(const std::string& aten_name) {
  constexpr const char* kPrefix = "aten::";
  if (aten_name.rfind(kPrefix, 0) == 0) {
    return aten_name.substr(6);
  }
  return aten_name;
}

std::string backward_node_name(const OpSpec& op) {
  std::string base = base_op_name(op.name);
  if (!base.empty()) base[0] = static_cast<char>(std::toupper(base[0]));
  return "autograd::node: " + base + "Backward0";
}

std::string backward_op_name(const OpSpec& op) {
  return op.name + "_backward";
}

}  // namespace

TrainingExecutor::TrainingExecutor(const ModelDescriptor& model,
                                   OptimizerKind optimizer, Backend backend,
                                   MemoryEnv& env, util::SimClock& clock,
                                   Profiler* profiler, ExecOptions options)
    : model_(model),
      optimizer_(optimizer),
      backend_(backend),
      env_(env),
      clock_(clock),
      profiler_(profiler),
      options_(options),
      rng_(util::derive_seed(options.seed, is_cuda() ? 0xC0DA : 0xC700)) {
  std::uint64_t ordinal = 0;
  for (std::size_t mi = 0; mi < model_.modules.size(); ++mi) {
    for (const auto& param : model_.modules[mi].params) {
      grad_slots_.push_back(GradSlot{mi, param, 0});
    }
    for (const auto& op : model_.modules[mi].ops) {
      op_ordinals_[&op] = ordinal++;
    }
  }
}

std::int64_t TrainingExecutor::op_workspace(const OpSpec& op,
                                            std::int64_t bytes,
                                            double amplitude) {
  if (bytes <= 0) return 0;
  // One deterministic draw per (run seed, op): the library chooses its
  // algorithm (and thus workspace size) once per shape per process.
  std::uint64_t stream = util::derive_seed(
      options_.seed, 0x5EED0000ULL + op_ordinals_.at(&op));
  const double unit =
      static_cast<double>(util::splitmix64(stream) >> 11) * 0x1.0p-53;
  const double factor = 1.0 + amplitude * (2.0 * unit - 1.0);
  return std::max<std::int64_t>(
      256, static_cast<std::int64_t>(static_cast<double>(bytes) * factor));
}

std::int64_t TrainingExecutor::jittered(std::int64_t bytes, double amplitude) {
  if (bytes <= 0) return 0;
  const double factor = rng_.jitter(amplitude);
  return std::max<std::int64_t>(256, static_cast<std::int64_t>(
                                         static_cast<double>(bytes) * factor));
}

util::TimeUs TrainingExecutor::op_duration(const OpSpec& op) const {
  // Coarse roofline: fixed launch/dispatch overhead + compute term +
  // bandwidth term. CUDA ~12 TFLOP/s and ~400 GB/s; CPU (MKL, many cores)
  // ~0.4 TFLOP/s and ~22 GB/s. Only relative magnitudes matter: timestamps
  // drive NVML sampling and attribution windows, not any numeric result.
  const double bytes_touched = static_cast<double>(op.output_bytes);
  double us = 0.0;
  if (is_cuda()) {
    us = 8.0 + op.gflops * backend::kGpuUsPerGflop +
         bytes_touched / backend::kGpuBytesPerUs;
  } else {
    us = 45.0 + op.gflops * backend::kCpuUsPerGflop +
         bytes_touched / backend::kCpuBytesPerUs;
  }
  return static_cast<util::TimeUs>(us);
}

void TrainingExecutor::advance_op(const OpSpec& op, double fraction) {
  const double jitter =
      1.0 + options_.duration_jitter * (2.0 * rng_.next_double() - 1.0);
  const auto dur = static_cast<util::TimeUs>(
      static_cast<double>(op_duration(op)) * fraction * jitter);
  clock_.advance(std::max<util::TimeUs>(1, dur));
  env_.tick();
}

void TrainingExecutor::emit_script_noise(std::int64_t approx_bytes) {
  if (!options_.script_noise || is_cuda() || approx_bytes <= 0) return;
  // Python-side temporaries (collation lists, logging strings): allocated at
  // script level, never inside an operator window, and short-lived. A
  // correct Analyzer must drop these from the GPU-relevant event set.
  const int count = 1 + static_cast<int>(rng_.next_below(3));
  for (int i = 0; i < count; ++i) {
    const std::int64_t bytes = jittered(approx_bytes, 0.5);
    const std::uint64_t handle = env_.alloc(bytes);
    clock_.advance(2);
    env_.free(handle);
  }
}

void TrainingExecutor::model_to_device() {
  SpanGuard span(profiler_, trace::EventKind::kUserAnnotation,
                 trace::annotation::kModelToDevice);
  for (const auto& module : model_.modules) {
    if (module.params.empty()) continue;
    // Module.to traverses submodules, so parameter allocations carry their
    // module context — the per-layer attribution §6.2 builds on.
    SpanGuard module_span(profiler_, trace::EventKind::kPythonFunction,
                          "nn.Module: " + module.name);
    SpanGuard op_span(profiler_, trace::EventKind::kCpuOp, "aten::empty");
    for (const auto& param : module.params) {
      param_handles_.push_back(env_.alloc(param.bytes()));
      clock_.advance(1);
    }
    clock_.advance(2);
    env_.tick();
  }
  if (model_.extra_persistent_bytes > 0) {
    // Mixed-precision parameter mirror (models/amp.h): one persistent
    // block created while the model moves to the device.
    SpanGuard op_span(profiler_, trace::EventKind::kCpuOp, "aten::_to_copy");
    param_handles_.push_back(env_.alloc(model_.extra_persistent_bytes));
    clock_.advance(2);
    env_.tick();
  }
}

void TrainingExecutor::load_batch(int iteration) {
  SpanGuard span(profiler_, trace::EventKind::kUserAnnotation,
                 trace::annotation::kDataLoaderNext);
  if (iteration == 0) {
    emit_script_noise(std::min<std::int64_t>(model_.input_bytes / 8,
                                             util::kMiB));
  }
  {
    SpanGuard op_span(profiler_, trace::EventKind::kCpuOp, "aten::stack");
    clock_.advance(5);
    batch_input_ = env_.alloc(model_.input_bytes);
    env_.tick();
  }
  {
    SpanGuard op_span(profiler_, trace::EventKind::kCpuOp, "aten::stack");
    clock_.advance(2);
    batch_target_ = env_.alloc(model_.target_bytes);
    env_.tick();
  }
  // The Python names were just rebound, so last iteration's device copies
  // die now. CUDA releases storage at the rebind; the CPU heap sees the
  // frees only at end-of-iteration GC (lazy reclamation divergence).
  if (stale_batch_input_ != 0) {
    if (is_cuda()) {
      env_.free(stale_batch_input_);
      env_.free(stale_batch_target_);
    } else {
      deferred_frees_.push_back(stale_batch_input_);
      deferred_frees_.push_back(stale_batch_target_);
    }
    stale_batch_input_ = 0;
    stale_batch_target_ = 0;
  }
}

void TrainingExecutor::zero_grad(int iteration) {
  (void)iteration;
  SpanGuard span(profiler_, trace::EventKind::kUserAnnotation,
                 std::string(trace::annotation::kZeroGrad) + "#" +
                     to_string(optimizer_) + ".zero_grad");
  clock_.advance(3);
  for (auto& slot : grad_slots_) {
    if (slot.handle == 0) continue;
    if (is_cuda()) {
      env_.free(slot.handle);
    } else {
      deferred_frees_.push_back(slot.handle);
    }
    slot.handle = 0;
  }
  clock_.advance(2);
  env_.tick();
}

void TrainingExecutor::forward(int iteration) {
  SpanGuard fwd_span(profiler_, trace::EventKind::kPythonFunction,
                     "nn.Module: " + model_.name);
  tape_.clear();
  std::uint64_t chain_prev = 0;  // unsaved output awaiting consumption

  for (std::size_t mi = 0; mi < model_.modules.size(); ++mi) {
    const ModuleSpec& module = model_.modules[mi];
    SpanGuard mod_span(profiler_, trace::EventKind::kPythonFunction,
                       "nn.Module: " + module.name);
    if (iteration == 0) emit_script_noise(32 * util::kKiB);

    for (const OpSpec& op : module.ops) {
      OpRuntime rt;
      rt.module = &module;
      rt.op = &op;
      rt.seq = next_seq_++;

      SpanGuard op_span(profiler_, trace::EventKind::kCpuOp, op.name, rt.seq);

      // cuDNN benchmark mode: iteration 1 probes algorithms with trial
      // workspaces. They are freed immediately, but the caching allocator
      // keeps the grown segments — a reserved-memory residue the CPU trace
      // cannot see directly.
      if (is_cuda() && iteration == 0 && options_.cudnn_benchmark &&
          op.benchmark_trial_bytes_gpu > 0) {
        const std::uint64_t trial = env_.alloc(
            jittered(op.benchmark_trial_bytes_gpu, options_.workspace_jitter));
        advance_op(op, 0.15);
        env_.free(trial);
      }

      const std::int64_t ws =
          is_cuda() ? op.workspace_gpu : op.workspace_cpu;
      const double ws_amp =
          is_cuda() ? options_.workspace_jitter
                    : options_.workspace_jitter * backend::kCpuJitterScale;
      std::uint64_t ws_handle = 0;
      if (ws > 0) ws_handle = env_.alloc(op_workspace(op, ws, ws_amp));

      advance_op(op, 0.5);

      std::uint64_t out_handle = 0;
      if (op.output_bytes > 0) out_handle = env_.alloc(op.output_bytes);
      const std::int64_t saved_extra =
          is_cuda() ? op.saved_bytes_gpu : op.saved_bytes_cpu;
      std::uint64_t saved_handle = 0;
      if (saved_extra > 0) saved_handle = env_.alloc(saved_extra);

      advance_op(op, 0.5);

      if (ws_handle != 0) env_.free(ws_handle);
      // The previous op's unsaved output has now been consumed.
      if (chain_prev != 0) {
        env_.free(chain_prev);
        chain_prev = 0;
      }

      if (out_handle != 0) {
        if (op.output_saved) {
          rt.saved.push_back(SavedActivation{out_handle, op.output_bytes});
        } else {
          chain_prev = out_handle;
        }
      }
      if (saved_handle != 0) {
        rt.saved.push_back(SavedActivation{saved_handle, saved_extra});
      }
      tape_.push_back(std::move(rt));
    }
  }
  // Whatever unsaved block remains is the loss value; backward consumes it.
  loss_live_ = chain_prev;
}

void TrainingExecutor::backward(int iteration) {
  (void)iteration;
  SpanGuard bw_span(profiler_, trace::EventKind::kUserAnnotation,
                    trace::annotation::kBackward);
  if (loss_live_ != 0) {
    env_.free(loss_live_);
    loss_live_ = 0;
  }
  std::uint64_t grad_chain = 0;

  for (auto it = tape_.rbegin(); it != tape_.rend(); ++it) {
    OpRuntime& rt = *it;
    const OpSpec& op = *rt.op;
    SpanGuard node_span(profiler_, trace::EventKind::kPythonFunction,
                        backward_node_name(op));
    SpanGuard op_span(profiler_, trace::EventKind::kCpuOp,
                      backward_op_name(op), rt.seq);

    const std::int64_t ws =
        is_cuda() ? op.bwd_workspace_gpu : op.bwd_workspace_cpu;
    const double ws_amp =
        is_cuda() ? options_.workspace_jitter
                  : options_.workspace_jitter * backend::kCpuJitterScale;
    std::uint64_t ws_handle = 0;
    // Backward workspaces get their own per-run draw (ordinal offset).
    if (ws > 0) ws_handle = env_.alloc(op_workspace(op, ws, ws_amp));

    advance_op(op, 0.85);

    if (op.allocates_param_grads) {
      // conv_backward / addmm backward materializes parameter gradients.
      const ModuleSpec* module = rt.module;
      for (auto& slot : grad_slots_) {
        if (&model_.modules[slot.module_index] != module) continue;
        if (slot.handle == 0) {
          const auto grad_bytes = static_cast<std::int64_t>(
              static_cast<double>(slot.param.bytes()) *
              model_.grad_bytes_scale);
          slot.handle = env_.alloc(std::max<std::int64_t>(grad_bytes, 4));
        }
      }
    }

    std::uint64_t grad_input = 0;
    if (op.grad_input_bytes > 0) grad_input = env_.alloc(op.grad_input_bytes);

    advance_op(op, 0.85);

    if (ws_handle != 0) env_.free(ws_handle);
    // Saved-for-backward tensors of this op are no longer needed.
    for (const SavedActivation& saved : rt.saved) env_.free(saved.handle);
    rt.saved.clear();
    // The incoming upstream gradient has been consumed.
    if (grad_input != 0) {
      if (grad_chain != 0) env_.free(grad_chain);
      grad_chain = grad_input;
    }
  }
  if (grad_chain != 0) env_.free(grad_chain);
}

void TrainingExecutor::optimizer_step(int iteration) {
  (void)iteration;
  SpanGuard step_span(profiler_, trace::EventKind::kUserAnnotation,
                      std::string(trace::annotation::kOptimizerStep) + "#" +
                          to_string(optimizer_) + ".step");
  const bool allocate_state =
      optimizer_is_stateful(optimizer_) && !optimizer_state_allocated_;

  for (const auto& module : model_.modules) {
    if (module.params.empty()) continue;
    if (allocate_state) {
      // PyTorch optimizers create state lazily inside the first step().
      SpanGuard op_span(profiler_, trace::EventKind::kCpuOp,
                        "aten::zeros_like");
      for (const auto& param : module.params) {
        for (const auto& state : optimizer_state_for_param(optimizer_, param)) {
          optimizer_state_handles_.push_back(env_.alloc(state.bytes()));
          clock_.advance(1);
        }
      }
      env_.tick();
    }
    // Fused (foreach) update: one transient working buffer per module group.
    std::int64_t ws = 0;
    for (const auto& param : module.params) {
      ws += optimizer_step_workspace_bytes(optimizer_, param);
    }
    SpanGuard op_span(profiler_, trace::EventKind::kCpuOp,
                      "aten::_foreach_addcdiv_");
    std::uint64_t ws_handle = 0;
    if (ws > 0) ws_handle = env_.alloc(ws);
    clock_.advance(is_cuda() ? 4 : 25);
    env_.tick();
    if (ws_handle != 0) env_.free(ws_handle);
  }
  if (allocate_state) optimizer_state_allocated_ = true;
}

void TrainingExecutor::end_of_iteration_gc() {
  // Python reference-count/GC boundary: the CPU heap reclaims lazily freed
  // storages here. The CUDA backend freed everything at its semantic point.
  for (std::uint64_t handle : deferred_frees_) env_.free(handle);
  deferred_frees_.clear();
  clock_.advance(10);
  env_.tick();
}

void TrainingExecutor::run_iteration(int iteration) {
  SpanGuard step_span(profiler_, trace::EventKind::kUserAnnotation,
                      std::string(trace::annotation::kProfilerStep) + "#" +
                          std::to_string(iteration));
  load_batch(iteration);
  if (options_.placement == ZeroGradPlacement::kPos1IterStart) {
    zero_grad(iteration);
  }
  forward(iteration);
  if (options_.placement == ZeroGradPlacement::kPos0BeforeBackward) {
    zero_grad(iteration);
  }
  backward(iteration);
  optimizer_step(iteration);
  // The batch tensors stay referenced until the loop variables are rebound
  // by the next iteration's dataloader call.
  stale_batch_input_ = batch_input_;
  stale_batch_target_ = batch_target_;
  batch_input_ = 0;
  batch_target_ = 0;
  end_of_iteration_gc();
}

void TrainingExecutor::run() {
  model_to_device();
  for (int i = 0; i < options_.iterations; ++i) {
    run_iteration(i);
  }
}

}  // namespace xmem::fw
