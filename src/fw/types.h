// Fundamental types of the mini DL framework substrate.
//
// The substrate executes *memory behaviour*, not arithmetic: a tensor is a
// (shape, dtype) record whose byte size is what matters; an operator is a
// recipe for which blocks get allocated and freed, in what order, with what
// backend-specific transient workspaces. See DESIGN.md §1 for why this
// preserves everything the paper's estimation problem depends on.
#pragma once

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

namespace xmem::fw {

enum class DType : std::uint8_t { kF32, kF16, kBF16, kI64, kI32, kU8 };

constexpr std::int64_t dtype_size(DType dtype) {
  switch (dtype) {
    case DType::kF32: return 4;
    case DType::kF16: return 2;
    case DType::kBF16: return 2;
    case DType::kI64: return 8;
    case DType::kI32: return 4;
    case DType::kU8: return 1;
  }
  return 4;
}

const char* to_string(DType dtype);

struct TensorDesc {
  std::vector<std::int64_t> shape;
  DType dtype = DType::kF32;

  TensorDesc() = default;
  TensorDesc(std::initializer_list<std::int64_t> dims, DType dt = DType::kF32)
      : shape(dims), dtype(dt) {}
  explicit TensorDesc(std::vector<std::int64_t> dims, DType dt = DType::kF32)
      : shape(std::move(dims)), dtype(dt) {}

  std::int64_t numel() const {
    std::int64_t n = 1;
    for (std::int64_t d : shape) n *= d;
    return shape.empty() ? 0 : n;
  }
  std::int64_t bytes() const { return numel() * dtype_size(dtype); }
  /// Rank-2 view used by Adafactor's factored second moment: (rows, cols)
  /// with all leading dims folded into rows. Rank-0/1 tensors return {numel, 1}.
  std::pair<std::int64_t, std::int64_t> as_matrix() const {
    if (shape.size() < 2) return {numel(), 1};
    std::int64_t rows = 1;
    for (std::size_t i = 0; i + 1 < shape.size(); ++i) rows *= shape[i];
    return {rows, shape.back()};
  }
};

enum class ModelFamily : std::uint8_t { kCnn, kTransformer };
const char* to_string(ModelFamily family);

enum class Backend : std::uint8_t { kCpu, kCuda };
const char* to_string(Backend backend);

enum class OptimizerKind : std::uint8_t {
  kSgd,
  kAdam,
  kAdamW,
  kRmsprop,
  kAdagrad,
  kAdafactor,
};
const char* to_string(OptimizerKind kind);
/// Parse "adamw" etc.; throws std::invalid_argument on unknown names.
OptimizerKind optimizer_from_string(const std::string& name);

/// Placement of optimizer.zero_grad() in the training loop (Figure 1).
/// kPos0 — immediately before loss.backward(): the previous iteration's
///         gradients stay alive through the whole forward pass.
/// kPos1 — at the start of the iteration: gradients die before forward.
enum class ZeroGradPlacement : std::uint8_t { kPos0BeforeBackward, kPos1IterStart };
const char* to_string(ZeroGradPlacement placement);
/// Parse "POS0"/"POS1" (also "pos0"/"pos1"); throws std::invalid_argument.
ZeroGradPlacement placement_from_string(const std::string& name);

}  // namespace xmem::fw
