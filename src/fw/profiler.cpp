#include "fw/profiler.h"

#include <stdexcept>

namespace xmem::fw {

std::int64_t Profiler::open_span(trace::EventKind kind, std::string name,
                                 std::int64_t seq) {
  trace::TraceEvent e;
  e.kind = kind;
  e.name = std::move(name);
  e.ts = clock_.now();
  e.dur = 0;
  e.id = next_id_++;
  e.seq = seq;
  e.parent_id = stack_.empty() ? -1 : out_.events[stack_.back()].id;
  out_.events.push_back(std::move(e));
  stack_.push_back(out_.events.size() - 1);
  return static_cast<std::int64_t>(out_.events.size() - 1);
}

void Profiler::close_span(std::int64_t token) {
  if (stack_.empty() ||
      stack_.back() != static_cast<std::size_t>(token)) {
    throw std::logic_error("Profiler: spans must close innermost-first");
  }
  auto& e = out_.events[stack_.back()];
  e.dur = clock_.now() - e.ts;
  stack_.pop_back();
}

void Profiler::memory_event(std::uint64_t addr, std::int64_t bytes,
                            std::int64_t total_allocated, int device_id) {
  trace::TraceEvent e;
  e.kind = trace::EventKind::kCpuInstantEvent;
  e.name = "[memory]";
  e.ts = clock_.now();
  e.id = next_id_++;
  e.parent_id = stack_.empty() ? -1 : out_.events[stack_.back()].id;
  e.addr = addr;
  e.bytes = bytes;
  e.total_allocated = total_allocated;
  e.device_id = device_id;
  out_.events.push_back(std::move(e));
}

}  // namespace xmem::fw
