// CPU heap model used during profiling runs.
//
// The CPU side of the paper's pipeline sees raw malloc-style events from
// the PyTorch CPU allocator. What the Analyzer must cope with — and what
// this model reproduces — is *address reuse*: caching mallocs hand a freed
// block's address straight to the next same-size request, so a naive
// address→lifetime map would merge distinct tensors. Reuse here is
// exact-size LIFO, which is how PyTorch's CPU caching allocator behaves for
// the hot allocation sizes of a training loop.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace xmem::fw {

class CpuAllocSim {
 public:
  CpuAllocSim() = default;

  /// Allocate `bytes`; returns the block address (reused when possible).
  std::uint64_t alloc(std::int64_t bytes);

  /// Free a live block; returns its size. Unknown addresses throw.
  std::int64_t free(std::uint64_t addr);

  std::int64_t total_allocated() const { return total_allocated_; }
  std::int64_t peak_allocated() const { return peak_allocated_; }
  std::size_t live_blocks() const { return live_.size(); }

 private:
  std::uint64_t next_addr_ = 0x560000000000ULL;  ///< CPU-heap-looking VA base
  std::int64_t total_allocated_ = 0;
  std::int64_t peak_allocated_ = 0;
  std::unordered_map<std::uint64_t, std::int64_t> live_;
  // size -> stack of freed addresses of exactly that size.
  std::unordered_map<std::int64_t, std::vector<std::uint64_t>> free_lists_;
};

}  // namespace xmem::fw
