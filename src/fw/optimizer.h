// Optimizer memory behaviour.
//
// What matters to peak-memory estimation is not the update rule but the
// *state tensors* each optimizer materializes (lazily, on the first step)
// and the transient buffers its step allocates. Table 2 of the paper pairs
// CNNs with {SGD, Adam, AdamW, RMSprop, Adagrad} and Transformers with
// {SGD, Adafactor, Adam, AdamW}; all six are modelled here.
#pragma once

#include <cstdint>
#include <vector>

#include "fw/types.h"

namespace xmem::fw {

/// State tensors an optimizer creates for one parameter tensor on its first
/// step (PyTorch optimizers allocate state lazily inside step()).
std::vector<TensorDesc> optimizer_state_for_param(OptimizerKind kind,
                                                  const TensorDesc& param);

/// Transient working bytes step() needs while updating one parameter tensor
/// (e.g. Adam's temporary for the denominator; freed before the next param).
std::int64_t optimizer_step_workspace_bytes(OptimizerKind kind,
                                            const TensorDesc& param);

/// Total persistent state bytes across a whole parameter list.
std::int64_t total_optimizer_state_bytes(OptimizerKind kind,
                                         const std::vector<TensorDesc>& params);

/// True for optimizers whose first step allocates persistent state (i.e.
/// everything except plain SGD). The paper's Orchestrator keys rule 5 on the
/// difference between first-iteration and steady-state step behaviour.
bool optimizer_is_stateful(OptimizerKind kind);

}  // namespace xmem::fw
