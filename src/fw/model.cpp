#include "fw/model.h"

#include <algorithm>

namespace xmem::fw {

std::int64_t ModelDescriptor::saved_activation_bytes(Backend backend) const {
  std::int64_t total = 0;
  for (const auto& m : modules) {
    for (const auto& op : m.ops) {
      if (op.output_saved) total += op.output_bytes;
      total += backend == Backend::kCpu ? op.saved_bytes_cpu
                                        : op.saved_bytes_gpu;
    }
  }
  return total;
}

std::int64_t ModelDescriptor::max_workspace_bytes(Backend backend) const {
  std::int64_t max_ws = 0;
  for (const auto& m : modules) {
    for (const auto& op : m.ops) {
      const std::int64_t fwd = backend == Backend::kCpu ? op.workspace_cpu
                                                        : op.workspace_gpu;
      const std::int64_t bwd = backend == Backend::kCpu
                                   ? op.bwd_workspace_cpu
                                   : op.bwd_workspace_gpu;
      max_ws = std::max({max_ws, fwd, bwd});
    }
  }
  return max_ws;
}

}  // namespace xmem::fw
