// In-process profiler: the substrate's equivalent of the PyTorch Profiler.
//
// Records the four event categories of Section 3.2 into a trace::Trace,
// maintaining the python_function / cpu_op call hierarchy through an open-
// span stack. Events are appended in start order (parents first), with
// durations patched in when a span closes — the same shape a Chrome trace
// from torch.profiler has.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.h"
#include "util/sim_clock.h"

namespace xmem::fw {

class Profiler {
 public:
  Profiler(util::SimClock& clock, trace::Trace& out)
      : clock_(clock), out_(out) {}

  /// Open a span event; returns a token for close(). The parent is the
  /// innermost still-open span.
  std::int64_t open_span(trace::EventKind kind, std::string name,
                         std::int64_t seq = -1);
  void close_span(std::int64_t token);

  /// Record a memory instant event. `bytes` > 0 allocation, < 0 free.
  void memory_event(std::uint64_t addr, std::int64_t bytes,
                    std::int64_t total_allocated, int device_id);

  std::int64_t open_depth() const {
    return static_cast<std::int64_t>(stack_.size());
  }

 private:
  util::SimClock& clock_;
  trace::Trace& out_;
  std::vector<std::size_t> stack_;  ///< indices of open events in out_.events
  std::int64_t next_id_ = 0;
};

/// RAII helper so executor code can't leak spans on early return.
class SpanGuard {
 public:
  SpanGuard(Profiler* profiler, trace::EventKind kind, std::string name,
            std::int64_t seq = -1)
      : profiler_(profiler) {
    if (profiler_ != nullptr) {
      token_ = profiler_->open_span(kind, std::move(name), seq);
    }
  }
  ~SpanGuard() {
    if (profiler_ != nullptr) profiler_->close_span(token_);
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  Profiler* profiler_;
  std::int64_t token_ = -1;
};

}  // namespace xmem::fw
