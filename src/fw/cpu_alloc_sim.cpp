#include "fw/cpu_alloc_sim.h"

#include <algorithm>
#include <stdexcept>

namespace xmem::fw {

std::uint64_t CpuAllocSim::alloc(std::int64_t bytes) {
  if (bytes <= 0) {
    throw std::invalid_argument("CpuAllocSim::alloc: bytes must be > 0");
  }
  std::uint64_t addr = 0;
  auto it = free_lists_.find(bytes);
  if (it != free_lists_.end() && !it->second.empty()) {
    addr = it->second.back();
    it->second.pop_back();
  } else {
    addr = next_addr_;
    // Keep blocks disjoint; 64-byte alignment like a real malloc.
    next_addr_ += static_cast<std::uint64_t>(((bytes + 63) / 64) * 64) + 64;
  }
  live_[addr] = bytes;
  total_allocated_ += bytes;
  peak_allocated_ = std::max(peak_allocated_, total_allocated_);
  return addr;
}

std::int64_t CpuAllocSim::free(std::uint64_t addr) {
  auto it = live_.find(addr);
  if (it == live_.end()) {
    throw std::logic_error("CpuAllocSim::free: unknown address");
  }
  const std::int64_t bytes = it->second;
  live_.erase(it);
  total_allocated_ -= bytes;
  free_lists_[bytes].push_back(addr);
  return bytes;
}

}  // namespace xmem::fw
