#include "fw/optimizer.h"

namespace xmem::fw {

std::vector<TensorDesc> optimizer_state_for_param(OptimizerKind kind,
                                                  const TensorDesc& param) {
  switch (kind) {
    case OptimizerKind::kSgd:
      // Plain SGD (no momentum), the paper's minimal-overhead case.
      return {};
    case OptimizerKind::kAdam:
    case OptimizerKind::kAdamW:
      // exp_avg and exp_avg_sq, both parameter-shaped f32.
      return {param, param};
    case OptimizerKind::kRmsprop:
      // square_avg.
      return {param};
    case OptimizerKind::kAdagrad:
      // state sum. (PyTorch initializes it in the constructor, but the
      // allocation is parameter-shaped and persistent either way.)
      return {param};
    case OptimizerKind::kAdafactor: {
      // Factored second moment: for rank>=2 params, a row state and a
      // column state instead of a full parameter-shaped tensor; rank<2
      // params fall back to the full exp_avg_sq.
      const auto [rows, cols] = param.as_matrix();
      if (cols <= 1) return {param};
      return {TensorDesc({rows}, DType::kF32), TensorDesc({cols}, DType::kF32)};
    }
  }
  return {};
}

std::int64_t optimizer_step_workspace_bytes(OptimizerKind kind,
                                            const TensorDesc& param) {
  switch (kind) {
    case OptimizerKind::kSgd:
      // d_p is consumed in place; no parameter-sized temporary.
      return 0;
    case OptimizerKind::kAdam:
    case OptimizerKind::kAdamW:
      // denom = exp_avg_sq.sqrt().add_(eps): one parameter-shaped temp.
      return param.bytes();
    case OptimizerKind::kRmsprop:
      return param.bytes();
    case OptimizerKind::kAdagrad:
      // std = state_sum.sqrt().add_(eps).
      return param.bytes();
    case OptimizerKind::kAdafactor:
      // update = grad**2 temporary before factorization.
      return param.bytes();
  }
  return 0;
}

std::int64_t total_optimizer_state_bytes(
    OptimizerKind kind, const std::vector<TensorDesc>& params) {
  std::int64_t total = 0;
  for (const auto& p : params) {
    for (const auto& s : optimizer_state_for_param(kind, p)) {
      total += s.bytes();
    }
  }
  return total;
}

bool optimizer_is_stateful(OptimizerKind kind) {
  return kind != OptimizerKind::kSgd;
}

}  // namespace xmem::fw
