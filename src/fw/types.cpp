#include "fw/types.h"

#include <stdexcept>

namespace xmem::fw {

const char* to_string(DType dtype) {
  switch (dtype) {
    case DType::kF32: return "f32";
    case DType::kF16: return "f16";
    case DType::kBF16: return "bf16";
    case DType::kI64: return "i64";
    case DType::kI32: return "i32";
    case DType::kU8: return "u8";
  }
  return "?";
}

const char* to_string(ModelFamily family) {
  switch (family) {
    case ModelFamily::kCnn: return "CNN";
    case ModelFamily::kTransformer: return "Transformer";
  }
  return "?";
}

const char* to_string(Backend backend) {
  switch (backend) {
    case Backend::kCpu: return "cpu";
    case Backend::kCuda: return "cuda";
  }
  return "?";
}

const char* to_string(OptimizerKind kind) {
  switch (kind) {
    case OptimizerKind::kSgd: return "SGD";
    case OptimizerKind::kAdam: return "Adam";
    case OptimizerKind::kAdamW: return "AdamW";
    case OptimizerKind::kRmsprop: return "RMSprop";
    case OptimizerKind::kAdagrad: return "Adagrad";
    case OptimizerKind::kAdafactor: return "Adafactor";
  }
  return "?";
}

OptimizerKind optimizer_from_string(const std::string& name) {
  if (name == "SGD" || name == "sgd") return OptimizerKind::kSgd;
  if (name == "Adam" || name == "adam") return OptimizerKind::kAdam;
  if (name == "AdamW" || name == "adamw") return OptimizerKind::kAdamW;
  if (name == "RMSprop" || name == "rmsprop") return OptimizerKind::kRmsprop;
  if (name == "Adagrad" || name == "adagrad") return OptimizerKind::kAdagrad;
  if (name == "Adafactor" || name == "adafactor") return OptimizerKind::kAdafactor;
  throw std::invalid_argument("unknown optimizer: " + name);
}

const char* to_string(ZeroGradPlacement placement) {
  switch (placement) {
    case ZeroGradPlacement::kPos0BeforeBackward: return "POS0";
    case ZeroGradPlacement::kPos1IterStart: return "POS1";
  }
  return "?";
}

ZeroGradPlacement placement_from_string(const std::string& name) {
  if (name == "POS0" || name == "pos0") {
    return ZeroGradPlacement::kPos0BeforeBackward;
  }
  if (name == "POS1" || name == "pos1") {
    return ZeroGradPlacement::kPos1IterStart;
  }
  throw std::invalid_argument("unknown zero_grad placement: " + name);
}

}  // namespace xmem::fw
