// The CPU↔CUDA backend divergence table.
//
// Everything that makes a CPU profiling trace differ from the GPU execution
// it predicts is enumerated here, in one place, with the mechanism it
// models and where it is applied. These are the divergences the paper's
// Memory Orchestrator corrects (its five rules) and the residual ones its
// footnote 3 blames for the remaining error.
//
// | # | divergence                | CPU (oneDNN/heap)            | CUDA (cuDNN/cuBLAS/CCA)       | corrected by        |
// |---|---------------------------|------------------------------|-------------------------------|---------------------|
// | 1 | gradient release          | deferred to iteration-end GC | exactly at zero_grad()        | Orchestrator rule 4 |
// | 2 | stale batch release       | deferred to iteration-end GC | at the dataloader rebind      | Orchestrator rule 2 |
// | 3 | KxK conv workspace        | blocked-im2col tile (x8 imgs)| implicit-GEMM tile (~1/4)     | residual error      |
// | 4 | kernel fusion temporaries | materialized (gelu/softmax/  | fused in registers/SRAM       | residual error      |
// |   |                           | norm/log_softmax buffers)    | (~1/4 of the CPU size)        |                     |
// | 5 | flash-attention scratch   | chunked KV accumulation      | SRAM tiling (~2-4 MiB)        | residual error      |
// | 6 | workspace size stability  | near-deterministic           | per-run algorithm choice      | residual error      |
// |   |                           | (kCpuJitterScale below)      | (ExecOptions.workspace_jitter)|                     |
// | 7 | cudnn.benchmark trials    | n/a                          | iteration-1 trial workspaces  | none (off by        |
// |   |                           |                              | retained as segments          | default, ablation)  |
// | 8 | allocator                 | malloc-style heap w/         | two-level CUDACachingAllocator| Simulator replays   |
// |   |                           | exact-size LIFO reuse        | over paged device driver      | the CUDA tower      |
//
// Divergences 3-5 are encoded as the {cpu, gpu} field pairs each OpSpec
// carries (models/op_factory.cpp computes them from the op's shape math
// using the ratios below); 1-2 live in fw/executor.cpp; 6-7 in ExecOptions;
// 8 is the alloc/ + core/simulator machinery itself.
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace xmem::fw::backend {

/// Workspace caps, loosely matching library behaviour: neither oneDNN nor
/// cuDNN lets scratch grow unboundedly with batch size.
inline constexpr std::int64_t kCpuWorkspaceCap = 96 * util::kMiB;
inline constexpr std::int64_t kGpuWorkspaceCap = 64 * util::kMiB;
/// Benchmark-mode algorithm search may try FFT/Winograd tiles a few times
/// the steady workspace, capped.
inline constexpr std::int64_t kBenchmarkTrialCap = 192 * util::kMiB;

/// oneDNN processes im2col in tiles of this many images.
inline constexpr std::int64_t kCpuIm2colBatchTile = 8;
/// cuDNN implicit-GEMM scratch relative to the CPU's full unfolded tile.
inline constexpr std::int64_t kGpuConvWorkspaceDivisor = 4;

/// Fused CUDA elementwise/normalization kernels keep the intermediate the
/// CPU kernel materializes; the GPU-side scratch is this fraction of it.
inline constexpr std::int64_t kGpuFusionDivisor = 4;

/// CPU profiling runs are much more repeatable than CUDA executions:
/// the effective CPU workspace jitter is the CUDA amplitude times this.
inline constexpr double kCpuJitterScale = 0.1;

/// Relative execution speed used by the duration model (timestamps only):
/// CUDA ~12 TFLOP/s & ~400 GB/s, CPU ~0.4 TFLOP/s & ~22 GB/s.
inline constexpr double kGpuUsPerGflop = 85.0;
inline constexpr double kCpuUsPerGflop = 2700.0;
inline constexpr double kGpuBytesPerUs = 4.0e5;
inline constexpr double kCpuBytesPerUs = 2.2e4;

}  // namespace xmem::fw::backend
