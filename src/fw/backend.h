// The CPU↔CUDA backend divergence table.
//
// Everything that makes a CPU profiling trace differ from the GPU execution
// it predicts is enumerated here, in one place, with the mechanism it
// models and where it is applied. These are the divergences the paper's
// Memory Orchestrator corrects (its five rules) and the residual ones its
// footnote 3 blames for the remaining error.
//
// | # | divergence                | CPU (oneDNN/heap)            | CUDA (cuDNN/cuBLAS/CCA)       | corrected by        |
// |---|---------------------------|------------------------------|-------------------------------|---------------------|
// | 1 | gradient release          | deferred to iteration-end GC | exactly at zero_grad()        | Orchestrator rule 4 |
// | 2 | stale batch release       | deferred to iteration-end GC | at the dataloader rebind      | Orchestrator rule 2 |
// | 3 | KxK conv workspace        | blocked-im2col tile (x8 imgs)| implicit-GEMM tile (~1/4)     | residual error      |
// | 4 | kernel fusion temporaries | materialized (gelu/softmax/  | fused in registers/SRAM       | residual error      |
// |   |                           | norm/log_softmax buffers)    | (~1/4 of the CPU size)        |                     |
// | 5 | flash-attention scratch   | chunked KV accumulation      | SRAM tiling (~2-4 MiB)        | residual error      |
// | 6 | workspace size stability  | near-deterministic           | per-run algorithm choice      | residual error      |
// |   |                           | (kCpuJitterScale below)      | (ExecOptions.workspace_jitter)|                     |
// | 7 | cudnn.benchmark trials    | n/a                          | iteration-1 trial workspaces  | none (off by        |
// |   |                           |                              | retained as segments          | default, ablation)  |
// | 8 | allocator                 | malloc-style heap w/         | two-level CUDACachingAllocator| Simulator replays   |
// |   |                           | exact-size LIFO reuse        | over paged device driver      | the CUDA tower      |
//
// Divergences 3-5 are encoded as the {cpu, gpu} field pairs each OpSpec
// carries (models/op_factory.cpp computes them from the op's shape math
// using the ratios below); 1-2 live in fw/executor.cpp; 6-7 in ExecOptions;
// 8 is the alloc/ + core/simulator machinery itself.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/bytes.h"

namespace xmem::fw {

// ---------------------------------------------------------------------------
// AllocatorBackend — the unified framework-allocator interface.
//
// Every allocator model the simulator can replay against (the PyTorch
// CUDACachingAllocator port, the TF-style growing-region BFC, DNNMem's basic
// single-level BFC) implements this interface, and the registry in
// `alloc/backend_registry.h` constructs them by name. The contract every
// implementation must honour — the parity harness in `alloc/event_stream.h`
// replays identical randomized streams through all registered backends and
// asserts it — is documented in docs/ALLOCATORS.md. In short:
//
//   * backend_alloc(bytes) with bytes > 0 returns a unique live handle and
//     the bytes charged to the live-byte counter for it (>= the request,
//     after rounding and split policy), or reports OOM with no side effects
//     on the live set.
//   * backend_free(id) accepts exactly the live handles; freeing an unknown
//     or already-freed handle throws std::logic_error (double-free guard).
//   * backend_stats() is a consistent snapshot: active_bytes is the sum of
//     charged bytes over live blocks, reserved_bytes >= active_bytes, the
//     peaks are monotone high-water marks of their base counters, and
//     num_allocs - num_frees == num_live_blocks.
//   * backend_trim() releases whatever cached memory the policy allows
//     (may be a no-op); it never touches live blocks.
//   * backend_reset() returns the backend to its exact post-construction
//     observable state: every handle (live or not) is invalidated, all
//     device reservations are released, every counter — peaks included —
//     reads zero, and handle numbering restarts. A replay through a reset
//     backend must be byte-identical to the same replay through a freshly
//     constructed one (tests/backend_reset_test.cpp proves it per backend).
//     What reset() may keep is capacity: node pools, map buckets, and
//     vector storage survive, which is what makes reset-instead-of-rebuild
//     the replay hot path (ReplayScratch in core/simulator.h).
// ---------------------------------------------------------------------------

/// Backend-agnostic counter snapshot (the shared subset every allocator
/// model can report; backend-specific counters stay on the concrete types).
struct BackendStats {
  std::int64_t active_bytes = 0;    ///< charged bytes in live blocks
  std::int64_t peak_active_bytes = 0;
  std::int64_t reserved_bytes = 0;  ///< bytes held from the device/arena
  std::int64_t peak_reserved_bytes = 0;
  std::int64_t num_allocs = 0;
  std::int64_t num_frees = 0;
  std::int64_t num_segments = 0;    ///< segments/regions currently held
  std::int64_t num_live_blocks = 0;
};

/// Result of one allocation request through the generic interface.
struct BackendAllocResult {
  std::int64_t id = -1;            ///< live-block handle; -1 on OOM
  std::int64_t charged_bytes = 0;  ///< bytes debited to active for the block
  bool oom = false;
};

class AllocatorBackend {
 public:
  virtual ~AllocatorBackend() = default;

  /// Registry name of this backend ("pytorch", "tf-bfc", "basic-bfc", ...).
  virtual std::string_view backend_name() const = 0;

  /// Allocate `bytes` (> 0, pre-rounding). OOM is an expected experimental
  /// outcome and is reported in the result, never thrown.
  virtual BackendAllocResult backend_alloc(std::int64_t bytes) = 0;

  /// Free a live handle. Throws std::logic_error on unknown/double free.
  virtual void backend_free(std::int64_t id) = 0;

  /// Consistent snapshot of the shared counters.
  virtual BackendStats backend_stats() const = 0;

  /// The rounding policy applied to a request before placement.
  virtual std::int64_t backend_round(std::int64_t bytes) const = 0;

  /// Release cached memory where the policy allows it (empty_cache() for
  /// the PyTorch model; a no-op for policies that never return memory).
  virtual void backend_trim() {}

  /// Return to the exact post-construction observable state (see the
  /// contract table above): invalidate every handle, release all device
  /// reservations, zero every counter including peaks, restart handle
  /// numbering. Implementations keep their node pools and container
  /// capacity so the next replay allocates O(1) — this is the
  /// reset-instead-of-rebuild hot path the planner's refine loop runs on.
  virtual void backend_reset() = 0;
};

}  // namespace xmem::fw

namespace xmem::fw::backend {

/// Workspace caps, loosely matching library behaviour: neither oneDNN nor
/// cuDNN lets scratch grow unboundedly with batch size.
inline constexpr std::int64_t kCpuWorkspaceCap = 96 * util::kMiB;
inline constexpr std::int64_t kGpuWorkspaceCap = 64 * util::kMiB;
/// Benchmark-mode algorithm search may try FFT/Winograd tiles a few times
/// the steady workspace, capped.
inline constexpr std::int64_t kBenchmarkTrialCap = 192 * util::kMiB;

/// oneDNN processes im2col in tiles of this many images.
inline constexpr std::int64_t kCpuIm2colBatchTile = 8;
/// cuDNN implicit-GEMM scratch relative to the CPU's full unfolded tile.
inline constexpr std::int64_t kGpuConvWorkspaceDivisor = 4;

/// Fused CUDA elementwise/normalization kernels keep the intermediate the
/// CPU kernel materializes; the GPU-side scratch is this fraction of it.
inline constexpr std::int64_t kGpuFusionDivisor = 4;

/// CPU profiling runs are much more repeatable than CUDA executions:
/// the effective CPU workspace jitter is the CUDA amplitude times this.
inline constexpr double kCpuJitterScale = 0.1;

/// Relative execution speed used by the duration model (timestamps only):
/// CUDA ~12 TFLOP/s & ~400 GB/s, CPU ~0.4 TFLOP/s & ~22 GB/s.
inline constexpr double kGpuUsPerGflop = 85.0;
inline constexpr double kCpuUsPerGflop = 2700.0;
inline constexpr double kGpuBytesPerUs = 4.0e5;
inline constexpr double kCpuBytesPerUs = 2.2e4;

}  // namespace xmem::fw::backend
