// Memory environment: what the executor allocates through.
//
// Two implementations exist. `CpuMemoryEnv` (here) backs profiling runs: it
// allocates from the CPU heap model and records every event through the
// Profiler, producing the trace xMem analyzes. `gpu::GpuMemoryEnv` backs
// ground-truth runs: it allocates through the CachingAllocatorSim tower and
// feeds the NVML sampler. The executor is agnostic.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "fw/cpu_alloc_sim.h"
#include "fw/profiler.h"

namespace xmem::fw {

/// Thrown when the backing device cannot satisfy an allocation even after
/// cache reclamation — the simulated equivalent of
/// torch.cuda.OutOfMemoryError. Aborts the run; the harness records OOM=1.
class OomError : public std::runtime_error {
 public:
  explicit OomError(std::int64_t requested)
      : std::runtime_error("out of memory allocating " +
                           std::to_string(requested) + " bytes"),
        requested_(requested) {}
  std::int64_t requested_bytes() const { return requested_; }

 private:
  std::int64_t requested_;
};

class MemoryEnv {
 public:
  virtual ~MemoryEnv() = default;

  /// Allocate `bytes`; returns an opaque handle. Throws OomError when the
  /// device is exhausted (never for the CPU env — profiling hosts have
  /// abundant RAM, which is the paper's point).
  virtual std::uint64_t alloc(std::int64_t bytes) = 0;
  virtual void free(std::uint64_t handle) = 0;

  /// Bytes currently allocated (tensor-level view).
  virtual std::int64_t total_allocated() const = 0;

  /// Called by the executor after every simulated-time advance; the GPU env
  /// uses this to let the NVML sampler observe the current state.
  virtual void tick() {}
};

/// Profiling-side environment: CPU heap + trace recording.
class CpuMemoryEnv final : public MemoryEnv {
 public:
  explicit CpuMemoryEnv(Profiler& profiler) : profiler_(profiler) {}

  std::uint64_t alloc(std::int64_t bytes) override {
    const std::uint64_t addr = heap_.alloc(bytes);
    profiler_.memory_event(addr, bytes, heap_.total_allocated(),
                           /*device_id=*/-1);
    return addr;
  }

  void free(std::uint64_t handle) override {
    const std::int64_t bytes = heap_.free(handle);
    profiler_.memory_event(handle, -bytes, heap_.total_allocated(),
                           /*device_id=*/-1);
  }

  std::int64_t total_allocated() const override {
    return heap_.total_allocated();
  }

  const CpuAllocSim& heap() const { return heap_; }

 private:
  Profiler& profiler_;
  CpuAllocSim heap_;
};

}  // namespace xmem::fw
