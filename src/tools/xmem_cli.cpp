// xmem — command-line front end, the artifact a cluster operator would
// actually invoke from a submission hook:
//
//   xmem estimate --model gpt2 --batch 10 --optimizer AdamW
//                 --device rtx3060 [--allocator pytorch|tf-bfc|...]
//                 [--pos0] [--json] [--curve]
//   xmem verify   ... (same flags; also runs the simulated ground truth)
//   xmem models
//   xmem devices
//   xmem backends
//
// Exit code for `estimate`/`verify`: 0 = fits the device, 2 = predicted
// OOM, 1 = usage/config error — so shell scripts can gate submissions on it.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "alloc/backend_registry.h"
#include "core/xmem_estimator.h"
#include "gpu/ground_truth.h"
#include "models/workload.h"
#include "models/zoo.h"
#include "util/bytes.h"
#include "util/json.h"

namespace {

using namespace xmem;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  xmem estimate --model NAME --batch N [--optimizer OPT]\n"
               "                [--device rtx3060|rtx4060|a100] [--pos0]\n"
               "                [--allocator NAME] [--iterations N]\n"
               "                [--json] [--curve]\n"
               "  xmem verify   (same flags; adds a simulated ground-truth "
               "run)\n"
               "  xmem models\n"
               "  xmem devices\n"
               "  xmem backends (allocator models for --allocator)\n");
  return 1;
}

gpu::DeviceModel device_by_name(const std::string& name) {
  if (name == "rtx3060" || name == "3060") return gpu::rtx3060();
  if (name == "rtx4060" || name == "4060") return gpu::rtx4060();
  if (name == "a100" || name == "a100-40gb") return gpu::a100_40gb();
  throw std::invalid_argument("unknown device: " + name +
                              " (rtx3060 | rtx4060 | a100)");
}

struct Cli {
  std::string command;
  std::string model;
  int batch = 0;
  std::string optimizer = "AdamW";
  std::string device = "rtx3060";
  std::string allocator = alloc::kDefaultBackendName;
  bool pos0 = false;
  bool json = false;
  bool curve = false;
  int iterations = 3;
};

bool parse_args(int argc, char** argv, Cli& cli) {
  if (argc < 2) return false;
  cli.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--model") {
      const char* v = next("--model");
      if (v == nullptr) return false;
      cli.model = v;
    } else if (arg == "--batch") {
      const char* v = next("--batch");
      if (v == nullptr) return false;
      cli.batch = std::atoi(v);
    } else if (arg == "--optimizer") {
      const char* v = next("--optimizer");
      if (v == nullptr) return false;
      cli.optimizer = v;
    } else if (arg == "--device") {
      const char* v = next("--device");
      if (v == nullptr) return false;
      cli.device = v;
    } else if (arg == "--allocator") {
      const char* v = next("--allocator");
      if (v == nullptr) return false;
      cli.allocator = v;
    } else if (arg == "--iterations") {
      const char* v = next("--iterations");
      if (v == nullptr) return false;
      cli.iterations = std::atoi(v);
    } else if (arg == "--pos0") {
      cli.pos0 = true;
    } else if (arg == "--json") {
      cli.json = true;
    } else if (arg == "--curve") {
      cli.curve = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

int list_models() {
  std::printf("%-32s %-12s %10s %s\n", "model", "family", "params(M)",
              "batch grid");
  for (const auto& name : models::all_model_names()) {
    const fw::ModelDescriptor model = models::build_model(name, 1);
    const auto grid = models::batch_grid_for(name);
    std::printf("%-32s %-12s %10.1f %d..%d\n", name.c_str(),
                to_string(model.family),
                static_cast<double>(model.param_count()) / 1e6, grid.front(),
                grid.back());
  }
  return 0;
}

int list_devices() {
  for (const gpu::DeviceModel& device :
       {gpu::rtx3060(), gpu::rtx4060(), gpu::a100_40gb()}) {
    std::printf("%-20s capacity %-10s M_init %-10s M_fm %-10s job budget %s\n",
                device.name.c_str(), util::format_bytes(device.capacity).c_str(),
                util::format_bytes(device.m_init).c_str(),
                util::format_bytes(device.m_fm).c_str(),
                util::format_bytes(device.job_budget()).c_str());
  }
  return 0;
}

int list_backends() {
  for (const std::string& name : alloc::backend_names()) {
    std::printf("%-12s %s\n", name.c_str(),
                alloc::backend_description(name).c_str());
  }
  return 0;
}

int run_estimate(const Cli& cli, bool verify) {
  if (cli.model.empty() || cli.batch <= 0) {
    std::fprintf(stderr, "estimate requires --model and --batch > 0\n");
    return 1;
  }
  if (!models::is_known_model(cli.model)) {
    std::fprintf(stderr, "unknown model '%s' (see `xmem models`)\n",
                 cli.model.c_str());
    return 1;
  }
  if (!alloc::is_known_backend(cli.allocator)) {
    std::fprintf(stderr, "unknown allocator '%s' (see `xmem backends`)\n",
                 cli.allocator.c_str());
    return 1;
  }
  const gpu::DeviceModel device = device_by_name(cli.device);

  core::TrainJob job;
  job.model_name = cli.model;
  job.batch_size = cli.batch;
  job.optimizer = fw::optimizer_from_string(cli.optimizer);
  job.placement = cli.pos0 ? fw::ZeroGradPlacement::kPos0BeforeBackward
                           : fw::ZeroGradPlacement::kPos1IterStart;

  core::XMemOptions options;
  options.profile_iterations = cli.iterations;
  options.allocator_backend = cli.allocator;
  core::XMemEstimator estimator(options);
  const auto artifacts = estimator.run_pipeline(job, cli.curve);
  const core::EstimateResult result = estimator.estimate(job, device);

  std::int64_t truth_peak = -1;
  bool truth_oom = false;
  if (verify) {
    const fw::ModelDescriptor model = models::build_model(cli.model, cli.batch);
    gpu::GroundTruthRunner runner;
    gpu::GroundTruthOptions gt;
    gt.placement = job.placement;
    gt.seed = job.seed;
    const auto truth = runner.run(model, job.optimizer, device, gt);
    truth_oom = truth.oom;
    truth_peak = truth.oom ? -1 : truth.peak_job_bytes;
  }

  if (cli.json) {
    util::Json out = util::Json::object();
    out["model"] = util::Json(cli.model);
    out["batch"] = util::Json(cli.batch);
    out["optimizer"] = util::Json(cli.optimizer);
    out["placement"] = util::Json(cli.pos0 ? "POS0" : "POS1");
    out["allocator"] = util::Json(cli.allocator);
    out["device"] = util::Json(device.name);
    out["estimated_peak_bytes"] = util::Json(result.estimated_peak);
    out["device_job_budget_bytes"] = util::Json(device.job_budget());
    out["oom_predicted"] = util::Json(result.oom_predicted);
    out["estimator_runtime_seconds"] = util::Json(result.runtime_seconds);
    out["trace_events"] =
        util::Json(static_cast<std::int64_t>(artifacts.trace.events.size()));
    if (verify) {
      out["ground_truth_oom"] = util::Json(truth_oom);
      if (!truth_oom) out["ground_truth_peak_bytes"] = util::Json(truth_peak);
    }
    if (cli.curve) {
      util::Json series = util::Json::array();
      for (const auto& [ts, bytes] : artifacts.simulation.reserved_series) {
        util::Json point = util::Json::array();
        point.push_back(util::Json(ts));
        point.push_back(util::Json(bytes));
        series.push_back(std::move(point));
      }
      out["reserved_curve"] = std::move(series);
    }
    std::printf("%s\n", out.dump(2).c_str());
  } else {
    std::printf("job            : %s\n", job.label().c_str());
    std::printf("device         : %s (job budget %s)\n", device.name.c_str(),
                util::format_bytes(device.job_budget()).c_str());
    std::printf("estimated peak : %s\n",
                util::format_bytes(result.estimated_peak).c_str());
    std::printf("verdict        : %s\n",
                result.oom_predicted ? "DOES NOT FIT (OOM predicted)"
                                     : "fits");
    if (verify) {
      if (truth_oom) {
        std::printf("ground truth   : OOM (prediction %s)\n",
                    result.oom_predicted ? "correct" : "WRONG");
      } else {
        std::printf("ground truth   : %s (error %.2f%%)\n",
                    util::format_bytes(truth_peak).c_str(),
                    100.0 *
                        std::abs(static_cast<double>(result.estimated_peak -
                                                     truth_peak)) /
                        static_cast<double>(truth_peak));
      }
    }
    std::printf("analysis       : %zu trace events, %zu blocks, %.1f ms\n",
                artifacts.trace.events.size(),
                artifacts.analysis.timeline.blocks.size(),
                result.runtime_seconds * 1e3);
  }
  return result.oom_predicted ? 2 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  if (!parse_args(argc, argv, cli)) return usage();
  try {
    if (cli.command == "models") return list_models();
    if (cli.command == "devices") return list_devices();
    if (cli.command == "backends") return list_backends();
    if (cli.command == "estimate") return run_estimate(cli, /*verify=*/false);
    if (cli.command == "verify") return run_estimate(cli, /*verify=*/true);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
