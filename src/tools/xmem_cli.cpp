// xmem — command-line front end, the artifact a cluster operator would
// actually invoke from a submission hook:
//
//   xmem estimate --model gpt2 --batch 10 --optimizer AdamW
//                 --device rtx3060 [--allocator pytorch|tf-bfc|...]
//                 [--estimator xMem|DNNMem|...] [--pos0] [--json] [--curve]
//   xmem verify   ... (same flags; also runs the simulated ground truth)
//   xmem sweep    REQUEST.json [--out FILE] [--no-timings] [--serial]
//                 (profile-once/estimate-many: one job x devices x
//                  allocators x estimators, JSON report on stdout; the
//                  request's optional "allocator_config" object maps a
//                  backend name to its integer policy knobs)
//   xmem plan     REQUEST.json [--out FILE] [--no-timings] [--serial]
//                 [--refine-top-k N | --refine-all | --no-refine]
//                 [--comm-overlap]
//                 (multi-GPU planner: ranked DPxTPxPP decompositions of a
//                  GPU budget; the top-K candidates — K defaults to 4 —
//                  are re-simulated per rank through the allocator tower,
//                  with symmetric ranks collapsed onto one replay;
//                  --refine-all replays every ranked decomposition; one
//                  CPU profile for the whole two-phase search.
//                  --comm-overlap simulates collectives as schedule-tied
//                  overlap windows and re-ranks the refined candidates by
//                  window peaks)
//   xmem fleet    REQUEST.json [--out FILE] [--no-timings] [--serial]
//                 (fleet packing: a queue of jobs placed onto a
//                  heterogeneous GPU fleet under a packing policy, with
//                  admit/defer/reject verdicts per job — docs/SCHEDULER.md)
//   xmem serve    --socket PATH [--workers N] [--queue N]
//                 [--service-threads N] [--profile-cache N]
//                 [--tenant-quota N] [--reject-over-quota] [--max-frame N]
//                 (long-running estimation daemon on a Unix socket;
//                  length-prefixed JSON frames, request coalescing,
//                  per-tenant quotas, graceful SIGTERM/SIGINT shutdown —
//                  docs/SERVER.md)
//   xmem request  --socket PATH (--sweep FILE | --plan FILE | --fleet FILE
//                 | --stats | --ping | --shutdown | --raw FILE)
//                 [--tenant NAME] [--out FILE] [--timeout MS]
//                 (one request against a running daemon; sweep/plan/fleet
//                  print the same report JSON as the offline subcommands)
//   xmem models
//   xmem devices
//   xmem backends
//   xmem estimators
//   xmem policies
//
// Exit code for `estimate`/`verify`: 0 = fits the device, 2 = predicted
// OOM, 1 = usage/config error — so shell scripts can gate submissions on it.
// `sweep`/`plan`/`fleet`: 0 on success (per-device / per-job verdicts live
// in the report), 1 on usage/config error (including malformed request
// JSON).
// `request`: 0 on an ok reply, 2 when the server answered with an error
// frame (code + message on stderr), 1 on usage/transport error.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "alloc/backend_registry.h"
#include "core/estimation_service.h"
#include "core/estimator_registry.h"
#include "gpu/ground_truth.h"
#include "models/workload.h"
#include "models/zoo.h"
#include "sched/fleet_planner.h"
#include "sched/packing_policy.h"
#include "server/client.h"
#include "server/server.h"
#include "util/bytes.h"
#include "util/json.h"

namespace {

using namespace xmem;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  xmem estimate --model NAME --batch N [--optimizer OPT]\n"
               "                [--device rtx3060|rtx4060|a100] [--pos0]\n"
               "                [--allocator NAME] [--estimator NAME]\n"
               "                [--iterations N] [--json] [--curve]\n"
               "  xmem verify   (same flags; adds a simulated ground-truth "
               "run)\n"
               "  xmem sweep    REQUEST.json [--out FILE] [--no-timings] "
               "[--serial]\n"
               "  xmem plan     REQUEST.json [--out FILE] [--no-timings] "
               "[--serial]\n"
               "                [--refine-top-k N (default 4) | --refine-all "
               "|\n"
               "                --no-refine] [--comm-overlap]\n"
               "  xmem fleet    REQUEST.json [--out FILE] [--no-timings] "
               "[--serial]\n"
               "  xmem serve    --socket PATH [--workers N] [--queue N]\n"
               "                [--service-threads N] [--profile-cache N]\n"
               "                [--tenant-quota N] [--reject-over-quota]\n"
               "                [--max-frame BYTES]\n"
               "  xmem request  --socket PATH (--sweep FILE | --plan FILE |\n"
               "                --fleet FILE | --stats | --ping | --shutdown "
               "|\n"
               "                --raw FILE)\n"
               "                [--tenant NAME] [--out FILE] [--timeout MS]\n"
               "  xmem models\n"
               "  xmem devices\n"
               "  xmem backends   (allocator models for --allocator; knobbed\n"
               "                   backends list their \"allocator_config\"\n"
               "                   request keys)\n"
               "  xmem estimators (estimation engines for --estimator)\n"
               "  xmem policies   (packing policies for fleet requests)\n");
  return 1;
}

struct Cli {
  std::string command;
  std::string model;
  int batch = 0;
  std::string optimizer = "AdamW";
  std::string device = "rtx3060";
  std::string allocator = alloc::kDefaultBackendName;
  std::string estimator = "xMem";
  std::string request_file;
  std::string out_file;
  bool pos0 = false;
  bool json = false;
  bool curve = false;
  bool no_timings = false;
  bool serial = false;
  bool no_refine = false;
  bool refine_all = false;  ///< --refine-all: replay every decomposition
  int refine_top_k = -1;  ///< -1: keep the request document's value
  bool comm_overlap = false;  ///< --comm-overlap: overlap-window simulation
  int iterations = 3;

  // serve / request
  std::string socket_path;
  std::string tenant;
  std::string sweep_file;
  std::string plan_file;
  std::string fleet_file;
  std::string raw_file;
  bool stats = false;
  bool ping = false;
  bool shutdown = false;
  int timeout_ms = 30000;
  std::size_t workers = 4;
  std::size_t queue = 64;
  std::size_t service_threads = 1;
  std::size_t profile_cache = core::ProfileSession::kDefaultCapacity;
  std::size_t tenant_quota = 0;
  bool reject_over_quota = false;
  std::size_t max_frame = server::kDefaultMaxFrameBytes;
};

bool parse_args(int argc, char** argv, Cli& cli) {
  if (argc < 2) return false;
  cli.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--model") {
      const char* v = next("--model");
      if (v == nullptr) return false;
      cli.model = v;
    } else if (arg == "--batch") {
      const char* v = next("--batch");
      if (v == nullptr) return false;
      cli.batch = std::atoi(v);
    } else if (arg == "--optimizer") {
      const char* v = next("--optimizer");
      if (v == nullptr) return false;
      cli.optimizer = v;
    } else if (arg == "--device") {
      const char* v = next("--device");
      if (v == nullptr) return false;
      cli.device = v;
    } else if (arg == "--allocator") {
      const char* v = next("--allocator");
      if (v == nullptr) return false;
      cli.allocator = v;
    } else if (arg == "--estimator") {
      const char* v = next("--estimator");
      if (v == nullptr) return false;
      cli.estimator = v;
    } else if (arg == "--iterations") {
      const char* v = next("--iterations");
      if (v == nullptr) return false;
      cli.iterations = std::atoi(v);
    } else if (arg == "--out") {
      const char* v = next("--out");
      if (v == nullptr) return false;
      cli.out_file = v;
    } else if (arg == "--pos0") {
      cli.pos0 = true;
    } else if (arg == "--json") {
      cli.json = true;
    } else if (arg == "--curve") {
      cli.curve = true;
    } else if (arg == "--no-timings") {
      cli.no_timings = true;
    } else if (arg == "--serial") {
      cli.serial = true;
    } else if (arg == "--no-refine") {
      cli.no_refine = true;
    } else if (arg == "--refine-all") {
      cli.refine_all = true;
    } else if (arg == "--comm-overlap") {
      cli.comm_overlap = true;
    } else if (arg == "--socket") {
      const char* v = next("--socket");
      if (v == nullptr) return false;
      cli.socket_path = v;
    } else if (arg == "--tenant") {
      const char* v = next("--tenant");
      if (v == nullptr) return false;
      cli.tenant = v;
    } else if (arg == "--sweep") {
      const char* v = next("--sweep");
      if (v == nullptr) return false;
      cli.sweep_file = v;
    } else if (arg == "--plan") {
      const char* v = next("--plan");
      if (v == nullptr) return false;
      cli.plan_file = v;
    } else if (arg == "--fleet") {
      const char* v = next("--fleet");
      if (v == nullptr) return false;
      cli.fleet_file = v;
    } else if (arg == "--raw") {
      const char* v = next("--raw");
      if (v == nullptr) return false;
      cli.raw_file = v;
    } else if (arg == "--stats") {
      cli.stats = true;
    } else if (arg == "--ping") {
      cli.ping = true;
    } else if (arg == "--shutdown") {
      cli.shutdown = true;
    } else if (arg == "--timeout") {
      const char* v = next("--timeout");
      if (v == nullptr) return false;
      cli.timeout_ms = std::atoi(v);
    } else if (arg == "--workers") {
      const char* v = next("--workers");
      if (v == nullptr) return false;
      cli.workers = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--queue") {
      const char* v = next("--queue");
      if (v == nullptr) return false;
      cli.queue = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--service-threads") {
      const char* v = next("--service-threads");
      if (v == nullptr) return false;
      cli.service_threads = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--profile-cache") {
      const char* v = next("--profile-cache");
      if (v == nullptr) return false;
      cli.profile_cache = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--tenant-quota") {
      const char* v = next("--tenant-quota");
      if (v == nullptr) return false;
      cli.tenant_quota = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--reject-over-quota") {
      cli.reject_over_quota = true;
    } else if (arg == "--max-frame") {
      const char* v = next("--max-frame");
      if (v == nullptr) return false;
      cli.max_frame = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--refine-top-k") {
      const char* v = next("--refine-top-k");
      if (v == nullptr) return false;
      cli.refine_top_k = std::atoi(v);
      if (cli.refine_top_k < 0) {
        std::fprintf(stderr, "--refine-top-k must be >= 0\n");
        return false;
      }
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    } else if ((cli.command == "sweep" || cli.command == "plan" ||
                cli.command == "fleet") &&
               cli.request_file.empty()) {
      cli.request_file = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

int list_models() {
  std::printf("%-32s %-12s %10s %s\n", "model", "family", "params(M)",
              "batch grid");
  for (const auto& name : models::all_model_names()) {
    const fw::ModelDescriptor model = models::build_model(name, 1);
    const auto grid = models::batch_grid_for(name);
    std::printf("%-32s %-12s %10.1f %d..%d\n", name.c_str(),
                to_string(model.family),
                static_cast<double>(model.param_count()) / 1e6, grid.front(),
                grid.back());
  }
  return 0;
}

int list_devices() {
  for (const gpu::DeviceModel& device : gpu::all_devices()) {
    std::printf("%-20s capacity %-10s M_init %-10s M_fm %-10s job budget %s\n",
                device.name.c_str(), util::format_bytes(device.capacity).c_str(),
                util::format_bytes(device.m_init).c_str(),
                util::format_bytes(device.m_fm).c_str(),
                util::format_bytes(device.job_budget()).c_str());
  }
  return 0;
}

int list_backends() {
  for (const std::string& name : alloc::backend_names()) {
    std::printf("%-18s %s\n", name.c_str(),
                alloc::backend_description(name).c_str());
  }
  std::printf(
      "\nknobbed backends are tuned per sweep/plan request via\n"
      "  \"allocator_config\": {\"<backend>\": {\"<knob>\": <integer>}}\n"
      "(see docs/ALLOCATORS.md for each backend's knob table)\n");
  return 0;
}

int list_estimators() {
  for (const std::string& name : core::estimator_names()) {
    std::printf("%-12s %s\n", name.c_str(),
                core::estimator_description(name).c_str());
  }
  return 0;
}

int list_policies() {
  for (const std::string& name : sched::packing_policy_names()) {
    std::printf("%-20s %s\n", name.c_str(),
                sched::packing_policy_description(name).c_str());
  }
  std::printf(
      "\nselected per fleet request via \"policy\": \"<name>\"\n"
      "(see docs/SCHEDULER.md for packing semantics)\n");
  return 0;
}

int run_estimate(const Cli& cli, bool verify) {
  if (cli.model.empty() || cli.batch <= 0) {
    std::fprintf(stderr, "estimate requires --model and --batch > 0\n");
    return 1;
  }
  if (!models::is_known_model(cli.model)) {
    std::fprintf(stderr, "unknown model '%s' (see `xmem models`)\n",
                 cli.model.c_str());
    return 1;
  }
  if (!alloc::is_known_backend(cli.allocator)) {
    std::fprintf(stderr, "unknown allocator '%s' (see `xmem backends`)\n",
                 cli.allocator.c_str());
    return 1;
  }
  if (!core::is_known_estimator(cli.estimator)) {
    std::fprintf(stderr, "unknown estimator '%s' (see `xmem estimators`)\n",
                 cli.estimator.c_str());
    return 1;
  }
  const gpu::DeviceModel device = gpu::device_by_name(cli.device);

  core::TrainJob job;
  job.model_name = cli.model;
  job.batch_size = cli.batch;
  job.optimizer = fw::optimizer_from_string(cli.optimizer);
  job.placement = cli.pos0 ? fw::ZeroGradPlacement::kPos0BeforeBackward
                           : fw::ZeroGradPlacement::kPos1IterStart;

  core::ServiceOptions service_options;
  service_options.threads = 1;  // one question, no fan-out
  core::EstimationService service(service_options);
  const core::EstimateEntry entry = service.estimate(
      cli.estimator, job, device, cli.allocator, cli.iterations, cli.curve);

  if (!entry.supported) {
    std::fprintf(stderr, "estimator %s does not support this job class\n",
                 cli.estimator.c_str());
    return 1;
  }

  std::int64_t truth_peak = -1;
  bool truth_oom = false;
  if (verify) {
    const fw::ModelDescriptor model = models::build_model(cli.model, cli.batch);
    gpu::GroundTruthRunner runner;
    gpu::GroundTruthOptions gt;
    gt.placement = job.placement;
    gt.seed = job.seed;
    const auto truth = runner.run(model, job.optimizer, device, gt);
    truth_oom = truth.oom;
    truth_peak = truth.oom ? -1 : truth.peak_job_bytes;
  }

  if (cli.json) {
    // One serialization for both JSON surfaces: the entry schema of
    // `xmem sweep` (estimation_service.cpp), plus the CLI's job context.
    util::Json out = entry.to_json(/*include_timings=*/!cli.no_timings);
    out["model"] = util::Json(cli.model);
    out["batch"] = util::Json(cli.batch);
    out["optimizer"] = util::Json(cli.optimizer);
    out["placement"] = util::Json(cli.pos0 ? "POS0" : "POS1");
    if (!cli.no_timings) {
      out["estimator_runtime_seconds"] =
          util::Json(entry.timings.total_seconds);
    }
    if (verify) {
      out["ground_truth_oom"] = util::Json(truth_oom);
      if (!truth_oom) out["ground_truth_peak_bytes"] = util::Json(truth_peak);
    }
    std::printf("%s\n", out.dump(2).c_str());
  } else {
    std::printf("job            : %s\n", job.label().c_str());
    std::printf("estimator      : %s\n", cli.estimator.c_str());
    std::printf("device         : %s (job budget %s)\n", device.name.c_str(),
                util::format_bytes(device.job_budget()).c_str());
    std::printf("estimated peak : %s\n",
                util::format_bytes(entry.estimated_peak).c_str());
    std::printf("verdict        : %s\n",
                entry.oom_predicted ? "DOES NOT FIT (OOM predicted)"
                                    : "fits");
    if (verify) {
      if (truth_oom) {
        std::printf("ground truth   : OOM (prediction %s)\n",
                    entry.oom_predicted ? "correct" : "WRONG");
      } else {
        std::printf("ground truth   : %s (error %.2f%%)\n",
                    util::format_bytes(truth_peak).c_str(),
                    100.0 *
                        std::abs(static_cast<double>(entry.estimated_peak -
                                                     truth_peak)) /
                        static_cast<double>(truth_peak));
      }
    }
    std::printf("stages         : profile %.1f ms, analyze %.1f ms, "
                "simulate %.1f ms (total %.1f ms)\n",
                entry.timings.profile_seconds * 1e3,
                entry.timings.analyze_seconds * 1e3,
                entry.timings.simulate_seconds * 1e3,
                entry.timings.total_seconds * 1e3);
  }
  return entry.oom_predicted ? 2 : 0;
}

/// Shared request-file plumbing for the JSON subcommands (`sweep`/`plan`):
/// read + parse the document, hand it to `respond`, emit the report.
int run_request_command(const Cli& cli,
                        util::Json (*respond)(const Cli&, const util::Json&)) {
  if (cli.request_file.empty()) {
    std::fprintf(stderr, "%s requires a REQUEST.json file argument\n",
                 cli.command.c_str());
    return 1;
  }
  std::ifstream in(cli.request_file);
  if (!in) {
    std::fprintf(stderr, "cannot open request file: %s\n",
                 cli.request_file.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  const std::string rendered =
      respond(cli, util::Json::parse(buffer.str())).dump(2);
  if (cli.out_file.empty()) {
    std::printf("%s\n", rendered.c_str());
  } else {
    std::ofstream out(cli.out_file);
    if (!out) {
      std::fprintf(stderr, "cannot write: %s\n", cli.out_file.c_str());
      return 1;
    }
    out << rendered << "\n";
  }
  return 0;
}

util::Json respond_sweep(const Cli& cli, const util::Json& document) {
  const core::EstimateRequest request =
      core::EstimateRequest::from_json(document);
  core::ServiceOptions service_options;
  if (cli.serial) service_options.threads = 1;
  core::EstimationService service(service_options);
  return service.sweep(request).to_json(/*include_timings=*/!cli.no_timings);
}

util::Json respond_plan(const Cli& cli, const util::Json& document) {
  core::PlanRequest request = core::PlanRequest::from_json(document);
  // CLI refinement flags override the request document.
  if (cli.no_refine) {
    request.refine_top_k = 0;
    request.refine_all = false;
  } else if (cli.refine_all) {
    request.refine_all = true;
  } else if (cli.refine_top_k >= 0) {
    request.refine_top_k = cli.refine_top_k;
    request.refine_all = false;
  }
  if (cli.comm_overlap) request.comm_overlap = true;
  core::ServiceOptions service_options;
  if (cli.serial) service_options.threads = 1;
  core::EstimationService service(service_options);
  return service.plan(request).to_json(/*include_timings=*/!cli.no_timings);
}

util::Json respond_fleet(const Cli& cli, const util::Json& document) {
  const sched::FleetRequest request = sched::FleetRequest::from_json(document);
  core::ServiceOptions service_options;
  if (cli.serial) service_options.threads = 1;
  core::EstimationService service(service_options);
  return service.fleet(request).to_json(/*include_timings=*/!cli.no_timings);
}

// --- serve ------------------------------------------------------------------

server::Server* g_server = nullptr;  ///< signal handler target

void handle_stop_signal(int) {
  if (g_server != nullptr) g_server->request_stop();  // async-signal-safe
}

int run_serve(const Cli& cli) {
  if (cli.socket_path.empty()) {
    std::fprintf(stderr, "serve requires --socket PATH\n");
    return 1;
  }
  server::ServerConfig config;
  config.socket_path = cli.socket_path;
  config.workers = cli.workers;
  config.max_queue = cli.queue;
  config.service_threads = cli.service_threads;
  config.profile_cache_capacity = cli.profile_cache;
  config.session_quota.max_resident_per_tenant = cli.tenant_quota;
  config.session_quota.reject_over_quota = cli.reject_over_quota;
  config.max_frame_bytes = cli.max_frame;

  server::Server daemon(config);
  daemon.start();
  g_server = &daemon;
  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGINT, handle_stop_signal);

  std::printf("xmem serve: listening on %s\n", cli.socket_path.c_str());
  std::fflush(stdout);

  daemon.run();  // blocks on the stop latch, then drains and stops
  g_server = nullptr;
  std::printf("xmem serve: drained and stopped\n");
  return 0;
}

// --- request ----------------------------------------------------------------

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

int emit_result(const Cli& cli, const std::string& rendered) {
  if (cli.out_file.empty()) {
    std::printf("%s\n", rendered.c_str());
  } else {
    std::ofstream out(cli.out_file);
    if (!out) {
      std::fprintf(stderr, "cannot write: %s\n", cli.out_file.c_str());
      return 1;
    }
    out << rendered << "\n";
  }
  return 0;
}

/// Put a file's bytes on the wire verbatim (no framing), half-close, and
/// report what came back. Exit 0 only if some reply parsed as ok:true —
/// the CI negative fixture (bad_frame.bin) must exit nonzero while the
/// server survives.
int run_raw_request(const Cli& cli) {
  std::string bytes;
  if (!read_file(cli.raw_file, bytes)) {
    std::fprintf(stderr, "cannot open raw file: %s\n", cli.raw_file.c_str());
    return 1;
  }
  server::Client client(cli.socket_path, cli.timeout_ms);
  if (!client.send_bytes(bytes)) {
    std::fprintf(stderr, "raw send failed\n");
    return 1;
  }
  client.half_close();
  bool saw_ok = false;
  std::string payload;
  while (true) {
    const server::FrameStatus status = client.read_reply(payload);
    if (status != server::FrameStatus::kOk) {
      std::fprintf(stderr, "connection ended: %s\n",
                   server::to_string(status));
      break;
    }
    std::printf("%s\n", payload.c_str());
    try {
      const util::Json reply = util::Json::parse(payload);
      if (reply.is_object() && reply.contains("ok") &&
          reply.at("ok").as_bool()) {
        saw_ok = true;
      }
    } catch (const std::exception&) {
      // Not JSON: still not an ok reply.
    }
  }
  return saw_ok ? 0 : 2;
}

int run_request(const Cli& cli) {
  if (cli.socket_path.empty()) {
    std::fprintf(stderr, "request requires --socket PATH\n");
    return 1;
  }
  const int kinds = (cli.sweep_file.empty() ? 0 : 1) +
                    (cli.plan_file.empty() ? 0 : 1) +
                    (cli.fleet_file.empty() ? 0 : 1) +
                    (cli.raw_file.empty() ? 0 : 1) + (cli.stats ? 1 : 0) +
                    (cli.ping ? 1 : 0) + (cli.shutdown ? 1 : 0);
  if (kinds != 1) {
    std::fprintf(stderr,
                 "request needs exactly one of --sweep/--plan/--fleet/"
                 "--stats/--ping/--shutdown/--raw\n");
    return 1;
  }
  if (!cli.raw_file.empty()) return run_raw_request(cli);

  try {
    server::Client client(cli.socket_path, cli.timeout_ms);
    if (cli.ping) {
      client.ping();
      std::printf("pong\n");
      return 0;
    }
    if (cli.shutdown) {
      client.shutdown_server();
      std::printf("shutdown acknowledged (server draining)\n");
      return 0;
    }
    if (cli.stats) {
      return emit_result(cli, client.stats().dump(2));
    }
    const bool is_plan = !cli.plan_file.empty();
    const bool is_fleet = !cli.fleet_file.empty();
    const std::string& path =
        is_plan ? cli.plan_file : (is_fleet ? cli.fleet_file : cli.sweep_file);
    std::string text;
    if (!read_file(path, text)) {
      std::fprintf(stderr, "cannot open request file: %s\n", path.c_str());
      return 1;
    }
    const util::Json request = util::Json::parse(text);
    // Same rendering as the offline sweep/plan/fleet subcommands with
    // --no-timings (the server always strips timings), so both paths diff
    // against the same golden reports.
    const util::Json report = is_plan    ? client.plan(request, cli.tenant)
                              : is_fleet ? client.fleet(request, cli.tenant)
                                         : client.sweep(request, cli.tenant);
    return emit_result(cli, report.dump(2));
  } catch (const server::RequestError& error) {
    std::fprintf(stderr, "server error: %s\n", error.what());
    return 2;
  } catch (const server::TransportError& error) {
    std::fprintf(stderr, "transport error: %s\n", error.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  if (!parse_args(argc, argv, cli)) return usage();
  try {
    if (cli.command == "models") return list_models();
    if (cli.command == "devices") return list_devices();
    if (cli.command == "backends") return list_backends();
    if (cli.command == "estimators") return list_estimators();
    if (cli.command == "policies") return list_policies();
    if (cli.command == "estimate") return run_estimate(cli, /*verify=*/false);
    if (cli.command == "verify") return run_estimate(cli, /*verify=*/true);
    if (cli.command == "sweep") return run_request_command(cli, respond_sweep);
    if (cli.command == "plan") return run_request_command(cli, respond_plan);
    if (cli.command == "fleet") return run_request_command(cli, respond_fleet);
    if (cli.command == "serve") return run_serve(cli);
    if (cli.command == "request") return run_request(cli);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
