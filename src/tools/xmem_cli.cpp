// xmem — command-line front end, the artifact a cluster operator would
// actually invoke from a submission hook:
//
//   xmem estimate --model gpt2 --batch 10 --optimizer AdamW
//                 --device rtx3060 [--allocator pytorch|tf-bfc|...]
//                 [--estimator xMem|DNNMem|...] [--pos0] [--json] [--curve]
//   xmem verify   ... (same flags; also runs the simulated ground truth)
//   xmem sweep    REQUEST.json [--out FILE] [--no-timings] [--serial]
//                 (profile-once/estimate-many: one job x devices x
//                  allocators x estimators, JSON report on stdout; the
//                  request's optional "allocator_config" object maps a
//                  backend name to its integer policy knobs)
//   xmem plan     REQUEST.json [--out FILE] [--no-timings] [--serial]
//                 [--refine-top-k N | --no-refine]
//                 (multi-GPU planner: ranked DPxTPxPP decompositions of a
//                  GPU budget; the top-K candidates are re-simulated per
//                  rank through the allocator tower; one CPU profile for
//                  the whole two-phase search)
//   xmem models
//   xmem devices
//   xmem backends
//   xmem estimators
//
// Exit code for `estimate`/`verify`: 0 = fits the device, 2 = predicted
// OOM, 1 = usage/config error — so shell scripts can gate submissions on it.
// `sweep`/`plan`: 0 on success (per-device verdicts live in the report),
// 1 on usage/config error (including malformed request JSON).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "alloc/backend_registry.h"
#include "core/estimation_service.h"
#include "core/estimator_registry.h"
#include "gpu/ground_truth.h"
#include "models/workload.h"
#include "models/zoo.h"
#include "util/bytes.h"
#include "util/json.h"

namespace {

using namespace xmem;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  xmem estimate --model NAME --batch N [--optimizer OPT]\n"
               "                [--device rtx3060|rtx4060|a100] [--pos0]\n"
               "                [--allocator NAME] [--estimator NAME]\n"
               "                [--iterations N] [--json] [--curve]\n"
               "  xmem verify   (same flags; adds a simulated ground-truth "
               "run)\n"
               "  xmem sweep    REQUEST.json [--out FILE] [--no-timings] "
               "[--serial]\n"
               "  xmem plan     REQUEST.json [--out FILE] [--no-timings] "
               "[--serial]\n"
               "                [--refine-top-k N | --no-refine]\n"
               "  xmem models\n"
               "  xmem devices\n"
               "  xmem backends   (allocator models for --allocator; knobbed\n"
               "                   backends list their \"allocator_config\"\n"
               "                   request keys)\n"
               "  xmem estimators (estimation engines for --estimator)\n");
  return 1;
}

struct Cli {
  std::string command;
  std::string model;
  int batch = 0;
  std::string optimizer = "AdamW";
  std::string device = "rtx3060";
  std::string allocator = alloc::kDefaultBackendName;
  std::string estimator = "xMem";
  std::string request_file;
  std::string out_file;
  bool pos0 = false;
  bool json = false;
  bool curve = false;
  bool no_timings = false;
  bool serial = false;
  bool no_refine = false;
  int refine_top_k = -1;  ///< -1: keep the request document's value
  int iterations = 3;
};

bool parse_args(int argc, char** argv, Cli& cli) {
  if (argc < 2) return false;
  cli.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--model") {
      const char* v = next("--model");
      if (v == nullptr) return false;
      cli.model = v;
    } else if (arg == "--batch") {
      const char* v = next("--batch");
      if (v == nullptr) return false;
      cli.batch = std::atoi(v);
    } else if (arg == "--optimizer") {
      const char* v = next("--optimizer");
      if (v == nullptr) return false;
      cli.optimizer = v;
    } else if (arg == "--device") {
      const char* v = next("--device");
      if (v == nullptr) return false;
      cli.device = v;
    } else if (arg == "--allocator") {
      const char* v = next("--allocator");
      if (v == nullptr) return false;
      cli.allocator = v;
    } else if (arg == "--estimator") {
      const char* v = next("--estimator");
      if (v == nullptr) return false;
      cli.estimator = v;
    } else if (arg == "--iterations") {
      const char* v = next("--iterations");
      if (v == nullptr) return false;
      cli.iterations = std::atoi(v);
    } else if (arg == "--out") {
      const char* v = next("--out");
      if (v == nullptr) return false;
      cli.out_file = v;
    } else if (arg == "--pos0") {
      cli.pos0 = true;
    } else if (arg == "--json") {
      cli.json = true;
    } else if (arg == "--curve") {
      cli.curve = true;
    } else if (arg == "--no-timings") {
      cli.no_timings = true;
    } else if (arg == "--serial") {
      cli.serial = true;
    } else if (arg == "--no-refine") {
      cli.no_refine = true;
    } else if (arg == "--refine-top-k") {
      const char* v = next("--refine-top-k");
      if (v == nullptr) return false;
      cli.refine_top_k = std::atoi(v);
      if (cli.refine_top_k < 0) {
        std::fprintf(stderr, "--refine-top-k must be >= 0\n");
        return false;
      }
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    } else if ((cli.command == "sweep" || cli.command == "plan") &&
               cli.request_file.empty()) {
      cli.request_file = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

int list_models() {
  std::printf("%-32s %-12s %10s %s\n", "model", "family", "params(M)",
              "batch grid");
  for (const auto& name : models::all_model_names()) {
    const fw::ModelDescriptor model = models::build_model(name, 1);
    const auto grid = models::batch_grid_for(name);
    std::printf("%-32s %-12s %10.1f %d..%d\n", name.c_str(),
                to_string(model.family),
                static_cast<double>(model.param_count()) / 1e6, grid.front(),
                grid.back());
  }
  return 0;
}

int list_devices() {
  for (const gpu::DeviceModel& device : gpu::all_devices()) {
    std::printf("%-20s capacity %-10s M_init %-10s M_fm %-10s job budget %s\n",
                device.name.c_str(), util::format_bytes(device.capacity).c_str(),
                util::format_bytes(device.m_init).c_str(),
                util::format_bytes(device.m_fm).c_str(),
                util::format_bytes(device.job_budget()).c_str());
  }
  return 0;
}

int list_backends() {
  for (const std::string& name : alloc::backend_names()) {
    std::printf("%-18s %s\n", name.c_str(),
                alloc::backend_description(name).c_str());
  }
  std::printf(
      "\nknobbed backends are tuned per sweep/plan request via\n"
      "  \"allocator_config\": {\"<backend>\": {\"<knob>\": <integer>}}\n"
      "(see docs/ALLOCATORS.md for each backend's knob table)\n");
  return 0;
}

int list_estimators() {
  for (const std::string& name : core::estimator_names()) {
    std::printf("%-12s %s\n", name.c_str(),
                core::estimator_description(name).c_str());
  }
  return 0;
}

int run_estimate(const Cli& cli, bool verify) {
  if (cli.model.empty() || cli.batch <= 0) {
    std::fprintf(stderr, "estimate requires --model and --batch > 0\n");
    return 1;
  }
  if (!models::is_known_model(cli.model)) {
    std::fprintf(stderr, "unknown model '%s' (see `xmem models`)\n",
                 cli.model.c_str());
    return 1;
  }
  if (!alloc::is_known_backend(cli.allocator)) {
    std::fprintf(stderr, "unknown allocator '%s' (see `xmem backends`)\n",
                 cli.allocator.c_str());
    return 1;
  }
  if (!core::is_known_estimator(cli.estimator)) {
    std::fprintf(stderr, "unknown estimator '%s' (see `xmem estimators`)\n",
                 cli.estimator.c_str());
    return 1;
  }
  const gpu::DeviceModel device = gpu::device_by_name(cli.device);

  core::TrainJob job;
  job.model_name = cli.model;
  job.batch_size = cli.batch;
  job.optimizer = fw::optimizer_from_string(cli.optimizer);
  job.placement = cli.pos0 ? fw::ZeroGradPlacement::kPos0BeforeBackward
                           : fw::ZeroGradPlacement::kPos1IterStart;

  core::ServiceOptions service_options;
  service_options.threads = 1;  // one question, no fan-out
  core::EstimationService service(service_options);
  const core::EstimateEntry entry = service.estimate(
      cli.estimator, job, device, cli.allocator, cli.iterations, cli.curve);

  if (!entry.supported) {
    std::fprintf(stderr, "estimator %s does not support this job class\n",
                 cli.estimator.c_str());
    return 1;
  }

  std::int64_t truth_peak = -1;
  bool truth_oom = false;
  if (verify) {
    const fw::ModelDescriptor model = models::build_model(cli.model, cli.batch);
    gpu::GroundTruthRunner runner;
    gpu::GroundTruthOptions gt;
    gt.placement = job.placement;
    gt.seed = job.seed;
    const auto truth = runner.run(model, job.optimizer, device, gt);
    truth_oom = truth.oom;
    truth_peak = truth.oom ? -1 : truth.peak_job_bytes;
  }

  if (cli.json) {
    // One serialization for both JSON surfaces: the entry schema of
    // `xmem sweep` (estimation_service.cpp), plus the CLI's job context.
    util::Json out = entry.to_json(/*include_timings=*/!cli.no_timings);
    out["model"] = util::Json(cli.model);
    out["batch"] = util::Json(cli.batch);
    out["optimizer"] = util::Json(cli.optimizer);
    out["placement"] = util::Json(cli.pos0 ? "POS0" : "POS1");
    if (!cli.no_timings) {
      out["estimator_runtime_seconds"] =
          util::Json(entry.timings.total_seconds);
    }
    if (verify) {
      out["ground_truth_oom"] = util::Json(truth_oom);
      if (!truth_oom) out["ground_truth_peak_bytes"] = util::Json(truth_peak);
    }
    std::printf("%s\n", out.dump(2).c_str());
  } else {
    std::printf("job            : %s\n", job.label().c_str());
    std::printf("estimator      : %s\n", cli.estimator.c_str());
    std::printf("device         : %s (job budget %s)\n", device.name.c_str(),
                util::format_bytes(device.job_budget()).c_str());
    std::printf("estimated peak : %s\n",
                util::format_bytes(entry.estimated_peak).c_str());
    std::printf("verdict        : %s\n",
                entry.oom_predicted ? "DOES NOT FIT (OOM predicted)"
                                    : "fits");
    if (verify) {
      if (truth_oom) {
        std::printf("ground truth   : OOM (prediction %s)\n",
                    entry.oom_predicted ? "correct" : "WRONG");
      } else {
        std::printf("ground truth   : %s (error %.2f%%)\n",
                    util::format_bytes(truth_peak).c_str(),
                    100.0 *
                        std::abs(static_cast<double>(entry.estimated_peak -
                                                     truth_peak)) /
                        static_cast<double>(truth_peak));
      }
    }
    std::printf("stages         : profile %.1f ms, analyze %.1f ms, "
                "simulate %.1f ms (total %.1f ms)\n",
                entry.timings.profile_seconds * 1e3,
                entry.timings.analyze_seconds * 1e3,
                entry.timings.simulate_seconds * 1e3,
                entry.timings.total_seconds * 1e3);
  }
  return entry.oom_predicted ? 2 : 0;
}

/// Shared request-file plumbing for the JSON subcommands (`sweep`/`plan`):
/// read + parse the document, hand it to `respond`, emit the report.
int run_request_command(const Cli& cli,
                        util::Json (*respond)(const Cli&, const util::Json&)) {
  if (cli.request_file.empty()) {
    std::fprintf(stderr, "%s requires a REQUEST.json file argument\n",
                 cli.command.c_str());
    return 1;
  }
  std::ifstream in(cli.request_file);
  if (!in) {
    std::fprintf(stderr, "cannot open request file: %s\n",
                 cli.request_file.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  const std::string rendered =
      respond(cli, util::Json::parse(buffer.str())).dump(2);
  if (cli.out_file.empty()) {
    std::printf("%s\n", rendered.c_str());
  } else {
    std::ofstream out(cli.out_file);
    if (!out) {
      std::fprintf(stderr, "cannot write: %s\n", cli.out_file.c_str());
      return 1;
    }
    out << rendered << "\n";
  }
  return 0;
}

util::Json respond_sweep(const Cli& cli, const util::Json& document) {
  const core::EstimateRequest request =
      core::EstimateRequest::from_json(document);
  core::ServiceOptions service_options;
  if (cli.serial) service_options.threads = 1;
  core::EstimationService service(service_options);
  return service.sweep(request).to_json(/*include_timings=*/!cli.no_timings);
}

util::Json respond_plan(const Cli& cli, const util::Json& document) {
  core::PlanRequest request = core::PlanRequest::from_json(document);
  // CLI refinement flags override the request document.
  if (cli.no_refine) {
    request.refine_top_k = 0;
  } else if (cli.refine_top_k >= 0) {
    request.refine_top_k = cli.refine_top_k;
  }
  core::ServiceOptions service_options;
  if (cli.serial) service_options.threads = 1;
  core::EstimationService service(service_options);
  return service.plan(request).to_json(/*include_timings=*/!cli.no_timings);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  if (!parse_args(argc, argv, cli)) return usage();
  try {
    if (cli.command == "models") return list_models();
    if (cli.command == "devices") return list_devices();
    if (cli.command == "backends") return list_backends();
    if (cli.command == "estimators") return list_estimators();
    if (cli.command == "estimate") return run_estimate(cli, /*verify=*/false);
    if (cli.command == "verify") return run_estimate(cli, /*verify=*/true);
    if (cli.command == "sweep") return run_request_command(cli, respond_sweep);
    if (cli.command == "plan") return run_request_command(cli, respond_plan);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
