// NVML-style memory sampler.
//
// The paper's ground truth is "total allocated GPU memory sampled at 1 ms
// intervals via NVML; the maximum across all samples is the peak"
// (§4.1.1). This sampler reproduces that: it observes the simulated
// driver's page-granular used bytes at fixed simulated-time boundaries, so
// sub-millisecond transients can be missed exactly as they are on real
// hardware.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "alloc/cuda_driver_sim.h"
#include "util/sim_clock.h"

namespace xmem::gpu {

class NvmlSampler {
 public:
  NvmlSampler(const util::SimClock& clock,
              const alloc::SimulatedCudaDriver& driver,
              util::TimeUs interval = 1000, bool record_series = false)
      : clock_(clock),
        driver_(driver),
        interval_(interval),
        record_series_(record_series),
        next_sample_(0) {}

  /// Take all samples whose boundary has passed. Call after every
  /// simulated-time advance.
  void poll() {
    while (next_sample_ <= clock_.now()) {
      observe(next_sample_);
      next_sample_ += interval_;
    }
  }

  /// Force one final observation at the current instant (end of run), so a
  /// terminal plateau shorter than one interval is still seen.
  void final_sample() { observe(clock_.now()); }

  std::int64_t peak() const { return peak_; }
  std::size_t sample_count() const { return samples_; }
  const std::vector<std::pair<util::TimeUs, std::int64_t>>& series() const {
    return series_;
  }

 private:
  void observe(util::TimeUs at) {
    const std::int64_t used = driver_.stats().used_bytes;
    if (used > peak_) peak_ = used;
    ++samples_;
    if (record_series_) series_.emplace_back(at, used);
  }

  const util::SimClock& clock_;
  const alloc::SimulatedCudaDriver& driver_;
  util::TimeUs interval_;
  bool record_series_;
  util::TimeUs next_sample_;
  std::int64_t peak_ = 0;
  std::size_t samples_ = 0;
  std::vector<std::pair<util::TimeUs, std::int64_t>> series_;
};

}  // namespace xmem::gpu
