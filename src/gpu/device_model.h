// Target-device models for the paper's three evaluation GPUs.
//
// `capacity` is the card's physical memory; `m_init` the residue the paper
// calls M^init_d (display/driver allocations present for the whole
// experiment); `m_fm` the constant framework footprint M^fm (CUDA context +
// cuBLAS/cuDNN handles). Estimators predict the *job* bytes; the two-round
// validation caps a verification run at m_init + m_fm + estimate (§4.1.4).
#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.h"

namespace xmem::gpu {

struct DeviceModel {
  std::string name;
  std::int64_t capacity = 0;
  std::int64_t m_init = 0;
  std::int64_t m_fm = 0;

  /// Memory the job's allocator can actually reserve.
  std::int64_t job_budget() const { return capacity - m_init - m_fm; }
};

inline DeviceModel rtx3060() {
  return DeviceModel{"GeForce RTX 3060", 12 * util::kGiB,
                     static_cast<std::int64_t>(296 * util::kMiB),
                     static_cast<std::int64_t>(584 * util::kMiB)};
}

inline DeviceModel rtx4060() {
  return DeviceModel{"GeForce RTX 4060", 8 * util::kGiB,
                     static_cast<std::int64_t>(266 * util::kMiB),
                     static_cast<std::int64_t>(584 * util::kMiB)};
}

inline DeviceModel a100_40gb() {
  return DeviceModel{"NVIDIA A100 40GB", 40 * util::kGiB,
                     static_cast<std::int64_t>(420 * util::kMiB),
                     static_cast<std::int64_t>(660 * util::kMiB)};
}

}  // namespace xmem::gpu
