// Target-device models for the paper's three evaluation GPUs.
//
// `capacity` is the card's physical memory; `m_init` the residue the paper
// calls M^init_d (display/driver allocations present for the whole
// experiment); `m_fm` the constant framework footprint M^fm (CUDA context +
// cuBLAS/cuDNN handles). Estimators predict the *job* bytes; the two-round
// validation caps a verification run at m_init + m_fm + estimate (§4.1.4).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/bytes.h"

namespace xmem::gpu {

struct DeviceModel {
  std::string name;
  std::int64_t capacity = 0;
  std::int64_t m_init = 0;
  std::int64_t m_fm = 0;

  /// Memory the job's allocator can actually reserve.
  std::int64_t job_budget() const { return capacity - m_init - m_fm; }
};

inline DeviceModel rtx3060() {
  return DeviceModel{"GeForce RTX 3060", 12 * util::kGiB,
                     static_cast<std::int64_t>(296 * util::kMiB),
                     static_cast<std::int64_t>(584 * util::kMiB)};
}

inline DeviceModel rtx4060() {
  return DeviceModel{"GeForce RTX 4060", 8 * util::kGiB,
                     static_cast<std::int64_t>(266 * util::kMiB),
                     static_cast<std::int64_t>(584 * util::kMiB)};
}

inline DeviceModel a100_40gb() {
  return DeviceModel{"NVIDIA A100 40GB", 40 * util::kGiB,
                     static_cast<std::int64_t>(420 * util::kMiB),
                     static_cast<std::int64_t>(660 * util::kMiB)};
}

/// The paper's three evaluation cards.
inline std::vector<DeviceModel> all_devices() {
  return {rtx3060(), rtx4060(), a100_40gb()};
}

/// Resolve a device by CLI/request-file alias or full NVML name. Shared by
/// xmem_cli and EstimateRequest::from_json so the two front ends accept the
/// same spellings. Throws std::invalid_argument on unknown names.
inline DeviceModel device_by_name(const std::string& name) {
  if (name == "rtx3060" || name == "3060") return rtx3060();
  if (name == "rtx4060" || name == "4060") return rtx4060();
  if (name == "a100" || name == "a100-40gb") return a100_40gb();
  for (const DeviceModel& device : all_devices()) {
    if (device.name == name) return device;
  }
  throw std::invalid_argument("unknown device: " + name +
                              " (rtx3060 | rtx4060 | a100)");
}

}  // namespace xmem::gpu
