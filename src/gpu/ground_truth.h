// Ground-truth runner: executes a training job on the simulated CUDA stack
// (TrainingExecutor -> CachingAllocatorSim -> SimulatedCudaDriver) under a
// real capacity limit, with NVML-style sampling. This plays the role of the
// paper's actual GPU runs — every number the evaluation calls "actual"
// (OOM_jd, M^peak_jid) comes from here.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "alloc/caching_allocator.h"
#include "alloc/cuda_driver_sim.h"
#include "fw/executor.h"
#include "fw/memory_env.h"
#include "gpu/device_model.h"
#include "gpu/nvml_sampler.h"

namespace xmem::gpu {

/// MemoryEnv running on the two-level CUDA allocator tower.
class GpuMemoryEnv final : public fw::MemoryEnv {
 public:
  GpuMemoryEnv(alloc::CachingAllocatorSim& allocator, NvmlSampler& sampler)
      : allocator_(allocator), sampler_(sampler) {}

  std::uint64_t alloc(std::int64_t bytes) override {
    const alloc::AllocOutcome outcome = allocator_.allocate(bytes);
    if (outcome.oom) throw fw::OomError(bytes);
    sampler_.poll();
    return static_cast<std::uint64_t>(outcome.id);
  }

  void free(std::uint64_t handle) override {
    allocator_.free(static_cast<alloc::BlockId>(handle));
    sampler_.poll();
  }

  std::int64_t total_allocated() const override {
    return allocator_.stats().allocated_bytes;
  }

  void tick() override { sampler_.poll(); }

 private:
  alloc::CachingAllocatorSim& allocator_;
  NvmlSampler& sampler_;
};

struct GroundTruthOptions {
  int iterations = 5;
  fw::ZeroGradPlacement placement = fw::ZeroGradPlacement::kPos1IterStart;
  std::uint64_t seed = 1;
  /// Model cuDNN benchmark-mode algorithm search (ablation only; PyTorch's
  /// default is off).
  bool cudnn_benchmark = false;
  /// Override the allocator budget (bytes); < 0 means the device's full
  /// job_budget(). Round-2 validation passes the estimator's prediction.
  std::int64_t budget_override = -1;
  /// Record the reserved/allocated time series (Fig. 1 / Fig. 6 curves).
  bool record_series = false;
};

struct GroundTruthResult {
  bool oom = false;
  /// NVML-sampled peak of the job's driver usage (excludes m_init/m_fm —
  /// the paper subtracts those constants; see DeviceModel).
  std::int64_t peak_job_bytes = 0;
  /// Exact (not sampled) peaks from the allocator, for diagnostics.
  std::int64_t peak_reserved_exact = 0;
  std::int64_t peak_allocated_exact = 0;
  alloc::CachingAllocatorStats allocator_stats;
  /// (time, reserved bytes) and (time, tensor bytes) curves when requested.
  std::vector<std::pair<util::TimeUs, std::int64_t>> reserved_series;
  std::vector<std::pair<util::TimeUs, std::int64_t>> allocated_series;
  /// Segment map at the end of the run (memory_snapshot equivalent).
  std::vector<alloc::SegmentInfo> final_snapshot;
};

class GroundTruthRunner {
 public:
  GroundTruthResult run(const fw::ModelDescriptor& model,
                        fw::OptimizerKind optimizer, const DeviceModel& device,
                        const GroundTruthOptions& options) const;
};

}  // namespace xmem::gpu
