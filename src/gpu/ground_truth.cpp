#include "gpu/ground_truth.h"

#include <algorithm>

namespace xmem::gpu {

namespace {

/// GpuMemoryEnv variant that also records event-granularity curves (the
/// NVML sampler stays the source of the *metric* peak; curves are for the
/// Fig. 1 / Fig. 6 plots, which the paper draws from the snapshot profiler).
class RecordingGpuEnv final : public fw::MemoryEnv {
 public:
  RecordingGpuEnv(alloc::CachingAllocatorSim& allocator, NvmlSampler& sampler,
                  const util::SimClock& clock, GroundTruthResult* out)
      : allocator_(allocator), sampler_(sampler), clock_(clock), out_(out) {}

  std::uint64_t alloc(std::int64_t bytes) override {
    const alloc::AllocOutcome outcome = allocator_.allocate(bytes);
    if (outcome.oom) throw fw::OomError(bytes);
    sampler_.poll();
    record();
    return static_cast<std::uint64_t>(outcome.id);
  }

  void free(std::uint64_t handle) override {
    allocator_.free(static_cast<alloc::BlockId>(handle));
    sampler_.poll();
    record();
  }

  std::int64_t total_allocated() const override {
    return allocator_.stats().allocated_bytes;
  }

  void tick() override { sampler_.poll(); }

 private:
  void record() {
    if (out_ == nullptr) return;
    out_->reserved_series.emplace_back(clock_.now(),
                                       allocator_.stats().reserved_bytes);
    out_->allocated_series.emplace_back(clock_.now(),
                                        allocator_.stats().allocated_bytes);
  }

  alloc::CachingAllocatorSim& allocator_;
  NvmlSampler& sampler_;
  const util::SimClock& clock_;
  GroundTruthResult* out_;
};

}  // namespace

GroundTruthResult GroundTruthRunner::run(const fw::ModelDescriptor& model,
                                         fw::OptimizerKind optimizer,
                                         const DeviceModel& device,
                                         const GroundTruthOptions& options) const {
  std::int64_t budget = options.budget_override >= 0 ? options.budget_override
                                                     : device.job_budget();
  budget = std::max(budget, alloc::SimulatedCudaDriver::kPageSize);

  alloc::SimulatedCudaDriver driver(budget);
  alloc::CachingAllocatorSim allocator(driver);
  util::SimClock clock;
  NvmlSampler sampler(clock, driver, /*interval=*/1000,
                      /*record_series=*/false);

  GroundTruthResult result;
  RecordingGpuEnv env(allocator, sampler, clock,
                      options.record_series ? &result : nullptr);

  fw::ExecOptions exec_options;
  exec_options.iterations = options.iterations;
  exec_options.placement = options.placement;
  exec_options.seed = options.seed;
  exec_options.cudnn_benchmark = options.cudnn_benchmark;

  fw::TrainingExecutor executor(model, optimizer, fw::Backend::kCuda, env,
                                clock, /*profiler=*/nullptr, exec_options);
  try {
    executor.run();
  } catch (const fw::OomError&) {
    result.oom = true;
  }
  sampler.final_sample();

  result.peak_job_bytes = sampler.peak();
  result.peak_reserved_exact = allocator.stats().peak_reserved_bytes;
  result.peak_allocated_exact = allocator.stats().peak_allocated_bytes;
  result.allocator_stats = allocator.stats();
  result.final_snapshot = allocator.snapshot();
  return result;
}

}  // namespace xmem::gpu
