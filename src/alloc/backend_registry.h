// Allocator-backend registry: construct any fw::AllocatorBackend by name.
//
// The simulator, CLI, benches, and the parity harness all select backends
// through this factory, so a new allocator model becomes available
// everywhere by registering one name + factory pair (docs/ALLOCATORS.md
// walks through it). Built-ins:
//
//   pytorch            — CachingAllocatorSim, the CUDACachingAllocator
//                        port (§3.4)
//   pytorch-expandable — expandable-segments + max_split_size variant of
//                        the caching allocator
//   tf-bfc             — TfBfcAllocator, TF-style growing-region BFC
//                        (§6.4(ii))
//   basic-bfc          — BasicBfcAllocator, DNNMem's single-level BFC
//   cub-binned         — CUB CachingDeviceAllocator-style geometric bins
//   stream-pool        — cudaMallocAsync-style stream-ordered pool
//
// Backends with tunable policy take *knobs*: a flat name → integer map
// (JSON surface: `"allocator_config": {"<backend>": {"knob": value}}` on
// sweep/plan requests). Every factory validates its accepted knob set and
// value ranges, throwing std::invalid_argument with an actionable message;
// backends without knobs reject any non-empty map.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "alloc/cuda_driver_sim.h"
#include "fw/backend.h"

namespace xmem::util {
class Json;
}

namespace xmem::alloc {

/// The backend the simulator replays against unless told otherwise.
inline constexpr const char* kDefaultBackendName = "pytorch";

/// Policy knobs for a backend: flat knob name → integer value. Empty means
/// the backend's documented defaults.
using BackendKnobs = std::map<std::string, std::int64_t>;

/// Constructs a backend over the given driver. Driverless models (the
/// unbounded basic-bfc arena) ignore the driver argument.
using BackendFactory = std::function<std::unique_ptr<fw::AllocatorBackend>(
    SimulatedCudaDriver&, const BackendKnobs&)>;

/// Register an additional backend. Throws std::invalid_argument on an empty
/// or already-registered name.
void register_backend(const std::string& name, const std::string& description,
                      BackendFactory factory);

bool is_known_backend(const std::string& name);

/// Registered names in sorted order.
std::vector<std::string> backend_names();

/// One-line description for `xmem backends` and docs tooling.
std::string backend_description(const std::string& name);

/// Construct a backend by name. Throws std::invalid_argument on unknown
/// names (the message lists what is registered) and on unknown or
/// out-of-range knobs (the message names the offending knob).
std::unique_ptr<fw::AllocatorBackend> make_backend(const std::string& name,
                                                   SimulatedCudaDriver& driver,
                                                   const BackendKnobs& knobs);
std::unique_ptr<fw::AllocatorBackend> make_backend(const std::string& name,
                                                   SimulatedCudaDriver& driver);

/// Canonical "knob=value,knob=value" string (empty for default knobs) —
/// the piece of a cache/scratch key that distinguishes configurations.
std::string knobs_fingerprint(const BackendKnobs& knobs);

/// Parse a JSON object of integer knob values. Throws std::invalid_argument
/// (naming the offending key) on non-object input or non-integer values.
BackendKnobs parse_backend_knobs(const util::Json& json,
                                 const std::string& context);

}  // namespace xmem::alloc
