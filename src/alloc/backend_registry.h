// Allocator-backend registry: construct any fw::AllocatorBackend by name.
//
// The simulator, CLI, benches, and the parity harness all select backends
// through this factory, so a new allocator model becomes available
// everywhere by registering one name + factory pair (docs/ALLOCATORS.md
// walks through it). Built-ins:
//
//   pytorch    — CachingAllocatorSim, the CUDACachingAllocator port (§3.4)
//   tf-bfc     — TfBfcAllocator, TF-style growing-region BFC (§6.4(ii))
//   basic-bfc  — BasicBfcAllocator, DNNMem's single-level BFC baseline
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "alloc/cuda_driver_sim.h"
#include "fw/backend.h"

namespace xmem::alloc {

/// The backend the simulator replays against unless told otherwise.
inline constexpr const char* kDefaultBackendName = "pytorch";

/// Constructs a backend over the given driver. Driverless models (the
/// unbounded basic-bfc arena) ignore the argument.
using BackendFactory =
    std::function<std::unique_ptr<fw::AllocatorBackend>(SimulatedCudaDriver&)>;

/// Register an additional backend. Throws std::invalid_argument on an empty
/// or already-registered name.
void register_backend(const std::string& name, const std::string& description,
                      BackendFactory factory);

bool is_known_backend(const std::string& name);

/// Registered names in sorted order.
std::vector<std::string> backend_names();

/// One-line description for `xmem backends` and docs tooling.
std::string backend_description(const std::string& name);

/// Construct a backend by name. Throws std::invalid_argument on unknown
/// names (the message lists what is registered).
std::unique_ptr<fw::AllocatorBackend> make_backend(const std::string& name,
                                                   SimulatedCudaDriver& driver);

}  // namespace xmem::alloc
