// Randomized allocator event streams + the differential parity harness.
//
// generate_event_stream() produces a seeded, fully deterministic alloc/free
// stream shaped like the traces in src/trace/: a few interleaved logical
// streams, LIFO-biased frees (tensor stacks), and a size mixture spanning
// small tensors, layer-sized blocks, and occasional huge activations. The
// same stream replayed through every registered backend
// (alloc/backend_registry.h) with replay_with_invariants() is the parity
// test that keeps allocator refactors honest: shared invariants must hold
// event-by-event on every backend, and peak reserved memory across backends
// must stay within the documented divergence bounds (docs/ALLOCATORS.md).
//
// On failure, shrink_failing_stream() reduces the stream to a small
// reproducer (prefix truncation + per-block pair removal) and dump_stream()
// renders it for the test log, so a parity divergence arrives as a handful
// of events rather than a 10k-event haystack.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fw/backend.h"

namespace xmem::alloc {

/// One event of a generated stream. `block_id` names the logical tensor
/// (unique per allocation); `stream` is the logical CUDA stream it belongs
/// to (frees stay on their allocation's stream, as in profiler traces).
struct StreamEvent {
  std::int64_t ts = 0;
  std::int64_t block_id = 0;
  std::int64_t bytes = 0;
  bool is_alloc = false;
  int stream = 0;
};

struct EventStreamConfig {
  std::uint64_t seed = 1;
  std::size_t num_events = 10000;  ///< generated churn events (pre-drain)
  int num_streams = 2;             ///< interleaved logical streams
  double alloc_bias = 0.55;        ///< P(alloc) when frees are possible
  double lifo_bias = 0.6;          ///< P(free newest) vs uniform pick
  double small_fraction = 0.65;    ///< small-tensor share of the size mix
  double huge_fraction = 0.03;     ///< huge-activation share
  std::int64_t min_small = 64;
  std::int64_t max_small = 1 << 20;         // 1 MiB
  std::int64_t min_large = 1 << 20;
  std::int64_t max_large = 24 * (1 << 20);  // 24 MiB
  std::int64_t min_huge = 24 * (1 << 20);
  std::int64_t max_huge = 80 * (1 << 20);   // 80 MiB
  /// Append frees for every still-live block so conservation-to-zero can be
  /// asserted at stream end.
  bool drain_at_end = true;
};

std::vector<StreamEvent> generate_event_stream(const EventStreamConfig& config);

/// Order-sensitive FNV-1a over every event field — byte-identical streams
/// and nothing else collide (used by the determinism tests).
std::uint64_t stream_fingerprint(const std::vector<StreamEvent>& events);

/// Human-readable reproducer dump (at most `max_lines` events, plus a
/// header with the count and fingerprint).
std::string dump_stream(const std::vector<StreamEvent>& events,
                        std::size_t max_lines = 64);

/// What replay_with_invariants() saw. `ok == false` pinpoints the first
/// violated invariant and the event index it surfaced at.
struct ReplayReport {
  bool ok = true;
  std::string violation;
  std::size_t event_index = 0;
  std::int64_t peak_reserved = 0;   ///< max reserved_bytes over the replay
  std::int64_t peak_active = 0;     ///< max active_bytes over the replay
  std::int64_t peak_live_bytes = 0; ///< max sum of live *requested* bytes
  fw::BackendStats final_stats;
};

/// Replay `events` through `backend`, checking the shared backend contract
/// after every event:
///   * active_bytes == sum of charged bytes over live blocks (conservation)
///   * reserved_bytes >= active_bytes >= live requested bytes
///   * peaks are monotone and >= their base counters
///   * num_allocs - num_frees == num_live_blocks
/// OOM aborts the replay (report stays ok) — parity streams are meant to be
/// replayed against effectively unbounded drivers.
ReplayReport replay_with_invariants(fw::AllocatorBackend& backend,
                                    const std::vector<StreamEvent>& events);

/// Shrink a failing stream to a small reproducer: binary-search the
/// shortest failing prefix (valid because a violation at event i fails
/// every longer prefix too), then greedily drop whole alloc/free block
/// pairs while `still_fails` holds. `still_fails` must build a fresh
/// backend per call. Returns empty if `events` does not fail.
std::vector<StreamEvent> shrink_failing_stream(
    const std::vector<StreamEvent>& events,
    const std::function<bool(const std::vector<StreamEvent>&)>& still_fails);

}  // namespace xmem::alloc
