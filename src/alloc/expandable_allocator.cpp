#include "alloc/expandable_allocator.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace xmem::alloc {

namespace {
// Allocator-owned VA bases for the two expandable segments. These are the
// allocator's addresses (what block handles point into), disjoint from the
// driver's VA space, and far enough apart that neither segment can grow
// into the other in any simulated workload.
constexpr std::uint64_t kSmallSegmentBase = 0x010000000000ULL;  // 1 TiB
constexpr std::uint64_t kLargeSegmentBase = 0x400000000000ULL;  // 64 TiB
}  // namespace

struct ExpandableSegmentsAllocator::Block {
  std::uint64_t addr = 0;
  std::int64_t size = 0;
  bool allocated = false;
  std::int64_t id = -1;
  Block* prev = nullptr;
  Block* next = nullptr;
  Segment* owner = nullptr;
};

bool ExpandableSegmentsAllocator::Less::operator()(const Block* a,
                                                   const Block* b) const {
  if (a->size != b->size) return a->size < b->size;
  return a->addr < b->addr;
}

ExpandableSegmentsAllocator::ExpandableSegmentsAllocator(
    SimulatedCudaDriver& driver, const ExpandableConfig& config)
    : driver_(driver), config_(config) {
  if (config.page_bytes <= 0) {
    throw std::invalid_argument(
        "pytorch-expandable: page_bytes must be > 0 (got " +
        std::to_string(config.page_bytes) + ")");
  }
  if (config.max_split_size_bytes < 0) {
    throw std::invalid_argument(
        "pytorch-expandable: max_split_size_bytes must be >= 0 "
        "(0 = unlimited; got " +
        std::to_string(config.max_split_size_bytes) + ")");
  }
  small_.base = kSmallSegmentBase;
  large_.base = kLargeSegmentBase;
}

ExpandableSegmentsAllocator::~ExpandableSegmentsAllocator() = default;

std::int64_t ExpandableSegmentsAllocator::round_size(std::int64_t size) {
  if (size < kMinBlockSize) return kMinBlockSize;
  return util::round_up(size, kMinBlockSize);
}

std::unique_ptr<ExpandableSegmentsAllocator::Block>
ExpandableSegmentsAllocator::acquire_block() {
  if (spare_blocks_.empty()) return std::make_unique<Block>();
  auto block = std::move(spare_blocks_.back());
  spare_blocks_.pop_back();
  *block = Block{};
  return block;
}

void ExpandableSegmentsAllocator::recycle_block(std::uint64_t addr) {
  auto it = blocks_.find(addr);
  assert(it != blocks_.end());
  spare_blocks_.push_back(std::move(it->second));
  blocks_.erase(it);
}

ExpandableSegmentsAllocator::Segment& ExpandableSegmentsAllocator::pool_for(
    std::int64_t rounded) {
  return rounded <= kSmallSize ? small_ : large_;
}

bool ExpandableSegmentsAllocator::may_split(const Block& block) const {
  const std::int64_t cap = config_.max_split_size_bytes;
  return cap == 0 || block.size <= cap;
}

ExpandableSegmentsAllocator::Block*
ExpandableSegmentsAllocator::find_free_block(Segment& seg,
                                             std::int64_t rounded) {
  Block key;
  key.size = rounded;
  key.addr = 0;
  const std::int64_t cap = config_.max_split_size_bytes;
  for (auto it = seg.free_blocks.lower_bound(&key);
       it != seg.free_blocks.end(); ++it) {
    Block* block = *it;
    // max_split_size semantics: an over-cap free block is never split, so
    // it may only be reused (whole) by a request that is itself over the
    // cap — small requests skip past it rather than swallowing it.
    const bool oversize = cap > 0 && block->size > cap;
    if (!oversize || rounded > cap) {
      seg.free_blocks.erase(it);
      return block;
    }
  }
  return nullptr;
}

ExpandableSegmentsAllocator::Block* ExpandableSegmentsAllocator::expand(
    Segment& seg, std::int64_t rounded) {
  // Grow the segment by just what the (possibly free) tail is missing,
  // rounded up to the page granularity. A free tail that is already large
  // enough only reaches here when the split cap blocked its reuse — in that
  // case it must not be extended (that would hand an over-cap block to an
  // under-cap request); a fresh block is appended past it instead.
  std::int64_t needed = rounded;
  Block* tail = seg.tail;
  const bool extend_tail =
      tail != nullptr && !tail->allocated && tail->size < rounded;
  if (extend_tail) needed -= tail->size;
  const std::int64_t grow = util::round_up(needed, config_.page_bytes);

  auto addr = driver_.cuda_malloc(grow);
  if (!addr.has_value()) {
    // Return the other segment's trailing free extents and retry once (the
    // expandable analogue of the reclaim-then-retry step).
    trim_segment(&seg == &small_ ? large_ : small_);
    addr = driver_.cuda_malloc(grow);
  }
  if (!addr.has_value()) return nullptr;

  seg.extents.push_back(Extent{*addr, grow});
  stats_.reserved_bytes += grow;
  stats_.peak_reserved_bytes =
      std::max(stats_.peak_reserved_bytes, stats_.reserved_bytes);

  Block* result = nullptr;
  if (extend_tail) {
    seg.free_blocks.erase(tail);
    tail->size += grow;
    result = tail;
  } else {
    auto block = acquire_block();
    block->addr = seg.base + static_cast<std::uint64_t>(seg.span);
    block->size = grow;
    block->prev = tail;
    block->owner = &seg;
    if (tail != nullptr) tail->next = block.get();
    seg.tail = block.get();
    result = block.get();
    blocks_[result->addr] = std::move(block);
  }
  seg.span += grow;
  return result;
}

fw::BackendAllocResult ExpandableSegmentsAllocator::backend_alloc(
    std::int64_t bytes) {
  if (bytes <= 0) {
    throw std::invalid_argument(
        "ExpandableSegmentsAllocator::backend_alloc: bytes <= 0");
  }
  const std::int64_t rounded = round_size(bytes);
  Segment& seg = pool_for(rounded);

  Block* block = find_free_block(seg, rounded);
  if (block == nullptr) block = expand(seg, rounded);
  if (block == nullptr) {
    return fw::BackendAllocResult{-1, 0, true};
  }

  const std::int64_t remainder = block->size - rounded;
  const std::int64_t min_remainder =
      (&seg == &small_) ? kMinBlockSize : kSmallSize + 1;
  if (remainder >= min_remainder && may_split(*block)) {
    auto rest = acquire_block();
    rest->addr = block->addr + static_cast<std::uint64_t>(rounded);
    rest->size = remainder;
    rest->prev = block;
    rest->next = block->next;
    rest->owner = &seg;
    if (block->next != nullptr) block->next->prev = rest.get();
    block->next = rest.get();
    block->size = rounded;
    if (seg.tail == block) seg.tail = rest.get();
    seg.free_blocks.insert(rest.get());
    blocks_[rest->addr] = std::move(rest);
  }

  block->allocated = true;
  block->id = next_id_++;
  live_[block->id] = block;
  stats_.active_bytes += block->size;
  stats_.peak_active_bytes =
      std::max(stats_.peak_active_bytes, stats_.active_bytes);
  ++stats_.num_allocs;
  return fw::BackendAllocResult{block->id, block->size, false};
}

void ExpandableSegmentsAllocator::backend_free(std::int64_t id) {
  auto it = live_.find(id);
  if (it == live_.end()) {
    throw std::logic_error(
        "ExpandableSegmentsAllocator::backend_free: unknown id");
  }
  Block* block = it->second;
  live_.erase(it);
  stats_.active_bytes -= block->size;
  ++stats_.num_frees;
  block->allocated = false;
  block->id = -1;
  Segment& seg = *block->owner;

  if (Block* prev = block->prev; prev != nullptr && !prev->allocated) {
    seg.free_blocks.erase(prev);
    prev->size += block->size;
    prev->next = block->next;
    if (block->next != nullptr) block->next->prev = prev;
    if (seg.tail == block) seg.tail = prev;
    recycle_block(block->addr);
    block = prev;
  }
  if (Block* next = block->next; next != nullptr && !next->allocated) {
    seg.free_blocks.erase(next);
    block->size += next->size;
    block->next = next->next;
    if (next->next != nullptr) next->next->prev = block;
    if (seg.tail == next) seg.tail = block;
    recycle_block(next->addr);
  }
  seg.free_blocks.insert(block);
}

void ExpandableSegmentsAllocator::trim_segment(Segment& seg) {
  // Release trailing wholly-free extents, newest first — the only part of
  // an expandable segment that can be unmapped without moving live blocks.
  while (!seg.extents.empty()) {
    Block* tail = seg.tail;
    if (tail == nullptr || tail->allocated) break;
    const Extent extent = seg.extents.back();
    if (tail->size < extent.bytes) break;
    driver_.cuda_free(extent.driver_addr);
    stats_.reserved_bytes -= extent.bytes;
    seg.span -= extent.bytes;
    seg.free_blocks.erase(tail);
    if (tail->size == extent.bytes) {
      if (tail->prev != nullptr) tail->prev->next = nullptr;
      seg.tail = tail->prev;
      recycle_block(tail->addr);
    } else {
      tail->size -= extent.bytes;
      seg.free_blocks.insert(tail);
    }
    seg.extents.pop_back();
  }
}

void ExpandableSegmentsAllocator::backend_trim() {
  trim_segment(small_);
  trim_segment(large_);
}

void ExpandableSegmentsAllocator::backend_reset() {
  for (Segment* seg : {&small_, &large_}) {
    for (const Extent& extent : seg->extents) {
      driver_.cuda_free(extent.driver_addr);
    }
    seg->extents.clear();
    seg->free_blocks.clear();
    seg->tail = nullptr;
    seg->span = 0;
  }
  for (auto& [addr, block] : blocks_) {
    spare_blocks_.push_back(std::move(block));
  }
  blocks_.clear();
  live_.clear();
  next_id_ = 1;
  stats_ = fw::BackendStats{};
}

fw::BackendStats ExpandableSegmentsAllocator::backend_stats() const {
  fw::BackendStats s = stats_;
  s.num_segments = static_cast<std::int64_t>(small_.extents.size() +
                                             large_.extents.size());
  s.num_live_blocks = static_cast<std::int64_t>(live_.size());
  return s;
}

}  // namespace xmem::alloc
