// PyTorch caching allocator with expandable segments — the
// `expandable_segments:True` + `max_split_size_mb` configuration of the
// CUDACachingAllocator that the base port (caching_allocator.h) explicitly
// leaves out.
//
// Policy differences from the base "pytorch" backend:
//
//   * One *expandable segment* per pool (small/large) instead of many
//     fixed-size buffers: the segment is a contiguous allocator-owned VA
//     range grown in `page_bytes` increments, each increment charged to the
//     driver as its own reservation (upstream maps physical pages into a
//     reserved VA range with cuMemMap; the driver charge models the
//     physical side).
//   * Because growth is incremental, a request that misses the cache only
//     reserves what the tail of the segment is missing — no 20 MiB
//     over-reservation buckets, so reserved tracks active much tighter.
//   * `max_split_size_bytes` caps splitting the way max_split_size_mb does
//     upstream: free blocks larger than the cap are never split, and can
//     only be reused whole by requests that are themselves over the cap.
//     0 means unlimited (the upstream default).
//   * backend_trim() releases the trailing wholly-free extents of each
//     segment (the only part an expandable segment can return).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "alloc/cuda_driver_sim.h"
#include "fw/backend.h"

namespace xmem::alloc {

struct ExpandableConfig {
  /// Growth granularity of an expandable segment. Driver reservations are
  /// made in multiples of this.
  std::int64_t page_bytes = 2 * util::kMiB;
  /// Free blocks larger than this are never split (0 = unlimited, the
  /// upstream max_split_size default).
  std::int64_t max_split_size_bytes = 0;
};

class ExpandableSegmentsAllocator final : public fw::AllocatorBackend {
 public:
  // Same request-rounding and pool-classification constants as the base
  // caching allocator (c10/cuda/CUDACachingAllocator.cpp).
  static constexpr std::int64_t kMinBlockSize = 512;
  static constexpr std::int64_t kSmallSize = util::kMiB;

  /// Throws std::invalid_argument on a malformed config (non-positive
  /// page_bytes, negative split cap).
  ExpandableSegmentsAllocator(SimulatedCudaDriver& driver,
                              const ExpandableConfig& config);
  ~ExpandableSegmentsAllocator();
  ExpandableSegmentsAllocator(const ExpandableSegmentsAllocator&) = delete;
  ExpandableSegmentsAllocator& operator=(const ExpandableSegmentsAllocator&) =
      delete;

  static std::int64_t round_size(std::int64_t size);

  // fw::AllocatorBackend.
  std::string_view backend_name() const override { return "pytorch-expandable"; }
  fw::BackendAllocResult backend_alloc(std::int64_t bytes) override;
  void backend_free(std::int64_t id) override;
  fw::BackendStats backend_stats() const override;
  std::int64_t backend_round(std::int64_t bytes) const override {
    return round_size(bytes);
  }
  void backend_trim() override;
  void backend_reset() override;

 private:
  struct Block;
  struct Less {
    bool operator()(const Block* a, const Block* b) const;
  };
  /// One driver reservation backing a slice of a segment's VA range.
  struct Extent {
    std::uint64_t driver_addr = 0;
    std::int64_t bytes = 0;
  };
  /// An expandable segment: a contiguous VA range [base, base+span) backed
  /// by a stack of extents, holding one block list.
  struct Segment {
    std::uint64_t base = 0;
    std::int64_t span = 0;          ///< VA bytes currently backed
    std::vector<Extent> extents;    ///< growth history, newest last
    std::set<Block*, Less> free_blocks;
    Block* tail = nullptr;          ///< last block in address order
  };

  Segment& pool_for(std::int64_t rounded);
  Block* find_free_block(Segment& seg, std::int64_t rounded);
  Block* expand(Segment& seg, std::int64_t rounded);
  bool may_split(const Block& block) const;
  void trim_segment(Segment& seg);
  std::unique_ptr<Block> acquire_block();
  void recycle_block(std::uint64_t addr);

  SimulatedCudaDriver& driver_;
  ExpandableConfig config_;
  Segment small_;
  Segment large_;
  std::map<std::uint64_t, std::unique_ptr<Block>> blocks_;
  std::map<std::int64_t, Block*> live_;
  std::vector<std::unique_ptr<Block>> spare_blocks_;
  std::int64_t next_id_ = 1;
  fw::BackendStats stats_;
};

}  // namespace xmem::alloc
