// TensorFlow-style BFC allocator — the §6.4(ii) generalization: the BFC
// core is framework-agnostic, but the policies around it differ, and
// "accurately modelling each allocator is crucial". Differences from the
// PyTorch port that measurably change reserved memory:
//
//   * 256-byte rounding (PyTorch: 512);
//   * one pool, no 2 MiB/20 MiB buffer classes: memory is acquired as
//     growing *regions*, each try doubling the previous region size;
//   * regions are never returned to the device (no empty_cache, no
//     reclaim-then-retry) — OOM is driver failure at region-growth time.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "alloc/cuda_driver_sim.h"
#include "fw/backend.h"

namespace xmem::alloc {

struct TfAllocOutcome {
  std::int64_t id = -1;
  bool oom = false;
  std::int64_t rounded_size = 0;
};

struct TfBfcStats {
  std::int64_t allocated_bytes = 0;
  std::int64_t peak_allocated_bytes = 0;
  std::int64_t region_bytes = 0;  ///< total acquired from the driver
  std::int64_t num_regions = 0;
  std::int64_t num_allocs = 0;
  std::int64_t num_frees = 0;
};

class TfBfcAllocator final : public fw::AllocatorBackend {
 public:
  static constexpr std::int64_t kMinAllocationSize = 256;
  static constexpr std::int64_t kInitialRegionSize = 2 * 1024 * 1024;

  explicit TfBfcAllocator(SimulatedCudaDriver& driver);
  ~TfBfcAllocator();
  TfBfcAllocator(const TfBfcAllocator&) = delete;
  TfBfcAllocator& operator=(const TfBfcAllocator&) = delete;

  static std::int64_t round_size(std::int64_t bytes);

  TfAllocOutcome allocate(std::int64_t bytes);
  void free(std::int64_t id);

  const TfBfcStats& stats() const { return stats_; }
  std::size_t num_live() const { return live_.size(); }

  // fw::AllocatorBackend. Regions are never returned to the device, so
  // reserved_bytes is monotone and backend_trim() stays the default no-op.
  std::string_view backend_name() const override { return "tf-bfc"; }
  fw::BackendAllocResult backend_alloc(std::int64_t bytes) override {
    const TfAllocOutcome outcome = allocate(bytes);
    return fw::BackendAllocResult{outcome.id, outcome.rounded_size,
                                  outcome.oom};
  }
  void backend_free(std::int64_t id) override { free(id); }
  fw::BackendStats backend_stats() const override {
    fw::BackendStats s;
    s.active_bytes = stats_.allocated_bytes;
    s.peak_active_bytes = stats_.peak_allocated_bytes;
    s.reserved_bytes = stats_.region_bytes;
    s.peak_reserved_bytes = stats_.region_bytes;
    s.num_allocs = stats_.num_allocs;
    s.num_frees = stats_.num_frees;
    s.num_segments = stats_.num_regions;
    s.num_live_blocks = static_cast<std::int64_t>(live_.size());
    return s;
  }
  std::int64_t backend_round(std::int64_t bytes) const override {
    return round_size(bytes);
  }
  void backend_reset() override;

 private:
  struct Chunk;
  struct Less {
    bool operator()(const Chunk* a, const Chunk* b) const;
  };

  Chunk* extend(std::int64_t rounded);
  std::unique_ptr<Chunk> acquire_chunk();
  void recycle_chunk(std::uint64_t addr);

  SimulatedCudaDriver& driver_;
  std::int64_t next_region_size_ = kInitialRegionSize;
  std::int64_t next_id_ = 1;
  std::map<std::uint64_t, std::unique_ptr<Chunk>> chunks_;
  std::map<std::int64_t, Chunk*> live_;
  std::set<Chunk*, Less> free_chunks_;
  // Retired Chunk nodes recycled across backend_reset() replays.
  std::vector<std::unique_ptr<Chunk>> spare_chunks_;
  TfBfcStats stats_;
};

}  // namespace xmem::alloc
