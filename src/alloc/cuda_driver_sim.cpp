#include "alloc/cuda_driver_sim.h"

#include <algorithm>
#include <stdexcept>

namespace xmem::alloc {

SimulatedCudaDriver::SimulatedCudaDriver(std::int64_t capacity)
    : capacity_(capacity), next_addr_(kVaBase) {
  if (capacity <= 0) {
    throw std::invalid_argument("SimulatedCudaDriver: capacity must be > 0");
  }
}

std::optional<std::uint64_t> SimulatedCudaDriver::cuda_malloc(
    std::int64_t size) {
  if (size <= 0) {
    throw std::invalid_argument("cuda_malloc: size must be > 0");
  }
  const std::int64_t page_bytes = util::round_up(size, kPageSize);
  if (stats_.used_bytes + page_bytes > capacity_) {
    ++stats_.num_oom_failures;
    return std::nullopt;
  }
  const std::uint64_t addr = next_addr_;
  // Keep reservations disjoint in VA space and page-aligned.
  next_addr_ += static_cast<std::uint64_t>(page_bytes) + kPageSize;
  reservations_[addr] = Reservation{size, page_bytes};
  stats_.used_bytes += page_bytes;
  stats_.requested_bytes += size;
  stats_.peak_used_bytes = std::max(stats_.peak_used_bytes, stats_.used_bytes);
  ++stats_.num_mallocs;
  return addr;
}

void SimulatedCudaDriver::cuda_free(std::uint64_t addr) {
  auto it = reservations_.find(addr);
  if (it == reservations_.end()) {
    throw std::logic_error("cuda_free: unknown address");
  }
  stats_.used_bytes -= it->second.page_bytes;
  stats_.requested_bytes -= it->second.requested;
  ++stats_.num_frees;
  reservations_.erase(it);
}

void SimulatedCudaDriver::reset() {
  reservations_.clear();
  stats_ = DriverStats{};
  next_addr_ = kVaBase;
}

std::optional<std::int64_t> SimulatedCudaDriver::reservation_size(
    std::uint64_t addr) const {
  auto it = reservations_.find(addr);
  if (it == reservations_.end()) return std::nullopt;
  return it->second.requested;
}

}  // namespace xmem::alloc
