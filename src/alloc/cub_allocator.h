// CUB-style binned caching allocator — the cub::CachingDeviceAllocator
// semantics that CTranslate2 wires in as its CUDA allocator (SNIPPETS.md
// Snippet 2): geometric size bins, one device reservation per block (no
// segments, no splitting), and a bounded cache of freed blocks.
//
//   * A request is rounded up to the nearest bin: bin sizes are
//     bin_growth^k for min_bin <= k <= max_bin. Requests past the largest
//     bin are served exactly, straight from the driver, and never cached.
//   * alloc: reuse the lowest-addressed cached block of that exact bin,
//     else cudaMalloc the bin size. A driver OOM frees the whole cache and
//     retries once.
//   * free: the block returns to the cache unless that would push the
//     cache past max_cached_bytes, in which case it goes straight back to
//     the driver (max_cached_bytes = 0 disables caching entirely).
//   * backend_trim() is FreeAllCached().
//
// Defaults (bin_growth=2, min_bin=9 → 512 B, max_bin=25 → 32 MiB,
// max_cached_bytes=256 MiB) keep the pow-2 rounding waste inside the parity
// harness's 2x divergence band; CTranslate2 ships growth=4/min=3/max=12
// with a 200 MB cache, reachable through the knobs.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "alloc/cuda_driver_sim.h"
#include "fw/backend.h"

namespace xmem::alloc {

struct CubConfig {
  std::int64_t bin_growth = 2;
  std::int64_t min_bin = 9;
  std::int64_t max_bin = 25;
  std::int64_t max_cached_bytes = 256 * util::kMiB;
};

class CubBinnedAllocator final : public fw::AllocatorBackend {
 public:
  /// Throws std::invalid_argument on a malformed bin config: growth < 2,
  /// min_bin < 0, max_bin < min_bin, a largest bin that overflows 64 bits,
  /// or a negative cache bound.
  CubBinnedAllocator(SimulatedCudaDriver& driver, const CubConfig& config);

  CubBinnedAllocator(const CubBinnedAllocator&) = delete;
  CubBinnedAllocator& operator=(const CubBinnedAllocator&) = delete;

  // fw::AllocatorBackend.
  std::string_view backend_name() const override { return "cub-binned"; }
  fw::BackendAllocResult backend_alloc(std::int64_t bytes) override;
  void backend_free(std::int64_t id) override;
  fw::BackendStats backend_stats() const override;
  std::int64_t backend_round(std::int64_t bytes) const override;
  void backend_trim() override;
  void backend_reset() override;

  std::int64_t cached_bytes() const { return cached_bytes_; }
  /// Driver-level cudaMalloc calls issued so far (cache effectiveness).
  std::int64_t num_driver_mallocs() const { return num_driver_mallocs_; }

 private:
  struct LiveBlock {
    std::uint64_t addr = 0;
    std::int64_t bytes = 0;   ///< bin size (or exact size when oversize)
    bool oversize = false;    ///< past the largest bin: never cached
  };

  void free_all_cached();

  SimulatedCudaDriver& driver_;
  CubConfig config_;
  std::int64_t largest_bin_bytes_ = 0;
  // Cached (freed, still reserved) blocks per bin size, lowest address
  // first for deterministic reuse.
  std::map<std::int64_t, std::set<std::uint64_t>> cached_;
  std::int64_t cached_bytes_ = 0;
  std::map<std::int64_t, LiveBlock> live_;
  std::int64_t next_id_ = 1;
  std::int64_t num_driver_mallocs_ = 0;
  fw::BackendStats stats_;
};

}  // namespace xmem::alloc
