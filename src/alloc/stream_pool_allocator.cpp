#include "alloc/stream_pool_allocator.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

namespace xmem::alloc {

struct StreamPoolAllocator::Block {
  std::uint64_t addr = 0;
  std::int64_t size = 0;
  bool allocated = false;
  std::int64_t id = -1;
  Block* prev = nullptr;
  Block* next = nullptr;
  std::uint64_t chunk_addr = 0;  ///< driver reservation base of the chunk
};

bool StreamPoolAllocator::Less::operator()(const Block* a,
                                           const Block* b) const {
  if (a->size != b->size) return a->size < b->size;
  return a->addr < b->addr;
}

StreamPoolAllocator::StreamPoolAllocator(SimulatedCudaDriver& driver,
                                         const StreamPoolConfig& config)
    : driver_(driver), config_(config) {
  if (config.chunk_bytes <= 0) {
    throw std::invalid_argument(
        "stream-pool: chunk_bytes must be > 0 (got " +
        std::to_string(config.chunk_bytes) + ")");
  }
  if (config.release_threshold_bytes < 0) {
    throw std::invalid_argument(
        "stream-pool: release_threshold_bytes must be >= 0 (got " +
        std::to_string(config.release_threshold_bytes) + ")");
  }
}

StreamPoolAllocator::~StreamPoolAllocator() = default;

std::unique_ptr<StreamPoolAllocator::Block>
StreamPoolAllocator::acquire_block() {
  if (spare_blocks_.empty()) return std::make_unique<Block>();
  auto block = std::move(spare_blocks_.back());
  spare_blocks_.pop_back();
  *block = Block{};
  return block;
}

void StreamPoolAllocator::recycle_block(std::uint64_t addr) {
  auto it = blocks_.find(addr);
  assert(it != blocks_.end());
  spare_blocks_.push_back(std::move(it->second));
  blocks_.erase(it);
}

StreamPoolAllocator::Block* StreamPoolAllocator::grow(std::int64_t rounded) {
  const std::int64_t chunk = std::max(config_.chunk_bytes, rounded);
  auto addr = driver_.cuda_malloc(chunk);
  if (!addr.has_value()) {
    // Pool OOM path: give everything idle back to the driver, retry once.
    release_free_chunks(0);
    addr = driver_.cuda_malloc(chunk);
  }
  if (!addr.has_value()) return nullptr;

  auto block = acquire_block();
  block->addr = *addr;
  block->size = chunk;
  block->chunk_addr = *addr;
  Block* raw = block.get();
  blocks_[raw->addr] = std::move(block);
  stats_.reserved_bytes += chunk;
  stats_.peak_reserved_bytes =
      std::max(stats_.peak_reserved_bytes, stats_.reserved_bytes);
  ++stats_.num_segments;
  return raw;
}

fw::BackendAllocResult StreamPoolAllocator::backend_alloc(std::int64_t bytes) {
  if (bytes <= 0) {
    throw std::invalid_argument(
        "StreamPoolAllocator::backend_alloc: bytes <= 0");
  }
  const std::int64_t rounded = backend_round(bytes);

  Block key;
  key.size = rounded;
  key.addr = 0;
  Block* block = nullptr;
  auto it = free_blocks_.lower_bound(&key);
  if (it != free_blocks_.end()) {
    block = *it;
    free_blocks_.erase(it);
  } else {
    block = grow(rounded);
    if (block == nullptr) return fw::BackendAllocResult{-1, 0, true};
  }

  if (block->size - rounded >= kAlignment) {
    auto remainder = acquire_block();
    remainder->addr = block->addr + static_cast<std::uint64_t>(rounded);
    remainder->size = block->size - rounded;
    remainder->prev = block;
    remainder->next = block->next;
    remainder->chunk_addr = block->chunk_addr;
    if (block->next != nullptr) block->next->prev = remainder.get();
    block->next = remainder.get();
    block->size = rounded;
    free_blocks_.insert(remainder.get());
    blocks_[remainder->addr] = std::move(remainder);
  }

  block->allocated = true;
  block->id = next_id_++;
  live_[block->id] = block;
  stats_.active_bytes += block->size;
  stats_.peak_active_bytes =
      std::max(stats_.peak_active_bytes, stats_.active_bytes);
  ++stats_.num_allocs;
  return fw::BackendAllocResult{block->id, block->size, false};
}

void StreamPoolAllocator::backend_free(std::int64_t id) {
  auto it = live_.find(id);
  if (it == live_.end()) {
    throw std::logic_error("StreamPoolAllocator::backend_free: unknown id");
  }
  Block* block = it->second;
  live_.erase(it);
  stats_.active_bytes -= block->size;
  ++stats_.num_frees;
  block->allocated = false;
  block->id = -1;

  if (Block* prev = block->prev; prev != nullptr && !prev->allocated) {
    free_blocks_.erase(prev);
    prev->size += block->size;
    prev->next = block->next;
    if (block->next != nullptr) block->next->prev = prev;
    recycle_block(block->addr);
    block = prev;
  }
  if (Block* next = block->next; next != nullptr && !next->allocated) {
    free_blocks_.erase(next);
    block->size += next->size;
    block->next = next->next;
    if (next->next != nullptr) next->next->prev = block;
    recycle_block(next->addr);
  }
  free_blocks_.insert(block);

  // The stream-ordered trim: shed wholly-free chunks until the idle
  // (reserved minus active) memory fits under the release threshold.
  if (stats_.reserved_bytes - stats_.active_bytes >
      config_.release_threshold_bytes) {
    const std::int64_t before = stats_.num_segments;
    release_free_chunks(config_.release_threshold_bytes);
    num_threshold_releases_ += before - stats_.num_segments;
  }
}

void StreamPoolAllocator::release_free_chunks(std::int64_t keep_idle_bytes) {
  // Release chunks whose whole extent is one free block, lowest address
  // first, stopping once idle memory is back under the bound.
  std::vector<Block*> releasable;
  for (auto& [addr, block] : blocks_) {
    if (!block->allocated && block->prev == nullptr &&
        block->next == nullptr) {
      releasable.push_back(block.get());
    }
  }
  for (Block* block : releasable) {
    if (stats_.reserved_bytes - stats_.active_bytes <= keep_idle_bytes) break;
    free_blocks_.erase(block);
    driver_.cuda_free(block->chunk_addr);
    stats_.reserved_bytes -= block->size;
    --stats_.num_segments;
    recycle_block(block->addr);
  }
}

void StreamPoolAllocator::backend_trim() { release_free_chunks(0); }

void StreamPoolAllocator::backend_reset() {
  for (auto& [addr, block] : blocks_) {
    if (block->prev == nullptr) driver_.cuda_free(block->chunk_addr);
  }
  for (auto& [addr, block] : blocks_) {
    spare_blocks_.push_back(std::move(block));
  }
  blocks_.clear();
  live_.clear();
  free_blocks_.clear();
  next_id_ = 1;
  num_threshold_releases_ = 0;
  stats_ = fw::BackendStats{};
}

fw::BackendStats StreamPoolAllocator::backend_stats() const {
  fw::BackendStats s = stats_;
  s.num_live_blocks = static_cast<std::int64_t>(live_.size());
  return s;
}

}  // namespace xmem::alloc
