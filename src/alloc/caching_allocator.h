// C++ port of PyTorch's CUDACachingAllocator (the "first level" of the
// paper's two-level simulation, Section 3.4).
//
// Implements the allocator mechanisms the paper identifies as essential for
// accurate estimation:
//   (i)   Round up      — requests rounded to 512-byte multiples
//   (ii)  Segments      — 2 MiB small buffers / 20 MiB large buffers /
//                         2 MiB-rounded huge allocations, matching
//                         c10/cuda/CUDACachingAllocator.cpp constants
//   (iii) Algorithm     — best-fit with splitting and coalescing (BFC)
//   (iv)  Caching       — freed blocks stay cached inside their segment
//   (v)   OOM semantics — a failed cudaMalloc first reclaims all unsplit
//                         cached segments and retries; OOM is signalled only
//                         when both levels fail after reclamation
//
// Restrictions relative to upstream: single stream, no expandable segments,
// no garbage-collection fraction, default (unlimited) max_split_size. These
// features are off by default upstream and none of the paper's workloads
// enable them.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "alloc/cuda_driver_sim.h"
#include "fw/backend.h"

namespace xmem::alloc {

/// Opaque handle to a live allocation.
using BlockId = std::int64_t;
inline constexpr BlockId kInvalidBlock = -1;

struct CachingAllocatorStats {
  std::int64_t allocated_bytes = 0;       ///< rounded bytes in live blocks
  std::int64_t peak_allocated_bytes = 0;
  std::int64_t requested_bytes = 0;       ///< pre-rounding bytes in live blocks
  std::int64_t reserved_bytes = 0;        ///< bytes in segments held from driver
  std::int64_t peak_reserved_bytes = 0;
  std::int64_t num_allocs = 0;
  std::int64_t num_frees = 0;
  std::int64_t num_splits = 0;
  std::int64_t num_coalesces = 0;
  std::int64_t num_segments_allocated = 0;
  std::int64_t num_segments_released = 0;
  std::int64_t num_cache_reclaims = 0;  ///< release-cached-then-retry episodes
};

/// One block in a segment snapshot (Fig. 2 / Fig. 6 style dumps).
struct BlockInfo {
  std::uint64_t addr = 0;
  std::int64_t size = 0;
  bool allocated = false;
};

struct SegmentInfo {
  std::uint64_t addr = 0;
  std::int64_t size = 0;
  bool is_small_pool = false;
  std::vector<BlockInfo> blocks;
};

/// Serialize a segment map in torch.cuda.memory_snapshot() style (array of
/// segments with block lists) — consumed by tooling and the explorer
/// example; round-trips through util::Json.
std::string snapshot_to_json(const std::vector<SegmentInfo>& segments,
                             int indent = -1);

struct AllocOutcome {
  BlockId id = kInvalidBlock;
  bool oom = false;
  std::int64_t rounded_size = 0;
};

class CachingAllocatorSim final : public fw::AllocatorBackend {
 public:
  // Constants from c10/cuda/CUDACachingAllocator.cpp (PyTorch 2.6).
  static constexpr std::int64_t kMinBlockSize = 512;
  static constexpr std::int64_t kSmallSize = util::kMiB;
  static constexpr std::int64_t kSmallBuffer = 2 * util::kMiB;
  static constexpr std::int64_t kLargeBuffer = 20 * util::kMiB;
  static constexpr std::int64_t kMinLargeAlloc = 10 * util::kMiB;
  static constexpr std::int64_t kRoundLarge = 2 * util::kMiB;

  /// The allocator does not own the driver; one driver may sit under several
  /// allocators in multi-process experiments.
  explicit CachingAllocatorSim(SimulatedCudaDriver& driver);
  ~CachingAllocatorSim();

  CachingAllocatorSim(const CachingAllocatorSim&) = delete;
  CachingAllocatorSim& operator=(const CachingAllocatorSim&) = delete;

  /// Round a request as the real allocator does.
  static std::int64_t round_size(std::int64_t size);
  /// Segment size chosen for a (rounded) request that missed the cache.
  static std::int64_t allocation_size(std::int64_t rounded_size);

  /// Allocate `size` bytes (pre-rounding). Never throws on OOM — OOM is an
  /// expected experimental outcome and is reported in the result.
  AllocOutcome allocate(std::int64_t size);

  /// Free a live block. Freed bytes stay cached in their segment.
  void free(BlockId id);

  /// Release every unsplit cached segment back to the driver (the
  /// torch.cuda.empty_cache() equivalent).
  void empty_cache();

  const CachingAllocatorStats& stats() const { return stats_; }

  // fw::AllocatorBackend — the generic view the registry, simulator, and
  // parity harness use (docs/ALLOCATORS.md documents the contract).
  std::string_view backend_name() const override { return "pytorch"; }
  fw::BackendAllocResult backend_alloc(std::int64_t bytes) override {
    const AllocOutcome outcome = allocate(bytes);
    return fw::BackendAllocResult{outcome.id, outcome.rounded_size,
                                  outcome.oom};
  }
  void backend_free(std::int64_t id) override { free(id); }
  fw::BackendStats backend_stats() const override;
  std::int64_t backend_round(std::int64_t bytes) const override {
    return round_size(bytes);
  }
  void backend_trim() override { empty_cache(); }
  void backend_reset() override;

  /// Live-block introspection (tests + snapshot dumps).
  bool is_live(BlockId id) const;
  std::int64_t block_size(BlockId id) const;
  std::uint64_t block_addr(BlockId id) const;
  std::size_t num_live_blocks() const {
    return static_cast<std::size_t>(num_live_);
  }

  /// Full segment map in address order, mirroring
  /// torch.cuda.memory_snapshot().
  std::vector<SegmentInfo> snapshot() const;

 private:
  struct Block;
  struct BlockPool;

  Block* find_free_block(BlockPool& pool, std::int64_t size);
  Block* allocate_segment(BlockPool& pool, std::int64_t alloc_size);
  bool should_split(const Block& block, std::int64_t size) const;
  Block* split_block(Block* block, std::int64_t size, BlockPool& pool);
  void coalesce_with_neighbors(Block* block, BlockPool& pool);
  std::int64_t release_cached_segments();
  Block* acquire_block();
  void recycle_block(Block* block) { spare_blocks_.push_back(block); }
  Block* live_block(BlockId id) const;

  SimulatedCudaDriver& driver_;
  std::unique_ptr<BlockPool> small_pool_;
  std::unique_ptr<BlockPool> large_pool_;
  // Block nodes are owned by a grow-only arena and threaded through the
  // segments via prev/next; splits and coalesces are pure pointer surgery
  // plus free-set updates — no per-event tree-node churn. Only the segment
  // heads live in an ordered map (touched on segment alloc/release, the
  // rare path), which release/snapshot walk in address order.
  std::vector<std::unique_ptr<Block>> arena_;
  std::vector<Block*> spare_blocks_;
  std::map<std::uint64_t, Block*> segments_;
  // Block ids are handed out sequentially and never reused within a run
  // (backend_reset() restarts them), so the live table is a flat vector
  // indexed by id — O(1) per event, and its capacity survives reset.
  std::vector<Block*> live_slots_;
  std::int64_t num_live_ = 0;
  BlockId next_id_ = 1;
  CachingAllocatorStats stats_;
};

}  // namespace xmem::alloc
