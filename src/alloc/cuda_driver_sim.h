// Device-level allocator simulation (the "second level" of the paper's
// two-level design, Section 3.4).
//
// Models what cudaMalloc/cudaFree provide to the framework allocator: a
// finite-capacity device whose reservations happen at driver page
// granularity (2 MiB), plus a virtual-address space for deterministic block
// addresses. NVML-style "used memory" readings come from here — they see
// driver pages, not tensor bytes, which is one reason naive tensor-sum
// estimators under-report real usage.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "util/bytes.h"

namespace xmem::alloc {

struct DriverStats {
  std::int64_t used_bytes = 0;       ///< page-granular bytes reserved now
  std::int64_t peak_used_bytes = 0;  ///< high-water mark of used_bytes
  std::int64_t requested_bytes = 0;  ///< exact bytes requested (no rounding)
  std::int64_t num_mallocs = 0;
  std::int64_t num_frees = 0;
  std::int64_t num_oom_failures = 0;
};

class SimulatedCudaDriver {
 public:
  /// Allocation granularity of the simulated driver (large-page size).
  static constexpr std::int64_t kPageSize = 2 * util::kMiB;
  /// Base of the simulated VA space. Real CUDA virtual addresses start far
  /// from zero; a large, distinctive base makes address-mixups with CPU
  /// traces (which use their own base) easy to spot in dumps.
  static constexpr std::uint64_t kVaBase = 0x7F0000000000ULL;

  /// `capacity` is the device memory available to this process (already net
  /// of M_init and M_fm — callers subtract those, see gpu::DeviceModel).
  explicit SimulatedCudaDriver(std::int64_t capacity);

  /// cudaMalloc: returns the base address, or nullopt on out-of-memory.
  std::optional<std::uint64_t> cuda_malloc(std::int64_t size);

  /// cudaFree: releases a pointer previously returned by cuda_malloc.
  /// Unknown addresses are a programming error and throw.
  void cuda_free(std::uint64_t addr);

  /// Return to the exact post-construction state: drop every reservation,
  /// zero all counters (peaks included), and restart the VA space, so a
  /// replay against a reset driver is byte-identical to one against a
  /// fresh driver. Pairs with fw::AllocatorBackend::backend_reset() when a
  /// whole tower is reused (ReplayScratch in core/simulator.h).
  void reset();

  std::int64_t capacity() const { return capacity_; }
  std::int64_t free_bytes() const { return capacity_ - stats_.used_bytes; }
  const DriverStats& stats() const { return stats_; }

  /// Size of the live reservation at `addr` (exact requested size).
  std::optional<std::int64_t> reservation_size(std::uint64_t addr) const;

  std::size_t num_live_reservations() const { return reservations_.size(); }

 private:
  struct Reservation {
    std::int64_t requested = 0;
    std::int64_t page_bytes = 0;
  };

  std::int64_t capacity_;
  std::uint64_t next_addr_;
  std::map<std::uint64_t, Reservation> reservations_;
  DriverStats stats_;
};

}  // namespace xmem::alloc
