#include "alloc/caching_allocator.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/json.h"

namespace xmem::alloc {

struct CachingAllocatorSim::Block {
  std::uint64_t addr = 0;
  std::int64_t size = 0;            ///< rounded size of this block
  std::int64_t requested_size = 0;  ///< pre-rounding size (0 when cached)
  bool allocated = false;
  BlockId id = kInvalidBlock;       ///< valid only while allocated
  Block* prev = nullptr;            ///< neighbour within the same segment
  Block* next = nullptr;
  std::uint64_t segment_addr = 0;   ///< base address of the owning segment
  std::int64_t segment_size = 0;    ///< only meaningful on segment head
  bool is_small_pool = false;
};

struct CachingAllocatorSim::BlockPool {
  explicit BlockPool(bool small) : is_small(small) {}

  struct Less {
    bool operator()(const Block* a, const Block* b) const {
      if (a->size != b->size) return a->size < b->size;
      return a->addr < b->addr;
    }
  };

  bool is_small;
  std::set<Block*, Less> free_blocks;
};

CachingAllocatorSim::CachingAllocatorSim(SimulatedCudaDriver& driver)
    : driver_(driver),
      small_pool_(std::make_unique<BlockPool>(true)),
      large_pool_(std::make_unique<BlockPool>(false)) {}

CachingAllocatorSim::~CachingAllocatorSim() = default;

std::int64_t CachingAllocatorSim::round_size(std::int64_t size) {
  if (size < kMinBlockSize) return kMinBlockSize;
  return util::round_up(size, kMinBlockSize);
}

std::int64_t CachingAllocatorSim::allocation_size(std::int64_t rounded_size) {
  if (rounded_size <= kSmallSize) return kSmallBuffer;
  if (rounded_size < kMinLargeAlloc) return kLargeBuffer;
  return util::round_up(rounded_size, kRoundLarge);
}

bool CachingAllocatorSim::should_split(const Block& block,
                                       std::int64_t size) const {
  const std::int64_t remaining = block.size - size;
  if (block.is_small_pool) return remaining >= kMinBlockSize;
  return remaining > kSmallSize;
}

CachingAllocatorSim::Block* CachingAllocatorSim::find_free_block(
    BlockPool& pool, std::int64_t size) {
  // Best fit: the first block whose size is >= the request, ties broken by
  // address, exactly like the std::set search in the upstream allocator.
  Block key;
  key.size = size;
  key.addr = 0;
  auto it = pool.free_blocks.lower_bound(&key);
  if (it == pool.free_blocks.end()) return nullptr;
  Block* block = *it;
  pool.free_blocks.erase(it);
  return block;
}

CachingAllocatorSim::Block* CachingAllocatorSim::acquire_block() {
  if (spare_blocks_.empty()) {
    arena_.push_back(std::make_unique<Block>());
    return arena_.back().get();
  }
  Block* block = spare_blocks_.back();
  spare_blocks_.pop_back();
  *block = Block{};
  return block;
}

CachingAllocatorSim::Block* CachingAllocatorSim::live_block(BlockId id) const {
  if (id < 1 || static_cast<std::size_t>(id) >= live_slots_.size()) {
    return nullptr;
  }
  return live_slots_[static_cast<std::size_t>(id)];
}

CachingAllocatorSim::Block* CachingAllocatorSim::allocate_segment(
    BlockPool& pool, std::int64_t alloc_size) {
  auto addr = driver_.cuda_malloc(alloc_size);
  if (!addr.has_value()) {
    // First-level miss at the device: reclaim every unsplit cached segment
    // (the step DNNMem's model omits — see Section 5.1) and retry once.
    if (release_cached_segments() > 0) {
      ++stats_.num_cache_reclaims;
      addr = driver_.cuda_malloc(alloc_size);
    }
  }
  if (!addr.has_value()) return nullptr;

  Block* raw = acquire_block();
  raw->addr = *addr;
  raw->size = alloc_size;
  raw->allocated = false;
  raw->segment_addr = *addr;
  raw->segment_size = alloc_size;
  raw->is_small_pool = pool.is_small;
  segments_[raw->addr] = raw;

  stats_.reserved_bytes += alloc_size;
  stats_.peak_reserved_bytes =
      std::max(stats_.peak_reserved_bytes, stats_.reserved_bytes);
  ++stats_.num_segments_allocated;
  return raw;
}

CachingAllocatorSim::Block* CachingAllocatorSim::split_block(Block* block,
                                                             std::int64_t size,
                                                             BlockPool& pool) {
  assert(!block->allocated);
  assert(block->size > size);
  Block* remainder = acquire_block();
  remainder->addr = block->addr + static_cast<std::uint64_t>(size);
  remainder->size = block->size - size;
  remainder->allocated = false;
  remainder->segment_addr = block->segment_addr;
  remainder->is_small_pool = block->is_small_pool;
  remainder->prev = block;
  remainder->next = block->next;
  if (block->next != nullptr) block->next->prev = remainder;
  block->next = remainder;
  block->size = size;

  pool.free_blocks.insert(remainder);
  ++stats_.num_splits;
  return remainder;
}

AllocOutcome CachingAllocatorSim::allocate(std::int64_t size) {
  if (size <= 0) {
    throw std::invalid_argument("CachingAllocatorSim::allocate: size <= 0");
  }
  const std::int64_t rounded = round_size(size);
  BlockPool& pool = rounded <= kSmallSize ? *small_pool_ : *large_pool_;

  Block* block = find_free_block(pool, rounded);
  if (block == nullptr) {
    block = allocate_segment(pool, allocation_size(rounded));
  }
  if (block == nullptr) {
    return AllocOutcome{kInvalidBlock, true, rounded};
  }
  if (should_split(*block, rounded)) {
    split_block(block, rounded, pool);
  }
  block->allocated = true;
  block->requested_size = size;
  block->id = next_id_++;
  const auto slot = static_cast<std::size_t>(block->id);
  if (slot >= live_slots_.size()) {
    live_slots_.resize(std::max(live_slots_.size() * 2, slot + 1), nullptr);
  }
  live_slots_[slot] = block;
  ++num_live_;

  stats_.allocated_bytes += block->size;
  stats_.requested_bytes += size;
  stats_.peak_allocated_bytes =
      std::max(stats_.peak_allocated_bytes, stats_.allocated_bytes);
  ++stats_.num_allocs;
  return AllocOutcome{block->id, false, block->size};
}

void CachingAllocatorSim::coalesce_with_neighbors(Block* block,
                                                  BlockPool& pool) {
  // Merge `block` with its previous neighbour if that neighbour is free,
  // then with the next. Merging erases the absorbed block.
  if (Block* prev = block->prev; prev != nullptr && !prev->allocated) {
    pool.free_blocks.erase(prev);
    prev->size += block->size;
    prev->next = block->next;
    if (block->next != nullptr) block->next->prev = prev;
    recycle_block(block);
    block = prev;
    ++stats_.num_coalesces;
  }
  if (Block* next = block->next; next != nullptr && !next->allocated) {
    pool.free_blocks.erase(next);
    block->size += next->size;
    block->next = next->next;
    if (next->next != nullptr) next->next->prev = block;
    recycle_block(next);
    ++stats_.num_coalesces;
  }
  pool.free_blocks.insert(block);
}

void CachingAllocatorSim::free(BlockId id) {
  Block* block = live_block(id);
  if (block == nullptr) {
    throw std::logic_error("CachingAllocatorSim::free: unknown block id");
  }
  live_slots_[static_cast<std::size_t>(id)] = nullptr;
  --num_live_;

  stats_.allocated_bytes -= block->size;
  stats_.requested_bytes -= block->requested_size;
  ++stats_.num_frees;

  block->allocated = false;
  block->requested_size = 0;
  block->id = kInvalidBlock;
  BlockPool& pool = block->is_small_pool ? *small_pool_ : *large_pool_;
  coalesce_with_neighbors(block, pool);
}

std::int64_t CachingAllocatorSim::release_cached_segments() {
  std::int64_t released = 0;
  // A segment is releasable when its whole extent is one free block (the
  // head with no neighbours), released in address order.
  for (auto it = segments_.begin(); it != segments_.end();) {
    Block* block = it->second;
    if (block->allocated || block->next != nullptr) {
      ++it;
      continue;
    }
    BlockPool& pool = block->is_small_pool ? *small_pool_ : *large_pool_;
    pool.free_blocks.erase(block);
    driver_.cuda_free(block->segment_addr);
    stats_.reserved_bytes -= block->size;
    ++stats_.num_segments_released;
    released += block->size;
    recycle_block(block);
    it = segments_.erase(it);
  }
  return released;
}

void CachingAllocatorSim::empty_cache() { release_cached_segments(); }

void CachingAllocatorSim::backend_reset() {
  // Release every driver reservation (one per segment head), then move all
  // Block nodes — live or cached — to the spare pool so the next replay
  // reuses them instead of hitting the heap. The flat live table keeps its
  // capacity; only the occupied prefix is cleared.
  for (auto& [addr, head] : segments_) {
    driver_.cuda_free(head->segment_addr);
    for (Block* b = head; b != nullptr;) {
      Block* next = b->next;
      spare_blocks_.push_back(b);
      b = next;
    }
  }
  segments_.clear();
  std::fill(live_slots_.begin(), live_slots_.end(), nullptr);
  num_live_ = 0;
  small_pool_->free_blocks.clear();
  large_pool_->free_blocks.clear();
  stats_ = CachingAllocatorStats{};
  next_id_ = 1;
}

fw::BackendStats CachingAllocatorSim::backend_stats() const {
  fw::BackendStats s;
  s.active_bytes = stats_.allocated_bytes;
  s.peak_active_bytes = stats_.peak_allocated_bytes;
  s.reserved_bytes = stats_.reserved_bytes;
  s.peak_reserved_bytes = stats_.peak_reserved_bytes;
  s.num_allocs = stats_.num_allocs;
  s.num_frees = stats_.num_frees;
  s.num_segments =
      stats_.num_segments_allocated - stats_.num_segments_released;
  s.num_live_blocks = num_live_;
  return s;
}

bool CachingAllocatorSim::is_live(BlockId id) const {
  return live_block(id) != nullptr;
}

std::int64_t CachingAllocatorSim::block_size(BlockId id) const {
  const Block* block = live_block(id);
  if (block == nullptr) {
    throw std::logic_error("block_size: unknown block id");
  }
  return block->size;
}

std::uint64_t CachingAllocatorSim::block_addr(BlockId id) const {
  const Block* block = live_block(id);
  if (block == nullptr) {
    throw std::logic_error("block_addr: unknown block id");
  }
  return block->addr;
}

std::string snapshot_to_json(const std::vector<SegmentInfo>& segments,
                             int indent) {
  util::Json doc = util::Json::array();
  for (const SegmentInfo& segment : segments) {
    util::Json seg = util::Json::object();
    seg["address"] = util::Json(static_cast<std::int64_t>(segment.addr));
    seg["total_size"] = util::Json(segment.size);
    seg["segment_type"] = util::Json(segment.is_small_pool ? "small" : "large");
    util::Json blocks = util::Json::array();
    std::int64_t active = 0;
    for (const BlockInfo& block : segment.blocks) {
      util::Json b = util::Json::object();
      b["address"] = util::Json(static_cast<std::int64_t>(block.addr));
      b["size"] = util::Json(block.size);
      b["state"] = util::Json(block.allocated ? "active_allocated"
                                              : "inactive");
      if (block.allocated) active += block.size;
      blocks.push_back(std::move(b));
    }
    seg["allocated_size"] = util::Json(active);
    seg["blocks"] = std::move(blocks);
    doc.push_back(std::move(seg));
  }
  return doc.dump(indent);
}

std::vector<SegmentInfo> CachingAllocatorSim::snapshot() const {
  std::vector<SegmentInfo> segments;
  for (const auto& [addr, head] : segments_) {
    SegmentInfo seg;
    seg.addr = head->segment_addr;
    seg.is_small_pool = head->is_small_pool;
    for (const Block* b = head; b != nullptr; b = b->next) {
      seg.blocks.push_back(BlockInfo{b->addr, b->size, b->allocated});
      seg.size += b->size;
    }
    segments.push_back(std::move(seg));
  }
  return segments;
}

}  // namespace xmem::alloc
