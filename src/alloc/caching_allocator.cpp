#include "alloc/caching_allocator.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/json.h"

namespace xmem::alloc {

struct CachingAllocatorSim::Block {
  std::uint64_t addr = 0;
  std::int64_t size = 0;            ///< rounded size of this block
  std::int64_t requested_size = 0;  ///< pre-rounding size (0 when cached)
  bool allocated = false;
  BlockId id = kInvalidBlock;       ///< valid only while allocated
  Block* prev = nullptr;            ///< neighbour within the same segment
  Block* next = nullptr;
  std::uint64_t segment_addr = 0;   ///< base address of the owning segment
  std::int64_t segment_size = 0;    ///< only meaningful on segment head
  bool is_small_pool = false;
};

struct CachingAllocatorSim::BlockPool {
  explicit BlockPool(bool small) : is_small(small) {}

  struct Less {
    bool operator()(const Block* a, const Block* b) const {
      if (a->size != b->size) return a->size < b->size;
      return a->addr < b->addr;
    }
  };

  bool is_small;
  std::set<Block*, Less> free_blocks;
};

CachingAllocatorSim::CachingAllocatorSim(SimulatedCudaDriver& driver)
    : driver_(driver),
      small_pool_(std::make_unique<BlockPool>(true)),
      large_pool_(std::make_unique<BlockPool>(false)) {}

CachingAllocatorSim::~CachingAllocatorSim() = default;

std::int64_t CachingAllocatorSim::round_size(std::int64_t size) {
  if (size < kMinBlockSize) return kMinBlockSize;
  return util::round_up(size, kMinBlockSize);
}

std::int64_t CachingAllocatorSim::allocation_size(std::int64_t rounded_size) {
  if (rounded_size <= kSmallSize) return kSmallBuffer;
  if (rounded_size < kMinLargeAlloc) return kLargeBuffer;
  return util::round_up(rounded_size, kRoundLarge);
}

bool CachingAllocatorSim::should_split(const Block& block,
                                       std::int64_t size) const {
  const std::int64_t remaining = block.size - size;
  if (block.is_small_pool) return remaining >= kMinBlockSize;
  return remaining > kSmallSize;
}

CachingAllocatorSim::Block* CachingAllocatorSim::find_free_block(
    BlockPool& pool, std::int64_t size) {
  // Best fit: the first block whose size is >= the request, ties broken by
  // address, exactly like the std::set search in the upstream allocator.
  Block key;
  key.size = size;
  key.addr = 0;
  auto it = pool.free_blocks.lower_bound(&key);
  if (it == pool.free_blocks.end()) return nullptr;
  Block* block = *it;
  pool.free_blocks.erase(it);
  return block;
}

CachingAllocatorSim::Block* CachingAllocatorSim::allocate_segment(
    BlockPool& pool, std::int64_t alloc_size) {
  auto addr = driver_.cuda_malloc(alloc_size);
  if (!addr.has_value()) {
    // First-level miss at the device: reclaim every unsplit cached segment
    // (the step DNNMem's model omits — see Section 5.1) and retry once.
    if (release_cached_segments() > 0) {
      ++stats_.num_cache_reclaims;
      addr = driver_.cuda_malloc(alloc_size);
    }
  }
  if (!addr.has_value()) return nullptr;

  auto block = std::make_unique<Block>();
  block->addr = *addr;
  block->size = alloc_size;
  block->allocated = false;
  block->segment_addr = *addr;
  block->segment_size = alloc_size;
  block->is_small_pool = pool.is_small;
  Block* raw = block.get();
  blocks_[raw->addr] = std::move(block);

  stats_.reserved_bytes += alloc_size;
  stats_.peak_reserved_bytes =
      std::max(stats_.peak_reserved_bytes, stats_.reserved_bytes);
  ++stats_.num_segments_allocated;
  return raw;
}

CachingAllocatorSim::Block* CachingAllocatorSim::split_block(Block* block,
                                                             std::int64_t size,
                                                             BlockPool& pool) {
  assert(!block->allocated);
  assert(block->size > size);
  auto remainder = std::make_unique<Block>();
  remainder->addr = block->addr + static_cast<std::uint64_t>(size);
  remainder->size = block->size - size;
  remainder->allocated = false;
  remainder->segment_addr = block->segment_addr;
  remainder->is_small_pool = block->is_small_pool;
  remainder->prev = block;
  remainder->next = block->next;
  if (block->next != nullptr) block->next->prev = remainder.get();
  block->next = remainder.get();
  block->size = size;

  Block* raw = remainder.get();
  blocks_[raw->addr] = std::move(remainder);
  pool.free_blocks.insert(raw);
  ++stats_.num_splits;
  return raw;
}

AllocOutcome CachingAllocatorSim::allocate(std::int64_t size) {
  if (size <= 0) {
    throw std::invalid_argument("CachingAllocatorSim::allocate: size <= 0");
  }
  const std::int64_t rounded = round_size(size);
  BlockPool& pool = rounded <= kSmallSize ? *small_pool_ : *large_pool_;

  Block* block = find_free_block(pool, rounded);
  if (block == nullptr) {
    block = allocate_segment(pool, allocation_size(rounded));
  }
  if (block == nullptr) {
    return AllocOutcome{kInvalidBlock, true, rounded};
  }
  if (should_split(*block, rounded)) {
    split_block(block, rounded, pool);
  }
  block->allocated = true;
  block->requested_size = size;
  block->id = next_id_++;
  live_[block->id] = block;

  stats_.allocated_bytes += block->size;
  stats_.requested_bytes += size;
  stats_.peak_allocated_bytes =
      std::max(stats_.peak_allocated_bytes, stats_.allocated_bytes);
  ++stats_.num_allocs;
  return AllocOutcome{block->id, false, block->size};
}

void CachingAllocatorSim::coalesce_with_neighbors(Block* block,
                                                  BlockPool& pool) {
  // Merge `block` with its previous neighbour if that neighbour is free,
  // then with the next. Merging erases the absorbed block.
  if (Block* prev = block->prev; prev != nullptr && !prev->allocated) {
    pool.free_blocks.erase(prev);
    prev->size += block->size;
    prev->next = block->next;
    if (block->next != nullptr) block->next->prev = prev;
    blocks_.erase(block->addr);
    block = prev;
    ++stats_.num_coalesces;
  }
  if (Block* next = block->next; next != nullptr && !next->allocated) {
    pool.free_blocks.erase(next);
    block->size += next->size;
    block->next = next->next;
    if (next->next != nullptr) next->next->prev = block;
    blocks_.erase(next->addr);
    ++stats_.num_coalesces;
  }
  pool.free_blocks.insert(block);
}

void CachingAllocatorSim::free(BlockId id) {
  auto it = live_.find(id);
  if (it == live_.end()) {
    throw std::logic_error("CachingAllocatorSim::free: unknown block id");
  }
  Block* block = it->second;
  live_.erase(it);

  stats_.allocated_bytes -= block->size;
  stats_.requested_bytes -= block->requested_size;
  ++stats_.num_frees;

  block->allocated = false;
  block->requested_size = 0;
  block->id = kInvalidBlock;
  BlockPool& pool = block->is_small_pool ? *small_pool_ : *large_pool_;
  coalesce_with_neighbors(block, pool);
}

std::int64_t CachingAllocatorSim::release_cached_segments() {
  std::int64_t released = 0;
  // A segment is releasable when its whole extent is one free block.
  std::vector<Block*> releasable;
  for (auto& [addr, block] : blocks_) {
    if (!block->allocated && block->prev == nullptr &&
        block->next == nullptr) {
      releasable.push_back(block.get());
    }
  }
  for (Block* block : releasable) {
    BlockPool& pool = block->is_small_pool ? *small_pool_ : *large_pool_;
    pool.free_blocks.erase(block);
    driver_.cuda_free(block->segment_addr);
    stats_.reserved_bytes -= block->size;
    ++stats_.num_segments_released;
    released += block->size;
    blocks_.erase(block->addr);
  }
  return released;
}

void CachingAllocatorSim::empty_cache() { release_cached_segments(); }

fw::BackendStats CachingAllocatorSim::backend_stats() const {
  fw::BackendStats s;
  s.active_bytes = stats_.allocated_bytes;
  s.peak_active_bytes = stats_.peak_allocated_bytes;
  s.reserved_bytes = stats_.reserved_bytes;
  s.peak_reserved_bytes = stats_.peak_reserved_bytes;
  s.num_allocs = stats_.num_allocs;
  s.num_frees = stats_.num_frees;
  s.num_segments =
      stats_.num_segments_allocated - stats_.num_segments_released;
  s.num_live_blocks = static_cast<std::int64_t>(live_.size());
  return s;
}

bool CachingAllocatorSim::is_live(BlockId id) const {
  return live_.count(id) > 0;
}

std::int64_t CachingAllocatorSim::block_size(BlockId id) const {
  auto it = live_.find(id);
  if (it == live_.end()) {
    throw std::logic_error("block_size: unknown block id");
  }
  return it->second->size;
}

std::uint64_t CachingAllocatorSim::block_addr(BlockId id) const {
  auto it = live_.find(id);
  if (it == live_.end()) {
    throw std::logic_error("block_addr: unknown block id");
  }
  return it->second->addr;
}

std::string snapshot_to_json(const std::vector<SegmentInfo>& segments,
                             int indent) {
  util::Json doc = util::Json::array();
  for (const SegmentInfo& segment : segments) {
    util::Json seg = util::Json::object();
    seg["address"] = util::Json(static_cast<std::int64_t>(segment.addr));
    seg["total_size"] = util::Json(segment.size);
    seg["segment_type"] = util::Json(segment.is_small_pool ? "small" : "large");
    util::Json blocks = util::Json::array();
    std::int64_t active = 0;
    for (const BlockInfo& block : segment.blocks) {
      util::Json b = util::Json::object();
      b["address"] = util::Json(static_cast<std::int64_t>(block.addr));
      b["size"] = util::Json(block.size);
      b["state"] = util::Json(block.allocated ? "active_allocated"
                                              : "inactive");
      if (block.allocated) active += block.size;
      blocks.push_back(std::move(b));
    }
    seg["allocated_size"] = util::Json(active);
    seg["blocks"] = std::move(blocks);
    doc.push_back(std::move(seg));
  }
  return doc.dump(indent);
}

std::vector<SegmentInfo> CachingAllocatorSim::snapshot() const {
  std::vector<SegmentInfo> segments;
  for (const auto& [addr, block] : blocks_) {
    if (block->prev != nullptr) continue;  // not a segment head
    SegmentInfo seg;
    seg.addr = block->segment_addr;
    seg.is_small_pool = block->is_small_pool;
    for (const Block* b = block.get(); b != nullptr; b = b->next) {
      seg.blocks.push_back(BlockInfo{b->addr, b->size, b->allocated});
      seg.size += b->size;
    }
    segments.push_back(std::move(seg));
  }
  return segments;
}

}  // namespace xmem::alloc
