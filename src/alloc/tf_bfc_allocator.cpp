#include "alloc/tf_bfc_allocator.h"

#include <algorithm>
#include <stdexcept>

#include "util/bytes.h"

namespace xmem::alloc {

struct TfBfcAllocator::Chunk {
  std::uint64_t addr = 0;
  std::int64_t size = 0;
  bool allocated = false;
  std::int64_t id = -1;
  Chunk* prev = nullptr;
  Chunk* next = nullptr;
};

bool TfBfcAllocator::Less::operator()(const Chunk* a, const Chunk* b) const {
  if (a->size != b->size) return a->size < b->size;
  return a->addr < b->addr;
}

TfBfcAllocator::TfBfcAllocator(SimulatedCudaDriver& driver)
    : driver_(driver) {}

TfBfcAllocator::~TfBfcAllocator() = default;

std::int64_t TfBfcAllocator::round_size(std::int64_t bytes) {
  if (bytes < kMinAllocationSize) return kMinAllocationSize;
  return util::round_up(bytes, kMinAllocationSize);
}

TfBfcAllocator::Chunk* TfBfcAllocator::extend(std::int64_t rounded) {
  // Region growth: at least the request, preferring the doubling schedule.
  std::int64_t region = std::max(next_region_size_,
                                 util::round_up(rounded, kInitialRegionSize));
  std::optional<std::uint64_t> addr = driver_.cuda_malloc(region);
  while (!addr.has_value() && region > rounded) {
    // TF backs off to smaller regions before giving up.
    region = std::max(util::round_up(rounded, kInitialRegionSize), region / 2);
    addr = driver_.cuda_malloc(region);
    if (region == util::round_up(rounded, kInitialRegionSize)) break;
  }
  if (!addr.has_value()) {
    addr = driver_.cuda_malloc(util::round_up(rounded, kInitialRegionSize));
  }
  if (!addr.has_value()) return nullptr;
  next_region_size_ = std::min<std::int64_t>(region * 2,
                                             std::int64_t{1} << 33);
  auto chunk = std::make_unique<Chunk>();
  chunk->addr = *addr;
  chunk->size = driver_.reservation_size(*addr).value_or(region);
  Chunk* raw = chunk.get();
  chunks_[raw->addr] = std::move(chunk);
  stats_.region_bytes += raw->size;
  ++stats_.num_regions;
  return raw;
}

TfAllocOutcome TfBfcAllocator::allocate(std::int64_t bytes) {
  if (bytes <= 0) {
    throw std::invalid_argument("TfBfcAllocator::allocate: bytes <= 0");
  }
  const std::int64_t rounded = round_size(bytes);

  Chunk key;
  key.size = rounded;
  key.addr = 0;
  Chunk* chunk = nullptr;
  auto it = free_chunks_.lower_bound(&key);
  if (it != free_chunks_.end()) {
    chunk = *it;
    free_chunks_.erase(it);
  } else {
    chunk = extend(rounded);
    if (chunk == nullptr) return TfAllocOutcome{-1, true, rounded};
  }

  if (chunk->size - rounded >= kMinAllocationSize) {
    auto remainder = std::make_unique<Chunk>();
    remainder->addr = chunk->addr + static_cast<std::uint64_t>(rounded);
    remainder->size = chunk->size - rounded;
    remainder->prev = chunk;
    remainder->next = chunk->next;
    if (chunk->next != nullptr) chunk->next->prev = remainder.get();
    chunk->next = remainder.get();
    chunk->size = rounded;
    free_chunks_.insert(remainder.get());
    chunks_[remainder->addr] = std::move(remainder);
  }

  chunk->allocated = true;
  chunk->id = next_id_++;
  live_[chunk->id] = chunk;
  stats_.allocated_bytes += chunk->size;
  stats_.peak_allocated_bytes =
      std::max(stats_.peak_allocated_bytes, stats_.allocated_bytes);
  ++stats_.num_allocs;
  return TfAllocOutcome{chunk->id, false, chunk->size};
}

void TfBfcAllocator::free(std::int64_t id) {
  auto it = live_.find(id);
  if (it == live_.end()) {
    throw std::logic_error("TfBfcAllocator::free: unknown id");
  }
  Chunk* chunk = it->second;
  live_.erase(it);
  stats_.allocated_bytes -= chunk->size;
  ++stats_.num_frees;
  chunk->allocated = false;
  chunk->id = -1;

  if (Chunk* prev = chunk->prev; prev != nullptr && !prev->allocated) {
    free_chunks_.erase(prev);
    prev->size += chunk->size;
    prev->next = chunk->next;
    if (chunk->next != nullptr) chunk->next->prev = prev;
    chunks_.erase(chunk->addr);
    chunk = prev;
  }
  if (Chunk* next = chunk->next; next != nullptr && !next->allocated) {
    free_chunks_.erase(next);
    chunk->size += next->size;
    chunk->next = next->next;
    if (next->next != nullptr) next->next->prev = chunk;
    chunks_.erase(next->addr);
  }
  free_chunks_.insert(chunk);
}

}  // namespace xmem::alloc
