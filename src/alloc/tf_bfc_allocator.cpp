#include "alloc/tf_bfc_allocator.h"

#include <algorithm>
#include <stdexcept>

#include "util/bytes.h"

namespace xmem::alloc {

struct TfBfcAllocator::Chunk {
  std::uint64_t addr = 0;
  std::int64_t size = 0;
  bool allocated = false;
  std::int64_t id = -1;
  Chunk* prev = nullptr;
  Chunk* next = nullptr;
};

bool TfBfcAllocator::Less::operator()(const Chunk* a, const Chunk* b) const {
  if (a->size != b->size) return a->size < b->size;
  return a->addr < b->addr;
}

TfBfcAllocator::TfBfcAllocator(SimulatedCudaDriver& driver)
    : driver_(driver) {}

TfBfcAllocator::~TfBfcAllocator() = default;

std::int64_t TfBfcAllocator::round_size(std::int64_t bytes) {
  if (bytes < kMinAllocationSize) return kMinAllocationSize;
  return util::round_up(bytes, kMinAllocationSize);
}

std::unique_ptr<TfBfcAllocator::Chunk> TfBfcAllocator::acquire_chunk() {
  if (spare_chunks_.empty()) return std::make_unique<Chunk>();
  auto chunk = std::move(spare_chunks_.back());
  spare_chunks_.pop_back();
  *chunk = Chunk{};
  return chunk;
}

void TfBfcAllocator::recycle_chunk(std::uint64_t addr) {
  auto it = chunks_.find(addr);
  spare_chunks_.push_back(std::move(it->second));
  chunks_.erase(it);
}

TfBfcAllocator::Chunk* TfBfcAllocator::extend(std::int64_t rounded) {
  // Region growth: at least the request, preferring the doubling schedule.
  std::int64_t region = std::max(next_region_size_,
                                 util::round_up(rounded, kInitialRegionSize));
  std::optional<std::uint64_t> addr = driver_.cuda_malloc(region);
  while (!addr.has_value() && region > rounded) {
    // TF backs off to smaller regions before giving up.
    region = std::max(util::round_up(rounded, kInitialRegionSize), region / 2);
    addr = driver_.cuda_malloc(region);
    if (region == util::round_up(rounded, kInitialRegionSize)) break;
  }
  if (!addr.has_value()) {
    addr = driver_.cuda_malloc(util::round_up(rounded, kInitialRegionSize));
  }
  if (!addr.has_value()) return nullptr;
  next_region_size_ = std::min<std::int64_t>(region * 2,
                                             std::int64_t{1} << 33);
  auto chunk = acquire_chunk();
  chunk->addr = *addr;
  chunk->size = driver_.reservation_size(*addr).value_or(region);
  Chunk* raw = chunk.get();
  chunks_[raw->addr] = std::move(chunk);
  stats_.region_bytes += raw->size;
  ++stats_.num_regions;
  return raw;
}

TfAllocOutcome TfBfcAllocator::allocate(std::int64_t bytes) {
  if (bytes <= 0) {
    throw std::invalid_argument("TfBfcAllocator::allocate: bytes <= 0");
  }
  const std::int64_t rounded = round_size(bytes);

  Chunk key;
  key.size = rounded;
  key.addr = 0;
  Chunk* chunk = nullptr;
  auto it = free_chunks_.lower_bound(&key);
  if (it != free_chunks_.end()) {
    chunk = *it;
    free_chunks_.erase(it);
  } else {
    chunk = extend(rounded);
    if (chunk == nullptr) return TfAllocOutcome{-1, true, rounded};
  }

  if (chunk->size - rounded >= kMinAllocationSize) {
    auto remainder = acquire_chunk();
    remainder->addr = chunk->addr + static_cast<std::uint64_t>(rounded);
    remainder->size = chunk->size - rounded;
    remainder->prev = chunk;
    remainder->next = chunk->next;
    if (chunk->next != nullptr) chunk->next->prev = remainder.get();
    chunk->next = remainder.get();
    chunk->size = rounded;
    free_chunks_.insert(remainder.get());
    chunks_[remainder->addr] = std::move(remainder);
  }

  chunk->allocated = true;
  chunk->id = next_id_++;
  live_[chunk->id] = chunk;
  stats_.allocated_bytes += chunk->size;
  stats_.peak_allocated_bytes =
      std::max(stats_.peak_allocated_bytes, stats_.allocated_bytes);
  ++stats_.num_allocs;
  return TfAllocOutcome{chunk->id, false, chunk->size};
}

void TfBfcAllocator::free(std::int64_t id) {
  auto it = live_.find(id);
  if (it == live_.end()) {
    throw std::logic_error("TfBfcAllocator::free: unknown id");
  }
  Chunk* chunk = it->second;
  live_.erase(it);
  stats_.allocated_bytes -= chunk->size;
  ++stats_.num_frees;
  chunk->allocated = false;
  chunk->id = -1;

  if (Chunk* prev = chunk->prev; prev != nullptr && !prev->allocated) {
    free_chunks_.erase(prev);
    prev->size += chunk->size;
    prev->next = chunk->next;
    if (chunk->next != nullptr) chunk->next->prev = prev;
    recycle_chunk(chunk->addr);
    chunk = prev;
  }
  if (Chunk* next = chunk->next; next != nullptr && !next->allocated) {
    free_chunks_.erase(next);
    chunk->size += next->size;
    chunk->next = next->next;
    if (next->next != nullptr) next->next->prev = chunk;
    recycle_chunk(next->addr);
  }
  free_chunks_.insert(chunk);
}

void TfBfcAllocator::backend_reset() {
  // Regions are driver reservations whose base is the chunk with no
  // predecessor; release them, then recycle every Chunk node.
  for (auto& [addr, chunk] : chunks_) {
    if (chunk->prev == nullptr) driver_.cuda_free(chunk->addr);
  }
  for (auto& [addr, chunk] : chunks_) {
    spare_chunks_.push_back(std::move(chunk));
  }
  chunks_.clear();
  live_.clear();
  free_chunks_.clear();
  next_region_size_ = kInitialRegionSize;
  next_id_ = 1;
  stats_ = TfBfcStats{};
}

}  // namespace xmem::alloc
