#include "alloc/event_stream.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "util/rng.h"

namespace xmem::alloc {

namespace {

struct LiveBlock {
  std::int64_t block_id = 0;
  std::int64_t bytes = 0;
};

std::int64_t draw_size(util::Rng& rng, const EventStreamConfig& config) {
  const double roll = rng.next_double();
  if (roll < config.huge_fraction) {
    return rng.next_in_range(config.min_huge, config.max_huge);
  }
  if (roll < config.huge_fraction + config.small_fraction) {
    return rng.next_in_range(config.min_small, config.max_small);
  }
  return rng.next_in_range(config.min_large, config.max_large);
}

}  // namespace

std::vector<StreamEvent> generate_event_stream(
    const EventStreamConfig& config) {
  util::Rng rng(config.seed);
  std::vector<StreamEvent> events;
  events.reserve(config.num_events + 64);
  // Per logical stream: the live blocks it owns, newest last.
  std::vector<std::vector<LiveBlock>> live(
      static_cast<std::size_t>(std::max(config.num_streams, 1)));
  std::int64_t next_block_id = 1;
  std::int64_t ts = 0;

  for (std::size_t i = 0; i < config.num_events; ++i) {
    const auto stream =
        static_cast<std::size_t>(rng.next_below(live.size()));
    auto& pool = live[stream];
    const bool do_alloc = pool.empty() || rng.next_bool(config.alloc_bias);
    StreamEvent event;
    event.ts = ts++;
    event.stream = static_cast<int>(stream);
    if (do_alloc) {
      event.is_alloc = true;
      event.block_id = next_block_id++;
      event.bytes = draw_size(rng, config);
      pool.push_back(LiveBlock{event.block_id, event.bytes});
    } else {
      // Tensor stacks free newest-first most of the time; the rest models
      // out-of-order releases (gradient buckets, dataloader rebinds).
      const std::size_t pick =
          rng.next_bool(config.lifo_bias)
              ? pool.size() - 1
              : static_cast<std::size_t>(rng.next_below(pool.size()));
      event.is_alloc = false;
      event.block_id = pool[pick].block_id;
      event.bytes = pool[pick].bytes;
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    events.push_back(event);
  }

  if (config.drain_at_end) {
    for (auto& pool : live) {
      while (!pool.empty()) {
        StreamEvent event;
        event.ts = ts++;
        event.stream = static_cast<int>(&pool - live.data());
        event.is_alloc = false;
        event.block_id = pool.back().block_id;
        event.bytes = pool.back().bytes;
        pool.pop_back();
        events.push_back(event);
      }
    }
  }
  return events;
}

std::uint64_t stream_fingerprint(const std::vector<StreamEvent>& events) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  const auto mix = [&hash](std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (byte * 8)) & 0xff;
      hash *= 0x100000001b3ULL;  // FNV prime
    }
  };
  for (const StreamEvent& e : events) {
    mix(static_cast<std::uint64_t>(e.ts));
    mix(static_cast<std::uint64_t>(e.block_id));
    mix(static_cast<std::uint64_t>(e.bytes));
    mix(e.is_alloc ? 1 : 0);
    mix(static_cast<std::uint64_t>(e.stream));
  }
  return hash;
}

std::string dump_stream(const std::vector<StreamEvent>& events,
                        std::size_t max_lines) {
  char line[128];
  std::snprintf(line, sizeof(line),
                "stream of %zu events, fingerprint %016" PRIx64 "\n",
                events.size(), stream_fingerprint(events));
  std::string out = line;
  const std::size_t shown = std::min(events.size(), max_lines);
  for (std::size_t i = 0; i < shown; ++i) {
    const StreamEvent& e = events[i];
    std::snprintf(line, sizeof(line),
                  "  [%4zu] ts=%" PRId64 " s%d %s block=%" PRId64
                  " bytes=%" PRId64 "\n",
                  i, e.ts, e.stream, e.is_alloc ? "alloc" : "free ",
                  e.block_id, e.bytes);
    out += line;
  }
  if (shown < events.size()) {
    std::snprintf(line, sizeof(line), "  ... %zu more events\n",
                  events.size() - shown);
    out += line;
  }
  return out;
}

ReplayReport replay_with_invariants(fw::AllocatorBackend& backend,
                                    const std::vector<StreamEvent>& events) {
  ReplayReport report;
  struct Charged {
    std::int64_t handle = -1;
    std::int64_t charged = 0;
    std::int64_t requested = 0;
  };
  std::unordered_map<std::int64_t, Charged> live;
  std::int64_t charged_sum = 0;
  std::int64_t requested_sum = 0;
  fw::BackendStats prev = backend.backend_stats();

  const auto fail = [&](std::size_t index, std::string what) {
    report.ok = false;
    report.event_index = index;
    report.violation = std::move(what);
  };

  for (std::size_t i = 0; i < events.size(); ++i) {
    const StreamEvent& e = events[i];
    if (e.is_alloc) {
      if (live.count(e.block_id) > 0) {
        fail(i, "generator emitted a duplicate live block id");
        break;
      }
      const fw::BackendAllocResult out = backend.backend_alloc(e.bytes);
      if (out.oom) break;  // capacity-bound replay; not a contract violation
      if (out.charged_bytes < e.bytes) {
        fail(i, "charged_bytes below the requested size");
        break;
      }
      live[e.block_id] = Charged{out.id, out.charged_bytes, e.bytes};
      charged_sum += out.charged_bytes;
      requested_sum += e.bytes;
    } else {
      const auto it = live.find(e.block_id);
      if (it == live.end()) {
        fail(i, "generator emitted a free for a dead block id");
        break;
      }
      backend.backend_free(it->second.handle);
      charged_sum -= it->second.charged;
      requested_sum -= it->second.requested;
      live.erase(it);
    }

    const fw::BackendStats s = backend.backend_stats();
    if (s.active_bytes != charged_sum) {
      fail(i, "conservation: active_bytes != sum of live charged bytes");
      break;
    }
    if (s.active_bytes < requested_sum) {
      fail(i, "active_bytes below the live requested bytes");
      break;
    }
    if (s.reserved_bytes < s.active_bytes) {
      fail(i, "reserved_bytes < active_bytes");
      break;
    }
    if (s.peak_reserved_bytes < s.reserved_bytes ||
        s.peak_reserved_bytes < prev.peak_reserved_bytes) {
      fail(i, "peak_reserved_bytes not a monotone high-water mark");
      break;
    }
    if (s.peak_active_bytes < s.active_bytes ||
        s.peak_active_bytes < prev.peak_active_bytes) {
      fail(i, "peak_active_bytes not a monotone high-water mark");
      break;
    }
    if (s.num_allocs - s.num_frees != s.num_live_blocks ||
        s.num_live_blocks != static_cast<std::int64_t>(live.size())) {
      fail(i, "num_allocs - num_frees != live block count");
      break;
    }
    report.peak_reserved = std::max(report.peak_reserved, s.reserved_bytes);
    report.peak_active = std::max(report.peak_active, s.active_bytes);
    report.peak_live_bytes = std::max(report.peak_live_bytes, requested_sum);
    prev = s;
  }

  report.final_stats = backend.backend_stats();
  return report;
}

std::vector<StreamEvent> shrink_failing_stream(
    const std::vector<StreamEvent>& events,
    const std::function<bool(const std::vector<StreamEvent>&)>& still_fails) {
  if (!still_fails(events)) return {};

  // Shortest failing prefix by binary search.
  std::size_t lo = 1;
  std::size_t hi = events.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const std::vector<StreamEvent> prefix(events.begin(),
                                          events.begin() +
                                              static_cast<std::ptrdiff_t>(mid));
    if (still_fails(prefix)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  std::vector<StreamEvent> current(
      events.begin(), events.begin() + static_cast<std::ptrdiff_t>(hi));

  // Greedy pair removal: drop a block's alloc+free together so candidates
  // stay well-formed streams.
  std::vector<std::int64_t> block_ids;
  std::unordered_set<std::int64_t> seen;
  for (const StreamEvent& e : current) {
    if (seen.insert(e.block_id).second) block_ids.push_back(e.block_id);
  }
  for (const std::int64_t id : block_ids) {
    std::vector<StreamEvent> candidate;
    candidate.reserve(current.size());
    for (const StreamEvent& e : current) {
      if (e.block_id != id) candidate.push_back(e);
    }
    if (candidate.size() < current.size() && still_fails(candidate)) {
      current = std::move(candidate);
    }
  }
  return current;
}

}  // namespace xmem::alloc
